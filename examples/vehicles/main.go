// Vehicles: the paper's Example-1 database and every class-hierarchy query
// of Section 3.3, comparing the parallel retrieval algorithm (Algorithm 1)
// against naive forward scanning on a larger randomized fleet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	s := uindex.NewSchema()
	check(s.AddClass("Employee", "", uindex.Attr{Name: "Age", Type: uindex.Uint64}))
	check(s.AddClass("Company", "",
		uindex.Attr{Name: "Name", Type: uindex.String},
		uindex.Attr{Name: "President", Ref: "Employee"}))
	check(s.AddClass("Vehicle", "",
		uindex.Attr{Name: "Name", Type: uindex.String},
		uindex.Attr{Name: "Color", Type: uindex.String},
		uindex.Attr{Name: "ManufacturedBy", Ref: "Company"}))
	check(s.AddClass("Automobile", "Vehicle"))
	check(s.AddClass("Truck", "Vehicle"))
	check(s.AddClass("CompactAutomobile", "Automobile"))

	db, err := uindex.NewDatabase(s)
	check(err)
	check(db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}))

	// A randomized fleet big enough for page counts to mean something.
	rng := rand.New(rand.NewSource(7))
	e, err := db.Insert("Employee", uindex.Attrs{"Age": 52})
	check(err)
	co, err := db.Insert("Company", uindex.Attrs{"Name": "Fiat", "President": e})
	check(err)
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	colors := []string{"Black", "Blue", "Green", "Red", "White", "Yellow"}
	for i := 0; i < 20000; i++ {
		_, err := db.Insert(classes[rng.Intn(len(classes))], uindex.Attrs{
			"Name":           fmt.Sprintf("V%05d", i),
			"Color":          colors[rng.Intn(len(colors))],
			"ManufacturedBy": co,
		})
		check(err)
	}

	// The Section-3.3 class-hierarchy queries, in the paper's notation.
	queries := []struct{ label, q string }{
		{"q1: all red vehicles", `(Color=Red, Vehicle*)`},
		{"q2: red automobiles (with subclasses)", `(Color=Red, Automobile*)`},
		{"q3: red automobiles and their subclasses only", `(Color=Red, CompactAutomobile*)`},
		{"q4: red vehicles that are NOT compacts", `(Color=Red, [Vehicle, Automobile, Truck*])`},
		{"q5: red automobiles or trucks", `(Color=Red, [Automobile*, Truck*])`},
		{"range: blue..green trucks", `(Color=[Blue-Green], Truck*)`},
		{"multi-value: red or blue compacts", `(Color={Red,Blue}, CompactAutomobile*)`},
	}
	ix, _ := db.Index("color")
	fmt.Printf("%-48s %8s %9s %8s\n", "query", "matches", "parallel", "forward")
	for _, tc := range queries {
		q := mustParse(db, tc.q)
		ms, sp, err := ix.Execute(q, uindex.Parallel, nil)
		check(err)
		_, sf, err := ix.Execute(q, uindex.Forward, nil)
		check(err)
		fmt.Printf("%-48s %8d %9d %8d\n", tc.label, len(ms), sp.PagesRead, sf.PagesRead)
	}
	fmt.Println("\nparallel = the paper's Algorithm 1; forward = naive scan of each value cluster")
	check(db.Close())
}

func mustParse(db *uindex.Database, q string) uindex.Query {
	ix, _ := db.Index("color")
	parsed, err := uindex.ParseQuery(ix, q)
	if err != nil {
		log.Fatal(err)
	}
	return parsed
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
