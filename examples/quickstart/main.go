// Quickstart: declare a small class hierarchy, build a class-hierarchy
// U-index, and query it — the minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Declare the schema. A class hierarchy is built by naming each
	// class's superclass; attributes are inherited.
	s := uindex.NewSchema()
	check(s.AddClass("Vehicle", "",
		uindex.Attr{Name: "Color", Type: uindex.String},
		uindex.Attr{Name: "Weight", Type: uindex.Uint64},
	))
	check(s.AddClass("Automobile", "Vehicle"))
	check(s.AddClass("Truck", "Vehicle"))

	// 2. Open a database. Class codes (the paper's COD relation) are
	// assigned automatically.
	db, err := uindex.NewDatabase(s)
	check(err)
	fmt.Println("COD relation:")
	for _, row := range db.CODTable() {
		fmt.Println(" ", row)
	}

	// 3. Create a class-hierarchy index on Vehicle.Color: one U-index
	// covers Vehicle, Automobile and Truck together.
	check(db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}))

	// 4. Insert objects of the various classes.
	for i := 0; i < 100; i++ {
		class := []string{"Vehicle", "Automobile", "Truck"}[i%3]
		color := []string{"Red", "Blue", "White", "Green"}[i%4]
		_, err := db.Insert(class, uindex.Attrs{"Color": color, "Weight": 900 + i})
		check(err)
	}

	// 5. Query. On("Automobile") covers the class and its subclasses —
	// the defining capability of a class-hierarchy index.
	ctx := context.Background()
	ms, stats, err := db.Query(ctx, "color", uindex.Query{
		Value:     uindex.Exact("Red"),
		Positions: []uindex.Position{uindex.On("Automobile")},
	})
	check(err)
	fmt.Printf("\nred automobiles: %d matches, %d pages read\n", len(ms), stats.PagesRead)
	for _, m := range ms[:3] {
		fmt.Printf("  %v -> object %d (class code %s)\n", m.Value, m.Path[0].OID, m.Path[0].Code.Compact())
	}

	// 6. The same query in the paper's textual notation, parsed first and
	// then run through the same Query entry point.
	ix, _ := db.Index("color")
	q, err := uindex.ParseQuery(ix, `(Color={Red,Blue}, [Automobile*, Truck*])`)
	check(err)
	ms, _, err = db.Query(ctx, "color", q)
	check(err)
	fmt.Printf("red or blue automobiles/trucks: %d matches\n", len(ms))

	// 7. Close the database; with a buffer pool configured (Options), this
	// is where write-back errors would surface, so always check it.
	check(db.Close())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
