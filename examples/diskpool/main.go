// Diskpool: a U-index on disk behind a buffer pool. The index is built into
// a page file on disk through a fixed-capacity CLOCK cache, flushed to a
// durability point, closed, and reopened — the second process-lifetime query
// works straight off the disk pages. Every Close error is checked: with
// write-back caching, Close is where dirty pages and fsync failures surface.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/pager"
)

func main() {
	// 1. A small database of objects (the store itself stays in memory;
	// the paper's index structures are what live in page files).
	s := uindex.NewSchema()
	check(s.AddClass("Vehicle", "", uindex.Attr{Name: "Color", Type: uindex.String}))
	check(s.AddClass("Automobile", "Vehicle"))
	check(s.AddClass("Truck", "Vehicle"))
	db, err := uindex.NewDatabase(s)
	check(err)
	for i := 0; i < 500; i++ {
		class := []string{"Vehicle", "Automobile", "Truck"}[i%3]
		color := []string{"Red", "Blue", "White", "Green", "Black"}[i%5]
		_, err := db.Insert(class, uindex.Attrs{"Color": color})
		check(err)
	}

	// 2. Create the index in a disk page file, with a 32-frame buffer
	// pool in front. The pool implements pager.File, so the index code is
	// identical to the in-memory case.
	path := filepath.Join(os.TempDir(), "diskpool-color.uidx")
	defer os.Remove(path)
	df, err := pager.CreateDiskFile(path, 1024)
	check(err)
	pool, err := bufferpool.New(df, bufferpool.Config{Pages: 32, Policy: bufferpool.PolicyClock})
	check(err)
	spec := core.Spec{Name: "color", Root: "Vehicle", Attr: "Color"}
	ix, err := core.New(pool, db.Store(), spec)
	check(err)
	check(ix.Build())

	query := uindex.Query{
		Value:     uindex.Exact("Red"),
		Positions: []uindex.Position{uindex.On("Automobile")},
	}
	ms, stats, err := ix.Execute(query, uindex.Parallel, nil)
	check(err)
	fmt.Printf("red automobiles: %d matches, %d pages read\n", len(ms), stats.PagesRead)

	// 3. Durability point (the atomic-commit protocol): push the tree's
	// dirty nodes into the pool, stage the meta page id as the file's
	// checkpoint payload, then flush — the pool writes its dirty frames
	// back and the file's Sync publishes a new checksummed header
	// generation. A crash anywhere before that publish leaves the previous
	// checkpoint intact.
	check(ix.Flush())
	var root [4]byte
	binary.BigEndian.PutUint32(root[:], uint32(ix.MetaPage()))
	check(df.SetPayload(root[:]))
	check(pool.FlushAll())
	st := pool.PoolStats()
	fmt.Printf("pool after build+query: %d hits, %d misses (hit ratio %.1f%%), %d evictions\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Evictions)

	// 4. Close releases the pool and the file underneath it. The error
	// matters: a failed write-back here is data loss.
	check(pool.Close())

	// 5. Reopen the page file. Recovery picks the newest valid header,
	// and its payload tells us where the tree's meta page lives — no
	// state has to survive in process memory.
	df2, err := pager.OpenDiskFile(path)
	check(err)
	pl := df2.Payload()
	if len(pl) != 4 {
		log.Fatalf("recovered payload is %d bytes, want 4", len(pl))
	}
	meta := pager.PageID(binary.BigEndian.Uint32(pl))
	pool2, err := bufferpool.New(df2, bufferpool.Config{Pages: 32})
	check(err)
	ix2, err := core.Open(pool2, db.Store(), spec, meta)
	check(err)
	ms2, _, err := ix2.Execute(query, uindex.Parallel, nil)
	check(err)
	fmt.Printf("after reopen: %d matches (%d pages on disk)\n", len(ms2), pool2.NumPages())
	if len(ms2) != len(ms) {
		log.Fatalf("reopened index disagrees: %d vs %d matches", len(ms2), len(ms))
	}
	check(pool2.Close())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
