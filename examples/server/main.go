// Server example: run uindexd in-process over the paper's Example-1
// database, talk to it with the Go client, and scrape its /metrics — the
// minimal end-to-end use of the network subsystem. A production deployment
// runs the same pieces as `uindexd -listen ... -http ...` plus any client.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"repro"
	"repro/internal/demo"
	"repro/internal/server"
)

func main() {
	// 1. Build the Example-1 database (schema, color + age indexes, the
	// paper's objects) and serve it on loopback ephemeral ports.
	db, _, err := demo.Build(uindex.Options{PoolPages: 64})
	check(err)
	defer db.Close()
	srv, err := server.New(server.Config{
		DB:       db,
		Addr:     "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
	})
	check(err)
	check(srv.Start())
	fmt.Println("data path:", srv.Addr(), " ops:", srv.HTTPAddr())

	// 2. Dial the data path. The connection is a session holding one MVCC
	// snapshot; concurrent calls pipeline on the one connection.
	c, err := server.Dial(srv.Addr())
	check(err)
	defer c.Close()
	ctx := context.Background()

	// 3. Query in the paper's textual notation: exact, range, subtree, and
	// multi-value Parscan shapes, all over the wire.
	for _, q := range []string{
		"(Color=Red, Automobile)",
		"(Color=[Blue-Red], Vehicle*)",
		"(Color={Red,Blue}, [CompactAutomobile*, Truck*])",
	} {
		ms, stats, err := c.Query(ctx, "color", q)
		check(err)
		fmt.Printf("%-45s %d match(es), %d pages read\n", q, len(ms), stats.PagesRead)
	}

	// 4. Write through the session: the session snapshot refreshes, so the
	// insert is immediately visible to this session's reads.
	oid, err := c.Insert(ctx, "Truck", uindex.Attrs{"Name": "Hauler", "Color": "Silver"})
	check(err)
	ms, _, err := c.Query(ctx, "color", "(Color=Silver, Vehicle*)")
	check(err)
	fmt.Printf("inserted %d; session sees %d silver vehicle(s)\n", oid, len(ms))

	// 5. Scrape the ops listener: Prometheus text exposition, stdlib only.
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	check(err)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	check(err)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "uindexd_requests_total") ||
			strings.HasPrefix(line, "uindex_pool_hits_total") {
			fmt.Println("metrics:", line)
		}
	}

	// 6. Graceful drain: stop accepting, finish in-flight requests,
	// release session snapshots, checkpoint.
	check(srv.Shutdown(ctx))
	fmt.Println("drained")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
