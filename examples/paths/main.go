// Paths: the paper's path and combined class-hierarchy/path indexing
// (Sections 3.2.2–3.3) — one U-index over Vehicle/Company/Employee answers
// nested queries, mid-path restrictions, distinct-prefix queries, and the
// combined queries "not answerable with either the class-hierarchy or path
// indexes alone". It also demonstrates multiple paths sharing a prefix
// (Division/Company/Employee) and the Section-3.5 batch update.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	s := uindex.NewSchema()
	check(s.AddClass("Employee", "", uindex.Attr{Name: "Age", Type: uindex.Uint64}))
	check(s.AddClass("Company", "",
		uindex.Attr{Name: "Name", Type: uindex.String},
		uindex.Attr{Name: "President", Ref: "Employee"}))
	check(s.AddClass("Division", "", uindex.Attr{Name: "Belong", Ref: "Company"}))
	check(s.AddClass("Vehicle", "",
		uindex.Attr{Name: "Color", Type: uindex.String},
		uindex.Attr{Name: "ManufacturedBy", Ref: "Company"}))
	check(s.AddClass("Automobile", "Vehicle"))
	check(s.AddClass("Truck", "Vehicle"))
	check(s.AddClass("AutoCompany", "Company"))
	check(s.AddClass("JapaneseAutoCompany", "AutoCompany"))

	db, err := uindex.NewDatabase(s)
	check(err)
	// The combined path index on the vehicles' presidents' ages...
	check(db.CreateIndex(uindex.IndexSpec{
		Name: "vage", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}))
	// ... and a second path index sharing its (Company, Employee) prefix —
	// the paper's multiple-paths point: the shared prefix compresses away.
	check(db.CreateIndex(uindex.IndexSpec{
		Name: "dage", Root: "Division", Refs: []string{"Belong", "President"}, Attr: "Age"}))

	// Populate: 60 employees, 40 companies, 25 divisions, 3000 vehicles.
	rng := rand.New(rand.NewSource(3))
	var employees, companies []uindex.OID
	for i := 0; i < 60; i++ {
		e, err := db.Insert("Employee", uindex.Attrs{"Age": 30 + rng.Intn(40)})
		check(err)
		employees = append(employees, e)
	}
	companyClasses := []string{"Company", "AutoCompany", "JapaneseAutoCompany"}
	for i := 0; i < 40; i++ {
		c, err := db.Insert(companyClasses[rng.Intn(3)], uindex.Attrs{
			"Name": fmt.Sprintf("Co%02d", i), "President": employees[rng.Intn(len(employees))]})
		check(err)
		companies = append(companies, c)
	}
	for i := 0; i < 80; i++ {
		_, err := db.Insert("Division", uindex.Attrs{"Belong": companies[rng.Intn(len(companies))]})
		check(err)
	}
	vehicleClasses := []string{"Vehicle", "Automobile", "Truck"}
	colors := []string{"Red", "Blue", "White"}
	for i := 0; i < 3000; i++ {
		_, err := db.Insert(vehicleClasses[rng.Intn(3)], uindex.Attrs{
			"Color": colors[rng.Intn(3)], "ManufacturedBy": companies[rng.Intn(len(companies))]})
		check(err)
	}

	ctx := context.Background()
	run := func(index, q string) ([]uindex.Match, uindex.Stats, error) {
		ix, ok := db.Index(index)
		if !ok {
			return nil, uindex.Stats{}, fmt.Errorf("no index %q", index)
		}
		parsed, err := uindex.ParseQuery(ix, q)
		if err != nil {
			return nil, uindex.Stats{}, err
		}
		return db.Query(ctx, index, parsed)
	}
	show := func(label, index, q string) {
		ms, stats, err := run(index, q)
		check(err)
		fmt.Printf("%-64s %5d matches %4d pages\n", label+"  "+q, len(ms), stats.PagesRead)
	}

	fmt.Println("-- path queries (Section 3.3) --")
	show("vehicles by companies with president aged 55", "vage", `(Age=55)`)
	// Restrict to one company that actually has a 55-year-old president.
	first, _, err := run("vage", `(Age=55, ?, ?) ; distinct 2`)
	check(err)
	if len(first) > 0 {
		show("  ... for one particular company", "vage",
			fmt.Sprintf(`(Age=55, ?, Company$%d)`, first[0].Path[1].OID))
	}
	show("companies whose president is 55 (partial path)", "vage", `(Age=55, ?, ?) ; distinct 2`)
	show("presidents aged 55 (shortest prefix)", "vage", `(Age=55, ?) ; distinct 1`)

	fmt.Println("\n-- combined class-hierarchy/path queries (impossible for CH or path index alone) --")
	show("vehicles by JapaneseAutoCompanies, president 55+", "vage", `(Age=[55-], ?, JapaneseAutoCompany*)`)
	show("trucks by AutoCompanies, president 55+", "vage", `(Age=[55-], ?, AutoCompany*, Truck*)`)

	fmt.Println("\n-- second path over the shared (Company, Employee) prefix --")
	show("divisions of companies with president aged 55", "dage", `(Age=55)`)

	// The Section-3.5 update: a company replaces its president. One Set
	// call; the facade applies the batch diff to both indexes.
	fmt.Println("\n-- president switch (Section 3.5 batch update) --")
	before, _, err := db.Query(ctx, "vage", uindex.Query{Value: uindex.Exact(99)})
	check(err)
	old, err := db.Insert("Employee", uindex.Attrs{"Age": 99})
	check(err)
	check(db.Set(companies[0], "President", old))
	after, _, err := db.Query(ctx, "vage", uindex.Query{Value: uindex.Exact(99)})
	check(err)
	fmt.Printf("vehicles under a 99-year-old president: %d -> %d after the switch\n",
		len(before), len(after))
	check(db.Close())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
