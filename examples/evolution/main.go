// Evolution: the paper's Section 4.3 — schema changes (Figure 4) and REF
// cycles. New classes receive codes without recoding anything; a class can
// be inserted *between* two coded siblings; and a REF cycle (Employee owns
// Vehicles, Vehicles are used by Employees) is broken with an alternate
// per-index coding, the paper's "duplicate names" trick.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/pager"
)

func main() {
	s := uindex.NewSchema()
	check(s.AddClass("Employee", "",
		uindex.Attr{Name: "Age", Type: uindex.Uint64},
		uindex.Attr{Name: "Owns", Ref: "Vehicle", Multi: true}))
	check(s.AddClass("Vehicle", "",
		uindex.Attr{Name: "Mileage", Type: uindex.Uint64},
		uindex.Attr{Name: "UsedBy", Ref: "Employee"}))
	check(s.AddClass("Automobile", "Vehicle"))
	check(s.AddClass("Truck", "Vehicle"))

	db, err := uindex.NewDatabase(s)
	check(err)
	fmt.Println("initial COD relation:")
	printCOD(db)

	// --- Figure 4a: add a class within an existing hierarchy. ---
	check(s.AddClass("Bus", "Vehicle"))
	fmt.Println("\nafter adding Bus under Vehicle (no other code moved):")
	printCOD(db)

	// Insert a class BETWEEN two coded siblings.
	check(s.AddClass("Motorcycle", "Vehicle"))
	check(s.InsertBetween("Motorcycle", "Automobile", "Truck"))
	m := db.Coding().MustCode("Motorcycle")
	a := db.Coding().MustCode("Automobile")
	tr := db.Coding().MustCode("Truck")
	fmt.Printf("\nMotorcycle inserted between Automobile and Truck: %s < %s < %s\n", a, m, tr)

	// --- Figure 4b: a brand-new hierarchy. ---
	check(s.AddClass("Garage", "", uindex.Attr{Name: "City", Type: uindex.String}))
	fmt.Println("\nafter adding the Garage hierarchy:")
	printCOD(db)

	// Data: employees own and use vehicles — a REF cycle.
	e1, err := db.Insert("Employee", uindex.Attrs{"Age": 41})
	check(err)
	v1, err := db.Insert("Automobile", uindex.Attrs{"Mileage": 120, "UsedBy": e1})
	check(err)
	v2, err := db.Insert("Motorcycle", uindex.Attrs{"Mileage": 9, "UsedBy": e1})
	check(err)
	check(db.Set(e1, "Owns", []uindex.OID{v1, v2}))

	// The default coding honors Owns (Vehicle codes sort below Employee),
	// so the Owns path indexes directly.
	check(db.CreateIndex(uindex.IndexSpec{
		Name: "owned-mileage", Root: "Employee", Refs: []string{"Owns"}, Attr: "Mileage"}))
	ms, _, err := db.Query(context.Background(), "owned-mileage", uindex.Query{Value: uindex.Range(uint64(100), nil)})
	check(err)
	fmt.Printf("\nemployees owning a vehicle with mileage >= 100: %d match(es)\n", len(ms))

	// The UsedBy path conflicts with the default coding — the facade
	// rejects it with a pointer to the fix...
	err = db.CreateIndex(uindex.IndexSpec{
		Name: "user-age", Root: "Vehicle", Refs: []string{"UsedBy"}, Attr: "Age"})
	fmt.Printf("\nUsedBy index over the default coding: %v\n", err)

	// ... an alternate coding honoring the UsedBy edge (Section 4.3).
	alt, err := s.CodingHonoring([]uindex.RefEdge{{Source: "Vehicle", Attr: "UsedBy", Target: "Employee"}})
	check(err)
	fmt.Println("\nalternate coding for the UsedBy index (Employee now sorts first):")
	for _, row := range alt.Table() {
		fmt.Printf("  %-12s COD %s\n", row.Class, row.Code.Compact())
	}
	// A hand-built index's page file goes through a buffer pool here —
	// the pool implements pager.File, so the index code does not change,
	// and closing it (checked!) flushes the cached pages back.
	pool, err := bufferpool.New(pager.NewMemFile(0), bufferpool.Config{Pages: 16})
	check(err)
	ix, err := core.New(pool, db.Store(), core.Spec{
		Name: "user-age", Root: "Vehicle", Refs: []string{"UsedBy"}, Attr: "Age", Coding: alt})
	check(err)
	check(ix.Build())
	ms2, _, err := ix.Execute(uindex.Query{Value: uindex.Exact(41)}, uindex.Parallel, nil)
	check(err)
	fmt.Printf("\nvehicles used by a 41-year-old employee (alternate-coding index): %d match(es)\n", len(ms2))
	for _, m := range ms2 {
		fmt.Printf("  employee %d -> vehicle %d (%s)\n", m.Path[0].OID, m.Path[1].OID, m.Path[1].Code.Compact())
	}
	check(ix.DropCache()) // push tree-cached nodes into the pool
	check(pool.Close())
	check(db.Close())
}

func printCOD(db *uindex.Database) {
	for _, row := range db.CODTable() {
		fmt.Println(" ", row)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
