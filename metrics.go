package uindex

import "sync/atomic"

// Metrics is one merged snapshot of every counter the engine maintains:
// the buffer-pool and decoded-node-cache counters that previously required
// separate PoolStats/NodeCacheStats calls, plus cumulative query and write
// counters accumulated by the facade. internal/obs (and any future tool)
// reads this one struct instead of three ad-hoc accessors.
//
// All counters are cumulative over the database's lifetime; Metrics may be
// called at any time, including concurrently with queries and writers, and
// after Close.
type Metrics struct {
	// Pool aggregates the buffer-pool counters over every index;
	// PoolEnabled is false when the database runs without a pool
	// (Options.PoolPages 0), in which case Pool is zero.
	Pool        BufferPoolStats
	PoolEnabled bool
	// NodeCache aggregates the decoded-node cache counters over every
	// index.
	NodeCache NodeCacheStats

	// Query-side counters. Queries counts completed Query calls —
	// including snapshot queries and QueryParallel jobs; QueryErrors the
	// subset that returned an error. PagesRead, EntriesScanned, Matches,
	// and PrefetchIssued sum the per-query Stats (PrefetchIssued counts
	// pages handed to the background frontier prefetcher — accounting
	// only, prefetched pages never inflate PagesRead).
	Queries        uint64
	QueryErrors    uint64
	PagesRead      uint64
	EntriesScanned uint64
	Matches        uint64
	PrefetchIssued uint64

	// Write-side counters: completed mutations and the subset that
	// returned an error (store rejection or index-maintenance failure).
	Inserts     uint64
	Deletes     uint64
	Sets        uint64
	WriteErrors uint64

	// Batches counts completed Apply calls; BatchOps the operations they
	// applied (those are also counted individually under
	// Inserts/Sets/Deletes).
	Batches  uint64
	BatchOps uint64

	// Checkpoints counts completed Checkpoint calls (with DurabilityWAL,
	// completed WAL checkpoints from any trigger — background, explicit,
	// catalog change, or Close).
	Checkpoints uint64

	// WAL series; all zero unless the database runs with DurabilityWAL
	// (WALEnabled). WALAppends counts records appended, WALFsyncs the
	// group-commit fsyncs that made them durable (WALFsyncs < WALAppends
	// means group commit is amortizing), WALBatches the flush batches and
	// WALBatchRecords the records they carried (their ratio is the mean
	// group-commit batch size). WALRecoveryReplayed is the records Open
	// replayed to recover this database; WALCheckpoints the completed
	// incremental checkpoints; WALLagBytes the live log bytes not yet
	// folded into a checkpoint.
	WALEnabled          bool
	WALAppends          uint64
	WALFsyncs           uint64
	WALBatches          uint64
	WALBatchRecords     uint64
	WALRecoveryReplayed uint64
	WALCheckpoints      uint64
	WALLagBytes         uint64

	// Snapshot lifecycle: how many Snapshot() calls ever pinned a view,
	// and how many are currently unreleased. SnapshotsActive reaching 0
	// after Close proves no epoch pins leak.
	SnapshotsTaken  uint64
	SnapshotsActive uint64

	// Indexes is the number of declared indexes.
	Indexes int

	// Shards maps each index name to its per-shard series — entry counts
	// and write-lock traffic — in shard order. Unsharded indexes appear
	// with a single-element slice.
	Shards map[string][]ShardStat
}

// ShardStat is one shard's slice of an index's per-shard metrics.
type ShardStat struct {
	// Shard is the shard's position in its group (0-based).
	Shard int `json:"shard"`
	// Entries is the number of index entries currently in the shard's
	// tree.
	Entries int `json:"entries"`
	// Writes counts the mutations that acquired this shard's writer lock
	// since the database opened — the shard-distribution metric for write
	// workloads.
	Writes uint64 `json:"writes"`
}

// counters is the facade's cumulative side of Metrics; every field is
// atomic so queries and writers record without any shared lock.
type counters struct {
	queries        atomic.Uint64
	queryErrors    atomic.Uint64
	pagesRead      atomic.Uint64
	entriesScanned atomic.Uint64
	matches        atomic.Uint64
	prefetchIssued atomic.Uint64
	inserts        atomic.Uint64
	deletes        atomic.Uint64
	sets           atomic.Uint64
	writeErrors    atomic.Uint64
	batches        atomic.Uint64
	batchOps       atomic.Uint64
	checkpoints    atomic.Uint64
	snapsTaken     atomic.Uint64
	snapsActive    atomic.Int64
}

// countQuery records one completed query execution.
func (c *counters) countQuery(stats Stats, err error) {
	c.queries.Add(1)
	if err != nil {
		c.queryErrors.Add(1)
		return
	}
	c.pagesRead.Add(uint64(stats.PagesRead))
	c.entriesScanned.Add(uint64(stats.EntriesScanned))
	c.matches.Add(uint64(stats.Matches))
	c.prefetchIssued.Add(uint64(stats.PrefetchIssued))
}

// countWrite records one completed mutation on the given counter.
func (c *counters) countWrite(kind *atomic.Uint64, err error) {
	if err != nil {
		c.writeErrors.Add(1)
		return
	}
	kind.Add(1)
}

// Metrics returns one merged snapshot of the engine's counters; see the
// Metrics type for the field semantics.
func (db *Database) Metrics() Metrics {
	m := Metrics{
		Queries:         db.ctrs.queries.Load(),
		QueryErrors:     db.ctrs.queryErrors.Load(),
		PagesRead:       db.ctrs.pagesRead.Load(),
		EntriesScanned:  db.ctrs.entriesScanned.Load(),
		Matches:         db.ctrs.matches.Load(),
		PrefetchIssued:  db.ctrs.prefetchIssued.Load(),
		Inserts:         db.ctrs.inserts.Load(),
		Deletes:         db.ctrs.deletes.Load(),
		Sets:            db.ctrs.sets.Load(),
		WriteErrors:     db.ctrs.writeErrors.Load(),
		Batches:         db.ctrs.batches.Load(),
		BatchOps:        db.ctrs.batchOps.Load(),
		Checkpoints:     db.ctrs.checkpoints.Load(),
		SnapshotsTaken:  db.ctrs.snapsTaken.Load(),
		SnapshotsActive: uint64(max(0, db.ctrs.snapsActive.Load())),
	}
	if w := db.wal; w != nil {
		st := w.log.Stats()
		m.WALEnabled = true
		m.WALAppends = st.Appends
		m.WALFsyncs = st.Fsyncs
		m.WALBatches = st.Batches
		m.WALBatchRecords = st.BatchRecords
		m.WALRecoveryReplayed = w.replayed.Load()
		m.WALCheckpoints = w.ckpts.Load()
		m.WALLagBytes = uint64(max(0, w.log.LiveBytes()))
	}
	m.Pool, m.PoolEnabled = db.PoolStats()
	m.NodeCache = db.NodeCacheStats()
	db.mu.RLock()
	m.Indexes = len(db.groups)
	m.Shards = make(map[string][]ShardStat, len(db.groups))
	for name, g := range db.groups {
		m.Shards[name] = g.shardStats()
	}
	db.mu.RUnlock()
	return m
}

// shardStats reads one group's per-shard series. Entry counts come from the
// live trees (O(1) per shard) and may be mid-mutation; the write counters
// are monotone.
func (g *indexGroup) shardStats() []ShardStat {
	out := make([]ShardStat, g.sharded.NumShards())
	for i := range out {
		out[i] = ShardStat{
			Shard:   i,
			Entries: g.sharded.Shard(i).Len(),
			Writes:  g.shardWrites[i].Load(),
		}
	}
	return out
}

// ShardStats returns the per-shard series of one index (see ShardStat); ok
// is false when the index does not exist. Unsharded indexes report a single
// shard.
func (db *Database) ShardStats(index string) ([]ShardStat, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	g, ok := db.groups[index]
	if !ok {
		return nil, false
	}
	return g.shardStats(), true
}

// NumShards returns the shard count of one index; ok is false when the
// index does not exist.
func (db *Database) NumShards(index string) (int, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	g, ok := db.groups[index]
	if !ok {
		return 0, false
	}
	return g.sharded.NumShards(), true
}
