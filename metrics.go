package uindex

import "sync/atomic"

// Metrics is one merged snapshot of every counter the engine maintains:
// the buffer-pool and decoded-node-cache counters that previously required
// separate PoolStats/NodeCacheStats calls, plus cumulative query and write
// counters accumulated by the facade. internal/obs (and any future tool)
// reads this one struct instead of three ad-hoc accessors.
//
// All counters are cumulative over the database's lifetime; Metrics may be
// called at any time, including concurrently with queries and writers, and
// after Close.
type Metrics struct {
	// Pool aggregates the buffer-pool counters over every index;
	// PoolEnabled is false when the database runs without a pool
	// (Options.PoolPages 0), in which case Pool is zero.
	Pool        BufferPoolStats
	PoolEnabled bool
	// NodeCache aggregates the decoded-node cache counters over every
	// index.
	NodeCache NodeCacheStats

	// Query-side counters. Queries counts completed Query calls —
	// including snapshot queries and QueryParallel jobs; QueryErrors the
	// subset that returned an error. PagesRead, EntriesScanned, and
	// Matches sum the per-query Stats.
	Queries        uint64
	QueryErrors    uint64
	PagesRead      uint64
	EntriesScanned uint64
	Matches        uint64

	// Write-side counters: completed mutations and the subset that
	// returned an error (store rejection or index-maintenance failure).
	Inserts     uint64
	Deletes     uint64
	Sets        uint64
	WriteErrors uint64

	// Checkpoints counts completed Checkpoint calls.
	Checkpoints uint64

	// Snapshot lifecycle: how many Snapshot() calls ever pinned a view,
	// and how many are currently unreleased. SnapshotsActive reaching 0
	// after Close proves no epoch pins leak.
	SnapshotsTaken  uint64
	SnapshotsActive uint64

	// Indexes is the number of declared indexes.
	Indexes int
}

// counters is the facade's cumulative side of Metrics; every field is
// atomic so queries and writers record without any shared lock.
type counters struct {
	queries        atomic.Uint64
	queryErrors    atomic.Uint64
	pagesRead      atomic.Uint64
	entriesScanned atomic.Uint64
	matches        atomic.Uint64
	inserts        atomic.Uint64
	deletes        atomic.Uint64
	sets           atomic.Uint64
	writeErrors    atomic.Uint64
	checkpoints    atomic.Uint64
	snapsTaken     atomic.Uint64
	snapsActive    atomic.Int64
}

// countQuery records one completed query execution.
func (c *counters) countQuery(stats Stats, err error) {
	c.queries.Add(1)
	if err != nil {
		c.queryErrors.Add(1)
		return
	}
	c.pagesRead.Add(uint64(stats.PagesRead))
	c.entriesScanned.Add(uint64(stats.EntriesScanned))
	c.matches.Add(uint64(stats.Matches))
}

// countWrite records one completed mutation on the given counter.
func (c *counters) countWrite(kind *atomic.Uint64, err error) {
	if err != nil {
		c.writeErrors.Add(1)
		return
	}
	kind.Add(1)
}

// Metrics returns one merged snapshot of the engine's counters; see the
// Metrics type for the field semantics.
func (db *Database) Metrics() Metrics {
	m := Metrics{
		Queries:         db.ctrs.queries.Load(),
		QueryErrors:     db.ctrs.queryErrors.Load(),
		PagesRead:       db.ctrs.pagesRead.Load(),
		EntriesScanned:  db.ctrs.entriesScanned.Load(),
		Matches:         db.ctrs.matches.Load(),
		Inserts:         db.ctrs.inserts.Load(),
		Deletes:         db.ctrs.deletes.Load(),
		Sets:            db.ctrs.sets.Load(),
		WriteErrors:     db.ctrs.writeErrors.Load(),
		Checkpoints:     db.ctrs.checkpoints.Load(),
		SnapshotsTaken:  db.ctrs.snapsTaken.Load(),
		SnapshotsActive: uint64(max(0, db.ctrs.snapsActive.Load())),
	}
	m.Pool, m.PoolEnabled = db.PoolStats()
	m.NodeCache = db.NodeCacheStats()
	db.mu.RLock()
	m.Indexes = len(db.indexes)
	db.mu.RUnlock()
	return m
}
