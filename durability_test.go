package uindex

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/btree"
	"repro/internal/pager"
)

// vehicleSchema is a minimal hierarchy for the durability tests.
func vehicleSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.AddClass("Vehicle", "", Attr{Name: "Color", Type: String}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("Automobile", "Vehicle"); err != nil {
		t.Fatal(err)
	}
	return s
}

var testColors = []string{"Red", "White", "Red", "Blue", "White", "Red"}

func insertVehicles(t *testing.T, db *Database, colors []string) []OID {
	t.Helper()
	oids := make([]OID, len(colors))
	for i, c := range colors {
		oid, err := db.Insert("Automobile", Attrs{"Color": c})
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	return oids
}

func redQuery() Query {
	return Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}
}

var colorSpec = IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}

// TestDiskBackedCheckpointReopen: a checkpointed disk-backed index is
// reopened from its file — not rebuilt — and serves the same query results
// once the object store is repopulated. A dropped index re-attaches to its
// file.
func TestDiskBackedCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, PoolPages: 16}

	db1, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db1.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db1, testColors)
	if err := db1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	baseline, _, err := db1.Query(context.Background(), "color", redQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 3 {
		t.Fatalf("baseline red vehicles = %d, want 3", len(baseline))
	}
	ix1, _ := db1.Index("color")
	wantLen := ix1.Len()
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over an EMPTY store: the entry count can only come from the
	// file — a silent rebuild would produce an empty index.
	db2, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	ix2, _ := db2.Index("color")
	if ix2.Len() != wantLen {
		t.Fatalf("reopened index has %d entries, want %d (rebuilt instead of reopened?)", ix2.Len(), wantLen)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the store repopulated (same insertion order, same OIDs):
	// queries must match the original database.
	db3, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db3, testColors)
	if err := db3.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	ms, _, err := db3.Query(context.Background(), "color", redQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(baseline) {
		t.Fatalf("recovered query found %d matches, want %d", len(ms), len(baseline))
	}
	for i := range ms {
		if ms[i].Path[0].OID != baseline[i].Path[0].OID {
			t.Fatalf("match %d OID = %d, want %d", i, ms[i].Path[0].OID, baseline[i].Path[0].OID)
		}
	}

	// DropIndex leaves the file; CreateIndex re-attaches it.
	if err := db3.DropIndex("color"); err != nil {
		t.Fatal(err)
	}
	if err := db3.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	ix3, _ := db3.Index("color")
	if ix3.Len() != wantLen {
		t.Fatalf("re-attached index has %d entries, want %d", ix3.Len(), wantLen)
	}
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityNoneDiscardsOnClose: with DurabilityNone, Close discards
// mutations after the last checkpoint; the file keeps the checkpointed
// state (here: the initial build) intact.
func TestDurabilityNoneDiscardsOnClose(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Durability: DurabilityNone}

	db1, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db1, testColors[:3]) // in the store before the build
	if err := db1.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db1, testColors[3:]) // indexed, but never checkpointed
	ix1, _ := db1.Index("color")
	if ix1.Len() != len(testColors) {
		t.Fatalf("live index has %d entries, want %d", ix1.Len(), len(testColors))
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	ix2, _ := db2.Index("color")
	if ix2.Len() != 3 {
		t.Fatalf("recovered index has %d entries, want the 3 from the build checkpoint", ix2.Len())
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilitySyncSurvivesCrash: with DurabilitySync every mutation is
// durable when it returns. A byte-for-byte copy of the live file (the state
// a crash would leave) recovers to all inserts so far without any Close or
// explicit Checkpoint.
func TestDurabilitySyncSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, PoolPages: 16, Durability: DurabilitySync}

	db, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	for i, c := range testColors {
		if _, err := db.Insert("Automobile", Attrs{"Color": c}); err != nil {
			t.Fatal(err)
		}
		// Snapshot the file as a crash at this instant would leave it.
		raw, err := os.ReadFile(filepath.Join(dir, "color.uidx"))
		if err != nil {
			t.Fatal(err)
		}
		copyPath := filepath.Join(dir, fmt.Sprintf("crash%d.uidx", i))
		if err := os.WriteFile(copyPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		df, err := pager.OpenDiskFile(copyPath)
		if err != nil {
			t.Fatalf("after insert %d: recovering crash image: %v", i, err)
		}
		pl := df.Payload()
		if len(pl) != 4 {
			t.Fatalf("after insert %d: payload length %d", i, len(pl))
		}
		tr, err := btree.Open(df, pager.PageID(binary.BigEndian.Uint32(pl)))
		if err != nil {
			t.Fatalf("after insert %d: opening recovered tree: %v", i, err)
		}
		if tr.Len() != i+1 {
			t.Fatalf("after insert %d: recovered tree has %d entries, want %d", i, tr.Len(), i+1)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
		df.CloseDiscard()
	}
}

// TestCorruptIndexFileSurfaces: corruption in a disk-backed index file is
// reported as a typed error from CreateIndex — never a silent rebuild.
func TestCorruptIndexFileSurfaces(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir}

	db1, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db1, testColors)
	if err := db1.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "color.uidx")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in every page slot after the header page: any
	// page the reopen touches fails its checksum.
	const slotSize = 1024 + 12
	mangled := append([]byte(nil), pristine...)
	for off := slotSize + 50; off < len(mangled); off += slotSize {
		mangled[off] ^= 0xFF
	}
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	err = db2.CreateIndex(colorSpec)
	var cp ErrCorruptPage
	if err == nil || (!errors.As(err, &cp) && !errors.Is(err, ErrCorruptFile)) {
		t.Fatalf("CreateIndex on corrupt file = %v, want ErrCorruptPage or ErrCorruptFile", err)
	}
	if got := db2.Indexes(); len(got) != 0 {
		t.Fatalf("corrupt index registered anyway: %v", got)
	}
	db2.Close()

	// Truncation is structural damage: ErrCorruptFile.
	if err := os.WriteFile(path, pristine[:100], 0o644); err != nil {
		t.Fatal(err)
	}
	db3, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db3.CreateIndex(colorSpec); !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("CreateIndex on truncated file = %v, want ErrCorruptFile", err)
	}
	db3.Close()
}
