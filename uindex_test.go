package uindex

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// paperDB builds the paper's Example 1 database through the public API.
func paperDB(t testing.TB) (*Database, map[string]OID) {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", Attr{Name: "Age", Type: Uint64}))
	must(s.AddClass("Company", "",
		Attr{Name: "Name", Type: String},
		Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("City", "", Attr{Name: "Name", Type: String}))
	must(s.AddClass("Division", "",
		Attr{Name: "Belong", Ref: "Company"},
		Attr{Name: "LocatedIn", Ref: "City"}))
	must(s.AddClass("Vehicle", "",
		Attr{Name: "Name", Type: String},
		Attr{Name: "Color", Type: String},
		Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("Truck", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))
	must(s.AddClass("AutoCompany", "Company"))
	must(s.AddClass("TruckCompany", "Company"))
	must(s.AddClass("JapaneseAutoCompany", "AutoCompany"))

	db, err := NewDatabase(s)
	if err != nil {
		t.Fatal(err)
	}
	must(db.CreateIndex(IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}))
	must(db.CreateIndex(IndexSpec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}))

	ids := map[string]OID{}
	ins := func(name, class string, attrs Attrs) {
		t.Helper()
		oid, err := db.Insert(class, attrs)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = oid
	}
	ins("e1", "Employee", Attrs{"Age": 50})
	ins("e2", "Employee", Attrs{"Age": 60})
	ins("e3", "Employee", Attrs{"Age": 45})
	ins("c1", "JapaneseAutoCompany", Attrs{"Name": "Subaru", "President": ids["e3"]})
	ins("c2", "AutoCompany", Attrs{"Name": "Fiat", "President": ids["e1"]})
	ins("c3", "AutoCompany", Attrs{"Name": "Renault", "President": ids["e2"]})
	ins("v1", "Vehicle", Attrs{"Name": "Legacy", "Color": "White", "ManufacturedBy": ids["c1"]})
	ins("v2", "Automobile", Attrs{"Name": "Tipo", "Color": "White", "ManufacturedBy": ids["c2"]})
	ins("v3", "Automobile", Attrs{"Name": "Panda", "Color": "Red", "ManufacturedBy": ids["c2"]})
	ins("v4", "CompactAutomobile", Attrs{"Name": "R5", "Color": "Red", "ManufacturedBy": ids["c3"]})
	ins("v5", "CompactAutomobile", Attrs{"Name": "Justy", "Color": "Blue", "ManufacturedBy": ids["c1"]})
	ins("v6", "CompactAutomobile", Attrs{"Name": "Uno", "Color": "White", "ManufacturedBy": ids["c2"]})
	return db, ids
}

func TestDatabaseLifecycle(t *testing.T) {
	db, ids := paperDB(t)
	ms, stats, err := db.Query(context.Background(), "color", Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || stats.PagesRead == 0 {
		t.Fatalf("red vehicles = %d, stats %+v", len(ms), stats)
	}
	// Path query through the facade.
	ms, _, err = db.Query(context.Background(), "age", Query{Value: Exact(50)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("age-50 vehicles = %d", len(ms))
	}
	for _, m := range ms {
		if m.Path[1].OID != ids["c2"] {
			t.Fatalf("path = %+v", m.Path)
		}
	}
	// ClassOf, Get.
	if cls, ok := db.ClassOf(ids["v4"]); !ok || cls != "CompactAutomobile" {
		t.Fatalf("ClassOf = %q, %v", cls, ok)
	}
	if _, ok := db.Get(ids["v4"]); !ok {
		t.Fatal("Get failed")
	}
	if _, ok := db.ClassOf(9999); ok {
		t.Fatal("ClassOf of missing object succeeded")
	}
}

func TestFacadeMutations(t *testing.T) {
	db, ids := paperDB(t)
	// Delete a vehicle: entries vanish from both indexes.
	if err := db.Delete(ids["v3"]); err != nil {
		t.Fatal(err)
	}
	ms, _, _ := db.Query(context.Background(), "color", Query{Value: Exact("Red")})
	if len(ms) != 1 {
		t.Fatalf("red vehicles after delete = %d", len(ms))
	}
	// The president-switch update of Section 3.5 via Set.
	if err := db.Set(ids["c2"], "President", ids["e2"]); err != nil {
		t.Fatal(err)
	}
	ms, _, _ = db.Query(context.Background(), "age", Query{Value: Exact(50)})
	if len(ms) != 0 {
		t.Fatalf("stale age-50 entries: %d", len(ms))
	}
	ms, _, _ = db.Query(context.Background(), "age", Query{Value: Exact(60)})
	if len(ms) != 3 { // v2, v6 (Fiat) + v4 (Renault)
		t.Fatalf("age-60 vehicles = %d", len(ms))
	}
	// Color change.
	if err := db.Set(ids["v6"], "Color", "Green"); err != nil {
		t.Fatal(err)
	}
	ms, _, _ = db.Query(context.Background(), "color", Query{Value: Exact("Green")})
	if len(ms) != 1 {
		t.Fatalf("green vehicles = %d", len(ms))
	}
}

func TestParsedTextualQueries(t *testing.T) {
	db, _ := paperDB(t)
	runText := func(index, text string) ([]Match, error) {
		ix, ok := db.Index(index)
		if !ok {
			return nil, fmt.Errorf("no index %q", index)
		}
		q, err := ParseQuery(ix, text)
		if err != nil {
			return nil, err
		}
		ms, _, err := db.Query(context.Background(), index, q)
		return ms, err
	}
	ms, err := runText("color", `(Color=Red, Automobile*)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("textual query matches = %d", len(ms))
	}
	ms, err = runText("age", `(Age=50, ?, ?) ; distinct 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("distinct companies = %d", len(ms))
	}
	if _, err := runText("nope", `(Color=Red)`); err == nil {
		t.Error("textual query on missing index succeeded")
	}
	if _, err := runText("color", `garbage`); err == nil {
		t.Error("textual query with bad syntax succeeded")
	}
}

func TestIndexManagement(t *testing.T) {
	db, _ := paperDB(t)
	if got := db.Indexes(); len(got) != 2 || got[0] != "color" {
		t.Fatalf("Indexes = %v", got)
	}
	if err := db.CreateIndex(IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := db.CreateIndex(IndexSpec{Name: "bad", Root: "Ghost", Attr: "X"}); err == nil {
		t.Error("invalid index accepted")
	}
	if _, ok := db.Index("color"); !ok {
		t.Error("Index lookup failed")
	}
	if err := db.DropIndex("color"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("color"); err == nil {
		t.Error("double drop succeeded")
	}
	if got := db.Indexes(); len(got) != 1 || got[0] != "age" {
		t.Fatalf("Indexes after drop = %v", got)
	}
	// Mutations still work with the remaining index.
	if _, err := db.Insert("Employee", Attrs{"Age": 33}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAlgorithmsAgree(t *testing.T) {
	db, _ := paperDB(t)
	ctx := context.Background()
	q := Query{Value: OneOf("Red", "Blue"), Positions: []Position{On("Automobile")}}
	a, _, err := db.Query(ctx, "color", q, WithAlgorithm(Parallel))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := db.Query(ctx, "color", q, WithAlgorithm(Forward))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("algorithms disagree: %d vs %d", len(a), len(b))
	}
	if _, _, err := db.Query(ctx, "missing", q, WithAlgorithm(Parallel)); err == nil {
		t.Error("query on missing index succeeded")
	}
}

func TestCODTable(t *testing.T) {
	db, _ := paperDB(t)
	rows := db.CODTable()
	if len(rows) != 11 {
		t.Fatalf("COD table rows = %d", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"Employee", "COD C1", "COD C5AA", "COD C2AA"} {
		if !strings.Contains(joined, want) {
			t.Errorf("COD table missing %q:\n%s", want, joined)
		}
	}
}

func TestSchemaEvolutionThroughFacade(t *testing.T) {
	db, _ := paperDB(t)
	// Add a class after the database exists; it gets a code and is
	// immediately indexable.
	if err := db.Schema().AddClass("Bus", "Vehicle"); err != nil {
		t.Fatal(err)
	}
	oid, err := db.Insert("Bus", Attrs{"Name": "CityBus", "Color": "Red"})
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := db.Query(context.Background(), "color", Query{Value: Exact("Red"), Positions: []Position{On("Bus")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Path[0].OID != oid {
		t.Fatalf("bus query = %v", ms)
	}
	// And the full Vehicle subtree picks it up too.
	ms, _, _ = db.Query(context.Background(), "color", Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}})
	if len(ms) != 3 {
		t.Fatalf("red vehicles incl. bus = %d", len(ms))
	}
}
