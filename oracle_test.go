package uindex

// Randomized oracle test: drive the whole stack (facade -> core -> btree ->
// pager) with random mutations and random queries, and check every query
// result — under BOTH retrieval algorithms — against a brute-force
// evaluation over the object store. This is the end-to-end counterpart of
// the per-package property tests.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

type oracleWorld struct {
	t         *testing.T
	db        *Database
	rng       *rand.Rand
	employees []OID
	companies []OID
	vehicles  []OID
	colors    []string
}

func newOracleWorld(t *testing.T, seed int64) *oracleWorld {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", Attr{Name: "Age", Type: Uint64}))
	must(s.AddClass("Company", "", Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("AutoCompany", "Company"))
	must(s.AddClass("Vehicle", "",
		Attr{Name: "Color", Type: String},
		Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))
	must(s.AddClass("Truck", "Vehicle"))
	db, err := NewDatabase(s)
	must(err)
	must(db.CreateIndex(IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}))
	must(db.CreateIndex(IndexSpec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}))
	return &oracleWorld{
		t: t, db: db, rng: rand.New(rand.NewSource(seed)),
		colors: []string{"Red", "Blue", "Green", "White"},
	}
}

func (w *oracleWorld) step() {
	switch op := w.rng.Intn(20); {
	case op < 3 || len(w.employees) == 0: // new employee
		oid, err := w.db.Insert("Employee", Attrs{"Age": 30 + w.rng.Intn(8)})
		if err != nil {
			w.t.Fatal(err)
		}
		w.employees = append(w.employees, oid)
	case op < 6 || len(w.companies) == 0: // new company
		class := []string{"Company", "AutoCompany"}[w.rng.Intn(2)]
		oid, err := w.db.Insert(class, Attrs{"President": w.pick(w.employees)})
		if err != nil {
			w.t.Fatal(err)
		}
		w.companies = append(w.companies, oid)
	case op < 13: // new vehicle
		class := []string{"Vehicle", "Automobile", "CompactAutomobile", "Truck"}[w.rng.Intn(4)]
		oid, err := w.db.Insert(class, Attrs{
			"Color":          w.colors[w.rng.Intn(len(w.colors))],
			"ManufacturedBy": w.pick(w.companies)})
		if err != nil {
			w.t.Fatal(err)
		}
		w.vehicles = append(w.vehicles, oid)
	case op < 15 && len(w.vehicles) > 0: // recolor a vehicle
		if err := w.db.Set(w.pick(w.vehicles), "Color", w.colors[w.rng.Intn(len(w.colors))]); err != nil {
			w.t.Fatal(err)
		}
	case op < 17 && len(w.companies) > 0: // president switch
		if err := w.db.Set(w.pick(w.companies), "President", w.pick(w.employees)); err != nil {
			w.t.Fatal(err)
		}
	case op < 18 && len(w.employees) > 0: // age change
		if err := w.db.Set(w.pick(w.employees), "Age", 30+w.rng.Intn(8)); err != nil {
			w.t.Fatal(err)
		}
	case len(w.vehicles) > 0: // delete a vehicle
		i := w.rng.Intn(len(w.vehicles))
		if err := w.db.Delete(w.vehicles[i]); err != nil {
			w.t.Fatal(err)
		}
		w.vehicles = append(w.vehicles[:i], w.vehicles[i+1:]...)
	}
}

func (w *oracleWorld) pick(s []OID) OID { return s[w.rng.Intn(len(s))] }

// bruteChains enumerates (vehicle, company, employee) chains from the store.
func (w *oracleWorld) bruteChains() [][3]OID {
	var out [][3]OID
	st := w.db.Store()
	for _, v := range st.HierarchyExtent("Vehicle") {
		c, ok := st.Deref(v, "ManufacturedBy")
		if !ok {
			continue
		}
		e, ok := st.Deref(c, "President")
		if !ok {
			continue
		}
		out = append(out, [3]OID{v, c, e})
	}
	return out
}

// checkColorQuery compares a color-index query against brute force.
func (w *oracleWorld) checkColorQuery() {
	w.t.Helper()
	classes := []string{"Vehicle", "Automobile", "CompactAutomobile", "Truck"}
	class := classes[w.rng.Intn(len(classes))]
	subtree := w.rng.Intn(2) == 0
	color := w.colors[w.rng.Intn(len(w.colors))]
	q := Query{Value: Exact(color), Positions: []Position{{Alts: []ClassPattern{{Class: class, Subtree: subtree}}}}}

	want := map[OID]bool{}
	st := w.db.Store()
	sch := w.db.Schema()
	for _, v := range st.HierarchyExtent("Vehicle") {
		o, _ := st.Get(v)
		if subtree {
			if !sch.IsSubclassOf(o.Class, class) {
				continue
			}
		} else if o.Class != class {
			continue
		}
		if c, ok := o.Attr("Color"); ok && c == color {
			want[v] = true
		}
	}
	for _, alg := range []Algorithm{Parallel, Forward} {
		ms, _, err := w.db.Query(context.Background(), "color", q, WithAlgorithm(alg))
		if err != nil {
			w.t.Fatal(err)
		}
		got := map[OID]bool{}
		for _, m := range ms {
			got[m.Path[0].OID] = true
		}
		if len(got) != len(want) {
			w.t.Fatalf("%v color query (%s,%s,subtree=%v): got %d, want %d",
				alg, color, class, subtree, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				w.t.Fatalf("%v color query missing vehicle %d", alg, v)
			}
		}
	}
}

// checkAgeQuery compares a path-index query against brute force, including
// mid-path restrictions and distinct prefixes.
func (w *oracleWorld) checkAgeQuery() {
	w.t.Helper()
	lo := uint64(30 + w.rng.Intn(8))
	hi := lo + uint64(w.rng.Intn(4))
	q := Query{Value: Range(lo, hi)}
	var restrictCo OID
	if len(w.companies) > 0 && w.rng.Intn(2) == 0 {
		restrictCo = w.pick(w.companies)
		q.Positions = []Position{Any, OnObjects("Company", restrictCo)}
	}
	distinct := w.rng.Intn(3) == 0
	if distinct {
		q.Distinct = 2
	}

	st := w.db.Store()
	type prefix struct{ e, c OID }
	wantFull := map[[3]OID]bool{}
	wantDistinct := map[prefix]bool{}
	for _, ch := range w.bruteChains() {
		if restrictCo != 0 && ch[1] != restrictCo {
			continue
		}
		o, _ := st.Get(ch[2])
		ageAny, ok := o.Attr("Age")
		if !ok {
			continue
		}
		age := uint64(ageAny.(int))
		if age < lo || age > hi {
			continue
		}
		wantFull[ch] = true
		wantDistinct[prefix{ch[2], ch[1]}] = true
	}
	for _, alg := range []Algorithm{Parallel, Forward} {
		ms, _, err := w.db.Query(context.Background(), "age", q, WithAlgorithm(alg))
		if err != nil {
			w.t.Fatal(err)
		}
		if distinct {
			got := map[prefix]bool{}
			for _, m := range ms {
				got[prefix{m.Path[0].OID, m.Path[1].OID}] = true
			}
			if fmt.Sprint(len(got)) != fmt.Sprint(len(wantDistinct)) {
				w.t.Fatalf("%v distinct age query [%d,%d] co=%d: got %d prefixes, want %d",
					alg, lo, hi, restrictCo, len(got), len(wantDistinct))
			}
			for p := range wantDistinct {
				if !got[p] {
					w.t.Fatalf("%v distinct age query missing prefix %+v", alg, p)
				}
			}
			continue
		}
		got := map[[3]OID]bool{}
		for _, m := range ms {
			got[[3]OID{m.Path[2].OID, m.Path[1].OID, m.Path[0].OID}] = true
		}
		if len(got) != len(wantFull) {
			w.t.Fatalf("%v age query [%d,%d] co=%d: got %d chains, want %d",
				alg, lo, hi, restrictCo, len(got), len(wantFull))
		}
		for ch := range wantFull {
			if !got[ch] {
				w.t.Fatalf("%v age query missing chain %v", alg, ch)
			}
		}
	}
}

// checkIndexConsistency rebuilds both indexes from scratch and compares
// entry counts against the incrementally maintained ones.
func (w *oracleWorld) checkIndexConsistency() {
	w.t.Helper()
	for _, name := range w.db.Indexes() {
		ix, _ := w.db.Index(name)
		spec := ix.Spec()
		spec.Name = spec.Name + "-rebuild"
		rebuilt, err := rebuildIndex(w.db, spec)
		if err != nil {
			w.t.Fatal(err)
		}
		if rebuilt != ix.Len() {
			w.t.Fatalf("index %q: incremental %d entries, rebuild %d", name, ix.Len(), rebuilt)
		}
	}
}

func rebuildIndex(db *Database, spec IndexSpec) (int, error) {
	// Build a throwaway index over the same store via the internal API
	// surface exposed through the facade: CreateIndex + DropIndex.
	if err := db.CreateIndex(spec); err != nil {
		return 0, err
	}
	ix, _ := db.Index(spec.Name)
	n := ix.Len()
	return n, db.DropIndex(spec.Name)
}

func TestOracleRandomizedWorkload(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			w := newOracleWorld(t, seed)
			for round := 0; round < 12; round++ {
				for i := 0; i < 60; i++ {
					w.step()
				}
				w.checkColorQuery()
				w.checkAgeQuery()
				if round%4 == 3 {
					w.checkIndexConsistency()
				}
			}
			// Final invariant check on the underlying trees.
			for _, name := range w.db.Indexes() {
				ix, _ := w.db.Index(name)
				if err := ix.Tree().Check(); err != nil {
					t.Fatalf("index %q tree invariants: %v", name, err)
				}
			}
			// Drain: delete every vehicle and confirm the indexes empty.
			vehicles := append([]OID(nil), w.vehicles...)
			sort.Slice(vehicles, func(i, j int) bool { return vehicles[i] < vehicles[j] })
			for _, v := range vehicles {
				if err := w.db.Delete(v); err != nil {
					t.Fatal(err)
				}
			}
			for _, name := range w.db.Indexes() {
				ix, _ := w.db.Index(name)
				if ix.Len() != 0 {
					t.Fatalf("index %q has %d entries after deleting every vehicle", name, ix.Len())
				}
			}
		})
	}
}
