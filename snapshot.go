package uindex

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// Snapshot is an immutable read view of the whole database's index set: at
// creation it pins the current version of every index tree, and every query
// through it answers from those versions no matter how many mutations
// commit afterwards. Writers are never blocked by an open snapshot — they
// keep committing new versions; the snapshot merely keeps the superseded
// pages it can reach alive until Release.
//
// A Snapshot is safe for concurrent use. Release it when done (idempotent);
// a long-lived snapshot holds superseded pages, so the page footprint grows
// with the write volume during its lifetime.
//
// The snapshot covers index state. Match fields resolved through the object
// store (the Obj pointer of a Match) read the store's latest state.
type Snapshot struct {
	views    map[string]*core.Snapshot
	order    []string
	released atomic.Bool
}

// Snapshot pins the current version of every index and returns the view.
func (db *Database) Snapshot() (*Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{
		views: make(map[string]*core.Snapshot, len(db.order)),
		order: append([]string(nil), db.order...),
	}
	for _, name := range db.order {
		s.views[name] = db.indexes[name].Snapshot()
	}
	return s, nil
}

// Release unpins every index version the snapshot holds, letting the engine
// reclaim pages superseded since. Release is idempotent; queries after
// Release fail with ErrSnapshotReleased.
func (s *Snapshot) Release() error {
	if s.released.Swap(true) {
		return nil
	}
	var first error
	for _, name := range s.order {
		if err := s.views[name].Release(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Indexes lists the index names the snapshot covers, in creation order.
func (s *Snapshot) Indexes() []string {
	return append([]string(nil), s.order...)
}

// Epoch returns the pinned tree epoch of the named index; ok is false when
// the snapshot does not cover it.
func (s *Snapshot) Epoch(index string) (uint64, bool) {
	v, ok := s.views[index]
	if !ok {
		return 0, false
	}
	return v.Epoch(), true
}

// Query runs a query on the named index against the snapshot's pinned
// version. It accepts the same options as Database.Query; WithSnapshot is
// redundant here and ignored.
func (s *Snapshot) Query(ctx context.Context, index string, q Query, opts ...QueryOption) ([]Match, Stats, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return s.query(ctx, index, q, cfg)
}

func (s *Snapshot) query(ctx context.Context, index string, q Query, cfg queryConfig) ([]Match, Stats, error) {
	if s.released.Load() {
		return nil, Stats{}, ErrSnapshotReleased
	}
	v, ok := s.views[index]
	if !ok {
		return nil, Stats{}, fmt.Errorf("uindex: no index %q: %w", index, ErrIndexNotFound)
	}
	ec := &core.ExecContext{Tracker: cfg.tr, Algorithm: cfg.alg}
	var out []Match
	stats, err := v.ExecuteCtx(ctx, q, ec, func(m Match) bool {
		out = append(out, m)
		return true
	})
	return out, stats, err
}
