package uindex

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Snapshot is an immutable read view of the whole database's index set: at
// creation it pins the current version of every index tree, and every query
// through it answers from those versions no matter how many mutations
// commit afterwards. Writers are never blocked by an open snapshot — they
// keep committing new versions; the snapshot merely keeps the superseded
// pages it can reach alive until Release.
//
// A Snapshot is safe for concurrent use. Release it when done (idempotent);
// a long-lived snapshot holds superseded pages, so the page footprint grows
// with the write volume during its lifetime. Closing the database releases
// every snapshot still open: Close waits for the snapshot's in-flight
// queries to finish, then unpins its views, and later queries through it
// fail with ErrSnapshotReleased — epoch pins never outlive the database.
//
// The snapshot covers index state. Match fields resolved through the object
// store (the Obj pointer of a Match) read the store's latest state.
type Snapshot struct {
	db    *Database
	views map[string]*core.ShardedSnap
	order []string
	// mu serializes Release against in-flight queries: queries hold it in
	// read mode for their whole execution, so Release (and through it,
	// Database.Close) waits for them instead of unpinning pages a scan is
	// still walking.
	mu       sync.RWMutex
	released bool
}

// Snapshot pins the current version of every index and returns the view.
func (db *Database) Snapshot() (*Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{
		db:    db,
		views: make(map[string]*core.ShardedSnap, len(db.order)),
		order: append([]string(nil), db.order...),
	}
	for _, name := range db.order {
		s.views[name] = db.groups[name].sharded.Snapshot()
	}
	db.snapMu.Lock()
	if db.snaps == nil {
		db.snaps = make(map[*Snapshot]struct{})
	}
	db.snaps[s] = struct{}{}
	db.snapMu.Unlock()
	db.ctrs.snapsTaken.Add(1)
	db.ctrs.snapsActive.Add(1)
	return s, nil
}

// releaseSnapshotsLocked releases every snapshot still open; the caller
// holds the catalog write lock (Close). Each Release waits for that
// snapshot's in-flight queries, so when this returns no query is touching
// the pools and files about to be torn down.
func (db *Database) releaseSnapshotsLocked() {
	db.snapMu.Lock()
	open := make([]*Snapshot, 0, len(db.snaps))
	for s := range db.snaps {
		open = append(open, s)
	}
	db.snaps = nil
	db.snapMu.Unlock()
	for _, s := range open {
		s.Release()
	}
}

// Release unpins every index version the snapshot holds, letting the engine
// reclaim pages superseded since. Release waits for the snapshot's
// in-flight queries to finish first. It is idempotent; queries after
// Release fail with ErrSnapshotReleased.
func (s *Snapshot) Release() error {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return nil
	}
	s.released = true
	s.mu.Unlock()
	var first error
	for _, name := range s.order {
		if err := s.views[name].Release(); err != nil && first == nil {
			first = err
		}
	}
	s.db.snapMu.Lock()
	delete(s.db.snaps, s)
	s.db.snapMu.Unlock()
	s.db.ctrs.snapsActive.Add(-1)
	return first
}

// Indexes lists the index names the snapshot covers, in creation order.
func (s *Snapshot) Indexes() []string {
	return append([]string(nil), s.order...)
}

// Epoch returns the pinned tree epoch of the named index; ok is false when
// the snapshot does not cover it.
func (s *Snapshot) Epoch(index string) (uint64, bool) {
	v, ok := s.views[index]
	if !ok {
		return 0, false
	}
	return v.Epoch(), true
}

// Query runs a query on the named index against the snapshot's pinned
// version. It accepts the same options as Database.Query; WithSnapshot is
// redundant here and ignored.
func (s *Snapshot) Query(ctx context.Context, index string, q Query, opts ...QueryOption) ([]Match, Stats, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return s.query(ctx, index, q, cfg)
}

func (s *Snapshot) query(ctx context.Context, index string, q Query, cfg queryConfig) (_ []Match, _ Stats, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.released {
		return nil, Stats{}, ErrSnapshotReleased
	}
	v, ok := s.views[index]
	if !ok {
		err := fmt.Errorf("uindex: no index %q: %w", index, ErrIndexNotFound)
		s.db.ctrs.countQuery(Stats{}, err)
		return nil, Stats{}, err
	}
	ec := &core.ExecContext{Tracker: cfg.tr, Algorithm: cfg.alg}
	var out []Match
	stats, err := v.ExecuteCtx(ctx, q, ec, func(m Match) bool {
		out = append(out, m)
		return true
	})
	s.db.ctrs.countQuery(stats, err)
	return out, stats, err
}
