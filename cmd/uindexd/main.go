// Command uindexd serves a U-index database over the data-path protocol
// (see internal/server) plus an HTTP ops listener with /metrics, /healthz,
// /readyz, and /debug/pprof.
//
//	$ uindexd -listen :9040 -http :9041 -dir /var/lib/uindex
//	$ curl -s localhost:9041/metrics | grep uindexd_requests_total
//
// The database is the paper's Example-1 demo by default, or a previously
// saved snapshot with -load. With -durability wal, a directory that already
// holds a WAL database is recovered on startup (replaying the committed log
// suffix; /readyz reports 503 until the replay finishes) and every mutation
// is durable through the group-commit log. SIGTERM/SIGINT drains
// gracefully: stop accepting, finish in-flight requests, release session
// snapshots, checkpoint, save the store snapshot (when -dir or -save is
// set, except under -durability wal where the final checkpoint is the
// durable state), exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	uindex "repro"
	"repro/internal/demo"
	"repro/internal/server"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9040", "data-path listen address")
		httpAddr   = flag.String("http", "127.0.0.1:9041", "ops listen address for /metrics, /healthz, /readyz, /debug/pprof (empty disables)")
		dir        = flag.String("dir", "", "directory for disk-backed index files (empty = in-memory)")
		durability = flag.String("durability", "checkpoint", "durability mode for -dir: none, checkpoint, sync, or wal")
		poolPages  = flag.Int("poolpages", 256, "buffer-pool frames per index (0 = no pool)")
		policy     = flag.String("policy", "clock", "buffer-pool replacement policy: clock or lru")
		loadPath   = flag.String("load", "", "load a store snapshot instead of building the Example-1 demo")
		savePath   = flag.String("save", "", "store snapshot written on drain (default <dir>/store.usnap when -dir is set)")
		inflight   = flag.Int("maxinflight", 128, "admission bound: requests executing concurrently across all connections")
		pipeline   = flag.Int("pipeline", 32, "per-connection in-flight request bound")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative disables)")
		idle       = flag.Duration("idle-timeout", 5*time.Minute, "close connections idle this long (0 disables)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound before connections are closed forcibly")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(log, *listen, *httpAddr, *dir, *durability, *poolPages, *policy,
		*loadPath, *savePath, *inflight, *pipeline, *reqTimeout, *idle, *drainWait); err != nil {
		log.Error("uindexd failed", "err", err)
		os.Exit(1)
	}
}

// walDatabaseExists reports whether dir already holds a WAL database (its
// commit manifest), which means startup must recover it rather than
// bootstrap a fresh one.
func walDatabaseExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "db.manifest"))
	return err == nil
}

// startRecoveryProbe serves /healthz (200) and /readyz (503, recovering) on
// the ops address while a WAL recovery replay runs, and returns a function
// that stops it so the real server can bind the address. With no ops
// address, or if the bind fails (the real server will surface that error),
// it is a no-op.
func startRecoveryProbe(log *slog.Logger, httpAddr string) func() {
	if httpAddr == "" {
		return func() {}
	}
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		log.Warn("recovery probe listener unavailable", "addr", httpAddr, "err", err)
		return func() {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "recovering: replaying write-ahead log", http.StatusServiceUnavailable)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	// Close the listener directly: srv.Close only closes listeners Serve
	// has already registered, and a fast recovery can finish before the
	// goroutine gets there — leaving the port bound against the real server.
	return func() {
		ln.Close()
		srv.Close()
	}
}

func run(log *slog.Logger, listen, httpAddr, dir, durability string, poolPages int, policy,
	loadPath, savePath string, inflight, pipeline int, reqTimeout, idle, drainWait time.Duration) error {
	dur, err := demo.ParseDurability(durability)
	if err != nil {
		return err
	}
	opts := uindex.Options{PoolPages: poolPages, PoolPolicy: policy, Dir: dir, Durability: dur}
	var db *uindex.Database
	switch {
	case dur == uindex.DurabilityWAL && dir == "":
		return fmt.Errorf("-durability wal requires -dir")
	case dur == uindex.DurabilityWAL && walDatabaseExists(dir):
		// Recovery path: replay the committed log suffix on top of the last
		// checkpoint. The probe listener answers /readyz with 503 until the
		// replay finishes, so orchestrators hold traffic during recovery.
		if loadPath != "" {
			return fmt.Errorf("-load conflicts with the existing WAL database in %s", dir)
		}
		stopProbe := startRecoveryProbe(log, httpAddr)
		db, err = uindex.Open(dir, opts)
		stopProbe()
		if err == nil {
			log.Info("write-ahead log recovered", "dir", dir,
				"replayed", db.Metrics().WALRecoveryReplayed)
		}
	case loadPath != "":
		db, err = uindex.LoadFileWith(loadPath, opts)
	default:
		db, _, err = demo.Build(opts)
	}
	if err != nil {
		return err
	}
	defer db.Close()
	// With a WAL, Close's final checkpoint is the durable state; the extra
	// store snapshot is only the default for the checkpoint/sync modes.
	if savePath == "" && dir != "" && dur != uindex.DurabilityWAL {
		savePath = filepath.Join(dir, "store.usnap")
	}

	srv, err := server.New(server.Config{
		DB:             db,
		Addr:           listen,
		HTTPAddr:       httpAddr,
		MaxInFlight:    inflight,
		PipelineDepth:  pipeline,
		RequestTimeout: reqTimeout,
		IdleTimeout:    idle,
		Logger:         log,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills the process the default way

	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if savePath != "" {
		if err := db.SaveFile(savePath); err != nil {
			return fmt.Errorf("save %s: %w", savePath, err)
		}
		log.Info("store snapshot saved", "path", savePath)
	}
	return nil
}
