// Command uindexcli is an interactive shell over the paper's Example-1
// database: it builds the Figure-1 schema, loads the example objects,
// creates the class-hierarchy color index and the combined
// Vehicle/Company/Employee age index, and then evaluates textual queries in
// the paper's own notation.
//
//	$ go run ./cmd/uindexcli
//	> color (Color=Red, C5A*)
//	> age (Age=50, ?, ?) ; distinct 2
//	> .cod          — print the COD relation
//	> .indexes      — list indexes
//	> .help
//
// Each answer reports the matched paths and the page-read cost under both
// retrieval algorithms. With -save the database is snapshotted on exit;
// with -load a previously saved snapshot is used instead of the demo data.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/demo"
)

func main() {
	var (
		loadPath   = flag.String("load", "", "load a database snapshot instead of building the demo")
		savePath   = flag.String("save", "", "write a snapshot of the database on exit (.quit)")
		poolPages  = flag.Int("poolpages", 0, "buffer-pool frames per index (0 = no pool)")
		policy     = flag.String("policy", "clock", "buffer-pool replacement policy: clock or lru")
		dir        = flag.String("dir", "", "directory for disk-backed index files (empty = in-memory)")
		durability = flag.String("durability", "checkpoint", "durability mode for -dir: none, checkpoint, or sync")
	)
	flag.Parse()
	dur, err := demo.ParseDurability(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uindexcli:", err)
		os.Exit(1)
	}
	opts := uindex.Options{PoolPages: *poolPages, PoolPolicy: *policy, Dir: *dir, Durability: dur}
	var db *uindex.Database
	var names map[uindex.OID]string
	if *loadPath != "" {
		db, err = uindex.LoadFileWith(*loadPath, opts)
		names = map[uindex.OID]string{}
	} else {
		db, names, err = demo.Build(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uindexcli:", err)
		os.Exit(1)
	}
	save := func() {
		if *savePath != "" {
			if err := db.SaveFile(*savePath); err != nil {
				fmt.Fprintln(os.Stderr, "uindexcli: save:", err)
			} else {
				fmt.Printf("saved snapshot to %s\n", *savePath)
			}
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "uindexcli: close:", err)
		}
	}
	defer save()
	fmt.Println("U-index shell over the paper's Example 1 database.")
	fmt.Println(`Type ".help" for commands; queries look like: color (Color=Red, C5A*)`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`Commands:
  .cod               print the COD relation (class codes)
  .indexes           list indexes and their paths
  .objects           list the example objects
  .explain <ix> <q>  show the compiled query plan
  .pool              show buffer-pool counters (run with -poolpages)
  .checkpoint        flush + fsync disk-backed indexes (run with -dir)
  .quit              leave
Queries: <index> <query>, e.g.
  color (Color=Red, C5A*)
  color (Color=[Blue-Red], [C5A*, C5B])
  age   (Age=50, ?, ?) ; distinct 2
  age   (Age=[46-], ?, C2A*, C5A*)
  age   (Age=50, ?, Company{Name=Fiat}, ?)   predicate (select) restriction`)
		case strings.HasPrefix(line, ".explain "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, ".explain"))
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				fmt.Println("  want: .explain <index> <query>")
				break
			}
			ix, ok := db.Index(parts[0])
			if !ok {
				fmt.Printf("  no index %q\n", parts[0])
				break
			}
			parsed, err := uindex.ParseQuery(ix, strings.TrimSpace(parts[1]))
			if err != nil {
				fmt.Println(" ", err)
				break
			}
			plan, err := ix.Explain(parsed)
			if err != nil {
				fmt.Println(" ", err)
				break
			}
			fmt.Print(plan)
		case line == ".checkpoint":
			if err := db.Checkpoint(); err != nil {
				fmt.Println("  checkpoint:", err)
			} else if *dir == "" {
				fmt.Println("  checkpointed (no -dir: indexes are in-memory, nothing persisted)")
			} else {
				fmt.Printf("  checkpointed disk-backed indexes under %s\n", *dir)
			}
		case line == ".pool":
			if st, ok := db.PoolStats(); ok {
				fmt.Printf("  hits %d, misses %d (hit ratio %.1f%%), evictions %d, writebacks %d\n",
					st.Hits, st.Misses, 100*st.HitRate(), st.Evictions, st.Writebacks)
				fmt.Printf("  physical: %d reads, %d writes\n", st.PhysicalReads, st.PhysicalWrites)
			} else {
				fmt.Println("  no buffer pool (start with -poolpages N)")
			}
		case line == ".cod":
			for _, row := range db.CODTable() {
				fmt.Println(" ", row)
			}
		case line == ".indexes":
			for _, name := range db.Indexes() {
				ix, _ := db.Index(name)
				fmt.Printf("  %-8s on %s.%s (path %s)\n", name,
					ix.PathClasses()[len(ix.PathClasses())-1], ix.Spec().Attr,
					strings.Join(ix.PathClasses(), "/"))
			}
		case line == ".objects":
			for oid, n := range names {
				cls, _ := db.ClassOf(oid)
				fmt.Printf("  %-4d %-12s %s\n", oid, n, cls)
			}
		default:
			runQuery(db, names, line)
		}
		fmt.Print("> ")
	}
}

func runQuery(db *uindex.Database, names map[uindex.OID]string, line string) {
	parts := strings.SplitN(line, " ", 2)
	if len(parts) != 2 {
		fmt.Println("  want: <index> <query> — see .help")
		return
	}
	ixName, q := parts[0], strings.TrimSpace(parts[1])
	ix, ok := db.Index(ixName)
	if !ok {
		fmt.Printf("  no index %q (try .indexes)\n", ixName)
		return
	}
	parsed, err := uindex.ParseQuery(ix, q)
	if err != nil {
		fmt.Println(" ", err)
		return
	}
	ctx := context.Background()
	ms, sp, err := db.Query(ctx, ixName, parsed)
	if err != nil {
		fmt.Println(" ", err)
		return
	}
	_, sf, err := db.Query(ctx, ixName, parsed, uindex.WithAlgorithm(uindex.Forward))
	if err != nil {
		fmt.Println(" ", err)
		return
	}
	for _, m := range ms {
		var path []string
		for _, pe := range m.Path {
			label := fmt.Sprint(pe.OID)
			if n, ok := names[pe.OID]; ok {
				label = n
			}
			path = append(path, fmt.Sprintf("%s$%s", pe.Code.Compact(), label))
		}
		fmt.Printf("  %v  %s\n", m.Value, strings.Join(path, " "))
	}
	fmt.Printf("  -- %d match(es); pages read: parallel %d, forward %d\n",
		len(ms), sp.PagesRead, sf.PagesRead)
}
