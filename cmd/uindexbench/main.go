// Command uindexbench regenerates the tables and figures of Gudes, "A
// Uniform Indexing Scheme for Object-Oriented Databases": Table 1 (node
// counts on the 12,000-record Figure-1 database) and Figures 5–8 (page
// reads of the U-index vs the CG-tree on the 150,000-object database).
//
// Usage:
//
//	uindexbench -exp all                 # everything at paper scale
//	uindexbench -exp fig5 -quick         # one figure, scaled down
//	uindexbench -exp fig6 -extended      # add CH-tree and H-tree curves
//	uindexbench -exp table1 -seed 7
//	uindexbench -parallel 8              # concurrent query throughput
//	uindexbench -mixed                   # read throughput vs. concurrent writers
//	uindexbench -mixed -writers 4 -shards 4 -writerate -1 -benchjson BENCH_shard.json
//	                                     # per-shard writer scaling + distribution
//	uindexbench -readbench -benchjson BENCH_read.json   # read-path ns/op + allocs/op
//	uindexbench -readbench -cold -benchjson BENCH_cold.json  # cold-cache latency, prefetch off vs. on
//	uindexbench -readbench -addr self    # same suite over the wire (loopback uindexd)
//	uindexbench -readbench -addr host:9040   # against a running uindexd
//	uindexbench -exp fig5 -cpuprofile cpu.out -memprofile mem.out
//
// Experiments: table1, fig5, fig6, fig7, fig8, all.
//
// Any run accepts -cpuprofile/-memprofile; inspect the output with
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	parbench "repro/internal/experiments/parallel"
)

func main() {
	os.Exit(run())
}

// fail reports an error; profiles still flush because run() returns
// normally instead of calling os.Exit directly.
func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	return 1
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig5|fig6|fig7|fig8|storage|updates|all")
		objects    = flag.Int("objects", 150000, "objects in the large database")
		reps       = flag.Int("reps", 100, "repetitions per measured point")
		seed       = flag.Int64("seed", 1996, "random seed")
		quick      = flag.Bool("quick", false, "scaled-down grid (12,000 objects, 15 reps)")
		extended   = flag.Bool("extended", false, "also measure CH-tree and H-tree curves")
		poolPages  = flag.Int("poolpages", 0, "run page files through a buffer pool with this many frames (0 = off); adds a physical-I/O column, logical counts are unchanged")
		policy     = flag.String("policy", "clock", "buffer-pool replacement policy: clock or lru")
		parallel   = flag.Int("parallel", 0, "run the concurrent-throughput benchmark with this many worker goroutines instead of an experiment")
		jobs       = flag.Int("jobs", 400, "queries in the -parallel batch")
		mixed      = flag.Bool("mixed", false, "run the mixed read/write throughput benchmark: read throughput alone vs. with concurrent writers")
		dir        = flag.String("dir", "", "back -mixed/-parallel index trees with disk files in this directory (empty = in-memory)")
		durstr     = flag.String("durability", "checkpoint", "durability mode for -dir: none, checkpoint, sync, or wal (sync exposes per-mutation fsync cost in -mixed; wal shows group-commit fsync amortization)")
		walDelay   = flag.Duration("walmaxdelay", 2*time.Millisecond, "group-commit linger under -durability wal: the log daemon waits this long after the first committer before fsyncing so concurrent commits share the fsync (0 = flush immediately)")
		writers    = flag.Int("writers", 1, "writer goroutines in the -mixed benchmark")
		writerate  = flag.Int("writerate", 500, "paced mutations/sec per -mixed writer (-1 = unthrottled)")
		shards     = flag.Int("shards", 0, "partition each index into this many class-code shards with independent writer locks (0/1 = unsharded); applies to -mixed and -parallel")
		writebatch = flag.Int("writebatch", 0, "group each -mixed writer's mutations into Apply batches of this size (<=1 = individual Insert/Set calls)")
		duration   = flag.Duration("duration", 2*time.Second, "length of each -mixed phase")
		readbench  = flag.Bool("readbench", false, "run the read-path benchmark suite (ns/op, allocs/op, queries/sec per query shape, node cache on vs. off)")
		cold       = flag.Bool("cold", false, "with -readbench: measure cold-cache latency instead — node caches, buffer pools, and the OS page cache are dropped before every timed query; pairs prefetch off vs. on")
		benchjson  = flag.String("benchjson", "", "write -readbench or -mixed results as JSON to this file (e.g. BENCH_read.json, BENCH_shard.json)")
		short      = flag.Bool("short", false, "smoke scale for -readbench: small database, same code paths")
		addr       = flag.String("addr", "", "measure -readbench over the network: 'self' serves the benchmark database on an in-process loopback uindexd, host:port dials a running uindexd")
		cpuprof    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var durability uindex.Durability
	switch *durstr {
	case "none":
		durability = uindex.DurabilityNone
	case "checkpoint":
		durability = uindex.DurabilityCheckpoint
	case "sync":
		durability = uindex.DurabilitySync
	case "wal":
		durability = uindex.DurabilityWAL
	default:
		return fail("uindexbench: unknown durability %q (want none, checkpoint, sync, or wal)", *durstr)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail("uindexbench: cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("uindexbench: cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uindexbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "uindexbench: memprofile: %v\n", err)
			}
		}()
	}

	if *readbench && *cold {
		benchObjects := *objects
		if benchObjects == 150000 { // flag default is experiment-scale
			benchObjects = 0 // RunCold's default scale
		}
		r, err := parbench.RunCold(parbench.ColdConfig{
			Objects: benchObjects, Seed: *seed, Short: *short,
			Dir: *dir, PoolPages: *poolPages,
		})
		if err != nil {
			return fail("uindexbench: coldbench: %v", err)
		}
		parbench.RenderCold(os.Stdout, r)
		if *benchjson != "" {
			f, err := os.Create(*benchjson)
			if err != nil {
				return fail("uindexbench: benchjson: %v", err)
			}
			err = parbench.WriteColdJSON(f, r)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fail("uindexbench: benchjson: %v", err)
			}
			fmt.Printf("wrote %s\n", *benchjson)
		}
		return 0
	}

	if *readbench {
		benchObjects := *objects
		if benchObjects == 150000 { // flag default is experiment-scale
			benchObjects = 0 // RunRead's default scale
		}
		rcfg := parbench.ReadConfig{Objects: benchObjects, Seed: *seed, Short: *short}
		var r *parbench.ReadResult
		var err error
		if *addr != "" {
			r, err = parbench.RunReadNet(rcfg, *addr)
		} else {
			r, err = parbench.RunRead(rcfg)
		}
		if err != nil {
			return fail("uindexbench: readbench: %v", err)
		}
		parbench.RenderRead(os.Stdout, r)
		if *benchjson != "" {
			f, err := os.Create(*benchjson)
			if err != nil {
				return fail("uindexbench: benchjson: %v", err)
			}
			err = parbench.WriteReadJSON(f, r)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fail("uindexbench: benchjson: %v", err)
			}
			fmt.Printf("wrote %s\n", *benchjson)
		}
		return 0
	}

	if *mixed {
		pool := *poolPages
		if pool == 0 {
			pool = 256
		}
		benchObjects := 0 // RunMixed's default scale
		if *quick {
			benchObjects = 2000
		}
		r, err := parbench.RunMixed(parbench.MixedConfig{
			Config: parbench.Config{
				Workers:     *parallel,
				Jobs:        *jobs,
				Objects:     benchObjects,
				PoolPages:   pool,
				Policy:      *policy,
				Seed:        *seed,
				Dir:         *dir,
				Durability:  durability,
				WALMaxDelay: *walDelay,
				Shards:      *shards,
			},
			Duration:   *duration,
			Writers:    *writers,
			WriteRate:  *writerate,
			WriteBatch: *writebatch,
		})
		if err != nil {
			return fail("uindexbench: mixed: %v", err)
		}
		parbench.RenderMixed(os.Stdout, r)
		if *benchjson != "" {
			f, err := os.Create(*benchjson)
			if err != nil {
				return fail("uindexbench: benchjson: %v", err)
			}
			err = parbench.WriteMixedJSON(f, r)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fail("uindexbench: benchjson: %v", err)
			}
			fmt.Printf("wrote %s\n", *benchjson)
		}
		return 0
	}

	if *parallel > 0 {
		pool := *poolPages
		if pool == 0 {
			// The throughput benchmark always reports pool hit/miss
			// counters, so it defaults to a pool when none is requested.
			pool = 256
		}
		benchObjects := 0 // RunParallel's default scale
		if *quick {
			benchObjects = 2000
		}
		r, err := parbench.RunParallel(parbench.Config{
			Workers:    *parallel,
			Jobs:       *jobs,
			Objects:    benchObjects,
			PoolPages:  pool,
			Policy:     *policy,
			Seed:       *seed,
			Dir:        *dir,
			Durability: durability,
			Shards:     *shards,
		})
		if err != nil {
			return fail("uindexbench: parallel: %v", err)
		}
		parbench.Render(os.Stdout, r)
		return 0
	}

	cfg := experiments.GridConfig{Objects: *objects, Reps: *reps, Seed: *seed, Extended: *extended}
	if *quick {
		cfg = experiments.QuickGrid()
		cfg.Extended = *extended
		cfg.Seed = *seed
	}
	cfg.PoolPages = *poolPages
	cfg.PoolPolicy = *policy

	runExp := func(name string, f func() error) error {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		if err := runExp("table1", func() error {
			r, err := experiments.RunTable1With(*seed, experiments.Table1Options{
				PoolPages: *poolPages, PoolPolicy: *policy,
			})
			if err != nil {
				return err
			}
			experiments.RenderTable1(os.Stdout, r)
			return nil
		}); err != nil {
			return fail("uindexbench: %v", err)
		}
	}
	figs := []struct {
		name string
		f    func(experiments.GridConfig) (*experiments.FigureResult, error)
	}{
		{"fig5", experiments.RunFigure5},
		{"fig6", experiments.RunFigure6},
		{"fig7", experiments.RunFigure7},
	}
	for _, fig := range figs {
		if !want(fig.name) {
			continue
		}
		any = true
		fig := fig
		if err := runExp(fig.name, func() error {
			r, err := fig.f(cfg)
			if err != nil {
				return err
			}
			experiments.RenderFigure(os.Stdout, r)
			return nil
		}); err != nil {
			return fail("uindexbench: %v", err)
		}
	}
	if want("storage") {
		any = true
		if err := runExp("storage", func() error {
			for _, keys := range []int{0, 100, 1000} {
				r, err := experiments.RunStorage(cfg.Objects, 40, keys, *seed)
				if err != nil {
					return err
				}
				experiments.RenderStorage(os.Stdout, r)
			}
			return nil
		}); err != nil {
			return fail("uindexbench: %v", err)
		}
	}
	if want("updates") {
		any = true
		if err := runExp("updates", func() error {
			r, err := experiments.RunUpdateCost(*seed, max(1, *reps/5))
			if err != nil {
				return err
			}
			experiments.RenderUpdateCost(os.Stdout, r)
			return nil
		}); err != nil {
			return fail("uindexbench: %v", err)
		}
	}
	if want("fig8") {
		any = true
		if err := runExp("fig8", func() error {
			r, err := experiments.RunFigure8(cfg)
			if err != nil {
				return err
			}
			experiments.RenderFigure8(os.Stdout, r)
			return nil
		}); err != nil {
			return fail("uindexbench: %v", err)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "uindexbench: unknown experiment %q (want %s)\n",
			*exp, strings.Join([]string{"table1", "fig5", "fig6", "fig7", "fig8", "storage", "updates", "all"}, "|"))
		return 2
	}
	return 0
}
