// Command uindexbench regenerates the tables and figures of Gudes, "A
// Uniform Indexing Scheme for Object-Oriented Databases": Table 1 (node
// counts on the 12,000-record Figure-1 database) and Figures 5–8 (page
// reads of the U-index vs the CG-tree on the 150,000-object database).
//
// Usage:
//
//	uindexbench -exp all                 # everything at paper scale
//	uindexbench -exp fig5 -quick         # one figure, scaled down
//	uindexbench -exp fig6 -extended      # add CH-tree and H-tree curves
//	uindexbench -exp table1 -seed 7
//	uindexbench -parallel 8              # concurrent query throughput
//	uindexbench -mixed                   # read throughput vs. concurrent writers
//
// Experiments: table1, fig5, fig6, fig7, fig8, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	parbench "repro/internal/experiments/parallel"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|fig5|fig6|fig7|fig8|storage|updates|all")
		objects   = flag.Int("objects", 150000, "objects in the large database")
		reps      = flag.Int("reps", 100, "repetitions per measured point")
		seed      = flag.Int64("seed", 1996, "random seed")
		quick     = flag.Bool("quick", false, "scaled-down grid (12,000 objects, 15 reps)")
		extended  = flag.Bool("extended", false, "also measure CH-tree and H-tree curves")
		poolPages = flag.Int("poolpages", 0, "run page files through a buffer pool with this many frames (0 = off); adds a physical-I/O column, logical counts are unchanged")
		policy    = flag.String("policy", "clock", "buffer-pool replacement policy: clock or lru")
		parallel  = flag.Int("parallel", 0, "run the concurrent-throughput benchmark with this many worker goroutines instead of an experiment")
		jobs      = flag.Int("jobs", 400, "queries in the -parallel batch")
		mixed     = flag.Bool("mixed", false, "run the mixed read/write throughput benchmark: read throughput alone vs. with concurrent writers")
		writers   = flag.Int("writers", 1, "writer goroutines in the -mixed benchmark")
		writerate = flag.Int("writerate", 500, "paced mutations/sec per -mixed writer (-1 = unthrottled)")
		duration  = flag.Duration("duration", 2*time.Second, "length of each -mixed phase")
	)
	flag.Parse()

	if *mixed {
		pool := *poolPages
		if pool == 0 {
			pool = 256
		}
		benchObjects := 0 // RunMixed's default scale
		if *quick {
			benchObjects = 2000
		}
		r, err := parbench.RunMixed(parbench.MixedConfig{
			Config: parbench.Config{
				Workers:   *parallel,
				Jobs:      *jobs,
				Objects:   benchObjects,
				PoolPages: pool,
				Policy:    *policy,
				Seed:      *seed,
			},
			Duration:  *duration,
			Writers:   *writers,
			WriteRate: *writerate,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "uindexbench: mixed: %v\n", err)
			os.Exit(1)
		}
		parbench.RenderMixed(os.Stdout, r)
		return
	}

	if *parallel > 0 {
		pool := *poolPages
		if pool == 0 {
			// The throughput benchmark always reports pool hit/miss
			// counters, so it defaults to a pool when none is requested.
			pool = 256
		}
		benchObjects := 0 // RunParallel's default scale
		if *quick {
			benchObjects = 2000
		}
		r, err := parbench.RunParallel(parbench.Config{
			Workers:   *parallel,
			Jobs:      *jobs,
			Objects:   benchObjects,
			PoolPages: pool,
			Policy:    *policy,
			Seed:      *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "uindexbench: parallel: %v\n", err)
			os.Exit(1)
		}
		parbench.Render(os.Stdout, r)
		return
	}

	cfg := experiments.GridConfig{Objects: *objects, Reps: *reps, Seed: *seed, Extended: *extended}
	if *quick {
		cfg = experiments.QuickGrid()
		cfg.Extended = *extended
		cfg.Seed = *seed
	}
	cfg.PoolPages = *poolPages
	cfg.PoolPolicy = *policy

	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "uindexbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		run("table1", func() error {
			r, err := experiments.RunTable1With(*seed, experiments.Table1Options{
				PoolPages: *poolPages, PoolPolicy: *policy,
			})
			if err != nil {
				return err
			}
			experiments.RenderTable1(os.Stdout, r)
			return nil
		})
	}
	figs := []struct {
		name string
		f    func(experiments.GridConfig) (*experiments.FigureResult, error)
	}{
		{"fig5", experiments.RunFigure5},
		{"fig6", experiments.RunFigure6},
		{"fig7", experiments.RunFigure7},
	}
	for _, fig := range figs {
		if !want(fig.name) {
			continue
		}
		any = true
		fig := fig
		run(fig.name, func() error {
			r, err := fig.f(cfg)
			if err != nil {
				return err
			}
			experiments.RenderFigure(os.Stdout, r)
			return nil
		})
	}
	if want("storage") {
		any = true
		run("storage", func() error {
			for _, keys := range []int{0, 100, 1000} {
				r, err := experiments.RunStorage(cfg.Objects, 40, keys, *seed)
				if err != nil {
					return err
				}
				experiments.RenderStorage(os.Stdout, r)
			}
			return nil
		})
	}
	if want("updates") {
		any = true
		run("updates", func() error {
			r, err := experiments.RunUpdateCost(*seed, max(1, *reps/5))
			if err != nil {
				return err
			}
			experiments.RenderUpdateCost(os.Stdout, r)
			return nil
		})
	}
	if want("fig8") {
		any = true
		run("fig8", func() error {
			r, err := experiments.RunFigure8(cfg)
			if err != nil {
				return err
			}
			experiments.RenderFigure8(os.Stdout, r)
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "uindexbench: unknown experiment %q (want %s)\n",
			*exp, strings.Join([]string{"table1", "fig5", "fig6", "fig7", "fig8", "storage", "updates", "all"}, "|"))
		os.Exit(2)
	}
}
