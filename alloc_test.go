package uindex

import (
	"context"

	"math/rand"
	"testing"
)

// TestRangeScanAllocsScaleWithMatches is the allocation regression guard
// for the range executor: a value-range query inspects every entry in the
// spanned clusters, and the per-entry parse used to allocate a path slice,
// per-component code strings, and offset slices for each of them (~27k
// allocations per query on the benchmark database). With the reusable
// matchScratch the steady-state parse allocates nothing — only an actual
// match allocates (the emitted Path copy and value boxing the caller may
// retain). The test pins that down as an invariant: allocations scale with
// matches, not with entries scanned.
func TestRangeScanAllocsScaleWithMatches(t *testing.T) {
	s := NewSchema()
	if err := s.AddClass("Vehicle", "", Attr{Name: "Color", Type: String}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"Automobile", "Truck"} {
		if err := s.AddClass(sub, "Vehicle"); err != nil {
			t.Fatal(err)
		}
	}
	db, err := NewDatabaseWith(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(42))
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver"}
	classes := []string{"Vehicle", "Automobile", "Truck"}
	if err := db.CreateIndex(IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := db.Insert(classes[rng.Intn(len(classes))], Attrs{
			"Color": colors[rng.Intn(len(colors))]}); err != nil {
			t.Fatal(err)
		}
	}

	// Black..Red spans four of the six color clusters; every entry in the
	// span is inspected and matches (positions are unrestricted), so the
	// query both scans and matches thousands of entries.
	q := Query{Value: Range("Black", "Red"), Positions: []Position{On("Vehicle")}}
	ctx := context.Background()
	matches, stats, err := db.Query(ctx, "color", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < n/3 || stats.EntriesScanned < len(matches) {
		t.Fatalf("weak fixture: %d matches, %d entries scanned", len(matches), stats.EntriesScanned)
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := db.Query(ctx, "color", q); err != nil {
			t.Fatal(err)
		}
	})
	// Per match: the Path copy, the boxed string value, its backing bytes,
	// and amortized result-slice growth — comfortably under 6; plus a flat
	// allowance for the per-query setup (plan, intervals, tracker, scan
	// state). The old per-entry parse added ~5 allocations per entry
	// scanned and blows way past this bound.
	limit := float64(6*len(matches) + 400)
	if allocs > limit {
		t.Fatalf("range query allocates %.0f per run for %d matches (%d entries scanned); limit %.0f — "+
			"per-entry parsing is allocating again", allocs, len(matches), stats.EntriesScanned, limit)
	}
	t.Logf("range query: %.0f allocs, %d matches, %d entries scanned", allocs, len(matches), stats.EntriesScanned)
}
