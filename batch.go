package uindex

import (
	"context"
	"fmt"
)

// BatchOpKind identifies one mutation kind inside a Batch.
type BatchOpKind uint8

const (
	// BatchInsert stores a new object.
	BatchInsert BatchOpKind = 1
	// BatchSet updates one attribute of an existing object.
	BatchSet BatchOpKind = 2
	// BatchDelete removes an existing object.
	BatchDelete BatchOpKind = 3
)

// String implements fmt.Stringer.
func (k BatchOpKind) String() string {
	switch k {
	case BatchInsert:
		return "insert"
	case BatchSet:
		return "set"
	case BatchDelete:
		return "delete"
	}
	return fmt.Sprintf("BatchOpKind(%d)", uint8(k))
}

// BatchOp is one mutation of a Batch. Exactly the fields of its kind are
// meaningful: Class and Attrs for BatchInsert; OID, Attr, and Value for
// BatchSet; OID for BatchDelete.
type BatchOp struct {
	Kind  BatchOpKind
	Class string
	Attrs Attrs
	OID   OID
	Attr  string
	Value any
}

// Batch collects mutations for one Apply call. Build it with Insert, Set,
// and Delete; the zero value is an empty batch. A Batch is not safe for
// concurrent mutation, and may be reused after Apply.
type Batch struct {
	ops []BatchOp
}

// Insert appends an object insertion.
func (b *Batch) Insert(class string, attrs Attrs) *Batch {
	b.ops = append(b.ops, BatchOp{Kind: BatchInsert, Class: class, Attrs: attrs})
	return b
}

// Set appends an attribute update of an existing object.
func (b *Batch) Set(oid OID, attr string, v any) *Batch {
	b.ops = append(b.ops, BatchOp{Kind: BatchSet, OID: oid, Attr: attr, Value: v})
	return b
}

// Delete appends an object deletion.
func (b *Batch) Delete(oid OID) *Batch {
	b.ops = append(b.ops, BatchOp{Kind: BatchDelete, OID: oid})
	return b
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Ops returns the batch's operations in order (shared backing array; treat
// as read-only).
func (b *Batch) Ops() []BatchOp { return b.ops }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// BatchResult reports what an Apply call did.
type BatchResult struct {
	// OIDs are the ids assigned to the batch's BatchInsert operations, in
	// operation order.
	OIDs []OID
	// Applied is the number of operations that executed; on error it is
	// the index of the failing operation.
	Applied int
}

// Apply executes a batch of mutations under one lock acquisition per index
// shard — the batched write surface. Where Insert/Set/Delete each acquire
// and release their covering shards' writer locks per call, Apply computes
// the union of the shard locks its operations need, takes each once,
// applies every operation, and — under DurabilitySync — checkpoints each
// locked shard once per batch instead of once per operation. Batching is
// therefore the write-path analogue of the paper's buffered experiment
// model: per-call overheads (lock handshakes, fsync pairs) amortize over
// the batch.
//
// Semantics are identical to issuing the operations individually, with two
// planning rules: Set and Delete operations must reference objects that
// exist when Apply begins (an OID inserted earlier in the same batch cannot
// be referenced later in it — its covering shards are unknown at planning
// time), and the batch is not a transaction — operations apply in order,
// and the first failure stops the batch, leaving earlier operations
// applied. ctx is consulted between operations; a canceled context stops
// the batch at the next operation boundary.
//
// Queries never block on an in-flight batch: they read the pinned tree
// versions from before or after each shard's commits.
func (db *Database) Apply(ctx context.Context, b *Batch) (BatchResult, error) {
	var res BatchResult
	if b == nil || len(b.ops) == 0 {
		return res, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return res, ErrClosed
	}

	// Plan: resolve every operation's class (inserts carry theirs; Set and
	// Delete resolve through the store) and union the shard-lock sets per
	// group. Unknown classes and OIDs fail here, before any lock or write.
	classes := make([]string, len(b.ops))
	for i, op := range b.ops {
		switch op.Kind {
		case BatchInsert:
			if _, ok := db.sch.Class(op.Class); !ok {
				return res, fmt.Errorf("uindex: batch op %d: %w: %q", i, ErrUnknownClass, op.Class)
			}
			classes[i] = op.Class
		case BatchSet, BatchDelete:
			o, ok := db.st.Get(op.OID)
			if !ok {
				return res, fmt.Errorf("uindex: batch op %d: no object %d (objects referenced by a batch must exist before Apply)", i, op.OID)
			}
			classes[i] = o.Class
		default:
			return res, fmt.Errorf("uindex: batch op %d: unknown kind %d", i, uint8(op.Kind))
		}
	}
	type groupLocks struct {
		g    *indexGroup
		need map[int]bool
	}
	byGroup := make(map[*indexGroup]*groupLocks)
	var groupOrder []*groupLocks
	for _, name := range db.order {
		g := db.groups[name]
		for _, class := range classes {
			if !g.sharded.Covers(class) {
				continue
			}
			gl, ok := byGroup[g]
			if !ok {
				gl = &groupLocks{g: g, need: make(map[int]bool)}
				byGroup[g] = gl
				groupOrder = append(groupOrder, gl)
			}
			for _, i := range g.sharded.WriteShards(class) {
				gl.need[i] = true
			}
		}
	}

	// Lock: global order — group creation order, shard index ascending.
	locked := make([]lockedGroup, 0, len(groupOrder))
	for _, gl := range groupOrder {
		ids := make([]int, 0, len(gl.need))
		for i := 0; i < gl.g.sharded.NumShards(); i++ {
			if gl.need[i] {
				ids = append(ids, i)
			}
		}
		gl.g.sharded.LockShards(ids)
		locked = append(locked, lockedGroup{g: gl.g, ids: ids})
	}

	// Execute in order; first error stops the batch. With a WAL, each
	// operation appends its own log record under the shard locks and the
	// commit cut; the batch then waits once, after unlocking, for the
	// highest LSN it produced — one group-commit wait per batch.
	var lastLSN uint64
	if db.wal != nil {
		db.wal.commitMu.RLock()
	}
	err := func() error {
		for i, op := range b.ops {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("uindex: batch op %d: %w", i, cerr)
			}
			lsn, aerr := db.applyOpLocked(op, classes[i], &res)
			if aerr != nil {
				return fmt.Errorf("uindex: batch op %d (%s): %w", i, op.Kind, aerr)
			}
			if lsn > lastLSN {
				lastLSN = lsn
			}
			res.Applied++
		}
		return nil
	}()
	if db.wal != nil {
		db.wal.commitMu.RUnlock()
	}

	// One checkpoint per locked shard per group, one manifest commit per
	// group — even after an error, so applied operations are durable.
	for _, lg := range locked {
		if serr := db.maybeSyncGroup(lg.g, lg.ids); serr != nil && err == nil {
			err = fmt.Errorf("uindex: checkpointing index %q: %w", lg.g.name, serr)
		}
	}
	if err == nil {
		countShardWrites(locked)
	}
	unlockAll(locked)
	// The group-commit wait runs after the locks drop — even a failed
	// batch waits for its applied prefix, so callers observe the same
	// durability as issuing the operations individually.
	if db.wal != nil && lastLSN > 0 {
		if werr := db.wal.log.WaitDurable(lastLSN); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		db.ctrs.writeErrors.Add(1)
		return res, err
	}
	db.ctrs.batches.Add(1)
	db.ctrs.batchOps.Add(uint64(res.Applied))
	return res, nil
}

// applyOpLocked executes one batch operation; the caller holds the writer
// locks of every shard the operation can touch (plus commitMu in read mode
// with a WAL). The returned LSN is the operation's log record with a WAL,
// 0 otherwise.
func (db *Database) applyOpLocked(op BatchOp, class string, res *BatchResult) (uint64, error) {
	switch op.Kind {
	case BatchInsert:
		if db.wal != nil {
			oid, lsn, err := db.walApplyInsert(op.Class, op.Attrs)
			if err != nil {
				return 0, err
			}
			res.OIDs = append(res.OIDs, oid)
			db.ctrs.inserts.Add(1)
			return lsn, nil
		}
		oid, err := db.st.Insert(op.Class, op.Attrs)
		if err != nil {
			return 0, err
		}
		for _, g := range db.coveringGroups(class) {
			if err := g.sharded.Add(oid); err != nil {
				return 0, fmt.Errorf("maintaining index %q: %w", g.name, err)
			}
		}
		res.OIDs = append(res.OIDs, oid)
		db.ctrs.inserts.Add(1)
		return 0, nil
	case BatchSet:
		o, ok := db.st.Get(op.OID)
		if !ok || o.Class != class {
			return 0, fmt.Errorf("object %d changed between planning and apply", op.OID)
		}
		if db.wal != nil {
			lsn, err := db.walApplySet(op.OID, class, op.Attr, op.Value)
			if err != nil {
				return 0, err
			}
			db.ctrs.sets.Add(1)
			return lsn, nil
		}
		covering := db.coveringGroups(class)
		olds := make([][][]byte, len(covering))
		for i, g := range covering {
			old, err := g.sharded.EntriesFor(op.OID)
			if err != nil {
				return 0, fmt.Errorf("index %q: %w", g.name, err)
			}
			olds[i] = old
		}
		if _, err := db.st.SetAttr(op.OID, op.Attr, op.Value); err != nil {
			return 0, err
		}
		for i, g := range covering {
			newKeys, err := g.sharded.EntriesFor(op.OID)
			if err != nil {
				return 0, fmt.Errorf("index %q: %w", g.name, err)
			}
			if err := g.sharded.ApplyDiff(olds[i], newKeys); err != nil {
				return 0, fmt.Errorf("index %q: %w", g.name, err)
			}
		}
		db.ctrs.sets.Add(1)
		return 0, nil
	case BatchDelete:
		o, ok := db.st.Get(op.OID)
		if !ok || o.Class != class {
			return 0, fmt.Errorf("object %d changed between planning and apply", op.OID)
		}
		if db.wal != nil {
			lsn, err := db.walApplyDelete(op.OID, class)
			if err != nil {
				return 0, err
			}
			db.ctrs.deletes.Add(1)
			return lsn, nil
		}
		for _, g := range db.coveringGroups(class) {
			if err := g.sharded.Remove(op.OID); err != nil {
				return 0, fmt.Errorf("maintaining index %q: %w", g.name, err)
			}
		}
		if err := db.st.Delete(op.OID); err != nil {
			return 0, err
		}
		db.ctrs.deletes.Add(1)
		return 0, nil
	}
	return 0, fmt.Errorf("unknown kind %d", uint8(op.Kind))
}
