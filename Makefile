GO ?= go

.PHONY: build test race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 concurrency check: the buffer pool and pager are the only
# packages with concurrent callers, so only they run under -race.
race:
	$(GO) test -race ./internal/bufferpool/... ./internal/pager/...

vet:
	$(GO) vet ./...
