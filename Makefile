GO ?= go

.PHONY: build test race vet stress apicheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 concurrency check: every package runs under the race detector —
# the btree read path, the buffer pool, and the engine facade all have
# concurrent callers now.
race:
	$(GO) test -race ./...

# The concurrency stress suite alone, race-enabled and without cached
# results: engine-level mixed workloads, snapshot isolation under
# committing writers, per-tree reader storms, and the tracker-merge
# accounting invariance.
stress:
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Race|Stats|Snapshot|Stress|Writer' ./...

vet:
	$(GO) vet ./...

# API-surface check: vet plus a grep that keeps the deprecated query
# wrappers (QueryWith/QueryString) out of commands, examples, and internal
# packages. The repo root is exempt — it holds the wrapper definitions and
# their compatibility tests.
apicheck: vet
	@deprecated=$$(grep -rnE '\.(QueryWith|QueryString)\(' cmd/ examples/ internal/ || true); \
	if [ -n "$$deprecated" ]; then \
		echo "deprecated query API used outside the facade:"; \
		echo "$$deprecated"; \
		exit 1; \
	fi
	@echo "apicheck: ok"

ci: build apicheck test race stress
