GO ?= go

.PHONY: build test race vet stress ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 concurrency check: every package runs under the race detector —
# the btree read path, the buffer pool, and the engine facade all have
# concurrent callers now.
race:
	$(GO) test -race ./...

# The concurrency stress suite alone, race-enabled and without cached
# results: engine-level mixed workloads, per-tree reader storms, and the
# tracker-merge accounting invariance.
stress:
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Race|Stats' ./...

vet:
	$(GO) vet ./...

ci: build vet test race
