GO ?= go

.PHONY: build test race vet stress crash wal serve shard apicheck bench bench-short coldbench coldbench-short nouring ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 concurrency check: every package runs under the race detector —
# the btree read path, the buffer pool, and the engine facade all have
# concurrent callers now.
race:
	$(GO) test -race ./...

# The concurrency stress suite alone, race-enabled and without cached
# results: engine-level mixed workloads, snapshot isolation under
# committing writers, per-tree reader storms, and the tracker-merge
# accounting invariance.
stress:
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Race|Stats|Snapshot|Stress|Writer' ./...

vet:
	$(GO) vet ./...

# Tier-2 durability check, race-enabled and uncached: the crash matrix
# (power-cut at every I/O op under both power models), torn/short-write
# header tears, page/file/snapshot corruption sweeps, and the fault-
# injection propagation tests across pager, bufferpool, and facade.
crash:
	$(GO) test -race -count=1 ./internal/faultfs/
	$(GO) test -race -count=1 -run 'Corrupt|Crash|Torn|Header|Recover|Orphan|Fault|Fail|Checkpoint|Durab|FlushMeta|FlushReleases' ./internal/pager/ ./internal/bufferpool/ ./internal/btree/ .

# Write-ahead-log check, race-enabled and uncached: the log's unit suite
# (framing, torn tails, group-commit coalescing, truncation slots), the
# facade recovery tests (crash images, replay idempotence, writers
# progressing through an in-flight incremental checkpoint), the WAL crash
# matrix (power-cut at every log/data/manifest op under both power
# models, torn writes), and the /metrics wal_* series.
wal:
	$(GO) test -race -count=1 ./internal/wal/
	$(GO) test -race -count=1 -run 'WAL' . ./internal/faultfs/ ./internal/server/

# Read-path performance trajectory: the go-test micro-benchmarks (node
# decode, point lookup, the four facade query shapes) plus the readbench
# suite, which writes BENCH_read.json (queries/sec, ns/op, allocs/op per
# query shape, node cache on vs. off).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery(Exact|Range|Subtree|Parscan)' -benchmem .
	$(GO) test -run '^$$' -bench 'DecodeNode|TreeGet' -benchmem ./internal/btree/
	$(GO) run ./cmd/uindexbench -readbench -benchjson BENCH_read.json

# bench in short mode: same code paths at smoke scale, single benchmark
# iterations, JSON discarded. CI runs this so the benchmarks can't bit-rot.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery(Exact|Range|Subtree|Parscan)' -benchtime 1x -benchmem .
	$(GO) test -run '^$$' -bench 'DecodeNode|TreeGet' -benchtime 1x -benchmem ./internal/btree/
	$(GO) run ./cmd/uindexbench -readbench -short -benchjson /tmp/BENCH_read.json

# Cold-cache benchmark: disk-backed databases, node caches + buffer pools +
# OS page cache dropped before every timed query, prefetch off vs. on per
# query shape. Writes BENCH_cold.json (median ns/op, per-iteration samples,
# logical page counts, prefetch counters, io_uring availability).
coldbench:
	$(GO) run ./cmd/uindexbench -readbench -cold -benchjson BENCH_cold.json

# coldbench at smoke scale: tiny database, one pass through the same
# eviction and measurement code paths, JSON discarded. CI runs this so the
# cold path can't bit-rot.
coldbench-short:
	$(GO) run ./cmd/uindexbench -readbench -cold -short -benchjson /tmp/BENCH_cold.json

# The portable batched-read fallback: build and test the storage stack with
# io_uring compiled out (-tags nouring), so the bounded-goroutine preadv
# path stays honest on the platforms (and kernels) that need it.
nouring:
	$(GO) build -tags nouring ./...
	$(GO) test -tags nouring -count=1 ./internal/pager/ ./internal/bufferpool/ ./internal/btree/ ./internal/experiments/parallel/

# Network-subsystem check, race-enabled and uncached: the wire-protocol
# round trips, the server/client integration suite (concurrent sessions,
# snapshot isolation, admission control, graceful drain), the metrics
# registry, and the session/metrics satellites on the facade.
serve:
	$(GO) test -race -count=1 ./internal/server/ ./internal/obs/
	$(GO) test -race -count=1 -run 'Metrics|QueryParallelCancellation|CloseReleasesSnapshots|NetShapes' . ./internal/experiments/parallel/

# Sharding check, race-enabled and uncached: the shard-invariance suite
# (sharded results identical to flat under every layout), the batched write
# surface, the cross-shard writer stress, and the sharded crash matrix (two
# shard files + manifest, crashed at every op on every device).
shard:
	$(GO) test -race -count=1 -run 'Shard|ApplyBatch' . ./internal/core/ ./internal/pager/ ./internal/faultfs/

# API-surface check: vet plus a grep that keeps the removed query wrappers
# (QueryWith/QueryString) from creeping back anywhere — they were deleted in
# favor of Query with options, and the batched write surface (Apply) is the
# only multi-mutation entry point.
apicheck: vet
	@deprecated=$$(grep -rnE --include='*.go' '\.(QueryWith|QueryString)\(' . || true); \
	if [ -n "$$deprecated" ]; then \
		echo "removed query API referenced:"; \
		echo "$$deprecated"; \
		exit 1; \
	fi
	@echo "apicheck: ok"

ci: build apicheck test race stress crash wal serve shard nouring coldbench-short
