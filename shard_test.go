package uindex

// Shard tests at the facade level: the invariance suite (a sharded index
// answers every query identically to an unsharded one, in the same order),
// the sharded disk layout (manifest-pinned reopen, layout precedence over
// Options.Shards), the batched write surface (Apply), per-shard metrics,
// and a race-enabled cross-shard writer stress.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// queryAll runs the stress workload under both algorithms and returns every
// result list in a fixed order.
func queryAll(t *testing.T, db *Database) [][]Match {
	t.Helper()
	var out [][]Match
	for _, j := range stressQueries() {
		for _, alg := range []Algorithm{Parallel, Forward} {
			ms, _, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(alg))
			if err != nil {
				t.Fatalf("%s %v: %v", j.Index, alg, err)
			}
			out = append(out, ms)
		}
	}
	return out
}

// TestShardInvariance is the acceptance criterion of the sharding layer: for
// every shard count, every query of the stress workload returns exactly the
// same matches in exactly the same (key) order as the unsharded index, under
// both retrieval algorithms — before and after mutations.
func TestShardInvariance(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			flat := stressDB(t, 0)
			defer flat.Close()
			db := stressDBWith(t, Options{Shards: shards})
			defer db.Close()

			want := queryAll(t, flat)
			got := queryAll(t, db)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("query %d: sharded results diverge (%d matches, want %d)",
						i, len(got[i]), len(want[i]))
				}
			}

			// Identical mutations on both: the databases share seeded
			// history, so both assign the same OIDs and must keep agreeing.
			for _, d := range []*Database{flat, db} {
				oid, err := d.Insert("Truck", Attrs{"Color": "Cyan"})
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Set(oid, "Color", "Magenta"); err != nil {
					t.Fatal(err)
				}
				if _, err := d.Insert("CompactAutomobile", Attrs{"Color": "Cyan"}); err != nil {
					t.Fatal(err)
				}
			}
			wantAfter := queryAll(t, flat)
			gotAfter := queryAll(t, db)
			for i := range wantAfter {
				if !reflect.DeepEqual(gotAfter[i], wantAfter[i]) {
					t.Fatalf("query %d after mutations: sharded results diverge", i)
				}
			}
		})
	}
}

// TestShardCountClamped pins the Options.Shards clamp: the effective count
// never exceeds the number of classes under the index's terminal class.
func TestShardCountClamped(t *testing.T) {
	db := stressDBWith(t, Options{Shards: 100})
	defer db.Close()
	// The shard space is the terminal-class subtree, since that code leads
	// every key: Vehicle, Automobile, Truck, CompactAutomobile → 4 shards
	// for the CH index; the age path index terminates at Employee (no
	// subclasses) → 1 shard.
	for index, want := range map[string]int{"color": 4, "age": 1} {
		n, ok := db.NumShards(index)
		if !ok || n != want {
			t.Fatalf("NumShards(%s) = %d, %v; want %d", index, n, ok, want)
		}
	}
	if _, ok := db.NumShards("nope"); ok {
		t.Fatal("NumShards of missing index succeeded")
	}
}

// TestShardStats checks the per-shard series: entries sum to the index
// total, a CH-index mutation moves exactly one shard's write counter, and
// Metrics carries the same numbers.
func TestShardStats(t *testing.T) {
	db := stressDBWith(t, Options{Shards: 4})
	defer db.Close()

	stats, ok := db.ShardStats("color")
	if !ok || len(stats) != 4 {
		t.Fatalf("ShardStats = %v, %v", stats, ok)
	}
	total, populated := 0, 0
	for i, s := range stats {
		if s.Shard != i {
			t.Fatalf("shard %d reports position %d", i, s.Shard)
		}
		total += s.Entries
		if s.Entries > 0 {
			populated++
		}
	}
	// stressDB inserts 600 vehicles, one color entry each.
	if total != 600 {
		t.Fatalf("shard entries sum to %d, want 600", total)
	}
	if populated < 2 {
		t.Fatalf("only %d of 4 shards populated; routing is degenerate", populated)
	}

	// A CH-index mutation locks exactly one shard; the write counter moves
	// on that shard only.
	before, _ := db.ShardStats("color")
	if _, err := db.Insert("Truck", Attrs{"Color": "Pink"}); err != nil {
		t.Fatal(err)
	}
	after, _ := db.ShardStats("color")
	moved := 0
	for i := range after {
		if after[i].Writes != before[i].Writes {
			moved++
		}
	}
	if moved != 1 {
		t.Fatalf("one CH insert moved %d color shard write counters, want 1", moved)
	}
	// The same insert maintains the path index, whose keys depend on
	// reference chains: it locks every shard of the age group.
	ageStats, _ := db.ShardStats("age")
	for i, s := range ageStats {
		if s.Writes == 0 {
			t.Fatalf("age shard %d saw no write traffic; path mutations must lock all shards", i)
		}
	}

	m := db.Metrics()
	if !reflect.DeepEqual(m.Shards["color"], after) {
		t.Fatalf("Metrics().Shards disagrees with ShardStats:\n%v\n%v", m.Shards["color"], after)
	}
	if _, ok := db.ShardStats("nope"); ok {
		t.Fatal("ShardStats of missing index succeeded")
	}
}

// TestShardedDiskLayout checks the on-disk artifacts: a sharded index lives
// in per-shard .uidx files plus a manifest, an effectively-unsharded one
// keeps the legacy single-file layout.
func TestShardedDiskLayout(t *testing.T) {
	dir := t.TempDir()
	db := stressDBWith(t, Options{Dir: dir, Shards: 3})
	mustExist := func(name string) {
		t.Helper()
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	mustExist("color.manifest")
	for i := 0; i < 3; i++ {
		mustExist(fmt.Sprintf("color.shard%d.uidx", i))
	}
	if _, err := os.Stat(filepath.Join(dir, "color.uidx")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sharded index also wrote the legacy single file: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	dir2 := t.TempDir()
	db2 := stressDBWith(t, Options{Dir: dir2, Shards: 1})
	if _, err := os.Stat(filepath.Join(dir2, "color.uidx")); err != nil {
		t.Fatalf("unsharded index missing legacy file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "color.manifest")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsharded index wrote a manifest: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDiskReopen closes a sharded database and reopens its index
// files from the manifest: the shard count and routing come from disk (a
// different Options.Shards is ignored), and every query answers identically
// to the pre-close state.
func TestShardedDiskReopen(t *testing.T) {
	dir := t.TempDir()
	db := stressDBWith(t, Options{Dir: dir, Shards: 3, PoolPages: 16})
	want := queryAll(t, db)
	snap := filepath.Join(t.TempDir(), "state.usnap")
	if err := db.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a contradicting shard request: the manifest wins.
	db2, err := LoadFileWith(snap, Options{Dir: dir, Shards: 7, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.NumShards("color"); n != 3 {
		t.Fatalf("reopened shard count = %d, want 3 (manifest over Options)", n)
	}
	got := queryAll(t, db2)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d after reopen: results diverge", i)
		}
	}

	// The other precedence direction: a legacy single-file layout stays
	// unsharded no matter what Options.Shards asks for.
	dirB := t.TempDir()
	dbB := stressDBWith(t, Options{Dir: dirB})
	snapB := filepath.Join(t.TempDir(), "stateB.usnap")
	if err := dbB.SaveFile(snapB); err != nil {
		t.Fatal(err)
	}
	if err := dbB.Close(); err != nil {
		t.Fatal(err)
	}
	dbB2, err := LoadFileWith(snapB, Options{Dir: dirB, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer dbB2.Close()
	if n, _ := dbB2.NumShards("color"); n != 1 {
		t.Fatalf("legacy reopen shard count = %d, want 1", n)
	}
}

// TestApplyBatch exercises the batched write surface directly: semantics
// identical to individual mutations, one result row per insert, planning
// errors reject the whole batch, execution errors stop it mid-way.
func TestApplyBatch(t *testing.T) {
	db, ids := paperDB(t)
	defer db.Close()
	ctx := context.Background()

	// Empty and nil batches are free no-ops.
	if res, err := db.Apply(ctx, nil); err != nil || res.Applied != 0 {
		t.Fatalf("nil batch: %+v, %v", res, err)
	}
	if res, err := db.Apply(ctx, &Batch{}); err != nil || res.Applied != 0 {
		t.Fatalf("empty batch: %+v, %v", res, err)
	}

	var b Batch
	b.Insert("Automobile", Attrs{"Name": "A1", "Color": "Teal"}).
		Insert("Truck", Attrs{"Name": "T1", "Color": "Teal"}).
		Set(ids["v5"], "Color", "Teal").
		Delete(ids["v3"])
	res, err := db.Apply(ctx, &b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 4 || len(res.OIDs) != 2 {
		t.Fatalf("batch result = %+v", res)
	}
	ms, _, err := db.Query(ctx, "color", Query{Value: Exact("Teal"), Positions: []Position{On("Vehicle")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("teal vehicles = %d, want 3", len(ms))
	}
	if ms, _, _ := db.Query(ctx, "color", Query{Value: Exact("Red")}); len(ms) != 1 {
		t.Fatalf("red vehicles after batch delete = %d, want 1", len(ms))
	}

	// Planning failures reject the batch before anything applies. The
	// self-reference case pins the documented rule that a batch cannot
	// reference its own inserts: nextOID names the object the batch's
	// insert WILL create, and planning still rejects it.
	_, nextOID := db.Store().Snapshot()
	for name, bad := range map[string]*Batch{
		"unknown class": new(Batch).Insert("Ghost", Attrs{"Color": "Never"}),
		"missing oid":   new(Batch).Insert("Truck", Attrs{"Color": "Never"}).Delete(99999),
		"self-reference": new(Batch).
			Insert("Employee", Attrs{"Age": 21}).
			Set(nextOID, "Age", 22),
		"unknown kind": {ops: []BatchOp{{Kind: BatchOpKind(9)}}},
	} {
		res, err := db.Apply(ctx, bad)
		if err == nil || res.Applied != 0 {
			t.Fatalf("%s: Apply = %+v, %v; want planning error with nothing applied", name, res, err)
		}
	}
	if ms, _, _ := db.Query(ctx, "color", Query{Value: Exact("Never")}); len(ms) != 0 {
		t.Fatalf("rejected batches leaked %d writes", len(ms))
	}
	if _, err := db.Apply(ctx, new(Batch).Insert("Ghost", nil)); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown-class batch error = %v, want ErrUnknownClass", err)
	}

	// An execution failure mid-batch stops it, leaving earlier operations
	// applied; Applied is the index of the failing op.
	b.Reset()
	b.Insert("Truck", Attrs{"Name": "T2", "Color": "Olive"}).
		Insert("Truck", Attrs{"NoSuchAttr": 1}).
		Insert("Truck", Attrs{"Name": "T3", "Color": "Olive"})
	res, err = db.Apply(ctx, &b)
	if err == nil {
		t.Fatal("batch with invalid attribute succeeded")
	}
	if res.Applied != 1 || len(res.OIDs) != 1 {
		t.Fatalf("partial batch result = %+v, want 1 applied", res)
	}
	if ms, _, _ := db.Query(ctx, "color", Query{Value: Exact("Olive")}); len(ms) != 1 {
		t.Fatalf("olive trucks = %d, want 1 (only the op before the failure)", len(ms))
	}

	// A canceled context stops the batch at the next boundary.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	b.Reset()
	b.Insert("Truck", Attrs{"Color": "Umber"})
	if _, err := db.Apply(cctx, &b); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch error = %v", err)
	}

	// Only complete batches count.
	m := db.Metrics()
	if m.Batches != 1 || m.BatchOps != 4 {
		t.Fatalf("Metrics batches=%d ops=%d, want 1/4", m.Batches, m.BatchOps)
	}
}

// TestApplyBatchSharded runs batches against a sharded database and checks
// the results match issuing the same operations individually against an
// unsharded one — including the OID sequence, since both databases share the
// seeded build history.
func TestApplyBatchSharded(t *testing.T) {
	flat := stressDB(t, 0)
	defer flat.Close()
	db := stressDBWith(t, Options{Shards: 4})
	defer db.Close()
	ctx := context.Background()

	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	var b Batch
	for i := 0; i < 40; i++ {
		b.Insert(classes[i%len(classes)], Attrs{"Color": "Crimson"})
	}
	res, err := db.Apply(ctx, &b)
	if err != nil || res.Applied != 40 {
		t.Fatalf("sharded batch: %+v, %v", res, err)
	}
	var flatOIDs []OID
	for i := 0; i < 40; i++ {
		oid, err := flat.Insert(classes[i%len(classes)], Attrs{"Color": "Crimson"})
		if err != nil {
			t.Fatal(err)
		}
		flatOIDs = append(flatOIDs, oid)
	}
	if !reflect.DeepEqual(res.OIDs, flatOIDs) {
		t.Fatalf("batched inserts assigned %v, individual inserts %v", res.OIDs, flatOIDs)
	}

	// Recolor half through a second batch on one side, individual Sets on
	// the other.
	b.Reset()
	for i, oid := range res.OIDs {
		if i%2 == 0 {
			b.Set(oid, "Color", "Indigo")
		}
	}
	if _, err := db.Apply(ctx, &b); err != nil {
		t.Fatal(err)
	}
	for i, oid := range flatOIDs {
		if i%2 == 0 {
			if err := flat.Set(oid, "Color", "Indigo"); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := queryAll(t, db)
	want := queryAll(t, flat)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d: batched sharded db diverges from individually-mutated flat db", i)
		}
	}
}

// TestApplyBatchDurable checks the batch checkpoint discipline under
// DurabilitySync on a sharded disk layout: one Apply makes its operations
// durable, surviving a reopen.
func TestApplyBatchDurable(t *testing.T) {
	dir := t.TempDir()
	db := stressDBWith(t, Options{Dir: dir, Shards: 3, Durability: DurabilitySync})
	ctx := context.Background()
	var b Batch
	for i := 0; i < 10; i++ {
		b.Insert("Automobile", Attrs{"Color": "Amber"})
	}
	if _, err := db.Apply(ctx, &b); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "state.usnap")
	if err := db.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFileWith(snap, Options{Dir: dir, Durability: DurabilitySync})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ms, _, err := db2.Query(ctx, "color", Query{Value: Exact("Amber"), Positions: []Position{On("Vehicle")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 10 {
		t.Fatalf("amber vehicles after reopen = %d, want 10", len(ms))
	}
}

// TestConcurrentShardWriters is the race-enabled cross-shard stress: one
// writer per vehicle class (each CH mutation locks a single color shard, so
// distinct classes proceed concurrently there), half batched, half
// individual, interleaved with readers. Asserts race-freedom under -race and
// exact entry accounting afterwards.
func TestConcurrentShardWriters(t *testing.T) {
	db := stressDBWith(t, Options{Shards: 4})
	defer db.Close()
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	const perWriter = 30
	ctx := context.Background()
	errs := make(chan error, len(classes)+2)

	var writers sync.WaitGroup
	for w, class := range classes {
		writers.Add(1)
		go func(w int, class string) {
			defer writers.Done()
			if w%2 == 0 { // batched writer: Apply in chunks of 5
				var b Batch
				for i := 0; i < perWriter; i++ {
					b.Insert(class, Attrs{"Color": "Wisteria"})
					if b.Len() == 5 {
						if _, err := db.Apply(ctx, &b); err != nil {
							errs <- err
							return
						}
						b.Reset()
					}
				}
				return
			}
			for i := 0; i < perWriter; i++ { // individual writer
				oid, err := db.Insert(class, Attrs{"Color": "Wisteria"})
				if err != nil {
					errs <- err
					return
				}
				if i%5 == 4 {
					if err := db.Set(oid, "Color", "Wisteria"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w, class)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			jobs := stressQueries()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				j := jobs[(r+i)%len(jobs)]
				if _, _, err := db.Query(ctx, j.Index, j.Query, WithAlgorithm(j.Algorithm)); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ms, _, err := db.Query(ctx, "color", Query{Value: Exact("Wisteria"), Positions: []Position{On("Vehicle")}})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(classes) * perWriter; len(ms) != want {
		t.Fatalf("wisteria vehicles = %d, want %d", len(ms), want)
	}
	stats, _ := db.ShardStats("color")
	var lockAcquisitions uint64
	for _, s := range stats {
		lockAcquisitions += s.Writes
	}
	if lockAcquisitions == 0 {
		t.Fatal("no shard write traffic recorded")
	}
}
