package uindex

// This file is the DurabilityWAL machinery: a group-commit write-ahead log
// in front of the shadow-paging checkpoints.
//
// Commit path. Every mutation runs under the writer locks of the shards it
// touches plus walState.commitMu in read mode, applies its store and index
// edits, and appends one logical record — the store operation plus, per
// index group, the exact key deletions and insertions it performed — to the
// log BEFORE releasing those locks. The append only buffers in memory; the
// mutation then unlocks and waits for the log's group-commit daemon to
// fsync its record, sharing that fsync with every concurrent committer.
//
// Checkpoint protocol (walCheckpointLocked). The background checkpointer
// folds the log into the shadow-paged files without stalling writers:
//
//	C := log.LastAppended()            // the cut the manifest will record
//	for each group, each shard:        // one shard at a time, writers
//	    lock shard; checkpointShard; unlock
//	commitMu.Lock()
//	objs := store.Snapshot(); W := log.LastAppended()
//	commitMu.Unlock()
//	write store.<gen+1>.snap from objs // outside every lock
//	log.WaitDurable(W)
//	commit each group manifest; db manifest CommitWAL(gen+1, C)
//	log.TruncateTo(C)
//
// Why this recovers exactly the durable log prefix:
//
//   - Every published state contains every record with LSN <= C: a record
//     at or below C was appended before C was read, its edits were applied
//     before the append (same critical section), and the shard locks /
//     commitMu.Lock make those edits visible to the checkpoint reads.
//   - No published state contains a record above W: edits land under the
//     shard lock and commitMu before the append assigns the LSN, so
//     anything a checkpoint read had an LSN by then, and W was read after
//     every overlapping critical section ended.
//   - WaitDurable(W) before the manifest commits means every record
//     embedded in a published state is also in the durable log; recovery
//     replaying (C, durable] over those states converges because the
//     replay operations are idempotent (keyed B-tree edits, tolerant
//     store ops with fixed OIDs).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pager"
	"repro/internal/store"
	"repro/internal/wal"
)

const (
	// walManifestName is the database commit manifest: one "shard" slot
	// carrying the store snapshot generation, plus the checkpoint LSN.
	walManifestName = "db.manifest"
	// walLogName is the write-ahead log file.
	walLogName = "wal.log"

	// walDefaultCheckpointBytes is the live-log size that triggers a
	// background checkpoint when Options.WALCheckpointBytes is zero.
	walDefaultCheckpointBytes = 4 << 20
	// walCheckpointPoll is how often the background checkpointer samples
	// the live-log size.
	walCheckpointPoll = 50 * time.Millisecond
)

// storeSnapName is the store snapshot file of one checkpoint generation.
func storeSnapName(gen uint64) string { return fmt.Sprintf("store.%d.snap", gen) }

// walState is the DurabilityWAL machinery of one Database.
type walState struct {
	log      *wal.Log
	manifest *pager.Manifest

	// commitMu orders mutations against the checkpoint's store cut: every
	// mutation holds it in read mode from its first store/index edit
	// through its log append, and the checkpointer holds it in write mode
	// only around the store snapshot + W read — so writers never stall on
	// checkpoint I/O, and the snapshot can neither contain an edit whose
	// LSN is above W nor miss one at or below C.
	commitMu sync.RWMutex

	// ckptMu serializes checkpoints (background, explicit Checkpoint,
	// catalog changes, Close).
	ckptMu sync.Mutex
	// storeGen is the generation of the current store snapshot file;
	// guarded by ckptMu.
	storeGen uint64

	replayed  atomic.Uint64 // records replayed by Open
	ckpts     atomic.Uint64 // completed WAL checkpoints
	ckptBytes int64         // live-log trigger; <0 disables

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
}

// stopCheckpointer signals the background checkpointer and waits for it to
// exit; callable from any goroutine, any number of times. Must run before
// taking the catalog write lock — the checkpointer acquires the read lock.
func (w *walState) stopCheckpointer() {
	w.stopOnce.Do(func() { close(w.stopc) })
	<-w.done
}

func newWALState(log *wal.Log, manifest *pager.Manifest, storeGen uint64, opts Options) *walState {
	ckptBytes := opts.WALCheckpointBytes
	if ckptBytes == 0 {
		ckptBytes = walDefaultCheckpointBytes
	}
	return &walState{
		log:       log,
		manifest:  manifest,
		storeGen:  storeGen,
		ckptBytes: ckptBytes,
		stopc:     make(chan struct{}),
		done:      make(chan struct{}),
	}
}

func walOptions(opts Options) wal.Options {
	return wal.Options{MaxDelay: opts.WALMaxDelay, MaxBatch: opts.WALMaxBatch}
}

// bootstrapWAL initializes a fresh DurabilityWAL database directory: the
// generation-1 store snapshot, the database manifest, and an empty log. A
// directory that already holds a WAL database is refused — its log tail
// must be replayed, which is Open's job, not NewDatabaseWith's.
func (db *Database) bootstrapWAL() error {
	manifestPath := filepath.Join(db.opts.Dir, walManifestName)
	if _, err := os.Stat(manifestPath); err == nil {
		return fmt.Errorf("uindex: %s already holds a WAL database; recover it with Open", db.opts.Dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	objs, next := db.st.Snapshot()
	if err := db.saveStoreSnapshot(filepath.Join(db.opts.Dir, storeSnapName(1)), objs, next); err != nil {
		return fmt.Errorf("uindex: writing initial store snapshot: %w", err)
	}
	manifest, err := pager.CreateManifestFile(manifestPath, nil, []uint64{1})
	if err != nil {
		return err
	}
	log, err := wal.Create(filepath.Join(db.opts.Dir, walLogName), walOptions(db.opts))
	if err != nil {
		manifest.Close()
		return err
	}
	db.wal = newWALState(log, manifest, 1, db.opts)
	go db.walCheckpointer()
	return nil
}

// recoveryError tags a recovery failure with ErrRecovery, keeping the
// underlying cause (pager corruption, WAL detail, snapshot damage) in the
// chain for errors.Is/errors.As.
func recoveryError(what string, err error) error {
	if errors.Is(err, ErrRecovery) {
		return err
	}
	return fmt.Errorf("%w: %s: %w", ErrRecovery, what, err)
}

// Open recovers a DurabilityWAL database from its directory: it reads the
// database manifest for the last checkpoint (store snapshot generation +
// checkpoint LSN), loads the store snapshot — which reopens every index
// file from its shadow-paged checkpoint — and replays the committed log
// suffix on top. Torn or partially-synced log tails are detected by the
// log's per-record framing and truncated, never replayed. Every recovery
// failure matches ErrRecovery.
//
// opts.Dir and opts.Durability are overridden by dir and DurabilityWAL;
// the remaining options (pools, caches, shards, WAL knobs) apply as in
// NewDatabaseWith.
func Open(dir string, opts Options) (*Database, error) {
	opts.Dir = dir
	opts.Durability = DurabilityWAL
	manifest, err := pager.OpenManifestFile(filepath.Join(dir, walManifestName))
	if err != nil {
		return nil, recoveryError("opening database manifest", err)
	}
	storeGen := manifest.Gens()[0]
	cut := manifest.WALLSN()
	// Load with checkpoint durability so NewDatabaseWith does not try to
	// bootstrap a fresh WAL under the snapshot load.
	loadOpts := opts
	loadOpts.Durability = DurabilityCheckpoint
	db, err := LoadFileWith(filepath.Join(dir, storeSnapName(storeGen)), loadOpts)
	if err != nil {
		manifest.Close()
		return nil, recoveryError("loading store snapshot", err)
	}
	db.opts.Durability = DurabilityWAL
	log, err := wal.Open(filepath.Join(dir, walLogName), walOptions(opts))
	if err != nil {
		db.Close()
		manifest.Close()
		return nil, recoveryError("opening write-ahead log", err)
	}
	w := newWALState(log, manifest, storeGen, opts)
	err = log.Replay(cut, func(lsn uint64, payload []byte) error {
		if rerr := db.walReplayRecord(payload); rerr != nil {
			return fmt.Errorf("record %d: %w", lsn, rerr)
		}
		w.replayed.Add(1)
		return nil
	})
	if err != nil {
		log.Abandon()
		db.Close()
		manifest.Close()
		return nil, recoveryError("replaying log", err)
	}
	db.wal = w
	go db.walCheckpointer()
	return db, nil
}

// walCheckpointer is the background goroutine that folds the log into the
// shadow-paged files once its live size crosses the configured trigger.
func (db *Database) walCheckpointer() {
	w := db.wal
	defer close(w.done)
	if w.ckptBytes < 0 {
		<-w.stopc
		return
	}
	t := time.NewTicker(walCheckpointPoll)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			if w.log.LiveBytes() < w.ckptBytes {
				continue
			}
			db.mu.RLock()
			if !db.closed {
				// Best-effort: a failing background checkpoint leaves the
				// log in place; the next explicit Checkpoint or Close
				// surfaces the error.
				_ = db.walCheckpointLocked()
			}
			db.mu.RUnlock()
		}
	}
}

// walCheckpointLocked runs one incremental checkpoint; see the protocol at
// the top of this file. The caller holds db.mu (read or write).
func (db *Database) walCheckpointLocked() error {
	w := db.wal
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()

	cut := w.log.LastAppended()
	// Publish each shard on its own, holding only that shard's writer
	// lock: writers to other shards (and readers everywhere) proceed.
	for _, name := range db.order {
		g := db.groups[name]
		if !g.disk() {
			continue
		}
		for _, i := range g.allShards() {
			g.sharded.LockShards([]int{i})
			err := g.checkpointShard(i)
			g.sharded.UnlockShards([]int{i})
			if err != nil {
				return fmt.Errorf("uindex: checkpointing index %q shard %d: %w", name, i, err)
			}
		}
	}
	// The store cut: commitMu in write mode excludes only the instant of
	// the in-memory snapshot + W read; encoding and writing the snapshot
	// file happen outside every lock.
	w.commitMu.Lock()
	objs, next := db.st.Snapshot()
	watermark := w.log.LastAppended()
	w.commitMu.Unlock()
	newGen := w.storeGen + 1
	snapPath := filepath.Join(db.opts.Dir, storeSnapName(newGen))
	if err := db.saveStoreSnapshot(snapPath, objs, next); err != nil {
		return fmt.Errorf("uindex: writing store snapshot: %w", err)
	}
	// Nothing a published state may contain can be missing from the log.
	if err := w.log.WaitDurable(watermark); err != nil {
		return err
	}
	for _, name := range db.order {
		g := db.groups[name]
		if err := g.commitManifest(); err != nil {
			return fmt.Errorf("uindex: committing index %q manifest: %w", name, err)
		}
	}
	if err := w.manifest.CommitWAL([]uint64{newGen}, cut); err != nil {
		return fmt.Errorf("uindex: committing database manifest: %w", err)
	}
	// The previous snapshot is now unreferenced; removal is best-effort
	// (a leftover file is orphaned, never read).
	os.Remove(filepath.Join(db.opts.Dir, storeSnapName(w.storeGen)))
	w.storeGen = newGen
	if err := w.log.TruncateTo(cut); err != nil {
		return err
	}
	w.ckpts.Add(1)
	db.ctrs.checkpoints.Add(1)
	return nil
}

// saveStoreSnapshot writes one store snapshot file and fsyncs it — the
// manifest commit that references it must never win the race to disk.
func (db *Database) saveStoreSnapshot(path string, objs []store.RestoredObject, next OID) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.saveSnapshot(f, objs, next); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- WAL-mode mutation paths -----------------------------------------------
//
// Each mutation applies its edits and appends its record under the covering
// shard locks plus commitMu (read); the durability wait happens after the
// locks drop, so concurrent committers queue only on the shared fsync.

func (db *Database) insertWAL(class string, attrs Attrs) (OID, error) {
	locked := db.lockCovering(class)
	db.wal.commitMu.RLock()
	oid, lsn, err := db.walApplyInsert(class, attrs)
	db.wal.commitMu.RUnlock()
	if err != nil {
		unlockAll(locked)
		db.ctrs.countWrite(&db.ctrs.inserts, err)
		return 0, err
	}
	countShardWrites(locked)
	unlockAll(locked)
	if err := db.wal.log.WaitDurable(lsn); err != nil {
		db.ctrs.countWrite(&db.ctrs.inserts, err)
		return 0, err
	}
	db.ctrs.countWrite(&db.ctrs.inserts, nil)
	return oid, nil
}

func (db *Database) setWAL(oid OID, class, attr string, v any) error {
	locked := db.lockCovering(class)
	db.wal.commitMu.RLock()
	lsn, err := db.walApplySet(oid, class, attr, v)
	db.wal.commitMu.RUnlock()
	if err != nil {
		unlockAll(locked)
		return err
	}
	countShardWrites(locked)
	unlockAll(locked)
	return db.wal.log.WaitDurable(lsn)
}

func (db *Database) deleteWAL(oid OID, class string) error {
	locked := db.lockCovering(class)
	db.wal.commitMu.RLock()
	lsn, err := db.walApplyDelete(oid, class)
	db.wal.commitMu.RUnlock()
	if err != nil {
		unlockAll(locked)
		return err
	}
	countShardWrites(locked)
	unlockAll(locked)
	return db.wal.log.WaitDurable(lsn)
}

// walGroupEdit is the per-index half of a log record: the exact key
// deletions and insertions one mutation performed on one group.
type walGroupEdit struct {
	name string
	dels [][]byte
	ins  [][]byte
}

// walApplyInsert executes an insert and appends its record; the caller
// holds the covering shard locks and commitMu (read).
func (db *Database) walApplyInsert(class string, attrs Attrs) (OID, uint64, error) {
	oid, err := db.st.Insert(class, attrs)
	if err != nil {
		return 0, 0, err
	}
	covering := db.coveringGroups(class)
	edits := make([]walGroupEdit, 0, len(covering))
	for _, g := range covering {
		keys, err := g.sharded.EntriesFor(oid)
		if err != nil {
			return 0, 0, fmt.Errorf("uindex: maintaining index %q: %w", g.name, err)
		}
		if err := g.sharded.ApplyKeys(nil, keys); err != nil {
			return 0, 0, fmt.Errorf("uindex: maintaining index %q: %w", g.name, err)
		}
		edits = append(edits, walGroupEdit{name: g.name, ins: keys})
	}
	payload, err := encodeWALInsert(oid, class, attrs, edits)
	if err != nil {
		return 0, 0, err
	}
	return oid, db.wal.log.Append(payload), nil
}

// walApplySet executes an attribute update and appends its record; locking
// contract as walApplyInsert.
func (db *Database) walApplySet(oid OID, class, attr string, v any) (uint64, error) {
	covering := db.coveringGroups(class)
	olds := make([][][]byte, len(covering))
	for i, g := range covering {
		old, err := g.sharded.EntriesFor(oid)
		if err != nil {
			return 0, fmt.Errorf("uindex: index %q: %w", g.name, err)
		}
		olds[i] = old
	}
	if _, err := db.st.SetAttr(oid, attr, v); err != nil {
		return 0, err
	}
	edits := make([]walGroupEdit, 0, len(covering))
	for i, g := range covering {
		newKeys, err := g.sharded.EntriesFor(oid)
		if err != nil {
			return 0, fmt.Errorf("uindex: index %q: %w", g.name, err)
		}
		dels, ins := core.DiffKeys(olds[i], newKeys)
		if err := g.sharded.ApplyKeys(dels, ins); err != nil {
			return 0, fmt.Errorf("uindex: index %q: %w", g.name, err)
		}
		edits = append(edits, walGroupEdit{name: g.name, dels: dels, ins: ins})
	}
	payload, err := encodeWALSet(oid, attr, v, edits)
	if err != nil {
		return 0, err
	}
	return db.wal.log.Append(payload), nil
}

// walApplyDelete executes a delete and appends its record; locking contract
// as walApplyInsert.
func (db *Database) walApplyDelete(oid OID, class string) (uint64, error) {
	covering := db.coveringGroups(class)
	edits := make([]walGroupEdit, 0, len(covering))
	for _, g := range covering {
		keys, err := g.sharded.EntriesFor(oid)
		if err != nil {
			return 0, fmt.Errorf("uindex: index %q: %w", g.name, err)
		}
		if err := g.sharded.ApplyKeys(keys, nil); err != nil {
			return 0, fmt.Errorf("uindex: index %q: %w", g.name, err)
		}
		edits = append(edits, walGroupEdit{name: g.name, dels: keys})
	}
	if err := db.st.Delete(oid); err != nil {
		return 0, err
	}
	payload := encodeWALDelete(oid, edits)
	return db.wal.log.Append(payload), nil
}

// --- record encoding --------------------------------------------------------
//
// A record is the kind byte, the store operation (OIDs as uvarints, values
// with the snapshot value tags of persist.go), then the per-group key
// edits. Records are physiological: replay re-applies the recorded key
// lists through the shard router rather than re-deriving them from the
// store, so a record replays identically whatever the surrounding state.

const (
	walRecInsert = 1
	walRecSet    = 2
	walRecDelete = 3
)

func walAppendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func walAppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// walAppendValue encodes one attribute value with the persist.go tags.
func walAppendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case int:
		b = append(b, tagInt)
		return binary.AppendUvarint(b, uint64(x)), nil
	case uint64:
		b = append(b, tagUint64)
		return binary.AppendUvarint(b, x), nil
	case int64:
		b = append(b, tagInt64)
		return binary.AppendUvarint(b, uint64(x)), nil
	case float64:
		b = append(b, tagFloat64)
		return binary.AppendUvarint(b, math.Float64bits(x)), nil
	case string:
		b = append(b, tagString)
		return walAppendStr(b, x), nil
	case OID:
		b = append(b, tagOID)
		return binary.AppendUvarint(b, uint64(x)), nil
	case []OID:
		b = append(b, tagOIDs)
		b = binary.AppendUvarint(b, uint64(len(x)))
		for _, o := range x {
			b = binary.AppendUvarint(b, uint64(o))
		}
		return b, nil
	}
	return nil, fmt.Errorf("uindex: cannot log attribute value of type %T", v)
}

func walAppendEdits(b []byte, edits []walGroupEdit) []byte {
	b = binary.AppendUvarint(b, uint64(len(edits)))
	for _, e := range edits {
		b = walAppendStr(b, e.name)
		b = binary.AppendUvarint(b, uint64(len(e.dels)))
		for _, k := range e.dels {
			b = walAppendBytes(b, k)
		}
		b = binary.AppendUvarint(b, uint64(len(e.ins)))
		for _, k := range e.ins {
			b = walAppendBytes(b, k)
		}
	}
	return b
}

func encodeWALInsert(oid OID, class string, attrs Attrs, edits []walGroupEdit) ([]byte, error) {
	b := []byte{walRecInsert}
	b = binary.AppendUvarint(b, uint64(oid))
	b = walAppendStr(b, class)
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic record bytes
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = walAppendStr(b, name)
		var err error
		if b, err = walAppendValue(b, attrs[name]); err != nil {
			return nil, err
		}
	}
	return walAppendEdits(b, edits), nil
}

func encodeWALSet(oid OID, attr string, v any, edits []walGroupEdit) ([]byte, error) {
	b := []byte{walRecSet}
	b = binary.AppendUvarint(b, uint64(oid))
	b = walAppendStr(b, attr)
	var err error
	if b, err = walAppendValue(b, v); err != nil {
		return nil, err
	}
	return walAppendEdits(b, edits), nil
}

func encodeWALDelete(oid OID, edits []walGroupEdit) []byte {
	b := []byte{walRecDelete}
	b = binary.AppendUvarint(b, uint64(oid))
	return walAppendEdits(b, edits)
}

// walDec decodes one record payload; the first failure sticks.
type walDec struct {
	b   []byte
	err error
}

func (d *walDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record: %s", what)
	}
}

func (d *walDec) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail("kind byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *walDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("byte run")
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *walDec) str() string { return string(d.take(d.uvarint())) }

func (d *walDec) keys() [][]byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	out := make([][]byte, 0, min(n, snapshotPreallocCap))
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, append([]byte(nil), d.take(d.uvarint())...))
	}
	return out
}

func (d *walDec) value() any {
	switch tag := d.byte(); tag {
	case tagInt:
		return int(d.uvarint())
	case tagUint64:
		return d.uvarint()
	case tagInt64:
		return int64(d.uvarint())
	case tagFloat64:
		return math.Float64frombits(d.uvarint())
	case tagString:
		return d.str()
	case tagOID:
		return OID(d.uvarint())
	case tagOIDs:
		n := d.uvarint()
		if d.err != nil {
			return nil
		}
		oids := make([]OID, 0, min(n, snapshotPreallocCap))
		for i := uint64(0); i < n && d.err == nil; i++ {
			oids = append(oids, OID(d.uvarint()))
		}
		return oids
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown value tag %d", tag)
		}
		return nil
	}
}

// walReplayRecord re-applies one log record during recovery. Store
// operations use the tolerant Replay* methods (fixed OIDs, no reference
// validation — a later record may delete a referenced object), index edits
// re-route the recorded key lists. Replay runs before the Database is
// published, so no locks are needed. Records naming a since-dropped index
// are applied to the store and skipped for that index.
func (db *Database) walReplayRecord(payload []byte) error {
	d := &walDec{b: payload}
	switch kind := d.byte(); kind {
	case walRecInsert:
		oid := OID(d.uvarint())
		class := d.str()
		n := d.uvarint()
		if d.err != nil {
			return d.err
		}
		attrs := make(Attrs, min(n, snapshotPreallocCap))
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.str()
			v := d.value()
			if d.err == nil {
				attrs[name] = v
			}
		}
		if d.err == nil {
			if err := db.st.ReplayInsert(oid, class, attrs); err != nil {
				return err
			}
		}
	case walRecSet:
		oid := OID(d.uvarint())
		attr := d.str()
		v := d.value()
		if d.err == nil {
			db.st.ReplaySet(oid, attr, v)
		}
	case walRecDelete:
		oid := OID(d.uvarint())
		if d.err == nil {
			db.st.ReplayDelete(oid)
		}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown record kind %d", kind)
		}
	}
	ng := d.uvarint()
	for i := uint64(0); i < ng && d.err == nil; i++ {
		name := d.str()
		dels := d.keys()
		ins := d.keys()
		if d.err != nil {
			break
		}
		g, ok := db.groups[name]
		if !ok {
			continue
		}
		if err := g.sharded.ApplyKeys(dels, ins); err != nil {
			return fmt.Errorf("index %q: %w", name, err)
		}
	}
	return d.err
}
