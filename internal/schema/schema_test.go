package schema

import (
	"sort"
	"testing"

	"repro/internal/encoding"
)

// paperSchema builds the schema of the paper's Figure 1 (plus nothing):
// Employee, Company (AutoCompany{JapaneseAutoCompany}, TruckCompany), City,
// Division, Vehicle (Automobile{CompactAutomobile}, Truck).
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", Attr{Name: "Age", Type: encoding.AttrUint64}))
	must(s.AddClass("Company", "",
		Attr{Name: "Name", Type: encoding.AttrString},
		Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("City", "", Attr{Name: "Name", Type: encoding.AttrString}))
	must(s.AddClass("Division", "",
		Attr{Name: "Belong", Ref: "Company"},
		Attr{Name: "LocatedIn", Ref: "City"}))
	must(s.AddClass("Vehicle", "",
		Attr{Name: "Name", Type: encoding.AttrString},
		Attr{Name: "Color", Type: encoding.AttrString},
		Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("Truck", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))
	must(s.AddClass("AutoCompany", "Company"))
	must(s.AddClass("TruckCompany", "Company"))
	must(s.AddClass("JapaneseAutoCompany", "AutoCompany"))
	return s
}

// TestPaperCOD reproduces the paper's Section 3 COD table exactly.
func TestPaperCOD(t *testing.T) {
	s := paperSchema(t)
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatalf("AssignCodes: %v", err)
	}
	want := map[string]string{
		"Employee":            "C1",
		"Company":             "C2",
		"City":                "C3",
		"Division":            "C4",
		"Vehicle":             "C5",
		"Automobile":          "C5A",
		"Truck":               "C5B",
		"CompactAutomobile":   "C5AA",
		"AutoCompany":         "C2A",
		"TruckCompany":        "C2B",
		"JapaneseAutoCompany": "C2AA",
	}
	for class, compact := range want {
		code, ok := coding.Code(class)
		if !ok {
			t.Errorf("class %q has no code", class)
			continue
		}
		if code.Compact() != compact {
			t.Errorf("COD %s = %s, want %s", class, code.Compact(), compact)
		}
		back, ok := coding.ClassOf(code)
		if !ok || back != class {
			t.Errorf("ClassOf(%s) = %q, %v", code, back, ok)
		}
	}
}

// TestRefTopologicalOrder checks the property path indexes rely on: along
// every REF edge honored by the default coding, the target's code sorts
// below the source's.
func TestRefTopologicalOrder(t *testing.T) {
	s := paperSchema(t)
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.RefEdges() {
		sc := coding.MustCode(e.Source)
		tc := coding.MustCode(e.Target)
		if !(tc < sc) {
			t.Errorf("REF %s.%s -> %s: code %s not below %s", e.Source, e.Attr, e.Target, tc, sc)
		}
	}
}

func TestAddClassValidation(t *testing.T) {
	s := New()
	if err := s.AddClass("", ""); err == nil {
		t.Error("empty class name accepted")
	}
	if err := s.AddClass("A", "Missing"); err == nil {
		t.Error("missing super accepted")
	}
	if err := s.AddClass("A", "", Attr{Name: "x", Type: encoding.AttrUint64}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("A", ""); err == nil {
		t.Error("duplicate class accepted")
	}
	if err := s.AddClass("B", "A", Attr{Name: "x", Type: encoding.AttrUint64}); err == nil {
		t.Error("shadowed inherited attribute accepted")
	}
	if err := s.AddClass("C", "", Attr{Name: "y"}, Attr{Name: "y"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := s.AddClass("D", "", Attr{Name: ""}); err == nil {
		t.Error("unnamed attribute accepted")
	}
}

func TestHierarchyQueries(t *testing.T) {
	s := paperSchema(t)
	if !s.IsSubclassOf("CompactAutomobile", "Vehicle") {
		t.Error("CompactAutomobile should be a subclass of Vehicle")
	}
	if !s.IsSubclassOf("Vehicle", "Vehicle") {
		t.Error("class should be subclass of itself")
	}
	if s.IsSubclassOf("Vehicle", "Automobile") {
		t.Error("Vehicle is not a subclass of Automobile")
	}
	if s.IsSubclassOf("Nope", "Vehicle") || s.IsSubclassOf("Vehicle", "Nope") {
		t.Error("unknown classes should not be subclasses")
	}
	sub := s.Subtree("Vehicle")
	want := []string{"Vehicle", "Automobile", "CompactAutomobile", "Truck"}
	if len(sub) != len(want) {
		t.Fatalf("Subtree = %v", sub)
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("Subtree = %v, want %v", sub, want)
		}
	}
	if got := s.RootOf("JapaneseAutoCompany"); got != "Company" {
		t.Errorf("RootOf = %q", got)
	}
	if got := s.RootOf("Nope"); got != "" {
		t.Errorf("RootOf(unknown) = %q", got)
	}
	roots := s.Roots()
	if len(roots) != 5 {
		t.Errorf("Roots = %v", roots)
	}
}

func TestAttrOfInheritance(t *testing.T) {
	s := paperSchema(t)
	a, ok := s.AttrOf("CompactAutomobile", "Color")
	if !ok || a.Type != encoding.AttrString {
		t.Errorf("AttrOf inherited = %+v, %v", a, ok)
	}
	a, ok = s.AttrOf("CompactAutomobile", "ManufacturedBy")
	if !ok || a.Ref != "Company" {
		t.Errorf("AttrOf inherited ref = %+v, %v", a, ok)
	}
	if _, ok := s.AttrOf("Employee", "Color"); ok {
		t.Error("Employee has Color?")
	}
	if _, ok := s.AttrOf("Nope", "x"); ok {
		t.Error("unknown class has attributes?")
	}
}

func TestValidate(t *testing.T) {
	s := New()
	if err := s.AddClass("A", "", Attr{Name: "r", Ref: "Ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil {
		t.Error("dangling REF accepted")
	}
	if _, err := s.AssignCodes(); err == nil {
		t.Error("AssignCodes on invalid schema succeeded")
	}
}

// TestEvolutionAppend: classes added after AssignCodes get codes without
// disturbing existing ones (Figure 4).
func TestEvolutionAppend(t *testing.T) {
	s := paperSchema(t)
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]encoding.Code{}
	for _, row := range coding.Table() {
		before[row.Class] = row.Code
	}
	// New subclass under Vehicle (Figure 4a).
	if err := s.AddClass("Bus", "Vehicle"); err != nil {
		t.Fatalf("AddClass after AssignCodes: %v", err)
	}
	busCode, ok := coding.Code("Bus")
	if !ok {
		t.Fatal("Bus got no code")
	}
	vehicle := coding.MustCode("Vehicle")
	truck := coding.MustCode("Truck")
	if !vehicle.IsAncestorOrSelf(busCode) {
		t.Errorf("Bus code %s not under Vehicle %s", busCode, vehicle)
	}
	if !(busCode > truck) {
		t.Errorf("Bus code %s should sort after Truck %s", busCode, truck)
	}
	// New root hierarchy (Figure 4b).
	if err := s.AddClass("Country", ""); err != nil {
		t.Fatal(err)
	}
	country, _ := coding.Code("Country")
	if !(country > coding.MustCode("Vehicle")) {
		t.Errorf("Country code %s should sort after Vehicle", country)
	}
	// Nothing pre-existing moved.
	for class, code := range before {
		if got := coding.MustCode(class); got != code {
			t.Errorf("evolution recoded %s: %s -> %s", class, code, got)
		}
	}
	// Deep evolution chain keeps working and stays ordered.
	prev := busCode
	parent := "Bus"
	for i := 0; i < 5; i++ {
		name := parent + "X"
		if err := s.AddClass(name, "Vehicle"); err != nil {
			t.Fatal(err)
		}
		c := coding.MustCode(name)
		if !(c > prev) {
			t.Fatalf("evolved sibling %s (%s) not after %s", name, c, prev)
		}
		prev, parent = c, name
	}
}

// TestInsertBetween reproduces Figure 4a's mid-hierarchy insertion: the new
// class sorts between two existing siblings, nothing else moves.
func TestInsertBetween(t *testing.T) {
	s := paperSchema(t)
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("Motorcycle", "Vehicle"); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBetween("Motorcycle", "Automobile", "Truck"); err != nil {
		t.Fatalf("InsertBetween: %v", err)
	}
	m := coding.MustCode("Motorcycle")
	a, tr := coding.MustCode("Automobile"), coding.MustCode("Truck")
	if !(a < m && m < tr) {
		t.Fatalf("Motorcycle code %s not between %s and %s", m, a, tr)
	}
	// Crucially the new sibling is NOT inside Automobile's subtree.
	if a.IsAncestorOrSelf(m) {
		t.Fatalf("Motorcycle %s landed inside Automobile subtree %s", m, a)
	}
	if name, ok := coding.ClassOf(m); !ok || name != "Motorcycle" {
		t.Fatal("reverse lookup broken after InsertBetween")
	}
	// Error paths.
	if err := s.InsertBetween("Nope", "Automobile", "Truck"); err == nil {
		t.Error("InsertBetween unknown class succeeded")
	}
	if err := s.InsertBetween("Motorcycle", "Employee", ""); err == nil {
		t.Error("InsertBetween with non-sibling bound succeeded")
	}
}

// TestCycleBreaking reproduces Section 4.3: OWN (Employee -> Vehicle) and
// USE (Vehicle -> Employee) REFs form a cycle; the default coding drops one
// constraint and CodingHonoring builds the alternate coding for the other.
func TestCycleBreaking(t *testing.T) {
	s := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "",
		Attr{Name: "Age", Type: encoding.AttrUint64},
		Attr{Name: "Own", Ref: "Vehicle2", Multi: true}))
	_ = s // forward REF to a class declared later is validated lazily
	must(s.AddClass("Vehicle2", "",
		Attr{Name: "Color", Type: encoding.AttrString},
		Attr{Name: "Use", Ref: "Employee", Multi: true}))

	def, err := s.AssignCodes()
	if err != nil {
		t.Fatalf("AssignCodes with REF cycle: %v", err)
	}
	// Default coding honors the first edge (Own: Vehicle2 before Employee).
	if !(def.MustCode("Vehicle2") < def.MustCode("Employee")) {
		t.Errorf("default coding: want Vehicle2 < Employee, got %s vs %s",
			def.MustCode("Vehicle2"), def.MustCode("Employee"))
	}
	// An index over Use needs Employee before Vehicle2: alternate coding.
	alt, err := s.CodingHonoring([]RefEdge{{Source: "Vehicle2", Attr: "Use", Target: "Employee"}})
	if err != nil {
		t.Fatalf("CodingHonoring: %v", err)
	}
	if !(alt.MustCode("Employee") < alt.MustCode("Vehicle2")) {
		t.Errorf("alternate coding: want Employee < Vehicle2, got %s vs %s",
			alt.MustCode("Employee"), alt.MustCode("Vehicle2"))
	}
	// Honoring both directions at once is impossible.
	if _, err := s.CodingHonoring([]RefEdge{
		{Source: "Vehicle2", Attr: "Use", Target: "Employee"},
		{Source: "Employee", Attr: "Own", Target: "Vehicle2"},
	}); err == nil {
		t.Error("CodingHonoring of a full cycle succeeded")
	}
}

func TestCodingTable(t *testing.T) {
	s := paperSchema(t)
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatal(err)
	}
	table := coding.Table()
	if len(table) != 11 {
		t.Fatalf("Table has %d rows", len(table))
	}
	if !sort.SliceIsSorted(table, func(i, j int) bool { return table[i].Code < table[j].Code }) {
		t.Error("Table not sorted by code")
	}
	if table[0].Class != "Employee" {
		t.Errorf("first row = %+v", table[0])
	}
}

func TestMustCodePanics(t *testing.T) {
	s := paperSchema(t)
	coding, _ := s.AssignCodes()
	defer func() {
		if recover() == nil {
			t.Error("MustCode of unknown class did not panic")
		}
	}()
	coding.MustCode("Ghost")
}

func TestRefEdges(t *testing.T) {
	s := paperSchema(t)
	edges := s.RefEdges()
	if len(edges) != 4 {
		t.Fatalf("RefEdges = %v", edges)
	}
	found := false
	for _, e := range edges {
		if e == (RefEdge{"Vehicle", "ManufacturedBy", "Company"}) {
			found = true
		}
	}
	if !found {
		t.Error("ManufacturedBy edge missing")
	}
}

// TestManyRoots exercises SequenceLabels-based root coding beyond 26.
func TestManyRoots(t *testing.T) {
	s := New()
	for i := 0; i < 40; i++ {
		if err := s.AddClass(string(rune('A'+i%26))+string(rune('0'+i/26)), ""); err != nil {
			t.Fatal(err)
		}
	}
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatal(err)
	}
	table := coding.Table()
	if len(table) != 40 {
		t.Fatalf("%d codes", len(table))
	}
	for i := 1; i < len(table); i++ {
		if table[i-1].Code >= table[i].Code {
			t.Fatal("codes not strictly sorted")
		}
	}
}

// TestManyChildren exercises SequenceLabels-based child coding beyond 26,
// needed by the 40-set experiment of Section 5.
func TestManyChildren(t *testing.T) {
	s := New()
	if err := s.AddClass("Root", "", Attr{Name: "Key", Type: encoding.AttrUint64}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AddClass(childName(i), "Root"); err != nil {
			t.Fatal(err)
		}
	}
	coding, err := s.AssignCodes()
	if err != nil {
		t.Fatal(err)
	}
	root := coding.MustCode("Root")
	var prev encoding.Code
	for i := 0; i < 40; i++ {
		c := coding.MustCode(childName(i))
		if !root.IsAncestorOrSelf(c) {
			t.Fatalf("child %d code %s not under root", i, c)
		}
		if i > 0 && !(prev < c) {
			t.Fatalf("child codes not in declaration order at %d", i)
		}
		prev = c
	}
}

func childName(i int) string {
	return "Set" + string(rune('A'+i/10)) + string(rune('0'+i%10))
}
