// Package schema models an object-oriented database schema in the sense of
// the paper (Gudes, Section 2): classes with attributes, the SUP/SUB
// ("is-a") class hierarchy, and REF (class-composition) relationships, plus
// the machinery of Section 3 — assignment of lexicographic class codes whose
// order matches a depth-first topological order of the schema graph — and of
// Section 4.3 — schema evolution and REF-cycle breaking via alternate
// codings.
package schema

import (
	"fmt"
	"sort"

	"repro/internal/encoding"
)

// Attr describes one attribute of a class. Exactly one of Type/Ref is
// meaningful: a scalar attribute has a Type; a reference attribute names the
// target class in Ref (an m:1 REF relationship, or m:n when Multi is set).
type Attr struct {
	Name  string
	Type  encoding.AttrType // scalar attributes
	Ref   string            // reference attributes: target class name
	Multi bool              // multi-value reference (paper Section 4.3)
}

// IsRef reports whether the attribute is a reference.
func (a Attr) IsRef() bool { return a.Ref != "" }

// Class is one node of the class hierarchy.
type Class struct {
	Name  string
	Super string // parent class name; "" for hierarchy roots
	Attrs []Attr // attributes declared on this class (inherited ones excluded)
}

// Schema is a mutable schema. Create with New, populate with AddClass and
// AddAttr, then call AssignCodes; afterwards classes can still be added (the
// evolution path of the paper's Figure 4) and codes remain stable.
type Schema struct {
	classes  map[string]*Class
	order    []string            // class names in insertion order
	children map[string][]string // hierarchy children in insertion order
	coding   *Coding             // nil until AssignCodes
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{
		classes:  make(map[string]*Class),
		children: make(map[string][]string),
	}
}

// AddClass declares a class. super is "" for a hierarchy root; otherwise it
// must already exist. Attributes inherited from super must not be redeclared.
func (s *Schema) AddClass(name, super string, attrs ...Attr) error {
	if name == "" {
		return fmt.Errorf("schema: empty class name")
	}
	if _, dup := s.classes[name]; dup {
		return fmt.Errorf("schema: class %q already declared", name)
	}
	if super != "" {
		if _, ok := s.classes[super]; !ok {
			return fmt.Errorf("schema: super class %q of %q not declared", super, name)
		}
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a.Name == "" {
			return fmt.Errorf("schema: class %q has an unnamed attribute", name)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema: class %q declares attribute %q twice", name, a.Name)
		}
		seen[a.Name] = true
	}
	for anc := super; anc != ""; anc = s.classes[anc].Super {
		for _, a := range s.classes[anc].Attrs {
			if seen[a.Name] {
				return fmt.Errorf("schema: class %q shadows inherited attribute %q", name, a.Name)
			}
		}
	}
	s.classes[name] = &Class{Name: name, Super: super, Attrs: attrs}
	s.order = append(s.order, name)
	s.children[super] = append(s.children[super], name)
	if s.coding != nil {
		// Evolution: give the new class a code past its last sibling
		// (paper Figure 4a/4b — adding a class never recodes others).
		if err := s.coding.assignNew(s, name); err != nil {
			delete(s.classes, name)
			s.order = s.order[:len(s.order)-1]
			kids := s.children[super]
			s.children[super] = kids[:len(kids)-1]
			return err
		}
	}
	return nil
}

// Class returns the class by name.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns all class names in declaration order.
func (s *Schema) Classes() []string {
	return append([]string(nil), s.order...)
}

// Children returns the direct subclasses of a class in declaration order.
func (s *Schema) Children(name string) []string {
	return append([]string(nil), s.children[name]...)
}

// Roots returns the hierarchy roots in declaration order.
func (s *Schema) Roots() []string {
	return append([]string(nil), s.children[""]...)
}

// IsSubclassOf reports whether class c equals anc or is a (transitive)
// subclass of it.
func (s *Schema) IsSubclassOf(c, anc string) bool {
	for ; c != ""; c = s.classes[c].Super {
		if c == anc {
			return true
		}
		if _, ok := s.classes[c]; !ok {
			return false
		}
	}
	return false
}

// Subtree returns the class and all of its transitive subclasses in
// depth-first preorder.
func (s *Schema) Subtree(name string) []string {
	var out []string
	var walk func(string)
	walk = func(c string) {
		out = append(out, c)
		for _, k := range s.children[c] {
			walk(k)
		}
	}
	if _, ok := s.classes[name]; ok {
		walk(name)
	}
	return out
}

// AttrOf resolves an attribute on a class, searching the inheritance chain.
func (s *Schema) AttrOf(class, attr string) (Attr, bool) {
	for c := class; c != ""; {
		cl, ok := s.classes[c]
		if !ok {
			return Attr{}, false
		}
		for _, a := range cl.Attrs {
			if a.Name == attr {
				return a, true
			}
		}
		c = cl.Super
	}
	return Attr{}, false
}

// RootOf returns the hierarchy root of a class.
func (s *Schema) RootOf(class string) string {
	for {
		c, ok := s.classes[class]
		if !ok {
			return ""
		}
		if c.Super == "" {
			return class
		}
		class = c.Super
	}
}

// RefEdge is one REF relationship: Source.Attr references Target.
type RefEdge struct {
	Source, Attr, Target string
}

// RefEdges lists every REF relationship in the schema in declaration order.
func (s *Schema) RefEdges() []RefEdge {
	var out []RefEdge
	for _, name := range s.order {
		for _, a := range s.classes[name].Attrs {
			if a.IsRef() {
				out = append(out, RefEdge{name, a.Name, a.Ref})
			}
		}
	}
	return out
}

// Validate checks referential consistency: every REF target exists. The
// hierarchy is acyclic by construction (supers must pre-exist).
func (s *Schema) Validate() error {
	for _, name := range s.order {
		for _, a := range s.classes[name].Attrs {
			if a.IsRef() {
				if _, ok := s.classes[a.Ref]; !ok {
					return fmt.Errorf("schema: %s.%s references undeclared class %q", name, a.Name, a.Ref)
				}
			}
		}
	}
	return nil
}

// AssignCodes computes the default Coding for the schema: hierarchy roots
// are ordered by a topological sort of the REF graph between hierarchies
// (so that a referenced hierarchy receives a smaller code than the
// referencing one, which is what makes path-index keys sort terminal-first),
// and children receive labels in declaration order. REF edges that would
// close a cycle are ignored here; indexes over such edges use
// CodingHonoring (the paper's duplicate-encoding trick, Section 4.3).
func (s *Schema) AssignCodes() (*Coding, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	coding, err := s.codingFor(s.RefEdges(), false)
	if err != nil {
		return nil, err
	}
	s.coding = coding
	return coding, nil
}

// Coding returns the schema's default coding (nil before AssignCodes).
func (s *Schema) Coding() *Coding { return s.coding }

// CodingHonoring builds an alternate coding that honors the given REF
// edges strictly (error if they are themselves cyclic). This implements the
// paper's cycle-breaking: "we break the cycle by replacing the original
// graph with two acyclic separate graphs, one correspond to one REF index,
// the other to the rest of the graph" (Section 4.3). An index whose path
// conflicts with the default coding is built over such an alternate coding.
func (s *Schema) CodingHonoring(mustHonor []RefEdge) (*Coding, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// The must-honor edges come first so the topological sort favors
	// them; they are also checked strictly afterwards.
	edges := append(append([]RefEdge(nil), mustHonor...), s.RefEdges()...)
	coding, err := s.codingFor(edges, false)
	if err != nil {
		return nil, err
	}
	for _, e := range mustHonor {
		sc, _ := coding.Code(s.RootOf(e.Source))
		tc, _ := coding.Code(s.RootOf(e.Target))
		if e.Source != e.Target && !(tc < sc) {
			return nil, fmt.Errorf("schema: cannot honor REF %s.%s -> %s: cyclic constraints", e.Source, e.Attr, e.Target)
		}
	}
	return coding, nil
}

// codingFor performs the topological root ordering and code assignment.
// Edge constraints are processed greedily in order; later edges that would
// contradict earlier ones are dropped (strict=false) — the caller verifies
// the edges it truly needs.
func (s *Schema) codingFor(edges []RefEdge, strict bool) (*Coding, error) {
	roots := s.Roots()
	idx := make(map[string]int, len(roots))
	for i, r := range roots {
		idx[r] = i
	}
	// Build constraint edges between root hierarchies: target before
	// source. Self-loops (REF within one hierarchy) cannot be expressed
	// in the root order and are skipped; they are the duplicate-encoding
	// case of Section 4.3 handled by core with a second key position.
	type edge struct{ from, to int } // from must come before to
	var cons []edge
	seen := map[[2]int]bool{}
	for _, e := range edges {
		sr, tr := s.RootOf(e.Source), s.RootOf(e.Target)
		if sr == "" || tr == "" {
			return nil, fmt.Errorf("schema: REF %s.%s -> %s names unknown classes", e.Source, e.Attr, e.Target)
		}
		if sr == tr {
			continue
		}
		k := [2]int{idx[tr], idx[sr]}
		if !seen[k] {
			seen[k] = true
			cons = append(cons, edge{idx[tr], idx[sr]})
		}
	}
	// Greedy cycle removal: add constraints one at a time, dropping any
	// that closes a cycle (checked by DFS over accepted constraints).
	adj := make([][]int, len(roots))
	reaches := func(from, to int) bool {
		stack := []int{from}
		visited := make([]bool, len(roots))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == to {
				return true
			}
			if visited[v] {
				continue
			}
			visited[v] = true
			stack = append(stack, adj[v]...)
		}
		return false
	}
	for _, c := range cons {
		if reaches(c.to, c.from) {
			if strict {
				return nil, fmt.Errorf("schema: REF graph between hierarchies is cyclic")
			}
			continue // drop the back edge (Section 4.3)
		}
		adj[c.from] = append(adj[c.from], c.to)
	}
	// Kahn's algorithm with declaration order as the tie-break, so the
	// result is deterministic and matches the paper's example numbering.
	indeg := make([]int, len(roots))
	for _, tos := range adj {
		for _, to := range tos {
			indeg[to]++
		}
	}
	var orderIdx []int
	avail := make([]int, 0, len(roots))
	for i := range roots {
		if indeg[i] == 0 {
			avail = append(avail, i)
		}
	}
	for len(avail) > 0 {
		sort.Ints(avail)
		v := avail[0]
		avail = avail[1:]
		orderIdx = append(orderIdx, v)
		for _, to := range adj[v] {
			if indeg[to]--; indeg[to] == 0 {
				avail = append(avail, to)
			}
		}
	}
	if len(orderIdx) != len(roots) {
		return nil, fmt.Errorf("schema: internal: topological sort incomplete")
	}

	coding := newCoding()
	rootLabels := encoding.SequenceLabels(len(roots))
	for pos, ri := range orderIdx {
		root := roots[ri]
		code, err := encoding.ParseCode("C" + rootLabels[pos])
		if err != nil {
			return nil, err
		}
		if err := coding.assignSubtree(s, root, code); err != nil {
			return nil, err
		}
	}
	return coding, nil
}
