package schema

import (
	"fmt"
	"sort"

	"repro/internal/encoding"
)

// Coding is an assignment of lexicographic codes (the paper's COD relation)
// to every class of a schema. A schema has one default coding; indexes over
// REF edges that conflict with it carry their own alternate coding
// (Section 4.3).
type Coding struct {
	codes  map[string]encoding.Code
	names  map[encoding.Code]string
	labels map[string]string // class -> its own (last-level) label
}

func newCoding() *Coding {
	return &Coding{
		codes:  make(map[string]encoding.Code),
		names:  make(map[encoding.Code]string),
		labels: make(map[string]string),
	}
}

// Code returns the code of a class.
func (c *Coding) Code(class string) (encoding.Code, bool) {
	code, ok := c.codes[class]
	return code, ok
}

// MustCode is Code that panics when the class is unknown; for tests and
// examples working with a validated schema.
func (c *Coding) MustCode(class string) encoding.Code {
	code, ok := c.codes[class]
	if !ok {
		panic(fmt.Sprintf("schema: class %q has no code", class))
	}
	return code
}

// ClassOf returns the class a code was assigned to.
func (c *Coding) ClassOf(code encoding.Code) (string, bool) {
	name, ok := c.names[code]
	return name, ok
}

// Table returns the full COD relation sorted by code, for display (the
// paper presents exactly this table in Section 3).
func (c *Coding) Table() []struct {
	Class string
	Code  encoding.Code
} {
	out := make([]struct {
		Class string
		Code  encoding.Code
	}, 0, len(c.codes))
	for class, code := range c.codes {
		out = append(out, struct {
			Class string
			Code  encoding.Code
		}{class, code})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// assignSubtree gives root the given code and codes the whole subtree with
// child labels in declaration order.
func (c *Coding) assignSubtree(s *Schema, root string, code encoding.Code) error {
	if old, dup := c.codes[root]; dup {
		return fmt.Errorf("schema: class %q already coded %s", root, old)
	}
	c.codes[root] = code
	c.names[code] = root
	labels := code.Labels()
	c.labels[root] = labels[len(labels)-1]
	kids := s.children[root]
	var childLabels []string
	if len(kids) <= 26 {
		childLabels = encoding.AlphaLabels(len(kids))
	} else {
		childLabels = encoding.SequenceLabels(len(kids))
	}
	for i, kid := range kids {
		child, err := code.Child(childLabels[i])
		if err != nil {
			return err
		}
		if err := c.assignSubtree(s, kid, child); err != nil {
			return err
		}
	}
	return nil
}

// assignNew codes a class added after AssignCodes: it receives a label just
// past its last coded sibling, so no existing code changes (Figure 4).
func (c *Coding) assignNew(s *Schema, name string) error {
	cl := s.classes[name]
	var siblings []string
	var parentCode encoding.Code
	if cl.Super == "" {
		siblings = s.children[""]
	} else {
		var ok bool
		parentCode, ok = c.codes[cl.Super]
		if !ok {
			return fmt.Errorf("schema: super %q of new class %q has no code", cl.Super, name)
		}
		siblings = s.children[cl.Super]
	}
	// Find the largest label among already-coded siblings.
	last := ""
	for _, sib := range siblings {
		if sib == name {
			continue
		}
		if l, ok := c.labels[sib]; ok && l > last {
			last = l
		}
	}
	var label string
	var code encoding.Code
	var err error
	if cl.Super == "" {
		// Root labels carry the paper's cosmetic "C" prefix inside the
		// label itself ("C1", "C2", ...). Steer evolved roots to stay
		// in the C… region when possible by bounding above with "D".
		hi := ""
		if last < "D" {
			hi = "D"
		}
		if label, err = encoding.LabelBetween(last, hi); err != nil {
			return err
		}
		if code, err = encoding.ParseCode(label); err != nil {
			return err
		}
	} else {
		if label, err = encoding.LabelBetween(last, ""); err != nil {
			return err
		}
		if code, err = parentCode.Child(label); err != nil {
			return err
		}
	}
	c.codes[name] = code
	c.names[code] = name
	c.labels[name] = label
	return nil
}

// InsertBetween assigns a code to an already-declared-but-uncoded class so
// that it sorts between two coded siblings (Figure 4a: "adding a new class
// within existing hierarchy"). Most callers use AddClass after AssignCodes,
// which appends after the last sibling; InsertBetween is for when the
// position matters (e.g. keeping a semantically meaningful preorder).
func (s *Schema) InsertBetween(name, afterSibling, beforeSibling string) error {
	if s.coding == nil {
		return fmt.Errorf("schema: InsertBetween before AssignCodes")
	}
	cl, ok := s.classes[name]
	if !ok {
		return fmt.Errorf("schema: class %q not declared", name)
	}
	lo, hi := "", ""
	if afterSibling != "" {
		l, ok := s.coding.labels[afterSibling]
		if !ok || s.classes[afterSibling].Super != cl.Super {
			return fmt.Errorf("schema: %q is not a coded sibling of %q", afterSibling, name)
		}
		lo = l
	}
	if beforeSibling != "" {
		l, ok := s.coding.labels[beforeSibling]
		if !ok || s.classes[beforeSibling].Super != cl.Super {
			return fmt.Errorf("schema: %q is not a coded sibling of %q", beforeSibling, name)
		}
		hi = l
	}
	label, err := encoding.LabelBetween(lo, hi)
	if err != nil {
		return err
	}
	var code encoding.Code
	if cl.Super == "" {
		if code, err = encoding.ParseCode(label); err != nil {
			return err
		}
	} else {
		parentCode, ok := s.coding.codes[cl.Super]
		if !ok {
			return fmt.Errorf("schema: super %q has no code", cl.Super)
		}
		if code, err = parentCode.Child(label); err != nil {
			return err
		}
	}
	// Replace any code assignNew already gave the class.
	if old, ok := s.coding.codes[name]; ok {
		delete(s.coding.names, old)
	}
	s.coding.codes[name] = code
	s.coding.names[code] = name
	s.coding.labels[name] = label
	return nil
}
