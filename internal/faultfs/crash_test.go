package faultfs

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/bufferpool"
	"repro/internal/pager"
)

// The crash-matrix workload: a copy-on-write B+-tree behind a buffer pool
// behind a DiskFile on a faultfs.Media, inserting crashKeys keys and
// checkpointing every crashCkptEvery inserts. Small MaxEntries forces
// splits (page churn, retired pages, free-list growth) without needing
// thousands of keys.
const (
	crashPageSize  = 256
	crashPoolPages = 8
	crashMaxEnt    = 4
	crashKeys      = 36
	crashCkptEvery = 12
)

func crashKey(i int) []byte { return []byte(fmt.Sprintf("k%05d", i)) }
func crashVal(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }

// checkpointState records one durability point the workload reached: how
// many keys were in the tree and how many media ops had completed when its
// publishing sync returned.
type checkpointState struct {
	count int
	endOp int
}

// runCrashWorkload drives the workload against m until it finishes or an
// injected crash stops it. It returns every checkpoint that completed; err
// is non-nil when a crash interrupted the run.
func runCrashWorkload(m *Media) ([]checkpointState, error) {
	df, err := pager.CreateDiskFileOn(m, crashPageSize)
	if err != nil {
		return nil, err
	}
	ckpts := []checkpointState{{count: 0, endOp: m.Ops()}}
	pool, err := bufferpool.New(df, bufferpool.Config{Pages: crashPoolPages})
	if err != nil {
		return ckpts, err
	}
	tr, err := btree.Create(pool, btree.Config{MaxEntries: crashMaxEnt})
	if err != nil {
		return ckpts, err
	}
	for i := 0; i < crashKeys; i++ {
		if err := tr.Insert(crashKey(i), crashVal(i)); err != nil {
			return ckpts, err
		}
		if (i+1)%crashCkptEvery != 0 {
			continue
		}
		// The checkpoint protocol of the uindex facade: persist the tree
		// metadata (copy-on-write), stage the new meta id as the header
		// payload, then flush the pool — which syncs the DiskFile,
		// atomically publishing pages, free list and payload together.
		if err := tr.Flush(); err != nil {
			return ckpts, err
		}
		var pl [4]byte
		binary.BigEndian.PutUint32(pl[:], uint32(tr.MetaPage()))
		if err := df.SetPayload(pl[:]); err != nil {
			return ckpts, err
		}
		if err := pool.FlushAll(); err != nil {
			return ckpts, err
		}
		ckpts = append(ckpts, checkpointState{count: i + 1, endOp: m.Ops()})
	}
	if err := pool.Close(); err != nil { // flush + closing checkpoint
		return ckpts, err
	}
	ckpts = append(ckpts, checkpointState{count: crashKeys, endOp: m.Ops()})
	return ckpts, nil
}

// verifyRecovered reopens the crashed media and checks the recovered
// database: it must be exactly one of the two checkpoints adjacent to the
// crash point, structurally valid, with every read checksum-clean. ckpts
// is the full checkpoint schedule of the clean run — the crashed run
// follows the identical deterministic schedule up to its crash, and the
// checkpoint that was in flight when the crash hit may or may not have
// become durable.
func verifyRecovered(t *testing.T, m *Media, ckpts []checkpointState, crashOp int, desc string) {
	t.Helper()
	// Checkpoint j certainly completed iff its publishing sync finished
	// before the crash (endOp <= crashOp: ops 0..crashOp-1 completed, op
	// crashOp itself crashed). The next one may additionally have become
	// durable if the crash hit between its header write and its final
	// fsync under the keep-unsynced power model.
	lastDone := -1
	for i, c := range ckpts {
		if c.endOp <= crashOp {
			lastDone = i
		}
	}
	df, err := pager.OpenDiskFileOn(m)
	if err != nil {
		// Only a crash during file creation — before any checkpoint at
		// all was published — may leave the file unopenable, and then
		// only with a typed corruption error.
		if lastDone < 0 && errors.Is(err, pager.ErrCorruptFile) {
			return
		}
		t.Fatalf("%s: recovery failed: %v", desc, err)
	}
	defer df.Close()

	allowed := map[int]bool{}
	if lastDone < 0 {
		allowed[0] = true // mid-creation; only the empty state is acceptable
		lastDone = -1
	} else {
		allowed[ckpts[lastDone].count] = true
	}
	if lastDone+1 < len(ckpts) {
		allowed[ckpts[lastDone+1].count] = true
	}

	payload := df.Payload()
	count := 0
	if len(payload) == 4 {
		meta := pager.PageID(binary.BigEndian.Uint32(payload))
		pool, err := bufferpool.New(df, bufferpool.Config{Pages: crashPoolPages})
		if err != nil {
			t.Fatalf("%s: pool: %v", desc, err)
		}
		tr, err := btree.Open(pool, meta)
		if err != nil {
			t.Fatalf("%s: opening recovered tree at meta %d: %v", desc, meta, err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("%s: recovered tree fails invariant check: %v", desc, err)
		}
		count = tr.Len()
		// Every key of the recovered prefix must read back intact — any
		// checksum error or wrong value fails here.
		seen := 0
		err = tr.Scan(context.Background(), nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
			if string(k) != string(crashKey(seen)) || string(v) != string(crashVal(seen)) {
				return nil, true, fmt.Errorf("entry %d = %q/%q, want %q/%q", seen, k, v, crashKey(seen), crashVal(seen))
			}
			seen++
			return nil, false, nil
		})
		if err != nil {
			t.Fatalf("%s: scanning recovered tree: %v", desc, err)
		}
		if seen != count {
			t.Fatalf("%s: scan saw %d entries, Len says %d", desc, seen, count)
		}
	} else if len(payload) != 0 {
		t.Fatalf("%s: recovered payload has unexpected length %d", desc, len(payload))
	}

	if !allowed[count] {
		t.Fatalf("%s: recovered %d keys, want one of %v (checkpoints %+v)", desc, count, allowed, ckpts)
	}
}

// TestCrashMatrix simulates a crash at every media operation the workload
// performs — under both power models (unsynced writes lost / kept) and
// with short and torn variants of the crashing write, including tears in
// the middle of a header slot — and asserts that recovery always lands on
// exactly the pre- or post-checkpoint state with checksum-clean reads.
func TestCrashMatrix(t *testing.T) {
	// A clean run fixes the op schedule and the expected checkpoints.
	clean := NewMedia()
	ckpts, err := runCrashWorkload(clean)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	log := clean.Log()
	total := clean.Ops()
	if total != len(log) {
		t.Fatalf("op log length %d != op count %d", len(log), total)
	}
	clean.Crash(false)
	verifyRecovered(t, clean, ckpts, total, "clean run")
	if got := ckpts[len(ckpts)-1].count; got != crashKeys {
		t.Fatalf("clean run checkpointed %d keys, want %d", got, crashKeys)
	}

	stride := 1
	if testing.Short() {
		stride = 7
	}
	for k := 0; k < total; k += stride {
		// Short/torn variants for the crashing write: drop it entirely,
		// tear it mid-structure (13 bytes reaches the middle of a 64-byte
		// header slot), or tear it at sector granularity.
		partials := []int{0}
		if log[k].Kind == "write" {
			if log[k].Len > 13 {
				partials = append(partials, 13)
			}
			if log[k].Len > SectorSize {
				partials = append(partials, SectorSize)
			}
		}
		for _, partial := range partials {
			for _, keep := range []bool{false, true} {
				desc := fmt.Sprintf("crash at op %d/%d (%s len %d, partial %d, keep=%v)",
					k, total, log[k].Kind, log[k].Len, partial, keep)
				m := NewMedia()
				m.SetCrash(k, partial)
				if _, err := runCrashWorkload(m); err == nil {
					t.Fatalf("%s: workload completed despite scripted crash", desc)
				}
				m.Crash(keep)
				// The crashed run followed the clean run's deterministic
				// schedule up to op k, so the clean checkpoint list tells us
				// which states may be durable — including a checkpoint that
				// was still in flight when the crash hit.
				verifyRecovered(t, m, ckpts, k, desc)
			}
		}
	}
}

// TestCrashMatrixDeterministic guards the matrix itself: two clean runs
// must produce identical op schedules, otherwise crash points would not be
// reproducible.
func TestCrashMatrixDeterministic(t *testing.T) {
	a, b := NewMedia(), NewMedia()
	if _, err := runCrashWorkload(a); err != nil {
		t.Fatal(err)
	}
	if _, err := runCrashWorkload(b); err != nil {
		t.Fatal(err)
	}
	la, lb := a.Log(), b.Log()
	if len(la) != len(lb) {
		t.Fatalf("op counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}
