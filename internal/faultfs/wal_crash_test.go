package faultfs

// The WAL crash matrix: a write-ahead log, a shadow-paged data file, and the
// manifest that carries the checkpoint LSN, crashed at every media operation
// on each of the three devices under both power models and with torn
// variants of the crashing write. The invariant is the recovery contract of
// the uindex WAL protocol: the recovered state — the data file pinned at the
// manifest's generation plus the log records replayed above the manifest's
// checkpoint LSN — is EXACTLY the committed record prefix 1..D, where D is
// the last record whose group-commit fsync completed before the crash (one
// in-flight record may additionally survive a crash on the log device under
// the keep-unsynced power model).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/pager"
	"repro/internal/wal"
)

const (
	walCrashPageSize  = 256
	walCrashRecords   = 9
	walCrashCkptEvery = 3
)

// walRecPayload is the stamped content of record lsn.
func walRecPayload(lsn uint64) []byte {
	return []byte(fmt.Sprintf("wal-record-%04d", lsn))
}

// walTreePage is the data-file page a checkpoint at cut publishes.
func walTreePage(cut uint64) []byte {
	page := make([]byte, walCrashPageSize)
	copy(page, fmt.Sprintf("tree-at-cut-%04d", cut))
	return page
}

// walCommit marks one record's commit point: WaitDurable returned, so the
// record is on durable media. end holds each media's op count at that
// moment (log, tree, manifest).
type walCommit struct {
	lsn uint64
	end [3]int
}

// runWALCrashWorkload drives the facade's WAL protocol in lock step: append
// one record, wait for its group-commit fsync, and every walCrashCkptEvery
// records run the checkpoint sequence — publish the data page, commit the
// manifest with the checkpoint LSN, truncate the log — in exactly the order
// wal.go documents (checkpoint the file, THEN the manifest, THEN the log).
// It returns every record commit that completed; err is non-nil when an
// injected crash interrupted the run.
func runWALCrashWorkload(mL, mT, mM *Media) ([]walCommit, error) {
	record := func(lsn uint64) walCommit {
		return walCommit{lsn: lsn, end: [3]int{mL.Ops(), mT.Ops(), mM.Ops()}}
	}
	log, err := wal.CreateOn(mL, wal.Options{})
	if err != nil {
		return nil, err
	}
	// Abandon, not Close: after a crash the backing media must stay exactly
	// as the last completed operation left it. Close on the clean path runs
	// first and makes this a no-op.
	defer log.Abandon()
	df, err := pager.CreateDiskFileOn(mT, walCrashPageSize)
	if err != nil {
		return nil, err
	}
	man, err := pager.CreateManifestOn(mM, nil, []uint64{df.Generation()})
	if err != nil {
		return nil, err
	}
	commits := []walCommit{record(0)}

	var cur pager.PageID
	have := false
	for r := uint64(1); r <= walCrashRecords; r++ {
		lsn := log.Append(walRecPayload(r))
		if lsn != r {
			return commits, fmt.Errorf("append %d assigned lsn %d", r, lsn)
		}
		if err := log.WaitDurable(lsn); err != nil {
			return commits, err
		}
		commits = append(commits, record(lsn))
		if r%walCrashCkptEvery != 0 {
			continue
		}
		cut := log.LastAppended()
		id, err := df.Alloc()
		if err != nil {
			return commits, err
		}
		if err := df.Write(id, walTreePage(cut)); err != nil {
			return commits, err
		}
		if have {
			if err := df.Free(cur); err != nil {
				return commits, err
			}
		}
		var pl [12]byte
		binary.BigEndian.PutUint64(pl[0:], cut)
		binary.BigEndian.PutUint32(pl[8:], uint32(id))
		if err := df.Checkpoint(pl[:]); err != nil {
			return commits, err
		}
		cur, have = id, true
		if err := man.CommitWAL([]uint64{df.Generation()}, cut); err != nil {
			return commits, err
		}
		if err := log.TruncateTo(cut); err != nil {
			return commits, err
		}
	}
	if err := df.CloseDiscard(); err != nil {
		return commits, err
	}
	if err := man.Close(); err != nil {
		return commits, err
	}
	if err := log.Close(); err != nil {
		return commits, err
	}
	return commits, nil
}

// walValidCuts is the set of checkpoint LSNs any recovered manifest may
// carry: 0 (creation) and each checkpoint's cut.
func walValidCuts() map[uint64]bool {
	cuts := map[uint64]bool{0: true}
	for r := uint64(walCrashCkptEvery); r <= walCrashRecords; r += walCrashCkptEvery {
		cuts[r] = true
	}
	return cuts
}

// verifyWALRecovery recovers the crashed medias exactly as uindex.Open does
// — manifest first, data file pinned at the manifest's generation, then log
// replay above the manifest's cut — and checks the recovered prefix.
func verifyWALRecovery(t *testing.T, mL, mT, mM *Media, commits []walCommit, crashMedia, crashOp int, desc string) {
	t.Helper()
	// Record j certainly committed iff WaitDurable returned before the
	// crashed media reached the crashing op.
	lastDone := -1
	for i, c := range commits {
		if c.end[crashMedia] <= crashOp {
			lastDone = i
		}
	}
	var base uint64
	if lastDone >= 0 {
		base = commits[lastDone].lsn
	}
	allowedMax := map[uint64]bool{base: true}
	if crashMedia == 0 && lastDone+1 < len(commits) {
		// A crash on the log device may leave the next record's buffered
		// write on media under the keep-unsynced power model.
		allowedMax[commits[lastDone+1].lsn] = true
	}

	man, err := pager.OpenManifestOn(mM)
	if err != nil {
		if lastDone < 0 && errors.Is(err, pager.ErrCorruptFile) {
			return // crash predates the first durable manifest state
		}
		t.Fatalf("%s: manifest recovery failed: %v", desc, err)
	}
	defer man.Close()
	cut := man.WALLSN()
	if !walValidCuts()[cut] {
		t.Fatalf("%s: recovered checkpoint LSN %d was never committed", desc, cut)
	}
	gens := man.Gens()

	df, err := pager.OpenDiskFileOnAt(mT, gens[0])
	if err != nil {
		if lastDone < 0 && errors.Is(err, pager.ErrCorruptFile) {
			return // crash predates the data file's first durable state
		}
		t.Fatalf("%s: data file pinned at gen %d failed: %v", desc, gens[0], err)
	}
	switch pl := df.Payload(); len(pl) {
	case 0:
		if cut != 0 {
			t.Fatalf("%s: manifest cut %d but data file has no checkpoint payload", desc, cut)
		}
	case 12:
		// The generation the manifest recorded must carry that manifest's
		// cut — the checkpoint-LSN handshake.
		if treeCut := binary.BigEndian.Uint64(pl[0:]); treeCut != cut {
			t.Fatalf("%s: data file checkpointed at cut %d, manifest says %d", desc, binary.BigEndian.Uint64(pl[0:]), cut)
		}
		id := pager.PageID(binary.BigEndian.Uint32(pl[8:]))
		page := make([]byte, walCrashPageSize)
		if err := df.Read(id, page); err != nil {
			t.Fatalf("%s: reading checkpoint page %d: %v", desc, id, err)
		}
		if want := walTreePage(cut); !bytes.Equal(page, want) {
			t.Fatalf("%s: checkpoint page = %q, want %q", desc, page[:20], want[:20])
		}
	default:
		t.Fatalf("%s: data file payload has unexpected length %d", desc, len(pl))
	}
	if err := df.CloseDiscard(); err != nil {
		t.Fatalf("%s: data file close: %v", desc, err)
	}

	lg, err := wal.OpenOn(mL, wal.Options{})
	if err != nil {
		if lastDone < 0 && errors.Is(err, wal.ErrCorruptLog) {
			return // crash predates the log preamble's first durable state
		}
		t.Fatalf("%s: log recovery failed: %v", desc, err)
	}
	defer lg.Abandon()
	next, last := cut+1, cut
	rerr := lg.Replay(cut, func(lsn uint64, payload []byte) error {
		if lsn != next {
			return fmt.Errorf("replay gap: got lsn %d, want %d", lsn, next)
		}
		if !bytes.Equal(payload, walRecPayload(lsn)) {
			return fmt.Errorf("record %d payload = %q, want %q", lsn, payload, walRecPayload(lsn))
		}
		last, next = lsn, next+1
		return nil
	})
	if rerr != nil {
		t.Fatalf("%s: %v", desc, rerr)
	}
	// last is D: checkpoint state covers 1..cut, replay covered (cut, last],
	// and the prefix is contiguous — so the recovered state is exactly
	// records 1..last.
	if !allowedMax[last] {
		t.Fatalf("%s: recovered prefix ends at %d, want one of %v (cut %d, commits %+v)",
			desc, last, allowedMax, cut, commits)
	}
}

// TestWALCrashMatrix crashes the WAL protocol at every media operation on
// each of the three devices, under both power models, with short/torn
// variants of the crashing write, and asserts recovery restores exactly the
// committed record prefix.
func TestWALCrashMatrix(t *testing.T) {
	// A clean run fixes the op schedules and the commit history.
	cL, cT, cM := NewMedia(), NewMedia(), NewMedia()
	commits, err := runWALCrashWorkload(cL, cT, cM)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if got := commits[len(commits)-1].lsn; got != walCrashRecords {
		t.Fatalf("clean run committed %d records, want %d", got, walCrashRecords)
	}
	cL.Crash(false)
	cT.Crash(false)
	cM.Crash(false)
	verifyWALRecovery(t, cL, cT, cM, commits, 2, cM.Ops(), "clean run")

	logs := [][]MediaOp{cL.Log(), cT.Log(), cM.Log()}
	names := []string{"wal-log", "data", "manifest"}
	t.Logf("matrix: %d wal-log + %d data + %d manifest ops", len(logs[0]), len(logs[1]), len(logs[2]))
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for mediaIdx, log := range logs {
		for k := 0; k < len(log); k += stride {
			partials := []int{0}
			if log[k].Kind == "write" {
				if log[k].Len > 13 {
					partials = append(partials, 13)
				}
				if log[k].Len > SectorSize {
					partials = append(partials, SectorSize)
				}
			}
			for _, partial := range partials {
				for _, keep := range []bool{false, true} {
					desc := fmt.Sprintf("crash on %s at op %d/%d (%s len %d, partial %d, keep=%v)",
						names[mediaIdx], k, len(log), log[k].Kind, log[k].Len, partial, keep)
					medias := []*Media{NewMedia(), NewMedia(), NewMedia()}
					medias[mediaIdx].SetCrash(k, partial)
					if _, err := runWALCrashWorkload(medias[0], medias[1], medias[2]); err == nil {
						t.Fatalf("%s: workload completed despite scripted crash", desc)
					}
					// The power loss is machine-wide: every device loses (or
					// keeps) its unsynced writes together.
					for _, m := range medias {
						m.Crash(keep)
					}
					verifyWALRecovery(t, medias[0], medias[1], medias[2], commits, mediaIdx, k, desc)
				}
			}
		}
	}
}

// TestWALCrashMatrixDeterministic guards the matrix itself: two clean runs
// must produce identical op schedules on all three medias — the group-commit
// daemon, driven in lock step, must not introduce scheduling noise.
func TestWALCrashMatrixDeterministic(t *testing.T) {
	a := []*Media{NewMedia(), NewMedia(), NewMedia()}
	b := []*Media{NewMedia(), NewMedia(), NewMedia()}
	if _, err := runWALCrashWorkload(a[0], a[1], a[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := runWALCrashWorkload(b[0], b[1], b[2]); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		la, lb := a[i].Log(), b[i].Log()
		if len(la) != len(lb) {
			t.Fatalf("media %d op counts differ: %d vs %d", i, len(la), len(lb))
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("media %d op %d differs: %+v vs %+v", i, j, la[j], lb[j])
			}
		}
	}
}
