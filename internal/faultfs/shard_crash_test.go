package faultfs

// The sharded crash matrix: two shard page files plus the manifest that
// binds them into one crash-consistent unit, crashed at every media
// operation on every one of the three devices. The invariant under test is
// the one the manifest exists for: after recovery — manifest slot election,
// then reopening each shard pinned AT its recorded generation — BOTH shards
// expose the SAME checkpoint round, no matter which device the crash hit or
// whether its write cache survived.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/pager"
)

const (
	shardCrashPageSize = 256
	shardCrashRounds   = 5
)

func shardPageData(shard, round int) []byte {
	page := make([]byte, shardCrashPageSize)
	copy(page, fmt.Sprintf("shard%d-round%04d", shard, round))
	return page
}

// shardCkpt records one manifest commit the workload completed: the round
// it published and each media's op count when Commit returned.
type shardCkpt struct {
	round int
	end   [3]int // op counts: media A, media B, manifest media
}

// runShardCrashWorkload drives the sharded checkpoint protocol against the
// three medias: per round, each shard copy-on-writes a fresh round-stamped
// page (freeing the previous round's page), checkpoints, and then the
// manifest commits the vector of shard generations — the same
// checkpoint-then-publish order the uindex facade uses under writer locks.
// It returns every manifest commit that completed; err is non-nil when an
// injected crash interrupted the run.
func runShardCrashWorkload(mA, mB, mM *Media) ([]shardCkpt, error) {
	record := func(round int) shardCkpt {
		return shardCkpt{round: round, end: [3]int{mA.Ops(), mB.Ops(), mM.Ops()}}
	}
	dfA, err := pager.CreateDiskFileOn(mA, shardCrashPageSize)
	if err != nil {
		return nil, err
	}
	dfB, err := pager.CreateDiskFileOn(mB, shardCrashPageSize)
	if err != nil {
		return nil, err
	}
	man, err := pager.CreateManifestOn(mM, [][]byte{{0x42}},
		[]uint64{dfA.Generation(), dfB.Generation()})
	if err != nil {
		return nil, err
	}
	ckpts := []shardCkpt{record(0)}

	files := []*pager.DiskFile{dfA, dfB}
	cur := make([]pager.PageID, len(files))
	have := make([]bool, len(files))
	for r := 1; r <= shardCrashRounds; r++ {
		for s, df := range files {
			id, err := df.Alloc()
			if err != nil {
				return ckpts, err
			}
			if err := df.Write(id, shardPageData(s, r)); err != nil {
				return ckpts, err
			}
			// Shadow discipline: the previous round's page is freed, never
			// overwritten — rollback to the prior generation stays sound.
			if have[s] {
				if err := df.Free(cur[s]); err != nil {
					return ckpts, err
				}
			}
			var pl [8]byte
			binary.BigEndian.PutUint32(pl[0:], uint32(r))
			binary.BigEndian.PutUint32(pl[4:], uint32(id))
			if err := df.Checkpoint(pl[:]); err != nil {
				return ckpts, err
			}
			cur[s], have[s] = id, true
		}
		if err := man.Commit([]uint64{dfA.Generation(), dfB.Generation()}); err != nil {
			return ckpts, err
		}
		ckpts = append(ckpts, record(r))
	}
	// CloseDiscard: a plain Close would checkpoint once more, publishing
	// generations the manifest never recorded.
	if err := dfA.CloseDiscard(); err != nil {
		return ckpts, err
	}
	if err := dfB.CloseDiscard(); err != nil {
		return ckpts, err
	}
	if err := man.Close(); err != nil {
		return ckpts, err
	}
	return ckpts, nil
}

// verifyShardRecovery runs manifest-directed recovery on the crashed medias
// and checks the outcome: either the crash predates the first durable
// manifest commit and recovery fails with a typed corruption error, or both
// shards reopen pinned at the manifest's generations and expose the same
// allowed round with intact page data.
func verifyShardRecovery(t *testing.T, mA, mB, mM *Media, ckpts []shardCkpt, crashMedia, crashOp int, desc string) {
	t.Helper()
	// Commit j certainly completed iff its publishing returned before the
	// crashed media reached the crashing op. For a crash on the manifest
	// media the NEXT commit's slot write may additionally have survived
	// (keep-unsynced power model); a crash on a shard media stops the
	// workload before its round's commit ever starts.
	lastDone := -1
	for i, c := range ckpts {
		if c.end[crashMedia] <= crashOp {
			lastDone = i
		}
	}
	allowed := map[int]bool{}
	switch {
	case lastDone < 0:
		allowed[ckpts[0].round] = true // only creation's round 0 can be visible
	case crashMedia == 2 && lastDone+1 < len(ckpts):
		allowed[ckpts[lastDone].round] = true
		allowed[ckpts[lastDone+1].round] = true
	default:
		allowed[ckpts[lastDone].round] = true
	}

	man, err := pager.OpenManifestOn(mM)
	if err != nil {
		if lastDone < 0 && errors.Is(err, pager.ErrCorruptFile) {
			return // crash predates the first durable commit
		}
		t.Fatalf("%s: manifest recovery failed: %v", desc, err)
	}
	defer man.Close()
	if man.Shards() != 2 {
		t.Fatalf("%s: recovered manifest has %d shards, want 2", desc, man.Shards())
	}
	if bounds := man.Bounds(); len(bounds) != 1 || len(bounds[0]) != 1 || bounds[0][0] != 0x42 {
		t.Fatalf("%s: recovered manifest bounds = %v", desc, bounds)
	}
	gens := man.Gens()

	rounds := make([]int, 2)
	for s, m := range []*Media{mA, mB} {
		df, err := pager.OpenDiskFileOnAt(m, gens[s])
		if err != nil {
			if lastDone < 0 && errors.Is(err, pager.ErrCorruptFile) {
				return // shard created after the crash point; nothing durable
			}
			t.Fatalf("%s: shard %d pinned open at gen %d failed: %v", desc, s, gens[s], err)
		}
		switch pl := df.Payload(); len(pl) {
		case 0:
			rounds[s] = 0
		case 8:
			rounds[s] = int(binary.BigEndian.Uint32(pl[0:]))
			id := pager.PageID(binary.BigEndian.Uint32(pl[4:]))
			page := make([]byte, shardCrashPageSize)
			if err := df.Read(id, page); err != nil {
				t.Fatalf("%s: shard %d reading round page %d: %v", desc, s, id, err)
			}
			if want := shardPageData(s, rounds[s]); string(page) != string(want) {
				t.Fatalf("%s: shard %d page = %q, want %q", desc, s, page[:20], want[:20])
			}
		default:
			t.Fatalf("%s: shard %d payload has unexpected length %d", desc, s, len(pl))
		}
		if err := df.CloseDiscard(); err != nil {
			t.Fatalf("%s: shard %d close: %v", desc, s, err)
		}
	}

	if rounds[0] != rounds[1] {
		t.Fatalf("%s: shards recovered to different rounds %d and %d — the crash-consistency invariant",
			desc, rounds[0], rounds[1])
	}
	if !allowed[rounds[0]] {
		t.Fatalf("%s: recovered round %d, want one of %v (checkpoints %+v)", desc, rounds[0], allowed, ckpts)
	}
}

// TestShardCrashMatrix simulates a crash at every media operation on each of
// the three devices — under both power models and with short/torn variants
// of the crashing write — and asserts that manifest-directed recovery always
// lands both shards on the same committed round.
func TestShardCrashMatrix(t *testing.T) {
	// A clean run fixes the op schedules and the commit history.
	cA, cB, cM := NewMedia(), NewMedia(), NewMedia()
	ckpts, err := runShardCrashWorkload(cA, cB, cM)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if got := ckpts[len(ckpts)-1].round; got != shardCrashRounds {
		t.Fatalf("clean run committed %d rounds, want %d", got, shardCrashRounds)
	}
	cA.Crash(false)
	cB.Crash(false)
	cM.Crash(false)
	verifyShardRecovery(t, cA, cB, cM, ckpts, 2, cM.Ops(), "clean run")

	logs := [][]MediaOp{cA.Log(), cB.Log(), cM.Log()}
	names := []string{"shardA", "shardB", "manifest"}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for mediaIdx, log := range logs {
		for k := 0; k < len(log); k += stride {
			partials := []int{0}
			if log[k].Kind == "write" {
				if log[k].Len > 13 {
					partials = append(partials, 13)
				}
				if log[k].Len > SectorSize {
					partials = append(partials, SectorSize)
				}
			}
			for _, partial := range partials {
				for _, keep := range []bool{false, true} {
					desc := fmt.Sprintf("crash on %s at op %d/%d (%s len %d, partial %d, keep=%v)",
						names[mediaIdx], k, len(log), log[k].Kind, log[k].Len, partial, keep)
					medias := []*Media{NewMedia(), NewMedia(), NewMedia()}
					medias[mediaIdx].SetCrash(k, partial)
					if _, err := runShardCrashWorkload(medias[0], medias[1], medias[2]); err == nil {
						t.Fatalf("%s: workload completed despite scripted crash", desc)
					}
					// The power loss is machine-wide: every device loses (or
					// keeps) its unsynced writes together.
					for _, m := range medias {
						m.Crash(keep)
					}
					verifyShardRecovery(t, medias[0], medias[1], medias[2], ckpts, mediaIdx, k, desc)
				}
			}
		}
	}
}

// TestShardCrashMatrixDeterministic guards the matrix itself: two clean runs
// must produce identical op schedules on all three medias.
func TestShardCrashMatrixDeterministic(t *testing.T) {
	a := []*Media{NewMedia(), NewMedia(), NewMedia()}
	b := []*Media{NewMedia(), NewMedia(), NewMedia()}
	if _, err := runShardCrashWorkload(a[0], a[1], a[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := runShardCrashWorkload(b[0], b[1], b[2]); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		la, lb := a[i].Log(), b[i].Log()
		if len(la) != len(lb) {
			t.Fatalf("media %d op counts differ: %d vs %d", i, len(la), len(lb))
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("media %d op %d differs: %+v vs %+v", i, j, la[j], lb[j])
			}
		}
	}
}
