package faultfs

import (
	"errors"
	"io"
	"sync"
)

// ErrPowerCut is returned by every Media operation after a scripted crash
// has fired, until Crash power-cycles the device.
var ErrPowerCut = errors.New("faultfs: device powered off")

// SectorSize is the granularity real disks tear writes at; crash-matrix
// tests use multiples of it for torn-write prefixes.
const SectorSize = 512

// MediaOp records one mutating operation against a Media, for building
// crash matrices ("crash at every op the workload performed").
type MediaOp struct {
	Kind string // "write" or "sync"
	Off  int64  // write offset ("write" only)
	Len  int    // write length ("write" only)
}

// Media is an in-memory block device (a pager.BlockFile) with a
// volatile/durable split and scriptable crashes. Writes land in the
// volatile image; Sync copies volatile to durable. A crash scripted with
// SetCrash fails the numbered operation — applying an optional prefix of a
// crashing write, which models short and torn writes — and powers the
// device off. Crash then power-cycles it:
//
//   - Crash(false) models a true power cut with a write cache: everything
//     not fsynced is lost (volatile reverts to durable).
//   - Crash(true) models a controller that persisted every write it
//     acknowledged (the applied prefix of the crashing write included).
//
// Recovery code must cope with both extremes — and everything between
// follows from them, because each write is either kept or lost.
type Media struct {
	mu       sync.Mutex
	volatile []byte
	durable  []byte
	ops      int // mutating ops performed (writes + syncs)
	crashOp  int // 0-based op index that fails; -1 = never
	crashLen int // bytes of a crashing write that still land
	down     bool
	log      []MediaOp
}

// NewMedia returns an empty powered-on device with no crash scripted.
func NewMedia() *Media {
	return &Media{crashOp: -1}
}

// SetCrash arranges for mutating operation number op (0-based, counting
// writes and syncs from device creation) to fail and power the device
// off. If the operation is a write, its first partial bytes still reach
// the volatile image — 0 drops the write entirely, a multiple of
// SectorSize models a torn multi-sector write, and other values model
// arbitrary short writes. partial is ignored for syncs.
func (m *Media) SetCrash(op, partial int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashOp = op
	m.crashLen = partial
}

// Ops reports how many mutating operations (writes and syncs) have been
// performed, including a crashing one.
func (m *Media) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Log returns the recorded mutating operations in order.
func (m *Media) Log() []MediaOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MediaOp(nil), m.log...)
}

// Down reports whether a scripted crash has fired.
func (m *Media) Down() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// Crash power-cycles the device after a scripted crash (or at any moment):
// with keepUnsynced false the volatile image reverts to the last synced
// state; with true every applied write is promoted to durable first. The
// crash script is cleared; the op counter keeps running.
func (m *Media) Crash(keepUnsynced bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if keepUnsynced {
		m.durable = append(m.durable[:0:0], m.volatile...)
	} else {
		m.volatile = append(m.volatile[:0:0], m.durable...)
	}
	m.down = false
	m.crashOp = -1
	m.crashLen = 0
}

// ReadAt implements io.ReaderAt over the volatile image.
func (m *Media) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return 0, ErrPowerCut
	}
	if off < 0 || off >= int64(len(m.volatile)) {
		return 0, io.EOF
	}
	n := copy(p, m.volatile[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt into the volatile image, growing it (and
// zero-filling any gap) as needed.
func (m *Media) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return 0, ErrPowerCut
	}
	idx := m.ops
	m.ops++
	m.log = append(m.log, MediaOp{Kind: "write", Off: off, Len: len(p)})
	n := len(p)
	if idx == m.crashOp {
		m.down = true
		if m.crashLen < n {
			n = m.crashLen
		}
		m.applyLocked(p[:n], off)
		return n, ErrInjected
	}
	m.applyLocked(p, off)
	return n, nil
}

func (m *Media) applyLocked(p []byte, off int64) {
	end := off + int64(len(p))
	if end > int64(len(m.volatile)) {
		grown := make([]byte, end)
		copy(grown, m.volatile)
		m.volatile = grown
	}
	copy(m.volatile[off:], p)
}

// Sync makes the volatile image durable.
func (m *Media) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrPowerCut
	}
	idx := m.ops
	m.ops++
	m.log = append(m.log, MediaOp{Kind: "sync"})
	if idx == m.crashOp {
		m.down = true
		return ErrInjected
	}
	m.durable = append(m.durable[:0:0], m.volatile...)
	return nil
}

// Size reports the length of the volatile image.
func (m *Media) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return 0, ErrPowerCut
	}
	return int64(len(m.volatile)), nil
}

// Close implements pager.BlockFile; the images stay inspectable.
func (m *Media) Close() error { return nil }
