package faultfs

import (
	"errors"
	"testing"

	"repro/internal/pager"
)

// TestReadBatchStepsPerSubRead proves the injection granularity: every page
// of a batch advances the OpRead counter individually, FailNth lands on
// exactly that sub-read, and the sibling sub-reads complete with correct
// contents.
func TestReadBatchStepsPerSubRead(t *testing.T) {
	mf := pager.NewMemFile(0)
	ids := make([]pager.PageID, 6)
	buf := make([]byte, mf.PageSize())
	for i := range ids {
		id, _ := mf.Alloc()
		for j := range buf {
			buf[j] = byte(int(id) + j)
		}
		if err := mf.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		ids[i] = id
	}
	f := Wrap(mf)
	sentinel := errors.New("torn read")
	f.FailNth(OpRead, 4, sentinel)

	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, f.PageSize())
	}
	errs := f.ReadBatch(ids, bufs)
	if errs == nil {
		t.Fatalf("expected a per-page error slice")
	}
	for i := range ids {
		if i == 3 {
			if !errors.Is(errs[i], sentinel) {
				t.Fatalf("sub-read 4: got %v, want the injected error", errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("sub-read %d poisoned by sibling: %v", i+1, errs[i])
		}
		for j := range bufs[i] {
			if bufs[i][j] != byte(int(ids[i])+j) {
				t.Fatalf("sub-read %d contents wrong", i+1)
			}
		}
	}
	if got := f.Calls(OpRead); got != len(ids) {
		t.Fatalf("Calls(OpRead) = %d, want %d (one step per sub-read)", got, len(ids))
	}

	// The injection disarmed: the same batch now fully succeeds.
	if errs := f.ReadBatch(ids, bufs); errs != nil {
		t.Fatalf("second batch: %v", errs)
	}
	if got := f.Calls(OpRead); got != 2*len(ids) {
		t.Fatalf("Calls(OpRead) = %d after second batch, want %d", got, 2*len(ids))
	}
}

// TestReadBatchOverDiskMedia runs the batch path over a DiskFile on the
// crash-test Media device, proving coalesced runs work on the fault device
// and per-page CRC verification is preserved through the faultfs wrapper.
func TestReadBatchOverDiskMedia(t *testing.T) {
	m := NewMedia()
	d, err := pager.CreateDiskFileOn(m, 256)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ids := make([]pager.PageID, 10)
	buf := make([]byte, d.PageSize())
	for i := range ids {
		id, _ := d.Alloc()
		for j := range buf {
			buf[j] = byte(int(id)*3 + j)
		}
		if err := d.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		ids[i] = id
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	f := Wrap(d)
	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, d.PageSize())
	}
	if errs := f.ReadBatch(ids, bufs); errs != nil {
		t.Fatalf("batch over media: %v", errs)
	}
	for i, id := range ids {
		for j := range bufs[i] {
			if bufs[i][j] != byte(int(id)*3+j) {
				t.Fatalf("page %d contents wrong", id)
			}
		}
	}
}
