// Package faultfs provides fault-injection test doubles for the storage
// stack.
//
// File wraps any pager.File with scriptable per-operation failures (fail
// the Nth Read/Write/Alloc/Free/Sync), for exercising the error paths of
// layers above the pager — buffer-pool eviction and flush, tree commit.
//
// Media is an in-memory pager.BlockFile with a volatile/durable split: a
// write lands in the volatile image and becomes durable only at Sync. A
// scripted crash can fail any numbered operation — optionally applying
// only a prefix of the crashing write (a short or torn write, at sector
// or byte granularity) — after which the device refuses all I/O until
// Crash power-cycles it. This is what the crash-matrix recovery tests run
// DiskFile's shadow-paging checkpoint protocol against.
package faultfs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pager"
)

// ErrInjected is the default error returned by scripted failures.
var ErrInjected = errors.New("faultfs: injected failure")

// Op names a pager.File operation for failure scripting.
type Op int

const (
	OpRead Op = iota
	OpWrite
	OpAlloc
	OpFree
	OpSync
	opCount
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// File wraps a pager.File with scriptable failures. The zero value is not
// usable; use Wrap. Safe for concurrent use.
type File struct {
	mu      sync.Mutex
	inner   pager.File
	calls   [opCount]int
	failAt  [opCount]int // 1-based call number that fails; 0 = never
	failErr [opCount]error
}

// Wrap returns a File forwarding to inner with no failures scripted.
func Wrap(inner pager.File) *File {
	return &File{inner: inner}
}

// FailNth arranges for the nth (1-based, counted from now) call of op to
// return err instead of executing. A nil err selects ErrInjected. Only one
// failure per op kind is armed at a time; the failure disarms after firing.
func (f *File) FailNth(op Op, n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt[op] = f.calls[op] + n
	f.failErr[op] = err
}

// Reset disarms all scripted failures and restarts the op counters.
func (f *File) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = [opCount]int{}
	f.failAt = [opCount]int{}
	f.failErr = [opCount]error{}
}

// Calls reports how many times op has been invoked since creation or the
// last Reset (including the failed ones).
func (f *File) Calls(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// step counts one invocation of op and returns the scripted error if this
// is the armed call.
func (f *File) step(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	if f.failAt[op] != 0 && f.calls[op] == f.failAt[op] {
		err := f.failErr[op]
		f.failAt[op] = 0
		f.failErr[op] = nil
		return err
	}
	return nil
}

// PageSize implements pager.File.
func (f *File) PageSize() int { return f.inner.PageSize() }

// Alloc implements pager.File.
func (f *File) Alloc() (pager.PageID, error) {
	if err := f.step(OpAlloc); err != nil {
		return pager.NilPage, err
	}
	return f.inner.Alloc()
}

// Read implements pager.File.
func (f *File) Read(id pager.PageID, buf []byte) error {
	if err := f.step(OpRead); err != nil {
		return err
	}
	return f.inner.Read(id, buf)
}

// ReadBatch implements pager.BatchReader. Every sub-read steps the OpRead
// counter individually, so FailNth(OpRead, n) hits exactly the nth page of
// the batch — the injected failure is attributed to that one position while
// the surviving sub-reads are forwarded (as a batch when the inner file
// supports it) and complete normally.
func (f *File) ReadBatch(ids []pager.PageID, bufs [][]byte) []error {
	if len(ids) != len(bufs) {
		panic("faultfs: ReadBatch ids/bufs length mismatch")
	}
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ids))
		}
		errs[i] = err
	}
	fwdIDs := make([]pager.PageID, 0, len(ids))
	fwdBufs := make([][]byte, 0, len(ids))
	fwdPos := make([]int, 0, len(ids))
	for i := range ids {
		if err := f.step(OpRead); err != nil {
			fail(i, err)
			continue
		}
		fwdIDs = append(fwdIDs, ids[i])
		fwdBufs = append(fwdBufs, bufs[i])
		fwdPos = append(fwdPos, i)
	}
	if len(fwdIDs) > 0 {
		if ierrs := pager.ReadPages(f.inner, fwdIDs, fwdBufs); ierrs != nil {
			for k, err := range ierrs {
				if err != nil {
					fail(fwdPos[k], err)
				}
			}
		}
	}
	return errs
}

// Write implements pager.File.
func (f *File) Write(id pager.PageID, buf []byte) error {
	if err := f.step(OpWrite); err != nil {
		return err
	}
	return f.inner.Write(id, buf)
}

// Free implements pager.File.
func (f *File) Free(id pager.PageID) error {
	if err := f.step(OpFree); err != nil {
		return err
	}
	return f.inner.Free(id)
}

// NumPages implements pager.File.
func (f *File) NumPages() int { return f.inner.NumPages() }

// Stats implements pager.File.
func (f *File) Stats() pager.Stats { return f.inner.Stats() }

// Sync participates in the buffer pool's durability protocol: the pool
// flushes its dirty frames and then syncs the inner file through this
// method, so sync failures are injectable too. Inner files without a Sync
// (MemFile) treat it as a no-op after the injection check.
func (f *File) Sync() error {
	if err := f.step(OpSync); err != nil {
		return err
	}
	if s, ok := f.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close implements pager.File. Close is never failure-scripted.
func (f *File) Close() error { return f.inner.Close() }
