package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/pager"
)

func TestFileFailNth(t *testing.T) {
	f := Wrap(pager.NewMemFile(128))
	defer f.Close()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	f.FailNth(OpWrite, 2, nil)
	if err := f.Write(id, buf); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := f.Write(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write = %v, want ErrInjected", err)
	}
	// The failure disarms after firing.
	if err := f.Write(id, buf); err != nil {
		t.Fatalf("third write: %v", err)
	}
	if got := f.Calls(OpWrite); got != 3 {
		t.Fatalf("Calls(OpWrite) = %d, want 3", got)
	}
	custom := errors.New("disk full")
	f.FailNth(OpSync, 1, custom)
	if err := f.Sync(); !errors.Is(err, custom) {
		t.Fatalf("Sync = %v, want scripted error", err)
	}
	f.Reset()
	if got := f.Calls(OpWrite); got != 0 {
		t.Fatalf("Calls after Reset = %d, want 0", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after Reset: %v", err)
	}
}

func TestMediaVolatileDurableSplit(t *testing.T) {
	m := NewMedia()
	if _, err := m.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt([]byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	// Unsynced writes are visible to reads...
	got := make([]byte, 5)
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO" {
		t.Fatalf("read %q, want HELLO", got)
	}
	// ...but lost at a power cut.
	m.Crash(false)
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("after power cut read %q, want the synced hello", got)
	}
}

func TestMediaTornWrite(t *testing.T) {
	m := NewMedia()
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xAA}, 8), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash during op 2 (the next write), applying only 3 of 8 bytes.
	m.SetCrash(2, 3)
	n, err := m.WriteAt(bytes.Repeat([]byte{0xBB}, 8), 0)
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	if !m.Down() {
		t.Fatal("device still up after crash")
	}
	if _, err := m.WriteAt([]byte{1}, 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write while down = %v, want ErrPowerCut", err)
	}
	if err := m.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync while down = %v, want ErrPowerCut", err)
	}
	// Keep-unsynced power cycle: the torn prefix survives.
	m.Crash(true)
	got := make([]byte, 8)
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA}
	if !bytes.Equal(got, want) {
		t.Fatalf("after keep-unsynced cycle read %x, want %x", got, want)
	}
}

func TestMediaCrashOnSync(t *testing.T) {
	m := NewMedia()
	if _, err := m.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	m.SetCrash(1, 0) // the sync
	if err := m.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("crashing sync = %v, want ErrInjected", err)
	}
	m.Crash(false)
	// The sync never completed: nothing is durable.
	if n, _ := m.Size(); n != 0 {
		t.Fatalf("durable size after failed sync = %d, want 0", n)
	}
}

func TestMediaReadSemantics(t *testing.T) {
	m := NewMedia()
	if _, err := m.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := m.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short ReadAt = (%d, %v), want (3, io.EOF)", n, err)
	}
	if _, err := m.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("ReadAt past EOF = %v, want io.EOF", err)
	}
	if ops := m.Ops(); ops != 1 {
		t.Fatalf("Ops = %d, want 1 (reads don't count)", ops)
	}
	log := m.Log()
	if len(log) != 1 || log[0].Kind != "write" || log[0].Len != 3 {
		t.Fatalf("Log = %+v", log)
	}
}

// TestMediaUnderDiskFile smoke-tests the integration: a DiskFile created on
// a Media checkpoints and recovers like one on a real file.
func TestMediaUnderDiskFile(t *testing.T) {
	m := NewMedia()
	d, err := pager.CreateDiskFileOn(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9}, 128)
	if err := d.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	m.Crash(false)
	re, err := pager.OpenDiskFileOn(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(re.Payload()) != "ok" {
		t.Fatalf("payload = %q", re.Payload())
	}
	buf := make([]byte, 128)
	if err := re.Read(id, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("page after recovery: %v", err)
	}
}
