// Package core implements the U-index, the paper's contribution (Gudes,
// Section 3): one B+-tree with front-compressed keys that uniformly serves
// as class-hierarchy index, path (nested) index, and combined
// class-hierarchy/path index.
//
// An index is declared over a REF path of classes, root (the queried class)
// to terminal (the class carrying the indexed attribute); a class-hierarchy
// index is simply the degenerate path of length one. Every index entry is a
// single key
//
//	attr-value ‖ codeₜ $ oidₜ ‖ … ‖ code₀ $ oid₀
//
// with the terminal class first, where each code is the *actual* class of
// the object (so subclasses index uniformly — the paper's "combined" index
// falls out for free), and '$' sorts below every code character. Because
// class codes order lexicographically along REF edges and in hierarchy
// preorder, all entries of a class subtree, of one terminal object, of one
// mid-path object, and of one attribute value are contiguous — the
// clustering every query in Section 3.3 exploits.
package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/schema"
	"repro/internal/store"
)

// Spec declares a U-index.
type Spec struct {
	// Name identifies the index.
	Name string
	// Root is the queried class at the top of the REF path (the paper's
	// example: "Vehicle").
	Root string
	// Refs names the reference attributes walked from Root toward the
	// terminal class (example: "ManufacturedBy", "President"). Empty for
	// a class-hierarchy index on Root itself.
	Refs []string
	// Attr is the indexed scalar attribute, resolved on the terminal
	// class (example: "Age"; for a class-hierarchy index on Root, e.g.
	// "Color").
	Attr string
	// Coding optionally overrides the schema's default coding, for
	// indexes over REF edges that the default coding could not honor
	// (the cycle-breaking duplicate encodings of Section 4.3).
	Coding *schema.Coding
	// MaxEntries, when positive, switches the underlying B-tree to
	// count-capacity nodes (the paper's first experiment).
	MaxEntries int
	// NoCompression disables front compression in the underlying B-tree
	// (the Section-4.2 storage-cost ablation).
	NoCompression bool
	// NodeCacheSize caps the underlying B-tree's shared decoded-node
	// cache, in nodes: 0 selects the btree default, negative disables
	// the cache. Purely a CPU knob — query results and logical page
	// counts are identical at any setting.
	NodeCacheSize int
	// NoPrefetch disables the Parscan frontier prefetcher even when the
	// index's page file is a buffer pool with batched read-ahead. Purely
	// an I/O-scheduling knob — query results and logical page counts are
	// identical either way.
	NoPrefetch bool
}

// Index is a live U-index over a store.
//
// Reads (Execute*, Snapshot, stats) need no locking: the underlying B-tree
// is multi-version and every query runs against a pinned snapshot. Writers
// (Add, Remove, ApplyDiff, Build) are not self-locking — the caller
// serializes them per index by holding LockWrite for the span that must be
// atomic, which lets the engine update several indexes concurrently and
// hold one index's lock across a multi-step update (remove + insert).
type Index struct {
	spec     Spec
	st       *store.Store
	coding   *schema.Coding
	tree     *btree.Tree
	file     pager.File
	pathCls  []string // classes root-first: pathCls[0] = Root
	attrType encoding.AttrType
	maxChain int        // fan-out guard for entry enumeration
	wmu      sync.Mutex // serializes writers on this index
}

// DefaultMaxChains caps the number of path instantiations enumerated for a
// single object mutation.
const DefaultMaxChains = 1 << 16

// New creates an empty U-index over the store in the given page file.
func New(f pager.File, st *store.Store, spec Spec) (*Index, error) {
	return build(f, st, spec, pager.NilPage)
}

// Open re-attaches an index previously persisted with Flush: the tree is
// read back from the page file (meta is the page id Flush reported via
// MetaPage) and validated against the spec. The store contents are the
// caller's responsibility — an index opened over a store that diverged
// from the one it was built on will return stale answers, exactly like any
// database whose data files were modified behind its back.
func Open(f pager.File, st *store.Store, spec Spec, meta pager.PageID) (*Index, error) {
	return build(f, st, spec, meta)
}

func build(f pager.File, st *store.Store, spec Spec, meta pager.PageID) (*Index, error) {
	sch := st.Schema()
	coding := spec.Coding
	if coding == nil {
		coding = sch.Coding()
	}
	if coding == nil {
		return nil, fmt.Errorf("core: schema has no coding; call AssignCodes first")
	}
	if _, ok := sch.Class(spec.Root); !ok {
		return nil, fmt.Errorf("core: index %q: unknown root class %q", spec.Name, spec.Root)
	}
	// Resolve the path classes by walking the REF attributes.
	pathCls := []string{spec.Root}
	cur := spec.Root
	for _, ref := range spec.Refs {
		a, ok := sch.AttrOf(cur, ref)
		if !ok {
			return nil, fmt.Errorf("core: index %q: class %q has no attribute %q", spec.Name, cur, ref)
		}
		if !a.IsRef() {
			return nil, fmt.Errorf("core: index %q: attribute %s.%s is not a reference", spec.Name, cur, ref)
		}
		cur = a.Ref
		pathCls = append(pathCls, cur)
	}
	attr, ok := sch.AttrOf(cur, spec.Attr)
	if !ok {
		return nil, fmt.Errorf("core: index %q: terminal class %q has no attribute %q", spec.Name, cur, spec.Attr)
	}
	if attr.IsRef() {
		return nil, fmt.Errorf("core: index %q: indexed attribute %s.%s is a reference, want a scalar", spec.Name, cur, spec.Attr)
	}
	// The coding must order the path terminal-first with disjoint
	// subtrees; otherwise the caller needs an alternate coding
	// (Section 4.3).
	for i := 0; i+1 < len(pathCls); i++ {
		src, ok := coding.Code(pathCls[i])
		if !ok {
			return nil, fmt.Errorf("core: index %q: class %q has no code", spec.Name, pathCls[i])
		}
		tgt, ok := coding.Code(pathCls[i+1])
		if !ok {
			return nil, fmt.Errorf("core: index %q: class %q has no code", spec.Name, pathCls[i+1])
		}
		if !(tgt.SubtreeEnd() <= string(src)) {
			return nil, fmt.Errorf("core: index %q: coding does not order %q (%s) after %q (%s); "+
				"use Schema.CodingHonoring for this path (paper Section 4.3)",
				spec.Name, pathCls[i], src, pathCls[i+1], tgt)
		}
	}
	var tree *btree.Tree
	var err error
	tun := btree.Tuning{NodeCacheSize: spec.NodeCacheSize, NoPrefetch: spec.NoPrefetch}
	if meta == pager.NilPage {
		tree, err = btree.Create(f, btree.Config{MaxEntries: spec.MaxEntries, NoCompression: spec.NoCompression, Tuning: tun})
	} else {
		tree, err = btree.OpenTuned(f, meta, tun)
	}
	if err != nil {
		return nil, err
	}
	return &Index{
		spec:     spec,
		st:       st,
		coding:   coding,
		tree:     tree,
		file:     f,
		pathCls:  pathCls,
		attrType: attr.Type,
		maxChain: DefaultMaxChains,
	}, nil
}

// Spec returns the index declaration.
func (ix *Index) Spec() Spec { return ix.spec }

// LockWrite acquires the index's writer lock. Mutations (Add, Remove,
// ApplyDiff, Build) must run under it; the caller chooses the span —
// typically all indexes covering an object, in a fixed global order, for the
// duration of one object mutation.
func (ix *Index) LockWrite() { ix.wmu.Lock() }

// UnlockWrite releases the index's writer lock.
func (ix *Index) UnlockWrite() { ix.wmu.Unlock() }

// Covers reports whether an object of the given class can participate in
// this index: the class is a subclass of (or equal to) one of the path
// classes.
func (ix *Index) Covers(class string) bool {
	sch := ix.st.Schema()
	for _, c := range ix.pathCls {
		if sch.IsSubclassOf(class, c) {
			return true
		}
	}
	return false
}

// Tree exposes the underlying B-tree (read-only use: stats, page counts).
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// Coding returns the coding the index encodes classes with.
func (ix *Index) Coding() *schema.Coding { return ix.coding }

// PathClasses returns the declared classes of the path, root-first.
func (ix *Index) PathClasses() []string {
	return append([]string(nil), ix.pathCls...)
}

// AttrType returns the encoding type of the indexed attribute.
func (ix *Index) AttrType() encoding.AttrType { return ix.attrType }

// chain is one instantiation of the path: objects root-first, aligned with
// pathCls.
type chain []store.OID

// EntriesFor enumerates the index keys in which the given object
// participates. The object must currently exist in the store. This powers
// both incremental insertion and deletion (Section 3.5: an update is plain
// B-tree insertions/deletions of exactly these keys).
func (ix *Index) EntriesFor(oid store.OID) ([][]byte, error) {
	o, ok := ix.st.Get(oid)
	if !ok {
		return nil, fmt.Errorf("core: no object %d", oid)
	}
	sch := ix.st.Schema()
	pos := -1
	for i, c := range ix.pathCls {
		if sch.IsSubclassOf(o.Class, c) {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, nil // object not on this index's path
	}
	fwd, err := ix.forwardChains(oid, pos)
	if err != nil {
		return nil, err
	}
	if len(fwd) == 0 {
		return nil, nil
	}
	bwd, err := ix.backwardChains(oid, pos)
	if err != nil {
		return nil, err
	}
	if len(bwd) == 0 {
		return nil, nil
	}
	if len(fwd)*len(bwd) > ix.maxChain {
		return nil, fmt.Errorf("core: object %d participates in %d paths, above the %d cap",
			oid, len(fwd)*len(bwd), ix.maxChain)
	}
	var keys [][]byte
	for _, b := range bwd {
		for _, f := range fwd {
			full := make(chain, 0, len(ix.pathCls))
			full = append(full, b...) // root .. pos-1
			full = append(full, f...) // pos .. terminal
			key, ok, err := ix.keyFor(full)
			if err != nil {
				return nil, err
			}
			if ok {
				keys = append(keys, key)
			}
		}
	}
	return keys, nil
}

// forwardChains enumerates partial chains [object at pos, ..., terminal]
// starting from oid at path position pos, following the REF attributes.
func (ix *Index) forwardChains(oid store.OID, pos int) ([]chain, error) {
	if pos == len(ix.pathCls)-1 {
		return []chain{{oid}}, nil
	}
	targets := ix.st.DerefMulti(oid, ix.spec.Refs[pos])
	var out []chain
	for _, t := range targets {
		sub, err := ix.forwardChains(t, pos+1)
		if err != nil {
			return nil, err
		}
		for _, s := range sub {
			c := make(chain, 0, len(s)+1)
			c = append(c, oid)
			c = append(c, s...)
			out = append(out, c)
			if len(out) > ix.maxChain {
				return nil, fmt.Errorf("core: forward chain fan-out above %d", ix.maxChain)
			}
		}
	}
	return out, nil
}

// backwardChains enumerates partial chains [root, ..., object at pos-1]
// ending just before path position pos, using the store's reverse-reference
// index.
func (ix *Index) backwardChains(oid store.OID, pos int) ([]chain, error) {
	if pos == 0 {
		return []chain{{}}, nil
	}
	sch := ix.st.Schema()
	var out []chain
	for _, src := range ix.st.Referencing(ix.spec.Refs[pos-1], oid) {
		o, ok := ix.st.Get(src)
		if !ok || !sch.IsSubclassOf(o.Class, ix.pathCls[pos-1]) {
			continue
		}
		subs, err := ix.backwardChains(src, pos-1)
		if err != nil {
			return nil, err
		}
		for _, s := range subs {
			c := make(chain, 0, len(s)+1)
			c = append(c, s...)
			c = append(c, src)
			out = append(out, c)
			if len(out) > ix.maxChain {
				return nil, fmt.Errorf("core: backward chain fan-out above %d", ix.maxChain)
			}
		}
	}
	return out, nil
}

// keyFor builds the index key for a full root-first chain. ok=false when the
// terminal object has no value for the indexed attribute.
func (ix *Index) keyFor(c chain) ([]byte, bool, error) {
	term, ok := ix.st.Get(c[len(c)-1])
	if !ok {
		return nil, false, fmt.Errorf("core: chain references missing object %d", c[len(c)-1])
	}
	v, ok := term.Attr(ix.spec.Attr)
	if !ok {
		return nil, false, nil
	}
	attr, err := ix.attrType.EncodeValue(v)
	if err != nil {
		return nil, false, fmt.Errorf("core: encoding %s of object %d: %w", ix.spec.Attr, term.OID, err)
	}
	path := make([]encoding.PathEntry, 0, len(c))
	for i := len(c) - 1; i >= 0; i-- { // terminal first
		o, ok := ix.st.Get(c[i])
		if !ok {
			return nil, false, fmt.Errorf("core: chain references missing object %d", c[i])
		}
		code, ok := ix.coding.Code(o.Class)
		if !ok {
			return nil, false, fmt.Errorf("core: class %q has no code", o.Class)
		}
		path = append(path, encoding.PathEntry{Code: code, OID: c[i]})
	}
	return encoding.BuildKey(attr, path), true, nil
}

// Add inserts the index entries of an object (call after storing it).
func (ix *Index) Add(oid store.OID) error {
	keys, err := ix.EntriesFor(oid)
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := ix.tree.Insert(k, nil); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes the index entries of an object (call before deleting it
// from the store).
func (ix *Index) Remove(oid store.OID) error {
	keys, err := ix.EntriesFor(oid)
	if err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := ix.tree.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDiff removes the old keys and inserts the new ones, skipping the
// intersection. Keys are applied in sorted order, which realizes the
// paper's batch-update observation (Section 3.5: all entries of the old and
// new mid-path object are clustered, so the update touches few pages).
func (ix *Index) ApplyDiff(oldKeys, newKeys [][]byte) error {
	olds := keySet(oldKeys)
	news := keySet(newKeys)
	var dels, ins [][]byte
	for k, b := range olds {
		if _, keep := news[k]; !keep {
			dels = append(dels, b)
		}
	}
	for k, b := range news {
		if _, had := olds[k]; !had {
			ins = append(ins, b)
		}
	}
	sortKeys(dels)
	sortKeys(ins)
	for _, k := range dels {
		if _, err := ix.tree.Delete(k); err != nil {
			return err
		}
	}
	for _, k := range ins {
		if err := ix.tree.Insert(k, nil); err != nil {
			return err
		}
	}
	return nil
}

func keySet(keys [][]byte) map[string][]byte {
	m := make(map[string][]byte, len(keys))
	for _, k := range keys {
		m[string(k)] = k
	}
	return m
}

func sortKeys(keys [][]byte) {
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
}

// Build populates an empty index from the store with a bulk load: it
// enumerates every path instance from the root class's hierarchy extent,
// sorts the keys, and loads them bottom-up.
func (ix *Index) Build() error {
	if ix.tree.Len() != 0 {
		return fmt.Errorf("core: Build on non-empty index %q", ix.spec.Name)
	}
	var keys [][]byte
	for _, oid := range ix.st.HierarchyExtent(ix.spec.Root) {
		fwd, err := ix.forwardChains(oid, 0)
		if err != nil {
			return err
		}
		for _, c := range fwd {
			key, ok, err := ix.keyFor(c)
			if err != nil {
				return err
			}
			if ok {
				keys = append(keys, key)
			}
		}
	}
	sortKeys(keys)
	// Paths are unique, so duplicates cannot occur; guard anyway since
	// BulkLoad requires strict ascent.
	dedup := keys[:0]
	for i, k := range keys {
		if i == 0 || !bytes.Equal(keys[i-1], k) {
			dedup = append(dedup, k)
		}
	}
	return ix.tree.BulkLoad(btree.SliceSource(dedup, nil))
}

// Len returns the number of index entries.
func (ix *Index) Len() int { return ix.tree.Len() }

// PageCount returns the number of pages in the index tree.
func (ix *Index) PageCount() (int, error) { return ix.tree.PageCount() }

// DropCache flushes and clears the buffer pool (cold-cache measurements).
func (ix *Index) DropCache() error { return ix.tree.DropCache() }

// NodeCacheStats reports the underlying B-tree's shared decoded-node cache
// counters (all zeros when the cache is disabled via Spec.NodeCacheSize).
func (ix *Index) NodeCacheStats() btree.CacheStats { return ix.tree.NodeCacheStats() }

// Flush persists every dirty page and the tree metadata to the page file;
// MetaPage identifies the tree for a later Open.
func (ix *Index) Flush() error { return ix.tree.Flush() }

// MetaPage returns the page id of the tree's metadata page.
func (ix *Index) MetaPage() pager.PageID { return ix.tree.MetaPage() }
