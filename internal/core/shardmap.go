package core

import (
	"fmt"
	"sort"

	"repro/internal/encoding"
)

// ShardMap partitions the class-code space of an index into contiguous
// intervals, one per shard. The paper's uniform encoding makes a class plus
// all of its subclasses one contiguous code interval, so splitting at class
// codes preserves the single-scan subtree property per shard: every entry of
// one class lands in exactly one shard (routing looks at the entry's
// position-0 code — the actual class of the terminal object), and a subtree
// query touches exactly the shards whose intervals intersect the subtree's
// code interval.
//
// A map with n shards stores n-1 ascending boundary codes; shard i covers
// codes c with bounds[i-1] <= c < bounds[i] (the first and last intervals
// are open toward -inf/+inf, so every code — including codes assigned to
// classes added after the map was built — routes somewhere).
type ShardMap struct {
	bounds []encoding.Code
}

// NewShardMap splits the given ascending, distinct class codes into at most
// n contiguous groups of near-equal class count and returns the resulting
// map. The effective shard count is min(n, len(codes)), and never below 1.
func NewShardMap(codes []encoding.Code, n int) *ShardMap {
	if n > len(codes) {
		n = len(codes)
	}
	if n < 1 {
		n = 1
	}
	m := &ShardMap{}
	for i := 1; i < n; i++ {
		m.bounds = append(m.bounds, codes[i*len(codes)/n])
	}
	return m
}

// ShardMapFromBounds rebuilds a map from boundary codes previously obtained
// with Bounds (the durable form a manifest persists, so routing stays stable
// across reopens even when the schema has since evolved). The bounds must be
// strictly ascending.
func ShardMapFromBounds(bounds []encoding.Code) (*ShardMap, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("core: shard bounds not strictly ascending at %d (%q >= %q)",
				i, bounds[i-1], bounds[i])
		}
	}
	return &ShardMap{bounds: append([]encoding.Code(nil), bounds...)}, nil
}

// Shards returns the number of shards the map routes to.
func (m *ShardMap) Shards() int { return len(m.bounds) + 1 }

// Bounds returns the boundary codes (len = Shards()-1), for persistence.
func (m *ShardMap) Bounds() []encoding.Code {
	return append([]encoding.Code(nil), m.bounds...)
}

// ShardOf routes a class code to its shard.
func (m *ShardMap) ShardOf(code encoding.Code) int {
	return sort.Search(len(m.bounds), func(i int) bool { return code < m.bounds[i] })
}

// ShardRange returns the inclusive shard interval [from, to] intersecting
// the half-open code interval [lo, hi) — the shards a subtree scan must
// visit.
func (m *ShardMap) ShardRange(lo, hi string) (from, to int) {
	from = sort.Search(len(m.bounds), func(i int) bool { return lo < string(m.bounds[i]) })
	to = sort.Search(len(m.bounds), func(i int) bool { return hi <= string(m.bounds[i]) })
	return from, to
}

// ShardOfKey routes a full index key: it skips the encoded attribute value
// and reads the position-0 class code (the terminal object's actual class,
// which comes first in the key layout — the shard key is NOT a key prefix,
// because the attribute value precedes it).
func (m *ShardMap) ShardOfKey(t encoding.AttrType, key []byte) (int, error) {
	_, rest, err := t.SplitValue(key)
	if err != nil {
		return 0, err
	}
	for i, b := range rest {
		if b == encoding.SepByte {
			if i == 0 {
				break
			}
			return m.ShardOf(encoding.Code(rest[:i])), nil
		}
	}
	return 0, fmt.Errorf("core: key has no class code to route on")
}

// ShardCodes returns the codes an index's shard map should be built from:
// every coded class inside the terminal class's hierarchy (position 0 of
// every key carries one of exactly these codes), ascending. The coding table
// is already sorted by code, which is hierarchy preorder.
func (ix *Index) ShardCodes() []encoding.Code {
	sch := ix.st.Schema()
	terminal := ix.pathCls[len(ix.pathCls)-1]
	var codes []encoding.Code
	for _, row := range ix.coding.Table() {
		if sch.IsSubclassOf(row.Class, terminal) {
			codes = append(codes, row.Code)
		}
	}
	return codes
}
