package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/pager"
)

// Algorithm selects the retrieval strategy.
type Algorithm int

const (
	// Parallel is Algorithm 1 of the paper (Parscan): one multi-interval
	// descent of the B-tree; shared pages are read once, irrelevant
	// subtrees are pruned, and mismatching clusters are skipped via the
	// parent-node skip.
	Parallel Algorithm = iota
	// Forward is the baseline of Section 3.3: find the first relevant
	// entry with a standard B-tree search, then scan the leaf chain
	// forward across the whole spanned range, filtering.
	Forward
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Parallel:
		return "parallel"
	case Forward:
		return "forward"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Stats reports the cost of one query execution, in the units the paper's
// experiments use.
type Stats struct {
	Algorithm      Algorithm
	PagesRead      int // distinct pages fetched (Section 5 metric)
	EntriesScanned int // index entries inspected
	Matches        int
	Intervals      int // search intervals after compilation
}

// Execute runs a query and materializes the matches. tr may be nil, in
// which case a fresh tracker is used; pass an explicit tracker to share
// page accounting across several queries.
func (ix *Index) Execute(q Query, alg Algorithm, tr *pager.Tracker) ([]Match, Stats, error) {
	var out []Match
	stats, err := ix.ExecuteFunc(q, alg, tr, func(m Match) bool {
		out = append(out, m)
		return true
	})
	return out, stats, err
}

// ExecuteFunc runs a query, streaming matches to fn; fn returning false
// stops the scan early.
func (ix *Index) ExecuteFunc(q Query, alg Algorithm, tr *pager.Tracker, fn func(Match) bool) (Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	p, err := ix.compile(q)
	if err != nil {
		return Stats{}, err
	}
	stats := Stats{Algorithm: alg, Intervals: len(p.intervals)}
	lastDistinct := "" // forward-scan duplicate suppression for Distinct
	emit := func(key []byte) (skipTo []byte, stop bool, err error) {
		stats.EntriesScanned++
		m, skip, err := p.matchKey(ix, key)
		if err != nil {
			return nil, true, err
		}
		if m == nil {
			return skip, false, nil
		}
		if q.Distinct > 0 && skip != nil {
			// The skip key doubles as the cluster signature. The
			// parallel algorithm jumps past the cluster so this
			// never repeats; the forward scan visits every entry
			// and must suppress the repeats itself.
			sig := string(skip)
			if sig == lastDistinct {
				return skip, false, nil
			}
			lastDistinct = sig
		}
		stats.Matches++
		if !fn(*m) {
			return nil, true, nil
		}
		return skip, false, nil
	}
	switch alg {
	case Parallel:
		err = ix.tree.MultiScan(p.intervals, tr, func(k, _ []byte) ([]byte, bool, error) {
			return emit(k)
		})
	case Forward:
		// Per search value: one descent to the value's first entry,
		// then a sweep of the entire value cluster — every class's
		// entries are inspected and filtered, with no seeking past
		// irrelevant classes. This is the Section-3.3 baseline the
		// parallel algorithm is measured against in Table 1.
		norm := btree.NormalizeIntervals(p.valueIntervals)
		stopped := false
		for _, iv := range norm {
			if stopped {
				break
			}
			err = ix.tree.Scan(iv.Lo, iv.Hi, tr, func(k, _ []byte) ([]byte, bool, error) {
				_, stop, err := emit(k)
				stopped = stop
				return nil, stop, err
			})
			if err != nil {
				break
			}
		}
	default:
		return Stats{}, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
	stats.PagesRead = tr.Reads()
	return stats, err
}
