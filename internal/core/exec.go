package core

import (
	"context"
	"fmt"

	"repro/internal/btree"
	"repro/internal/pager"
)

// Algorithm selects the retrieval strategy.
type Algorithm int

const (
	// Parallel is Algorithm 1 of the paper (Parscan): one multi-interval
	// descent of the B-tree; shared pages are read once, irrelevant
	// subtrees are pruned, and mismatching clusters are skipped via the
	// parent-node skip.
	Parallel Algorithm = iota
	// Forward is the baseline of Section 3.3: find the first relevant
	// entry with a standard B-tree search, then scan the leaf chain
	// forward across the whole spanned range, filtering.
	Forward
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Parallel:
		return "parallel"
	case Forward:
		return "forward"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Stats reports the cost of one query execution, in the units the paper's
// experiments use.
type Stats struct {
	Algorithm      Algorithm
	PagesRead      int // distinct pages fetched (Section 5 metric)
	EntriesScanned int // index entries inspected
	Matches        int
	Intervals      int // search intervals after compilation
	// CPU-cost counters of the zero-copy read path (this repo's metric,
	// not the paper's — the paper models I/O only): node fetches served
	// by the shared decoded-node cache vs. decoded from page bytes, and
	// how many entry bytes those decodes materialized. Orthogonal to
	// PagesRead, which is counted before any cache is consulted.
	NodeCacheHits   int
	NodeCacheMisses int
	BytesDecoded    int64
	// PrefetchIssued counts pages the scan handed to the background
	// frontier prefetcher (0 when prefetch is off or unsupported).
	// Accounting only: prefetched pages are never Touched, so PagesRead
	// is identical with prefetching on or off.
	PrefetchIssued int
}

// ExecContext is the mutable per-query execution state: the page tracker,
// the algorithm choice, and the accumulated cost counters. Every
// Query/ExecuteFunc call that is not handed one explicitly gets a fresh
// ExecContext, so two concurrent Parscan descents never share mutable
// state — this is the unit the engine's "any number of readers" contract
// is built from. An ExecContext must not be shared between goroutines;
// combine per-goroutine contexts afterwards with Tracker.Merge (the
// distinct-page union is identical to a sequential run under one shared
// tracker).
//
// Reusing one ExecContext across several sequential queries reproduces the
// paper's buffered experiment model: the tracker deduplicates pages across
// the whole sequence, Stats.PagesRead reports cumulative distinct pages,
// and the scan counters accumulate.
type ExecContext struct {
	// Tracker deduplicates page reads. NewExecContext allocates one; a
	// zero-value ExecContext lazily gets one on first use.
	Tracker *pager.Tracker
	// Algorithm is the retrieval strategy for queries run under this
	// context.
	Algorithm Algorithm
	// Stats accumulates cost over every query executed with this context.
	Stats Stats
	// shardTrackers are the per-shard page trackers of sharded executions.
	// Shard files have independent page-id spaces, so one shared tracker
	// would wrongly deduplicate across files; each shard gets its own and
	// the reported PagesRead is the sum of per-shard distinct counts. They
	// persist across queries on the context, preserving the cumulative
	// buffered-experiment semantics of a reused tracker.
	shardTrackers []*pager.Tracker
}

// NewExecContext returns an ExecContext with a fresh tracker.
func NewExecContext(alg Algorithm) *ExecContext {
	return &ExecContext{Tracker: pager.NewTracker(), Algorithm: alg}
}

// ShardTracker returns the context's page tracker for shard i of an n-shard
// execution, allocating it on first use. n <= 1 is the unsharded case and
// returns the plain Tracker, so single-shard executions are bit-identical to
// the historical path.
func (ec *ExecContext) ShardTracker(i, n int) *pager.Tracker {
	if n <= 1 {
		if ec.Tracker == nil {
			ec.Tracker = pager.NewTracker()
		}
		return ec.Tracker
	}
	if len(ec.shardTrackers) < n {
		grown := make([]*pager.Tracker, n)
		copy(grown, ec.shardTrackers)
		ec.shardTrackers = grown
	}
	if ec.shardTrackers[i] == nil {
		ec.shardTrackers[i] = pager.NewTracker()
	}
	return ec.shardTrackers[i]
}

// pageCounts sums the context's cumulative page accounting over every
// tracker it owns: the plain tracker plus any per-shard trackers.
func (ec *ExecContext) pageCounts() (reads, hits, misses int, bytes int64, prefetch int) {
	if ec.Tracker != nil {
		reads += ec.Tracker.Reads()
		hits += ec.Tracker.CacheHits()
		misses += ec.Tracker.CacheMisses()
		bytes += ec.Tracker.BytesDecoded()
		prefetch += ec.Tracker.PrefetchIssued()
	}
	for _, tr := range ec.shardTrackers {
		if tr == nil {
			continue
		}
		reads += tr.Reads()
		hits += tr.CacheHits()
		misses += tr.CacheMisses()
		bytes += tr.BytesDecoded()
		prefetch += tr.PrefetchIssued()
	}
	return reads, hits, misses, bytes, prefetch
}

// view is the read surface a query executes against: the live tree (a
// one-shot snapshot per scan) or a pinned btree.Snap (one consistent epoch
// for the whole query). Both implementations never block writers.
// The executor scans keys-only: a U-index entry's whole payload is the
// composite key itself (values are empty), so materializing values would be
// pure waste.
type view interface {
	MultiScanKeys(ctx context.Context, ivs []btree.Interval, tr *pager.Tracker, fn btree.ScanFunc) error
	ScanKeys(ctx context.Context, lo, hi []byte, tr *pager.Tracker, fn btree.ScanFunc) error
}

// Execute runs a query and materializes the matches. tr may be nil, in
// which case a fresh tracker is used; pass an explicit tracker to share
// page accounting across several queries.
func (ix *Index) Execute(q Query, alg Algorithm, tr *pager.Tracker) ([]Match, Stats, error) {
	var out []Match
	stats, err := ix.ExecuteFunc(q, alg, tr, func(m Match) bool {
		out = append(out, m)
		return true
	})
	return out, stats, err
}

// ExecuteFunc runs a query, streaming matches to fn; fn returning false
// stops the scan early. It wraps the query in a private ExecContext (or
// one around the caller's tracker) and delegates to ExecuteCtx.
func (ix *Index) ExecuteFunc(q Query, alg Algorithm, tr *pager.Tracker, fn func(Match) bool) (Stats, error) {
	return ix.ExecuteCtx(context.Background(), q, &ExecContext{Tracker: tr, Algorithm: alg}, fn)
}

// ExecuteCtx runs a query under an explicit execution context, streaming
// matches to fn (fn returning false stops the scan early). The whole query
// runs against one pinned tree version, so a concurrent writer is neither
// observed nor blocked. ctx cancellation is checked at every page visit.
// The returned Stats are this query's own counters; ec.Stats additionally
// accumulates them (with PagesRead always the context tracker's cumulative
// distinct count). ExecuteCtx is safe to call concurrently on the same
// Index as long as each goroutine uses its own ExecContext.
func (ix *Index) ExecuteCtx(ctx context.Context, q Query, ec *ExecContext, fn func(Match) bool) (Stats, error) {
	s := ix.tree.Snapshot()
	defer s.Release()
	return ix.executeView(ctx, s, q, ec, fn)
}

// executeView runs a query against an explicit read view.
func (ix *Index) executeView(ctx context.Context, v view, q Query, ec *ExecContext, fn func(Match) bool) (Stats, error) {
	p, err := ix.compile(q)
	if err != nil {
		return Stats{}, err
	}
	return ix.runPlan(ctx, v, p, ec, func(_ []byte, m Match) bool { return fn(m) })
}

// runPlan executes a compiled plan against one read view, streaming each
// match together with its raw entry key — the sharded executor merges
// per-shard streams in key order, and within one shard the scan emits keys
// ascending. The plan may have been compiled by another shard of the same
// index group; shards share spec, coding, and store, so plans are
// interchangeable.
func (ix *Index) runPlan(ctx context.Context, v view, p *plan, ec *ExecContext, fn func(key []byte, m Match) bool) (Stats, error) {
	if ec.Tracker == nil {
		ec.Tracker = pager.NewTracker()
	}
	tr := ec.Tracker
	var err error
	stats := Stats{Algorithm: ec.Algorithm, Intervals: len(p.intervals)}
	lastDistinct := ""  // forward-scan duplicate suppression for Distinct
	var sc matchScratch // per-entry parse state, reused across the scan
	emit := func(key []byte) (skipTo []byte, stop bool, err error) {
		stats.EntriesScanned++
		m, skip, err := p.matchKey(ix, key, &sc)
		if err != nil {
			return nil, true, err
		}
		if m == nil {
			return skip, false, nil
		}
		if p.q.Distinct > 0 && skip != nil {
			// The skip key doubles as the cluster signature. The
			// parallel algorithm jumps past the cluster so this
			// never repeats; the forward scan visits every entry
			// and must suppress the repeats itself.
			sig := string(skip)
			if sig == lastDistinct {
				return skip, false, nil
			}
			lastDistinct = sig
		}
		stats.Matches++
		if !fn(key, *m) {
			return nil, true, nil
		}
		return skip, false, nil
	}
	switch ec.Algorithm {
	case Parallel:
		err = v.MultiScanKeys(ctx, p.intervals, tr, func(k, _ []byte) ([]byte, bool, error) {
			return emit(k)
		})
	case Forward:
		// Per search value: one descent to the value's first entry,
		// then a sweep of the entire value cluster — every class's
		// entries are inspected and filtered, with no seeking past
		// irrelevant classes. This is the Section-3.3 baseline the
		// parallel algorithm is measured against in Table 1.
		norm := btree.NormalizeIntervals(p.valueIntervals)
		stopped := false
		for _, iv := range norm {
			if stopped {
				break
			}
			err = v.ScanKeys(ctx, iv.Lo, iv.Hi, tr, func(k, _ []byte) ([]byte, bool, error) {
				_, stop, err := emit(k)
				stopped = stop
				return nil, stop, err
			})
			if err != nil {
				break
			}
		}
	default:
		return Stats{}, fmt.Errorf("core: unknown algorithm %d", int(ec.Algorithm))
	}
	stats.PagesRead = tr.Reads()
	stats.NodeCacheHits = tr.CacheHits()
	stats.NodeCacheMisses = tr.CacheMisses()
	stats.BytesDecoded = tr.BytesDecoded()
	stats.PrefetchIssued = tr.PrefetchIssued()
	ec.Stats.Algorithm = ec.Algorithm
	ec.Stats.Intervals += stats.Intervals
	ec.Stats.EntriesScanned += stats.EntriesScanned
	ec.Stats.Matches += stats.Matches
	ec.Stats.PagesRead = tr.Reads()
	ec.Stats.NodeCacheHits = tr.CacheHits()
	ec.Stats.NodeCacheMisses = tr.CacheMisses()
	ec.Stats.BytesDecoded = tr.BytesDecoded()
	ec.Stats.PrefetchIssued = tr.PrefetchIssued()
	return stats, err
}
