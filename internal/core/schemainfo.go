package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/schema"
)

// SchemaIndex realizes the paper's Section-4.1 remark: "by using the
// name-encoding scheme above, schema information can be stored in the same
// index and retrieved easily. For example, the relations SUP or REF may be
// stored in the index and that information is also clustered."
//
// Every SUP and REF relationship becomes one key
//
//	code(subject) ‖ '$' ‖ kind ‖ '$' ‖ code(object) [‖ '$' ‖ attr]
//
// so all relationships of a class — and, thanks to the code ordering, of a
// whole class subtree — occupy one contiguous key range. Retrieving "the
// sub-classes of X", "everything X references" or "the entire topology
// under X" is a single clustered scan.
type SchemaIndex struct {
	sch    *schema.Schema
	coding *schema.Coding
	tree   *btree.Tree
}

// Relationship kinds stored in the schema index.
const (
	kindSUP = "SUP"
	kindREF = "REF"
)

// SchemaFact is one retrieved relationship.
type SchemaFact struct {
	Subject string // class name
	Kind    string // "SUP" or "REF"
	Object  string // related class name
	Attr    string // REF only: the reference attribute
}

// String renders the fact in the paper's notation ("C5 SUP C5A",
// "C2 REF C1").
func (f SchemaFact) String() string {
	if f.Kind == kindREF {
		return fmt.Sprintf("%s REF %s (via %s)", f.Subject, f.Object, f.Attr)
	}
	return fmt.Sprintf("%s %s %s", f.Subject, f.Kind, f.Object)
}

// NewSchemaIndex stores the schema's SUP and REF relations in a fresh
// B-tree inside the given page file.
func NewSchemaIndex(f pager.File, sch *schema.Schema) (*SchemaIndex, error) {
	coding := sch.Coding()
	if coding == nil {
		return nil, fmt.Errorf("core: schema has no coding; call AssignCodes first")
	}
	tree, err := btree.Create(f, btree.Config{})
	if err != nil {
		return nil, err
	}
	si := &SchemaIndex{sch: sch, coding: coding, tree: tree}
	for _, class := range sch.Classes() {
		for _, kid := range sch.Children(class) {
			if err := si.put(class, kindSUP, kid, ""); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range sch.RefEdges() {
		if err := si.put(e.Source, kindREF, e.Target, e.Attr); err != nil {
			return nil, err
		}
	}
	return si, nil
}

func (si *SchemaIndex) key(subject, kind, object, attr string) ([]byte, error) {
	sc, ok := si.coding.Code(subject)
	if !ok {
		return nil, fmt.Errorf("core: class %q has no code", subject)
	}
	oc, ok := si.coding.Code(object)
	if !ok {
		return nil, fmt.Errorf("core: class %q has no code", object)
	}
	parts := []string{string(sc), kind, string(oc)}
	if attr != "" {
		parts = append(parts, attr)
	}
	return []byte(strings.Join(parts, string(rune(encoding.SepByte)))), nil
}

func (si *SchemaIndex) put(subject, kind, object, attr string) error {
	k, err := si.key(subject, kind, object, attr)
	if err != nil {
		return err
	}
	return si.tree.Insert(k, nil)
}

// Add records a relationship added by schema evolution (call it after
// Schema.AddClass when keeping a long-lived schema index current).
func (si *SchemaIndex) Add(subject, kind, object, attr string) error {
	if kind != kindSUP && kind != kindREF {
		return fmt.Errorf("core: unknown relationship kind %q", kind)
	}
	return si.put(subject, kind, object, attr)
}

// Relations returns the stored relationships of one class: one clustered
// prefix scan.
func (si *SchemaIndex) Relations(class string, tr *pager.Tracker) ([]SchemaFact, int, error) {
	code, ok := si.coding.Code(class)
	if !ok {
		return nil, 0, fmt.Errorf("core: class %q has no code", class)
	}
	lo := append([]byte(code), encoding.SepByte)
	hi := append([]byte(code), encoding.SepSuccByte)
	return si.scan(lo, hi, tr)
}

// SubtreeRelations returns the relationships of a class and all its
// subclasses — contiguous because of the code ordering, exactly the
// clustering the paper points out.
func (si *SchemaIndex) SubtreeRelations(class string, tr *pager.Tracker) ([]SchemaFact, int, error) {
	code, ok := si.coding.Code(class)
	if !ok {
		return nil, 0, fmt.Errorf("core: class %q has no code", class)
	}
	return si.scan([]byte(code), []byte(code.SubtreeEnd()), tr)
}

func (si *SchemaIndex) scan(lo, hi []byte, tr *pager.Tracker) ([]SchemaFact, int, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	var out []SchemaFact
	err := si.tree.Scan(context.Background(), lo, hi, tr, func(k, _ []byte) ([]byte, bool, error) {
		fact, err := si.parse(k)
		if err != nil {
			return nil, true, err
		}
		out = append(out, fact)
		return nil, false, nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, tr.Reads(), nil
}

func (si *SchemaIndex) parse(k []byte) (SchemaFact, error) {
	parts := strings.Split(string(k), string(rune(encoding.SepByte)))
	if len(parts) < 3 {
		return SchemaFact{}, fmt.Errorf("core: malformed schema-index key %q", k)
	}
	subj, ok := si.coding.ClassOf(encoding.Code(parts[0]))
	if !ok {
		return SchemaFact{}, fmt.Errorf("core: unknown code %q in schema index", parts[0])
	}
	obj, ok := si.coding.ClassOf(encoding.Code(parts[2]))
	if !ok {
		return SchemaFact{}, fmt.Errorf("core: unknown code %q in schema index", parts[2])
	}
	fact := SchemaFact{Subject: subj, Kind: parts[1], Object: obj}
	if len(parts) > 3 {
		fact.Attr = parts[3]
	}
	return fact, nil
}

// Len returns the number of stored relationships.
func (si *SchemaIndex) Len() int { return si.tree.Len() }
