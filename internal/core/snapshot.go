package core

import (
	"context"

	"repro/internal/btree"
)

// Snapshot is a pinned, immutable read view of one index: every query
// executed through it sees the tree version current when it was taken,
// regardless of concurrent writers. Release it when done so superseded
// pages can be reclaimed.
//
// Snapshots cover the index tree only; match resolution that consults the
// object store (OnObjects predicates, Match materialization) reads the
// store's latest state.
type Snapshot struct {
	ix *Index
	ts *btree.Snap
}

// Snapshot pins the index's current tree version.
func (ix *Index) Snapshot() *Snapshot {
	return &Snapshot{ix: ix, ts: ix.tree.Snapshot()}
}

// Index returns the index the snapshot was taken from.
func (s *Snapshot) Index() *Index { return s.ix }

// Epoch returns the tree epoch the snapshot pins.
func (s *Snapshot) Epoch() uint64 { return s.ts.Epoch() }

// Len returns the number of index entries in the snapshot.
func (s *Snapshot) Len() int { return s.ts.Len() }

// Release unpins the snapshot (idempotent). Queries after Release fail with
// btree.ErrSnapshotReleased.
func (s *Snapshot) Release() error { return s.ts.Release() }

// ExecuteCtx runs a query against the snapshot, streaming matches to fn;
// the semantics match Index.ExecuteCtx except that the tree version is the
// snapshot's, not the current one.
func (s *Snapshot) ExecuteCtx(ctx context.Context, q Query, ec *ExecContext, fn func(Match) bool) (Stats, error) {
	return s.ix.executeView(ctx, s.ts, q, ec, fn)
}

// Execute runs a query against the snapshot and materializes the matches.
func (s *Snapshot) Execute(ctx context.Context, q Query, alg Algorithm, ec *ExecContext) ([]Match, Stats, error) {
	if ec == nil {
		ec = &ExecContext{}
	}
	ec.Algorithm = alg
	var out []Match
	stats, err := s.ExecuteCtx(ctx, q, ec, func(m Match) bool {
		out = append(out, m)
		return true
	})
	return out, stats, err
}
