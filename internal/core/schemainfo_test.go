package core

import (
	"strings"
	"testing"

	"repro/internal/pager"
	"repro/internal/schema"
)

func TestSchemaIndex(t *testing.T) {
	f := newFixture(t)
	si, err := NewSchemaIndex(pager.NewMemFile(0), f.sch)
	if err != nil {
		t.Fatal(err)
	}
	// 6 SUP edges + 4 REF edges in the Figure-1 fixture schema.
	if si.Len() != 10 {
		t.Fatalf("Len = %d, want 10", si.Len())
	}

	// Relations of Vehicle: two SUP children plus the ManufacturedBy REF.
	facts, pages, err := si.Relations("Vehicle", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pages == 0 {
		t.Fatal("no pages read")
	}
	want := map[string]bool{
		"Vehicle SUP Automobile":                   true,
		"Vehicle SUP Truck":                        true,
		"Vehicle REF Company (via ManufacturedBy)": true,
	}
	if len(facts) != len(want) {
		t.Fatalf("Relations(Vehicle) = %v", facts)
	}
	for _, fact := range facts {
		if !want[fact.String()] {
			t.Fatalf("unexpected fact %q", fact)
		}
	}

	// Subtree relations of Company cover the whole company hierarchy,
	// clustered: Company's own edges plus AutoCompany SUP JapaneseAutoCompany.
	facts, _, err = si.SubtreeRelations("Company", nil)
	if err != nil {
		t.Fatal(err)
	}
	var hasNested bool
	for _, fact := range facts {
		if fact.Subject == "AutoCompany" && fact.Kind == "SUP" && fact.Object == "JapaneseAutoCompany" {
			hasNested = true
		}
		if !strings.HasPrefix(fact.Subject, "Company") && fact.Subject != "AutoCompany" &&
			fact.Subject != "TruckCompany" && fact.Subject != "JapaneseAutoCompany" {
			t.Fatalf("subtree scan leaked fact %q", fact)
		}
	}
	if !hasNested {
		t.Fatalf("nested SUP fact missing from %v", facts)
	}

	// Evolution: record a new relationship.
	if err := f.sch.AddClass("Bus", "Vehicle"); err != nil {
		t.Fatal(err)
	}
	if err := si.Add("Vehicle", "SUP", "Bus", ""); err != nil {
		t.Fatal(err)
	}
	facts, _, _ = si.Relations("Vehicle", nil)
	if len(facts) != 4 {
		t.Fatalf("Relations after evolution = %v", facts)
	}
	if err := si.Add("Vehicle", "NOPE", "Bus", ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, err := si.Relations("Ghost", nil); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestSchemaIndexRequiresCoding(t *testing.T) {
	s := schema.New()
	if err := s.AddClass("A", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSchemaIndex(pager.NewMemFile(0), s); err == nil {
		t.Fatal("schema index over uncoded schema accepted")
	}
}
