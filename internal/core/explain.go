package core

import (
	"fmt"
	"strings"
)

// Explain renders the compiled plan of a query: the search intervals the
// parallel algorithm will descend for (the paper's "partial keys" of
// Algorithm 1), the residual position patterns the matcher enforces, and
// the distinct-prefix setting. It performs no I/O.
func (ix *Index) Explain(q Query) (string, error) {
	p, err := ix.compile(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "index %s on %s.%s (path %s)\n",
		ix.spec.Name, ix.pathCls[len(ix.pathCls)-1], ix.spec.Attr, strings.Join(ix.pathCls, "/"))
	fmt.Fprintf(&b, "search intervals (%d):\n", len(p.intervals))
	const maxShown = 12
	for i, iv := range p.intervals {
		if i == maxShown {
			fmt.Fprintf(&b, "  ... %d more\n", len(p.intervals)-maxShown)
			break
		}
		fmt.Fprintf(&b, "  [%s, %s)\n", ix.renderBound(iv.Lo, "-inf"), ix.renderBound(iv.Hi, "+inf"))
	}
	if len(p.patterns) > 0 {
		fmt.Fprintf(&b, "residual position patterns (terminal-first):\n")
		for pi, pats := range p.patterns {
			if len(pats) == 0 {
				fmt.Fprintf(&b, "  %d: any\n", pi)
				continue
			}
			var alts []string
			for _, cp := range pats {
				s := cp.code.Compact()
				if cp.subtree {
					s += "*"
				}
				if cp.oids != nil {
					var oids []string
					for o := range cp.oids {
						oids = append(oids, fmt.Sprint(o))
					}
					s += "$" + strings.Join(oids, ",")
				}
				alts = append(alts, s)
			}
			fmt.Fprintf(&b, "  %d: [%s]\n", pi, strings.Join(alts, ", "))
		}
	}
	if q.Distinct > 0 {
		fmt.Fprintf(&b, "distinct prefixes of %d position(s), skipping within clusters\n", q.Distinct)
	}
	return b.String(), nil
}

// renderBound shows an interval bound with the attribute value decoded and
// the key tail printed as escaped ASCII.
func (ix *Index) renderBound(b []byte, inf string) string {
	if b == nil {
		return inf
	}
	attr, rest, err := ix.attrType.SplitValue(b)
	if err != nil {
		return printable(b) // partial bound (e.g. value prefix + 0xFF)
	}
	v, err := ix.attrType.DecodeValue(attr)
	if err != nil {
		return printable(b)
	}
	if len(rest) == 0 {
		return fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("%v‖%s", v, printable(rest))
}

func printable(b []byte) string {
	var sb strings.Builder
	for _, c := range b {
		switch {
		case c >= 0x20 && c < 0x7F:
			sb.WriteByte(c)
		case c == 0xFF:
			sb.WriteString("\\xff")
		default:
			fmt.Fprintf(&sb, "\\x%02x", c)
		}
	}
	return sb.String()
}
