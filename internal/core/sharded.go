package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"repro/internal/btree"
	"repro/internal/store"
)

// Sharded is a group of U-index shards acting as one logical index: the key
// space is partitioned by class-code intervals (ShardMap), each shard is a
// complete Index with its own page file, buffer pool, node cache, and writer
// lock, and queries scatter over the relevant shards and merge in key order.
// All shards share one spec, coding, and object store; shard 0 is the
// prototype used for compilation, parsing, and key enumeration.
//
// Locking contract (the caller — the facade — serializes writers): a
// mutation must hold the writer locks of every shard it may touch. For a
// class-hierarchy index (path length 1) an object's keys are a pure function
// of its own class and attributes, so they all carry the object's class code
// at position 0 and land in exactly one shard — WriteShards returns that
// single shard. For a path index a mutation can ripple to entries of other
// objects reachable through reference chains, whose terminal classes (and
// hence shards) are unknown until enumeration — WriteShards returns every
// shard, restoring the whole-index exclusivity the unsharded engine has.
type Sharded struct {
	shards []*Index
	smap   *ShardMap
}

// NewSharded groups prebuilt shards under a shard map. All shards must share
// the prototype's spec/coding/store; the map's shard count must match.
func NewSharded(shards []*Index, smap *ShardMap) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: sharded index needs at least one shard")
	}
	if smap.Shards() != len(shards) {
		return nil, fmt.Errorf("core: shard map routes to %d shards, got %d", smap.Shards(), len(shards))
	}
	return &Sharded{shards: shards, smap: smap}, nil
}

// Prototype returns shard 0, the representative Index for compilation,
// query parsing, and spec/coding introspection.
func (sh *Sharded) Prototype() *Index { return sh.shards[0] }

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns shard i.
func (sh *Sharded) Shard(i int) *Index { return sh.shards[i] }

// Map returns the shard map.
func (sh *Sharded) Map() *ShardMap { return sh.smap }

// Covers reports whether an object of the given class can participate.
func (sh *Sharded) Covers(class string) bool { return sh.shards[0].Covers(class) }

// WriteShards returns the ascending shard indices whose writer locks a
// mutation of an object of the given class must hold; see the type comment
// for the single-shard vs. all-shards rule.
func (sh *Sharded) WriteShards(class string) []int {
	proto := sh.shards[0]
	if len(sh.shards) > 1 && len(proto.pathCls) == 1 {
		if code, ok := proto.coding.Code(class); ok {
			return []int{sh.smap.ShardOf(code)}
		}
	}
	all := make([]int, len(sh.shards))
	for i := range all {
		all[i] = i
	}
	return all
}

// LockShards acquires the writer locks of the given shards, which must be
// ascending — the global lock order (group creation order, then shard index)
// keeps multi-index writers deadlock-free.
func (sh *Sharded) LockShards(ids []int) {
	for _, i := range ids {
		sh.shards[i].LockWrite()
	}
}

// UnlockShards releases the writer locks of the given shards.
func (sh *Sharded) UnlockShards(ids []int) {
	for _, i := range ids {
		sh.shards[i].UnlockWrite()
	}
}

// EntriesFor enumerates the keys an object participates in (prototype
// enumeration; all shards share the store).
func (sh *Sharded) EntriesFor(oid store.OID) ([][]byte, error) {
	return sh.shards[0].EntriesFor(oid)
}

// routeKey returns the shard a key belongs to.
func (sh *Sharded) routeKey(k []byte) (*Index, error) {
	i, err := sh.smap.ShardOfKey(sh.shards[0].attrType, k)
	if err != nil {
		return nil, err
	}
	return sh.shards[i], nil
}

// Add inserts the index entries of an object, each routed to its shard. The
// caller holds the WriteShards locks.
func (sh *Sharded) Add(oid store.OID) error {
	keys, err := sh.shards[0].EntriesFor(oid)
	if err != nil {
		return err
	}
	for _, k := range keys {
		ix, err := sh.routeKey(k)
		if err != nil {
			return err
		}
		if err := ix.tree.Insert(k, nil); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes the index entries of an object from their shards. The
// caller holds the WriteShards locks.
func (sh *Sharded) Remove(oid store.OID) error {
	keys, err := sh.shards[0].EntriesFor(oid)
	if err != nil {
		return err
	}
	for _, k := range keys {
		ix, err := sh.routeKey(k)
		if err != nil {
			return err
		}
		if _, err := ix.tree.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// DiffKeys reduces an old/new entry-set pair to the deletions and
// insertions that turn one into the other, skipping the intersection; both
// outputs come back sorted. It is the pure half of ApplyDiff, exported so a
// logical log can record the exact key edits a mutation performed.
func DiffKeys(oldKeys, newKeys [][]byte) (dels, ins [][]byte) {
	olds := keySet(oldKeys)
	news := keySet(newKeys)
	for k, b := range olds {
		if _, keep := news[k]; !keep {
			dels = append(dels, b)
		}
	}
	for k, b := range news {
		if _, had := olds[k]; !had {
			ins = append(ins, b)
		}
	}
	sortKeys(dels)
	sortKeys(ins)
	return dels, ins
}

// ApplyDiff removes the old keys and inserts the new ones, skipping the
// intersection, each key routed to its shard; deletions and insertions are
// applied in sorted order as in Index.ApplyDiff.
func (sh *Sharded) ApplyDiff(oldKeys, newKeys [][]byte) error {
	dels, ins := DiffKeys(oldKeys, newKeys)
	return sh.ApplyKeys(dels, ins)
}

// ApplyKeys applies pre-computed key edits — deletions first, then
// insertions — each routed to its shard. Deleting an absent key and
// re-inserting a present one are both no-ops at the B-tree layer, which
// makes replaying the same edits a second time idempotent. The caller holds
// the WriteShards locks of every touched shard.
func (sh *Sharded) ApplyKeys(dels, ins [][]byte) error {
	for _, k := range dels {
		ix, err := sh.routeKey(k)
		if err != nil {
			return err
		}
		if _, err := ix.tree.Delete(k); err != nil {
			return err
		}
	}
	for _, k := range ins {
		ix, err := sh.routeKey(k)
		if err != nil {
			return err
		}
		if err := ix.tree.Insert(k, nil); err != nil {
			return err
		}
	}
	return nil
}

// Build populates empty shards from the store with one bulk load per shard:
// keys are enumerated once, partitioned by shard (a per-shard subset of the
// globally sorted key list is itself sorted), and loaded bottom-up.
func (sh *Sharded) Build() error {
	proto := sh.shards[0]
	for _, ix := range sh.shards {
		if ix.tree.Len() != 0 {
			return fmt.Errorf("core: Build on non-empty sharded index %q", ix.spec.Name)
		}
	}
	var keys [][]byte
	for _, oid := range proto.st.HierarchyExtent(proto.spec.Root) {
		fwd, err := proto.forwardChains(oid, 0)
		if err != nil {
			return err
		}
		for _, c := range fwd {
			key, ok, err := proto.keyFor(c)
			if err != nil {
				return err
			}
			if ok {
				keys = append(keys, key)
			}
		}
	}
	sortKeys(keys)
	parts := make([][][]byte, len(sh.shards))
	var last []byte
	for i, k := range keys {
		if i > 0 && bytes.Equal(last, k) {
			continue // paths are unique; guard as Index.Build does
		}
		last = k
		si, err := sh.smap.ShardOfKey(proto.attrType, k)
		if err != nil {
			return err
		}
		parts[si] = append(parts[si], k)
	}
	for i, ix := range sh.shards {
		if err := ix.tree.BulkLoad(btree.SliceSource(parts[i], nil)); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of entries across shards.
func (sh *Sharded) Len() int {
	n := 0
	for _, ix := range sh.shards {
		n += ix.Len()
	}
	return n
}

// DropCache flushes and clears every shard's caches.
func (sh *Sharded) DropCache() error {
	var first error
	for _, ix := range sh.shards {
		if err := ix.DropCache(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NodeCacheStats sums the decoded-node cache counters across shards.
func (sh *Sharded) NodeCacheStats() btree.CacheStats {
	var agg btree.CacheStats
	for _, ix := range sh.shards {
		st := ix.NodeCacheStats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Entries += st.Entries
	}
	return agg
}

// relevantShards returns the ascending shard indices a compiled plan can
// find entries in, pruned by intersecting each position-0 class pattern's
// code interval with the shard intervals. A conservative answer (extra
// shards) only costs empty scans; position 0 (the terminal class, first in
// the key) is the routing position, so the pruning is exact for class
// patterns and falls back to every shard for wildcards.
func (sh *Sharded) relevantShards(p *plan) []int {
	n := len(sh.shards)
	if len(p.patterns) == 0 || len(p.patterns[0]) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	mark := make([]bool, n)
	for _, cp := range p.patterns[0] {
		if cp.subtree {
			from, to := sh.smap.ShardRange(string(cp.code), cp.code.SubtreeEnd())
			for i := from; i <= to; i++ {
				mark[i] = true
			}
		} else {
			mark[sh.smap.ShardOf(cp.code)] = true
		}
	}
	var out []int
	for i, m := range mark {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// ExecuteCtx runs a query across the shards, streaming matches to fn in
// global key order; semantics match Index.ExecuteCtx. Each shard scans a
// pinned version of its own tree; with more than one relevant shard the
// scans run concurrently and the per-shard result streams are merged by
// full-key byte order (shards interleave by attribute value, so a plain
// concatenation would be out of order). Stats.PagesRead is the summed
// per-shard distinct page count — shard files have independent page-id
// spaces (see ExecContext.ShardTracker).
func (sh *Sharded) ExecuteCtx(ctx context.Context, q Query, ec *ExecContext, fn func(Match) bool) (Stats, error) {
	return sh.execute(ctx, q, ec, fn, func(i int) (view, func() error) {
		s := sh.shards[i].tree.Snapshot()
		return s, s.Release
	})
}

// Execute runs a query across the shards and materializes the matches.
func (sh *Sharded) Execute(q Query, alg Algorithm, ec *ExecContext) ([]Match, Stats, error) {
	if ec == nil {
		ec = &ExecContext{}
	}
	ec.Algorithm = alg
	var out []Match
	stats, err := sh.ExecuteCtx(context.Background(), q, ec, func(m Match) bool {
		out = append(out, m)
		return true
	})
	return out, stats, err
}

// keyedMatch carries a match with its raw entry key for the merge.
type keyedMatch struct {
	key []byte
	m   Match
}

func (sh *Sharded) execute(ctx context.Context, q Query, ec *ExecContext, fn func(Match) bool, viewOf func(int) (view, func() error)) (Stats, error) {
	proto := sh.shards[0]
	n := len(sh.shards)
	p, err := proto.compile(q)
	if err != nil {
		return Stats{}, err
	}
	rel := sh.relevantShards(p)
	stats := Stats{Algorithm: ec.Algorithm, Intervals: len(p.intervals)}

	if len(rel) == 1 {
		// One relevant shard: stream straight to fn, no buffering.
		child := &ExecContext{Tracker: ec.ShardTracker(rel[0], n), Algorithm: ec.Algorithm}
		v, release := viewOf(rel[0])
		st, err := proto.runPlan(ctx, v, p, child, func(_ []byte, m Match) bool { return fn(m) })
		if rerr := release(); rerr != nil && err == nil {
			err = rerr
		}
		stats.EntriesScanned = st.EntriesScanned
		stats.Matches = st.Matches
		return sh.finish(ec, stats, err)
	}

	// Scatter: one goroutine per relevant shard, each collecting its
	// (key, match) stream under its own tracker and ExecContext.
	// Trackers are materialized up front — ShardTracker mutates the
	// shared context and must not race.
	for _, i := range rel {
		ec.ShardTracker(i, n)
	}
	results := make([][]keyedMatch, len(rel))
	shardStats := make([]Stats, len(rel))
	errs := make([]error, len(rel))
	var wg sync.WaitGroup
	for ri, i := range rel {
		wg.Add(1)
		go func(ri, i int) {
			defer wg.Done()
			child := &ExecContext{Tracker: ec.ShardTracker(i, n), Algorithm: ec.Algorithm}
			v, release := viewOf(i)
			st, err := proto.runPlan(ctx, v, p, child, func(key []byte, m Match) bool {
				results[ri] = append(results[ri], keyedMatch{key: append([]byte(nil), key...), m: m})
				return true
			})
			if rerr := release(); rerr != nil && err == nil {
				err = rerr
			}
			shardStats[ri] = st
			errs[ri] = err
		}(ri, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return sh.finish(ec, stats, err)
		}
	}
	for _, st := range shardStats {
		stats.EntriesScanned += st.EntriesScanned
	}

	// Gather: n-way merge by full-key byte order.
	heads := make([]int, len(rel))
	for {
		best := -1
		for ri := range results {
			if heads[ri] >= len(results[ri]) {
				continue
			}
			if best < 0 || bytes.Compare(results[ri][heads[ri]].key, results[best][heads[best]].key) < 0 {
				best = ri
			}
		}
		if best < 0 {
			break
		}
		m := results[best][heads[best]].m
		heads[best]++
		stats.Matches++
		if !fn(m) {
			break
		}
	}
	return sh.finish(ec, stats, nil)
}

// finish folds a sharded execution's counters into the context, mirroring
// runPlan's accumulation: per-query counters add up, page counters are the
// context's cumulative distinct counts (summed across shard trackers).
func (sh *Sharded) finish(ec *ExecContext, stats Stats, err error) (Stats, error) {
	reads, hits, misses, bytesDec, prefetch := ec.pageCounts()
	stats.PagesRead = reads
	stats.NodeCacheHits = hits
	stats.NodeCacheMisses = misses
	stats.BytesDecoded = bytesDec
	stats.PrefetchIssued = prefetch
	ec.Stats.Algorithm = ec.Algorithm
	ec.Stats.Intervals += stats.Intervals
	ec.Stats.EntriesScanned += stats.EntriesScanned
	ec.Stats.Matches += stats.Matches
	ec.Stats.PagesRead = reads
	ec.Stats.NodeCacheHits = hits
	ec.Stats.NodeCacheMisses = misses
	ec.Stats.BytesDecoded = bytesDec
	ec.Stats.PrefetchIssued = prefetch
	return stats, err
}

// ShardedSnap is a pinned, immutable read view across every shard of a
// group: one consistent tree version per shard, taken together. Queries
// through it merge in key order exactly like the live path.
type ShardedSnap struct {
	sh    *Sharded
	snaps []*btree.Snap
}

// Snapshot pins every shard's current tree version.
func (sh *Sharded) Snapshot() *ShardedSnap {
	snaps := make([]*btree.Snap, len(sh.shards))
	for i, ix := range sh.shards {
		snaps[i] = ix.tree.Snapshot()
	}
	return &ShardedSnap{sh: sh, snaps: snaps}
}

// Epoch returns the pinned epoch of the prototype shard.
func (s *ShardedSnap) Epoch() uint64 { return s.snaps[0].Epoch() }

// Len returns the total number of entries across the pinned shard versions.
func (s *ShardedSnap) Len() int {
	n := 0
	for _, sn := range s.snaps {
		n += sn.Len()
	}
	return n
}

// Release unpins every shard version (idempotent per shard).
func (s *ShardedSnap) Release() error {
	var first error
	for _, sn := range s.snaps {
		if err := sn.Release(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ExecuteCtx runs a query against the pinned shard versions; semantics
// match Sharded.ExecuteCtx.
func (s *ShardedSnap) ExecuteCtx(ctx context.Context, q Query, ec *ExecContext, fn func(Match) bool) (Stats, error) {
	return s.sh.execute(ctx, q, ec, fn, func(i int) (view, func() error) {
		return s.snaps[i], func() error { return nil }
	})
}
