package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/schema"
	"repro/internal/store"
)

// fixture reproduces the paper's Figure 1 schema and Example 1 database.
type fixture struct {
	sch *schema.Schema
	st  *store.Store
	// Example 1 objects, by the paper's names.
	v1, v2, v3, v4, v5, v6 store.OID // vehicles
	c1, c2, c3             store.OID // companies
	e1, e2, e3             store.OID // employees
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", schema.Attr{Name: "Age", Type: encoding.AttrUint64}))
	must(s.AddClass("Company", "",
		schema.Attr{Name: "Name", Type: encoding.AttrString},
		schema.Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("City", "", schema.Attr{Name: "Name", Type: encoding.AttrString}))
	must(s.AddClass("Division", "",
		schema.Attr{Name: "Belong", Ref: "Company"},
		schema.Attr{Name: "LocatedIn", Ref: "City"}))
	must(s.AddClass("Vehicle", "",
		schema.Attr{Name: "Name", Type: encoding.AttrString},
		schema.Attr{Name: "Color", Type: encoding.AttrString},
		schema.Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("Truck", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))
	must(s.AddClass("AutoCompany", "Company"))
	must(s.AddClass("TruckCompany", "Company"))
	must(s.AddClass("JapaneseAutoCompany", "AutoCompany"))
	if _, err := s.AssignCodes(); err != nil {
		t.Fatal(err)
	}

	st := store.New(s)
	f := &fixture{sch: s, st: st}
	ins := func(class string, attrs store.Attrs) store.OID {
		t.Helper()
		oid, err := st.Insert(class, attrs)
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	// Example 1 (paper Section 3.2). Employee ages: e1=50, e2=60, e3=45.
	f.e1 = ins("Employee", store.Attrs{"Age": 50})
	f.e2 = ins("Employee", store.Attrs{"Age": 60})
	f.e3 = ins("Employee", store.Attrs{"Age": 45})
	// Companies: c1 Subaru (japanese, president e3), c2 Fiat (auto, e1),
	// c3 Renault (auto, e2).
	f.c1 = ins("JapaneseAutoCompany", store.Attrs{"Name": "Subaru", "President": f.e3})
	f.c2 = ins("AutoCompany", store.Attrs{"Name": "Fiat", "President": f.e1})
	f.c3 = ins("AutoCompany", store.Attrs{"Name": "Renault", "President": f.e2})
	// Vehicles: v1 Legacy (vehicle, White, c1), v2 Tipo (automobile,
	// White, c2), v3 Panda (automobile, Red, c2), v4 R5 (compact, Red,
	// c3), v5 Justy (compact, Blue, c1), v6 Uno (compact, White, c2).
	f.v1 = ins("Vehicle", store.Attrs{"Name": "Legacy", "Color": "White", "ManufacturedBy": f.c1})
	f.v2 = ins("Automobile", store.Attrs{"Name": "Tipo", "Color": "White", "ManufacturedBy": f.c2})
	f.v3 = ins("Automobile", store.Attrs{"Name": "Panda", "Color": "Red", "ManufacturedBy": f.c2})
	f.v4 = ins("CompactAutomobile", store.Attrs{"Name": "R5", "Color": "Red", "ManufacturedBy": f.c3})
	f.v5 = ins("CompactAutomobile", store.Attrs{"Name": "Justy", "Color": "Blue", "ManufacturedBy": f.c1})
	f.v6 = ins("CompactAutomobile", store.Attrs{"Name": "Uno", "Color": "White", "ManufacturedBy": f.c2})
	return f
}

// colorIndex builds the class-hierarchy U-index on Vehicle.Color.
func (f *fixture) colorIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := New(pager.NewMemFile(0), f.st, Spec{Name: "veh-color", Root: "Vehicle", Attr: "Color"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix
}

// ageIndex builds the combined path index Vehicle/Company/Employee on Age.
func (f *fixture) ageIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := New(pager.NewMemFile(0), f.st, Spec{
		Name: "veh-age",
		Root: "Vehicle",
		Refs: []string{"ManufacturedBy", "President"},
		Attr: "Age",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix
}

func oidsAt(ms []Match, pos int) map[store.OID]bool {
	out := map[store.OID]bool{}
	for _, m := range ms {
		out[m.Path[pos].OID] = true
	}
	return out
}

func wantOIDs(t *testing.T, got map[store.OID]bool, want ...store.OID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d oids %v, want %d %v", len(got), got, len(want), want)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing oid %d in %v", w, got)
		}
	}
}

func TestIndexValidation(t *testing.T) {
	f := newFixture(t)
	cases := []Spec{
		{Name: "x", Root: "Ghost", Attr: "Color"},
		{Name: "x", Root: "Vehicle", Attr: "Ghost"},
		{Name: "x", Root: "Vehicle", Refs: []string{"Ghost"}, Attr: "Age"},
		{Name: "x", Root: "Vehicle", Refs: []string{"Color"}, Attr: "Age"},                // not a ref
		{Name: "x", Root: "Vehicle", Refs: []string{"ManufacturedBy"}, Attr: "President"}, // ref as attr
	}
	for i, spec := range cases {
		if _, err := New(pager.NewMemFile(0), f.st, spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
	// No coding assigned.
	s2 := schema.New()
	if err := s2.AddClass("A", "", schema.Attr{Name: "x", Type: encoding.AttrUint64}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(pager.NewMemFile(0), store.New(s2), Spec{Name: "x", Root: "A", Attr: "x"}); err == nil {
		t.Error("index over uncoded schema accepted")
	}
}

func TestBuildEntryCount(t *testing.T) {
	f := newFixture(t)
	color := f.colorIndex(t)
	if color.Len() != 6 {
		t.Fatalf("color index has %d entries, want 6", color.Len())
	}
	age := f.ageIndex(t)
	if age.Len() != 6 {
		t.Fatalf("age index has %d entries, want 6 (one per vehicle)", age.Len())
	}
	if got := age.PathClasses(); len(got) != 3 || got[0] != "Vehicle" || got[2] != "Employee" {
		t.Fatalf("PathClasses = %v", got)
	}
}

// TestCHQueries runs the paper's Section 3.3 class-hierarchy queries 1-3.
func TestCHQueries(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	for _, alg := range []Algorithm{Parallel, Forward} {
		t.Run(alg.String(), func(t *testing.T) {
			// Query 1: all vehicles (of all types) with red color.
			ms, _, err := ix.Execute(Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 0), f.v3, f.v4)
			// Query 2: all automobiles (and subclasses) with red color.
			ms, _, err = ix.Execute(Query{Value: Exact("Red"), Positions: []Position{On("Automobile")}}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 0), f.v3, f.v4)
			// All white vehicles.
			ms, _, err = ix.Execute(Query{Value: Exact("White"), Positions: []Position{On("Vehicle")}}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 0), f.v1, f.v2, f.v6)
			// Exact class only: class Vehicle itself, white.
			ms, _, err = ix.Execute(Query{Value: Exact("White"), Positions: []Position{OnExact("Vehicle")}}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 0), f.v1)
			// Exact class Automobile (not compacts), white.
			ms, _, err = ix.Execute(Query{Value: Exact("White"), Positions: []Position{OnExact("Automobile")}}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 0), f.v2)
		})
	}
}

// TestCHQuery4 is the paper's "problematic" query: vehicles that are NOT
// compact automobiles, with red color — expressed as the union of the other
// classes, exercising multi-alternative positions.
func TestCHQuery4(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	q := Query{
		Value: Exact("Red"),
		Positions: []Position{{Alts: []ClassPattern{
			{Class: "Vehicle"},    // exact
			{Class: "Automobile"}, // exact (excludes compacts)
			{Class: "Truck", Subtree: true},
		}}},
	}
	for _, alg := range []Algorithm{Parallel, Forward} {
		ms, _, err := ix.Execute(q, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantOIDs(t, oidsAt(ms, 0), f.v3) // v4 is compact, excluded
	}
}

// TestCHQuery5 is the paper's query 5: automobiles or trucks (with
// subclasses) with red color — "[C5A*, C5B]".
func TestCHQuery5(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	q := Query{Value: Exact("Red"), Positions: []Position{OneOfClasses("Automobile", "Truck")}}
	ms, _, err := ix.Execute(q, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 0), f.v3, f.v4)
}

// TestRangeQueries covers enumerated multi-value and continuous ranges.
func TestRangeQueries(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	// Red or blue compacts.
	ms, _, err := ix.Execute(Query{
		Value:     OneOf("Blue", "Red"),
		Positions: []Position{On("CompactAutomobile")},
	}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 0), f.v4, f.v5)
	// Continuous range Blue..Red over all vehicles (string order:
	// Blue < Red < White).
	ms, _, err = ix.Execute(Query{
		Value:     Range("Blue", "Red"),
		Positions: []Position{On("Vehicle")},
	}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 0), f.v3, f.v4, f.v5)
	// Open-ended range: everything >= Red.
	ms, _, err = ix.Execute(Query{Value: Range("Red", nil)}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 0), f.v1, f.v2, f.v3, f.v4, f.v6)
}

// TestPathQueries runs the paper's Section 3.3 path-index queries.
func TestPathQueries(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	for _, alg := range []Algorithm{Parallel, Forward} {
		t.Run(alg.String(), func(t *testing.T) {
			// Path query 1: vehicles manufactured by a company whose
			// president's age is 50 (president e1 -> Fiat c2 -> v2, v3, v6).
			ms, _, err := ix.Execute(Query{Value: Exact(50)}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 2), f.v2, f.v3, f.v6)
			// Each match carries the full path: employee then company.
			for _, m := range ms {
				if m.Path[0].OID != f.e1 || m.Path[1].OID != f.c2 {
					t.Fatalf("path = %+v", m.Path)
				}
			}
			// Path query 2: same, restricted to a particular company.
			ms, _, err = ix.Execute(Query{
				Value:     Exact(50),
				Positions: []Position{Any, OnObjects("Company", f.c2)},
			}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 2), f.v2, f.v3, f.v6)
			// ... and to a company that does not match.
			ms, _, err = ix.Execute(Query{
				Value:     Exact(50),
				Positions: []Position{Any, OnObjects("Company", f.c1)},
			}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) != 0 {
				t.Fatalf("restricting to c1 still yielded %d matches", len(ms))
			}
			// Path query 4: all companies whose president's age is 50
			// (distinct company prefixes; Distinct=2 covers employee+company).
			ms, _, err = ix.Execute(Query{Value: Exact(50), Distinct: 2}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) != 1 || ms[0].Path[1].OID != f.c2 {
				t.Fatalf("distinct companies = %+v", ms)
			}
			// Age above 50: presidents e1 (50) excluded, e2 (60) included.
			ms, _, err = ix.Execute(Query{Value: Range(51, nil)}, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantOIDs(t, oidsAt(ms, 2), f.v4)
		})
	}
}

// TestCombinedQueries runs the paper's combined class-hierarchy/path
// queries ("find the vehicles manufactured by Japanese autocompanies whose
// President's age is ..."), which neither a CH index nor a plain path index
// can answer alone.
func TestCombinedQueries(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	// Vehicles made by Japanese auto companies whose president is 45
	// (Subaru c1, president e3=45; vehicles v1, v5).
	ms, _, err := ix.Execute(Query{
		Value:     Exact(45),
		Positions: []Position{Any, On("JapaneseAutoCompany")},
	}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 2), f.v1, f.v5)
	// Compact automobiles made by Japanese auto companies (v5 only).
	ms, _, err = ix.Execute(Query{
		Value:     Exact(45),
		Positions: []Position{Any, On("JapaneseAutoCompany"), On("CompactAutomobile")},
	}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 2), f.v5)
	// The paper's query: automobiles (with subclasses) by AutoCompanies
	// with president age above 50 — Renault c3 (e2=60) makes v4.
	ms, _, err = ix.Execute(Query{
		Value:     Range(51, 200),
		Positions: []Position{Any, On("AutoCompany"), On("Automobile")},
	}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 2), f.v4)
}

// TestAlgorithmsAgree: both algorithms must return identical matches on a
// grid of query shapes.
func TestAlgorithmsAgree(t *testing.T) {
	f := newFixture(t)
	color := f.colorIndex(t)
	age := f.ageIndex(t)
	queries := []struct {
		ix *Index
		q  Query
	}{
		{color, Query{Value: Exact("Red")}},
		{color, Query{Value: OneOf("Blue", "Red", "White"), Positions: []Position{On("Automobile")}}},
		{color, Query{Value: Range("Blue", "White")}},
		{color, Query{Value: Exact("White"), Positions: []Position{OnExact("Vehicle")}}},
		{age, Query{Value: Exact(50)}},
		{age, Query{Value: Range(40, 60), Positions: []Position{Any, On("AutoCompany")}}},
		{age, Query{Value: Exact(50), Distinct: 2}},
		{age, Query{Value: OneOf(45, 60), Positions: []Position{Any, Any, On("CompactAutomobile")}}},
	}
	for i, tc := range queries {
		a, _, err := tc.ix.Execute(tc.q, Parallel, nil)
		if err != nil {
			t.Fatalf("query %d parallel: %v", i, err)
		}
		b, _, err := tc.ix.Execute(tc.q, Forward, nil)
		if err != nil {
			t.Fatalf("query %d forward: %v", i, err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: parallel %d matches, forward %d", i, len(a), len(b))
		}
		for j := range a {
			if fmt.Sprint(a[j]) != fmt.Sprint(b[j]) {
				t.Fatalf("query %d: match %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

// TestIncrementalMaintenance: Add/Remove keep the index equal to a fresh
// Build.
func TestIncrementalMaintenance(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	// New employee, company, vehicle added incrementally.
	e4, err := f.st.Insert("Employee", store.Attrs{"Age": 55})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(e4); err != nil {
		t.Fatal(err)
	}
	c4, err := f.st.Insert("TruckCompany", store.Attrs{"Name": "Volvo", "President": e4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(c4); err != nil {
		t.Fatal(err)
	}
	v7, err := f.st.Insert("Truck", store.Attrs{"Name": "FH16", "Color": "Blue", "ManufacturedBy": c4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(v7); err != nil {
		t.Fatal(err)
	}
	ms, _, err := ix.Execute(Query{Value: Exact(55)}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 2), v7)
	if ix.Len() != 7 {
		t.Fatalf("Len = %d, want 7", ix.Len())
	}
	// Remove the vehicle again.
	if err := ix.Remove(v7); err != nil {
		t.Fatal(err)
	}
	if err := f.st.Delete(v7); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 6 {
		t.Fatalf("Len after remove = %d, want 6", ix.Len())
	}
	ms, _, _ = ix.Execute(Query{Value: Exact(55)}, Parallel, nil)
	if len(ms) != 0 {
		t.Fatalf("entries for removed vehicle remain: %v", ms)
	}
}

// TestPresidentSwitch reproduces the paper's running update example
// (Sections 3.5, 4.2): a company replaces its president; all old entries
// are deleted and new ones inserted, as a batch diff.
func TestPresidentSwitch(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	// Fiat (c2) replaces president e1 (50) with e3 (45).
	oldKeys, err := ix.EntriesFor(f.c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldKeys) != 3 {
		t.Fatalf("c2 participates in %d entries, want 3", len(oldKeys))
	}
	if _, err := f.st.SetAttr(f.c2, "President", f.e3); err != nil {
		t.Fatal(err)
	}
	newKeys, err := ix.EntriesFor(f.c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyDiff(oldKeys, newKeys); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 6 {
		t.Fatalf("Len = %d after president switch", ix.Len())
	}
	// Age-50 vehicles are gone; 45 now includes Fiat's fleet.
	ms, _, _ := ix.Execute(Query{Value: Exact(50)}, Parallel, nil)
	if len(ms) != 0 {
		t.Fatalf("stale entries for age 50: %v", ms)
	}
	ms, _, _ = ix.Execute(Query{Value: Exact(45)}, Parallel, nil)
	wantOIDs(t, oidsAt(ms, 2), f.v1, f.v5, f.v2, f.v3, f.v6)
}

// TestTerminalAttrChange: changing the indexed attribute itself.
func TestTerminalAttrChange(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	oldKeys, err := ix.EntriesFor(f.e1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.st.SetAttr(f.e1, "Age", 51); err != nil {
		t.Fatal(err)
	}
	newKeys, err := ix.EntriesFor(f.e1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyDiff(oldKeys, newKeys); err != nil {
		t.Fatal(err)
	}
	ms, _, _ := ix.Execute(Query{Value: Exact(51)}, Parallel, nil)
	wantOIDs(t, oidsAt(ms, 2), f.v2, f.v3, f.v6)
}

// TestMultiValueRefs: a vehicle co-manufactured by two companies appears in
// two path entries (Section 4.3).
func TestMultiValueRefs(t *testing.T) {
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", schema.Attr{Name: "Age", Type: encoding.AttrUint64}))
	must(s.AddClass("Company", "", schema.Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("Vehicle", "",
		schema.Attr{Name: "MadeBy", Ref: "Company", Multi: true}))
	if _, err := s.AssignCodes(); err != nil {
		t.Fatal(err)
	}
	st := store.New(s)
	e, _ := st.Insert("Employee", store.Attrs{"Age": 50})
	ca, _ := st.Insert("Company", store.Attrs{"President": e})
	cb, _ := st.Insert("Company", store.Attrs{"President": e})
	v, _ := st.Insert("Vehicle", store.Attrs{"MadeBy": []store.OID{ca, cb}})
	ix, err := New(pager.NewMemFile(0), st, Spec{Name: "x", Root: "Vehicle", Refs: []string{"MadeBy", "President"}, Attr: "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("multi-value vehicle has %d entries, want 2", ix.Len())
	}
	ms, _, err := ix.Execute(Query{Value: Exact(50)}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("%d matches, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Path[2].OID != v {
			t.Fatalf("path = %+v", m.Path)
		}
	}
	// Deleting the vehicle removes both entries (the "not particularly
	// good" update case the paper flags — both are simple deletes here).
	if err := ix.Remove(v); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after multi-value remove", ix.Len())
	}
}

// TestIndexOverAlternateCoding: a REF cycle forces a per-index coding
// (Section 4.3).
func TestIndexOverAlternateCoding(t *testing.T) {
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "",
		schema.Attr{Name: "Age", Type: encoding.AttrUint64},
		schema.Attr{Name: "Owns", Ref: "Auto", Multi: true}))
	must(s.AddClass("Auto", "",
		schema.Attr{Name: "Mileage", Type: encoding.AttrUint64},
		schema.Attr{Name: "UsedBy", Ref: "Employee"}))
	if _, err := s.AssignCodes(); err != nil {
		t.Fatal(err)
	}
	st := store.New(s)
	e, _ := st.Insert("Employee", store.Attrs{"Age": 30})
	a, _ := st.Insert("Auto", store.Attrs{"Mileage": 90, "UsedBy": e})
	if _, err := st.SetAttr(e, "Owns", []store.OID{a}); err != nil {
		t.Fatal(err)
	}

	// Default coding honors Owns (Auto < Employee), so the Owns-path
	// index works directly.
	ixOwns, err := New(pager.NewMemFile(0), st, Spec{Name: "owns", Root: "Employee", Refs: []string{"Owns"}, Attr: "Mileage"})
	if err != nil {
		t.Fatalf("owns index: %v", err)
	}
	if err := ixOwns.Build(); err != nil {
		t.Fatal(err)
	}
	// The UsedBy path conflicts with the default coding...
	if _, err := New(pager.NewMemFile(0), st, Spec{Name: "used", Root: "Auto", Refs: []string{"UsedBy"}, Attr: "Age"}); err == nil {
		t.Fatal("UsedBy index over default coding accepted")
	}
	// ...and works over the alternate coding.
	alt, err := s.CodingHonoring([]schema.RefEdge{{Source: "Auto", Attr: "UsedBy", Target: "Employee"}})
	if err != nil {
		t.Fatal(err)
	}
	ixUsed, err := New(pager.NewMemFile(0), st, Spec{Name: "used", Root: "Auto", Refs: []string{"UsedBy"}, Attr: "Age", Coding: alt})
	if err != nil {
		t.Fatalf("alternate coding index: %v", err)
	}
	if err := ixUsed.Build(); err != nil {
		t.Fatal(err)
	}
	ms, _, err := ixUsed.Execute(Query{Value: Exact(30)}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Path[1].OID != a {
		t.Fatalf("alternate-coding query = %+v", ms)
	}
}

func TestQueryValidation(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	if _, _, err := ix.Execute(Query{Value: Exact("Red"), Positions: []Position{Any, Any}}, Parallel, nil); err == nil {
		t.Error("too many positions accepted")
	}
	if _, _, err := ix.Execute(Query{Value: Exact("Red"), Distinct: 5}, Parallel, nil); err == nil {
		t.Error("Distinct out of range accepted")
	}
	if _, _, err := ix.Execute(Query{Value: Exact("Red"), Positions: []Position{On("Employee")}}, Parallel, nil); err == nil {
		t.Error("class outside the position hierarchy accepted")
	}
	if _, _, err := ix.Execute(Query{Value: Exact("Red"), Positions: []Position{On("Ghost")}}, Parallel, nil); err == nil {
		t.Error("unknown class accepted")
	}
	if _, _, err := ix.Execute(Query{Value: Exact(42)}, Parallel, nil); err == nil {
		t.Error("type-mismatched value accepted")
	}
	if _, _, err := ix.Execute(Query{Value: Exact("Red")}, Algorithm(9), nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestExecuteFuncEarlyStop(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	n := 0
	_, err := ix.ExecuteFunc(Query{Value: Exact("White")}, Parallel, nil, func(Match) bool {
		n++
		return n < 2
	})
	if err != nil || n != 2 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestStats(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	tr := pager.NewTracker()
	_, stats, err := ix.Execute(Query{Value: Exact("Red")}, Parallel, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesRead == 0 || stats.PagesRead != tr.Reads() {
		t.Fatalf("stats.PagesRead = %d, tracker %d", stats.PagesRead, tr.Reads())
	}
	if stats.Matches != 2 || stats.EntriesScanned < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Algorithm != Parallel {
		t.Fatalf("alg = %v", stats.Algorithm)
	}
	if Parallel.String() != "parallel" || Forward.String() != "forward" || Algorithm(9).String() == "" {
		t.Error("Algorithm.String broken")
	}
}

func TestEntriesForOffPathObject(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	keys, err := ix.EntriesFor(f.e1) // employees are not on the color path
	if err != nil || keys != nil {
		t.Fatalf("EntriesFor(off-path) = %v, %v", keys, err)
	}
	if _, err := ix.EntriesFor(9999); err == nil {
		t.Error("EntriesFor of missing object succeeded")
	}
}

// TestDanglingPathsProduceNoEntries: objects without the attribute or with
// broken chains contribute nothing.
func TestDanglingPathsProduceNoEntries(t *testing.T) {
	f := newFixture(t)
	// A vehicle without a manufacturer has no age-path entries.
	v8, err := f.st.Insert("Vehicle", store.Attrs{"Name": "Orphan", "Color": "Red"})
	if err != nil {
		t.Fatal(err)
	}
	ix := f.ageIndex(t)
	keys, err := ix.EntriesFor(v8)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("orphan vehicle has %d age entries", len(keys))
	}
	// But it does appear in the color index.
	color := f.colorIndex(t)
	keys, err = color.EntriesFor(v8)
	if err != nil || len(keys) != 1 {
		t.Fatalf("orphan color entries = %d, %v", len(keys), err)
	}
	// An employee without an Age contributes no entries anywhere.
	e5, _ := f.st.Insert("Employee", store.Attrs{})
	keys, err = ix.EntriesFor(e5)
	if err != nil || len(keys) != 0 {
		t.Fatalf("ageless employee entries = %d, %v", len(keys), err)
	}
}

// TestBuildNonEmptyFails guards double builds.
func TestBuildNonEmptyFails(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	if err := ix.Build(); err == nil {
		t.Error("second Build succeeded")
	}
}

// TestDistinctSkipEfficiency: the paper's query-4 point — with Distinct the
// parallel algorithm skips the vehicle clusters and touches fewer entries.
func TestDistinctSkipEfficiency(t *testing.T) {
	f := newFixture(t)
	// Inflate Fiat's fleet so the cluster is worth skipping.
	for i := 0; i < 500; i++ {
		v, err := f.st.Insert("Automobile", store.Attrs{
			"Name": fmt.Sprintf("Model%d", i), "Color": "Grey", "ManufacturedBy": f.c2})
		if err != nil {
			t.Fatal(err)
		}
		_ = v
	}
	ix := f.ageIndex(t)
	_, full, err := ix.Execute(Query{Value: Exact(50)}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, dist, err := ix.Execute(Query{Value: Exact(50), Distinct: 2}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("distinct companies = %d", len(ms))
	}
	if dist.EntriesScanned >= full.EntriesScanned/10 {
		t.Fatalf("distinct scan inspected %d entries vs %d full; skip ineffective",
			dist.EntriesScanned, full.EntriesScanned)
	}
}

func TestExplain(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	out, err := ix.Explain(Query{
		Value:     Exact(50),
		Positions: []Position{Any, On("AutoCompany"), On("Automobile")},
		Distinct:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"search intervals", "C2A*", "C5A*", "distinct prefixes of 2", "Vehicle/Company/Employee"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	// Range plans render infinities.
	out, err = ix.Explain(Query{Value: Range(nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-inf") || !strings.Contains(out, "+inf") {
		t.Errorf("open range not rendered:\n%s", out)
	}
	// Wide value lists are truncated in the rendering.
	out, err = ix.Explain(Query{Value: Uint64Range(1, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "more") {
		t.Errorf("interval list not truncated:\n%s", out)
	}
	// Compile errors propagate.
	if _, err := ix.Explain(Query{Value: Exact("wrong type")}); err == nil {
		t.Error("Explain of invalid query succeeded")
	}
}
