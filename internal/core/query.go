package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/store"
)

// ValuePred restricts the indexed attribute value. Exactly one form is
// active: an enumerated list of values (the paper's translation of range
// expressions "extract next j values for the range", Algorithm 1), or a
// continuous inclusive range (used when enumeration is impractical, e.g.
// unique keys over a large domain).
type ValuePred struct {
	Values []any // enumerated values; nil selects the range form
	Lo, Hi any   // inclusive bounds; nil = open end (range form only)
}

// Exact returns a ValuePred matching one value.
func Exact(v any) ValuePred { return ValuePred{Values: []any{v}} }

// OneOf returns a ValuePred matching any of the listed values.
func OneOf(vs ...any) ValuePred { return ValuePred{Values: vs} }

// Range returns a continuous inclusive range predicate.
func Range(lo, hi any) ValuePred { return ValuePred{Lo: lo, Hi: hi} }

// Uint64Range enumerates an integer range (the paper's preferred
// translation for small ranges).
func Uint64Range(lo, hi uint64) ValuePred {
	var vs []any
	for v := lo; v <= hi; v++ {
		vs = append(vs, v)
		if v == hi { // guard wrap-around at MaxUint64
			break
		}
	}
	return ValuePred{Values: vs}
}

// ClassPattern restricts one path position to a class, optionally with its
// whole subtree (the paper's "C5A*" regular expression), optionally to
// specific object ids (the paper's Valᵢ component).
type ClassPattern struct {
	Class   string
	Subtree bool
	OIDs    []store.OID
}

// Position restricts one path position (terminal-first, matching both the
// key layout and the paper's query syntax). The zero value is a wildcard.
type Position struct {
	Alts []ClassPattern // disjunction; empty = any class at this position
}

// Any is the wildcard position.
var Any = Position{}

// On builds a position matching the subtree rooted at class (the common
// case: "this class and its subclasses").
func On(class string) Position {
	return Position{Alts: []ClassPattern{{Class: class, Subtree: true}}}
}

// OnExact builds a position matching the class only, without subclasses.
func OnExact(class string) Position {
	return Position{Alts: []ClassPattern{{Class: class}}}
}

// OnObjects builds a position matching specific objects of a class (or any
// of its subclasses — the objects pin the entries; the class only scopes
// validation). This is the paper's Valᵢ component: "2) actual value - i.e
// object-id for some class".
func OnObjects(class string, oids ...store.OID) Position {
	return Position{Alts: []ClassPattern{{Class: class, Subtree: true, OIDs: oids}}}
}

// Where builds a position restricted by a predicate on the position
// class's own attributes — the paper's Valᵢ form "4) a predicate". As in
// the paper's query 3 ("The companies' object-ids must be first restricted
// by a select operation"), the predicate is evaluated by a store select
// over the class hierarchy and the resulting object ids restrict the
// position.
func (ix *Index) Where(class, attr string, pred func(any) bool) Position {
	oids := ix.st.Select(class, attr, pred)
	if len(oids) == 0 {
		// An impossible position: restrict to no objects. A zero-OID
		// pattern matches nothing (OIDs start at 1).
		return Position{Alts: []ClassPattern{{Class: class, Subtree: true, OIDs: []store.OID{0}}}}
	}
	return Position{Alts: []ClassPattern{{Class: class, Subtree: true, OIDs: oids}}}
}

// Store exposes the object store the index is built over (used by the
// query language's predicate restrictions).
func (ix *Index) Store() *store.Store { return ix.st }

// OneOfClasses builds a position matching any of several subtrees (the
// paper's query 5: "[C5A*, C5B]").
func OneOfClasses(subtrees ...string) Position {
	p := Position{}
	for _, c := range subtrees {
		p.Alts = append(p.Alts, ClassPattern{Class: c, Subtree: true})
	}
	return p
}

// Query is the general query of Section 3.4:
//
//	(attr-value, Class-code₁ Val₁, Class-code₂ Val₂, …)
//
// Positions are terminal-first (key order). Missing trailing positions are
// wildcards. Distinct > 0 requests distinct path prefixes of that many
// positions: after the first match of a cluster the scan skips the rest of
// it (the paper's query 4 — "find all companies whose president's age is
// 50" over a Vehicle path index).
type Query struct {
	Value     ValuePred
	Positions []Position
	Distinct  int
}

// Match is one query result.
type Match struct {
	Value any                  // decoded attribute value
	Path  []encoding.PathEntry // terminal-first; truncated to Distinct when set
}

// plan is a compiled query.
type plan struct {
	intervals []btree.Interval
	// valueIntervals cover whole attribute-value clusters without any
	// class positioning: one per enumerated value (or one for a range).
	// The forward-scanning baseline uses these — per the paper it finds
	// "the first relevant index entry using the standard B-tree search"
	// for each search key and then scans the entire value cluster,
	// filtering classes by inspection rather than by seeking.
	valueIntervals []btree.Interval
	q              Query
	patterns       [][]compiledPattern // per position, resolved codes
}

type compiledPattern struct {
	code    encoding.Code
	subtree bool
	oids    map[store.OID]bool // nil = unrestricted
}

// maxPinnedPrefixes caps the interval fan-out of the compiler.
const maxPinnedPrefixes = 8192

// compile turns a query into (a) a set of key intervals for the tree scan
// and (b) residual per-position patterns for the matcher. The compiler
// extends interval prefixes through positions as long as they pin a single
// (class, oid) point — exactly the paper's construction of partial keys in
// Algorithm 1 — and leaves the rest to the matcher, whose skip requests
// reproduce the parent-node skip of Section 3.3.
func (ix *Index) compile(q Query) (*plan, error) {
	if len(q.Positions) > len(ix.pathCls) {
		return nil, fmt.Errorf("core: query has %d positions, index path has %d", len(q.Positions), len(ix.pathCls))
	}
	if q.Distinct < 0 || q.Distinct > len(ix.pathCls) {
		return nil, fmt.Errorf("core: Distinct=%d out of range", q.Distinct)
	}
	p := &plan{q: q}
	// Resolve class names to codes and validate subtree membership.
	for pi, pos := range q.Positions {
		declared := ix.pathCls[len(ix.pathCls)-1-pi] // terminal-first
		var pats []compiledPattern
		for _, alt := range pos.Alts {
			code, ok := ix.coding.Code(alt.Class)
			if !ok {
				return nil, fmt.Errorf("core: unknown class %q in query", alt.Class)
			}
			declCode := ix.coding.MustCode(declared)
			if !declCode.IsAncestorOrSelf(code) {
				return nil, fmt.Errorf("core: class %q is outside position %d (%s hierarchy)", alt.Class, pi, declared)
			}
			if len(alt.OIDs) > 0 {
				// Resolve each object to its actual class code, so
				// the pattern pins exact key points even when the
				// object is a subclass instance. Objects no longer
				// in the store keep the declared code with an OID
				// filter (conservative: no entries should match).
				for _, o := range alt.OIDs {
					cp := compiledPattern{code: code, oids: map[store.OID]bool{o: true}}
					if obj, ok := ix.st.Get(o); ok {
						actual, okc := ix.coding.Code(obj.Class)
						if okc && code.IsAncestorOrSelf(actual) {
							cp.code = actual
						} else if !alt.Subtree {
							cp.code = code
						} else {
							cp.subtree = true
						}
					} else if alt.Subtree {
						cp.subtree = true
					}
					pats = append(pats, cp)
				}
				continue
			}
			pats = append(pats, compiledPattern{code: code, subtree: alt.Subtree})
		}
		p.patterns = append(p.patterns, pats)
	}

	// Attribute-value prefixes.
	var prefixes [][]byte
	if q.Value.Values == nil {
		// Continuous range: one interval, everything residual.
		var lo, hi []byte
		if q.Value.Lo != nil {
			b, err := ix.attrType.EncodeValue(q.Value.Lo)
			if err != nil {
				return nil, err
			}
			lo = b
		}
		if q.Value.Hi != nil {
			b, err := ix.attrType.EncodeValue(q.Value.Hi)
			if err != nil {
				return nil, err
			}
			hi = encoding.PrefixEnd(b) // inclusive upper value
		}
		p.intervals = []btree.Interval{{Lo: lo, Hi: hi}}
		p.valueIntervals = p.intervals
		return p, nil
	}
	for _, v := range q.Value.Values {
		b, err := ix.attrType.EncodeValue(v)
		if err != nil {
			return nil, err
		}
		prefixes = append(prefixes, b)
		p.valueIntervals = append(p.valueIntervals, btree.Interval{Lo: b, Hi: encoding.PrefixEnd(b)})
	}

	// Extend prefixes through pinned positions.
	pos := 0
	for ; pos < len(p.patterns); pos++ {
		pats := p.patterns[pos]
		if len(pats) == 0 {
			break // wildcard
		}
		pinnable := true
		points := 0
		for _, cp := range pats {
			if cp.subtree || cp.oids == nil {
				pinnable = false
				break
			}
			points += len(cp.oids)
		}
		if !pinnable || len(prefixes)*points > maxPinnedPrefixes {
			break
		}
		var next [][]byte
		for _, pre := range prefixes {
			for _, cp := range pats {
				for oid := range cp.oids {
					key := append([]byte(nil), pre...)
					key = encoding.AppendKey(key, nil, []encoding.PathEntry{{Code: cp.code, OID: oid}})
					next = append(next, key)
				}
			}
		}
		prefixes = next
	}

	// Emit intervals at the first unpinned position.
	if pos == len(ix.pathCls) {
		// Every position pinned: each prefix is one exact key.
		for _, pre := range prefixes {
			p.intervals = append(p.intervals, btree.Interval{
				Lo: pre,
				Hi: append(append([]byte(nil), pre...), 0x00),
			})
		}
		return p, nil
	}
	for _, pre := range prefixes {
		if pos < len(p.patterns) && len(p.patterns[pos]) > 0 {
			for _, cp := range p.patterns[pos] {
				if cp.subtree {
					// [pre‖code, pre‖code‖'/'): the class and its
					// whole subtree.
					lo := append(append([]byte(nil), pre...), cp.code...)
					hi := append(append([]byte(nil), pre...), cp.code.SubtreeEnd()...)
					p.intervals = append(p.intervals, btree.Interval{Lo: lo, Hi: hi})
				} else {
					// [pre‖code‖'$', pre‖code‖'%'): the class only.
					lo := append(append([]byte(nil), pre...), cp.code...)
					lo = append(lo, encoding.SepByte)
					hi := append(append([]byte(nil), pre...), cp.code...)
					hi = append(hi, encoding.SepSuccByte)
					p.intervals = append(p.intervals, btree.Interval{Lo: lo, Hi: hi})
				}
			}
		} else {
			// Wildcard: the whole cluster under the prefix.
			p.intervals = append(p.intervals, btree.Interval{Lo: pre, Hi: encoding.PrefixEnd(pre)})
		}
	}
	return p, nil
}

// matchScratch is the reusable per-execution state of matchKey: the parsed
// path and offset slices, the class-code intern table, and the Match handed
// to the emit callback. One scan reuses it for every entry inspected, so
// the per-entry parse allocates nothing in steady state; only an actual
// match allocates (the Path copy the caller is allowed to retain). A
// scratch belongs to one execution goroutine — runPlan owns one per call.
type matchScratch struct {
	path  []encoding.PathEntry
	offs  []int
	codes encoding.CodeInterner
	match Match
}

// matchKey checks a key against the residual patterns. It returns whether
// the key matches, and — on mismatch or after a Distinct match — the skip
// key for the parallel algorithm (nil when plain advancement is fine).
// The returned Match (and everything it references except Path) is only
// valid until the next matchKey call on the same scratch.
func (p *plan) matchKey(ix *Index, key []byte, sc *matchScratch) (m *Match, skipTo []byte, err error) {
	attr, path, offs, err := sc.split(ix.attrType, key)
	if err != nil {
		return nil, nil, err
	}
	for pi, pats := range p.patterns {
		if len(pats) == 0 {
			continue
		}
		if pi >= len(path) {
			return nil, nil, fmt.Errorf("core: key has %d positions, query expects %d", len(path), len(p.patterns))
		}
		ok := false
		for _, cp := range pats {
			if cp.subtree {
				if !cp.code.IsAncestorOrSelf(path[pi].Code) {
					continue
				}
			} else if cp.code != path[pi].Code {
				continue
			}
			if cp.oids != nil && !cp.oids[path[pi].OID] {
				continue
			}
			ok = true
			break
		}
		if !ok {
			return nil, p.skipFor(key, attr, path, offs, pi, pats), nil
		}
	}
	v, err := ix.attrType.DecodeValue(attr)
	if err != nil {
		return nil, nil, err
	}
	if p.q.Distinct > 0 && p.q.Distinct <= len(path) {
		path = path[:p.q.Distinct]
		skipTo = skipPast(key, offs[p.q.Distinct-1])
	}
	// The emitted Path must survive the next key (callers retain it), so
	// the match — and only the match — copies out of the scratch.
	sc.match = Match{Value: v, Path: append([]encoding.PathEntry(nil), path...)}
	return &sc.match, skipTo, nil
}

// split parses a composite key into the scratch, returning the
// attribute-value bytes, the path entries, and for each entry the byte
// offset just past it (used to build skip keys). The returned slices alias
// the scratch and are only valid until the next split.
func (sc *matchScratch) split(t encoding.AttrType, key []byte) (attr []byte, path []encoding.PathEntry, offs []int, err error) {
	attr, rest, err := t.SplitValue(key)
	if err != nil {
		return nil, nil, nil, err
	}
	path, err = encoding.AppendSplitPath(sc.path[:0], rest, &sc.codes)
	if err != nil {
		return nil, nil, nil, err
	}
	sc.path = path
	offs = sc.offs[:0]
	off := len(attr)
	for _, pe := range path {
		off += len(pe.Code) + 1 + encoding.OIDSize
		offs = append(offs, off)
	}
	sc.offs = offs
	return attr, path, offs, nil
}

// skipFor computes the resume key after a mismatch at position pi: the
// paper's search-tree move. If some alternative's class cluster begins
// after the current component within the same parent cluster, seek directly
// to it; otherwise skip the whole parent cluster, since nothing below it
// can match position pi anymore.
func (p *plan) skipFor(key, attr []byte, path []encoding.PathEntry, offs []int, pi int, pats []compiledPattern) []byte {
	start := len(attr)
	if pi > 0 {
		start = offs[pi-1]
	}
	curComp := key[start:offs[pi]]
	var best []byte
	consider := func(cand []byte) {
		if bytes.Compare(cand, curComp) > 0 && (best == nil || bytes.Compare(cand, best) < 0) {
			best = cand
		}
	}
	for _, cp := range pats {
		switch {
		case cp.oids != nil && cp.subtree:
			// Allowed objects of an unenumerable code set may begin
			// anywhere after the current component; only the current
			// component's own cluster is safely skippable.
			return skipPast(key, offs[pi])
		case cp.oids != nil:
			// Jump to the next allowed (code, oid) point.
			for oid := range cp.oids {
				cand := make([]byte, 0, len(cp.code)+1+encoding.OIDSize)
				cand = append(cand, cp.code...)
				cand = append(cand, encoding.SepByte)
				cand = binary.BigEndian.AppendUint32(cand, uint32(oid))
				consider(cand)
			}
		case cp.subtree:
			consider([]byte(cp.code))
		default:
			consider(append([]byte(cp.code), encoding.SepByte))
		}
	}
	if best != nil {
		out := make([]byte, 0, start+len(best))
		out = append(out, key[:start]...)
		return append(out, best...)
	}
	// Every alternative lies before the current component: the rest of
	// the parent cluster is irrelevant too.
	return skipPast(key, start)
}

// skipPast returns the smallest key beyond every key sharing key[:end]. The
// next byte after a completed path component is always a code character
// (below 0xFF), so appending 0xFF is a valid exclusive successor.
func skipPast(key []byte, end int) []byte {
	out := make([]byte, end+1)
	copy(out, key[:end])
	out[end] = 0xFF
	return out
}
