package core

import (
	"path/filepath"
	"testing"

	"repro/internal/pager"
)

// TestPersistReopen builds an index in a disk page file, flushes it, and
// reopens it cold — every query must survive the round trip.
func TestPersistReopen(t *testing.T) {
	f := newFixture(t)
	path := filepath.Join(t.TempDir(), "age.idx")
	pf, err := pager.CreateDiskFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Name: "veh-age", Root: "Vehicle",
		Refs: []string{"ManufacturedBy", "President"}, Attr: "Age",
	}
	ix, err := New(pf, f.st, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	// Metadata is written copy-on-write, so the meta id must be read
	// after the Flush that produced it.
	meta := ix.MetaPage()
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen cold.
	pf2, err := pager.OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	re, err := Open(pf2, f.st, spec, meta)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if re.Len() != 6 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	ms, stats, err := re.Execute(Query{Value: Exact(50)}, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOIDs(t, oidsAt(ms, 2), f.v2, f.v3, f.v6)
	if stats.PagesRead == 0 {
		t.Fatal("no pages read from the reopened index")
	}
	// The reopened index stays mutable.
	v7, err := f.st.Insert("Truck", map[string]any{
		"Name": "FH16", "Color": "Blue", "ManufacturedBy": f.c2})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Add(v7); err != nil {
		t.Fatal(err)
	}
	ms, _, _ = re.Execute(Query{Value: Exact(50)}, Parallel, nil)
	if len(ms) != 4 {
		t.Fatalf("matches after post-reopen insert = %d", len(ms))
	}
	if err := re.Tree().Check(); err != nil {
		t.Fatal(err)
	}
	// Opening garbage must fail cleanly.
	if _, err := Open(pf2, f.st, spec, meta+1); err == nil {
		t.Error("Open on a non-meta page succeeded")
	}
}
