package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/encoding"
	"repro/internal/pager"
)

// newSharded builds a Sharded group of n shards next to (not over) an
// existing unsharded index's spec and store.
func newSharded(t *testing.T, f *fixture, spec Spec, n int) *Sharded {
	t.Helper()
	proto, err := New(pager.NewMemFile(0), f.st, spec)
	if err != nil {
		t.Fatal(err)
	}
	smap := NewShardMap(proto.ShardCodes(), n)
	shards := []*Index{proto}
	for i := 1; i < smap.Shards(); i++ {
		ix, err := New(pager.NewMemFile(0), f.st, spec)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, ix)
	}
	sh, err := NewSharded(shards, smap)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Build(); err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestShardMapRouting(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	codes := ix.ShardCodes()
	// The Vehicle hierarchy has 4 classes: Vehicle, Automobile,
	// CompactAutomobile, Truck.
	if len(codes) != 4 {
		t.Fatalf("got %d shard codes %v, want 4", len(codes), codes)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i] <= codes[i-1] {
			t.Fatalf("shard codes not ascending: %v", codes)
		}
	}
	m := NewShardMap(codes, 4)
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", m.Shards())
	}
	// Each class code routes to its own shard, in code order.
	for i, c := range codes {
		if got := m.ShardOf(c); got != i {
			t.Errorf("ShardOf(%s) = %d, want %d", c, got, i)
		}
	}
	// A subclass added later (no exact boundary) still routes into its
	// ancestor's interval, not out of range.
	child, err := codes[1].Child("zz")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ShardOf(child); got < m.ShardOf(codes[1]) || got >= m.Shards() {
		t.Errorf("ShardOf(descendant %s) = %d out of range", child, got)
	}
	// Requesting more shards than codes clamps.
	if got := NewShardMap(codes, 64).Shards(); got != 4 {
		t.Errorf("NewShardMap(4 codes, 64).Shards() = %d, want 4", got)
	}
	// Bounds round-trip.
	m2, err := ShardMapFromBounds(m.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.Bounds(), m.Bounds()) {
		t.Errorf("bounds round-trip mismatch: %v vs %v", m2.Bounds(), m.Bounds())
	}
	if _, err := ShardMapFromBounds([]encoding.Code{"C2", "C1"}); err == nil {
		t.Error("ShardMapFromBounds accepted descending bounds")
	}
}

func TestShardOfKeyParsesTerminalCode(t *testing.T) {
	f := newFixture(t)
	ix := f.colorIndex(t)
	m := NewShardMap(ix.ShardCodes(), 4)
	keys, err := ix.EntriesFor(f.v4) // CompactAutomobile, Red
	if err != nil || len(keys) != 1 {
		t.Fatalf("EntriesFor: %v keys, err %v", len(keys), err)
	}
	want := m.ShardOf(ix.Coding().MustCode("CompactAutomobile"))
	got, err := m.ShardOfKey(ix.AttrType(), keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ShardOfKey = %d, want %d (routes on the object's class, not the attr value)", got, want)
	}
}

// TestShardedInvariance is the core-level invariance check: for every shard
// count, every algorithm, and a battery of query shapes, the sharded
// executor returns byte-identical matches in identical order to the
// unsharded index, with identical Matches/EntriesScanned counts.
func TestShardedInvariance(t *testing.T) {
	f := newFixture(t)
	flat := f.colorIndex(t)
	flatAge := f.ageIndex(t)

	colorQueries := []Query{
		{Value: Exact("Red"), Positions: []Position{On("Vehicle")}},
		{Value: Exact("Red"), Positions: []Position{On("Automobile")}},
		{Value: Exact("White"), Positions: []Position{OnExact("Automobile")}},
		{Value: OneOf("Red", "Blue"), Positions: []Position{OneOfClasses("CompactAutomobile", "Truck")}},
		{Value: Range(nil, nil), Positions: []Position{On("Vehicle")}},
		{Value: Range("Blue", "Red"), Positions: []Position{On("Vehicle")}},
		{Value: Exact("White"), Positions: []Position{OnObjects("Vehicle", f.v1, f.v6)}},
	}
	ageQueries := []Query{
		{Value: Exact(uint64(50)), Positions: []Position{Any, Any, On("Vehicle")}},
		{Value: Uint64Range(45, 60), Positions: []Position{On("Employee"), On("AutoCompany")}},
		{Value: Exact(uint64(50)), Positions: []Position{Any, Any, On("Vehicle")}, Distinct: 2},
		{Value: Range(uint64(40), uint64(60)), Positions: []Position{Any, OnObjects("Company", f.c2)}},
	}

	check := func(t *testing.T, flat *Index, sh *Sharded, queries []Query) {
		t.Helper()
		for qi, q := range queries {
			for _, alg := range []Algorithm{Parallel, Forward} {
				want, wantStats, err := flat.Execute(q, alg, nil)
				if err != nil {
					t.Fatalf("q%d %v flat: %v", qi, alg, err)
				}
				ec := &ExecContext{Algorithm: alg}
				var got []Match
				gotStats, err := sh.ExecuteCtx(context.Background(), q, ec, func(m Match) bool {
					got = append(got, m)
					return true
				})
				if err != nil {
					t.Fatalf("q%d %v sharded: %v", qi, alg, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("q%d %v: sharded matches diverge\n got %v\nwant %v", qi, alg, got, want)
				}
				if gotStats.Matches != wantStats.Matches {
					t.Errorf("q%d %v: Matches %d, want %d", qi, alg, gotStats.Matches, wantStats.Matches)
				}
				// Parallel skips irrelevant clusters in both engines, so its
				// scan count is invariant. The forward baseline wades through
				// whole value clusters; shard pruning legitimately spares it
				// entries of classes outside the queried subtree, so sharded
				// may scan fewer — never more.
				if alg == Parallel && gotStats.EntriesScanned != wantStats.EntriesScanned {
					t.Errorf("q%d %v: EntriesScanned %d, want %d", qi, alg, gotStats.EntriesScanned, wantStats.EntriesScanned)
				}
				if alg == Forward && gotStats.EntriesScanned > wantStats.EntriesScanned {
					t.Errorf("q%d %v: EntriesScanned %d exceeds flat %d", qi, alg, gotStats.EntriesScanned, wantStats.EntriesScanned)
				}
			}
		}
	}

	for _, n := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("color-shards-%d", n), func(t *testing.T) {
			sh := newSharded(t, f, Spec{Name: "veh-color-sh", Root: "Vehicle", Attr: "Color"}, n)
			if sh.Len() != flat.Len() {
				t.Fatalf("sharded Len %d, want %d", sh.Len(), flat.Len())
			}
			check(t, flat, sh, colorQueries)
		})
	}
	// The age path index's terminal hierarchy (Employee) has one class, so
	// the map clamps to one shard; the group must still behave identically.
	t.Run("age-path", func(t *testing.T) {
		sh := newSharded(t, f, Spec{
			Name: "veh-age-sh", Root: "Vehicle",
			Refs: []string{"ManufacturedBy", "President"}, Attr: "Age",
		}, 4)
		if got := sh.NumShards(); got != 1 {
			t.Fatalf("path index shards = %d, want 1 (single terminal class)", got)
		}
		check(t, flatAge, sh, ageQueries)
	})
}

// TestShardedSinglePageCountInvariance: at one shard the sharded executor
// must report the exact PagesRead of the unsharded engine (same tree, same
// tracker semantics) — the paper's Table 1 / Figs 5-8 logical counts.
func TestShardedSinglePageCountInvariance(t *testing.T) {
	f := newFixture(t)
	flat := f.colorIndex(t)
	sh := newSharded(t, f, Spec{Name: "c1", Root: "Vehicle", Attr: "Color"}, 1)
	q := Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}
	for _, alg := range []Algorithm{Parallel, Forward} {
		_, want, err := flat.Execute(q, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := sh.Execute(q, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.PagesRead != want.PagesRead {
			t.Errorf("%v: single-shard PagesRead %d, want %d", alg, got.PagesRead, want.PagesRead)
		}
	}
}

// TestShardedMutationRouting: incremental Add/Remove/ApplyDiff through the
// sharded group keeps every shard's subset disjoint and the union equal to a
// freshly built unsharded index.
func TestShardedMutationRouting(t *testing.T) {
	f := newFixture(t)
	spec := Spec{Name: "c-mut", Root: "Vehicle", Attr: "Color"}
	sh := newSharded(t, f, spec, 4)

	oid, err := f.st.Insert("Truck", map[string]any{"Color": "Green"})
	if err != nil {
		t.Fatal(err)
	}
	all := sh.WriteShards("Truck")
	if len(all) != 1 {
		t.Fatalf("WriteShards(CH class) = %v, want a single shard", all)
	}
	sh.LockShards(all)
	err = sh.Add(oid)
	sh.UnlockShards(all)
	if err != nil {
		t.Fatal(err)
	}
	// Recolor via ApplyDiff routing.
	old, _ := sh.EntriesFor(oid)
	if _, err := f.st.SetAttr(oid, "Color", "Red"); err != nil {
		t.Fatal(err)
	}
	nw, _ := sh.EntriesFor(oid)
	sh.LockShards(all)
	err = sh.ApplyDiff(old, nw)
	sh.UnlockShards(all)
	if err != nil {
		t.Fatal(err)
	}

	// Compare against a rebuilt flat index over the same store state.
	flat, err := New(pager.NewMemFile(0), f.st, Spec{Name: "c-flat", Root: "Vehicle", Attr: "Color"})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Build(); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != flat.Len() {
		t.Fatalf("after mutations: sharded Len %d, flat %d", sh.Len(), flat.Len())
	}
	q := Query{Value: Range(nil, nil), Positions: []Position{On("Vehicle")}}
	want, _, err := flat.Execute(q, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sh.Execute(q, Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after mutations: sharded %v, want %v", got, want)
	}

	// Remove and re-verify shard disjointness via total length.
	sh.LockShards(all)
	err = sh.Remove(oid)
	sh.UnlockShards(all)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.st.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != flat.Len()-1 {
		t.Fatalf("after Remove: Len %d, want %d", sh.Len(), flat.Len()-1)
	}
}

// TestShardedSnapshotIsolation: a sharded snapshot pins every shard; writes
// after the pin are invisible through it.
func TestShardedSnapshotIsolation(t *testing.T) {
	f := newFixture(t)
	sh := newSharded(t, f, Spec{Name: "c-snap", Root: "Vehicle", Attr: "Color"}, 3)
	snap := sh.Snapshot()
	defer snap.Release()
	before := snap.Len()

	oid, err := f.st.Insert("Automobile", map[string]any{"Color": "Red"})
	if err != nil {
		t.Fatal(err)
	}
	ws := sh.WriteShards("Automobile")
	sh.LockShards(ws)
	err = sh.Add(oid)
	sh.UnlockShards(ws)
	if err != nil {
		t.Fatal(err)
	}

	if snap.Len() != before {
		t.Fatalf("snapshot Len moved from %d to %d after a write", before, snap.Len())
	}
	q := Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}
	var snapN, liveN int
	if _, err := snap.ExecuteCtx(context.Background(), q, &ExecContext{}, func(Match) bool { snapN++; return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ExecuteCtx(context.Background(), q, &ExecContext{}, func(Match) bool { liveN++; return true }); err != nil {
		t.Fatal(err)
	}
	if liveN != snapN+1 {
		t.Fatalf("live matches %d, snapshot %d; want live = snapshot+1", liveN, snapN)
	}
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
}
