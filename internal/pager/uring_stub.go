//go:build !linux || nouring

package pager

// UringAvailable reports whether batched reads go through io_uring; this
// build (non-Linux, or the `nouring` escape hatch) always uses the portable
// bounded-goroutine fallback.
func UringAvailable() bool { return false }

// uringReadRuns reports false so readRuns takes the portable path.
func uringReadRuns(fd uintptr, runs []ioRun, errs []error) bool { return false }
