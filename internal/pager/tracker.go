package pager

// Tracker counts the distinct pages touched by a single query. The paper's
// experiments report "number of pages read" per query under the assumption
// that a page fetched once stays in the buffer for the remainder of that
// query ("... and continue the search from there on in parallel, utilizing
// any page which is already in memory", Section 3.3). Every index structure
// in this repository routes node fetches through a Tracker so that the
// reported counts share that model.
//
// A nil *Tracker is valid everywhere and counts nothing, so read paths that
// do not care about accounting can pass nil.
//
// A Tracker is NOT safe for concurrent use: it is per-query state. The
// concurrency contract of the engine is one Tracker per goroutine (the core
// package's ExecContext creates one per query); per-goroutine trackers are
// combined afterwards with Merge, which deduplicates pages the goroutines
// touched in common, so experiment-level "distinct pages read" totals are
// identical whether the queries ran sequentially under one shared tracker
// or concurrently under private ones.
type Tracker struct {
	seen  map[PageID]struct{}
	reads int
	// CPU-cost counters of the zero-copy read path: how often a node
	// fetch was served by a decoded-node cache vs. had to decode page
	// bytes, and how many entry bytes those decodes materialized. They
	// are deliberately separate from the logical page counts above —
	// Touch is always called before any cache is consulted, so the
	// paper's page-read metric is identical whatever these report.
	cacheHits    int
	cacheMisses  int
	bytesDecoded int64
	// prefetchIssued counts pages this query's scans handed to the
	// background prefetcher. Like the cache counters it never feeds the
	// logical page counts: prefetching a page does not Touch it.
	prefetchIssued int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{seen: make(map[PageID]struct{})}
}

// Touch records a page access. It returns true when the page had not been
// touched before by this tracker (i.e. the access counts as a page read).
func (t *Tracker) Touch(id PageID) bool {
	if t == nil {
		return false
	}
	if _, ok := t.seen[id]; ok {
		return false
	}
	t.seen[id] = struct{}{}
	t.reads++
	return true
}

// Touched reports whether the page has been counted already.
func (t *Tracker) Touched(id PageID) bool {
	if t == nil {
		return false
	}
	_, ok := t.seen[id]
	return ok
}

// Reads returns the number of distinct pages touched so far.
func (t *Tracker) Reads() int {
	if t == nil {
		return 0
	}
	return t.reads
}

// NoteNodeCache records the outcome of one decoded-node cache probe: a hit
// cost nothing, a miss materialized bytesDecoded entry bytes (a lazy page
// view charges only the run it walked; a full decode charges the whole
// entry area).
func (t *Tracker) NoteNodeCache(hit bool, bytesDecoded int) {
	if t == nil {
		return
	}
	if hit {
		t.cacheHits++
		return
	}
	t.cacheMisses++
	t.bytesDecoded += int64(bytesDecoded)
}

// CacheHits returns the number of node fetches served from a decoded-node
// cache.
func (t *Tracker) CacheHits() int {
	if t == nil {
		return 0
	}
	return t.cacheHits
}

// CacheMisses returns the number of node fetches that had to decode page
// bytes.
func (t *Tracker) CacheMisses() int {
	if t == nil {
		return 0
	}
	return t.cacheMisses
}

// NotePrefetch records that the query's scan handed pages to the background
// prefetcher. This is accounting only; prefetched pages are never Touched,
// so the paper's page-read counts are identical with prefetching on or off.
func (t *Tracker) NotePrefetch(pages int) {
	if t == nil {
		return
	}
	t.prefetchIssued += pages
}

// PrefetchIssued returns the number of pages handed to the prefetcher.
func (t *Tracker) PrefetchIssued() int {
	if t == nil {
		return 0
	}
	return t.prefetchIssued
}

// BytesDecoded returns the total entry bytes materialized by node decodes.
func (t *Tracker) BytesDecoded() int64 {
	if t == nil {
		return 0
	}
	return t.bytesDecoded
}

// Merge folds the pages seen by other into t without double-counting:
// after the call t.Reads() is the number of distinct pages touched by
// either tracker. other may be nil or empty. Merging the per-goroutine
// trackers of a concurrent run therefore reproduces exactly the count a
// single shared tracker would have reported for the same page set. The
// CPU-cost counters are plain event counts, not sets, so they merge by
// summation.
func (t *Tracker) Merge(other *Tracker) {
	if t == nil || other == nil {
		return
	}
	for id := range other.seen {
		t.Touch(id)
	}
	t.cacheHits += other.cacheHits
	t.cacheMisses += other.cacheMisses
	t.bytesDecoded += other.bytesDecoded
	t.prefetchIssued += other.prefetchIssued
}

// Reset clears the tracker for reuse by the next query.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	clear(t.seen)
	t.reads = 0
	t.cacheHits, t.cacheMisses, t.bytesDecoded = 0, 0, 0
	t.prefetchIssued = 0
}
