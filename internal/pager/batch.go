package pager

import (
	"encoding/binary"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
)

// BatchReader is implemented by page files that can serve several reads in
// one call. ReadBatch fills bufs[i] with the contents of page ids[i]; ids
// and bufs must have equal length and every buffer must be exactly
// PageSize() bytes. It returns nil when every sub-read succeeded, otherwise
// a slice of len(ids) holding the per-page error (nil for the pages that
// succeeded). A failed sub-read never affects its siblings: every page
// either carries its own typed error (ErrPageBounds, ErrFreed, ErrPageSize,
// ErrCorruptPage, or an I/O error) or valid verified contents.
type BatchReader interface {
	ReadBatch(ids []PageID, bufs [][]byte) []error
}

// ReadPages serves a batch of reads through f's ReadBatch when the file
// implements BatchReader, and by sequential Read calls otherwise. The
// return contract is that of BatchReader.ReadBatch.
func ReadPages(f File, ids []PageID, bufs [][]byte) []error {
	if br, ok := f.(BatchReader); ok {
		return br.ReadBatch(ids, bufs)
	}
	if len(ids) != len(bufs) {
		panic("pager: ReadPages ids/bufs length mismatch")
	}
	var errs []error
	for i, id := range ids {
		if err := f.Read(id, bufs[i]); err != nil {
			if errs == nil {
				errs = make([]error, len(ids))
			}
			errs[i] = err
		}
	}
	return errs
}

// ReadBatch implements BatchReader. All sub-reads are served under one lock
// acquisition; per-page validation matches Read exactly.
func (f *MemFile) ReadBatch(ids []PageID, bufs [][]byte) []error {
	if len(ids) != len(bufs) {
		panic("pager: ReadBatch ids/bufs length mismatch")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var errs []error
	for i, id := range ids {
		if err := f.check(id, bufs[i]); err != nil {
			if errs == nil {
				errs = make([]error, len(ids))
			}
			errs[i] = err
			continue
		}
		f.stats.Reads++
		copy(bufs[i], f.pages[id])
	}
	return errs
}

// ioRun is one contiguous read of the backing device into a scratch region.
type ioRun struct {
	off int64
	buf []byte
}

// batchRunPages caps the length of one coalesced run so scratch stays
// bounded and long runs still pipeline through the parallel submitters.
const batchRunPages = 64

// ReadBatch implements BatchReader. Requested pages are sorted and coalesced
// into contiguous-slot runs, the runs are read with one preadv-sized I/O
// each — submitted in parallel through io_uring where available, a bounded
// goroutine pool otherwise — and every page is then CRC-verified
// individually, so a torn or corrupt slot fails only its own sub-read. A run
// whose bulk read fails is retried page by page to isolate the failing
// sub-read from its siblings.
func (d *DiskFile) ReadBatch(ids []PageID, bufs [][]byte) []error {
	if len(ids) != len(bufs) {
		panic("pager: ReadBatch ids/bufs length mismatch")
	}
	if len(ids) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ids))
		}
		errs[i] = err
	}
	valid := make([]int, 0, len(ids))
	for i, id := range ids {
		if len(bufs[i]) != d.pageSize {
			fail(i, ErrPageSize)
			continue
		}
		if err := d.checkID(id); err != nil {
			fail(i, err)
			continue
		}
		d.stats.Reads++
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return errs
	}
	sort.Slice(valid, func(a, b int) bool { return ids[valid[a]] < ids[valid[b]] })

	need := len(valid) * int(d.slotSize)
	if cap(d.batchBuf) < need {
		d.batchBuf = make([]byte, need)
	}
	scratch := d.batchBuf[:need]

	// Coalesce sorted pages into runs of contiguous slots. A duplicate id
	// is not prev+1, so it simply starts its own single-page run.
	var runs []ioRun
	var runIdx [][]int
	for k := 0; k < len(valid); {
		start := k
		for k++; k < len(valid) &&
			k-start < batchRunPages &&
			ids[valid[k]] == ids[valid[k-1]]+1; k++ {
		}
		n := k - start
		off := int64(start) * d.slotSize
		runs = append(runs, ioRun{
			off: d.offset(ids[valid[start]]),
			buf: scratch[off : off+int64(n)*d.slotSize],
		})
		runIdx = append(runIdx, valid[start:k])
	}

	runErrs := d.readRuns(runs)
	for r, posns := range runIdx {
		for k, i := range posns {
			slot := runs[r].buf[int64(k)*d.slotSize:]
			if runErrs[r] != nil {
				// Bulk read failed: retry this page alone so the error
				// (or a late success) is attributed per sub-read.
				slot = slot[:d.pageSize+4]
				if err := readFull(d.b, slot, d.offset(ids[i])); err != nil {
					fail(i, err)
					continue
				}
			}
			sum := binary.BigEndian.Uint32(slot[d.pageSize : d.pageSize+4])
			if sum != crc32.Checksum(slot[:d.pageSize], castagnoli) {
				fail(i, ErrCorruptPage{ID: ids[i]})
				continue
			}
			copy(bufs[i], slot[:d.pageSize])
		}
	}
	return errs
}

// readRuns reads every run, returning a per-run error slice. Multiple runs
// on an fd-backed device are submitted concurrently: io_uring when the ring
// is available, otherwise a bounded pool of goroutines whose blocking preads
// overlap in the kernel. Other devices (the fault-injection media) are read
// sequentially so their op schedules stay deterministic.
func (d *DiskFile) readRuns(runs []ioRun) []error {
	errs := make([]error, len(runs))
	if len(runs) == 1 {
		errs[0] = readFull(d.b, runs[0].buf, runs[0].off)
		return errs
	}
	if fd, ok := blockFd(d.b); ok {
		if uringReadRuns(fd, runs, errs) {
			return errs
		}
		workers := min(4, len(runs))
		var next atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(runs) {
						return
					}
					errs[i] = readFull(d.b, runs[i].buf, runs[i].off)
				}
			}()
		}
		wg.Wait()
		return errs
	}
	for i := range runs {
		errs[i] = readFull(d.b, runs[i].buf, runs[i].off)
	}
	return errs
}

// blockFd reports the OS file descriptor behind a BlockFile, when it has
// one (osBlock does, via the embedded *os.File).
func blockFd(b BlockFile) (uintptr, bool) {
	f, ok := b.(interface{ Fd() uintptr })
	if !ok {
		return 0, false
	}
	return f.Fd(), true
}

// DropOSCache asks the kernel to evict this file's pages from the OS page
// cache (after an fsync, since only clean pages are dropped), so the next
// reads hit the block device. Cold-cache benchmarks call this between
// iterations; it is a hint and a no-op on devices without a descriptor or
// on platforms without posix_fadvise.
func (d *DiskFile) DropOSCache() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fd, ok := blockFd(d.b)
	if !ok {
		return nil
	}
	if err := d.b.Sync(); err != nil {
		return err
	}
	return fadviseDontNeed(fd)
}
