package pager

import "testing"

func TestTrackerMerge(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	for _, id := range []PageID{1, 2, 3, 4} {
		a.Touch(id)
	}
	for _, id := range []PageID{3, 4, 5, 6} {
		b.Touch(id)
	}
	a.Merge(b)
	if got := a.Reads(); got != 6 {
		t.Fatalf("merged reads = %d, want 6 (distinct pages 1-6)", got)
	}
	// b is untouched by the merge.
	if got := b.Reads(); got != 4 {
		t.Fatalf("source tracker changed by Merge: reads = %d, want 4", got)
	}
	// Merge is idempotent: folding the same pages in again adds nothing.
	a.Merge(b)
	if got := a.Reads(); got != 6 {
		t.Fatalf("re-merged reads = %d, want 6", got)
	}
	// Nil source and nil receiver are no-ops.
	a.Merge(nil)
	var nilTr *Tracker
	nilTr.Merge(a)
	if got := a.Reads(); got != 6 {
		t.Fatalf("after nil merges reads = %d, want 6", got)
	}
}

// TestTrackerMergeEqualsSequential is the accounting invariance the
// concurrent executor relies on: splitting a page-access sequence across
// per-goroutine trackers and merging them yields the same distinct-page
// count as feeding the whole sequence through one shared tracker.
func TestTrackerMergeEqualsSequential(t *testing.T) {
	accesses := []PageID{7, 1, 7, 3, 9, 1, 12, 3, 3, 40, 9, 7, 2}

	shared := NewTracker()
	for _, id := range accesses {
		shared.Touch(id)
	}

	per := []*Tracker{NewTracker(), NewTracker(), NewTracker()}
	for i, id := range accesses {
		per[i%len(per)].Touch(id)
	}
	merged := NewTracker()
	for _, tr := range per {
		merged.Merge(tr)
	}

	if merged.Reads() != shared.Reads() {
		t.Fatalf("merged per-goroutine count %d != sequential shared count %d",
			merged.Reads(), shared.Reads())
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	tr.Touch(1)
	tr.Touch(2)
	tr.Reset()
	if tr.Reads() != 0 || tr.Touched(1) {
		t.Fatalf("Reset left state behind: reads=%d touched(1)=%v", tr.Reads(), tr.Touched(1))
	}
	if !tr.Touch(1) {
		t.Fatal("Touch after Reset did not count the page as new")
	}
}
