//go:build linux

package pager

import "syscall"

// posixFadvDontneed is POSIX_FADV_DONTNEED from <fcntl.h>.
const posixFadvDontneed = 4

// fadviseDontNeed advises the kernel to drop the file's cached pages. Only
// clean pages are dropped, so callers fsync first.
func fadviseDontNeed(fd uintptr) error {
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, fd, 0, 0, posixFadvDontneed, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
