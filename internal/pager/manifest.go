package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Manifest is the commit record of a sharded index: a tiny BlockFile that
// atomically publishes one generation number per shard file, plus the
// immutable shard routing bounds. It turns K independently shadow-paged
// DiskFiles into one crash-consistent unit:
//
//   - Each shard file checkpoints on its own (Sync), which bumps that file's
//     header generation. A crash between two shards' checkpoints would
//     otherwise recover the shards at different logical points.
//
//   - After every group of shard checkpoints, Commit writes the vector of
//     shard generations into the inactive one of two alternating checksummed
//     slots and fsyncs. Recovery reads the newest valid slot and reopens
//     every shard file pinned AT its recorded generation
//     (OpenDiskFileOnAt), rolling back any shard whose checkpoint made it to
//     disk without the manifest commit that would have published it.
//
//   - This is sound because the engine holds every touched shard's writer
//     lock across checkpoint + Commit: a shard file's newest generation can
//     lead its manifest-recorded generation by at most one, which is exactly
//     the rollback window OpenDiskFileOnAt supports.
//
// The file layout is fault-injection friendly (no rename tricks, works on a
// raw BlockFile): a checksummed preamble at offset 0 carrying the shard
// count and routing bounds, then two 512-byte-aligned slots at offsets 512
// and 1024 selected by generation parity. Torn writes hit only the slot
// being written; the other slot stays valid.
type Manifest struct {
	mu      sync.Mutex
	b       BlockFile
	version uint32
	shards  int
	bounds  [][]byte
	gen     uint64   // generation of the last durable slot
	gens    []uint64 // shard generations of that slot
	walLSN  uint64   // checkpoint LSN of that slot (version >= 2)
}

const (
	manifestMagic = 0x5549584d // "UIXM"
	// Version 2 adds the 8-byte checkpoint LSN (the WAL handshake) to each
	// commit slot; version-1 files still open, reporting a zero LSN.
	manifestVersion = 2

	// MaxShards bounds the shard count so a version-2 slot (8-byte slot
	// generation, 8-byte checkpoint LSN, 8 bytes per shard generation,
	// 4-byte CRC) fits in its 512-byte cell.
	MaxShards = 61

	manifestSlot0Off = 512
	manifestSlotSize = 512
)

// slotLen is the byte length of one commit slot at the given version.
func slotLen(version uint32, shards int) int {
	n := 8 + 8*shards + 4
	if version >= 2 {
		n += 8
	}
	return n
}

func manifestSlotOff(gen uint64) int64 {
	return manifestSlot0Off + int64(gen%2)*manifestSlotSize
}

// CreateManifestOn initializes a manifest on an empty BlockFile: it writes
// the preamble for len(gens) shards with the given routing bounds
// (len(bounds) must be len(gens)-1), commits the initial shard-generation
// vector as slot generation 1, and syncs. Bounds longer than the preamble
// cell (512 bytes total) are rejected.
func CreateManifestOn(b BlockFile, bounds [][]byte, gens []uint64) (*Manifest, error) {
	shards := len(gens)
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("pager: manifest shard count %d out of range [1,%d]", shards, MaxShards)
	}
	if len(bounds) != shards-1 {
		return nil, fmt.Errorf("pager: manifest has %d bounds for %d shards (want %d)",
			len(bounds), shards, shards-1)
	}
	pre := make([]byte, 0, manifestSlot0Off)
	pre = binary.BigEndian.AppendUint32(pre, manifestMagic)
	pre = binary.BigEndian.AppendUint32(pre, manifestVersion)
	pre = binary.BigEndian.AppendUint32(pre, uint32(shards))
	pre = binary.BigEndian.AppendUint32(pre, uint32(len(bounds)))
	for _, bd := range bounds {
		if len(bd) > 0xffff {
			return nil, fmt.Errorf("pager: manifest bound of %d bytes too long", len(bd))
		}
		pre = binary.BigEndian.AppendUint16(pre, uint16(len(bd)))
		pre = append(pre, bd...)
	}
	pre = binary.BigEndian.AppendUint32(pre, crc32.Checksum(pre, castagnoli))
	if len(pre) > manifestSlot0Off {
		return nil, fmt.Errorf("pager: manifest preamble %d bytes exceeds %d (bounds too long)",
			len(pre), manifestSlot0Off)
	}
	// Zero the whole fixed region first so the file spans complete cells
	// and a stale slot from a recycled file can never decode as valid.
	if _, err := b.WriteAt(make([]byte, manifestSlot0Off+2*manifestSlotSize), 0); err != nil {
		return nil, err
	}
	if _, err := b.WriteAt(pre, 0); err != nil {
		return nil, err
	}
	m := &Manifest{
		b:       b,
		version: manifestVersion,
		shards:  shards,
		bounds:  cloneBounds(bounds),
	}
	if err := m.Commit(gens); err != nil {
		return nil, err
	}
	return m, nil
}

// OpenManifestOn recovers a manifest: it validates the preamble and picks
// the newest of the two slots with a valid checksum. A damaged preamble or
// no valid slot reports an error matching ErrCorruptFile.
func OpenManifestOn(b BlockFile) (*Manifest, error) {
	size, err := b.Size()
	if err != nil {
		return nil, err
	}
	if size < manifestSlot0Off+2*manifestSlotSize {
		return nil, fmt.Errorf("%w: manifest too short (%d bytes)", ErrCorruptFile, size)
	}
	var pre [manifestSlot0Off]byte
	if err := readFull(b, pre[:], 0); err != nil {
		return nil, fmt.Errorf("%w: reading manifest preamble: %v", ErrCorruptFile, err)
	}
	if binary.BigEndian.Uint32(pre[0:]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrCorruptFile)
	}
	version := binary.BigEndian.Uint32(pre[4:])
	if version < 1 || version > manifestVersion {
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorruptFile, version)
	}
	shards := int(binary.BigEndian.Uint32(pre[8:]))
	nbounds := int(binary.BigEndian.Uint32(pre[12:]))
	if shards < 1 || shards > MaxShards || nbounds != shards-1 {
		return nil, fmt.Errorf("%w: manifest geometry %d shards / %d bounds", ErrCorruptFile, shards, nbounds)
	}
	off := 16
	bounds := make([][]byte, 0, nbounds)
	for i := 0; i < nbounds; i++ {
		if off+2 > len(pre) {
			return nil, fmt.Errorf("%w: manifest bound %d past preamble cell", ErrCorruptFile, i)
		}
		n := int(binary.BigEndian.Uint16(pre[off:]))
		off += 2
		if off+n > len(pre) {
			return nil, fmt.Errorf("%w: manifest bound %d past preamble cell", ErrCorruptFile, i)
		}
		bounds = append(bounds, append([]byte(nil), pre[off:off+n]...))
		off += n
	}
	if off+4 > len(pre) {
		return nil, fmt.Errorf("%w: manifest preamble overflows its cell", ErrCorruptFile)
	}
	if binary.BigEndian.Uint32(pre[off:]) != crc32.Checksum(pre[:off], castagnoli) {
		return nil, fmt.Errorf("%w: manifest preamble failed checksum verification", ErrCorruptFile)
	}
	m := &Manifest{b: b, version: version, shards: shards, bounds: bounds}
	buf := make([]byte, slotLen(version, shards))
	for parity := uint64(0); parity < 2; parity++ {
		if err := readFull(b, buf, manifestSlotOff(parity)); err != nil {
			continue
		}
		gen, walLSN, gens, ok := decodeManifestSlot(buf, version, shards, parity)
		if ok && gen > m.gen {
			m.gen, m.walLSN, m.gens = gen, walLSN, gens
		}
	}
	if m.gen == 0 {
		return nil, fmt.Errorf("%w: manifest has no valid commit slot", ErrCorruptFile)
	}
	return m, nil
}

// decodeManifestSlot validates one slot: checksum, nonzero generation, and
// generation parity matching the slot's position (a valid-looking slot in
// the wrong cell is corruption, since commits only ever write a generation
// to its own parity cell).
func decodeManifestSlot(buf []byte, version uint32, shards int, parity uint64) (uint64, uint64, []uint64, bool) {
	n := slotLen(version, shards) - 4
	if binary.BigEndian.Uint32(buf[n:]) != crc32.Checksum(buf[:n], castagnoli) {
		return 0, 0, nil, false
	}
	gen := binary.BigEndian.Uint64(buf)
	if gen == 0 || gen%2 != parity {
		return 0, 0, nil, false
	}
	off := 8
	var walLSN uint64
	if version >= 2 {
		walLSN = binary.BigEndian.Uint64(buf[off:])
		off += 8
	}
	gens := make([]uint64, shards)
	for i := range gens {
		gens[i] = binary.BigEndian.Uint64(buf[off+8*i:])
	}
	return gen, walLSN, gens, true
}

// CreateManifestFile creates path (truncating any previous contents) and
// initializes a manifest on it.
func CreateManifestFile(path string, bounds [][]byte, gens []uint64) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	m, err := CreateManifestOn(osBlock{f}, bounds, gens)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// OpenManifestFile opens an existing manifest file.
func OpenManifestFile(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	m, err := OpenManifestOn(osBlock{f})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Commit atomically publishes a new shard-generation vector: it writes the
// inactive slot, fsyncs, and only then advances the in-memory generation.
// A crash anywhere in between leaves the previous commit intact. The
// checkpoint LSN carried by the slot is preserved from the last commit.
func (m *Manifest) Commit(gens []uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitLocked(gens, m.walLSN)
}

// CommitWAL publishes a new shard-generation vector together with a new
// checkpoint LSN: every WAL record with an LSN at or below it is fully
// reflected in the committed shard generations, so recovery replays the
// log strictly after it. Requires a version-2 manifest.
func (m *Manifest) CommitWAL(gens []uint64, walLSN uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.version < 2 {
		return fmt.Errorf("pager: manifest version %d cannot record a checkpoint LSN", m.version)
	}
	return m.commitLocked(gens, walLSN)
}

func (m *Manifest) commitLocked(gens []uint64, walLSN uint64) error {
	if len(gens) != m.shards {
		return fmt.Errorf("pager: manifest commit with %d generations for %d shards", len(gens), m.shards)
	}
	next := m.gen + 1
	buf := make([]byte, 0, slotLen(m.version, m.shards))
	buf = binary.BigEndian.AppendUint64(buf, next)
	if m.version >= 2 {
		buf = binary.BigEndian.AppendUint64(buf, walLSN)
	}
	for _, g := range gens {
		buf = binary.BigEndian.AppendUint64(buf, g)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	if _, err := m.b.WriteAt(buf, manifestSlotOff(next)); err != nil {
		return err
	}
	if err := m.b.Sync(); err != nil {
		return err
	}
	m.gen = next
	m.walLSN = walLSN
	m.gens = append(m.gens[:0], gens...)
	return nil
}

// WALLSN returns the checkpoint LSN of the last durable commit: zero for
// version-1 manifests and for databases that have never checkpointed
// against a WAL.
func (m *Manifest) WALLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.walLSN
}

// Shards returns the shard count the manifest was created with.
func (m *Manifest) Shards() int { return m.shards }

// Bounds returns the routing bounds (len = Shards()-1) recorded at creation.
func (m *Manifest) Bounds() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return cloneBounds(m.bounds)
}

// Gen returns the manifest's own commit generation.
func (m *Manifest) Gen() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Gens returns the last committed per-shard generation vector — the
// generations recovery must reopen the shard files at.
func (m *Manifest) Gens() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.gens...)
}

// Close closes the underlying BlockFile.
func (m *Manifest) Close() error {
	return m.b.Close()
}

func cloneBounds(bounds [][]byte) [][]byte {
	out := make([][]byte, len(bounds))
	for i, bd := range bounds {
		out[i] = append([]byte(nil), bd...)
	}
	return out
}
