package pager

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.manifest")
	bounds := [][]byte{[]byte(".b"), []byte(".b.a")}
	m, err := CreateManifestFile(path, bounds, []uint64{1, 1, 1})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	if m.Shards() != 3 || m.Gen() != 1 {
		t.Fatalf("fresh manifest: shards=%d gen=%d, want 3/1", m.Shards(), m.Gen())
	}
	if err := m.Commit([]uint64{2, 1, 3}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := m.Commit([]uint64{2, 4, 3}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := OpenManifestFile(path)
	if err != nil {
		t.Fatalf("OpenManifestFile: %v", err)
	}
	defer m2.Close()
	if m2.Gen() != 3 {
		t.Errorf("reopened gen = %d, want 3", m2.Gen())
	}
	if got := m2.Gens(); !reflect.DeepEqual(got, []uint64{2, 4, 3}) {
		t.Errorf("reopened gens = %v, want [2 4 3]", got)
	}
	if got := m2.Bounds(); !reflect.DeepEqual(got, bounds) {
		t.Errorf("reopened bounds = %q, want %q", got, bounds)
	}
}

func TestManifestSingleShardNoBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "one.manifest")
	m, err := CreateManifestFile(path, nil, []uint64{7})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	m.Close()
	m2, err := OpenManifestFile(path)
	if err != nil {
		t.Fatalf("OpenManifestFile: %v", err)
	}
	defer m2.Close()
	if m2.Shards() != 1 || len(m2.Bounds()) != 0 || m2.Gens()[0] != 7 {
		t.Errorf("got shards=%d bounds=%d gens=%v", m2.Shards(), len(m2.Bounds()), m2.Gens())
	}
}

// The checkpoint LSN rides each commit slot: CommitWAL advances it, plain
// Commit preserves it, and it survives reopen.
func TestManifestWALLSNRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.manifest")
	m, err := CreateManifestFile(path, [][]byte{[]byte(".w")}, []uint64{1, 1})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	if got := m.WALLSN(); got != 0 {
		t.Fatalf("fresh WALLSN = %d, want 0", got)
	}
	if err := m.CommitWAL([]uint64{2, 2}, 37); err != nil {
		t.Fatalf("CommitWAL: %v", err)
	}
	if err := m.Commit([]uint64{3, 2}); err != nil { // must preserve the LSN
		t.Fatalf("Commit: %v", err)
	}
	if got := m.WALLSN(); got != 37 {
		t.Fatalf("WALLSN after plain Commit = %d, want 37", got)
	}
	m.Close()

	m2, err := OpenManifestFile(path)
	if err != nil {
		t.Fatalf("OpenManifestFile: %v", err)
	}
	defer m2.Close()
	if got := m2.WALLSN(); got != 37 {
		t.Errorf("reopened WALLSN = %d, want 37", got)
	}
	if got := m2.Gens(); !reflect.DeepEqual(got, []uint64{3, 2}) {
		t.Errorf("reopened gens = %v, want [3 2]", got)
	}
}

// Version-1 manifest files (no checkpoint LSN in the slot) must still open,
// reporting a zero LSN, and CommitWAL must refuse to write into them.
func TestManifestVersion1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.manifest")
	m, err := CreateManifestFile(path, [][]byte{[]byte(".x")}, []uint64{4, 5})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	m.Close()

	// Rewrite the file as version 1: patch the preamble version, refresh its
	// CRC, and re-encode the commit slot in the v1 layout (no LSN field).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(raw[4:], 1)
	preLen := preambleLen(raw)
	binary.BigEndian.PutUint32(raw[preLen:], crc32.Checksum(raw[:preLen], castagnoli))
	slot := make([]byte, 0, slotLen(1, 2))
	slot = binary.BigEndian.AppendUint64(slot, 1) // slot gen 1 → parity cell 1
	slot = binary.BigEndian.AppendUint64(slot, 4)
	slot = binary.BigEndian.AppendUint64(slot, 5)
	slot = binary.BigEndian.AppendUint32(slot, crc32.Checksum(slot, castagnoli))
	copy(raw[manifestSlotOff(1):], slot)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m1, err := OpenManifestFile(path)
	if err != nil {
		t.Fatalf("open v1 manifest: %v", err)
	}
	defer m1.Close()
	if m1.WALLSN() != 0 {
		t.Errorf("v1 WALLSN = %d, want 0", m1.WALLSN())
	}
	if got := m1.Gens(); !reflect.DeepEqual(got, []uint64{4, 5}) {
		t.Errorf("v1 gens = %v, want [4 5]", got)
	}
	if err := m1.Commit([]uint64{6, 5}); err != nil {
		t.Errorf("v1 plain Commit: %v", err)
	}
	if err := m1.CommitWAL([]uint64{6, 5}, 9); err == nil {
		t.Error("CommitWAL on a v1 manifest succeeded")
	}
}

// preambleLen walks an encoded preamble to the offset of its trailing CRC.
func preambleLen(raw []byte) int {
	nbounds := int(binary.BigEndian.Uint32(raw[12:]))
	off := 16
	for i := 0; i < nbounds; i++ {
		off += 2 + int(binary.BigEndian.Uint16(raw[off:]))
	}
	return off
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateManifestFile(filepath.Join(dir, "a"), nil, nil); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := CreateManifestFile(filepath.Join(dir, "b"), nil, make([]uint64, MaxShards+1)); err == nil {
		t.Error("too many shards accepted")
	}
	if _, err := CreateManifestFile(filepath.Join(dir, "c"), [][]byte{[]byte("x")}, []uint64{1}); err == nil {
		t.Error("bounds/shards mismatch accepted")
	}
	m, err := CreateManifestFile(filepath.Join(dir, "d"), [][]byte{[]byte("x")}, []uint64{1, 1})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	defer m.Close()
	if err := m.Commit([]uint64{1}); err == nil {
		t.Error("short commit vector accepted")
	}
}

// A torn or corrupted newest slot must fall back to the previous commit, and
// byte damage anywhere in the fixed region must never surface stale data as
// current.
func TestManifestSlotCorruptionFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.manifest")
	m, err := CreateManifestFile(path, [][]byte{[]byte(".m")}, []uint64{1, 1})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	if err := m.Commit([]uint64{5, 6}); err != nil { // gen 2 → slot at 1024
		t.Fatalf("Commit: %v", err)
	}
	m.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Generation parity picks the cell: gen 2 lives in the first slot cell,
	// gen 1 in the second.
	raw[manifestSlot0Off+3] ^= 0xff // damage the gen-2 slot
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManifestFile(path)
	if err != nil {
		t.Fatalf("OpenManifestFile after slot damage: %v", err)
	}
	if m2.Gen() != 1 || !reflect.DeepEqual(m2.Gens(), []uint64{1, 1}) {
		t.Errorf("fallback state gen=%d gens=%v, want 1/[1 1]", m2.Gen(), m2.Gens())
	}
	m2.Close()

	// Damage the remaining slot too: no valid commit left.
	raw[manifestSlot0Off+manifestSlotSize+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifestFile(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("both slots damaged: err = %v, want ErrCorruptFile", err)
	}
}

func TestManifestPreambleCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pre.manifest")
	m, err := CreateManifestFile(path, [][]byte{[]byte(".q")}, []uint64{1, 1})
	if err != nil {
		t.Fatalf("CreateManifestFile: %v", err)
	}
	m.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[17] ^= 0x01 // inside the first bound's bytes
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifestFile(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("preamble damage: err = %v, want ErrCorruptFile", err)
	}
	if _, err := OpenManifestFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("opening a missing manifest succeeded")
	}
}

// OpenDiskFileAt pins recovery to an explicit header generation: the
// manifest-directed rollback of a shard whose checkpoint outran the manifest
// commit. The pinned open must expose the pinned generation's data, and the
// next checkpoint must overwrite the orphaned newer generation.
func TestOpenDiskFileAtRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.uidx")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatalf("CreateDiskFile: %v", err)
	}
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 128)
	copy(page, "generation-two")
	if err := f.Write(id, page); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // gen 2
		t.Fatal(err)
	}
	// Copy-on-write, like the B-tree: gen 3 writes a fresh page and frees
	// the old one, never touching a page live at gen 2. Rollback soundness
	// depends on the writer honoring this discipline.
	id2, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "generation-three")
	if err := f.Write(id2, page); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // gen 3: the checkpoint the manifest never saw
		t.Fatal(err)
	}
	gen3 := f.Generation()
	// CloseDiscard: a plain Close would checkpoint once more and overwrite
	// the gen-2 header slot with gen 4.
	if err := f.CloseDiscard(); err != nil {
		t.Fatal(err)
	}
	if gen3 != 3 {
		t.Fatalf("generation after two checkpoints = %d, want 3", gen3)
	}

	r, err := OpenDiskFileAt(path, 2)
	if err != nil {
		t.Fatalf("OpenDiskFileAt(2): %v", err)
	}
	got := make([]byte, 128)
	if err := r.Read(id, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got[:len("generation-two")]) != "generation-two" {
		t.Errorf("pinned open reads %q, want the generation-2 payload", got[:16])
	}
	if r.Generation() != 2 {
		t.Errorf("pinned Generation() = %d, want 2", r.Generation())
	}
	// Checkpointing from the rolled-back state publishes gen 3 over the
	// orphaned slot; a plain open then lands on the new lineage. Shadow
	// discipline: write a freshly allocated page, never a live one.
	nid, err := r.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(got, "generation-three-b")
	if err := r.Write(nid, got); err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 3 {
		t.Errorf("post-rollback checkpoint generation = %d, want 3", r.Generation())
	}
	if err := r.CloseDiscard(); err != nil {
		t.Fatal(err)
	}
	rr, err := OpenDiskFile(path)
	if err != nil {
		t.Fatalf("reopen after rollback checkpoint: %v", err)
	}
	if rr.Generation() != 3 {
		t.Errorf("plain reopen generation = %d, want 3", rr.Generation())
	}
	rr.Close()

	if _, err := OpenDiskFileAt(path, 9); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("OpenDiskFileAt(missing gen): err = %v, want ErrCorruptFile", err)
	}
}
