package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// newTestDisk creates a small populated page file and returns its path,
// the live page ids, and their contents. The file is closed (checkpointed).
func newTestDisk(t *testing.T, pages int) (string, []PageID, map[PageID][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "disk.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatalf("CreateDiskFile: %v", err)
	}
	var ids []PageID
	want := make(map[PageID][]byte)
	for i := 0; i < pages; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		buf := bytes.Repeat([]byte{byte(i + 1)}, 128)
		if err := f.Write(id, buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		ids = append(ids, id)
		want[id] = buf
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path, ids, want
}

func TestReadDetectsCorruptPage(t *testing.T) {
	path, ids, _ := newTestDisk(t, 4)
	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slot := int64(ids[2]) * (128 + slotTrailerSize)
	// Flip one payload byte behind the pager's back.
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := raw.ReadAt(b[:], slot+17); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := raw.WriteAt(b[:], slot+17); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	buf := make([]byte, 128)
	err = f.Read(ids[2], buf)
	var corrupt ErrCorruptPage
	if !errors.As(err, &corrupt) {
		t.Fatalf("Read of corrupted page = %v, want ErrCorruptPage", err)
	}
	if corrupt.ID != ids[2] {
		t.Errorf("ErrCorruptPage.ID = %d, want %d", corrupt.ID, ids[2])
	}
	// Undamaged pages still read cleanly.
	if err := f.Read(ids[0], buf); err != nil {
		t.Errorf("Read of intact page: %v", err)
	}
	f.Close()
}

func TestCorruptCRCDetected(t *testing.T) {
	path, ids, want := newTestDisk(t, 3)
	// Flip a byte of the stored checksum instead of the payload.
	slot := int64(ids[1]) * (128 + slotTrailerSize)
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := raw.ReadAt(b[:], slot+128+crcOff); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := raw.WriteAt(b[:], slot+128+crcOff); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	f, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 128)
	var corrupt ErrCorruptPage
	if err := f.Read(ids[1], buf); !errors.As(err, &corrupt) {
		t.Fatalf("Read with corrupt CRC = %v, want ErrCorruptPage", err)
	}
	// Rewriting the page heals it.
	if err := f.Write(ids[1], want[ids[1]]); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(ids[1], buf); err != nil {
		t.Errorf("Read after rewriting: %v", err)
	}
}

func TestOpenTruncatedFile(t *testing.T) {
	path, _, _ := newTestDisk(t, 4)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Shorter than the header pair: always ErrCorruptFile.
	for _, n := range []int{0, 1, 17, headerPairSize - 1} {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDiskFile(path); !errors.Is(err, ErrCorruptFile) {
			t.Errorf("open of %d-byte file = %v, want ErrCorruptFile", n, err)
		}
	}
	// Valid headers but the checkpointed page count points past EOF.
	if err := os.WriteFile(path, full[:headerPairSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskFile(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("open with page count past EOF = %v, want ErrCorruptFile", err)
	}
}

func TestOpenBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-pagefile")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xCC}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskFile(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("open of garbage file = %v, want ErrCorruptFile", err)
	}
}

func TestOpenCorruptFreeChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:2] {
		if err := f.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Point the first free page's sidecar links (both parity slots) out of
	// range.
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(ids[0])*(128+slotTrailerSize) + 128 + 4
	if _, err := raw.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, off); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	if _, err := OpenDiskFile(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("open with corrupt free chain = %v, want ErrCorruptFile", err)
	}
}

// TestOpenByteFlipSweep flips every byte of a small page file in turn and
// requires that OpenDiskFile either fails with ErrCorruptFile or succeeds —
// and that on success every live page read returns intact data or a typed
// checksum error. Nothing may panic and garbage may never be served.
func TestOpenByteFlipSweep(t *testing.T) {
	path, ids, want := newTestDisk(t, 3)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[i] ^= 0xFF
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := OpenDiskFile(path)
		if err != nil {
			if !errors.Is(err, ErrCorruptFile) {
				t.Fatalf("flip byte %d: open error %v is not ErrCorruptFile", i, err)
			}
			continue
		}
		buf := make([]byte, 128)
		for _, id := range ids {
			// A flip in the newest header slot makes recovery fall back
			// to an older generation where the page may not exist yet
			// (ErrPageBounds) or is an adopted orphan (ErrFreed); a flip
			// in the page slot itself must give ErrCorruptPage. Every
			// other outcome must be intact data.
			err := f.Read(id, buf)
			if err == nil && !bytes.Equal(buf, want[id]) {
				t.Fatalf("flip byte %d: page %d read garbage without error", i, id)
			}
			if err != nil {
				var corrupt ErrCorruptPage
				if !errors.As(err, &corrupt) && !errors.Is(err, ErrPageBounds) && !errors.Is(err, ErrFreed) {
					t.Fatalf("flip byte %d: page %d read error %v, want a typed pager error", i, id, err)
				}
			}
		}
		f.Close()
	}
}

// TestHeaderPairFallback corrupts the newest header slot and checks that
// recovery falls back to the previous generation's state.
func TestHeaderPairFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pair.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	one := bytes.Repeat([]byte{1}, 128)
	if err := f.Write(id, one); err != nil {
		t.Fatal(err)
	}
	if err := f.Checkpoint([]byte("gen-A")); err != nil {
		t.Fatal(err)
	}
	genA := f.Generation()
	// Second checkpoint with more state.
	id2, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(id2, bytes.Repeat([]byte{2}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := f.Checkpoint([]byte("gen-B")); err != nil {
		t.Fatal(err)
	}
	genB := f.Generation()
	if genB != genA+1 {
		t.Fatalf("generation after second checkpoint = %d, want %d", genB, genA+1)
	}
	f.b.Close() // abandon without the closing checkpoint

	// Smash the slot holding the newest generation.
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	slot := int64(genB%2) * headerSlotSize
	if _, err := raw.WriteAt(bytes.Repeat([]byte{0xEE}, headerSlotSize), slot); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatalf("OpenDiskFile with torn newest header: %v", err)
	}
	defer g.Close()
	if g.Generation() != genA {
		t.Errorf("recovered generation = %d, want fallback to %d", g.Generation(), genA)
	}
	if got := g.Payload(); string(got) != "gen-A" {
		t.Errorf("recovered payload = %q, want %q", got, "gen-A")
	}
	if n := g.NumPages(); n != 1 {
		t.Errorf("recovered NumPages = %d, want 1 (gen-A state)", n)
	}
	buf := make([]byte, 128)
	if err := g.Read(id, buf); err != nil || !bytes.Equal(buf, one) {
		t.Errorf("gen-A page unreadable after fallback: %v", err)
	}
}

// TestOrphanReclamation: pages allocated after the last checkpoint are
// adopted into the free list on recovery and reused after the next
// checkpoint, so an interrupted checkpoint can never leak disk space.
func TestOrphanReclamation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orphan.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(id, bytes.Repeat([]byte{7}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Shadow pages written after the checkpoint, then a simulated crash
	// (the file handle is dropped without the closing checkpoint).
	var orphans []PageID
	for i := 0; i < 3; i++ {
		o, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		orphans = append(orphans, o)
	}
	f.b.Close()

	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n := g.NumPages(); n != 1 {
		t.Fatalf("NumPages after recovery = %d, want 1", n)
	}
	// The orphans are quarantined: not allocable until a checkpoint...
	first, err := g.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if first != orphans[len(orphans)-1]+1 {
		t.Fatalf("Alloc before checkpoint = %d, want fresh page %d", first, orphans[len(orphans)-1]+1)
	}
	if err := g.Free(first); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	// ...and recycled afterwards instead of growing the file.
	got := map[PageID]bool{}
	for i := 0; i < len(orphans)+1; i++ {
		id, err := g.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		got[id] = true
	}
	for _, o := range orphans {
		if !got[o] {
			t.Errorf("orphan page %d was not recycled after checkpoint (got %v)", o, got)
		}
	}
}

// TestPendingFreeQuarantine: a page freed after a checkpoint must not be
// handed out again before the next checkpoint, because the recoverable
// state still references it.
func TestPendingFreeQuarantine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pending.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatal("freed page recycled before checkpoint; recoverable state corrupted")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	id3, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id {
		t.Fatalf("Alloc after checkpoint = %d, want promoted page %d", id3, id)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "payload.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload()) != 0 {
		t.Errorf("fresh file payload = %q, want empty", f.Payload())
	}
	if err := f.SetPayload(bytes.Repeat([]byte{1}, MaxPayload+1)); err == nil {
		t.Error("SetPayload over MaxPayload succeeded, want error")
	}
	if err := f.SetPayload([]byte("root=42")); err != nil {
		t.Fatal(err)
	}
	// Staged but not yet checkpointed: a crash now recovers the old
	// (empty) payload. Close checkpoints, making it durable.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if got := string(g.Payload()); got != "root=42" {
		t.Errorf("recovered payload = %q, want %q", got, "root=42")
	}
}

func TestCreateRejectsTinyPages(t *testing.T) {
	if _, err := CreateDiskFile(filepath.Join(t.TempDir(), "tiny.db"), MinDiskPageSize-1); err == nil {
		t.Error("CreateDiskFile below MinDiskPageSize succeeded, want error")
	}
}
