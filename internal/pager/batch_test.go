package pager

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// fillPage writes a recognizable pattern derived from seed into buf.
func fillPage(buf []byte, seed int) {
	for i := range buf {
		buf[i] = byte(seed*131 + i)
	}
}

// newBatchFile allocates n pages with distinct contents on f and returns
// their ids.
func newBatchFile(t *testing.T, f File, n int) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	buf := make([]byte, f.PageSize())
	for i := range ids {
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		fillPage(buf, int(id))
		if err := f.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		ids[i] = id
	}
	return ids
}

// checkBatch reads ids via ReadBatch and verifies every page against the
// synchronous Read path.
func checkBatch(t *testing.T, f File, ids []PageID) {
	t.Helper()
	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, f.PageSize())
	}
	if errs := ReadPages(f, ids, bufs); errs != nil {
		for i, err := range errs {
			if err != nil {
				t.Fatalf("ReadBatch page %d (id %d): %v", i, ids[i], err)
			}
		}
	}
	want := make([]byte, f.PageSize())
	for i, id := range ids {
		if err := f.Read(id, want); err != nil {
			t.Fatalf("read id %d: %v", id, err)
		}
		if string(want) != string(bufs[i]) {
			t.Fatalf("page id %d: batch contents differ from Read", id)
		}
	}
}

func batchFiles(t *testing.T) map[string]File {
	t.Helper()
	disk, err := CreateDiskFile(filepath.Join(t.TempDir(), "batch.uidx"), 0)
	if err != nil {
		t.Fatalf("create disk file: %v", err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]File{"mem": NewMemFile(0), "disk": disk}
}

func TestReadBatchMatchesRead(t *testing.T) {
	for name, f := range batchFiles(t) {
		t.Run(name, func(t *testing.T) {
			ids := newBatchFile(t, f, 200)
			// Contiguous ascending: one long coalesced run (chunked at
			// batchRunPages).
			checkBatch(t, f, ids)
			// Shuffled: many runs, resorted internally, results must land
			// at the caller's positions.
			shuffled := append([]PageID(nil), ids...)
			rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			checkBatch(t, f, shuffled)
			// Sparse with gaps and duplicates.
			sparse := []PageID{ids[0], ids[9], ids[10], ids[11], ids[50], ids[50], ids[199]}
			checkBatch(t, f, sparse)
			// Empty batch.
			if errs := ReadPages(f, nil, nil); errs != nil {
				t.Fatalf("empty batch: %v", errs)
			}
		})
	}
}

func TestReadBatchPerPageErrors(t *testing.T) {
	for name, f := range batchFiles(t) {
		t.Run(name, func(t *testing.T) {
			ids := newBatchFile(t, f, 8)
			if err := f.Free(ids[3]); err != nil {
				t.Fatalf("free: %v", err)
			}
			req := []PageID{ids[0], ids[3], PageID(1 << 20), ids[7]}
			bufs := make([][]byte, len(req))
			for i := range bufs {
				bufs[i] = make([]byte, f.PageSize())
			}
			bufs[3] = bufs[3][:10] // wrong size for the last sub-read
			errs := ReadPages(f, req, bufs)
			if errs == nil {
				t.Fatalf("expected per-page errors")
			}
			if errs[0] != nil {
				t.Fatalf("healthy page got error: %v", errs[0])
			}
			if !errors.Is(errs[1], ErrFreed) {
				t.Fatalf("freed page: got %v, want ErrFreed", errs[1])
			}
			if !errors.Is(errs[2], ErrPageBounds) {
				t.Fatalf("out-of-range page: got %v, want ErrPageBounds", errs[2])
			}
			if !errors.Is(errs[3], ErrPageSize) {
				t.Fatalf("short buffer: got %v, want ErrPageSize", errs[3])
			}
			// The healthy sub-read still produced the right contents.
			want := make([]byte, f.PageSize())
			fillPage(want, int(ids[0]))
			if string(bufs[0]) != string(want) {
				t.Fatalf("healthy page contents wrong after sibling errors")
			}
		})
	}
}

// TestReadBatchCorruptPageIsolated proves a torn/corrupt slot fails only its
// own sub-read: siblings in the same coalesced run still verify and return
// valid contents.
func TestReadBatchCorruptPageIsolated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.uidx")
	d, err := CreateDiskFile(path, 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer d.Close()
	ids := newBatchFile(t, d, 16)
	if err := d.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// Flip a payload byte of one page in the middle of the contiguous run,
	// bypassing the pager (a torn or bit-rotted sector).
	victim := ids[7]
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open raw: %v", err)
	}
	off := int64(victim)*(int64(d.PageSize())+slotTrailerSize) + 100
	if _, err := raw.WriteAt([]byte{0xFF}, off); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if err := raw.Close(); err != nil {
		t.Fatalf("close raw: %v", err)
	}

	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, d.PageSize())
	}
	errs := d.ReadBatch(ids, bufs)
	if errs == nil {
		t.Fatalf("expected a corrupt-page error")
	}
	for i, id := range ids {
		if id == victim {
			var corrupt ErrCorruptPage
			if !errors.As(errs[i], &corrupt) || corrupt.ID != victim {
				t.Fatalf("victim: got %v, want ErrCorruptPage{%d}", errs[i], victim)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("sibling id %d poisoned: %v", id, errs[i])
		}
		want := make([]byte, d.PageSize())
		fillPage(want, int(id))
		if string(bufs[i]) != string(want) {
			t.Fatalf("sibling id %d contents wrong", id)
		}
	}
}

func TestReadBatchAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reopen.uidx")
	d, err := CreateDiskFile(path, 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ids := newBatchFile(t, d, 40)
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	d, err = OpenDiskFile(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	checkBatch(t, d, ids)
}

func TestDropOSCache(t *testing.T) {
	d, err := CreateDiskFile(filepath.Join(t.TempDir(), "drop.uidx"), 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer d.Close()
	ids := newBatchFile(t, d, 10)
	if err := d.DropOSCache(); err != nil {
		t.Fatalf("DropOSCache: %v", err)
	}
	checkBatch(t, d, ids) // contents must be unaffected
}

func TestReadBatchStatsCountPerPage(t *testing.T) {
	for name, f := range batchFiles(t) {
		t.Run(name, func(t *testing.T) {
			ids := newBatchFile(t, f, 12)
			before := f.Stats().Reads
			checkBatch(t, f, ids) // checkBatch also issues 12 single Reads
			got := f.Stats().Reads - before
			if want := int64(2 * len(ids)); got != want {
				t.Fatalf("Stats.Reads delta = %d, want %d", got, want)
			}
		})
	}
}

func TestUringAvailableStable(t *testing.T) {
	a, b := UringAvailable(), UringAvailable()
	if a != b {
		t.Fatalf("UringAvailable not stable: %v then %v", a, b)
	}
	t.Logf("io_uring available: %v", a)
}

func BenchmarkReadBatchDisk(b *testing.B) {
	d, err := CreateDiskFile(filepath.Join(b.TempDir(), "bench.uidx"), 0)
	if err != nil {
		b.Fatalf("create: %v", err)
	}
	defer d.Close()
	const n = 256
	ids := make([]PageID, n)
	buf := make([]byte, d.PageSize())
	for i := range ids {
		id, _ := d.Alloc()
		fillPage(buf, int(id))
		if err := d.Write(id, buf); err != nil {
			b.Fatalf("write: %v", err)
		}
		ids[i] = id
	}
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, d.PageSize())
	}
	for _, batch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for off := 0; off < n; off += batch {
					end := min(off+batch, n)
					if errs := d.ReadBatch(ids[off:end], bufs[off:end]); errs != nil {
						b.Fatalf("batch: %v", errs)
					}
				}
			}
		})
	}
}
