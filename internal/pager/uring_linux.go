//go:build linux && !nouring

// io_uring batch-read backend. ReadBatch submits every coalesced run of a
// batch as one ring submission, so the kernel services the reads with real
// queue depth instead of one serial pread per run. Everything here is raw
// syscalls over the stable io_uring ABI — no cgo, no external packages. The
// ring is probed once at first use; if io_uring is unavailable (old kernel,
// seccomp filter, kernel.io_uring_disabled) the probe fails permanently and
// callers fall back to the portable bounded-goroutine pool in batch.go. The
// `nouring` build tag forces that fallback at compile time.
package pager

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

const (
	sysIoUringSetup = 425
	sysIoUringEnter = 426

	ioringOffSqRing = 0x0
	ioringOffCqRing = 0x8000000
	ioringOffSqes   = 0x10000000

	ioringEnterGetevents = 1 << 0
	ioringOpRead         = 22 // IORING_OP_READ, kernel >= 5.6
	ioringFeatSingleMmap = 1 << 0

	uringEntries = 64
)

// Mirrors of struct io_sqring_offsets / io_cqring_offsets / io_uring_params
// from <linux/io_uring.h>.
type sqringOffsets struct {
	head, tail, ringMask, ringEntries, flags, dropped, array, resv1 uint32
	userAddr                                                        uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries, overflow, cqes, flags, resv1 uint32
	userAddr                                                        uint64
}

type uringParams struct {
	sqEntries, cqEntries, flags, sqThreadCPU, sqThreadIdle, features, wqFd uint32
	resv                                                                   [3]uint32
	sqOff                                                                  sqringOffsets
	cqOff                                                                  cqringOffsets
}

// uringSqe is struct io_uring_sqe (64 bytes).
type uringSqe struct {
	opcode   uint8
	flags    uint8
	ioprio   uint16
	fd       int32
	off      uint64
	addr     uint64
	len      uint32
	rwFlags  uint32
	userData uint64
	pad      [3]uint64
}

// uringCqe is struct io_uring_cqe (16 bytes).
type uringCqe struct {
	userData uint64
	res      int32
	flags    uint32
}

// uring is one mmapped submission/completion ring pair. A single
// process-wide ring is shared by every DiskFile and serialized by mu:
// batches are infrequent enough that ring contention is negligible next to
// the I/O itself.
type uring struct {
	mu      sync.Mutex
	fd      int
	entries uint32

	sqHead, sqTail, sqMask *uint32
	cqHead, cqTail, cqMask *uint32
	sqArray                []uint32
	sqes                   []uringSqe
	cqes                   []uringCqe
}

var (
	ringOnce sync.Once
	ring     *uring
)

func setupRing() *uring {
	var p uringParams
	fd, _, errno := syscall.Syscall(sysIoUringSetup, uringEntries, uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil
	}
	r := &uring{fd: int(fd), entries: p.sqEntries}
	sqSize := int(p.sqOff.array + p.sqEntries*4)
	cqSize := int(p.cqOff.cqes + p.cqEntries*uint32(unsafe.Sizeof(uringCqe{})))
	var sqMap, cqMap []byte
	var err error
	if p.features&ioringFeatSingleMmap != 0 {
		size := max(sqSize, cqSize)
		sqMap, err = syscall.Mmap(int(fd), ioringOffSqRing, size,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			syscall.Close(int(fd))
			return nil
		}
		cqMap = sqMap
	} else {
		sqMap, err = syscall.Mmap(int(fd), ioringOffSqRing, sqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			syscall.Close(int(fd))
			return nil
		}
		cqMap, err = syscall.Mmap(int(fd), ioringOffCqRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			syscall.Munmap(sqMap)
			syscall.Close(int(fd))
			return nil
		}
	}
	sqesMap, err := syscall.Mmap(int(fd), ioringOffSqes,
		int(p.sqEntries)*int(unsafe.Sizeof(uringSqe{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		syscall.Munmap(sqMap)
		if p.features&ioringFeatSingleMmap == 0 {
			syscall.Munmap(cqMap)
		}
		syscall.Close(int(fd))
		return nil
	}
	r.sqHead = (*uint32)(unsafe.Pointer(&sqMap[p.sqOff.head]))
	r.sqTail = (*uint32)(unsafe.Pointer(&sqMap[p.sqOff.tail]))
	r.sqMask = (*uint32)(unsafe.Pointer(&sqMap[p.sqOff.ringMask]))
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&sqMap[p.sqOff.array])), p.sqEntries)
	r.sqes = unsafe.Slice((*uringSqe)(unsafe.Pointer(&sqesMap[0])), p.sqEntries)
	r.cqHead = (*uint32)(unsafe.Pointer(&cqMap[p.cqOff.head]))
	r.cqTail = (*uint32)(unsafe.Pointer(&cqMap[p.cqOff.tail]))
	r.cqMask = (*uint32)(unsafe.Pointer(&cqMap[p.cqOff.ringMask]))
	r.cqes = unsafe.Slice((*uringCqe)(unsafe.Pointer(&cqMap[p.cqOff.cqes])), p.cqEntries)
	// Smoke-test one no-op enter so a seccomp filter that allows setup but
	// blocks enter is caught at probe time, not per batch.
	if _, errno := uringEnter(int(fd), 0, 0, 0); errno != 0 {
		syscall.Munmap(sqesMap)
		syscall.Munmap(sqMap)
		if p.features&ioringFeatSingleMmap == 0 {
			syscall.Munmap(cqMap)
		}
		syscall.Close(int(fd))
		return nil
	}
	return r
}

// UringAvailable reports whether batched reads go through io_uring in this
// process (build not tagged nouring, kernel support present, probe passed).
func UringAvailable() bool {
	ringOnce.Do(func() { ring = setupRing() })
	return ring != nil
}

// uringEnter invokes io_uring_enter, retrying EINTR (liburing behavior: a
// signal — SIGPROF, SIGURG from the Go runtime — landing during submit or
// wait is not a failure of the batch).
func uringEnter(fd int, toSubmit, minComplete uint32, flags uintptr) (int, syscall.Errno) {
	for {
		got, _, errno := syscall.Syscall6(sysIoUringEnter,
			uintptr(fd), uintptr(toSubmit), uintptr(minComplete), flags, 0, 0)
		if errno != syscall.EINTR {
			return int(got), errno
		}
	}
}

// reap consumes exactly want completions from the CQ ring, recording
// per-run errors through the CQE userData (a global index into runs/errs).
// It never returns with completions outstanding: an in-flight read owns its
// scratch buffer, and returning early would let the kernel write into
// memory the next batch (or the GC) reuses. If the blocking wait itself
// fails, the loop degrades to polling the ring — the reads are already
// submitted I/O and complete on their own.
func (r *uring) reap(want int, runs []ioRun, errs []error) {
	for reaped := 0; reaped < want; {
		head := atomic.LoadUint32(r.cqHead)
		cqTail := atomic.LoadUint32(r.cqTail)
		for head != cqTail && reaped < want {
			cqe := r.cqes[head&*r.cqMask]
			i := int(cqe.userData)
			switch {
			case cqe.res < 0:
				errs[i] = syscall.Errno(-cqe.res)
			case int(cqe.res) != len(runs[i].buf):
				errs[i] = io.ErrUnexpectedEOF
			}
			head++
			reaped++
		}
		atomic.StoreUint32(r.cqHead, head)
		if reaped < want {
			if _, errno := uringEnter(r.fd, 0, uint32(want-reaped), ioringEnterGetevents); errno != 0 {
				runtime.Gosched()
			}
		}
	}
}

// uringReadRuns reads every run through the shared ring, filling errs per
// run, and reports false (leaving errs untouched) when the ring is
// unavailable so the caller can fall back to the portable path. On every
// path the ring is left quiescent: all submitted reads are reaped before
// returning, and unconsumed SQEs are rewound so a later call can never
// resubmit entries whose buffers died with this one.
func uringReadRuns(fd uintptr, runs []ioRun, errs []error) bool {
	if !UringAvailable() {
		return false
	}
	r := ring
	r.mu.Lock()
	defer r.mu.Unlock()
	defer runtime.KeepAlive(runs)
	for submitted := 0; submitted < len(runs); {
		n := min(len(runs)-submitted, int(r.entries))
		tail := atomic.LoadUint32(r.sqTail)
		for i := 0; i < n; i++ {
			run := &runs[submitted+i]
			idx := (tail + uint32(i)) & *r.sqMask
			r.sqes[idx] = uringSqe{
				opcode:   ioringOpRead,
				fd:       int32(fd),
				off:      uint64(run.off),
				addr:     uint64(uintptr(unsafe.Pointer(&run.buf[0]))),
				len:      uint32(len(run.buf)),
				userData: uint64(submitted + i),
			}
			r.sqArray[idx] = idx
		}
		atomic.StoreUint32(r.sqTail, tail+uint32(n))
		accepted, errno := uringEnter(r.fd, uint32(n), uint32(n), ioringEnterGetevents)
		if errno != 0 {
			// enter reports an errno only when it consumed no SQEs (once
			// anything was submitted it returns the count instead), but
			// trust the ring head over that contract: reap whatever was
			// consumed, rewind the tail over the rest so the kernel never
			// sees those stale entries, and fail the unsubmitted runs.
			consumed := int(atomic.LoadUint32(r.sqHead) - tail)
			if consumed > 0 {
				r.reap(consumed, runs, errs)
			}
			atomic.StoreUint32(r.sqTail, atomic.LoadUint32(r.sqHead))
			for i := submitted + consumed; i < len(runs); i++ {
				errs[i] = errno
			}
			return true
		}
		// The wait half of enter can be cut short by a signal even when
		// submission succeeded (the syscall then reports the submit count);
		// reap blocks until every accepted read has actually completed.
		r.reap(accepted, runs, errs)
		if accepted < n {
			// Short submit: rewind the tail over the unconsumed SQEs and
			// fail their runs — the caller's per-page retry recovers them.
			atomic.StoreUint32(r.sqTail, atomic.LoadUint32(r.sqHead))
			for i := submitted + accepted; i < len(runs); i++ {
				errs[i] = io.ErrShortBuffer
			}
			return true
		}
		submitted += n
	}
	return true
}
