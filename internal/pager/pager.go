// Package pager provides fixed-size page storage for the index structures in
// this repository. All index structures (the U-index B+-tree, CH-tree,
// H-tree, CG-tree and NIX) allocate, read and write pages exclusively through
// this package, and all experiments account page I/O through a Tracker, so
// every "pages read" number reported by the benchmark harness flows through
// one code path.
//
// Two File implementations are provided: MemFile (a page store backed by an
// in-memory slice, used by tests and the benchmark harness) and DiskFile (a
// page store backed by an *os.File with an on-disk free list, used by the
// CLI tools and examples that persist indexes).
//
// Durability: DiskFile.Write hands pages to the operating system but does
// not force them to stable storage. DiskFile.Sync fsyncs the underlying
// file, and Close performs a final Sync before closing, so a DiskFile that
// was closed without error holds every written page durably. Layers that
// cache pages in front of a DiskFile (internal/bufferpool) build their
// durability point out of this: flush the dirty pages, then Sync.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultPageSize is the page size used throughout the paper's experiments
// (Section 5.1: "Index files were stored in page files with pages of size
// 1024 bytes").
const DefaultPageSize = 1024

// PageID identifies a page within a File. Page 0 is reserved as the nil
// page (and, for DiskFile, holds the file header), so NilPage can be used as
// an "absent" marker in on-page link fields.
type PageID uint32

// NilPage is the reserved zero page id; no user page is ever allocated at 0.
const NilPage PageID = 0

var (
	// ErrPageBounds is returned when a page id is out of range or refers
	// to the reserved nil page.
	ErrPageBounds = errors.New("pager: page id out of bounds")
	// ErrPageSize is returned when a buffer of the wrong length is passed
	// to Read or Write.
	ErrPageSize = errors.New("pager: buffer length does not match page size")
	// ErrFreed is returned when a freed page is read or written.
	ErrFreed = errors.New("pager: page has been freed")
)

// Stats holds cumulative physical I/O counters for a File. These count every
// call, with no per-query deduplication; see Tracker for the per-query view
// used by the experiments.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated
	Frees  int64 // pages freed
}

// File is a flat collection of fixed-size pages. Implementations must be
// safe for concurrent use.
type File interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc allocates a page (recycling freed pages first) and returns
	// its id. The page contents are zeroed.
	Alloc() (PageID, error)
	// Read copies the contents of page id into buf, which must be exactly
	// PageSize() bytes long.
	Read(id PageID, buf []byte) error
	// Write replaces the contents of page id with buf, which must be
	// exactly PageSize() bytes long.
	Write(id PageID, buf []byte) error
	// Free releases a page for reuse by a later Alloc.
	Free(id PageID) error
	// NumPages returns the number of live (allocated, not freed) pages.
	NumPages() int
	// Stats returns a snapshot of the cumulative I/O counters.
	Stats() Stats
	// Close releases underlying resources.
	Close() error
}

// MemFile is an in-memory File. The zero value is not usable; use
// NewMemFile.
type MemFile struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte // index 0 unused (NilPage)
	freed    []PageID
	isFree   map[PageID]bool
	stats    Stats
}

// NewMemFile returns an empty in-memory page file. pageSize <= 0 selects
// DefaultPageSize.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemFile{
		pageSize: pageSize,
		pages:    make([][]byte, 1), // slot 0 reserved
		isFree:   make(map[PageID]bool),
	}
}

// PageSize implements File.
func (f *MemFile) PageSize() int { return f.pageSize }

// Alloc implements File.
func (f *MemFile) Alloc() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Allocs++
	if n := len(f.freed); n > 0 {
		id := f.freed[n-1]
		f.freed = f.freed[:n-1]
		delete(f.isFree, id)
		for i := range f.pages[id] {
			f.pages[id][i] = 0
		}
		return id, nil
	}
	f.pages = append(f.pages, make([]byte, f.pageSize))
	return PageID(len(f.pages) - 1), nil
}

func (f *MemFile) check(id PageID, buf []byte) error {
	if len(buf) != f.pageSize {
		return ErrPageSize
	}
	if id == NilPage || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	return nil
}

// Read implements File.
func (f *MemFile) Read(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id, buf); err != nil {
		return err
	}
	f.stats.Reads++
	copy(buf, f.pages[id])
	return nil
}

// Write implements File.
func (f *MemFile) Write(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id, buf); err != nil {
		return err
	}
	f.stats.Writes++
	copy(f.pages[id], buf)
	return nil
}

// Free implements File.
func (f *MemFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == NilPage || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	f.stats.Frees++
	f.isFree[id] = true
	f.freed = append(f.freed, id)
	return nil
}

// NumPages implements File.
func (f *MemFile) NumPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages) - 1 - len(f.freed)
}

// Stats implements File.
func (f *MemFile) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close implements File. A closed MemFile simply drops its pages.
func (f *MemFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = nil
	f.freed = nil
	f.isFree = nil
	return nil
}

// DiskFile is a File backed by an operating-system file. Page 0 of the file
// holds a small header: a magic number, the page size, the number of pages,
// and the head of the free list. Freed pages are chained through their first
// four bytes.
type DiskFile struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int // total pages including header page 0
	freeHead PageID
	numFree  int
	stats    Stats
}

const diskMagic = 0x55494458 // "UIDX"

// CreateDiskFile creates (or truncates) a page file at path.
func CreateDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 32 {
		return nil, fmt.Errorf("pager: page size %d too small", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d := &DiskFile{f: f, pageSize: pageSize, numPages: 1, freeHead: NilPage}
	if err := d.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenDiskFile opens an existing page file created by CreateDiskFile.
func OpenDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	var hdr [20]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: reading header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != diskMagic {
		f.Close()
		return nil, fmt.Errorf("pager: %s is not a page file", path)
	}
	d := &DiskFile{
		f:        f,
		pageSize: int(binary.BigEndian.Uint32(hdr[4:])),
		numPages: int(binary.BigEndian.Uint32(hdr[8:])),
		freeHead: PageID(binary.BigEndian.Uint32(hdr[12:])),
		numFree:  int(binary.BigEndian.Uint32(hdr[16:])),
	}
	return d, nil
}

func (d *DiskFile) writeHeader() error {
	var hdr [20]byte
	binary.BigEndian.PutUint32(hdr[0:], diskMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(d.pageSize))
	binary.BigEndian.PutUint32(hdr[8:], uint32(d.numPages))
	binary.BigEndian.PutUint32(hdr[12:], uint32(d.freeHead))
	binary.BigEndian.PutUint32(hdr[16:], uint32(d.numFree))
	if _, err := d.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("pager: writing header: %w", err)
	}
	return nil
}

// PageSize implements File.
func (d *DiskFile) PageSize() int { return d.pageSize }

func (d *DiskFile) offset(id PageID) int64 {
	return int64(id) * int64(d.pageSize)
}

// Alloc implements File.
func (d *DiskFile) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Allocs++
	zero := make([]byte, d.pageSize)
	if d.freeHead != NilPage {
		id := d.freeHead
		var next [4]byte
		if _, err := d.f.ReadAt(next[:], d.offset(id)); err != nil {
			return NilPage, fmt.Errorf("pager: reading free link: %w", err)
		}
		d.freeHead = PageID(binary.BigEndian.Uint32(next[:]))
		d.numFree--
		if _, err := d.f.WriteAt(zero, d.offset(id)); err != nil {
			return NilPage, err
		}
		return id, d.writeHeader()
	}
	id := PageID(d.numPages)
	if _, err := d.f.WriteAt(zero, d.offset(id)); err != nil {
		return NilPage, err
	}
	d.numPages++
	return id, d.writeHeader()
}

func (d *DiskFile) checkID(id PageID) error {
	if id == NilPage || int(id) >= d.numPages {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	return nil
}

// Read implements File.
func (d *DiskFile) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != d.pageSize {
		return ErrPageSize
	}
	if err := d.checkID(id); err != nil {
		return err
	}
	d.stats.Reads++
	if _, err := d.f.ReadAt(buf, d.offset(id)); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// Write implements File.
func (d *DiskFile) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != d.pageSize {
		return ErrPageSize
	}
	if err := d.checkID(id); err != nil {
		return err
	}
	d.stats.Writes++
	_, err := d.f.WriteAt(buf, d.offset(id))
	return err
}

// Free implements File.
func (d *DiskFile) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkID(id); err != nil {
		return err
	}
	d.stats.Frees++
	var link [4]byte
	binary.BigEndian.PutUint32(link[:], uint32(d.freeHead))
	if _, err := d.f.WriteAt(link[:], d.offset(id)); err != nil {
		return err
	}
	d.freeHead = id
	d.numFree++
	return d.writeHeader()
}

// NumPages implements File.
func (d *DiskFile) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages - 1 - d.numFree
}

// Stats implements File.
func (d *DiskFile) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Sync writes the header and forces all written pages to stable storage
// (fsync). After Sync returns nil, every page written so far survives a
// crash of the process or the machine.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncLocked()
}

func (d *DiskFile) syncLocked() error {
	if err := d.writeHeader(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close implements File. It syncs before closing, so a nil return means the
// file's pages are durable on disk.
func (d *DiskFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.syncLocked(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}
