// Package pager provides fixed-size page storage for the index structures in
// this repository. All index structures (the U-index B+-tree, CH-tree,
// H-tree, CG-tree and NIX) allocate, read and write pages exclusively through
// this package, and all experiments account page I/O through a Tracker, so
// every "pages read" number reported by the benchmark harness flows through
// one code path.
//
// Two File implementations are provided: MemFile (a page store backed by an
// in-memory slice, used by tests and the benchmark harness) and DiskFile (a
// crash-safe page store backed by a BlockFile — normally an *os.File — with
// per-page CRC32C checksums and an atomic, shadow-paged checkpoint protocol;
// see diskfile.go).
//
// Durability: DiskFile.Write hands pages to the operating system but does
// not force them to stable storage. DiskFile.Sync checkpoints the file:
// it fsyncs all written pages, then atomically publishes a new header
// generation, so a crash at any instant recovers to exactly the last
// checkpoint. Layers that cache pages in front of a DiskFile
// (internal/bufferpool) build their durability point out of this: flush the
// dirty pages, then Sync.
package pager

import (
	"errors"
	"fmt"
	"sync"
)

// DefaultPageSize is the page size used throughout the paper's experiments
// (Section 5.1: "Index files were stored in page files with pages of size
// 1024 bytes").
const DefaultPageSize = 1024

// PageID identifies a page within a File. Page 0 is reserved as the nil
// page (and, for DiskFile, holds the file header), so NilPage can be used as
// an "absent" marker in on-page link fields.
type PageID uint32

// NilPage is the reserved zero page id; no user page is ever allocated at 0.
const NilPage PageID = 0

var (
	// ErrPageBounds is returned when a page id is out of range or refers
	// to the reserved nil page.
	ErrPageBounds = errors.New("pager: page id out of bounds")
	// ErrPageSize is returned when a buffer of the wrong length is passed
	// to Read or Write.
	ErrPageSize = errors.New("pager: buffer length does not match page size")
	// ErrFreed is returned when a freed page is read or written.
	ErrFreed = errors.New("pager: page has been freed")
)

// Stats holds cumulative physical I/O counters for a File. These count every
// call, with no per-query deduplication; see Tracker for the per-query view
// used by the experiments.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated
	Frees  int64 // pages freed
}

// File is a flat collection of fixed-size pages. Implementations must be
// safe for concurrent use.
type File interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc allocates a page (recycling freed pages first) and returns
	// its id. The page contents are zeroed.
	Alloc() (PageID, error)
	// Read copies the contents of page id into buf, which must be exactly
	// PageSize() bytes long.
	Read(id PageID, buf []byte) error
	// Write replaces the contents of page id with buf, which must be
	// exactly PageSize() bytes long.
	Write(id PageID, buf []byte) error
	// Free releases a page for reuse by a later Alloc.
	Free(id PageID) error
	// NumPages returns the number of live (allocated, not freed) pages.
	NumPages() int
	// Stats returns a snapshot of the cumulative I/O counters.
	Stats() Stats
	// Close releases underlying resources.
	Close() error
}

// MemFile is an in-memory File. The zero value is not usable; use
// NewMemFile.
type MemFile struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte // index 0 unused (NilPage)
	freed    []PageID
	isFree   map[PageID]bool
	stats    Stats
}

// NewMemFile returns an empty in-memory page file. pageSize <= 0 selects
// DefaultPageSize.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemFile{
		pageSize: pageSize,
		pages:    make([][]byte, 1), // slot 0 reserved
		isFree:   make(map[PageID]bool),
	}
}

// PageSize implements File.
func (f *MemFile) PageSize() int { return f.pageSize }

// Alloc implements File.
func (f *MemFile) Alloc() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Allocs++
	if n := len(f.freed); n > 0 {
		id := f.freed[n-1]
		f.freed = f.freed[:n-1]
		delete(f.isFree, id)
		for i := range f.pages[id] {
			f.pages[id][i] = 0
		}
		return id, nil
	}
	f.pages = append(f.pages, make([]byte, f.pageSize))
	return PageID(len(f.pages) - 1), nil
}

func (f *MemFile) check(id PageID, buf []byte) error {
	if len(buf) != f.pageSize {
		return ErrPageSize
	}
	if id == NilPage || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	return nil
}

// Read implements File.
func (f *MemFile) Read(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id, buf); err != nil {
		return err
	}
	f.stats.Reads++
	copy(buf, f.pages[id])
	return nil
}

// Write implements File.
func (f *MemFile) Write(id PageID, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(id, buf); err != nil {
		return err
	}
	f.stats.Writes++
	copy(f.pages[id], buf)
	return nil
}

// Free implements File.
func (f *MemFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == NilPage || int(id) >= len(f.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if f.isFree[id] {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	f.stats.Frees++
	f.isFree[id] = true
	f.freed = append(f.freed, id)
	return nil
}

// NumPages implements File.
func (f *MemFile) NumPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages) - 1 - len(f.freed)
}

// Stats implements File.
func (f *MemFile) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close implements File. A closed MemFile simply drops its pages.
func (f *MemFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = nil
	f.freed = nil
	f.isFree = nil
	return nil
}
