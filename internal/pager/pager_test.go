package pager

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// fileUnderTest runs the given test against both File implementations.
func fileUnderTest(t *testing.T, test func(t *testing.T, f File)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		f := NewMemFile(128)
		defer f.Close()
		test(t, f)
	})
	t.Run("disk", func(t *testing.T) {
		f, err := CreateDiskFile(filepath.Join(t.TempDir(), "pages.db"), 128)
		if err != nil {
			t.Fatalf("CreateDiskFile: %v", err)
		}
		defer f.Close()
		test(t, f)
	})
}

func TestAllocReadWrite(t *testing.T) {
	fileUnderTest(t, func(t *testing.T, f File) {
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if id == NilPage {
			t.Fatal("Alloc returned NilPage")
		}
		buf := make([]byte, f.PageSize())
		for i := range buf {
			buf[i] = byte(i)
		}
		if err := f.Write(id, buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got := make([]byte, f.PageSize())
		if err := f.Read(id, got); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(buf, got) {
			t.Fatalf("round trip mismatch: wrote %v got %v", buf[:8], got[:8])
		}
	})
}

func TestAllocZeroesRecycledPages(t *testing.T) {
	fileUnderTest(t, func(t *testing.T, f File) {
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		dirty := bytes.Repeat([]byte{0xAB}, f.PageSize())
		if err := f.Write(id, dirty); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := f.Free(id); err != nil {
			t.Fatalf("Free: %v", err)
		}
		// A DiskFile quarantines freed pages until the next checkpoint;
		// promote them so Alloc recycles.
		if d, ok := f.(*DiskFile); ok {
			if err := d.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
		}
		id2, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if id2 != id {
			t.Fatalf("expected recycled page %d, got %d", id, id2)
		}
		got := make([]byte, f.PageSize())
		if err := f.Read(id2, got); err != nil {
			t.Fatalf("Read: %v", err)
		}
		for i, b := range got {
			if b != 0 {
				t.Fatalf("recycled page not zeroed at byte %d: %#x", i, b)
			}
		}
	})
}

func TestBoundsChecks(t *testing.T) {
	fileUnderTest(t, func(t *testing.T, f File) {
		buf := make([]byte, f.PageSize())
		if err := f.Read(NilPage, buf); err == nil {
			t.Error("Read(NilPage) succeeded, want error")
		}
		if err := f.Read(9999, buf); err == nil {
			t.Error("Read(out of range) succeeded, want error")
		}
		if err := f.Write(NilPage, buf); err == nil {
			t.Error("Write(NilPage) succeeded, want error")
		}
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if err := f.Read(id, buf[:10]); err == nil {
			t.Error("Read with short buffer succeeded, want error")
		}
		if err := f.Write(id, buf[:10]); err == nil {
			t.Error("Write with short buffer succeeded, want error")
		}
	})
}

func TestDoubleFree(t *testing.T) {
	fileUnderTest(t, func(t *testing.T, f File) {
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if err := f.Free(id); err != nil {
			t.Fatalf("Free: %v", err)
		}
		if err := f.Free(id); err == nil {
			t.Error("double Free succeeded, want error")
		}
		buf := make([]byte, f.PageSize())
		if err := f.Read(id, buf); err == nil {
			t.Error("Read of freed page succeeded, want error")
		}
	})
}

func TestNumPages(t *testing.T) {
	fileUnderTest(t, func(t *testing.T, f File) {
		if n := f.NumPages(); n != 0 {
			t.Fatalf("empty file NumPages = %d, want 0", n)
		}
		var ids []PageID
		for i := 0; i < 5; i++ {
			id, err := f.Alloc()
			if err != nil {
				t.Fatalf("Alloc: %v", err)
			}
			ids = append(ids, id)
		}
		if n := f.NumPages(); n != 5 {
			t.Fatalf("NumPages = %d, want 5", n)
		}
		if err := f.Free(ids[2]); err != nil {
			t.Fatalf("Free: %v", err)
		}
		if n := f.NumPages(); n != 4 {
			t.Fatalf("NumPages after free = %d, want 4", n)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	fileUnderTest(t, func(t *testing.T, f File) {
		id, _ := f.Alloc()
		buf := make([]byte, f.PageSize())
		_ = f.Write(id, buf)
		_ = f.Read(id, buf)
		_ = f.Read(id, buf)
		s := f.Stats()
		if s.Allocs != 1 || s.Writes != 1 || s.Reads != 2 {
			t.Fatalf("stats = %+v, want 1 alloc, 1 write, 2 reads", s)
		}
	})
}

func TestDiskFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := CreateDiskFile(path, 256)
	if err != nil {
		t.Fatalf("CreateDiskFile: %v", err)
	}
	var ids []PageID
	want := make(map[PageID][]byte)
	for i := 0; i < 10; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		buf := bytes.Repeat([]byte{byte(i + 1)}, 256)
		if err := f.Write(id, buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		ids = append(ids, id)
		want[id] = buf
	}
	if err := f.Free(ids[3]); err != nil {
		t.Fatalf("Free: %v", err)
	}
	delete(want, ids[3])
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatalf("OpenDiskFile: %v", err)
	}
	defer g.Close()
	if g.PageSize() != 256 {
		t.Fatalf("PageSize after reopen = %d, want 256", g.PageSize())
	}
	if g.NumPages() != 9 {
		t.Fatalf("NumPages after reopen = %d, want 9", g.NumPages())
	}
	buf := make([]byte, 256)
	for id, w := range want {
		if err := g.Read(id, buf); err != nil {
			t.Fatalf("Read(%d): %v", id, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("page %d content mismatch after reopen", id)
		}
	}
	// The freed page must be recycled before the file grows.
	id, err := g.Alloc()
	if err != nil {
		t.Fatalf("Alloc after reopen: %v", err)
	}
	if id != ids[3] {
		t.Fatalf("Alloc after reopen = %d, want recycled %d", id, ids[3])
	}
}

func TestOpenDiskFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	// Corrupting ONE header slot falls back to the other generation;
	// corrupting both makes the file unopenable with ErrCorruptFile.
	h, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte{0, 0, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	h.Close()
	g, err = OpenDiskFile(path)
	if err != nil {
		t.Fatalf("OpenDiskFile with one corrupt header slot: %v", err)
	}
	g.Close() // republishes a valid newest header
	h, err = os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, headerSlotSize} {
		if _, err := h.WriteAt([]byte{0, 0, 0, 0}, off); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()
	if _, err := OpenDiskFile(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("OpenDiskFile with both headers corrupt = %v, want ErrCorruptFile", err)
	}
}

// TestQuickMemDiskEquivalence drives random operation sequences against both
// implementations and checks they stay logically in lock step. Page ids may
// diverge (MemFile recycles freed pages immediately and LIFO; DiskFile
// quarantines them until the next checkpoint and then recycles FIFO), so
// each file tracks its own id for the nth live page.
func TestQuickMemDiskEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := NewMemFile(128)
		defer mem.Close()
		disk, err := CreateDiskFile(filepath.Join(t.TempDir(), "q.db"), 128)
		if err != nil {
			t.Fatalf("CreateDiskFile: %v", err)
		}
		defer disk.Close()
		var memLive, diskLive []PageID
		for op := 0; op < 200; op++ {
			switch r := rng.Intn(12); {
			case r < 4 || len(memLive) == 0: // alloc
				a, err1 := mem.Alloc()
				b, err2 := disk.Alloc()
				if err1 != nil || err2 != nil {
					t.Errorf("alloc: mem %v, disk %v", err1, err2)
					return false
				}
				memLive = append(memLive, a)
				diskLive = append(diskLive, b)
			case r < 8: // write+read the same logical page
				i := rng.Intn(len(memLive))
				buf := make([]byte, 128)
				rng.Read(buf)
				if err := mem.Write(memLive[i], buf); err != nil {
					t.Errorf("mem write: %v", err)
					return false
				}
				if err := disk.Write(diskLive[i], buf); err != nil {
					t.Errorf("disk write: %v", err)
					return false
				}
				m := make([]byte, 128)
				d := make([]byte, 128)
				mem.Read(memLive[i], m)
				disk.Read(diskLive[i], d)
				if !bytes.Equal(m, d) {
					t.Error("content divergence")
					return false
				}
			case r < 11: // free the same logical page
				i := rng.Intn(len(memLive))
				if err := mem.Free(memLive[i]); err != nil {
					t.Errorf("mem free: %v", err)
					return false
				}
				if err := disk.Free(diskLive[i]); err != nil {
					t.Errorf("disk free: %v", err)
					return false
				}
				memLive = append(memLive[:i], memLive[i+1:]...)
				diskLive = append(diskLive[:i], diskLive[i+1:]...)
			default: // checkpoint the disk file mid-run
				if err := disk.Sync(); err != nil {
					t.Errorf("disk sync: %v", err)
					return false
				}
			}
		}
		if mem.NumPages() != disk.NumPages() {
			t.Errorf("NumPages divergence: mem %d, disk %d", mem.NumPages(), disk.NumPages())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	if !tr.Touch(1) {
		t.Error("first Touch(1) = false, want true")
	}
	if tr.Touch(1) {
		t.Error("second Touch(1) = true, want false")
	}
	if !tr.Touch(2) {
		t.Error("first Touch(2) = false, want true")
	}
	if tr.Reads() != 2 {
		t.Errorf("Reads = %d, want 2", tr.Reads())
	}
	if !tr.Touched(1) || tr.Touched(3) {
		t.Error("Touched gave wrong answers")
	}
	tr.Reset()
	if tr.Reads() != 0 {
		t.Errorf("Reads after Reset = %d, want 0", tr.Reads())
	}
	if !tr.Touch(1) {
		t.Error("Touch(1) after Reset = false, want true")
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	if tr.Touch(1) {
		t.Error("nil tracker Touch = true, want false")
	}
	if tr.Reads() != 0 {
		t.Error("nil tracker Reads != 0")
	}
	if tr.Touched(1) {
		t.Error("nil tracker Touched = true")
	}
	tr.Reset() // must not panic
}

// TestDiskFileReopenFreeChain exercises the on-disk free list across close/
// reopen cycles: freed pages must be reclaimed in chain order after the
// closing checkpoint, NumPages must track live pages exactly, and the file
// must not grow while freed pages remain.
func TestDiskFileReopenFreeChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free three pages; the head of the free chain is the last freed.
	for _, i := range []int{1, 4, 6} {
		if err := f.Free(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.NumPages(); n != 5 {
		t.Fatalf("NumPages = %d, want 5", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.NumPages(); n != 5 {
		t.Fatalf("NumPages after reopen = %d, want 5", n)
	}
	// Allocation must reclaim the freed pages (in the order they entered
	// the checkpointed chain) before growing the file.
	for _, want := range []PageID{ids[1], ids[4], ids[6]} {
		id, err := g.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("Alloc reclaimed %d, want %d", id, want)
		}
	}
	// Free list exhausted: the next alloc extends the file.
	id, err := g.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if want := ids[len(ids)-1] + 1; id != want {
		t.Fatalf("Alloc after chain exhausted = %d, want fresh page %d", id, want)
	}
	if n := g.NumPages(); n != 9 {
		t.Fatalf("NumPages = %d, want 9", n)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// A second cycle sees the fully-allocated state.
	h, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if n := h.NumPages(); n != 9 {
		t.Fatalf("NumPages after second reopen = %d, want 9", n)
	}
	if id, err := h.Alloc(); err != nil || id != 10 {
		t.Fatalf("Alloc = %d, %v; want page 10", id, err)
	}
}

// TestDiskFileSync checks that Sync persists the header: pages allocated
// and written before a Sync are visible to a reader of the raw file even
// while the DiskFile stays open.
func TestDiskFileSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.db")
	f, err := CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 128)
	if err := f.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// The synced header and page are observable through the OS file.
	g, err := OpenDiskFile(path)
	if err != nil {
		t.Fatalf("OpenDiskFile after Sync: %v", err)
	}
	defer g.Close()
	if n := g.NumPages(); n != 1 {
		t.Fatalf("NumPages via synced header = %d, want 1", n)
	}
	buf := make([]byte, 128)
	if err := g.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("synced page contents not visible")
	}
}
