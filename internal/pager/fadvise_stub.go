//go:build !linux

package pager

// fadviseDontNeed is a no-op where posix_fadvise is unavailable; cold-cache
// benchmarks simply run warmer there.
func fadviseDontNeed(fd uintptr) error { return nil }
