package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// DiskFile is a crash-safe File backed by a BlockFile (normally an
// operating-system file). It combines three mechanisms:
//
//   - Checksummed pages. Every page slot on disk is the page payload
//     followed by a 12-byte sidecar trailer: a CRC32C of the payload and a
//     pair of free-list links alternating by generation parity. Read
//     verifies the checksum and returns
//     ErrCorruptPage instead of garbage. Because the checksum lives in the
//     sidecar, the page payload bytes are identical to an unchecksummed
//     file and the logical page counts reported by the experiments are
//     unchanged.
//
//   - Shadow-paged atomic checkpoints. Write and Alloc never overwrite a
//     page that is reachable from the last checkpoint (callers — the
//     copy-on-write B+-tree — write only freshly allocated pages), and
//     Free only defers a page to an in-memory pending list. Sync (a
//     checkpoint) fsyncs the data, then publishes the new file state by
//     writing one slot of a double-buffered, generation-numbered,
//     checksummed header pair and fsyncing again. A crash at any instant
//     therefore recovers to exactly the previous or the new checkpoint,
//     never a mix.
//
//   - Recovery on open. OpenDiskFile picks the newest header slot with a
//     valid checksum, adopts pages past the checkpointed page count
//     (orphaned shadow pages) into the pending free list, and rebuilds the
//     allocable free list by walking the on-disk free chain. Structural
//     damage — short or garbage headers, a page count pointing past EOF, a
//     broken free chain — reports ErrCorruptFile.
//
// The header also carries a small application payload (SetPayload/Payload),
// published atomically with each checkpoint; the index layers store their
// root (meta page id) there so that a recovered file is self-describing.
type DiskFile struct {
	mu       sync.Mutex
	b        BlockFile
	pageSize int
	slotSize int64
	numPages int    // page slots in the checkpointed prefix, incl. slot 0
	gen      uint64 // generation of the last published header
	payload  []byte // application payload for the next checkpoint

	// Free pages fall in two pools. allocable pages were already free at
	// the last checkpoint and are safe to reuse immediately. pending pages
	// were freed (or found orphaned) after it; they are still reachable
	// from the recoverable state, so reusing them before the next
	// checkpoint would corrupt recovery. Sync chains pending in front of
	// allocable, publishes the combined list, and only then promotes it.
	allocable []PageID
	pending   []PageID
	free      map[PageID]struct{} // membership for both pools

	stats    Stats
	rbuf     []byte // payload+CRC scratch, guarded by mu
	batchBuf []byte // ReadBatch slot scratch, guarded by mu
}

// BlockFile is the byte-addressed device a DiskFile stores its page slots
// on. *os.File satisfies it via CreateDiskFile/OpenDiskFile;
// internal/faultfs provides an in-memory implementation with fault
// injection and power-cut simulation for crash testing.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	// Sync forces previous writes to stable storage.
	Sync() error
	// Size reports the current length of the device in bytes.
	Size() (int64, error)
	Close() error
}

// osBlock adapts *os.File to BlockFile.
type osBlock struct{ *os.File }

func (b osBlock) Size() (int64, error) {
	st, err := b.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ErrCorruptFile reports a page file whose structure cannot be trusted:
// truncated or garbage headers, geometry pointing past EOF, or a broken
// free-page chain. Errors from OpenDiskFile match it with errors.Is.
var ErrCorruptFile = errors.New("pager: corrupt page file")

// ErrCorruptPage reports a page whose stored checksum does not match its
// payload. Match with errors.As (or errors.Is against a value with the
// same ID).
type ErrCorruptPage struct{ ID PageID }

func (e ErrCorruptPage) Error() string {
	return fmt.Sprintf("pager: page %d failed checksum verification", e.ID)
}

const (
	diskMagic   = 0x55494458 // "UIDX"
	diskVersion = 2

	// Each header slot is 64 bytes; the two slots alternate by generation
	// parity and both fit in page slot 0, so the minimum page size is 128.
	headerSlotSize = 64
	headerPairSize = 2 * headerSlotSize

	// Per-page sidecar trailer: 4-byte CRC32C of the payload, then TWO
	// 4-byte free-list links selected by generation parity (like the header
	// pair). A checkpoint threads its free chain through the links of the
	// incoming generation's parity only, so the chain of the still-committed
	// generation is never modified in place — a crash mid-checkpoint cannot
	// damage it, even when a page was recycled and freed again in between.
	slotTrailerSize = 12
	crcOff          = 0 // within the trailer

	// MaxPayload is the size limit for the application payload carried in
	// the checkpoint header.
	MaxPayload = 24

	// MinDiskPageSize is the smallest page size a DiskFile supports (the
	// header pair must fit in page slot 0).
	MinDiskPageSize = headerPairSize

	maxDiskPageSize = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// linkOff returns the trailer offset of the free-list link belonging to
// generation gen (the slots alternate by parity).
func linkOff(gen uint64) int64 {
	return 4 + 4*int64(gen%2)
}

// header slot layout (big-endian):
//
//	[0:4)   magic "UIDX"
//	[4:8)   format version (2)
//	[8:16)  generation
//	[16:20) page size
//	[20:24) numPages (checkpointed page slots, incl. slot 0)
//	[24:28) free-list head
//	[28:32) free-list length
//	[32:33) payload length
//	[33:57) payload
//	[57:60) zero padding
//	[60:64) CRC32C of bytes [0:60)
type diskHeader struct {
	gen      uint64
	pageSize int
	numPages int
	freeHead PageID
	numFree  int
	payload  []byte
}

func encodeHeader(h diskHeader) [headerSlotSize]byte {
	var b [headerSlotSize]byte
	binary.BigEndian.PutUint32(b[0:], diskMagic)
	binary.BigEndian.PutUint32(b[4:], diskVersion)
	binary.BigEndian.PutUint64(b[8:], h.gen)
	binary.BigEndian.PutUint32(b[16:], uint32(h.pageSize))
	binary.BigEndian.PutUint32(b[20:], uint32(h.numPages))
	binary.BigEndian.PutUint32(b[24:], uint32(h.freeHead))
	binary.BigEndian.PutUint32(b[28:], uint32(h.numFree))
	b[32] = byte(len(h.payload))
	copy(b[33:33+MaxPayload], h.payload)
	binary.BigEndian.PutUint32(b[60:], crc32.Checksum(b[:60], castagnoli))
	return b
}

// decodeHeader parses one header slot, returning ok=false when the slot is
// not a valid version-2 header (wrong magic or version, bad checksum, or
// nonsense geometry).
func decodeHeader(b []byte) (diskHeader, bool) {
	var h diskHeader
	if len(b) < headerSlotSize {
		return h, false
	}
	if binary.BigEndian.Uint32(b[0:]) != diskMagic ||
		binary.BigEndian.Uint32(b[4:]) != diskVersion {
		return h, false
	}
	if binary.BigEndian.Uint32(b[60:]) != crc32.Checksum(b[:60], castagnoli) {
		return h, false
	}
	h.gen = binary.BigEndian.Uint64(b[8:])
	h.pageSize = int(binary.BigEndian.Uint32(b[16:]))
	h.numPages = int(binary.BigEndian.Uint32(b[20:]))
	h.freeHead = PageID(binary.BigEndian.Uint32(b[24:]))
	h.numFree = int(binary.BigEndian.Uint32(b[28:]))
	n := int(b[32])
	if n > MaxPayload {
		return h, false
	}
	h.payload = append([]byte(nil), b[33:33+n]...)
	if h.pageSize < MinDiskPageSize || h.pageSize > maxDiskPageSize ||
		h.numPages < 1 || h.numFree < 0 || h.numFree >= h.numPages {
		return h, false
	}
	return h, true
}

// CreateDiskFile creates (or truncates) a page file at path. pageSize <= 0
// selects DefaultPageSize; the minimum is MinDiskPageSize.
func CreateDiskFile(path string, pageSize int) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d, err := CreateDiskFileOn(osBlock{f}, pageSize)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return d, nil
}

// CreateDiskFileOn initialises a page file on an arbitrary BlockFile, which
// must be empty (its prior contents are ignored and overwritten). The
// initial empty checkpoint is made durable before returning.
func CreateDiskFileOn(b BlockFile, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < MinDiskPageSize {
		return nil, fmt.Errorf("pager: page size %d too small (minimum %d)", pageSize, MinDiskPageSize)
	}
	if pageSize > maxDiskPageSize {
		return nil, fmt.Errorf("pager: page size %d too large", pageSize)
	}
	d := &DiskFile{
		b:        b,
		pageSize: pageSize,
		slotSize: int64(pageSize) + slotTrailerSize,
		numPages: 1,
		free:     make(map[PageID]struct{}),
		rbuf:     make([]byte, pageSize+4),
	}
	// Zero the whole of slot 0 first so the file always spans complete
	// slots, then publish generation 1 on top of it.
	if _, err := b.WriteAt(make([]byte, d.slotSize), 0); err != nil {
		return nil, err
	}
	if err := d.checkpointLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// OpenDiskFile opens an existing page file created by CreateDiskFile,
// recovering to its last durable checkpoint.
func OpenDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	d, err := OpenDiskFileOn(osBlock{f})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// OpenDiskFileAt is OpenDiskFile pinned to an explicit generation; see
// OpenDiskFileOnAt.
func OpenDiskFileAt(path string, gen uint64) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	d, err := OpenDiskFileOnAt(osBlock{f}, gen)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// OpenDiskFileOn recovers a page file from an arbitrary BlockFile. It
// selects the newest header slot with a valid checksum, adopts orphaned
// shadow pages written after that checkpoint into the pending free list,
// and rebuilds the allocable free list from the on-disk chain. Structural
// damage returns an error matching ErrCorruptFile.
func OpenDiskFileOn(b BlockFile) (*DiskFile, error) {
	return openDiskFileOn(b, 0, false)
}

// OpenDiskFileOnAt recovers a page file at an explicit header generation
// instead of the newest one — the rollback a shard manifest performs when a
// crash separated a shard's checkpoint from the manifest commit recording
// it. Opening at generation g is sound while the file's newest generation is
// at most g+1: Alloc preserves the committed generation's sidecar free
// links, shadow writes only touch pages free at g, and the next checkpoint
// from the reopened state publishes g+1 over the orphaned slot. The missing
// generation reports ErrCorruptFile.
func OpenDiskFileOnAt(b BlockFile, gen uint64) (*DiskFile, error) {
	return openDiskFileOn(b, gen, true)
}

func openDiskFileOn(b BlockFile, wantGen uint64, pinned bool) (*DiskFile, error) {
	size, err := b.Size()
	if err != nil {
		return nil, err
	}
	if size < headerPairSize {
		return nil, fmt.Errorf("%w: file too short for header pair (%d bytes)", ErrCorruptFile, size)
	}
	var pair [headerPairSize]byte
	if err := readFull(b, pair[:], 0); err != nil {
		return nil, fmt.Errorf("%w: reading header pair: %v", ErrCorruptFile, err)
	}
	h0, ok0 := decodeHeader(pair[0:headerSlotSize])
	h1, ok1 := decodeHeader(pair[headerSlotSize:])
	var hdr diskHeader
	switch {
	case pinned:
		switch {
		case ok0 && h0.gen == wantGen:
			hdr = h0
		case ok1 && h1.gen == wantGen:
			hdr = h1
		default:
			return nil, fmt.Errorf("%w: no valid header for generation %d", ErrCorruptFile, wantGen)
		}
	case ok0 && ok1:
		hdr = h0
		if h1.gen > h0.gen {
			hdr = h1
		}
	case ok0:
		hdr = h0
	case ok1:
		hdr = h1
	default:
		return nil, fmt.Errorf("%w: no valid header (bad magic, version, or checksum)", ErrCorruptFile)
	}
	d := &DiskFile{
		b:        b,
		pageSize: hdr.pageSize,
		slotSize: int64(hdr.pageSize) + slotTrailerSize,
		numPages: hdr.numPages,
		gen:      hdr.gen,
		payload:  hdr.payload,
		free:     make(map[PageID]struct{}),
		rbuf:     make([]byte, hdr.pageSize+4),
	}
	physPages := int(size / d.slotSize) // a torn tail slot is not a page
	if hdr.numPages > physPages {
		return nil, fmt.Errorf("%w: header page count %d exceeds file size (%d whole slots)",
			ErrCorruptFile, hdr.numPages, physPages)
	}
	// Walk the checkpointed free chain through the sidecar links. The
	// chain length is known, so a break, a cycle, or an out-of-range link
	// is detected rather than followed.
	cur := hdr.freeHead
	for i := 0; i < hdr.numFree; i++ {
		if cur == NilPage || int(cur) >= hdr.numPages {
			return nil, fmt.Errorf("%w: free chain link %d out of range at position %d", ErrCorruptFile, cur, i)
		}
		if _, dup := d.free[cur]; dup {
			return nil, fmt.Errorf("%w: cycle in free chain at page %d", ErrCorruptFile, cur)
		}
		d.free[cur] = struct{}{}
		d.allocable = append(d.allocable, cur)
		var link [4]byte
		if err := readFull(b, link[:], d.offset(cur)+int64(d.pageSize)+linkOff(hdr.gen)); err != nil {
			return nil, fmt.Errorf("%w: reading free link of page %d: %v", ErrCorruptFile, cur, err)
		}
		cur = PageID(binary.BigEndian.Uint32(link[:]))
	}
	if cur != NilPage {
		return nil, fmt.Errorf("%w: free chain longer than header count %d", ErrCorruptFile, hdr.numFree)
	}
	// Page slots past the checkpointed count are shadow pages from an
	// interrupted checkpoint. Reclaim them — but only through pending, as
	// their sidecar links were never committed.
	for id := hdr.numPages; id < physPages; id++ {
		d.numPages++
		d.pending = append(d.pending, PageID(id))
		d.free[PageID(id)] = struct{}{}
	}
	return d, nil
}

// readFull reads exactly len(buf) bytes at off; a short read is an error.
func readFull(b io.ReaderAt, buf []byte, off int64) error {
	n, err := b.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// PageSize implements File.
func (d *DiskFile) PageSize() int { return d.pageSize }

func (d *DiskFile) offset(id PageID) int64 {
	return int64(id) * d.slotSize
}

func (d *DiskFile) checkID(id PageID) error {
	if id == NilPage || int(id) >= d.numPages {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if _, isFree := d.free[id]; isFree {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	return nil
}

// Alloc implements File. Only pages that were already free at the last
// checkpoint are recycled; pages freed since then stay quarantined until
// the next Sync so that recovery never finds them overwritten.
func (d *DiskFile) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Allocs++
	zero := d.rbuf[:d.pageSize+4]
	for i := range zero {
		zero[i] = 0
	}
	binary.BigEndian.PutUint32(zero[d.pageSize:], crc32.Checksum(zero[:d.pageSize], castagnoli))
	if len(d.allocable) > 0 {
		id := d.allocable[0]
		// Write payload+CRC only, preserving the sidecar link: the page
		// stays on the durable free chain until the next checkpoint.
		if _, err := d.b.WriteAt(zero, d.offset(id)); err != nil {
			return NilPage, err
		}
		d.allocable = d.allocable[1:]
		delete(d.free, id)
		return id, nil
	}
	id := PageID(d.numPages)
	// Appended pages get a full slot (zero link included) so the file
	// always spans complete slots.
	slot := make([]byte, d.slotSize)
	copy(slot, zero)
	if _, err := d.b.WriteAt(slot, d.offset(id)); err != nil {
		return NilPage, err
	}
	d.numPages++
	return id, nil
}

// Read implements File. The payload checksum is verified before any byte
// is copied out; a mismatch returns ErrCorruptPage.
func (d *DiskFile) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != d.pageSize {
		return ErrPageSize
	}
	if err := d.checkID(id); err != nil {
		return err
	}
	d.stats.Reads++
	if err := readFull(d.b, d.rbuf, d.offset(id)); err != nil {
		return fmt.Errorf("pager: reading page %d: %w", id, err)
	}
	sum := binary.BigEndian.Uint32(d.rbuf[d.pageSize:])
	if sum != crc32.Checksum(d.rbuf[:d.pageSize], castagnoli) {
		return ErrCorruptPage{ID: id}
	}
	copy(buf, d.rbuf[:d.pageSize])
	return nil
}

// Write implements File. The payload and its checksum are written together;
// the sidecar link bytes are left untouched.
func (d *DiskFile) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != d.pageSize {
		return ErrPageSize
	}
	if err := d.checkID(id); err != nil {
		return err
	}
	d.stats.Writes++
	copy(d.rbuf, buf)
	binary.BigEndian.PutUint32(d.rbuf[d.pageSize:], crc32.Checksum(buf, castagnoli))
	_, err := d.b.WriteAt(d.rbuf, d.offset(id))
	return err
}

// Free implements File. The page is only quarantined in memory; nothing is
// written until the next Sync publishes the extended free list, so freeing
// can never damage the state a crash would recover to.
func (d *DiskFile) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == NilPage || int(id) >= d.numPages {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if _, isFree := d.free[id]; isFree {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	d.stats.Frees++
	d.pending = append(d.pending, id)
	d.free[id] = struct{}{}
	return nil
}

// NumPages implements File.
func (d *DiskFile) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages - 1 - len(d.free)
}

// Stats implements File.
func (d *DiskFile) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetPayload stages up to MaxPayload bytes of application state to be
// published atomically with the next checkpoint. The index layers store
// their root (meta page id) here so a recovered file is self-describing.
func (d *DiskFile) SetPayload(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(p) > MaxPayload {
		return fmt.Errorf("pager: payload %d bytes exceeds maximum %d", len(p), MaxPayload)
	}
	d.payload = append(d.payload[:0], p...)
	return nil
}

// Payload returns a copy of the application payload recovered from (or
// staged for) the current checkpoint.
func (d *DiskFile) Payload() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.payload...)
}

// Generation returns the generation number of the last published
// checkpoint header. It increases by one per successful Sync.
func (d *DiskFile) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// Sync checkpoints the file: it links the pending and allocable free pages
// into one on-disk chain, fsyncs all data written so far, publishes a new
// header generation (geometry, free list, payload, checksum) into the
// inactive slot of the header pair, and fsyncs again. After Sync returns
// nil the current state survives a crash; if it returns an error the
// previous checkpoint remains intact and recoverable.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

// Checkpoint is SetPayload followed by Sync under one lock.
func (d *DiskFile) Checkpoint(payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(payload) > MaxPayload {
		return fmt.Errorf("pager: payload %d bytes exceeds maximum %d", len(payload), MaxPayload)
	}
	d.payload = append(d.payload[:0], payload...)
	return d.checkpointLocked()
}

func (d *DiskFile) checkpointLocked() error {
	// The new free chain is pending (not yet reusable) in front of
	// allocable (already free at the last checkpoint). It is threaded
	// through the link slots of the NEW generation's parity, leaving the
	// committed generation's chain untouched on disk — so these writes are
	// safe at any crash point, even for a page that sat on the committed
	// chain, was recycled, and was freed again since.
	chain := make([]PageID, 0, len(d.pending)+len(d.allocable))
	chain = append(chain, d.pending...)
	chain = append(chain, d.allocable...)
	var link [4]byte
	for i, id := range chain {
		next := NilPage
		if i+1 < len(chain) {
			next = chain[i+1]
		}
		binary.BigEndian.PutUint32(link[:], uint32(next))
		if _, err := d.b.WriteAt(link[:], d.offset(id)+int64(d.pageSize)+linkOff(d.gen+1)); err != nil {
			return fmt.Errorf("pager: writing free link of page %d: %w", id, err)
		}
	}
	// First barrier: all page payloads, checksums and links are durable
	// before any header points at them.
	if err := d.b.Sync(); err != nil {
		return err
	}
	hdr := diskHeader{
		gen:      d.gen + 1,
		pageSize: d.pageSize,
		numPages: d.numPages,
		numFree:  len(chain),
		freeHead: NilPage,
		payload:  d.payload,
	}
	if len(chain) > 0 {
		hdr.freeHead = chain[0]
	}
	buf := encodeHeader(hdr)
	slot := int64(hdr.gen%2) * headerSlotSize
	if _, err := d.b.WriteAt(buf[:], slot); err != nil {
		return fmt.Errorf("pager: writing header: %w", err)
	}
	// Second barrier: the new generation is durable. Only now may pages
	// freed before this checkpoint be recycled.
	if err := d.b.Sync(); err != nil {
		return err
	}
	d.gen = hdr.gen
	d.allocable = chain
	d.pending = nil
	return nil
}

// CloseDiscard closes the backing file without checkpointing: work since
// the last Sync is discarded, and the file keeps its last durable
// checkpoint. Callers that stage a payload but fail mid-protocol use this
// to avoid publishing a header whose payload no longer matches the pages.
func (d *DiskFile) CloseDiscard() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.Close()
}

// Close implements File. It checkpoints before closing, so a nil return
// means the current state is durable on disk.
func (d *DiskFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkpointLocked(); err != nil {
		d.b.Close()
		return err
	}
	return d.b.Close()
}
