package nix

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/schema"
	"repro/internal/store"
)

// fixture mirrors the paper's Example 1 database (see core package tests).
type fixture struct {
	st                     *store.Store
	v1, v2, v3, v4, v5, v6 store.OID
	c1, c2, c3             store.OID
	e1, e2, e3             store.OID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", schema.Attr{Name: "Age", Type: encoding.AttrUint64}))
	must(s.AddClass("Company", "",
		schema.Attr{Name: "Name", Type: encoding.AttrString},
		schema.Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("Vehicle", "",
		schema.Attr{Name: "Color", Type: encoding.AttrString},
		schema.Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))
	must(s.AddClass("Truck", "Vehicle"))
	must(s.AddClass("AutoCompany", "Company"))
	must(s.AddClass("JapaneseAutoCompany", "AutoCompany"))
	if _, err := s.AssignCodes(); err != nil {
		t.Fatal(err)
	}
	st := store.New(s)
	f := &fixture{st: st}
	ins := func(class string, attrs store.Attrs) store.OID {
		t.Helper()
		oid, err := st.Insert(class, attrs)
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	f.e1 = ins("Employee", store.Attrs{"Age": 50})
	f.e2 = ins("Employee", store.Attrs{"Age": 60})
	f.e3 = ins("Employee", store.Attrs{"Age": 45})
	f.c1 = ins("JapaneseAutoCompany", store.Attrs{"Name": "Subaru", "President": f.e3})
	f.c2 = ins("AutoCompany", store.Attrs{"Name": "Fiat", "President": f.e1})
	f.c3 = ins("AutoCompany", store.Attrs{"Name": "Renault", "President": f.e2})
	f.v1 = ins("Vehicle", store.Attrs{"Color": "White", "ManufacturedBy": f.c1})
	f.v2 = ins("Automobile", store.Attrs{"Color": "White", "ManufacturedBy": f.c2})
	f.v3 = ins("Automobile", store.Attrs{"Color": "Red", "ManufacturedBy": f.c2})
	f.v4 = ins("CompactAutomobile", store.Attrs{"Color": "Red", "ManufacturedBy": f.c3})
	f.v5 = ins("CompactAutomobile", store.Attrs{"Color": "Blue", "ManufacturedBy": f.c1})
	f.v6 = ins("CompactAutomobile", store.Attrs{"Color": "White", "ManufacturedBy": f.c2})
	return f
}

func (f *fixture) ageIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := New(pager.NewMemFile(0), f.st, Spec{
		Name: "nix-age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix
}

func wantSet(t *testing.T, got []encoding.OID, want ...store.OID) {
	t.Helper()
	m := map[encoding.OID]bool{}
	for _, g := range got {
		m[g] = true
	}
	if len(m) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, w := range want {
		if !m[w] {
			t.Fatalf("missing %d in %v", w, got)
		}
	}
}

func TestValidation(t *testing.T) {
	f := newFixture(t)
	bad := []Spec{
		{Root: "Ghost", Attr: "Age"},
		{Root: "Vehicle", Refs: []string{"Ghost"}, Attr: "Age"},
		{Root: "Vehicle", Refs: []string{"Color"}, Attr: "Age"},
		{Root: "Vehicle", Refs: []string{"ManufacturedBy"}, Attr: "President"},
	}
	for i, spec := range bad {
		if _, err := New(pager.NewMemFile(0), f.st, spec); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestLookupAllPositions: NIX's defining feature — one value lookup serves
// every class along the path, including subclasses.
func TestLookupAllPositions(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	// Age 50: president e1 of Fiat c2, vehicles v2, v3, v6.
	got, stats, err := ix.Lookup(50, "Vehicle", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSet(t, got, f.v2, f.v3, f.v6)
	if stats.PagesRead == 0 || stats.RecordsRead != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	got, _, _ = ix.Lookup(50, "Company", nil)
	wantSet(t, got, f.c2)
	got, _, _ = ix.Lookup(50, "Employee", nil)
	wantSet(t, got, f.e1)
	// Subclass queries.
	got, _, _ = ix.Lookup(45, "JapaneseAutoCompany", nil)
	wantSet(t, got, f.c1)
	got, _, _ = ix.Lookup(45, "CompactAutomobile", nil)
	wantSet(t, got, f.v5)
	// Missing value.
	got, _, _ = ix.Lookup(99, "Vehicle", nil)
	if len(got) != 0 {
		t.Fatalf("missing value returned %v", got)
	}
}

func TestLookupRange(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	got, stats, err := ix.LookupRange(46, 200, "Vehicle", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ages 50 (v2,v3,v6) and 60 (v4); 45 excluded.
	wantSet(t, got, f.v2, f.v3, f.v4, f.v6)
	if stats.RecordsRead != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestLookupRestricted: mid-path restriction needs auxiliary descents.
func TestLookupRestricted(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	// White-collar query: vehicles with president age 50, restricted to
	// company c2 — all of Fiat's fleet qualifies.
	got, stats, err := ix.LookupRestricted(50, "Vehicle", "Company", []store.OID{f.c2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSet(t, got, f.v2, f.v3, f.v6)
	if stats.AuxLookups == 0 {
		t.Fatalf("restriction used no aux lookups: %+v", stats)
	}
	// Restricted to a company that does not match.
	got, _, err = ix.LookupRestricted(50, "Vehicle", "Company", []store.OID{f.c1}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	// Restriction must be downstream on the path.
	if _, _, err := ix.LookupRestricted(50, "Company", "Vehicle", nil, nil); err == nil {
		t.Error("upstream restriction accepted")
	}
}

// TestUpdateFlow exercises the NIX update path: president switch via
// ValuesThrough + Refresh.
func TestUpdateFlow(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	before, err := ix.ValuesThrough(f.c2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.st.SetAttr(f.c2, "President", f.e3); err != nil { // 50 -> 45
		t.Fatal(err)
	}
	after, err := ix.ValuesThrough(f.c2)
	if err != nil {
		t.Fatal(err)
	}
	union := map[string]bool{}
	for k := range before {
		union[k] = true
	}
	for k := range after {
		union[k] = true
	}
	if err := ix.Refresh(union); err != nil {
		t.Fatal(err)
	}
	got, _, _ := ix.Lookup(50, "Vehicle", nil)
	if len(got) != 0 {
		t.Fatalf("stale age-50 vehicles: %v", got)
	}
	got, _, _ = ix.Lookup(45, "Vehicle", nil)
	wantSet(t, got, f.v1, f.v5, f.v2, f.v3, f.v6)
	got, _, _ = ix.Lookup(45, "Company", nil)
	wantSet(t, got, f.c1, f.c2)
}

// TestRemoveObject: deleting a vehicle updates the affected record.
func TestRemoveObject(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	vals, err := ix.RemoveObject(f.v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.st.Delete(f.v2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Refresh(vals); err != nil {
		t.Fatal(err)
	}
	got, _, _ := ix.Lookup(50, "Vehicle", nil)
	wantSet(t, got, f.v3, f.v6)
	// Companies/employees for age 50 survive (other chains remain).
	got, _, _ = ix.Lookup(50, "Company", nil)
	wantSet(t, got, f.c2)
}

// TestValueDisappears: removing the last chain of a value removes the
// primary record entirely.
func TestValueDisappears(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3 values", ix.Len())
	}
	vals, err := ix.RemoveObject(f.v4) // only age-60 vehicle
	if err != nil {
		t.Fatal(err)
	}
	if err := f.st.Delete(f.v4); err != nil {
		t.Fatal(err)
	}
	if err := ix.Refresh(vals); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d after removing the last age-60 chain", ix.Len())
	}
}

func TestBuildTwiceFails(t *testing.T) {
	f := newFixture(t)
	ix := f.ageIndex(t)
	if err := ix.Build(); err == nil {
		t.Error("second Build succeeded")
	}
	if n, err := ix.PageCount(); err != nil || n == 0 {
		t.Errorf("PageCount = %d, %v", n, err)
	}
	if err := ix.DropCache(); err != nil {
		t.Error(err)
	}
}
