package nix

import (
	"sync"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/store"
)

// buildStressIndex creates the Example-1 age index, optionally behind a
// buffer pool.
func buildStressIndex(t *testing.T, f *fixture, pooled bool) *Index {
	t.Helper()
	var pf pager.File = pager.NewMemFile(0)
	if pooled {
		pool, err := bufferpool.New(pf, bufferpool.Config{Pages: 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pool.Close() })
		pf = pool
	}
	ix, err := New(pf, f.st, Spec{
		Name: "nix-age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ix.DropCache(); err != nil {
		t.Fatal(err)
	}
	return ix
}

// nixQuery covers exact, range, and restricted lookups.
type nixQuery struct {
	kind     string // "exact", "range", "restricted"
	v, hi    any
	class    string
	restrict string
	allowed  []store.OID
}

func nixQueries(f *fixture) []nixQuery {
	return []nixQuery{
		{kind: "exact", v: 50, class: "Vehicle"},
		{kind: "exact", v: 50, class: "Company"},
		{kind: "exact", v: 45, class: "CompactAutomobile"},
		{kind: "exact", v: 60, class: "Employee"},
		{kind: "range", v: 46, hi: 200, class: "Vehicle"},
		{kind: "range", v: 40, hi: 55, class: "Automobile"},
		{kind: "restricted", v: 50, class: "Vehicle", restrict: "Company", allowed: []store.OID{f.c2}},
		{kind: "restricted", v: 45, class: "Vehicle", restrict: "Company", allowed: []store.OID{f.c1, f.c3}},
	}
}

func runNixQuery(ix *Index, q nixQuery, tr *pager.Tracker) ([]encoding.OID, Stats, error) {
	switch q.kind {
	case "range":
		return ix.LookupRange(q.v, q.hi, q.class, tr)
	case "restricted":
		return ix.LookupRestricted(q.v, q.class, q.restrict, q.allowed, tr)
	default:
		return ix.Lookup(q.v, q.class, tr)
	}
}

// TestConcurrentReaders runs mixed exact/range/restricted lookups from many
// goroutines (direct and pooled page file) with private trackers, checking
// every result against the sequential baseline. Run under -race.
func TestConcurrentReaders(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		name := "direct"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			ix := buildStressIndex(t, f, pooled)
			queries := nixQueries(f)
			want := make([][]encoding.OID, len(queries))
			for i, q := range queries {
				oids, _, err := runNixQuery(ix, q, nil)
				if err != nil {
					t.Fatalf("baseline %d: %v", i, err)
				}
				want[i] = oids
			}

			const goroutines = 10
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tr := pager.NewTracker()
					for rep := 0; rep < 25; rep++ {
						i := (g + rep) % len(queries)
						oids, stats, err := runNixQuery(ix, queries[i], tr)
						if err != nil {
							t.Errorf("g%d query %d: %v", g, i, err)
							return
						}
						if len(oids) != len(want[i]) {
							t.Errorf("g%d query %d: %d oids, want %d", g, i, len(oids), len(want[i]))
							return
						}
						for k := range oids {
							if oids[k] != want[i][k] {
								t.Errorf("g%d query %d oid %d: %v want %v", g, i, k, oids[k], want[i][k])
								return
							}
						}
						if stats.Matches != len(want[i]) {
							t.Errorf("g%d query %d: stats.Matches=%d want %d", g, i, stats.Matches, len(want[i]))
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentTrackerInvariance: merged per-goroutine distinct-page
// counts equal a sequential run under one shared tracker.
func TestConcurrentTrackerInvariance(t *testing.T) {
	f := newFixture(t)
	ix := buildStressIndex(t, f, false)
	queries := nixQueries(f)

	shared := pager.NewTracker()
	for _, q := range queries {
		if _, _, err := runNixQuery(ix, q, shared); err != nil {
			t.Fatal(err)
		}
	}

	per := make([]*pager.Tracker, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		per[i] = pager.NewTracker()
		wg.Add(1)
		go func(i int, q nixQuery) {
			defer wg.Done()
			if _, _, err := runNixQuery(ix, q, per[i]); err != nil {
				t.Error(err)
			}
		}(i, q)
	}
	wg.Wait()

	merged := pager.NewTracker()
	for _, tr := range per {
		merged.Merge(tr)
	}
	if merged.Reads() != shared.Reads() {
		t.Fatalf("merged concurrent pages %d != sequential shared pages %d",
			merged.Reads(), shared.Reads())
	}
}
