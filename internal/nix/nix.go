// Package nix implements the Nested-Inherited Index (NIX) of Bertino and
// Foscoli (IEEE TKDE 7(2), 1995), the structure the U-index paper compares
// against qualitatively in Section 4.4 and names as future experimental
// work in Section 6.
//
// NIX associates with each attribute value *all* object instances of every
// class (and subclass) along the indexed path: the primary structure is a
// key-grouped B+-tree whose leaf record for a value holds a directory
// {class → object ids} covering every path position; an auxiliary
// structure maps each object to the object it references at the next path
// position (its link toward the terminal), which serves both mid-path
// restriction joins and update discovery.
//
// The relevant cost contrasts with the U-index (paper Section 4.4):
//
//   - single-class and whole-subtree queries are comparable (one descent
//     plus the record — NIX records are larger, spilling to overflow pages
//     sooner);
//   - restricting a mid-path position costs NIX one auxiliary descent per
//     candidate ("the U-index scheme has an advantage since it stores the
//     entire (compressed) path");
//   - updates of end-of-path objects touch the auxiliary structure too
//     ("it is expected to have a worse update performance for end of path
//     objects").
package nix

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/store"
)

// Spec declares a NIX index; the fields mirror core.Spec.
type Spec struct {
	Name string
	Root string
	Refs []string
	Attr string
}

// Index is a live NIX index over a store.
type Index struct {
	spec     Spec
	st       *store.Store
	primary  *btree.Tree // attr-value bytes -> directory blob
	aux      *btree.Tree // classID(2) ‖ oid(4) -> next-oid(4) [+ value bytes for terminals]
	pathCls  []string    // root-first
	attrType encoding.AttrType
	classID  map[string]uint16
	idClass  []string
}

// Stats reports the cost of one query.
type Stats struct {
	PagesRead   int
	AuxLookups  int // auxiliary-structure descents (restriction joins)
	Matches     int
	RecordsRead int
}

// New creates an empty NIX index over the store in the page file (primary
// and auxiliary structures share it).
func New(f pager.File, st *store.Store, spec Spec) (*Index, error) {
	sch := st.Schema()
	if _, ok := sch.Class(spec.Root); !ok {
		return nil, fmt.Errorf("nix: unknown root class %q", spec.Root)
	}
	pathCls := []string{spec.Root}
	cur := spec.Root
	for _, ref := range spec.Refs {
		a, ok := sch.AttrOf(cur, ref)
		if !ok || !a.IsRef() {
			return nil, fmt.Errorf("nix: %q is not a reference attribute of %q", ref, cur)
		}
		cur = a.Ref
		pathCls = append(pathCls, cur)
	}
	attr, ok := sch.AttrOf(cur, spec.Attr)
	if !ok || attr.IsRef() {
		return nil, fmt.Errorf("nix: %q is not a scalar attribute of %q", spec.Attr, cur)
	}
	primary, err := btree.Create(f, btree.Config{})
	if err != nil {
		return nil, err
	}
	aux, err := btree.Create(f, btree.Config{})
	if err != nil {
		return nil, err
	}
	ix := &Index{
		spec:     spec,
		st:       st,
		primary:  primary,
		aux:      aux,
		pathCls:  pathCls,
		attrType: attr.Type,
		classID:  make(map[string]uint16),
	}
	for i, c := range sch.Classes() {
		ix.classID[c] = uint16(i)
		ix.idClass = append(ix.idClass, c)
	}
	return ix, nil
}

// directory maps classID -> sorted oids.
type directory map[uint16][]encoding.OID

func encodeDirectory(d directory) []byte {
	ids := make([]uint16, 0, len(d))
	for id := range d {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(ids)))
	for _, id := range ids {
		out = binary.BigEndian.AppendUint16(out, id)
		out = binary.AppendUvarint(out, uint64(len(d[id])))
		for _, o := range d[id] {
			out = binary.BigEndian.AppendUint32(out, uint32(o))
		}
	}
	return out
}

func decodeDirectory(b []byte) (directory, error) {
	d := directory{}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("nix: corrupt directory")
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("nix: corrupt directory class id")
		}
		id := binary.BigEndian.Uint16(b)
		b = b[2:]
		cnt, sz := binary.Uvarint(b)
		if sz <= 0 || len(b[sz:]) < int(cnt)*4 {
			return nil, fmt.Errorf("nix: corrupt directory list")
		}
		b = b[sz:]
		oids := make([]encoding.OID, cnt)
		for j := range oids {
			oids[j] = encoding.OID(binary.BigEndian.Uint32(b))
			b = b[4:]
		}
		d[id] = oids
	}
	return d, nil
}

func auxKey(classID uint16, oid encoding.OID) []byte {
	out := binary.BigEndian.AppendUint16(nil, classID)
	return binary.BigEndian.AppendUint32(out, uint32(oid))
}

// chains enumerates full root-first path instantiations starting at a root
// object.
func (ix *Index) chains(oid store.OID, pos int) ([][]store.OID, error) {
	if pos == len(ix.pathCls)-1 {
		return [][]store.OID{{oid}}, nil
	}
	var out [][]store.OID
	for _, t := range ix.st.DerefMulti(oid, ix.spec.Refs[pos]) {
		subs, err := ix.chains(t, pos+1)
		if err != nil {
			return nil, err
		}
		for _, s := range subs {
			out = append(out, append([]store.OID{oid}, s...))
		}
	}
	return out, nil
}

// valueOf returns the encoded attribute value of a terminal object.
func (ix *Index) valueOf(oid store.OID) ([]byte, bool, error) {
	o, ok := ix.st.Get(oid)
	if !ok {
		return nil, false, fmt.Errorf("nix: missing object %d", oid)
	}
	v, ok := o.Attr(ix.spec.Attr)
	if !ok {
		return nil, false, nil
	}
	b, err := ix.attrType.EncodeValue(v)
	return b, err == nil, err
}

// Build populates an empty index from the store.
func (ix *Index) Build() error {
	if ix.primary.Len() != 0 {
		return fmt.Errorf("nix: Build on non-empty index")
	}
	records := map[string]directory{}
	type auxRec struct {
		next encoding.OID
	}
	auxes := map[string]auxRec{}
	for _, root := range ix.st.HierarchyExtent(ix.spec.Root) {
		cs, err := ix.chains(root, 0)
		if err != nil {
			return err
		}
		for _, c := range cs {
			vb, ok, err := ix.valueOf(c[len(c)-1])
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			d, ok := records[string(vb)]
			if !ok {
				d = directory{}
				records[string(vb)] = d
			}
			for i, oid := range c {
				o, _ := ix.st.Get(oid)
				id := ix.classID[o.Class]
				d[id] = insertSorted(d[id], oid)
				next := encoding.OID(0)
				if i+1 < len(c) {
					next = c[i+1]
				}
				auxes[string(auxKey(id, oid))] = auxRec{next: next}
			}
		}
	}
	// Bulk load both structures.
	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	if err := ix.primary.BulkLoad(func() ([]byte, []byte, bool, error) {
		if i >= len(keys) {
			return nil, nil, false, nil
		}
		k := keys[i]
		i++
		return []byte(k), encodeDirectory(records[k]), true, nil
	}); err != nil {
		return err
	}
	akeys := make([]string, 0, len(auxes))
	for k := range auxes {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	j := 0
	return ix.aux.BulkLoad(func() ([]byte, []byte, bool, error) {
		if j >= len(akeys) {
			return nil, nil, false, nil
		}
		k := akeys[j]
		j++
		return []byte(k), binary.BigEndian.AppendUint32(nil, uint32(auxes[k].next)), true, nil
	})
}

func insertSorted(list []encoding.OID, oid encoding.OID) []encoding.OID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= oid })
	if i < len(list) && list[i] == oid {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = oid
	return list
}

// Len returns the number of distinct indexed values.
func (ix *Index) Len() int { return ix.primary.Len() }

// PageCount returns the pages of the primary plus auxiliary structures,
// including the primary's directory overflow chains.
func (ix *Index) PageCount() (int, error) {
	p, err := ix.primary.PageCount()
	if err != nil {
		return 0, err
	}
	ov, err := ix.primary.OverflowPageCount()
	if err != nil {
		return 0, err
	}
	a, err := ix.aux.PageCount()
	if err != nil {
		return 0, err
	}
	return p + ov + a, nil
}

// DropCache flushes and clears both structures' buffer pools.
func (ix *Index) DropCache() error {
	if err := ix.primary.DropCache(); err != nil {
		return err
	}
	return ix.aux.DropCache()
}

// collect gathers the oids of a directory belonging to class or any of its
// subclasses.
func (ix *Index) collect(d directory, class string, out []encoding.OID) []encoding.OID {
	for _, c := range ix.st.Schema().Subtree(class) {
		if id, ok := ix.classID[c]; ok {
			out = append(out, d[id]...)
		}
	}
	return out
}

// Lookup returns the objects of class (and subclasses) reachable along the
// path from/to a terminal with the exact attribute value.
func (ix *Index) Lookup(v any, class string, tr *pager.Tracker) ([]encoding.OID, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	var stats Stats
	vb, err := ix.attrType.EncodeValue(v)
	if err != nil {
		return nil, stats, err
	}
	raw, ok, err := ix.primary.Get(vb, tr)
	if err != nil {
		return nil, stats, err
	}
	var out []encoding.OID
	if ok {
		stats.RecordsRead++
		d, err := decodeDirectory(raw)
		if err != nil {
			return nil, stats, err
		}
		out = ix.collect(d, class, out)
	}
	stats.Matches = len(out)
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}

// LookupRange is Lookup over an inclusive value range.
func (ix *Index) LookupRange(lo, hi any, class string, tr *pager.Tracker) ([]encoding.OID, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	var stats Stats
	lob, err := ix.attrType.EncodeValue(lo)
	if err != nil {
		return nil, stats, err
	}
	hib, err := ix.attrType.EncodeValue(hi)
	if err != nil {
		return nil, stats, err
	}
	var out []encoding.OID
	err = ix.primary.Scan(context.Background(), lob, encoding.PrefixEnd(hib), tr, func(_, val []byte) ([]byte, bool, error) {
		stats.RecordsRead++
		d, err := decodeDirectory(val)
		if err != nil {
			return nil, true, err
		}
		out = ix.collect(d, class, out)
		return nil, false, nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.Matches = len(out)
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}

// LookupRestricted is Lookup with a mid-path restriction: only candidates
// whose path passes through one of the allowed objects at restrictClass's
// position survive. Each candidate costs one auxiliary descent per hop —
// the cost the paper contrasts with the U-index's stored full path.
func (ix *Index) LookupRestricted(v any, class, restrictClass string, allowed []store.OID, tr *pager.Tracker) ([]encoding.OID, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	cands, stats, err := ix.Lookup(v, class, tr)
	if err != nil {
		return nil, stats, err
	}
	candPos, restrictPos := -1, -1
	sch := ix.st.Schema()
	for i, c := range ix.pathCls {
		if sch.IsSubclassOf(class, c) {
			candPos = i
		}
		if sch.IsSubclassOf(restrictClass, c) {
			restrictPos = i
		}
	}
	if candPos < 0 || restrictPos < 0 || restrictPos < candPos {
		return nil, stats, fmt.Errorf("nix: restriction %q not downstream of %q on the path", restrictClass, class)
	}
	allowedSet := make(map[store.OID]bool, len(allowed))
	for _, o := range allowed {
		allowedSet[o] = true
	}
	var out []encoding.OID
	for _, cand := range cands {
		cur := cand
		okPath := true
		for hop := candPos; hop < restrictPos; hop++ {
			next, ok, err := ix.auxNext(cur, tr, &stats)
			if err != nil {
				return nil, stats, err
			}
			if !ok {
				okPath = false
				break
			}
			cur = next
		}
		if okPath && allowedSet[cur] {
			out = append(out, cand)
		}
	}
	stats.Matches = len(out)
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}

// auxNext follows the auxiliary link of an object toward the terminal.
func (ix *Index) auxNext(oid store.OID, tr *pager.Tracker, stats *Stats) (store.OID, bool, error) {
	o, ok := ix.st.Get(oid)
	if !ok {
		return 0, false, nil
	}
	stats.AuxLookups++
	raw, ok, err := ix.aux.Get(auxKey(ix.classID[o.Class], oid), tr)
	if err != nil || !ok {
		return 0, false, err
	}
	next := encoding.OID(binary.BigEndian.Uint32(raw))
	if next == 0 {
		return 0, false, nil
	}
	return next, true, nil
}

// valuesThrough returns the set of encoded values reachable through chains
// containing oid (at whatever path position it occupies).
func (ix *Index) valuesThrough(oid store.OID) (map[string]bool, error) {
	o, ok := ix.st.Get(oid)
	if !ok {
		return nil, nil
	}
	sch := ix.st.Schema()
	pos := -1
	for i, c := range ix.pathCls {
		if sch.IsSubclassOf(o.Class, c) {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, nil
	}
	// Forward to terminals.
	var terminals []store.OID
	var walk func(store.OID, int)
	walk = func(cur store.OID, p int) {
		if p == len(ix.pathCls)-1 {
			terminals = append(terminals, cur)
			return
		}
		for _, t := range ix.st.DerefMulti(cur, ix.spec.Refs[p]) {
			walk(t, p+1)
		}
	}
	walk(oid, pos)
	out := map[string]bool{}
	for _, t := range terminals {
		vb, ok, err := ix.valueOf(t)
		if err != nil {
			return nil, err
		}
		if ok {
			out[string(vb)] = true
		}
	}
	return out, nil
}

// Refresh rebuilds the primary records for the given encoded values and the
// auxiliary entries of every object appearing in them. Update operations
// compute the affected values (before and after a mutation) via
// ValuesThrough and then call Refresh — the NIX update path.
func (ix *Index) Refresh(values map[string]bool) error {
	for vs := range values {
		vb := []byte(vs)
		d := directory{}
		// Re-derive the record from root chains that still reach vb.
		for _, root := range ix.st.HierarchyExtent(ix.spec.Root) {
			cs, err := ix.chains(root, 0)
			if err != nil {
				return err
			}
			for _, c := range cs {
				got, ok, err := ix.valueOf(c[len(c)-1])
				if err != nil {
					return err
				}
				if !ok || !bytes.Equal(got, vb) {
					continue
				}
				for i, oid := range c {
					o, _ := ix.st.Get(oid)
					id := ix.classID[o.Class]
					d[id] = insertSorted(d[id], oid)
					next := encoding.OID(0)
					if i+1 < len(c) {
						next = c[i+1]
					}
					if err := ix.aux.Insert(auxKey(id, oid), binary.BigEndian.AppendUint32(nil, uint32(next))); err != nil {
						return err
					}
				}
			}
		}
		if len(d) == 0 {
			if _, err := ix.primary.Delete(vb); err != nil {
				return err
			}
			continue
		}
		if err := ix.primary.Insert(vb, encodeDirectory(d)); err != nil {
			return err
		}
	}
	return nil
}

// ValuesThrough exposes the affected-value computation for update flows:
// call before and after a mutation and Refresh the union.
func (ix *Index) ValuesThrough(oid store.OID) (map[string]bool, error) {
	return ix.valuesThrough(oid)
}

// RemoveObject removes an object's contributions: call BEFORE deleting it
// from the store (values are computed while chains still exist), then
// delete it, then call Refresh with the returned values.
func (ix *Index) RemoveObject(oid store.OID) (map[string]bool, error) {
	vals, err := ix.valuesThrough(oid)
	if err != nil {
		return nil, err
	}
	o, ok := ix.st.Get(oid)
	if ok {
		if _, err := ix.aux.Delete(auxKey(ix.classID[o.Class], oid)); err != nil {
			return nil, err
		}
	}
	return vals, nil
}
