// Package demo builds the paper's Example-1 database: the Figure-1 schema
// (vehicles, companies, employees, cities), the class-hierarchy color index,
// and the combined Vehicle/Company/Employee age path index, loaded with the
// example objects. uindexcli serves it as a REPL, uindexd serves it over
// the network, and tests use it as a small fully-featured fixture.
package demo

import (
	"fmt"
	"strings"

	uindex "repro"
)

// Build constructs the Example-1 database with the given engine options and
// returns it together with the object display names keyed by OID.
func Build(opts uindex.Options) (*uindex.Database, map[uindex.OID]string, error) {
	s := uindex.NewSchema()
	add := func(name, super string, attrs ...uindex.Attr) error {
		return s.AddClass(name, super, attrs...)
	}
	steps := []func() error{
		func() error {
			return add("Employee", "", uindex.Attr{Name: "Age", Type: uindex.Uint64})
		},
		func() error {
			return add("Company", "",
				uindex.Attr{Name: "Name", Type: uindex.String},
				uindex.Attr{Name: "President", Ref: "Employee"})
		},
		func() error { return add("City", "", uindex.Attr{Name: "Name", Type: uindex.String}) },
		func() error {
			return add("Division", "",
				uindex.Attr{Name: "Belong", Ref: "Company"},
				uindex.Attr{Name: "LocatedIn", Ref: "City"})
		},
		func() error {
			return add("Vehicle", "",
				uindex.Attr{Name: "Name", Type: uindex.String},
				uindex.Attr{Name: "Color", Type: uindex.String},
				uindex.Attr{Name: "ManufacturedBy", Ref: "Company"})
		},
		func() error { return add("Automobile", "Vehicle") },
		func() error { return add("Truck", "Vehicle") },
		func() error { return add("CompactAutomobile", "Automobile") },
		func() error { return add("AutoCompany", "Company") },
		func() error { return add("TruckCompany", "Company") },
		func() error { return add("JapaneseAutoCompany", "AutoCompany") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, nil, err
		}
	}
	db, err := uindex.NewDatabaseWith(s, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}); err != nil {
		return nil, nil, err
	}
	if err := db.CreateIndex(uindex.IndexSpec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}); err != nil {
		return nil, nil, err
	}

	names := map[uindex.OID]string{}
	ins := func(name, class string, attrs uindex.Attrs) (uindex.OID, error) {
		oid, err := db.Insert(class, attrs)
		if err != nil {
			return 0, err
		}
		names[oid] = name
		return oid, nil
	}
	e1, err := ins("e1", "Employee", uindex.Attrs{"Age": 50})
	if err != nil {
		return nil, nil, err
	}
	e2, _ := ins("e2", "Employee", uindex.Attrs{"Age": 60})
	e3, _ := ins("e3", "Employee", uindex.Attrs{"Age": 45})
	c1, _ := ins("c1/Subaru", "JapaneseAutoCompany", uindex.Attrs{"Name": "Subaru", "President": e3})
	c2, _ := ins("c2/Fiat", "AutoCompany", uindex.Attrs{"Name": "Fiat", "President": e1})
	c3, _ := ins("c3/Renault", "AutoCompany", uindex.Attrs{"Name": "Renault", "President": e2})
	vehicles := []struct {
		name, class, color string
		co                 uindex.OID
	}{
		{"v1/Legacy", "Vehicle", "White", c1},
		{"v2/Tipo", "Automobile", "White", c2},
		{"v3/Panda", "Automobile", "Red", c2},
		{"v4/R5", "CompactAutomobile", "Red", c3},
		{"v5/Justy", "CompactAutomobile", "Blue", c1},
		{"v6/Uno", "CompactAutomobile", "White", c2},
	}
	for _, v := range vehicles {
		if _, err := ins(v.name, v.class, uindex.Attrs{
			"Name": strings.SplitN(v.name, "/", 2)[1], "Color": v.color, "ManufacturedBy": v.co}); err != nil {
			return nil, nil, err
		}
	}
	return db, names, nil
}

// ParseDurability maps the -durability flag values to the engine's modes.
func ParseDurability(s string) (uindex.Durability, error) {
	switch s {
	case "none":
		return uindex.DurabilityNone, nil
	case "checkpoint":
		return uindex.DurabilityCheckpoint, nil
	case "sync":
		return uindex.DurabilitySync, nil
	case "wal":
		return uindex.DurabilityWAL, nil
	}
	return 0, fmt.Errorf("unknown durability %q (want none, checkpoint, sync, or wal)", s)
}
