// Package workload generates the two experimental databases of the paper's
// Section 5:
//
//   - the Figure-1 schema enhanced with the Section-5 class additions
//     (ForeignAuto … PassengerBus) and a 12,000-record random database, used
//     by the Table-1 experiment;
//   - the large class-hierarchy database — 150,000 objects distributed
//     uniformly over 8 or 40 sets with 100, 1,000 or 150,000 (unique)
//     distinct key values — used by the Figure 5–8 experiments, loaded
//     simultaneously into a U-index, a CG-tree, a CH-tree and an H-tree.
//
// All generation is deterministic in the seed.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bufferpool"
	"repro/internal/cgtree"
	"repro/internal/chtree"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/htree"
	"repro/internal/pager"
	"repro/internal/schema"
	"repro/internal/store"
)

// Colors is the color attribute domain of the Table-1 database: a
// 48-value paint palette. The paper does not state its color cardinality;
// its Table-1 node counts imply small per-(color, class) clusters, which a
// six-color palette over 12,000 records cannot produce, so we use a fleet
// paint catalogue. The queried colors Red, Blue and Green are present.
var Colors = []string{
	"Amber", "Apricot", "Aqua", "Azure", "Beige", "Black", "Blue", "Bronze",
	"Brown", "Burgundy", "Charcoal", "Copper", "Coral", "Cream", "Crimson",
	"Cyan", "Emerald", "Fuchsia", "Gold", "Graphite", "Green", "Grey",
	"Indigo", "Ivory", "Jade", "Khaki", "Lavender", "Lime", "Magenta",
	"Maroon", "Mint", "Navy", "Ochre", "Olive", "Orange", "Pearl", "Pink",
	"Plum", "Purple", "Red", "Rose", "Sand", "Silver", "Teal", "Turquoise",
	"Violet", "White", "Yellow",
}

// Figure1Schema builds the paper's Figure-1 schema with the Section-5
// additions, in the declaration order that reproduces the paper's COD table
// (Vehicle=C5, Automobile=C5A, PassengerBus=C5CC, ...).
func Figure1Schema() (*schema.Schema, error) {
	s := schema.New()
	type decl struct {
		name, super string
		attrs       []schema.Attr
	}
	decls := []decl{
		{"Employee", "", []schema.Attr{{Name: "Age", Type: encoding.AttrUint64}}},
		{"Company", "", []schema.Attr{
			{Name: "Name", Type: encoding.AttrString},
			{Name: "President", Ref: "Employee"}}},
		{"City", "", []schema.Attr{{Name: "Name", Type: encoding.AttrString}}},
		{"Division", "", []schema.Attr{
			{Name: "Belong", Ref: "Company"},
			{Name: "LocatedIn", Ref: "City"}}},
		{"Vehicle", "", []schema.Attr{
			{Name: "Name", Type: encoding.AttrString},
			{Name: "Color", Type: encoding.AttrString},
			{Name: "ManufacturedBy", Ref: "Company"}}},
		// Company hierarchy: C2A, C2AA, C2B.
		{"AutoCompany", "Company", nil},
		{"TruckCompany", "Company", nil},
		{"JapaneseAutoCompany", "AutoCompany", nil},
		// Vehicle hierarchy: C5A{C5AA,C5AB,C5AC}, C5B{C5BA,C5BB},
		// C5C{C5CA,C5CB,C5CC} — the Section-5 enhanced set.
		{"Automobile", "Vehicle", nil},
		{"Truck", "Vehicle", nil},
		{"Bus", "Vehicle", nil},
		{"CompactAutomobile", "Automobile", nil},
		{"ForeignAuto", "Automobile", nil},
		{"ServiceAuto", "Automobile", nil},
		{"HeavyTruck", "Truck", nil},
		{"LightTruck", "Truck", nil},
		{"MilitaryBus", "Bus", nil},
		{"TouristBus", "Bus", nil},
		{"PassengerBus", "Bus", nil},
	}
	for _, d := range decls {
		if err := s.AddClass(d.name, d.super, d.attrs...); err != nil {
			return nil, err
		}
	}
	if _, err := s.AssignCodes(); err != nil {
		return nil, err
	}
	return s, nil
}

// VehicleClasses lists the concrete vehicle classes of the enhanced schema
// with the share each receives in the random database. Automobiles dominate
// (as in any fleet), which keeps bus queries selective the way the paper's
// Table-1 node counts suggest.
var VehicleClasses = []struct {
	Name  string
	Share float64
}{
	{"Vehicle", 0.04},
	{"Automobile", 0.22},
	{"CompactAutomobile", 0.20},
	{"ForeignAuto", 0.12},
	{"ServiceAuto", 0.10},
	{"Truck", 0.08},
	{"HeavyTruck", 0.06},
	{"LightTruck", 0.06},
	{"Bus", 0.04},
	{"MilitaryBus", 0.02},
	{"TouristBus", 0.02},
	{"PassengerBus", 0.04},
}

// Figure1DB holds the Table-1 experimental database.
type Figure1DB struct {
	Schema    *schema.Schema
	Store     *store.Store
	Employees []store.OID
	Companies []store.OID
	Vehicles  []store.OID
}

// NewFigure1DB generates the 12,000-record random database: 600 employees,
// 300 companies, 60 cities, 140 divisions and 10,900 vehicles.
func NewFigure1DB(seed int64) (*Figure1DB, error) {
	s, err := Figure1Schema()
	if err != nil {
		return nil, err
	}
	st := store.New(s)
	rng := rand.New(rand.NewSource(seed))
	db := &Figure1DB{Schema: s, Store: st}

	for i := 0; i < 600; i++ {
		oid, err := st.Insert("Employee", store.Attrs{"Age": 25 + rng.Intn(46)})
		if err != nil {
			return nil, err
		}
		db.Employees = append(db.Employees, oid)
	}
	var cities []store.OID
	for i := 0; i < 60; i++ {
		oid, err := st.Insert("City", store.Attrs{"Name": fmt.Sprintf("City%02d", i)})
		if err != nil {
			return nil, err
		}
		cities = append(cities, oid)
	}
	companyClasses := []string{"Company", "AutoCompany", "JapaneseAutoCompany", "TruckCompany"}
	for i := 0; i < 300; i++ {
		class := companyClasses[rng.Intn(len(companyClasses))]
		oid, err := st.Insert(class, store.Attrs{
			"Name":      fmt.Sprintf("Co%03d", i),
			"President": db.Employees[rng.Intn(len(db.Employees))],
		})
		if err != nil {
			return nil, err
		}
		db.Companies = append(db.Companies, oid)
	}
	for i := 0; i < 140; i++ {
		if _, err := st.Insert("Division", store.Attrs{
			"Belong":    db.Companies[rng.Intn(len(db.Companies))],
			"LocatedIn": cities[rng.Intn(len(cities))],
		}); err != nil {
			return nil, err
		}
	}
	// 10,900 vehicles over the weighted class distribution.
	const nVehicles = 10900
	for i := 0; i < nVehicles; i++ {
		r := rng.Float64()
		class := VehicleClasses[len(VehicleClasses)-1].Name
		for _, vc := range VehicleClasses {
			if r < vc.Share {
				class = vc.Name
				break
			}
			r -= vc.Share
		}
		oid, err := st.Insert(class, store.Attrs{
			"Name":           fmt.Sprintf("V%05d", i),
			"Color":          Colors[rng.Intn(len(Colors))],
			"ManufacturedBy": db.Companies[rng.Intn(len(db.Companies))],
		})
		if err != nil {
			return nil, err
		}
		db.Vehicles = append(db.Vehicles, oid)
	}
	return db, nil
}

// LargeConfig parameterizes the Section-5.1 database.
type LargeConfig struct {
	Objects  int   // 150,000 in the paper
	Sets     int   // 8 or 40
	Keys     int   // distinct key values; 0 = unique keys
	Seed     int64 //
	PageSize int   // 1024 in the paper
	// PoolPages, when positive, routes each structure's page file through
	// a buffer pool of that many frames; PoolPolicy picks its replacement
	// policy ("clock" default, "lru"). Logical page-read accounting is
	// unaffected — the pool only adds a physical-I/O layer.
	PoolPages  int
	PoolPolicy string
}

// LargeDB is the Section-5.1 database loaded into all four structures.
type LargeDB struct {
	Config LargeConfig
	Schema *schema.Schema
	Store  *store.Store
	Sets   []string // class names, code order
	UIndex *core.Index
	CG     *cgtree.Tree
	CH     *chtree.Tree
	H      *htree.Forest
	// Pools holds the buffer pools wrapped around the four structures'
	// page files when Config.PoolPages > 0, in U/CG/CH/H order.
	Pools []*bufferpool.Pool
	// KeyOf[i] is the key of object with OID i+1; SetOf[i] its set.
	KeyOf []uint64
	SetOf []int
}

// newFile builds one structure's page file, wrapping it in a buffer pool
// when the config requests one.
func (db *LargeDB) newFile() (pager.File, error) {
	var f pager.File = pager.NewMemFile(db.Config.PageSize)
	if db.Config.PoolPages <= 0 {
		return f, nil
	}
	p, err := bufferpool.New(f, bufferpool.Config{
		Pages:  db.Config.PoolPages,
		Policy: db.Config.PoolPolicy,
	})
	if err != nil {
		return nil, err
	}
	db.Pools = append(db.Pools, p)
	return p, nil
}

// PoolStats aggregates the pool counters over all four structures; the
// zero value when the database was built without pools.
func (db *LargeDB) PoolStats() bufferpool.Stats {
	var agg bufferpool.Stats
	for _, p := range db.Pools {
		agg.Add(p.PoolStats())
	}
	return agg
}

// DropCaches flushes and clears all four structures' node caches, so that
// subsequent traffic reaches the page files (and any pools) again.
func (db *LargeDB) DropCaches() error {
	if err := db.UIndex.DropCache(); err != nil {
		return err
	}
	if err := db.CG.DropCache(); err != nil {
		return err
	}
	if err := db.CH.DropCache(); err != nil {
		return err
	}
	return db.H.DropCache()
}

// Key8 encodes a key value the way every structure in the large experiment
// does (8-byte big-endian, the paper's "key size was 8 bytes").
func Key8(v uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, v)
}

// NewLargeDB generates the database and loads the four index structures.
func NewLargeDB(cfg LargeConfig) (*LargeDB, error) {
	if cfg.Objects <= 0 || cfg.Sets <= 0 {
		return nil, fmt.Errorf("workload: bad config %+v", cfg)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 1024
	}
	s := schema.New()
	if err := s.AddClass("Obj", "", schema.Attr{Name: "Key", Type: encoding.AttrUint64}); err != nil {
		return nil, err
	}
	sets := make([]string, cfg.Sets)
	for i := range sets {
		sets[i] = fmt.Sprintf("Set%03d", i)
		if err := s.AddClass(sets[i], "Obj"); err != nil {
			return nil, err
		}
	}
	coding, err := s.AssignCodes()
	if err != nil {
		return nil, err
	}
	_ = coding
	st := store.New(s)
	db := &LargeDB{Config: cfg, Schema: s, Store: st, Sets: sets}

	rng := rand.New(rand.NewSource(cfg.Seed))
	db.KeyOf = make([]uint64, cfg.Objects)
	db.SetOf = make([]int, cfg.Objects)
	var uniquePerm []int
	if cfg.Keys <= 0 {
		uniquePerm = rng.Perm(cfg.Objects)
	}
	for i := 0; i < cfg.Objects; i++ {
		if cfg.Keys > 0 {
			db.KeyOf[i] = uint64(rng.Intn(cfg.Keys))
		} else {
			db.KeyOf[i] = uint64(uniquePerm[i])
		}
		db.SetOf[i] = rng.Intn(cfg.Sets)
		oid, err := st.Insert(sets[db.SetOf[i]], store.Attrs{"Key": db.KeyOf[i]})
		if err != nil {
			return nil, err
		}
		if int(oid) != i+1 {
			return nil, fmt.Errorf("workload: oid %d for object %d", oid, i)
		}
	}

	// U-index (class-hierarchy index on Obj.Key).
	uFile, err := db.newFile()
	if err != nil {
		return nil, err
	}
	db.UIndex, err = core.New(uFile, st, core.Spec{
		Name: "large", Root: "Obj", Attr: "Key"})
	if err != nil {
		return nil, err
	}
	if err := db.UIndex.Build(); err != nil {
		return nil, err
	}

	// CG-tree.
	cgFile, err := db.newFile()
	if err != nil {
		return nil, err
	}
	db.CG, err = cgtree.New(cgFile, cgtree.Config{})
	if err != nil {
		return nil, err
	}
	cgEntries := make([]cgtree.Entry, cfg.Objects)
	for i := 0; i < cfg.Objects; i++ {
		cgEntries[i] = cgtree.Entry{
			Set: cgtree.SetID(db.SetOf[i]),
			Key: Key8(db.KeyOf[i]),
			OID: encoding.OID(i + 1),
		}
	}
	sort.Slice(cgEntries, func(i, j int) bool {
		a, b := cgEntries[i], cgEntries[j]
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		if c := string(a.Key); c != string(b.Key) {
			return c < string(b.Key)
		}
		return a.OID < b.OID
	})
	if err := db.CG.BulkLoad(cgEntries); err != nil {
		return nil, err
	}

	// CH-tree.
	chFile, err := db.newFile()
	if err != nil {
		return nil, err
	}
	db.CH, err = chtree.New(chFile, chtree.Config{})
	if err != nil {
		return nil, err
	}
	chEntries := make([]chtree.Entry, cfg.Objects)
	for i := 0; i < cfg.Objects; i++ {
		chEntries[i] = chtree.Entry{
			Key: Key8(db.KeyOf[i]),
			Set: chtree.SetID(db.SetOf[i]),
			OID: encoding.OID(i + 1),
		}
	}
	sort.Slice(chEntries, func(i, j int) bool {
		a, b := chEntries[i], chEntries[j]
		if c := string(a.Key); c != string(b.Key) {
			return c < string(b.Key)
		}
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		return a.OID < b.OID
	})
	if err := db.CH.BulkLoad(chEntries); err != nil {
		return nil, err
	}

	// H-tree.
	hFile, err := db.newFile()
	if err != nil {
		return nil, err
	}
	db.H = htree.New(hFile, htree.Config{})
	hEntries := make([]htree.Entry, cfg.Objects)
	for i := 0; i < cfg.Objects; i++ {
		hEntries[i] = htree.Entry{
			Set: htree.SetID(db.SetOf[i]),
			Key: Key8(db.KeyOf[i]),
			OID: encoding.OID(i + 1),
		}
	}
	if err := db.H.BulkLoad(hEntries); err != nil {
		return nil, err
	}
	return db, nil
}

// KeyDomain returns the number of distinct key values.
func (db *LargeDB) KeyDomain() int {
	if db.Config.Keys > 0 {
		return db.Config.Keys
	}
	return db.Config.Objects
}

// QueriedSets picks n of the total sets. Near sets are adjacent in the
// class hierarchy (a random consecutive window); far sets are spread as
// evenly as possible ("distant ... if it was possible", Section 5.1). When
// spreading is impossible (n > total/2) the choice degenerates to a random
// subset, as in the paper.
func QueriedSets(total, n int, near bool, rng *rand.Rand) []int {
	if n >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if near {
		start := rng.Intn(total - n + 1)
		out := make([]int, n)
		for i := range out {
			out[i] = start + i
		}
		return out
	}
	if n*2 <= total {
		stride := total / n
		start := rng.Intn(stride)
		out := make([]int, n)
		for i := range out {
			out[i] = start + i*stride
		}
		return out
	}
	// Too dense to separate: random subset.
	perm := rng.Perm(total)[:n]
	sort.Ints(perm)
	return perm
}
