package workload

import (
	"math/rand"
	"testing"

	"repro/internal/cgtree"
	"repro/internal/core"
)

func TestFigure1SchemaCOD(t *testing.T) {
	s, err := Figure1Schema()
	if err != nil {
		t.Fatal(err)
	}
	coding := s.Coding()
	// The enhanced COD table of Section 5.
	want := map[string]string{
		"Employee": "C1", "Company": "C2", "City": "C3", "Division": "C4",
		"Vehicle": "C5", "Automobile": "C5A", "CompactAutomobile": "C5AA",
		"ForeignAuto": "C5AB", "ServiceAuto": "C5AC",
		"Truck": "C5B", "HeavyTruck": "C5BA", "LightTruck": "C5BB",
		"Bus": "C5C", "MilitaryBus": "C5CA", "TouristBus": "C5CB", "PassengerBus": "C5CC",
		"AutoCompany": "C2A", "JapaneseAutoCompany": "C2AA", "TruckCompany": "C2B",
	}
	for class, compact := range want {
		code, ok := coding.Code(class)
		if !ok {
			t.Errorf("class %q missing", class)
			continue
		}
		if code.Compact() != compact {
			t.Errorf("COD %s = %s, want %s", class, code.Compact(), compact)
		}
	}
}

func TestFigure1DBComposition(t *testing.T) {
	db, err := NewFigure1DB(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Store.Len(); got != 12000 {
		t.Fatalf("records = %d, want 12000", got)
	}
	if len(db.Vehicles) != 10900 || len(db.Employees) != 600 || len(db.Companies) != 300 {
		t.Fatalf("composition: %d vehicles, %d employees, %d companies",
			len(db.Vehicles), len(db.Employees), len(db.Companies))
	}
	// Class shares sum to 1 and the distribution is automobile-heavy.
	total := 0.0
	for _, vc := range VehicleClasses {
		total += vc.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("vehicle class shares sum to %f", total)
	}
	// Every vehicle has the attributes the Table-1 indexes need.
	for _, oid := range db.Vehicles[:100] {
		o, ok := db.Store.Get(oid)
		if !ok {
			t.Fatal("vehicle missing")
		}
		if _, ok := o.Attr("Color"); !ok {
			t.Fatal("vehicle without color")
		}
		if _, ok := o.Attr("ManufacturedBy"); !ok {
			t.Fatal("vehicle without manufacturer")
		}
	}
}

func TestFigure1DBDeterminism(t *testing.T) {
	a, err := NewFigure1DB(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFigure1DB(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		oa, _ := a.Store.Get(a.Vehicles[i])
		ob, _ := b.Store.Get(b.Vehicles[i])
		if oa.Class != ob.Class {
			t.Fatalf("vehicle %d class differs across same-seed builds", i)
		}
		ca, _ := oa.Attr("Color")
		cb, _ := ob.Attr("Color")
		if ca != cb {
			t.Fatalf("vehicle %d color differs across same-seed builds", i)
		}
	}
	c, err := NewFigure1DB(8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 200; i++ {
		oa, _ := a.Store.Get(a.Vehicles[i])
		oc, _ := c.Store.Get(c.Vehicles[i])
		va, _ := oa.Attr("Color")
		vc, _ := oc.Attr("Color")
		if oa.Class == oc.Class && va == vc {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestLargeDBConsistency(t *testing.T) {
	cfg := LargeConfig{Objects: 5000, Sets: 8, Keys: 100, Seed: 3}
	db, err := NewLargeDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.UIndex.Len() != cfg.Objects {
		t.Fatalf("U-index has %d entries", db.UIndex.Len())
	}
	if db.CG.Len() != cfg.Objects || db.H.Len() != cfg.Objects {
		t.Fatalf("CG/H entry counts: %d, %d", db.CG.Len(), db.H.Len())
	}
	if db.CH.Len() != cfg.Keys {
		t.Fatalf("CH has %d records, want %d distinct keys", db.CH.Len(), cfg.Keys)
	}
	if db.KeyDomain() != 100 {
		t.Fatalf("KeyDomain = %d", db.KeyDomain())
	}

	// Cross-structure agreement: a random exact-match query returns the
	// same object set from all four structures.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		key := uint64(rng.Intn(cfg.Keys))
		setIdx := QueriedSets(cfg.Sets, 1+rng.Intn(cfg.Sets), false, rng)

		pos := core.Position{}
		for _, s := range setIdx {
			pos.Alts = append(pos.Alts, core.ClassPattern{Class: db.Sets[s]})
		}
		ums, _, err := db.UIndex.Execute(core.Query{
			Value: core.Exact(key), Positions: []core.Position{pos}}, core.Parallel, nil)
		if err != nil {
			t.Fatal(err)
		}
		uSet := map[uint32]bool{}
		for _, m := range ums {
			uSet[uint32(m.Path[0].OID)] = true
		}

		ids := make([]cgtree.SetID, len(setIdx))
		for i, s := range setIdx {
			ids[i] = cgtree.SetID(s)
		}
		cms, _, err := db.CG.ExactMatch(Key8(key), ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(cms) != len(uSet) {
			t.Fatalf("trial %d: U-index %d objects, CG %d", trial, len(uSet), len(cms))
		}
		for _, r := range cms {
			if !uSet[uint32(r.OID)] {
				t.Fatalf("trial %d: CG returned %d, absent from U-index", trial, r.OID)
			}
		}

		// Brute force against the generator's own assignment.
		want := 0
		inSet := map[int]bool{}
		for _, s := range setIdx {
			inSet[s] = true
		}
		for i := 0; i < cfg.Objects; i++ {
			if db.KeyOf[i] == key && inSet[db.SetOf[i]] {
				want++
			}
		}
		if want != len(uSet) {
			t.Fatalf("trial %d: brute force %d, indexes %d", trial, want, len(uSet))
		}
	}
}

func TestLargeDBUniqueKeys(t *testing.T) {
	db, err := NewLargeDB(LargeConfig{Objects: 3000, Sets: 8, Keys: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.KeyDomain() != 3000 {
		t.Fatalf("KeyDomain = %d", db.KeyDomain())
	}
	seen := map[uint64]bool{}
	for _, k := range db.KeyOf {
		if seen[k] {
			t.Fatalf("duplicate key %d in unique-key database", k)
		}
		seen[k] = true
	}
}

func TestLargeDBValidation(t *testing.T) {
	if _, err := NewLargeDB(LargeConfig{Objects: 0, Sets: 8}); err == nil {
		t.Error("zero objects accepted")
	}
	if _, err := NewLargeDB(LargeConfig{Objects: 10, Sets: 0}); err == nil {
		t.Error("zero sets accepted")
	}
}

func TestQueriedSets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Near sets: consecutive.
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		got := QueriedSets(40, n, true, rng)
		if len(got) != n {
			t.Fatalf("near: %d sets, want %d", len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[i-1]+1 {
				t.Fatalf("near sets not consecutive: %v", got)
			}
		}
		if got[0] < 0 || got[len(got)-1] >= 40 {
			t.Fatalf("near sets out of range: %v", got)
		}
	}
	// Far sets: when separation is possible, no two adjacent.
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(15) // n*2 <= 40 up to 17... keep n <= 16
		if n > 16 {
			n = 16
		}
		got := QueriedSets(40, n, false, rng)
		if len(got) != n {
			t.Fatalf("far: %d sets, want %d", len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("far sets not increasing: %v", got)
			}
			if got[i] == got[i-1]+1 {
				t.Fatalf("far sets adjacent: %v", got)
			}
		}
	}
	// Dense request degenerates gracefully to a distinct subset.
	got := QueriedSets(40, 30, false, rng)
	if len(got) != 30 {
		t.Fatalf("dense far: %d sets", len(got))
	}
	seen := map[int]bool{}
	for _, s := range got {
		if seen[s] || s < 0 || s >= 40 {
			t.Fatalf("dense far: bad sets %v", got)
		}
		seen[s] = true
	}
	// Requesting everything returns everything.
	got = QueriedSets(8, 8, true, rng)
	if len(got) != 8 || got[0] != 0 || got[7] != 7 {
		t.Fatalf("all sets = %v", got)
	}
	got = QueriedSets(8, 12, false, rng)
	if len(got) != 8 {
		t.Fatalf("overshoot = %v", got)
	}
}

func TestKey8Ordering(t *testing.T) {
	prev := Key8(0)
	for _, v := range []uint64{1, 2, 255, 256, 1 << 20, 1 << 40} {
		cur := Key8(v)
		if string(prev) >= string(cur) {
			t.Fatalf("Key8 not order-preserving at %d", v)
		}
		prev = cur
	}
}
