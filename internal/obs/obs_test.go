package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("uindexd_requests_total", "Requests served.", Label{"shape", "exact"})
	c2 := r.Counter("uindexd_requests_total", "Requests served.", Label{"shape", "range"})
	g := r.Gauge("uindexd_inflight", "In-flight requests.")
	c.Add(3)
	c2.Inc()
	g.Set(7)
	g.Dec()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP uindexd_requests_total Requests served.",
		"# TYPE uindexd_requests_total counter",
		`uindexd_requests_total{shape="exact"} 3`,
		`uindexd_requests_total{shape="range"} 1`,
		"# TYPE uindexd_inflight gauge",
		"uindexd_inflight 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One family header per name, even with two series.
	if n := strings.Count(out, "# TYPE uindexd_requests_total"); n != 1 {
		t.Errorf("family header rendered %d times, want 1", n)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1}, Label{"shape", "exact"})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{shape="exact",le="0.01"} 1`,
		`lat_seconds_bucket{shape="exact",le="0.1"} 3`,
		`lat_seconds_bucket{shape="exact",le="1"} 4`,
		`lat_seconds_bucket{shape="exact",le="+Inf"} 5`,
		`lat_seconds_count{shape="exact"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestCollectOnScrapeFuncs(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.CounterFunc("engine_pages_total", "Pages.", func() float64 { v++; return v })
	r.GaugeFunc("engine_snapshots", "Active snapshots.", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "engine_pages_total 42") {
		t.Errorf("counter func not collected:\n%s", out)
	}
	if !strings.Contains(out, "engine_snapshots 2") {
		t.Errorf("gauge func not collected:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", Label{"q", "a\"b\\c\nd"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{q="a\"b\\c\nd"} 0`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestMixedTypeRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "M.")
}

// TestHotPathAllocationFree pins the registry's core promise: recording a
// sample allocates nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(2)
		h.Observe(0.003)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}

// TestConcurrentRecording hammers every series type from many goroutines;
// run under -race this pins the lock-free hot path, and the totals pin
// that no increment is lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", []float64{0.5})
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.25)
				var b strings.Builder
				if i%500 == 0 { // scrapes race recordings
					_ = r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge %d, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*each)
	}
	if got, want := h.Sum(), 0.25*workers*each; got != want {
		t.Errorf("histogram sum %g, want %g", got, want)
	}
}
