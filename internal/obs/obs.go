// Package obs is a tiny metrics layer: counters, gauges, and histograms in
// a registry that renders the Prometheus text exposition format (version
// 0.0.4) with nothing but the standard library. It exists so the server can
// aggregate the per-query Stats the engine already produces (pages read,
// node-cache hits/misses, pool hit/miss) together with server-level series
// (in-flight requests, admission rejections, latency histograms) behind one
// /metrics endpoint.
//
// The hot path is allocation-free: Counter.Add, Gauge.Set, and
// Histogram.Observe are plain atomic operations on pre-registered series.
// Label sets are fixed at registration time — there is no dynamic label
// materialization, which is exactly what keeps the fast path free of maps
// and allocations. Register one series per label combination up front.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair of a series. Labels are fixed at
// registration.
type Label struct {
	Name, Value string
}

// metricType selects the # TYPE line of a family.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing series.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observe is atomic and
// allocation-free; the bucket bounds are immutable after registration.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// DefBuckets are latency-shaped default bounds, in seconds: 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable, beating a binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one registered time series.
type series struct {
	labels  string // rendered {a="b",...} suffix, may be ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // collect-on-scrape series
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels builds the {a="b"} suffix once, at registration time.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds a series under name, creating the family on first use.
// Registering the same name with a different type panics: that is a
// programming error, caught at startup because registration happens there.
func (r *Registry) register(name, help string, typ metricType, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, &series{labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, &series{labels: renderLabels(labels), gauge: g})
	return g
}

// Histogram registers and returns a histogram with the given upper bounds
// (ascending; +Inf is implicit). nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds are not ascending", name))
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, typeHistogram, &series{labels: renderLabels(labels), hist: h})
	return h
}

// CounterFunc registers a counter series collected at scrape time — the
// bridge for cumulative values another subsystem already maintains (pool
// hits, node-cache misses, engine write counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeCounter, &series{labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a gauge series collected at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, &series{labels: renderLabels(labels), fn: fn})
}

// WritePrometheus renders every family in the text exposition format, in
// registration order (deterministic output; tests and diffs rely on it).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case s.hist != nil:
				writeHistogram(&b, f.name, s)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet. The
// le label is appended to the series' fixed labels.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	joint := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, joint(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, joint("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, h.Count())
}

// formatFloat renders a float the way Prometheus clients do: integral
// values without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
