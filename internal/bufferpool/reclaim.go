package bufferpool

import (
	"math"
	"sync"

	"repro/internal/pager"
)

// Reclaimer is the epoch-based page-release half of multi-version trees: a
// copy-on-write mutation supersedes pages instead of overwriting them, and
// those pages must stay readable until every snapshot that could reach them
// is released. The Reclaimer tracks, per published epoch, which pages the
// commit retired and which snapshots (pins) are still reading older epochs;
// a retired set is freed into the backing pager.File as soon as no pin older
// than its commit epoch remains. With no pins outstanding, retirement is
// immediate — a single-threaded workload sees exactly the page footprint of
// an update-in-place tree.
//
// The Reclaimer works over any pager.File; when that file is a Pool, freed
// pages drop their frames immediately (Pool.Free), so superseded versions
// release buffer-pool capacity, not just file pages.
//
// All methods are safe for concurrent use. Publishing a new version and
// registering a snapshot pin are serialized against each other through the
// Reclaimer's mutex: Pin evaluates the caller's current() closure under the
// lock, so a snapshot can never observe a version whose pages a concurrent
// Commit is about to free.
type Reclaimer struct {
	mu      sync.Mutex
	f       pager.File
	pins    map[uint64]int
	retired []retireSet // ascending by epoch
	freed   int64
	hook    func(pager.PageID) // called per freed page, before the Free
}

// retireSet is the pages one commit superseded, tagged with the epoch that
// commit published. Snapshots pinned at epochs < epoch still need them.
type retireSet struct {
	epoch uint64
	pages []pager.PageID
}

// NewReclaimer returns a Reclaimer releasing pages into f.
func NewReclaimer(f pager.File) *Reclaimer {
	return &Reclaimer{f: f, pins: make(map[uint64]int)}
}

// SetReleaseHook registers fn to be called with every page id the Reclaimer
// frees, immediately before the page returns to the file's free list. Its
// purpose is invalidation of state derived from page contents and keyed by
// page id — the btree's shared decoded-node cache drops its entry here, so
// a stale decode can never be served for an id the allocator has reused.
// fn runs under the Reclaimer's mutex: it must be fast, must not block, and
// must not call back into the Reclaimer. Register the hook while the owner
// is being constructed, before the Reclaimer is shared between goroutines.
func (r *Reclaimer) SetReleaseHook(fn func(pager.PageID)) {
	r.mu.Lock()
	r.hook = fn
	r.mu.Unlock()
}

// Pin registers a snapshot. The current() closure must return the epoch the
// caller is snapshotting (typically loading an atomic version pointer); it
// runs under the Reclaimer lock so the returned epoch cannot be retired
// before the pin lands. Pin returns the pinned epoch; pass it to Unpin.
func (r *Reclaimer) Pin(current func() uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := current()
	r.pins[e]++
	return e
}

// Unpin releases one pin on the given epoch and frees every retired set no
// remaining pin can reach.
func (r *Reclaimer) Unpin(epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.pins[epoch]; n > 1 {
		r.pins[epoch] = n - 1
		return nil
	}
	delete(r.pins, epoch)
	return r.sweepLocked()
}

// Commit publishes a new version: it runs publish() under the Reclaimer lock
// (the caller stores its new version pointer there), records the pages the
// commit superseded under the new epoch, and frees whatever no pin still
// needs. Superseded pages must no longer be reachable from the version
// publish() installs.
func (r *Reclaimer) Commit(epoch uint64, superseded []pager.PageID, publish func()) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	publish()
	if len(superseded) > 0 {
		r.retired = append(r.retired, retireSet{epoch: epoch, pages: superseded})
	}
	return r.sweepLocked()
}

// sweepLocked frees every retired set whose epoch is at or below the oldest
// pinned epoch (all of them when nothing is pinned). A set retired at epoch E
// is only needed by snapshots of epochs < E.
func (r *Reclaimer) sweepLocked() error {
	minPin := uint64(math.MaxUint64)
	for e := range r.pins {
		if e < minPin {
			minPin = e
		}
	}
	var first error
	i := 0
	for ; i < len(r.retired); i++ {
		if r.retired[i].epoch > minPin {
			break
		}
		for _, id := range r.retired[i].pages {
			if r.hook != nil {
				r.hook(id)
			}
			if err := r.f.Free(id); err != nil && first == nil {
				first = err
			}
			r.freed++
		}
		r.retired[i].pages = nil
	}
	r.retired = r.retired[i:]
	return first
}

// Pinned returns the number of outstanding pins (snapshots).
func (r *Reclaimer) Pinned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.pins {
		n += c
	}
	return n
}

// PendingPages returns how many retired pages are awaiting release.
func (r *Reclaimer) PendingPages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.retired {
		n += len(s.pages)
	}
	return n
}

// FreedPages returns how many retired pages have been released so far.
func (r *Reclaimer) FreedPages() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freed
}
