// Package bufferpool provides a fixed-capacity page cache between the index
// structures and their page files: a Pool wraps any pager.File and itself
// implements pager.File, so every tree in this repository gains pinned,
// evicting, write-back caching with no change to its algorithms.
//
// The pool holds up to Config.Pages frames. A page enters a frame on first
// read (or on Alloc, which caches the fresh zeroed page); a full-page Write
// of an uncached page writes through to the backing file without allocating
// a frame. Dirty frames are written back to the backing file exactly once
// per eviction, and FlushAll offers a durability point: it writes back every
// dirty frame and, when the backing file supports it (pager.DiskFile does),
// fsyncs it.
//
// Pages can be pinned (Pin/Unpin): a pinned page is never evicted, so the
// caller may hold the returned frame buffer across other pool operations.
// The pin count is a reference count — nested pins require matching unpins.
//
// Accounting: the pool is invisible to the paper's cost model. Per-query
// pager.Tracker counts are taken by the trees before the page request
// reaches any File, so Table 1 and Figures 5-8 report identical logical
// page-read numbers with the pool enabled or disabled. The pool's own
// PoolStats() snapshot reports the physical side — hits, misses, evictions,
// write-backs, and the reads/writes actually issued to the backing file —
// which the experiments harness shows next to the logical column.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pager"
)

// DefaultPages is the frame count used when Config.Pages is not positive.
const DefaultPages = 64

var (
	// ErrNoFrames is returned when a page must be brought in but every
	// frame is pinned.
	ErrNoFrames = errors.New("bufferpool: all frames pinned")
	// ErrClosed is returned by operations on a closed pool.
	ErrClosed = errors.New("bufferpool: pool is closed")
	// ErrNotPinned is returned by Unpin of a page with no outstanding pin.
	ErrNotPinned = errors.New("bufferpool: page is not pinned")
)

// Config sizes the pool and selects its replacement policy.
type Config struct {
	// Pages is the frame capacity; <= 0 selects DefaultPages.
	Pages int
	// Policy is PolicyClock (the default, also chosen by "") or PolicyLRU.
	Policy string
}

// Stats is a snapshot of the pool's cache counters. Hits+Misses equals the
// page requests served from frames (reads and pins; write-throughs of
// uncached pages count as neither). PhysicalReads/PhysicalWrites count the
// I/O actually issued to the backing file through the pool.
type Stats struct {
	Hits           int64 // page requests served from a resident frame
	Misses         int64 // page requests that had to load the page
	Evictions      int64 // frames reclaimed from a resident page
	Writebacks     int64 // dirty frames written back on eviction
	Flushes        int64 // dirty frames written back by FlushAll/Close
	PhysicalReads  int64 // page reads issued to the backing file
	PhysicalWrites int64 // page writes issued to the backing file

	// Batched-read and prefetch accounting (see PinBatch/Prefetch).
	BatchReads     int64 // ReadBatch calls issued to the backing file
	PrefetchPages  int64 // pages loaded into frames by Prefetch
	PrefetchHits   int64 // prefetched frames later served to a page request
	PrefetchWasted int64 // prefetched frames dropped before any request hit them
}

// HitRate returns Hits / (Hits + Misses), or 0 when nothing was requested.
func (s Stats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Add accumulates other into s (for aggregating several pools' snapshots).
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Flushes += other.Flushes
	s.PhysicalReads += other.PhysicalReads
	s.PhysicalWrites += other.PhysicalWrites
	s.BatchReads += other.BatchReads
	s.PrefetchPages += other.PrefetchPages
	s.PrefetchHits += other.PrefetchHits
	s.PrefetchWasted += other.PrefetchWasted
}

// Sub removes other from s (for computing the delta between two snapshots
// of the same pool set).
func (s *Stats) Sub(other Stats) {
	s.Hits -= other.Hits
	s.Misses -= other.Misses
	s.Evictions -= other.Evictions
	s.Writebacks -= other.Writebacks
	s.Flushes -= other.Flushes
	s.PhysicalReads -= other.PhysicalReads
	s.PhysicalWrites -= other.PhysicalWrites
	s.BatchReads -= other.BatchReads
	s.PrefetchPages -= other.PrefetchPages
	s.PrefetchHits -= other.PrefetchHits
	s.PrefetchWasted -= other.PrefetchWasted
}

// counters is the pool's live cache accounting. Every field is atomic so
// PoolStats can snapshot without taking the pool mutex: a Stats reader never
// blocks (or races with) an eviction in progress.
type counters struct {
	hits           atomic.Int64
	misses         atomic.Int64
	evictions      atomic.Int64
	writebacks     atomic.Int64
	flushes        atomic.Int64
	physicalReads  atomic.Int64
	physicalWrites atomic.Int64
	batchReads     atomic.Int64
	prefetchPages  atomic.Int64
	prefetchHits   atomic.Int64
	prefetchWasted atomic.Int64
}

// snapshot materializes the counters into the exported Stats form.
func (c *counters) snapshot() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Writebacks:     c.writebacks.Load(),
		Flushes:        c.flushes.Load(),
		PhysicalReads:  c.physicalReads.Load(),
		PhysicalWrites: c.physicalWrites.Load(),
		BatchReads:     c.batchReads.Load(),
		PrefetchPages:  c.prefetchPages.Load(),
		PrefetchHits:   c.prefetchHits.Load(),
		PrefetchWasted: c.prefetchWasted.Load(),
	}
}

// frame is one cache slot. The latch serializes access to buf while the
// frame is pinned: Read/Write copy page bytes under the latch with the pool
// mutex released, so long memcpys of different frames proceed in parallel.
// Latch holders always hold a pin (so the frame cannot be evicted or
// reassigned under them) and never hold the pool mutex at the same time.
type frame struct {
	id    pager.PageID
	buf   []byte
	pins  int
	dirty bool
	// prefetched marks a frame loaded speculatively by Prefetch and not yet
	// hit by any page request; it drives the PrefetchHits/PrefetchWasted
	// accounting and has no effect on replacement.
	prefetched bool
	latch      sync.RWMutex
}

// Pool is a buffer-pool manager over a pager.File. It implements pager.File
// itself, so it can stand in for the backing file anywhere. All methods are
// safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	inner  pager.File
	size   int // page size, cached
	frames []frame
	table  map[pager.PageID]int // resident page -> frame index
	free   []int                // unused frame indices
	rep    replacer
	stats  counters
	calls  pager.Stats // caller-visible op counts (File.Stats)
	closed bool

	// Batched-admission window tracking (see admitChunk): inflight counts
	// batched reads currently running with the mutex released, and stale
	// collects the pages whose backing bytes changed while any such read was
	// in flight, so a batch never installs bytes it read before the change.
	inflight int
	stale    map[pager.PageID]struct{}
}

// noteStoreLocked records that the backing contents of page id changed — a
// write-through, a write-back, a flush, a free, or a re-allocation. While a
// batched admission has the mutex released (p.inflight > 0), these pages are
// collected so the batch discards its now-stale read instead of installing
// it; with no batch in flight this is a no-op.
func (p *Pool) noteStoreLocked(id pager.PageID) {
	if p.inflight == 0 {
		return
	}
	if p.stale == nil {
		p.stale = make(map[pager.PageID]struct{})
	}
	p.stale[id] = struct{}{}
}

// syncer is implemented by backing files that can force written pages to
// stable storage (pager.DiskFile).
type syncer interface{ Sync() error }

// New returns a pool over inner. The inner file must not be accessed
// directly while the pool is in use: the pool owns the caching of its pages.
func New(inner pager.File, cfg Config) (*Pool, error) {
	n := cfg.Pages
	if n <= 0 {
		n = DefaultPages
	}
	rep, err := newReplacer(cfg.Policy, n)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		inner:  inner,
		size:   inner.PageSize(),
		frames: make([]frame, n),
		table:  make(map[pager.PageID]int, n),
		free:   make([]int, 0, n),
		rep:    rep,
	}
	// The free list is popped from the back; seed it in reverse so frames
	// fill in ascending order (the order the clock hand sweeps).
	for i := range p.frames {
		p.frames[i].buf = make([]byte, p.size)
		p.free = append(p.free, n-1-i)
	}
	return p, nil
}

// Inner returns the backing file (read-only use: its own Stats).
func (p *Pool) Inner() pager.File { return p.inner }

// Capacity returns the pool's frame count.
func (p *Pool) Capacity() int { return len(p.frames) }

// PageSize implements pager.File.
func (p *Pool) PageSize() int { return p.size }

// reclaimLocked returns a usable frame index: a free frame if any, else an
// eviction victim with its page written back (if dirty) and unmapped.
func (p *Pool) reclaimLocked() (int, error) {
	if n := len(p.free); n > 0 {
		fi := p.free[n-1]
		p.free = p.free[:n-1]
		return fi, nil
	}
	fi, ok := p.rep.victim()
	if !ok {
		return 0, ErrNoFrames
	}
	f := &p.frames[fi]
	if f.dirty {
		if err := p.inner.Write(f.id, f.buf); err != nil {
			p.rep.setEvictable(fi, true) // give the frame back
			return 0, fmt.Errorf("bufferpool: writing back page %d: %w", f.id, err)
		}
		p.stats.physicalWrites.Add(1)
		p.stats.writebacks.Add(1)
		p.noteStoreLocked(f.id)
		f.dirty = false
	}
	p.stats.evictions.Add(1)
	if f.prefetched {
		f.prefetched = false
		p.stats.prefetchWasted.Add(1)
	}
	delete(p.table, f.id)
	return fi, nil
}

// pinLocked brings page id into a frame (loading it from the backing file on
// a miss) and takes one pin on it.
func (p *Pool) pinLocked(id pager.PageID) (int, error) {
	if fi, ok := p.table[id]; ok {
		p.stats.hits.Add(1)
		f := &p.frames[fi]
		if f.prefetched {
			f.prefetched = false
			p.stats.prefetchHits.Add(1)
		}
		f.pins++
		p.rep.noteAccess(fi)
		p.rep.setEvictable(fi, false)
		return fi, nil
	}
	p.stats.misses.Add(1)
	fi, err := p.reclaimLocked()
	if err != nil {
		return 0, err
	}
	f := &p.frames[fi]
	if err := p.inner.Read(id, f.buf); err != nil {
		p.free = append(p.free, fi)
		return 0, err
	}
	p.stats.physicalReads.Add(1)
	f.id = id
	f.pins = 1
	f.dirty = false
	f.prefetched = false
	p.table[id] = fi
	p.rep.noteAccess(fi)
	p.rep.setEvictable(fi, false)
	return fi, nil
}

func (p *Pool) unpinLocked(fi int, dirty bool) {
	f := &p.frames[fi]
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		p.rep.setEvictable(fi, true)
	}
}

// Pin brings the page into the pool, pins it, and returns its frame buffer.
// The buffer stays valid (and the page resident) until the matching Unpin.
// Concurrent users of the same page must coordinate their own access to the
// buffer; the pool only guarantees the frame will not be evicted or reused.
func (p *Pool) Pin(id pager.PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	fi, err := p.pinLocked(id)
	if err != nil {
		return nil, err
	}
	return p.frames[fi].buf, nil
}

// Unpin releases one pin on the page; dirty marks the frame as modified so
// it is written back before its frame is reused.
func (p *Pool) Unpin(id pager.PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	fi, ok := p.table[id]
	if !ok || p.frames[fi].pins == 0 {
		return fmt.Errorf("%w: %d", ErrNotPinned, id)
	}
	p.unpinLocked(fi, dirty)
	return nil
}

// Read implements pager.File: it serves the page from its frame, loading it
// from the backing file first on a miss. The copy out of the frame happens
// under the frame's latch with the pool mutex released, so concurrent
// readers of different pages overlap their copies.
func (p *Pool) Read(id pager.PageID, buf []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if len(buf) != p.size {
		p.mu.Unlock()
		return pager.ErrPageSize
	}
	p.calls.Reads++
	fi, err := p.pinLocked(id)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	f := &p.frames[fi]
	p.mu.Unlock()

	f.latch.RLock()
	copy(buf, f.buf)
	f.latch.RUnlock()

	p.mu.Lock()
	p.unpinLocked(fi, false)
	p.mu.Unlock()
	return nil
}

// Write implements pager.File. A resident page is updated in its frame and
// marked dirty (write-back); an uncached page is written through to the
// backing file, which also keeps the backing file's bounds/free validation
// on the write path.
func (p *Pool) Write(id pager.PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if len(buf) != p.size {
		return pager.ErrPageSize
	}
	p.calls.Writes++
	if fi, ok := p.table[id]; ok {
		p.stats.hits.Add(1)
		f := &p.frames[fi]
		if f.prefetched {
			f.prefetched = false
			p.stats.prefetchHits.Add(1)
		}
		// Pin the frame so it survives the mutex gap, then copy under
		// the exclusive frame latch; the unpin marks it dirty.
		f.pins++
		p.rep.noteAccess(fi)
		p.rep.setEvictable(fi, false)
		p.mu.Unlock()

		f.latch.Lock()
		copy(f.buf, buf)
		f.latch.Unlock()

		p.mu.Lock()
		p.unpinLocked(fi, true)
		return nil
	}
	if err := p.inner.Write(id, buf); err != nil {
		return err
	}
	p.stats.physicalWrites.Add(1)
	p.noteStoreLocked(id)
	return nil
}

// Alloc implements pager.File. The fresh zeroed page is cached (clean) when
// a frame can be reclaimed without error, so the allocate-then-write pattern
// of the trees does not pay a physical read.
func (p *Pool) Alloc() (pager.PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return pager.NilPage, ErrClosed
	}
	p.calls.Allocs++
	id, err := p.inner.Alloc()
	if err != nil {
		return pager.NilPage, err
	}
	p.noteStoreLocked(id)
	if fi, err := p.reclaimLocked(); err == nil {
		f := &p.frames[fi]
		clear(f.buf)
		f.id = id
		f.pins = 0
		f.dirty = false
		f.prefetched = false
		p.table[id] = fi
		p.rep.noteAccess(fi)
		p.rep.setEvictable(fi, true)
	}
	return id, nil
}

// Free implements pager.File: the page's frame (if resident) is discarded —
// its dirty contents are dropped, not written back — and the page is freed
// in the backing file. Freeing a pinned page is an error.
func (p *Pool) Free(id pager.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.calls.Frees++
	if fi, ok := p.table[id]; ok {
		f := &p.frames[fi]
		if f.pins > 0 {
			return fmt.Errorf("bufferpool: freeing pinned page %d", id)
		}
		delete(p.table, id)
		p.rep.remove(fi)
		f.dirty = false
		if f.prefetched {
			f.prefetched = false
			p.stats.prefetchWasted.Add(1)
		}
		p.free = append(p.free, fi)
	}
	p.noteStoreLocked(id)
	return p.inner.Free(id)
}

// NumPages implements pager.File.
func (p *Pool) NumPages() int { return p.inner.NumPages() }

// Stats implements pager.File: it reports the operations callers issued on
// the pool (the logical view). The cache counters are in PoolStats, and the
// physical I/O the backing file saw is in Inner().Stats().
func (p *Pool) Stats() pager.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// PoolStats returns a snapshot of the cache counters. The counters are
// atomic, so the snapshot never takes the pool mutex and is safe to call
// concurrently with evictions and page traffic; each counter is internally
// consistent, while cross-counter sums may be mid-update by one operation.
func (p *Pool) PoolStats() Stats {
	return p.stats.snapshot()
}

// flushLocked writes back every dirty frame and syncs the backing file when
// it supports Sync.
func (p *Pool) flushLocked() error {
	for fi := range p.frames {
		f := &p.frames[fi]
		if !f.dirty {
			continue
		}
		// A dirty frame may be pinned with a writer mid-copy under its
		// latch; the read latch makes the flushed image a consistent one.
		f.latch.RLock()
		err := p.inner.Write(f.id, f.buf)
		f.latch.RUnlock()
		if err != nil {
			return fmt.Errorf("bufferpool: flushing page %d: %w", f.id, err)
		}
		p.stats.physicalWrites.Add(1)
		p.stats.flushes.Add(1)
		p.noteStoreLocked(f.id)
		f.dirty = false
	}
	if s, ok := p.inner.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// FlushAll writes every dirty frame back to the backing file and, when the
// backing file supports it, fsyncs it — a durability point. Pages stay
// resident; pins are unaffected.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.flushLocked()
}

// Close flushes every dirty frame, closes the backing file, and marks the
// pool unusable. Outstanding pins are reported as an error (after the flush
// and close have still been attempted), since they indicate a leak.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.closed = true
	err := p.flushLocked()
	if cerr := p.inner.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		pinned := 0
		for i := range p.frames {
			if p.frames[i].pins > 0 {
				pinned++
			}
		}
		if pinned > 0 {
			err = fmt.Errorf("bufferpool: closed with %d page(s) still pinned", pinned)
		}
	}
	return err
}
