package bufferpool

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pager"
)

// TestBatchRaceOverlappingReaders runs batched and single-page readers over
// overlapping id windows, a prefetcher, and a writer churning a disjoint
// page set through Reclaimer frees and re-allocations — so frames are
// constantly reused between the two populations. Run with -race; the
// content checks catch any frame that is handed out stale.
func TestBatchRaceOverlappingReaders(t *testing.T) {
	mf := pager.NewMemFile(0)
	p, err := New(mf, Config{Pages: 64})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	pattern := func(id pager.PageID, buf []byte) {
		for j := range buf {
			buf[j] = byte(int(id)*41 + j)
		}
	}
	// Stable population: read-only for the whole test.
	stable := make([]pager.PageID, 64)
	buf := make([]byte, p.PageSize())
	for i := range stable {
		id, _ := p.Alloc()
		pattern(id, buf)
		if err := p.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		stable[i] = id
	}
	// Churn population: freed and re-allocated by the writer goroutine.
	churn := make([]pager.PageID, 32)
	for i := range churn {
		id, _ := p.Alloc()
		pattern(id, buf)
		if err := p.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		churn[i] = id
	}
	rec := NewReclaimer(p)

	const iters = 400
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	check := func(id pager.PageID, got []byte) bool {
		for j := range got {
			if got[j] != byte(int(id)*41+j) {
				t.Errorf("page %d: stale or corrupt contents at byte %d", id, j)
				return false
			}
		}
		return true
	}

	for g := 0; g < 2; g++ { // batched readers
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				lo := rng.Intn(len(stable) - 8)
				win := stable[lo : lo+8]
				bufs, errs := p.PinBatch(win)
				if errs != nil {
					errCh <- errs[0]
					return
				}
				for k, id := range win {
					if !check(id, bufs[k]) {
						return
					}
				}
				if err := p.UnpinBatch(win, bufs, false); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g))
	}
	for g := 0; g < 2; g++ { // single-page readers on the same windows
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			rb := make([]byte, p.PageSize())
			for i := 0; i < iters*4; i++ {
				id := stable[rng.Intn(len(stable))]
				if err := p.Read(id, rb); err != nil {
					errCh <- err
					return
				}
				if !check(id, rb) {
					return
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() { // prefetcher over both populations
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < iters; i++ {
			lo := rng.Intn(len(stable) - 8)
			p.Prefetch(stable[lo : lo+8])
		}
	}()
	wg.Add(1)
	go func() { // writer: free/realloc the churn set through the Reclaimer
		defer wg.Done()
		wb := make([]byte, p.PageSize())
		epoch := uint64(1)
		for i := 0; i < iters; i++ {
			victim := churn[i%len(churn)]
			p.Prefetch([]pager.PageID{victim}) // make it a prefetched frame
			if err := rec.Commit(epoch, []pager.PageID{victim}, func() {}); err != nil {
				errCh <- err
				return
			}
			epoch++
			id, err := p.Alloc()
			if err != nil {
				errCh <- err
				return
			}
			pattern(id, wb)
			if err := p.Write(id, wb); err != nil {
				errCh <- err
				return
			}
			churn[i%len(churn)] = id
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("worker error: %v", err)
	default:
	}
	// After the churn, every page (stable and current churn ids) reads back
	// its own pattern — no resurrected stale frames anywhere.
	rb := make([]byte, p.PageSize())
	for _, id := range append(append([]pager.PageID(nil), stable...), churn...) {
		if err := p.Read(id, rb); err != nil {
			t.Fatalf("final read %d: %v", id, err)
		}
		check(id, rb)
	}
}

// TestPrefetchedThenFreedNeverResurrects is the deterministic half of the
// Reclaimer interaction: a page that was prefetched, then freed by a commit
// sweep, then re-allocated with new contents must serve the new contents —
// the prefetched frame is dropped at free time, never resurrected.
func TestPrefetchedThenFreedNeverResurrects(t *testing.T) {
	mf := pager.NewMemFile(0)
	p, err := New(mf, Config{Pages: 16})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	rec := NewReclaimer(p)
	id, _ := p.Alloc()
	old := make([]byte, p.PageSize())
	for j := range old {
		old[j] = 0x11
	}
	if err := p.Write(id, old); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	p.Prefetch([]pager.PageID{id})

	// A snapshot pinned at epoch 0 blocks the free; the frame must survive
	// until the unpin, then be dropped.
	pin := rec.Pin(func() uint64 { return 0 })
	if err := rec.Commit(1, []pager.PageID{id}, func() {}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	rb := make([]byte, p.PageSize())
	if err := p.Read(id, rb); err != nil { // still readable under the pin
		t.Fatalf("read under pin: %v", err)
	}
	if rb[0] != 0x11 {
		t.Fatalf("old contents wrong under pin")
	}
	if err := rec.Unpin(pin); err != nil {
		t.Fatalf("unpin: %v", err)
	}

	// The id recycles; new contents go in.
	id2, _ := p.Alloc()
	if id2 != id {
		t.Fatalf("expected MemFile to recycle page %d, got %d", id, id2)
	}
	fresh := make([]byte, p.PageSize())
	for j := range fresh {
		fresh[j] = 0x99
	}
	if err := p.Write(id2, fresh); err != nil {
		t.Fatalf("write new: %v", err)
	}
	if err := p.Read(id2, rb); err != nil {
		t.Fatalf("read new: %v", err)
	}
	if rb[0] != 0x99 {
		t.Fatalf("stale prefetched frame resurrected: got %#x, want 0x99", rb[0])
	}
}
