package bufferpool

import (
	"sync"
	"testing"

	"repro/internal/pager"
)

// allocPages allocates n pages in f and returns their ids.
func allocPages(t *testing.T, f pager.File, n int) []pager.PageID {
	t.Helper()
	ids := make([]pager.PageID, n)
	for i := range ids {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestReclaimerImmediateFreeWithoutPins(t *testing.T) {
	f := pager.NewMemFile(0)
	r := NewReclaimer(f)
	ids := allocPages(t, f, 3)
	if err := r.Commit(1, ids, func() {}); err != nil {
		t.Fatal(err)
	}
	if got := r.FreedPages(); got != 3 {
		t.Fatalf("FreedPages = %d, want 3", got)
	}
	if got := r.PendingPages(); got != 0 {
		t.Fatalf("PendingPages = %d, want 0", got)
	}
	// Freed pages are reusable.
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, old := range ids {
		if id == old {
			found = true
		}
	}
	if !found {
		t.Fatalf("Alloc after free returned fresh page %d, want one of %v", id, ids)
	}
}

func TestReclaimerPinDefersRelease(t *testing.T) {
	f := pager.NewMemFile(0)
	r := NewReclaimer(f)
	epoch := uint64(0)
	pinned := r.Pin(func() uint64 { return epoch })
	if pinned != 0 {
		t.Fatalf("pinned epoch = %d, want 0", pinned)
	}
	if got := r.Pinned(); got != 1 {
		t.Fatalf("Pinned = %d, want 1", got)
	}

	ids := allocPages(t, f, 2)
	epoch = 1
	if err := r.Commit(1, ids, func() {}); err != nil {
		t.Fatal(err)
	}
	// The epoch-0 pin still needs pages retired at epoch 1.
	if got := r.PendingPages(); got != 2 {
		t.Fatalf("PendingPages with pin = %d, want 2", got)
	}
	if got := r.FreedPages(); got != 0 {
		t.Fatalf("FreedPages with pin = %d, want 0", got)
	}

	if err := r.Unpin(pinned); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingPages(); got != 0 {
		t.Fatalf("PendingPages after unpin = %d, want 0", got)
	}
	if got := r.FreedPages(); got != 2 {
		t.Fatalf("FreedPages after unpin = %d, want 2", got)
	}
}

func TestReclaimerOldestPinGates(t *testing.T) {
	f := pager.NewMemFile(0)
	r := NewReclaimer(f)
	epoch := uint64(0)
	cur := func() uint64 { return epoch }

	p0 := r.Pin(cur) // pin at epoch 0
	a := allocPages(t, f, 1)
	epoch = 1
	if err := r.Commit(1, a, func() {}); err != nil {
		t.Fatal(err)
	}
	p1 := r.Pin(cur) // pin at epoch 1
	b := allocPages(t, f, 1)
	epoch = 2
	if err := r.Commit(2, b, func() {}); err != nil {
		t.Fatal(err)
	}

	if got := r.PendingPages(); got != 2 {
		t.Fatalf("PendingPages = %d, want 2", got)
	}
	// Releasing the newer pin frees nothing: the epoch-0 pin gates both sets.
	if err := r.Unpin(p1); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingPages(); got != 2 {
		t.Fatalf("PendingPages after newer unpin = %d, want 2", got)
	}
	// Releasing the oldest pin frees everything.
	if err := r.Unpin(p0); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingPages(); got != 0 {
		t.Fatalf("PendingPages after oldest unpin = %d, want 0", got)
	}
	if got := r.FreedPages(); got != 2 {
		t.Fatalf("FreedPages = %d, want 2", got)
	}
}

func TestReclaimerDuplicatePinsCount(t *testing.T) {
	f := pager.NewMemFile(0)
	r := NewReclaimer(f)
	cur := func() uint64 { return 0 }
	r.Pin(cur)
	r.Pin(cur)
	if got := r.Pinned(); got != 2 {
		t.Fatalf("Pinned = %d, want 2", got)
	}
	ids := allocPages(t, f, 1)
	if err := r.Commit(1, ids, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := r.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingPages(); got != 1 {
		t.Fatalf("PendingPages after first unpin = %d, want 1", got)
	}
	if err := r.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if got := r.PendingPages(); got != 0 {
		t.Fatalf("PendingPages after second unpin = %d, want 0", got)
	}
}

func TestReclaimerPinSeesPublishedEpoch(t *testing.T) {
	// Pin's closure runs under the Reclaimer lock, serialized against
	// Commit's publish(): a pin can never land on an epoch whose pages a
	// concurrent commit already freed. Exercise the interleaving under the
	// race detector.
	f := pager.NewMemFile(0)
	r := NewReclaimer(f)
	var epoch uint64 // guarded by the Reclaimer lock via publish()/Pin closure
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint64(1); ; e++ {
			select {
			case <-stop:
				return
			default:
			}
			id, err := f.Alloc()
			if err != nil {
				t.Error(err)
				return
			}
			next := e
			if err := r.Commit(next, []pager.PageID{id}, func() { epoch = next }); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		p := r.Pin(func() uint64 { return epoch })
		if err := r.Unpin(p); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := r.PendingPages(); got != 0 {
		t.Fatalf("PendingPages at quiescence = %d, want 0", got)
	}
}
