package bufferpool

import (
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/pager"
)

// newBatchPool builds a pool of the given capacity over a MemFile with n
// distinct-content pages; it returns the pool, the raw file, and the ids.
func newBatchPool(t testing.TB, frames, n int) (*Pool, *pager.MemFile, []pager.PageID) {
	t.Helper()
	mf := pager.NewMemFile(0)
	ids := make([]pager.PageID, n)
	buf := make([]byte, mf.PageSize())
	for i := range ids {
		id, err := mf.Alloc()
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		for j := range buf {
			buf[j] = byte(int(id)*37 + j)
		}
		if err := mf.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		ids[i] = id
	}
	p, err := New(mf, Config{Pages: frames})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	return p, mf, ids
}

func wantPage(t *testing.T, size int, id pager.PageID, got []byte) {
	t.Helper()
	for j := 0; j < size; j++ {
		if got[j] != byte(int(id)*37+j) {
			t.Fatalf("page %d: byte %d = %#x, want %#x", id, j, got[j], byte(int(id)*37+j))
		}
	}
}

func TestPinBatchBasic(t *testing.T) {
	p, _, ids := newBatchPool(t, 64, 40)
	bufs, errs := p.PinBatch(ids)
	if errs != nil {
		t.Fatalf("PinBatch errors: %v", errs)
	}
	for i, id := range ids {
		wantPage(t, p.PageSize(), id, bufs[i])
	}
	st := p.PoolStats()
	if st.Misses != 40 || st.Hits != 0 {
		t.Fatalf("stats after cold batch: hits=%d misses=%d, want 0/40", st.Hits, st.Misses)
	}
	if st.BatchReads == 0 {
		t.Fatalf("no batched backing reads recorded")
	}
	// Second batch over the same pages: all hits, no further physical I/O.
	phys := st.PhysicalReads
	bufs2, errs := p.PinBatch(ids)
	if errs != nil {
		t.Fatalf("warm PinBatch errors: %v", errs)
	}
	st = p.PoolStats()
	if st.Hits != 40 || st.PhysicalReads != phys {
		t.Fatalf("warm batch: hits=%d phys=%d, want 40/%d", st.Hits, st.PhysicalReads, phys)
	}
	if err := p.UnpinBatch(ids, bufs, false); err != nil {
		t.Fatalf("unpin 1: %v", err)
	}
	if err := p.UnpinBatch(ids, bufs2, false); err != nil {
		t.Fatalf("unpin 2: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestPinBatchDuplicates(t *testing.T) {
	p, _, ids := newBatchPool(t, 16, 4)
	req := []pager.PageID{ids[0], ids[1], ids[0], ids[1], ids[0]}
	bufs, errs := p.PinBatch(req)
	if errs != nil {
		t.Fatalf("PinBatch errors: %v", errs)
	}
	for i, id := range req {
		wantPage(t, p.PageSize(), id, bufs[i])
	}
	st := p.PoolStats()
	if st.Misses != 2 || st.Hits != 3 {
		t.Fatalf("dup stats: hits=%d misses=%d, want 3/2", st.Hits, st.Misses)
	}
	// Each occurrence holds one pin: the page survives 2 unpins and is
	// freed only after the third.
	if err := p.UnpinBatch(req, bufs, false); err != nil {
		t.Fatalf("unpin: %v", err)
	}
	if err := p.Unpin(ids[0], false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("extra unpin: got %v, want ErrNotPinned", err)
	}
}

// TestPinBatchFaultIsolation drives injected sub-read failures through the
// whole stack: the failed page reports its error, sibling frames are
// installed with correct contents, and the failed page is NOT left resident
// (a later read retries and succeeds).
func TestPinBatchFaultIsolation(t *testing.T) {
	mf := pager.NewMemFile(0)
	ids := make([]pager.PageID, 8)
	buf := make([]byte, mf.PageSize())
	for i := range ids {
		id, _ := mf.Alloc()
		for j := range buf {
			buf[j] = byte(int(id)*37 + j)
		}
		if err := mf.Write(id, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		ids[i] = id
	}
	ff := faultfs.Wrap(mf)
	p, err := New(ff, Config{Pages: 16})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	ff.FailNth(faultfs.OpRead, 3, nil) // third sub-read of the batch fails
	bufs, errs := p.PinBatch(ids)
	if errs == nil {
		t.Fatalf("expected a per-page error")
	}
	failed := -1
	for i, e := range errs {
		if e == nil {
			continue
		}
		if failed != -1 {
			t.Fatalf("more than one failed position: %d and %d", failed, i)
		}
		failed = i
		if !errors.Is(e, faultfs.ErrInjected) {
			t.Fatalf("position %d: got %v, want ErrInjected", i, e)
		}
		if bufs[i] != nil {
			t.Fatalf("failed position %d still has a buffer", i)
		}
	}
	if failed != 2 {
		t.Fatalf("failed position = %d, want 2 (third sub-read)", failed)
	}
	for i, id := range ids {
		if i == failed {
			continue
		}
		wantPage(t, p.PageSize(), id, bufs[i]) // siblings not poisoned
	}
	// The failed page never became resident; a retry succeeds.
	rbuf := make([]byte, p.PageSize())
	if err := p.Read(ids[failed], rbuf); err != nil {
		t.Fatalf("retry read: %v", err)
	}
	wantPage(t, p.PageSize(), ids[failed], rbuf)
	if err := p.UnpinBatch(ids, bufs, false); err != nil {
		t.Fatalf("unpin: %v", err)
	}
}

func TestPrefetchLoadsWithoutPinning(t *testing.T) {
	p, mf, ids := newBatchPool(t, 64, 30)
	if n := p.Prefetch(ids); n != 30 {
		t.Fatalf("Prefetch loaded %d, want 30", n)
	}
	st := p.PoolStats()
	if st.PrefetchPages != 30 || st.BatchReads == 0 {
		t.Fatalf("prefetch stats: pages=%d batchReads=%d", st.PrefetchPages, st.BatchReads)
	}
	if st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("prefetch counted as page requests: hits=%d misses=%d", st.Hits, st.Misses)
	}
	// Re-prefetching resident pages is a no-op.
	if n := p.Prefetch(ids); n != 0 {
		t.Fatalf("re-Prefetch loaded %d, want 0", n)
	}
	// Reads served from prefetched frames: prefetch hits, no physical I/O.
	physBefore := mf.Stats().Reads
	buf := make([]byte, p.PageSize())
	for _, id := range ids[:20] {
		if err := p.Read(id, buf); err != nil {
			t.Fatalf("read: %v", err)
		}
		wantPage(t, p.PageSize(), id, buf)
	}
	if got := mf.Stats().Reads - physBefore; got != 0 {
		t.Fatalf("reads after prefetch hit the backing file %d times", got)
	}
	st = p.PoolStats()
	if st.PrefetchHits != 20 {
		t.Fatalf("PrefetchHits = %d, want 20", st.PrefetchHits)
	}
	// Reset drops the remaining 10 untouched prefetched frames as wasted.
	if err := p.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	st = p.PoolStats()
	if st.PrefetchWasted != 10 {
		t.Fatalf("PrefetchWasted = %d, want 10", st.PrefetchWasted)
	}
}

func TestPrefetchErrorsAreSwallowed(t *testing.T) {
	p, _, ids := newBatchPool(t, 16, 4)
	bogus := append([]pager.PageID{pager.PageID(9999)}, ids...)
	if n := p.Prefetch(bogus); n != 4 {
		t.Fatalf("Prefetch loaded %d, want 4 (bogus page skipped)", n)
	}
	buf := make([]byte, p.PageSize())
	for _, id := range ids {
		if err := p.Read(id, buf); err != nil {
			t.Fatalf("read after partial prefetch: %v", err)
		}
	}
}

func TestResetDropsUnpinnedKeepsPinned(t *testing.T) {
	p, mf, ids := newBatchPool(t, 32, 10)
	pinned, err := p.Pin(ids[0])
	if err != nil {
		t.Fatalf("pin: %v", err)
	}
	buf := make([]byte, p.PageSize())
	for _, id := range ids[1:] {
		if err := p.Read(id, buf); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	// Dirty one page through the pool; Reset must flush it, not lose it.
	dirty := make([]byte, p.PageSize())
	for j := range dirty {
		dirty[j] = 0xAB
	}
	if err := p.Write(ids[5], dirty); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := p.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	// Unpinned pages are gone: the next read is physical.
	phys := mf.Stats().Reads
	if err := p.Read(ids[1], buf); err != nil {
		t.Fatalf("read after reset: %v", err)
	}
	if mf.Stats().Reads != phys+1 {
		t.Fatalf("read after reset did not hit the backing file")
	}
	// The flushed write round-tripped.
	if err := mf.Read(ids[5], buf); err != nil {
		t.Fatalf("backing read: %v", err)
	}
	for j := range buf {
		if buf[j] != 0xAB {
			t.Fatalf("dirty page lost by Reset")
		}
	}
	// The pinned frame survived with its contents.
	wantPage(t, p.PageSize(), ids[0], pinned)
	if err := p.Unpin(ids[0], false); err != nil {
		t.Fatalf("unpin: %v", err)
	}
}

func TestPinBatchOnClosedPool(t *testing.T) {
	p, _, ids := newBatchPool(t, 16, 4)
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	bufs, errs := p.PinBatch(ids)
	if errs == nil {
		t.Fatalf("PinBatch on closed pool returned no errors")
	}
	for i := range ids {
		if !errors.Is(errs[i], ErrClosed) || bufs[i] != nil {
			t.Fatalf("position %d: err=%v buf=%v, want ErrClosed/nil", i, errs[i], bufs[i])
		}
	}
	if n := p.Prefetch(ids); n != 0 {
		t.Fatalf("Prefetch on closed pool loaded %d", n)
	}
}
