package bufferpool

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pager"
)

var _ pager.File = (*Pool)(nil)

// countingFile wraps a pager.File and counts physical writes per page.
type countingFile struct {
	pager.File
	mu     sync.Mutex
	writes map[pager.PageID]int
	reads  map[pager.PageID]int
}

func newCountingFile(f pager.File) *countingFile {
	return &countingFile{File: f, writes: map[pager.PageID]int{}, reads: map[pager.PageID]int{}}
}

func (c *countingFile) Write(id pager.PageID, buf []byte) error {
	c.mu.Lock()
	c.writes[id]++
	c.mu.Unlock()
	return c.File.Write(id, buf)
}

func (c *countingFile) Read(id pager.PageID, buf []byte) error {
	c.mu.Lock()
	c.reads[id]++
	c.mu.Unlock()
	return c.File.Read(id, buf)
}

func (c *countingFile) writeCount(id pager.PageID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes[id]
}

func (c *countingFile) readCount(id pager.PageID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads[id]
}

// newPool builds a pool over a fresh MemFile with n pre-allocated pages,
// each stamped with its page id.
func newPool(t *testing.T, frames, pages int, policy string) (*Pool, []pager.PageID) {
	t.Helper()
	mf := pager.NewMemFile(128)
	ids := make([]pager.PageID, pages)
	buf := make([]byte, 128)
	for i := range ids {
		id, err := mf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(id)
		if err := mf.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	p, err := New(mf, Config{Pages: frames, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return p, ids
}

func readPage(t *testing.T, p *Pool, id pager.PageID) byte {
	t.Helper()
	buf := make([]byte, p.PageSize())
	if err := p.Read(id, buf); err != nil {
		t.Fatalf("read %d: %v", id, err)
	}
	return buf[0]
}

func TestReadServesCachedPage(t *testing.T) {
	for _, policy := range []string{PolicyClock, PolicyLRU} {
		t.Run(policy, func(t *testing.T) {
			p, ids := newPool(t, 4, 3, policy)
			for _, id := range ids {
				if got := readPage(t, p, id); got != byte(id) {
					t.Fatalf("page %d: got %d", id, got)
				}
			}
			// Second pass must be all hits.
			before := p.PoolStats()
			for _, id := range ids {
				readPage(t, p, id)
			}
			after := p.PoolStats()
			if after.Misses != before.Misses {
				t.Errorf("re-reads missed: %d -> %d", before.Misses, after.Misses)
			}
			if after.Hits != before.Hits+int64(len(ids)) {
				t.Errorf("hits %d -> %d, want +%d", before.Hits, after.Hits, len(ids))
			}
			if after.PhysicalReads != int64(len(ids)) {
				t.Errorf("physical reads %d, want %d", after.PhysicalReads, len(ids))
			}
		})
	}
}

// TestEvictionOrderLRU checks that LRU evicts the least-recently-used page.
func TestEvictionOrderLRU(t *testing.T) {
	p, ids := newPool(t, 2, 3, PolicyLRU)
	a, b, c := ids[0], ids[1], ids[2]
	readPage(t, p, a)
	readPage(t, p, b)
	readPage(t, p, a) // a is now more recent than b
	readPage(t, p, c) // must evict b
	st := p.PoolStats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	before := p.PoolStats()
	readPage(t, p, a) // still resident
	if got := p.PoolStats(); got.Misses != before.Misses {
		t.Errorf("a was evicted; want b to be the LRU victim")
	}
	readPage(t, p, b) // evicted, must re-load
	if got := p.PoolStats(); got.PhysicalReads != before.PhysicalReads+1 {
		t.Errorf("b still resident; want it evicted")
	}
}

// TestEvictionOrderClock checks the second-chance sweep: the first frame the
// hand reaches with a cleared reference bit is the victim.
func TestEvictionOrderClock(t *testing.T) {
	p, ids := newPool(t, 2, 3, PolicyClock)
	a, b, c := ids[0], ids[1], ids[2]
	readPage(t, p, a) // frame 0, ref set
	readPage(t, p, b) // frame 1, ref set
	readPage(t, p, c) // sweep clears both refs, evicts frame 0 (a)
	before := p.PoolStats()
	readPage(t, p, b) // must still be resident
	if got := p.PoolStats(); got.Misses != before.Misses {
		t.Errorf("b was evicted; clock should have victimized a")
	}
	readPage(t, p, a) // evicted, re-load
	if got := p.PoolStats(); got.PhysicalReads != before.PhysicalReads+1 {
		t.Errorf("a still resident; clock should have victimized it")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	for _, policy := range []string{PolicyClock, PolicyLRU} {
		t.Run(policy, func(t *testing.T) {
			p, ids := newPool(t, 2, 4, policy)
			buf, err := p.Pin(ids[0])
			if err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(ids[0]) {
				t.Fatalf("pinned page contents: got %d", buf[0])
			}
			// Cycle the other pages through the single remaining frame.
			for _, id := range ids[1:] {
				readPage(t, p, id)
			}
			// The pinned page must still be resident and untouched.
			before := p.PoolStats()
			if got := readPage(t, p, ids[0]); got != byte(ids[0]) {
				t.Fatalf("pinned page contents changed: %d", got)
			}
			if got := p.PoolStats(); got.Misses != before.Misses {
				t.Error("pinned page was evicted")
			}
			if err := p.Unpin(ids[0], false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllFramesPinned(t *testing.T) {
	p, ids := newPool(t, 2, 3, PolicyClock)
	for _, id := range ids[:2] {
		if _, err := p.Pin(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Read(ids[2], make([]byte, p.PageSize())); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("read with all frames pinned: %v, want ErrNoFrames", err)
	}
	if err := p.Unpin(ids[0], false); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(ids[2], make([]byte, p.PageSize())); err != nil {
		t.Fatalf("read after unpin: %v", err)
	}
}

func TestNestedPins(t *testing.T) {
	p, ids := newPool(t, 1, 2, PolicyClock)
	if _, err := p.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(ids[0], false); err != nil {
		t.Fatal(err)
	}
	// One pin outstanding: the only frame is still unavailable.
	if err := p.Read(ids[1], make([]byte, p.PageSize())); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("want ErrNoFrames while a pin is outstanding, got %v", err)
	}
	if err := p.Unpin(ids[0], false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(ids[0], false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("extra unpin: %v, want ErrNotPinned", err)
	}
}

// TestDirtyWritebackExactlyOnce verifies a dirty page is written to the
// backing file exactly once when evicted, and a clean page not at all.
func TestDirtyWritebackExactlyOnce(t *testing.T) {
	mf := pager.NewMemFile(128)
	var ids []pager.PageID
	for i := 0; i < 3; i++ {
		id, err := mf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	cf := newCountingFile(mf)
	p, err := New(cf, Config{Pages: 1})
	if err != nil {
		t.Fatal(err)
	}
	dirty := bytes.Repeat([]byte{7}, 128)
	// Load ids[0] (via read), modify it through the pool: resident, dirty.
	readPage(t, p, ids[0])
	if err := p.Write(ids[0], dirty); err != nil {
		t.Fatal(err)
	}
	if got := cf.writeCount(ids[0]); got != 0 {
		t.Fatalf("dirty page written before eviction: %d writes", got)
	}
	readPage(t, p, ids[1]) // evicts ids[0]: exactly one write-back
	if got := cf.writeCount(ids[0]); got != 1 {
		t.Fatalf("dirty eviction wrote %d times, want 1", got)
	}
	readPage(t, p, ids[2]) // evicts clean ids[1]: no write
	if got := cf.writeCount(ids[1]); got != 0 {
		t.Fatalf("clean eviction wrote %d times, want 0", got)
	}
	// The written-back contents must be the dirty ones.
	buf := make([]byte, 128)
	if err := mf.Read(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, dirty) {
		t.Error("write-back lost the modified contents")
	}
	st := p.PoolStats()
	if st.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", st.Writebacks)
	}
}

func TestWriteThroughUncached(t *testing.T) {
	mf := pager.NewMemFile(128)
	id, err := mf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	cf := newCountingFile(mf)
	p, err := New(cf, Config{Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{9}, 128)
	if err := p.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if got := cf.writeCount(id); got != 1 {
		t.Fatalf("uncached write not written through (writes=%d)", got)
	}
	// Bad ids keep the backing file's validation on the write path.
	if err := p.Write(pager.PageID(99), data); !errors.Is(err, pager.ErrPageBounds) {
		t.Fatalf("out-of-bounds write: %v, want ErrPageBounds", err)
	}
	if err := p.Write(id, data[:10]); !errors.Is(err, pager.ErrPageSize) {
		t.Fatalf("short write: %v, want ErrPageSize", err)
	}
}

func TestAllocCachesZeroedPage(t *testing.T) {
	mf := pager.NewMemFile(128)
	cf := newCountingFile(mf)
	p, err := New(cf, Config{Pages: 4})
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got := readPage(t, p, id); got != 0 {
		t.Fatalf("fresh page not zeroed: %d", got)
	}
	if got := cf.readCount(id); got != 0 {
		t.Fatalf("alloc+read paid %d physical reads, want 0", got)
	}
	// Writing the fresh page stays in the frame (write-back, not through).
	if err := p.Write(id, bytes.Repeat([]byte{3}, 128)); err != nil {
		t.Fatal(err)
	}
	if got := cf.writeCount(id); got != 0 {
		t.Fatalf("write to cached fresh page wrote through (%d writes)", got)
	}
}

func TestFreeDiscardsDirtyFrame(t *testing.T) {
	mf := pager.NewMemFile(128)
	id, err := mf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	cf := newCountingFile(mf)
	p, err := New(cf, Config{Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	readPage(t, p, id)
	if err := p.Write(id, bytes.Repeat([]byte{5}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if got := cf.writeCount(id); got != 0 {
		t.Fatalf("freed page was written back (%d writes)", got)
	}
	if err := p.Read(id, make([]byte, 128)); !errors.Is(err, pager.ErrFreed) {
		t.Fatalf("read of freed page: %v, want ErrFreed", err)
	}
	// Pinned pages cannot be freed.
	id2, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin(id2); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id2); err == nil {
		t.Fatal("free of pinned page succeeded")
	}
	if err := p.Unpin(id2, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id2); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAllAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.pages")
	df, err := pager.CreateDiskFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(df, Config{Pages: 8})
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := p.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// After FlushAll the bytes are in the backing file (and fsynced).
	buf := make([]byte, 128)
	if err := df.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("FlushAll did not reach the backing file")
	}
	if st := p.PoolStats(); st.Flushes == 0 {
		t.Error("FlushAll recorded no flushes")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
	if err := p.Read(id, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}
	// The flushed page survives a reopen.
	df2, err := pager.OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df2.Close()
	if err := df2.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("flushed page lost across reopen")
	}
}

func TestCloseReportsLeakedPins(t *testing.T) {
	p, ids := newPool(t, 2, 1, PolicyClock)
	if _, err := p.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("close with a leaked pin reported no error")
	}
}

func TestUnknownPolicy(t *testing.T) {
	if _, err := New(pager.NewMemFile(0), Config{Policy: "fifo"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestEquivalenceWithPlainFile drives the pool and a bare MemFile through
// the same random operation sequence and requires identical observable
// behaviour — the pool must be transparent.
func TestEquivalenceWithPlainFile(t *testing.T) {
	for _, policy := range []string{PolicyClock, PolicyLRU} {
		t.Run(policy, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			plain := pager.NewMemFile(64)
			pooled, err := New(pager.NewMemFile(64), Config{Pages: 4, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			var live []pager.PageID
			buf1 := make([]byte, 64)
			buf2 := make([]byte, 64)
			for step := 0; step < 3000; step++ {
				switch op := rng.Intn(10); {
				case op < 3 || len(live) == 0: // alloc
					id1, err1 := plain.Alloc()
					id2, err2 := pooled.Alloc()
					if (err1 == nil) != (err2 == nil) || id1 != id2 {
						t.Fatalf("step %d: alloc diverged: %v/%v %d/%d", step, err1, err2, id1, id2)
					}
					live = append(live, id1)
				case op < 5: // free
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if err1, err2 := plain.Free(id), pooled.Free(id); (err1 == nil) != (err2 == nil) {
						t.Fatalf("step %d: free diverged: %v vs %v", step, err1, err2)
					}
				case op < 8: // write
					id := live[rng.Intn(len(live))]
					rng.Read(buf1)
					copy(buf2, buf1)
					if err1, err2 := plain.Write(id, buf1), pooled.Write(id, buf2); (err1 == nil) != (err2 == nil) {
						t.Fatalf("step %d: write diverged: %v vs %v", step, err1, err2)
					}
				default: // read
					id := live[rng.Intn(len(live))]
					err1 := plain.Read(id, buf1)
					err2 := pooled.Read(id, buf2)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("step %d: read diverged: %v vs %v", step, err1, err2)
					}
					if err1 == nil && !bytes.Equal(buf1, buf2) {
						t.Fatalf("step %d: page %d contents diverged", step, id)
					}
				}
				if plain.NumPages() != pooled.NumPages() {
					t.Fatalf("step %d: NumPages %d vs %d", step, plain.NumPages(), pooled.NumPages())
				}
			}
			// Flush and compare every live page in the backing files.
			if err := pooled.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for _, id := range live {
				if err := plain.Read(id, buf1); err != nil {
					t.Fatal(err)
				}
				if err := pooled.Inner().Read(id, buf2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf1, buf2) {
					t.Fatalf("page %d differs after flush", id)
				}
			}
		})
	}
}

// TestConcurrentSmoke hammers the pool from many goroutines (run with
// -race): concurrent reads, writes, and pin/unpin cycles on a working set
// larger than the pool.
func TestConcurrentSmoke(t *testing.T) {
	for _, policy := range []string{PolicyClock, PolicyLRU} {
		t.Run(policy, func(t *testing.T) {
			mf := pager.NewMemFile(128)
			const pages = 32
			ids := make([]pager.PageID, pages)
			buf := make([]byte, 128)
			for i := range ids {
				id, err := mf.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				buf[0] = byte(id)
				if err := mf.Write(id, buf); err != nil {
					t.Fatal(err)
				}
				ids[i] = id
			}
			p, err := New(mf, Config{Pages: 8, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errCh := make(chan error, 16)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					local := make([]byte, 128)
					for i := 0; i < 500; i++ {
						// Reads may roam (the pool copies under its lock);
						// writes and pins stay on goroutine-owned pages so
						// no one mutates a page while another holds its
						// pinned buffer — the caller-side discipline the
						// Pin contract requires.
						id := ids[rng.Intn(pages)]
						owned := ids[rng.Intn(pages/8)*8+g]
						switch rng.Intn(3) {
						case 0:
							rerr := p.Read(id, local)
							if errors.Is(rerr, ErrNoFrames) {
								continue
							}
							if rerr != nil {
								errCh <- rerr
								return
							}
							if local[0] != byte(id) {
								errCh <- fmt.Errorf("page %d read as %d", id, local[0])
								return
							}
						case 1:
							local[0] = byte(owned) // keep the invariant byte
							if err := p.Write(owned, local); err != nil {
								errCh <- err
								return
							}
						default:
							b, err := p.Pin(owned)
							if errors.Is(err, ErrNoFrames) {
								continue
							}
							if err != nil {
								errCh <- err
								return
							}
							if b[0] != byte(owned) {
								errCh <- fmt.Errorf("pinned page %d reads as %d", owned, b[0])
								p.Unpin(owned, false)
								return
							}
							if err := p.Unpin(owned, false); err != nil {
								errCh <- err
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
			// Every page still carries its id byte.
			for _, id := range ids {
				if got := readPage(t, p, id); got != byte(id) {
					t.Fatalf("page %d corrupted: %d", id, got)
				}
			}
		})
	}
}

func TestStatsSnapshot(t *testing.T) {
	p, ids := newPool(t, 2, 3, PolicyClock)
	for _, id := range ids {
		readPage(t, p, id)
	}
	readPage(t, p, ids[2])
	st := p.PoolStats()
	if st.Misses != 3 {
		t.Errorf("Misses = %d, want 3", st.Misses)
	}
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1", st.Hits)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("HitRate = %f", st.HitRate())
	}
	var agg Stats
	agg.Add(st)
	agg.Add(st)
	if agg.Misses != 6 || agg.Hits != 2 {
		t.Errorf("Add: %+v", agg)
	}
	calls := p.Stats()
	if calls.Reads != 4 {
		t.Errorf("caller-level Reads = %d, want 4", calls.Reads)
	}
}
