package bufferpool

import "repro/internal/pager"

// batchChunk bounds how many pages one pool-mutex acquisition admits. The
// chunk is the pipelining grain of the prefetch path: while one chunk's
// batched read is in flight under the mutex, a scanning goroutine that
// wants an already-admitted page waits at most one chunk's I/O, and decode
// of chunk N overlaps the I/O of chunk N+1.
const batchChunk = 16

// PinBatch brings every page of ids into the pool with one batched backing
// read per chunk of misses and takes one pin per position (duplicate ids pin
// their shared frame once per occurrence). It returns the frame buffers
// aligned with ids and, when any sub-read failed, a per-position error slice
// (nil entries for the successes); a failed position has a nil buffer and no
// pin. Pages that race in through concurrent readers are detected as hits
// and never read twice.
func (p *Pool) PinBatch(ids []pager.PageID) ([][]byte, []error) {
	bufs := make([][]byte, len(ids))
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ids))
		}
		errs[i] = err
	}
	for start := 0; start < len(ids); start += batchChunk {
		end := min(start+batchChunk, len(ids))
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			for i := start; i < len(ids); i++ {
				fail(i, ErrClosed)
			}
			return bufs, errs
		}
		p.admitChunkLocked(ids[start:end], true, bufs[start:end], func(i int, err error) {
			fail(start+i, err)
		})
		p.mu.Unlock()
	}
	return bufs, errs
}

// UnpinBatch releases one pin per position of a PinBatch result; positions
// with a nil buffer (failed sub-reads) are skipped. dirty marks every
// unpinned frame as modified.
func (p *Pool) UnpinBatch(ids []pager.PageID, bufs [][]byte, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	var firstErr error
	for i, id := range ids {
		if bufs[i] == nil {
			continue
		}
		fi, ok := p.table[id]
		if !ok || p.frames[fi].pins == 0 {
			if firstErr == nil {
				firstErr = ErrNotPinned
			}
			continue
		}
		p.unpinLocked(fi, dirty)
	}
	return firstErr
}

// Prefetch loads the given pages into frames without pinning them — a
// speculative hint from a scan that knows its next-level frontier. Resident
// pages are skipped, misses are read with one ReadBatch per chunk, and
// failures are swallowed (the scan's own synchronous read will surface
// them). It returns the number of pages actually loaded. Prefetched frames
// are immediately evictable and are tracked by the PrefetchPages /
// PrefetchHits / PrefetchWasted counters.
func (p *Pool) Prefetch(ids []pager.PageID) int {
	loaded := 0
	for start := 0; start < len(ids); start += batchChunk {
		end := min(start+batchChunk, len(ids))
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return loaded
		}
		loaded += p.admitChunkLocked(ids[start:end], false, nil, nil)
		p.mu.Unlock()
	}
	return loaded
}

// admitChunkLocked admits one chunk of pages (len(ids) <= batchChunk) under
// the pool mutex. With pin=true every position is pinned and its frame
// buffer stored in bufs, and failures are reported through fail; with
// pin=false (prefetch) frames are installed unpinned and evictable, bufs and
// fail are unused, and the return value counts the pages loaded.
func (p *Pool) admitChunkLocked(ids []pager.PageID, pin bool, bufs [][]byte, fail func(int, error)) int {
	// Pass 1: reclaim a frame for every distinct non-resident page.
	var missIDs []pager.PageID
	var missFrames []int
	var missErrs []error
outer:
	for _, id := range ids {
		if _, ok := p.table[id]; ok {
			continue
		}
		for _, m := range missIDs {
			if m == id {
				continue outer
			}
		}
		fi, err := p.reclaimLocked()
		if err != nil {
			missIDs = append(missIDs, id)
			missFrames = append(missFrames, -1)
			missErrs = append(missErrs, err)
			continue
		}
		missIDs = append(missIDs, id)
		missFrames = append(missFrames, fi)
		missErrs = append(missErrs, nil)
	}

	// Pass 2: one batched read straight into the reclaimed frame buffers.
	loaded := 0
	readIDs := missIDs[:0:0]
	readBufs := make([][]byte, 0, len(missIDs))
	readPos := make([]int, 0, len(missIDs))
	for k, fi := range missFrames {
		if fi < 0 {
			continue
		}
		readIDs = append(readIDs, missIDs[k])
		readBufs = append(readBufs, p.frames[fi].buf)
		readPos = append(readPos, k)
	}
	if len(readIDs) > 0 {
		p.stats.batchReads.Add(1)
		rerrs := pager.ReadPages(p.inner, readIDs, readBufs)
		for j, k := range readPos {
			fi := missFrames[k]
			if rerrs != nil && rerrs[j] != nil {
				missErrs[k] = rerrs[j]
				missFrames[k] = -1
				p.free = append(p.free, fi)
				continue
			}
			p.stats.physicalReads.Add(1)
			if pin {
				p.stats.misses.Add(1)
			} else {
				p.stats.prefetchPages.Add(1)
			}
			f := &p.frames[fi]
			f.id = readIDs[j]
			f.pins = 0
			f.dirty = false
			f.prefetched = !pin
			p.table[f.id] = fi
			p.rep.noteAccess(fi)
			p.rep.setEvictable(fi, true)
			loaded++
		}
	}
	if !pin {
		return loaded
	}

	// Pass 3: resolve every position against the (now warmer) table. The
	// first position of a page loaded in pass 2 was already counted as a
	// miss; every other resident position is a hit.
	missCounted := make([]bool, len(missIDs))
	for i, id := range ids {
		fi, ok := p.table[id]
		if !ok {
			for k, m := range missIDs {
				if m == id {
					fail(i, missErrs[k])
					break
				}
			}
			continue
		}
		f := &p.frames[fi]
		freshMiss := false
		for k, m := range missIDs {
			if m == id && missFrames[k] == fi && !missCounted[k] {
				missCounted[k] = true
				freshMiss = true
				break
			}
		}
		if !freshMiss {
			p.stats.hits.Add(1)
			if f.prefetched {
				f.prefetched = false
				p.stats.prefetchHits.Add(1)
			}
		}
		f.pins++
		p.rep.noteAccess(fi)
		p.rep.setEvictable(fi, false)
		bufs[i] = f.buf
	}
	return loaded
}

// Reset flushes dirty frames and drops every unpinned frame — resident
// pages must be re-read from the backing file afterwards. Cold-cache
// benchmarks call this between iterations (paired with the disk files'
// DropOSCache); pinned frames survive untouched. Still-unused prefetched
// frames count as wasted.
func (p *Pool) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	for id, fi := range p.table {
		f := &p.frames[fi]
		if f.pins > 0 {
			continue
		}
		if f.prefetched {
			f.prefetched = false
			p.stats.prefetchWasted.Add(1)
		}
		delete(p.table, id)
		p.rep.remove(fi)
		f.dirty = false
		p.free = append(p.free, fi)
	}
	return nil
}
