package bufferpool

import "repro/internal/pager"

// batchChunk bounds how many pages one batched admission brings in at once.
// The chunk is the pipelining grain of the prefetch path: frames for one
// chunk are reclaimed under the pool mutex, the chunk's batched read runs
// with the mutex released (hits on resident pages and unpins proceed
// unblocked), and decode of chunk N overlaps the I/O of chunk N+1.
const batchChunk = 16

// PinBatch brings every page of ids into the pool with one batched backing
// read per chunk of misses and takes one pin per position (duplicate ids pin
// their shared frame once per occurrence). It returns the frame buffers
// aligned with ids and, when any sub-read failed, a per-position error slice
// (nil entries for the successes); a failed position has a nil buffer and no
// pin. Pages that race in through concurrent readers are detected as hits
// and their concurrently-loaded frame is served.
func (p *Pool) PinBatch(ids []pager.PageID) ([][]byte, []error) {
	bufs := make([][]byte, len(ids))
	var errs []error
	for start := 0; start < len(ids); start += batchChunk {
		end := min(start+batchChunk, len(ids))
		off := start
		p.admitChunk(ids[start:end], true, bufs[start:end], func(i int, err error) {
			if errs == nil {
				errs = make([]error, len(ids))
			}
			errs[off+i] = err
		})
	}
	return bufs, errs
}

// UnpinBatch releases one pin per position of a PinBatch result; positions
// with a nil buffer (failed sub-reads) are skipped. dirty marks every
// unpinned frame as modified.
func (p *Pool) UnpinBatch(ids []pager.PageID, bufs [][]byte, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	var firstErr error
	for i, id := range ids {
		if bufs[i] == nil {
			continue
		}
		fi, ok := p.table[id]
		if !ok || p.frames[fi].pins == 0 {
			if firstErr == nil {
				firstErr = ErrNotPinned
			}
			continue
		}
		p.unpinLocked(fi, dirty)
	}
	return firstErr
}

// Prefetch loads the given pages into frames without pinning them — a
// speculative hint from a scan that knows its next-level frontier. Resident
// pages are skipped, misses are read with one ReadBatch per chunk (issued
// with the pool mutex released, so prefetch I/O never stalls foreground
// readers of resident pages), and failures are swallowed (the scan's own
// synchronous read will surface them). It returns the number of pages
// actually loaded. Prefetched frames are immediately evictable and are
// tracked by the PrefetchPages / PrefetchHits / PrefetchWasted counters.
func (p *Pool) Prefetch(ids []pager.PageID) int {
	loaded := 0
	for start := 0; start < len(ids); start += batchChunk {
		end := min(start+batchChunk, len(ids))
		loaded += p.admitChunk(ids[start:end], false, nil, nil)
	}
	return loaded
}

// admitChunk admits one chunk of pages (len(ids) <= batchChunk). With
// pin=true every position is pinned and its frame buffer stored in bufs, and
// failures are reported through fail; with pin=false (prefetch) frames are
// installed unpinned and evictable, bufs and fail are unused, and the return
// value counts the pages loaded.
//
// The batched backing read runs with the pool mutex released, so batch-miss
// and prefetch I/O never blocks concurrent hits on resident pages. The
// frames receiving the read are private — reclaimed but not yet published in
// the table, hence invisible to every other pool user — and the install pass
// reconciles them against whatever happened during the I/O window: a page
// that raced in through a concurrent reader keeps that reader's frame (ours
// is discarded unused), and a page whose backing bytes changed while the
// read was in flight (freed, re-allocated, written through, or written back
// — tracked in p.stale by noteStoreLocked) is never installed from the
// now-stale read. Pinned positions of such pages fall back to a fresh
// synchronous read; prefetch positions are simply dropped.
func (p *Pool) admitChunk(ids []pager.PageID, pin bool, bufs [][]byte, fail func(int, error)) int {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if fail != nil {
			for i := range ids {
				fail(i, ErrClosed)
			}
		}
		return 0
	}

	// Pass 1: resolve resident positions as hits — pinned now, so they stay
	// resident across the I/O window — and reclaim a private frame for every
	// distinct non-resident page.
	var missIDs []pager.PageID
	var missFrames []int
	var missErrs []error
	type pos struct{ i, k int } // position i resolves against miss k
	var pending []pos
outer:
	for i, id := range ids {
		if _, ok := p.table[id]; ok {
			if pin {
				fi, _ := p.pinLocked(id) // resident: hit path, cannot fail
				bufs[i] = p.frames[fi].buf
			}
			continue
		}
		for k, m := range missIDs {
			if m == id {
				if pin {
					pending = append(pending, pos{i, k})
				}
				continue outer
			}
		}
		k := len(missIDs)
		fi, err := p.reclaimLocked()
		if err != nil {
			fi = -1
		}
		missIDs = append(missIDs, id)
		missFrames = append(missFrames, fi)
		missErrs = append(missErrs, err)
		if pin {
			pending = append(pending, pos{i, k})
		}
	}
	readIDs := make([]pager.PageID, 0, len(missIDs))
	readBufs := make([][]byte, 0, len(missIDs))
	readPos := make([]int, 0, len(missIDs))
	for k, fi := range missFrames {
		if fi < 0 {
			continue
		}
		readIDs = append(readIDs, missIDs[k])
		readBufs = append(readBufs, p.frames[fi].buf)
		readPos = append(readPos, k)
	}

	// Pass 2: one batched read straight into the private frame buffers, with
	// the mutex released. p.inflight makes noteStoreLocked record every page
	// whose backing contents change during the window.
	var rerrs []error
	if len(readIDs) > 0 {
		p.inflight++
		p.mu.Unlock()
		p.stats.batchReads.Add(1)
		rerrs = pager.ReadPages(p.inner, readIDs, readBufs)
		p.mu.Lock()
		p.inflight--
		if p.closed {
			for _, fi := range missFrames {
				if fi >= 0 {
					p.free = append(p.free, fi)
				}
			}
			if p.inflight == 0 {
				clear(p.stale)
			}
			p.mu.Unlock()
			if fail != nil {
				for _, pp := range pending {
					fail(pp.i, ErrClosed)
				}
			}
			return 0
		}
	}
	defer p.mu.Unlock()

	// Pass 3: install the loaded frames, reconciling against the window.
	loaded := 0
	for j, k := range readPos {
		fi := missFrames[k]
		id := readIDs[j]
		discard := false
		if rerrs != nil && rerrs[j] != nil {
			missErrs[k] = rerrs[j]
			discard = true
		} else if _, resident := p.table[id]; resident {
			discard = true // raced in through a concurrent reader: its frame wins
		} else if _, changed := p.stale[id]; changed {
			discard = true // backing bytes changed mid-read: our copy is stale
		}
		if discard {
			missFrames[k] = -1
			p.free = append(p.free, fi)
			continue
		}
		p.stats.physicalReads.Add(1)
		if pin {
			p.stats.misses.Add(1)
		} else {
			p.stats.prefetchPages.Add(1)
		}
		f := &p.frames[fi]
		f.id = id
		f.pins = 0
		f.dirty = false
		f.prefetched = !pin
		p.table[id] = fi
		p.rep.noteAccess(fi)
		p.rep.setEvictable(fi, true)
		loaded++
	}
	if p.inflight == 0 {
		clear(p.stale)
	}
	if !pin {
		return loaded
	}

	// Pass 4: pin the pending positions. The first position of a page we
	// installed was already counted as a miss; every other resident position
	// is a hit. A page that is neither resident nor read-failed was stale-
	// skipped (or evicted again already) — re-read it synchronously.
	missCounted := make([]bool, len(missIDs))
	for _, pp := range pending {
		id := ids[pp.i]
		fi, ok := p.table[id]
		if !ok {
			if missErrs[pp.k] != nil {
				fail(pp.i, missErrs[pp.k])
				continue
			}
			fi2, err := p.pinLocked(id)
			if err != nil {
				fail(pp.i, err)
				continue
			}
			bufs[pp.i] = p.frames[fi2].buf
			continue
		}
		f := &p.frames[fi]
		if missFrames[pp.k] == fi && !missCounted[pp.k] {
			missCounted[pp.k] = true
		} else {
			p.stats.hits.Add(1)
			if f.prefetched {
				f.prefetched = false
				p.stats.prefetchHits.Add(1)
			}
		}
		f.pins++
		p.rep.noteAccess(fi)
		p.rep.setEvictable(fi, false)
		bufs[pp.i] = f.buf
	}
	return loaded
}

// Reset flushes dirty frames and drops every unpinned frame — resident
// pages must be re-read from the backing file afterwards. Cold-cache
// benchmarks call this between iterations (paired with the disk files'
// DropOSCache); pinned frames survive untouched. Still-unused prefetched
// frames count as wasted.
func (p *Pool) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	for id, fi := range p.table {
		f := &p.frames[fi]
		if f.pins > 0 {
			continue
		}
		if f.prefetched {
			f.prefetched = false
			p.stats.prefetchWasted.Add(1)
		}
		delete(p.table, id)
		p.rep.remove(fi)
		f.dirty = false
		p.free = append(p.free, fi)
	}
	return nil
}
