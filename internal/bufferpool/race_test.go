package bufferpool

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/pager"
)

// TestStatsRaceWithEvictions is the regression test for the Stats data race:
// PoolStats snapshots must be safe to take concurrently with page traffic
// that is actively evicting frames. Run under -race this fails loudly if any
// counter read races an increment. The pool is deliberately tiny relative to
// the page set so every reader loop drives constant evictions.
func TestStatsRaceWithEvictions(t *testing.T) {
	const (
		pages   = 64
		frames  = 4
		readers = 8
		rounds  = 200
	)
	inner := pager.NewMemFile(0)
	ids := make([]pager.PageID, pages)
	buf := make([]byte, inner.PageSize())
	for i := range ids {
		id, err := inner.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint32(buf, uint32(id))
		if err := inner.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	p, err := New(inner, Config{Pages: frames})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			b := make([]byte, p.PageSize())
			for i := 0; i < rounds; i++ {
				id := ids[(seed*31+i*7)%len(ids)]
				if err := p.Read(id, b); err != nil {
					t.Errorf("Read(%d): %v", id, err)
					return
				}
				if got := pager.PageID(binary.BigEndian.Uint32(b)); got != id {
					t.Errorf("page %d returned content of page %d", id, got)
					return
				}
				if i%3 == 0 {
					binary.BigEndian.PutUint32(b, uint32(id))
					if err := p.Write(id, b); err != nil {
						t.Errorf("Write(%d): %v", id, err)
						return
					}
				}
			}
		}(r)
	}
	// Stats readers run concurrently with the eviction-heavy traffic above.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*readers; i++ {
				st := p.PoolStats()
				if st.Hits < 0 || st.Misses < 0 || st.Evictions < 0 {
					t.Errorf("negative counter in snapshot: %+v", st)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := p.PoolStats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no page traffic recorded")
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with %d frames over %d pages: %+v", frames, pages, st)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPinUnpin exercises the per-frame latch path: goroutines pin
// the same small page set, hold the returned buffers, and unpin, while
// others read through the File interface.
func TestConcurrentPinUnpin(t *testing.T) {
	inner := pager.NewMemFile(0)
	var ids []pager.PageID
	buf := make([]byte, inner.PageSize())
	for i := 0; i < 8; i++ {
		id, err := inner.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint32(buf, uint32(id))
		if err := inner.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	p, err := New(inner, Config{Pages: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			b := make([]byte, p.PageSize())
			for i := 0; i < 100; i++ {
				id := ids[(seed+i)%len(ids)]
				if seed%2 == 0 {
					fb, err := p.Pin(id)
					if err != nil {
						t.Errorf("Pin(%d): %v", id, err)
						return
					}
					if got := pager.PageID(binary.BigEndian.Uint32(fb)); got != id {
						t.Errorf("pinned page %d holds content of %d", id, got)
					}
					if err := p.Unpin(id, false); err != nil {
						t.Errorf("Unpin(%d): %v", id, err)
						return
					}
				} else if err := p.Read(id, b); err != nil {
					t.Errorf("Read(%d): %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
