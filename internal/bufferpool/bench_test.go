package bufferpool

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pager"
)

// BenchmarkBufferPool sweeps pool sizes over a fixed working set with a
// Zipf-skewed access pattern (the hot-root/cold-leaf shape of tree
// descents) and reports the achieved hit ratio alongside ns/op.
func BenchmarkBufferPool(b *testing.B) {
	const pages = 1024
	for _, policy := range []string{PolicyClock, PolicyLRU} {
		for _, frames := range []int{16, 64, 256, 1024} {
			b.Run(fmt.Sprintf("policy=%s/frames=%d", policy, frames), func(b *testing.B) {
				mf := pager.NewMemFile(pager.DefaultPageSize)
				ids := make([]pager.PageID, pages)
				for i := range ids {
					id, err := mf.Alloc()
					if err != nil {
						b.Fatal(err)
					}
					ids[i] = id
				}
				p, err := New(mf, Config{Pages: frames, Policy: policy})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1996))
				zipf := rand.NewZipf(rng, 1.2, 1, pages-1)
				buf := make([]byte, pager.DefaultPageSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := p.Read(ids[zipf.Uint64()], buf); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(p.PoolStats().HitRate(), "hit-ratio")
			})
		}
	}
}
