package bufferpool

import "fmt"

// Replacement policy names accepted by Config.Policy.
const (
	PolicyClock = "clock"
	PolicyLRU   = "lru"
)

// replacer picks eviction victims among the pool's frames. Implementations
// are not safe for concurrent use; the pool serializes access under its own
// mutex. Frames are identified by their index in the pool's frame table.
type replacer interface {
	// noteAccess records a reference to frame i (on every hit and load).
	noteAccess(i int)
	// setEvictable marks frame i as an eviction candidate (pin count
	// reached zero) or withdraws it (page pinned again).
	setEvictable(i int, ok bool)
	// victim selects an evictable frame, withdraws it from consideration,
	// and returns it. ok is false when no frame is evictable.
	victim() (int, bool)
	// remove withdraws frame i entirely (its page was freed).
	remove(i int)
}

func newReplacer(policy string, frames int) (replacer, error) {
	switch policy {
	case "", PolicyClock:
		return newClockReplacer(frames), nil
	case PolicyLRU:
		return newLRUReplacer(frames), nil
	default:
		return nil, fmt.Errorf("bufferpool: unknown replacement policy %q (want %q or %q)",
			policy, PolicyClock, PolicyLRU)
	}
}

// clockReplacer is the default second-chance policy: a hand sweeps the frame
// table; a referenced frame gets its bit cleared and is passed over once, an
// unreferenced evictable frame is the victim.
type clockReplacer struct {
	ref       []bool
	evictable []bool
	hand      int
	n         int // evictable frames
}

func newClockReplacer(frames int) *clockReplacer {
	return &clockReplacer{ref: make([]bool, frames), evictable: make([]bool, frames)}
}

func (c *clockReplacer) noteAccess(i int) { c.ref[i] = true }

func (c *clockReplacer) setEvictable(i int, ok bool) {
	if c.evictable[i] == ok {
		return
	}
	c.evictable[i] = ok
	if ok {
		c.n++
	} else {
		c.n--
	}
}

func (c *clockReplacer) victim() (int, bool) {
	if c.n == 0 {
		return 0, false
	}
	// Two sweeps suffice: the first clears every reference bit on the
	// evictable frames, the second must find one unreferenced.
	for step := 0; step < 2*len(c.ref)+1; step++ {
		i := c.hand
		c.hand = (c.hand + 1) % len(c.ref)
		if !c.evictable[i] {
			continue
		}
		if c.ref[i] {
			c.ref[i] = false
			continue
		}
		c.setEvictable(i, false)
		return i, true
	}
	return 0, false
}

func (c *clockReplacer) remove(i int) {
	c.setEvictable(i, false)
	c.ref[i] = false
}

// lruReplacer evicts the least-recently-accessed evictable frame, tracked
// with a monotonic access stamp per frame.
type lruReplacer struct {
	stamp     []uint64
	evictable []bool
	clock     uint64
	n         int
}

func newLRUReplacer(frames int) *lruReplacer {
	return &lruReplacer{stamp: make([]uint64, frames), evictable: make([]bool, frames)}
}

func (l *lruReplacer) noteAccess(i int) {
	l.clock++
	l.stamp[i] = l.clock
}

func (l *lruReplacer) setEvictable(i int, ok bool) {
	if l.evictable[i] == ok {
		return
	}
	l.evictable[i] = ok
	if ok {
		l.n++
	} else {
		l.n--
	}
}

func (l *lruReplacer) victim() (int, bool) {
	if l.n == 0 {
		return 0, false
	}
	best, found := 0, false
	for i, ok := range l.evictable {
		if !ok {
			continue
		}
		if !found || l.stamp[i] < l.stamp[best] {
			best, found = i, true
		}
	}
	if !found {
		return 0, false
	}
	l.setEvictable(best, false)
	return best, true
}

func (l *lruReplacer) remove(i int) {
	l.setEvictable(i, false)
	l.stamp[i] = 0
}
