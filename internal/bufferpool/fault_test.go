package bufferpool

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/pager"
)

// faultPool builds a 2-frame pool over a fault-injectable memory file with
// three allocated pages: id1 evicted clean, id2 and id3 resident and dirty.
func faultPool(t *testing.T) (*Pool, *faultfs.File, [3]pager.PageID, [3][]byte) {
	t.Helper()
	inner := faultfs.Wrap(pager.NewMemFile(128))
	p, err := New(inner, Config{Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids [3]pager.PageID
	var data [3][]byte
	for i := range ids {
		id, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		data[i] = bytes.Repeat([]byte{byte(i + 1)}, 128)
	}
	// id1's frame was reclaimed for id3; dirty the two resident pages.
	for _, i := range []int{1, 2} {
		if err := p.Write(ids[i], data[i]); err != nil {
			t.Fatal(err)
		}
	}
	return p, inner, ids, data
}

// TestEvictWritebackFailure: when the write-back of a dirty eviction victim
// fails, the triggering operation returns the error and the victim stays
// resident and dirty — its data must not be lost.
func TestEvictWritebackFailure(t *testing.T) {
	p, inner, ids, data := faultPool(t)
	inner.FailNth(faultfs.OpWrite, 1, nil)
	buf := make([]byte, 128)
	if err := p.Read(ids[0], buf); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("read forcing failed eviction = %v, want ErrInjected", err)
	}
	// Both dirty pages must still be resident with their contents intact
	// (a dropped frame would read back the backing file's zeros).
	for _, i := range []int{1, 2} {
		if err := p.Read(ids[i], buf); err != nil {
			t.Fatalf("page %d after failed eviction: %v", ids[i], err)
		}
		if !bytes.Equal(buf, data[i]) {
			t.Fatalf("page %d lost its dirty data after failed eviction", ids[i])
		}
	}
	// With the fault disarmed the retained dirty frames flush normally.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if err := inner.Read(ids[i], buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[i]) {
			t.Fatalf("page %d not written back after recovery", ids[i])
		}
	}
}

// TestWriteThroughFailure: a Write to an uncached page goes through to the
// backing file; its error must reach the caller and not corrupt state.
func TestWriteThroughFailure(t *testing.T) {
	p, inner, ids, data := faultPool(t)
	inner.FailNth(faultfs.OpWrite, 1, nil)
	if err := p.Write(ids[0], data[0]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("write-through = %v, want ErrInjected", err)
	}
	// Disarmed: the retry lands in the backing file.
	if err := p.Write(ids[0], data[0]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := inner.Read(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[0]) {
		t.Fatal("retried write-through did not reach the backing file")
	}
}

// TestFlushFailureKeepsFramesDirty: a failed FlushAll must leave unflushed
// frames dirty so a later flush still writes them.
func TestFlushFailureKeepsFramesDirty(t *testing.T) {
	p, inner, ids, data := faultPool(t)
	inner.FailNth(faultfs.OpWrite, 1, nil)
	if err := p.FlushAll(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("FlushAll = %v, want ErrInjected", err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for _, i := range []int{1, 2} {
		if err := inner.Read(ids[i], buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[i]) {
			t.Fatalf("page %d missing from backing file after retried flush", ids[i])
		}
	}
}

// TestFlushSyncFailure: FlushAll surfaces a failure of the backing file's
// Sync (the durability barrier), not just of the page writes.
func TestFlushSyncFailure(t *testing.T) {
	p, inner, _, _ := faultPool(t)
	inner.FailNth(faultfs.OpSync, 1, nil)
	if err := p.FlushAll(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("FlushAll with failing sync = %v, want ErrInjected", err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocFailurePropagates: backing-file allocation errors reach the
// caller.
func TestAllocFailurePropagates(t *testing.T) {
	p, inner, _, _ := faultPool(t)
	inner.FailNth(faultfs.OpAlloc, 1, nil)
	if _, err := p.Alloc(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Alloc = %v, want ErrInjected", err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
}
