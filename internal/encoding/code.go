// Package encoding implements the class-name encoding scheme at the heart of
// the U-index (Gudes, Section 3): the COD relation that maps class names to
// codes whose lexicographic order equals a depth-first (topological) order of
// the schema graph, plus the order-preserving attribute-value encodings and
// the composite-key layout used by every index entry.
//
// # Codes
//
// A Code is a path of labels, one per level of the class hierarchy,
// serialized with '.' between labels: the paper's C5AA becomes "C5.A.A". The
// separator makes the scheme closed under schema evolution: the paper's
// Figure 4 inserts a class between siblings C1A and C1B by giving it a label
// such as "Aa", and with the raw paper encoding "C1Aa" would collide with the
// subtree prefix of C1A ("C1Aa" has prefix "C1A"). With explicit level
// separators, "C1.Aa" sorts after the entire C1.A subtree, because the
// subtree of code X is exactly the interval [X, X+"/") — every descendant
// extends X with '.' (0x2E) which is below '/' (0x2F), while every label
// character ('0'..'9','A'..'Z','a'..'z') is above '/'.
//
// # Key layout
//
// An index entry is a single key (Section 3.2.1 "one can use only
// single-value entries ... and rely on the compression mechanism"):
//
//	attr-value-bytes ‖ code₁ ‖ '$' ‖ oid₁ ‖ code₂ ‖ '$' ‖ oid₂ ‖ …
//
// with codes ordered lexicographically along the path (the terminal class of
// the REF path first, exactly as in the paper's examples: Age-50, C1$e1,
// C2$c1, C5A$v2). '$' (0x24) is below every code character and below '.',
// preserving the paper's observation that "'$' is lower lexicographically
// than A...". OIDs are fixed four-byte big-endian values.
package encoding

import (
	"fmt"
	"strings"
)

// Key-layout byte constants. Their relative order is load-bearing; see the
// package comment.
const (
	// SepByte separates a class code from the object id that follows it
	// inside a composite key.
	SepByte = '$' // 0x24
	// SepSuccByte is the smallest byte greater than SepByte; appending it
	// to a prefix yields an exclusive upper bound for "this exact class".
	SepSuccByte = '%' // 0x25
	// LevelByte separates labels inside a serialized code.
	LevelByte = '.' // 0x2E
	// SubtreeEndByte is the smallest byte greater than LevelByte;
	// code+"/" is the exclusive upper bound of code's subtree.
	SubtreeEndByte = '/' // 0x2F
)

// Code is a serialized class code such as "C5.A.A". The empty Code is
// invalid. Codes compare correctly with ordinary string comparison.
type Code string

// alphabet index <-> byte conversion. Labels are drawn from the 62-character
// alphabet 0-9 A-Z a-z; lexicographic byte order over that alphabet is a
// total order even though the byte ranges are not contiguous.
const alphabetSize = 62

func digitIdx(b byte) (int, bool) {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0'), true
	case b >= 'A' && b <= 'Z':
		return 10 + int(b-'A'), true
	case b >= 'a' && b <= 'z':
		return 36 + int(b-'a'), true
	}
	return 0, false
}

func idxDigit(i int) byte {
	switch {
	case i < 10:
		return '0' + byte(i)
	case i < 36:
		return 'A' + byte(i-10)
	default:
		return 'a' + byte(i-36)
	}
}

// ValidLabel reports whether s is a non-empty label over the code alphabet
// that does not end in the minimal digit '0'. (Labels never end in '0' so
// that LabelBetween can always find room below them.)
func ValidLabel(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if _, ok := digitIdx(s[i]); !ok {
			return false
		}
	}
	return s[len(s)-1] != '0'
}

// ParseCode validates and returns a Code from its serialized form.
func ParseCode(s string) (Code, error) {
	if s == "" {
		return "", fmt.Errorf("encoding: empty code")
	}
	for _, lbl := range strings.Split(s, string(rune(LevelByte))) {
		if !ValidLabel(lbl) {
			return "", fmt.Errorf("encoding: invalid label %q in code %q", lbl, s)
		}
	}
	return Code(s), nil
}

// MustParseCode is ParseCode that panics on error, for tests and
// compile-time literals ONLY. It must never appear on a runtime decode
// path: keys read back from storage go through SplitKey / SplitPath /
// DecodeValue, which validate with returned errors, so a corrupt key can
// never take down a process serving other queries
// (TestCorruptKeyDecodeNeverPanics sweeps mutated keys through those
// paths).
func MustParseCode(s string) Code {
	c, err := ParseCode(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Labels returns the per-level labels of the code.
func (c Code) Labels() []string {
	if c == "" {
		return nil
	}
	return strings.Split(string(c), string(rune(LevelByte)))
}

// Depth returns the number of levels in the code (1 for a root class).
func (c Code) Depth() int {
	if c == "" {
		return 0
	}
	return strings.Count(string(c), string(rune(LevelByte))) + 1
}

// Child returns the code of a child class with the given label.
func (c Code) Child(label string) (Code, error) {
	if !ValidLabel(label) {
		return "", fmt.Errorf("encoding: invalid label %q", label)
	}
	if c == "" {
		return Code(label), nil
	}
	return c + Code(rune(LevelByte)) + Code(label), nil
}

// Parent returns the code of the parent class, or ("", false) for a root.
func (c Code) Parent() (Code, bool) {
	i := strings.LastIndexByte(string(c), LevelByte)
	if i < 0 {
		return "", false
	}
	return c[:i], true
}

// IsAncestorOrSelf reports whether c lies in the subtree rooted at a (i.e.
// a is an ancestor of c, or a == c).
func (a Code) IsAncestorOrSelf(c Code) bool {
	if a == c {
		return true
	}
	return strings.HasPrefix(string(c), string(a)+string(rune(LevelByte)))
}

// SubtreeEnd returns the exclusive upper bound of the subtree key range of
// c: every code in c's subtree (including c) is >= c and < c.SubtreeEnd(),
// and every code outside it falls outside that interval.
func (c Code) SubtreeEnd() string {
	return string(c) + string(rune(SubtreeEndByte))
}

// Compact renders the code in the paper's visual style by dropping the level
// separators when every non-root label is a single character: "C5.A.A"
// renders as "C5AA". Codes with multi-character evolved labels keep the dots
// to remain unambiguous.
func (c Code) Compact() string {
	labels := c.Labels()
	for _, l := range labels[1:] {
		if len(l) != 1 {
			return string(c)
		}
	}
	return strings.Join(labels, "")
}

// String implements fmt.Stringer.
func (c Code) String() string { return string(c) }

// SequenceLabels returns n labels in strictly increasing order, each of the
// minimal uniform width, never ending in '0'. Uniform width keeps byte order
// equal to sequence order. Used when a schema assigns codes to the children
// of a class in one pass.
func SequenceLabels(n int) []string {
	if n <= 0 {
		return nil
	}
	w := 1
	for cap := alphabetSize - 1; cap < n; cap *= alphabetSize {
		w++
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		b := make([]byte, w)
		v := i
		b[w-1] = idxDigit(1 + v%(alphabetSize-1)) // last digit in 1..61
		v /= alphabetSize - 1
		for j := w - 2; j >= 0; j-- {
			b[j] = idxDigit(v % alphabetSize)
			v /= alphabetSize
		}
		out[i] = string(b)
	}
	return out
}

// AlphaLabels returns up to 26 labels "A","B","C",... matching the paper's
// own presentation of child codes. It panics if n > 26; schemas with more
// children per class should use SequenceLabels.
func AlphaLabels(n int) []string {
	if n > 26 {
		panic("encoding: AlphaLabels supports at most 26 labels")
	}
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

// LabelBetween returns a label strictly between lo and hi in label order.
// lo == "" means "before everything"; hi == "" means "after everything".
// This implements the paper's Figure 4 schema-evolution moves ("use
// additional characters in the encoding scheme"): a new sibling can always
// be inserted between two existing ones without renaming any other class.
func LabelBetween(lo, hi string) (string, error) {
	if lo != "" && !ValidLabel(lo) {
		return "", fmt.Errorf("encoding: invalid lower label %q", lo)
	}
	if hi != "" && !ValidLabel(hi) {
		return "", fmt.Errorf("encoding: invalid upper label %q", hi)
	}
	if lo != "" && hi != "" && lo >= hi {
		return "", fmt.Errorf("encoding: lower label %q not below upper %q", lo, hi)
	}
	// Invariant entering iteration i: b == lo[:i] when lo is still
	// "active" (constrains position i), and b < hi whenever hi is active.
	// hi can never be exhausted while active: that would require hi to be
	// a prefix of lo (or equal to it), both rejected above.
	var b []byte
	hiActive := hi != ""
	for i := 0; ; i++ {
		ld := -1 // digit of lo at position i; -1 when exhausted
		if i < len(lo) {
			ld, _ = digitIdx(lo[i])
		}
		hd := alphabetSize // digit of hi at position i; 62 when unbounded
		if hiActive {
			hd, _ = digitIdx(hi[i])
		}
		if hd-ld > 1 {
			// Room at this position: pick a middle digit.
			b = append(b, idxDigit(ld+(hd-ld)/2))
			if b[len(b)-1] == '0' {
				// Never end in '0': extend with a middle digit.
				b = append(b, idxDigit(alphabetSize/2))
			}
			return string(b), nil
		}
		// No room at this position (hd == ld, or hd == ld+1): copy the
		// lower bound's digit and continue one position deeper, where
		// lo constrains less.
		if ld < 0 {
			// lo exhausted, so hd must be 0 here (any hd >= 1 gives
			// room above). Copy hi's '0' and keep hi active.
			b = append(b, idxDigit(0))
			continue
		}
		b = append(b, idxDigit(ld))
		if hd != ld {
			// b == lo[:i+1] is now strictly below hi at position i,
			// so deeper positions are unconstrained by hi.
			hiActive = false
		}
	}
}
