package encoding

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCode(t *testing.T) {
	valid := []string{"C1", "C5.A", "C5.A.A", "C2.AA", "z", "C5.Aa", "1"}
	for _, s := range valid {
		if _, err := ParseCode(s); err != nil {
			t.Errorf("ParseCode(%q) = %v, want ok", s, err)
		}
	}
	invalid := []string{"", ".", "C5.", ".A", "C5..A", "C5.A0", "C0", "C$", "C5/A", "a b"}
	for _, s := range invalid {
		if _, err := ParseCode(s); err == nil {
			t.Errorf("ParseCode(%q) succeeded, want error", s)
		}
	}
}

func TestCodeNavigation(t *testing.T) {
	c := MustParseCode("C5")
	a, err := c.Child("A")
	if err != nil {
		t.Fatalf("Child: %v", err)
	}
	if a != "C5.A" {
		t.Fatalf("Child = %q, want C5.A", a)
	}
	aa, _ := a.Child("A")
	if aa != "C5.A.A" {
		t.Fatalf("grandchild = %q, want C5.A.A", aa)
	}
	if aa.Depth() != 3 || c.Depth() != 1 {
		t.Fatalf("Depth wrong: %d, %d", aa.Depth(), c.Depth())
	}
	p, ok := aa.Parent()
	if !ok || p != a {
		t.Fatalf("Parent = %q,%v, want C5.A,true", p, ok)
	}
	if _, ok := c.Parent(); ok {
		t.Fatal("root has a parent")
	}
	if got := aa.Labels(); len(got) != 3 || got[0] != "C5" || got[2] != "A" {
		t.Fatalf("Labels = %v", got)
	}
	if _, err := c.Child("$bad"); err == nil {
		t.Fatal("Child with invalid label succeeded")
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	cases := []struct {
		a, c string
		want bool
	}{
		{"C5", "C5", true},
		{"C5", "C5.A", true},
		{"C5", "C5.A.A", true},
		{"C5.A", "C5.B", false},
		{"C5", "C2", false},
		// The case that breaks naive prefix matching: sibling label
		// "Ab" must not be inside subtree of label "A".
		{"C5.A", "C5.Ab", false},
		{"C5.A", "C5.A.B", true},
	}
	for _, tc := range cases {
		a, c := MustParseCode(tc.a), MustParseCode(tc.c)
		if got := a.IsAncestorOrSelf(c); got != tc.want {
			t.Errorf("IsAncestorOrSelf(%q, %q) = %v, want %v", tc.a, tc.c, got, tc.want)
		}
	}
}

// TestSubtreeIntervalProperty is the core correctness property of the whole
// encoding scheme: for any pair of codes a, c: c is in [a, a.SubtreeEnd())
// exactly when a is an ancestor-or-self of c.
func TestSubtreeIntervalProperty(t *testing.T) {
	codes := randomCodeForest(t, 400, 42)
	for _, a := range codes {
		lo, hi := string(a), a.SubtreeEnd()
		for _, c := range codes {
			inInterval := string(c) >= lo && string(c) < hi
			if inInterval != a.IsAncestorOrSelf(c) {
				t.Fatalf("interval property violated: a=%q c=%q interval=%v ancestor=%v",
					a, c, inInterval, a.IsAncestorOrSelf(c))
			}
		}
	}
}

// TestPreorderEqualsLexicographic checks the paper's key claim: depth-first
// preorder of the class tree equals lexicographic order of codes.
func TestPreorderEqualsLexicographic(t *testing.T) {
	// Build a deterministic tree and collect codes in preorder.
	var preorder []Code
	var build func(c Code, depth int, fanout int)
	build = func(c Code, depth, fanout int) {
		preorder = append(preorder, c)
		if depth == 0 {
			return
		}
		for _, lbl := range AlphaLabels(fanout) {
			child, err := c.Child(lbl)
			if err != nil {
				t.Fatal(err)
			}
			build(child, depth-1, fanout)
		}
	}
	for _, root := range []string{"C1", "C2", "C3"} {
		build(MustParseCode(root), 3, 3)
	}
	sorted := append([]Code(nil), preorder...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range preorder {
		if preorder[i] != sorted[i] {
			t.Fatalf("preorder[%d]=%q but sorted[%d]=%q", i, preorder[i], i, sorted[i])
		}
	}
}

func TestCompact(t *testing.T) {
	cases := []struct{ in, want string }{
		{"C5", "C5"},
		{"C5.A", "C5A"},
		{"C5.A.A", "C5AA"},
		{"C2.A.A", "C2AA"},
		{"C5.Ab", "C5.Ab"}, // evolved label keeps dots
	}
	for _, tc := range cases {
		if got := MustParseCode(tc.in).Compact(); got != tc.want {
			t.Errorf("Compact(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSequenceLabels(t *testing.T) {
	for _, n := range []int{1, 2, 8, 40, 61, 62, 200, 4000} {
		labels := SequenceLabels(n)
		if len(labels) != n {
			t.Fatalf("SequenceLabels(%d) returned %d labels", n, len(labels))
		}
		for i, l := range labels {
			if !ValidLabel(l) {
				t.Fatalf("SequenceLabels(%d)[%d] = %q invalid", n, i, l)
			}
			if i > 0 && labels[i-1] >= l {
				t.Fatalf("SequenceLabels(%d) not increasing at %d: %q >= %q", n, i, labels[i-1], l)
			}
			if len(l) != len(labels[0]) {
				t.Fatalf("SequenceLabels(%d) width not uniform", n)
			}
		}
	}
	if SequenceLabels(0) != nil {
		t.Error("SequenceLabels(0) != nil")
	}
}

func TestAlphaLabels(t *testing.T) {
	l := AlphaLabels(3)
	if len(l) != 3 || l[0] != "A" || l[2] != "C" {
		t.Fatalf("AlphaLabels(3) = %v", l)
	}
	defer func() {
		if recover() == nil {
			t.Error("AlphaLabels(27) did not panic")
		}
	}()
	AlphaLabels(27)
}

func TestLabelBetween(t *testing.T) {
	cases := []struct{ lo, hi string }{
		{"", ""},
		{"A", "B"},
		{"A", ""},
		{"", "A"},
		{"A", "AV"},
		{"Az", "B"},
		{"A", "A1"},
		{"", "01"},
		{"5", "51"},
		{"zz", ""},
		{"1", "2"},
	}
	for _, tc := range cases {
		got, err := LabelBetween(tc.lo, tc.hi)
		if err != nil {
			t.Errorf("LabelBetween(%q, %q): %v", tc.lo, tc.hi, err)
			continue
		}
		if !ValidLabel(got) {
			t.Errorf("LabelBetween(%q, %q) = %q: invalid label", tc.lo, tc.hi, got)
		}
		if tc.lo != "" && got <= tc.lo {
			t.Errorf("LabelBetween(%q, %q) = %q: not above lo", tc.lo, tc.hi, got)
		}
		if tc.hi != "" && got >= tc.hi {
			t.Errorf("LabelBetween(%q, %q) = %q: not below hi", tc.lo, tc.hi, got)
		}
	}
	if _, err := LabelBetween("B", "A"); err == nil {
		t.Error("LabelBetween(B, A) succeeded, want error")
	}
	if _, err := LabelBetween("A", "A"); err == nil {
		t.Error("LabelBetween(A, A) succeeded, want error")
	}
	if _, err := LabelBetween("$", "A"); err == nil {
		t.Error("LabelBetween with invalid lo succeeded, want error")
	}
}

// TestLabelBetweenQuick drives LabelBetween with random valid label pairs.
func TestLabelBetweenQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randLabel := func() string {
		for {
			n := 1 + rng.Intn(4)
			b := make([]byte, n)
			for i := range b {
				b[i] = idxDigit(rng.Intn(alphabetSize))
			}
			if s := string(b); ValidLabel(s) {
				return s
			}
		}
	}
	for i := 0; i < 2000; i++ {
		lo, hi := randLabel(), randLabel()
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			continue
		}
		got, err := LabelBetween(lo, hi)
		if err != nil {
			t.Fatalf("LabelBetween(%q, %q): %v", lo, hi, err)
		}
		if !(lo < got && got < hi) || !ValidLabel(got) {
			t.Fatalf("LabelBetween(%q, %q) = %q out of range", lo, hi, got)
		}
	}
}

// TestLabelBetweenDense repeatedly subdivides the same gap, simulating a
// worst-case schema-evolution pattern (always adding a class in the same
// spot, Figure 4a of the paper).
func TestLabelBetweenDense(t *testing.T) {
	lo, hi := "A", "B"
	for i := 0; i < 64; i++ {
		mid, err := LabelBetween(lo, hi)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !(lo < mid && mid < hi) {
			t.Fatalf("iteration %d: %q not between %q and %q", i, mid, lo, hi)
		}
		lo = mid // always insert just above the previous insertion
	}
	if len(lo) > 40 {
		t.Errorf("labels grew too fast: %d bytes after 64 dense inserts", len(lo))
	}
}

// randomCodeForest generates a random forest of codes including evolved
// (multi-character) labels.
func randomCodeForest(t *testing.T, n int, seed int64) []Code {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	roots := SequenceLabels(5)
	codes := make([]Code, 0, n)
	for _, r := range roots {
		codes = append(codes, Code(r))
	}
	for len(codes) < n {
		parent := codes[rng.Intn(len(codes))]
		lbl := SequenceLabels(20)[rng.Intn(20)]
		if rng.Intn(4) == 0 { // occasionally an evolved label
			var err error
			lbl, err = LabelBetween(lbl, "")
			if err != nil {
				t.Fatal(err)
			}
		}
		c, err := parent.Child(lbl)
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, c)
	}
	return codes
}

// TestQuickCodeOrderTotal checks that code comparison is consistent with
// label-wise comparison level by level.
func TestQuickCodeOrderTotal(t *testing.T) {
	codes := randomCodeForest(t, 200, 99)
	less := func(i, j int) bool {
		a, b := codes[i].Labels(), codes[j].Labels()
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				// Labels at one level compare as serialized with
				// the level terminator; a label that is a prefix
				// of its sibling sorts first.
				return labelLess(a[k], b[k])
			}
		}
		return len(a) < len(b)
	}
	_ = less
	check := func(i, j uint8) bool {
		a := codes[int(i)%len(codes)]
		b := codes[int(j)%len(codes)]
		return (a < b) == less(int(i)%len(codes), int(j)%len(codes)) || a == b
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// labelLess compares sibling labels the way serialized codes do: "A" < "Ab"
// because "A." (or "A$", "A/") sorts below "Ab".
func labelLess(a, b string) bool {
	if strings.HasPrefix(b, a) {
		return len(a) < len(b)
	}
	if strings.HasPrefix(a, b) {
		return false
	}
	return a < b
}
