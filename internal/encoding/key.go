package encoding

import (
	"encoding/binary"
	"fmt"
	"math"
)

// OID is a four-byte object identifier, matching the paper's experimental
// setup ("objects ... referenced by 4 bytes OIDS", Section 5.1).
type OID uint32

// OIDSize is the fixed on-key size of an OID.
const OIDSize = 4

// AttrType selects an order-preserving byte encoding for attribute values.
// All encodings compare correctly with bytes.Compare.
type AttrType int

const (
	// AttrUint64 encodes uint64 values as 8 big-endian bytes.
	AttrUint64 AttrType = iota
	// AttrInt64 encodes int64 values as 8 big-endian bytes with the sign
	// bit flipped, so negative values sort before positive ones.
	AttrInt64
	// AttrFloat64 encodes float64 values with the standard IEEE-754
	// order-preserving transform.
	AttrFloat64
	// AttrString encodes strings with 0x00-escaping and a 0x00 0x00
	// terminator, so that variable-length values remain prefix-free and
	// order-preserving.
	AttrString
)

// String implements fmt.Stringer.
func (t AttrType) String() string {
	switch t {
	case AttrUint64:
		return "uint64"
	case AttrInt64:
		return "int64"
	case AttrFloat64:
		return "float64"
	case AttrString:
		return "string"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// AppendValue appends the order-preserving encoding of v to dst. v must
// match the attribute type: uint64, int64, float64 or string (int and int64
// are both accepted by the integer types for convenience).
func (t AttrType) AppendValue(dst []byte, v any) ([]byte, error) {
	switch t {
	case AttrUint64:
		u, err := asUint64(v)
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(dst, u), nil
	case AttrInt64:
		i, err := asInt64(v)
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(dst, uint64(i)^(1<<63)), nil
	case AttrFloat64:
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("encoding: %T is not a float64", v)
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		return binary.BigEndian.AppendUint64(dst, bits), nil
	case AttrString:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("encoding: %T is not a string", v)
		}
		for i := 0; i < len(s); i++ {
			if s[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, s[i])
			}
		}
		return append(dst, 0x00, 0x00), nil
	}
	return nil, fmt.Errorf("encoding: unknown attribute type %d", int(t))
}

// EncodeValue is AppendValue into a fresh slice.
func (t AttrType) EncodeValue(v any) ([]byte, error) {
	return t.AppendValue(nil, v)
}

// SplitValue splits an encoded key into the attribute-value bytes and the
// remainder (the path portion). It fails if the key is too short to contain
// a full value.
func (t AttrType) SplitValue(key []byte) (val, rest []byte, err error) {
	switch t {
	case AttrUint64, AttrInt64, AttrFloat64:
		if len(key) < 8 {
			return nil, nil, fmt.Errorf("encoding: key too short for %v value", t)
		}
		return key[:8], key[8:], nil
	case AttrString:
		for i := 0; i+1 < len(key); i++ {
			if key[i] != 0x00 {
				continue
			}
			switch key[i+1] {
			case 0x00:
				return key[:i+2], key[i+2:], nil
			case 0xFF:
				i++ // escaped NUL, skip the escape byte
			default:
				return nil, nil, fmt.Errorf("encoding: invalid string escape 0x00 0x%02X", key[i+1])
			}
		}
		return nil, nil, fmt.Errorf("encoding: unterminated string value in key")
	}
	return nil, nil, fmt.Errorf("encoding: unknown attribute type %d", int(t))
}

// DecodeValue decodes the attribute-value bytes produced by AppendValue back
// into a Go value (uint64, int64, float64 or string).
func (t AttrType) DecodeValue(val []byte) (any, error) {
	switch t {
	case AttrUint64:
		if len(val) != 8 {
			return nil, fmt.Errorf("encoding: uint64 value has %d bytes", len(val))
		}
		return binary.BigEndian.Uint64(val), nil
	case AttrInt64:
		if len(val) != 8 {
			return nil, fmt.Errorf("encoding: int64 value has %d bytes", len(val))
		}
		return int64(binary.BigEndian.Uint64(val) ^ (1 << 63)), nil
	case AttrFloat64:
		if len(val) != 8 {
			return nil, fmt.Errorf("encoding: float64 value has %d bytes", len(val))
		}
		bits := binary.BigEndian.Uint64(val)
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return math.Float64frombits(bits), nil
	case AttrString:
		if len(val) < 2 || val[len(val)-1] != 0x00 || val[len(val)-2] != 0x00 {
			return nil, fmt.Errorf("encoding: string value not terminated")
		}
		body := val[:len(val)-2]
		out := make([]byte, 0, len(body))
		for i := 0; i < len(body); i++ {
			if body[i] == 0x00 {
				if i+1 >= len(body) || body[i+1] != 0xFF {
					return nil, fmt.Errorf("encoding: invalid string escape")
				}
				out = append(out, 0x00)
				i++
				continue
			}
			out = append(out, body[i])
		}
		return string(out), nil
	}
	return nil, fmt.Errorf("encoding: unknown attribute type %d", int(t))
}

func asUint64(v any) (uint64, error) {
	switch x := v.(type) {
	case uint64:
		return x, nil
	case uint:
		return uint64(x), nil
	case int:
		if x < 0 {
			return 0, fmt.Errorf("encoding: negative value %d for uint64 attribute", x)
		}
		return uint64(x), nil
	case int64:
		if x < 0 {
			return 0, fmt.Errorf("encoding: negative value %d for uint64 attribute", x)
		}
		return uint64(x), nil
	}
	return 0, fmt.Errorf("encoding: %T is not a uint64", v)
}

func asInt64(v any) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	}
	return 0, fmt.Errorf("encoding: %T is not an int64", v)
}

// PathEntry is one (class, object) step of a composite key. Entries appear
// in key order: the terminal class of the REF path first (it has the
// lexicographically smallest code), the queried class last.
type PathEntry struct {
	Code Code
	OID  OID
}

// AppendKey appends the composite key attr ‖ code₁ ‖ '$' ‖ oid₁ ‖ … to dst.
// attr must already be encoded with an AttrType.
func AppendKey(dst, attr []byte, path []PathEntry) []byte {
	dst = append(dst, attr...)
	for _, pe := range path {
		dst = append(dst, pe.Code...)
		dst = append(dst, SepByte)
		dst = binary.BigEndian.AppendUint32(dst, uint32(pe.OID))
	}
	return dst
}

// BuildKey is AppendKey into a fresh slice.
func BuildKey(attr []byte, path []PathEntry) []byte {
	return AppendKey(nil, attr, path)
}

// SplitKey parses a composite key built by AppendKey back into its
// attribute-value bytes and path entries.
func SplitKey(t AttrType, key []byte) (attr []byte, path []PathEntry, err error) {
	attr, rest, err := t.SplitValue(key)
	if err != nil {
		return nil, nil, err
	}
	path, err = SplitPath(rest)
	if err != nil {
		return nil, nil, err
	}
	return attr, path, nil
}

// SplitPath parses the path portion of a composite key (everything after
// the attribute value).
func SplitPath(rest []byte) ([]PathEntry, error) {
	return AppendSplitPath(nil, rest, nil)
}

// CodeInterner converts raw code bytes from composite keys into validated
// Codes, keeping one canonical string per distinct code. An index sees a
// handful of distinct class codes across millions of entries, so the scan
// executor's per-entry ParseCode (a string conversion plus label-by-label
// validation) collapses to an allocation-free map probe. The zero value is
// ready to use; an interner is not safe for concurrent use — give each
// execution its own.
type CodeInterner struct {
	m map[string]Code
}

// Intern returns the validated Code for raw code bytes, reusing the
// canonical string after the first occurrence.
func (ci *CodeInterner) Intern(raw []byte) (Code, error) {
	if c, ok := ci.m[string(raw)]; ok { // compiled to a no-alloc lookup
		return c, nil
	}
	c, err := ParseCode(string(raw))
	if err != nil {
		return "", err
	}
	if ci.m == nil {
		ci.m = make(map[string]Code)
	}
	ci.m[string(c)] = c
	return c, nil
}

// AppendSplitPath is SplitPath appending into path — pass a retained
// slice's path[:0] to reuse its backing array across keys. A non-nil
// interner additionally dedups the per-entry code strings; nil falls back
// to ParseCode per entry.
func AppendSplitPath(path []PathEntry, rest []byte, ci *CodeInterner) ([]PathEntry, error) {
	for len(rest) > 0 {
		sep := -1
		for i, b := range rest {
			if b == SepByte {
				sep = i
				break
			}
		}
		if sep <= 0 {
			return nil, fmt.Errorf("encoding: malformed key path (missing code before separator)")
		}
		var code Code
		var err error
		if ci != nil {
			code, err = ci.Intern(rest[:sep])
		} else {
			code, err = ParseCode(string(rest[:sep]))
		}
		if err != nil {
			return nil, fmt.Errorf("encoding: malformed key path: %w", err)
		}
		rest = rest[sep+1:]
		if len(rest) < OIDSize {
			return nil, fmt.Errorf("encoding: malformed key path (truncated oid)")
		}
		path = append(path, PathEntry{Code: code, OID: OID(binary.BigEndian.Uint32(rest))})
		rest = rest[OIDSize:]
	}
	return path, nil
}

// PrefixEnd returns the smallest byte string greater than every valid
// composite key that starts with prefix and continues with at least one more
// byte of key material. Key material after any prefix position is either a
// code character, '.', '$', or an OID byte — OID bytes may be 0xFF, so this
// bound is only valid at positions where the next byte is a code character
// or separator (which is how the interval builders in internal/core use it).
// It appends 0xFF, which exceeds every code/separator byte.
func PrefixEnd(prefix []byte) []byte {
	out := make([]byte, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = 0xFF
	return out
}
