package encoding

import (
	"testing"
)

// TestCorruptKeyDecodeNeverPanics sweeps systematically damaged composite
// keys through every runtime decode path (SplitKey → SplitValue, SplitPath,
// DecodeValue) for every attribute type. Each decode must either succeed or
// return an error; a panic fails the test (and in production would take
// down a process serving unrelated queries).
func TestCorruptKeyDecodeNeverPanics(t *testing.T) {
	types := []AttrType{AttrUint64, AttrInt64, AttrFloat64, AttrString}
	values := map[AttrType]any{
		AttrUint64:  uint64(77),
		AttrInt64:   int64(-3),
		AttrFloat64: 2.5,
		AttrString:  "Re\x00d", // embedded NUL exercises the escape coding
	}
	path := []PathEntry{
		{Code: MustParseCode("1.2"), OID: 7},
		{Code: MustParseCode("1"), OID: 9},
	}
	for _, at := range types {
		attr, err := at.EncodeValue(values[at])
		if err != nil {
			t.Fatal(err)
		}
		valid := BuildKey(attr, path)
		if _, _, err := SplitKey(at, valid); err != nil {
			t.Fatalf("%v: pristine key does not decode: %v", at, err)
		}
		decode := func(key []byte) {
			a, p, err := SplitKey(at, key)
			if err != nil {
				return // typed rejection is fine
			}
			// A successful split must also survive value decoding and
			// path re-encoding without panicking.
			if _, err := at.DecodeValue(a); err != nil {
				return
			}
			_ = BuildKey(a, p)
		}
		// Every single-byte mutation.
		for i := range valid {
			for _, b := range []byte{0x00, 0x01, byte(SepByte), byte(LevelByte), 0x7F, 0xFF, valid[i] ^ 0x01} {
				k := append([]byte(nil), valid...)
				k[i] = b
				decode(k)
			}
		}
		// Every truncation and an extension.
		for n := 0; n <= len(valid); n++ {
			decode(valid[:n])
		}
		decode(append(append([]byte(nil), valid...), 0xFF, 0x00, byte(SepByte)))
	}
}
