package encoding

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttrTypeString(t *testing.T) {
	if AttrUint64.String() != "uint64" || AttrString.String() != "string" {
		t.Error("AttrType.String wrong")
	}
	if AttrType(99).String() == "" {
		t.Error("unknown AttrType stringifies empty")
	}
}

func TestUint64RoundTripAndOrder(t *testing.T) {
	vals := []uint64{0, 1, 2, 100, 1 << 31, 1<<63 - 1, 1 << 63, math.MaxUint64}
	var prev []byte
	for _, v := range vals {
		enc, err := AttrUint64.EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %d: %v", v, err)
		}
		got, err := AttrUint64.DecodeValue(enc)
		if err != nil || got.(uint64) != v {
			t.Fatalf("round trip %d -> %v (%v)", v, got, err)
		}
		if prev != nil && bytes.Compare(prev, enc) >= 0 {
			t.Fatalf("ordering violated at %d", v)
		}
		prev = enc
	}
}

func TestInt64Order(t *testing.T) {
	check := func(a, b int64) bool {
		ea, err1 := AttrInt64.EncodeValue(a)
		eb, err2 := AttrInt64.EncodeValue(b)
		if err1 != nil || err2 != nil {
			return false
		}
		da, _ := AttrInt64.DecodeValue(ea)
		if da.(int64) != a {
			return false
		}
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Order(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -0.0001, 0, 0.0001, 1, 2.5, 1e300, math.Inf(1)}
	var prev []byte
	for _, v := range vals {
		enc, err := AttrFloat64.EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %g: %v", v, err)
		}
		got, err := AttrFloat64.DecodeValue(enc)
		if err != nil || got.(float64) != v {
			t.Fatalf("round trip %g -> %v (%v)", v, got, err)
		}
		if prev != nil && bytes.Compare(prev, enc) >= 0 {
			t.Fatalf("ordering violated at %g", v)
		}
		prev = enc
	}
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, _ := AttrFloat64.EncodeValue(a)
		eb, _ := AttrFloat64.EncodeValue(b)
		if a == b {
			return bytes.Equal(ea, eb)
		}
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringOrderAndRoundTrip(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "ab", "b", "red", "redd", "white"}
	var encs [][]byte
	for _, v := range vals {
		enc, err := AttrString.EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %q: %v", v, err)
		}
		got, err := AttrString.DecodeValue(enc)
		if err != nil || got.(string) != v {
			t.Fatalf("round trip %q -> %v (%v)", v, got, err)
		}
		encs = append(encs, enc)
	}
	for i := 1; i < len(encs); i++ {
		if bytes.Compare(encs[i-1], encs[i]) >= 0 {
			t.Fatalf("ordering violated: %q >= %q", vals[i-1], vals[i])
		}
	}
	check := func(a, b string) bool {
		ea, _ := AttrString.EncodeValue(a)
		eb, _ := AttrString.EncodeValue(b)
		if a == b {
			return bytes.Equal(ea, eb)
		}
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStringPrefixFree: a shorter encoded string must never be a prefix of a
// longer one in a way that confuses SplitValue.
func TestStringSplitValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		n := rng.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		s := string(b)
		enc, err := AttrString.EncodeValue(s)
		if err != nil {
			t.Fatal(err)
		}
		tail := []byte("C5$")
		key := append(append([]byte(nil), enc...), tail...)
		val, rest, err := AttrString.SplitValue(key)
		if err != nil {
			t.Fatalf("SplitValue(%q): %v", s, err)
		}
		if !bytes.Equal(val, enc) || !bytes.Equal(rest, tail) {
			t.Fatalf("SplitValue(%q) split wrongly", s)
		}
	}
	if _, _, err := AttrString.SplitValue([]byte("unterminated")); err == nil {
		t.Error("SplitValue on unterminated string succeeded")
	}
	if _, _, err := AttrUint64.SplitValue([]byte("shrt")); err == nil {
		t.Error("SplitValue on short uint64 succeeded")
	}
}

func TestTypeMismatches(t *testing.T) {
	if _, err := AttrUint64.EncodeValue("x"); err == nil {
		t.Error("uint64 encode of string succeeded")
	}
	if _, err := AttrUint64.EncodeValue(-1); err == nil {
		t.Error("uint64 encode of negative int succeeded")
	}
	if _, err := AttrInt64.EncodeValue("x"); err == nil {
		t.Error("int64 encode of string succeeded")
	}
	if _, err := AttrFloat64.EncodeValue(1); err == nil {
		t.Error("float64 encode of int succeeded")
	}
	if _, err := AttrString.EncodeValue(1); err == nil {
		t.Error("string encode of int succeeded")
	}
	if _, err := AttrUint64.DecodeValue([]byte{1}); err == nil {
		t.Error("uint64 decode of 1 byte succeeded")
	}
	if _, err := AttrType(99).EncodeValue(1); err == nil {
		t.Error("unknown type encode succeeded")
	}
}

func TestIntConvenienceForms(t *testing.T) {
	// int and int64 are both accepted for the integer attribute types.
	a, err := AttrUint64.EncodeValue(50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttrUint64.EncodeValue(uint64(50))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("int and uint64 encode differently")
	}
	c, err := AttrInt64.EncodeValue(-5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := AttrInt64.EncodeValue(int64(-5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c, d) {
		t.Error("int and int64 encode differently")
	}
}

func TestBuildSplitKey(t *testing.T) {
	attr, err := AttrUint64.EncodeValue(uint64(50))
	if err != nil {
		t.Fatal(err)
	}
	path := []PathEntry{
		{Code: MustParseCode("C1"), OID: 7},
		{Code: MustParseCode("C2.A.A"), OID: 12},
		{Code: MustParseCode("C5.A"), OID: 123},
	}
	key := BuildKey(attr, path)
	gotAttr, gotPath, err := SplitKey(AttrUint64, key)
	if err != nil {
		t.Fatalf("SplitKey: %v", err)
	}
	if !bytes.Equal(gotAttr, attr) {
		t.Error("attr mismatch")
	}
	if len(gotPath) != 3 {
		t.Fatalf("path length %d, want 3", len(gotPath))
	}
	for i := range path {
		if gotPath[i] != path[i] {
			t.Errorf("path[%d] = %+v, want %+v", i, gotPath[i], path[i])
		}
	}
}

// TestKeyOrderingClustersPaths verifies the paper's clustering claims from
// Section 3.2.2: entries for the same terminal object sort together, and
// within those, entries for the same mid-path object sort together.
func TestKeyOrderingClustersPaths(t *testing.T) {
	attr, _ := AttrUint64.EncodeValue(uint64(50))
	c1, c2, c5 := MustParseCode("C1"), MustParseCode("C2"), MustParseCode("C5")
	mk := func(e, c, v OID) []byte {
		return BuildKey(attr, []PathEntry{{c1, e}, {c2, c}, {c5, v}})
	}
	keys := [][]byte{
		mk(1, 10, 100), mk(1, 10, 101), mk(1, 11, 100), mk(2, 10, 100),
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("expected clustering order violated at %d", i)
		}
	}
	// All employee-1 entries fall in the contiguous range
	// [attr‖C1$1, attr‖C1$2).
	lo := BuildKey(attr, []PathEntry{{c1, 1}})
	hi := BuildKey(attr, []PathEntry{{c1, 2}})
	for i, k := range keys[:3] {
		if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
			t.Errorf("key %d escaped employee-1 cluster", i)
		}
	}
	if bytes.Compare(keys[3], hi) < 0 {
		t.Error("employee-2 key inside employee-1 cluster")
	}
}

// TestSeparatorOrder checks the byte-ordering facts the scheme depends on
// ("'$' is lower lexicographically than A...", Section 3.2.2).
func TestSeparatorOrder(t *testing.T) {
	if !(SepByte < SepSuccByte && SepSuccByte < LevelByte && LevelByte < SubtreeEndByte && SubtreeEndByte < '0') {
		t.Fatal("separator byte ordering broken")
	}
	// A key for class X sorts before keys of X's descendants, which sort
	// before X's subtree end.
	attr, _ := AttrUint64.EncodeValue(uint64(1))
	x := MustParseCode("C5.A")
	child, _ := x.Child("B")
	keyX := BuildKey(attr, []PathEntry{{x, 5}})
	keyChild := BuildKey(attr, []PathEntry{{child, 5}})
	end := append(append([]byte(nil), attr...), []byte(x.SubtreeEnd())...)
	if !(bytes.Compare(keyX, keyChild) < 0 && bytes.Compare(keyChild, end) < 0) {
		t.Fatal("subtree clustering order broken")
	}
}

func TestSplitPathErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("$"),                    // no code
		[]byte("C5"),                   // no separator
		[]byte("C5$ab"),                // truncated oid
		[]byte("C5.$\x00\x00\x00\x00"), // invalid code
	}
	for _, b := range bad {
		if _, err := SplitPath(b); err == nil {
			t.Errorf("SplitPath(%q) succeeded, want error", b)
		}
	}
	if p, err := SplitPath(nil); err != nil || len(p) != 0 {
		t.Error("SplitPath(nil) should be empty and ok")
	}
}

func TestPrefixEnd(t *testing.T) {
	p := []byte("abc")
	e := PrefixEnd(p)
	if !bytes.Equal(e, []byte{'a', 'b', 'c', 0xFF}) {
		t.Fatalf("PrefixEnd = %v", e)
	}
	// Must not alias the input.
	e[0] = 'z'
	if p[0] != 'a' {
		t.Fatal("PrefixEnd aliases its input")
	}
}

// TestQuickKeyRoundTrip round-trips random composite keys.
func TestQuickKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	codes := randomCodeForest(t, 50, 5)
	for i := 0; i < 1000; i++ {
		attrVal := rng.Uint64()
		attr, _ := AttrUint64.EncodeValue(attrVal)
		n := 1 + rng.Intn(4)
		path := make([]PathEntry, n)
		for j := range path {
			path[j] = PathEntry{Code: codes[rng.Intn(len(codes))], OID: OID(rng.Uint32())}
		}
		key := BuildKey(attr, path)
		gotAttr, gotPath, err := SplitKey(AttrUint64, key)
		if err != nil {
			t.Fatalf("SplitKey: %v", err)
		}
		v, _ := AttrUint64.DecodeValue(gotAttr)
		if v.(uint64) != attrVal {
			t.Fatal("attr mismatch")
		}
		if len(gotPath) != n {
			t.Fatalf("path length %d, want %d", len(gotPath), n)
		}
		for j := range path {
			if gotPath[j] != path[j] {
				t.Fatalf("path[%d] mismatch", j)
			}
		}
	}
}
