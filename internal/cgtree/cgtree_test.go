package cgtree

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/encoding"
	"repro/internal/pager"
)

func key8(v uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, v)
}

// buildTree loads nObjects uniformly over nSets and nKeys distinct keys.
func buildTree(t *testing.T, nObjects, nSets, nKeys int, seed int64) *Tree {
	t.Helper()
	tr, err := New(pager.NewMemFile(1024), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, nObjects)
	for i := range entries {
		entries[i] = Entry{
			Set: SetID(rng.Intn(nSets)),
			Key: key8(uint64(rng.Intn(nKeys))),
			OID: encoding.OID(i + 1),
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a := entryKey(entries[i].Set, entries[i].Key, entries[i].OID)
		b := entryKey(entries[j].Set, entries[j].Key, entries[j].OID)
		return string(a) < string(b)
	})
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertExactMatch(t *testing.T) {
	tr, err := New(pager.NewMemFile(1024), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(SetID(i%4), key8(uint64(i%10)), encoding.OID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Key 3 in set 3: objects i with i%10==3 and i%4==3 -> i in {3, 23, 43, 63, 83}.
	res, stats, err := tr.ExactMatch(key8(3), []SetID{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("ExactMatch returned %d results: %v", len(res), res)
	}
	for _, r := range res {
		if r.Set != 3 || (int(r.OID)-1)%10 != 3 {
			t.Fatalf("bad result %+v", r)
		}
	}
	if stats.Matches != 5 || stats.PagesRead == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Multiple sets accumulate.
	res, _, err = tr.ExactMatch(key8(3), []SetID{0, 1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 { // all i%10==3: 10 objects
		t.Fatalf("multi-set exact match returned %d", len(res))
	}
}

func TestDelete(t *testing.T) {
	tr, err := New(pager.NewMemFile(1024), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, key8(5), 42); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Delete(1, key8(5), 42)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	ok, err = tr.Delete(1, key8(5), 42)
	if err != nil || ok {
		t.Fatalf("second Delete = %v, %v", ok, err)
	}
	res, _, err := tr.ExactMatch(key8(5), []SetID{1}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("deleted entry still found: %v", res)
	}
}

func TestRangeQuery(t *testing.T) {
	tr := buildTree(t, 4000, 8, 100, 1)
	res, stats, err := tr.RangeQuery(key8(10), key8(19), []SetID{2, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expectation: ~4000 * (10/100) * (2/8) = 100 results.
	if len(res) < 60 || len(res) > 140 {
		t.Fatalf("range query returned %d results", len(res))
	}
	for _, r := range res {
		if r.Set != 2 && r.Set != 5 {
			t.Fatalf("result from unqueried set: %+v", r)
		}
	}
	if stats.PagesRead == 0 || stats.Matches != len(res) {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestSetGroupingShape verifies the CG-tree's defining cost behaviours
// against the paper's description:
//  1. exact-match cost grows with the number of queried sets (per-set
//     descents);
//  2. a range query on ONE set costs close to that set's data only, far
//     below scanning the whole range across sets.
func TestSetGroupingShape(t *testing.T) {
	tr := buildTree(t, 30000, 40, 1000, 2)

	// (1) exact match: 1 set vs 40 sets.
	tr1 := pager.NewTracker()
	if _, _, err := tr.ExactMatch(key8(500), []SetID{7}, tr1); err != nil {
		t.Fatal(err)
	}
	tr40 := pager.NewTracker()
	sets := make([]SetID, 40)
	for i := range sets {
		sets[i] = SetID(i)
	}
	if _, _, err := tr.ExactMatch(key8(500), sets, tr40); err != nil {
		t.Fatal(err)
	}
	if tr40.Reads() < 3*tr1.Reads() {
		t.Fatalf("exact match cost flat in #sets: 1 set %d pages, 40 sets %d", tr1.Reads(), tr40.Reads())
	}

	// (2) 10%-range on one set vs on all sets: per-set clustering means
	// one set costs roughly 1/40th of the data pages (plus a descent).
	one := pager.NewTracker()
	if _, _, err := tr.RangeQuery(key8(100), key8(199), []SetID{7}, one); err != nil {
		t.Fatal(err)
	}
	all := pager.NewTracker()
	if _, _, err := tr.RangeQuery(key8(100), key8(199), sets, all); err != nil {
		t.Fatal(err)
	}
	if one.Reads()*8 > all.Reads() {
		t.Fatalf("range on 1 set (%d pages) not much cheaper than on 40 (%d)", one.Reads(), all.Reads())
	}
}

func TestRangeBoundsValidation(t *testing.T) {
	tr := buildTree(t, 100, 4, 10, 3)
	if _, _, err := tr.RangeQuery(key8(1), []byte("short"), []SetID{1}, nil); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestPageAccounting(t *testing.T) {
	tr := buildTree(t, 5000, 8, 100, 4)
	pages, err := tr.PageCount()
	if err != nil {
		t.Fatal(err)
	}
	if pages == 0 || tr.Height() < 2 {
		t.Fatalf("pages=%d height=%d", pages, tr.Height())
	}
	if err := tr.DropCache(); err != nil {
		t.Fatal(err)
	}
	// After a cache drop, results are identical.
	a, _, err := tr.ExactMatch(key8(50), []SetID{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.DropCache(); err != nil {
		t.Fatal(err)
	}
	b, _, err := tr.ExactMatch(key8(50), []SetID{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("results differ after cache drop: %d vs %d", len(a), len(b))
	}
}
