// Package cgtree implements the CG-tree of Kilger and Moerkotte ("Indexing
// Multiple Sets", VLDB 1994), the comparator structure of the U-index
// paper's Section 5 experiments.
//
// The CG-tree is the set-grouping counterpoint to the U-index's
// value-grouping: one shared B+-tree whose leaf level clusters each set's
// entries contiguously in key order (the H-tree behaviour), while the upper
// levels are shared between sets (the economy the CG-tree adds over
// H-trees). We realize it as a composite-key B+-tree ordered by
// (set, key, oid):
//
//   - every set's data is one contiguous key-ordered run — range queries on
//     one set touch only pages of that set ("link pointers between leaf
//     pages of the same set" follow implicitly from leaf adjacency);
//   - adjacent sets share boundary pages ("leaf node sharing");
//   - only existing entries occupy space ("saving only non-NULL references
//     in directory nodes");
//   - separator keys are suffix-truncated ("best splitting key search").
//
// A multi-set query performs one descent per queried set with a shared page
// tracker, so directory pages common to several descents are counted once —
// exactly the buffered-query cost model of the paper. This reproduces the
// published cost behaviour: cheap set-contiguous range scans (CG wins large
// ranges on few sets), per-set descent overhead that grows linearly with
// the number of queried sets (CG loses exact-match and many-set queries),
// and indifference to whether the queried sets are adjacent. Leaf-page
// balancing is not implemented, matching the paper's own CG-tree
// re-implementation ("The only feature that was not implemented was the
// balancing of leaf pages", Section 5.1).
package cgtree

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/pager"
)

// SetID identifies one set (class) in the index.
type SetID uint16

// Config mirrors btree.Config.
type Config struct {
	MaxEntries int
}

// Tree is a CG-tree.
type Tree struct {
	t *btree.Tree
}

// Stats reports the cost of one query.
type Stats struct {
	PagesRead      int
	EntriesScanned int
	Matches        int
}

// New creates an empty CG-tree in the page file.
func New(f pager.File, cfg Config) (*Tree, error) {
	t, err := btree.Create(f, btree.Config{MaxEntries: cfg.MaxEntries})
	if err != nil {
		return nil, err
	}
	return &Tree{t: t}, nil
}

// entryKey builds the composite (set, key, oid) key.
func entryKey(set SetID, key []byte, oid encoding.OID) []byte {
	out := make([]byte, 0, 2+len(key)+4)
	out = binary.BigEndian.AppendUint16(out, uint16(set))
	out = append(out, key...)
	out = binary.BigEndian.AppendUint32(out, uint32(oid))
	return out
}

// parseEntry splits a composite key back into its parts. keyLen is the
// fixed length of the key portion.
func parseEntry(k []byte, keyLen int) (SetID, []byte, encoding.OID, error) {
	if len(k) != 2+keyLen+4 {
		return 0, nil, 0, fmt.Errorf("cgtree: entry of %d bytes, want %d", len(k), 2+keyLen+4)
	}
	set := SetID(binary.BigEndian.Uint16(k))
	key := k[2 : 2+keyLen]
	oid := encoding.OID(binary.BigEndian.Uint32(k[2+keyLen:]))
	return set, key, oid, nil
}

// Insert adds one (set, key, oid) entry.
func (c *Tree) Insert(set SetID, key []byte, oid encoding.OID) error {
	return c.t.Insert(entryKey(set, key, oid), nil)
}

// Delete removes one entry. It reports whether the entry existed.
func (c *Tree) Delete(set SetID, key []byte, oid encoding.OID) (bool, error) {
	return c.t.Delete(entryKey(set, key, oid))
}

// Entry is one (set, key, oid) item for bulk loading.
type Entry struct {
	Set SetID
	Key []byte
	OID encoding.OID
}

// BulkLoad builds the tree from entries; they are loaded in (set, key, oid)
// order and must be provided sorted that way (workload generators sort
// before calling).
func (c *Tree) BulkLoad(entries []Entry) error {
	i := 0
	return c.t.BulkLoad(func() ([]byte, []byte, bool, error) {
		if i >= len(entries) {
			return nil, nil, false, nil
		}
		e := entries[i]
		i++
		return entryKey(e.Set, e.Key, e.OID), nil, true, nil
	})
}

// Len returns the number of entries.
func (c *Tree) Len() int { return c.t.Len() }

// PageCount returns the number of pages in the tree.
func (c *Tree) PageCount() (int, error) { return c.t.PageCount() }

// Height returns the tree height.
func (c *Tree) Height() int { return c.t.Height() }

// DropCache flushes and clears the buffer pool.
func (c *Tree) DropCache() error { return c.t.DropCache() }

// Result is one matched entry.
type Result struct {
	Set SetID
	OID encoding.OID
}

// ExactMatch retrieves the object ids with the given key value in each of
// the queried sets: one descent per set over the shared directory.
func (c *Tree) ExactMatch(key []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	return c.query(key, key, sets, tr)
}

// RangeQuery retrieves the object ids with key in [lo, hi] (inclusive) in
// each of the queried sets. Each set's run is contiguous, so the per-set
// cost is proportional to that set's data in range — the set-grouping
// advantage.
func (c *Tree) RangeQuery(lo, hi []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	return c.query(lo, hi, sets, tr)
}

func (c *Tree) query(lo, hi []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	if len(lo) != len(hi) {
		return nil, Stats{}, fmt.Errorf("cgtree: range bounds of different lengths")
	}
	keyLen := len(lo)
	var out []Result
	var stats Stats
	// One descent per queried set (the CG-tree's per-set directory
	// pointers), sharing the tracker so common directory pages are read
	// once. Each descent scans only the set's contiguous run.
	for _, s := range sets {
		ivLo := make([]byte, 0, 2+keyLen)
		ivLo = binary.BigEndian.AppendUint16(ivLo, uint16(s))
		ivLo = append(ivLo, lo...)
		ivHi := make([]byte, 0, 2+keyLen+5)
		ivHi = binary.BigEndian.AppendUint16(ivHi, uint16(s))
		ivHi = append(ivHi, hi...)
		// Inclusive hi: pad past any 4-byte oid suffix.
		ivHi = append(ivHi, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
		err := c.t.Scan(context.Background(), ivLo, ivHi, tr, func(k, _ []byte) ([]byte, bool, error) {
			stats.EntriesScanned++
			set, _, oid, err := parseEntry(k, keyLen)
			if err != nil {
				return nil, true, err
			}
			out = append(out, Result{Set: set, OID: oid})
			stats.Matches++
			return nil, false, nil
		})
		if err != nil {
			return nil, stats, err
		}
	}
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}
