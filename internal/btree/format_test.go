package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/pager"
)

// randomNode builds a leaf or internal node with keys that share realistic
// prefixes (so front compression actually engages), sized to fit one page.
func randomNode(rng *rand.Rand, leaf bool, pageSize int) *node {
	n := &node{leaf: leaf}
	if !leaf {
		n.children = []pager.PageID{pager.PageID(rng.Intn(1 << 20))}
	}
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("set-%02d/key-%08d", rng.Intn(4), rng.Intn(1<<30)))
		idx, dup := findKey(n.keys, k)
		if dup {
			continue
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = k
		if leaf {
			v := append([]byte{valInline}, []byte(fmt.Sprintf("v%d", i))...)
			n.vals = append(n.vals, nil)
			copy(n.vals[idx+1:], n.vals[idx:])
			n.vals[idx] = v
		} else {
			n.children = append(n.children, pager.PageID(rng.Intn(1<<20)))
		}
		if n.encodedSize(false) > 7*pageSize/8 {
			n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
			if leaf {
				n.vals = append(n.vals[:idx], n.vals[idx+1:]...)
			} else {
				n.children = append(n.children[:idx+1], n.children[idx+2:]...)
			}
			return n
		}
	}
}

// TestPageFormatEntryAreaIdentical pins the v2 format's central invariant:
// the anchor trailer lives entirely in the tail slack, so the entry area —
// the bytes that determine fanout, splits, and therefore every logical
// page count in the paper's tables — is byte-identical with and without
// anchors, and the header differs only in the flagAnchors bit.
func TestPageFormatEntryAreaIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, leaf := range []bool{true, false} {
		n := randomNode(rng, leaf, pager.DefaultPageSize)
		v1 := make([]byte, pager.DefaultPageSize)
		v2 := make([]byte, pager.DefaultPageSize)
		if err := encodePage(n, v1, false, 0); err != nil {
			t.Fatal(err)
		}
		if err := encodePage(n, v2, false, DefaultAnchorStride); err != nil {
			t.Fatal(err)
		}
		if v1[0]&flagAnchors != 0 {
			t.Fatal("v1 page has flagAnchors set")
		}
		if v2[0]&flagAnchors == 0 {
			t.Fatal("v2 page did not get anchors (fixture leaves slack, so it must)")
		}
		if v1[0]|flagAnchors != v2[0]|flagAnchors {
			t.Fatalf("headers differ beyond flagAnchors: %02x vs %02x", v1[0], v2[0])
		}
		end := n.encodedSize(false)
		if !bytes.Equal(v1[1:end], v2[1:end]) {
			t.Fatalf("entry areas differ (leaf=%v)", leaf)
		}
		// Both formats decode to the same node.
		d1, err := decodeNode(1, v1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := decodeNode(1, v2)
		if err != nil {
			t.Fatal(err)
		}
		if len(d1.keys) != len(d2.keys) {
			t.Fatalf("decoded key counts differ: %d vs %d", len(d1.keys), len(d2.keys))
		}
		for i := range d1.keys {
			if !bytes.Equal(d1.keys[i], d2.keys[i]) {
				t.Fatalf("key %d differs across formats", i)
			}
			if leaf && !bytes.Equal(d1.vals[i], d2.vals[i]) {
				t.Fatalf("val %d differs across formats", i)
			}
		}
	}
}

// TestPageFormatLazyEquivalence is the anchor-correctness property test:
// for random pages and strides, the lazy anchor-seeded lookups must agree
// exactly with the full-decode search functions — for present keys, absent
// keys, and keys outside the page's range.
func TestPageFormatLazyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		stride := []int{0, 1, 2, 3, 8, DefaultAnchorStride, 64}[trial%7]
		leaf := trial%2 == 0
		n := randomNode(rng, leaf, pager.DefaultPageSize)
		buf := make([]byte, pager.DefaultPageSize)
		if err := encodePage(n, buf, false, stride); err != nil {
			t.Fatal(err)
		}
		probes := make([][]byte, 0, len(n.keys)+40)
		probes = append(probes, n.keys...)
		probes = append(probes, []byte(""), []byte("set-00"), []byte("zzz"))
		for i := 0; i < 40; i++ {
			probes = append(probes, []byte(fmt.Sprintf("set-%02d/key-%08d", rng.Intn(5), rng.Intn(1<<30))))
		}
		var scratch []byte
		for _, p := range probes {
			if leaf {
				got, ok, _, err := pageLeafGet(buf, p, &scratch)
				if err != nil {
					t.Fatalf("stride=%d: pageLeafGet(%q): %v", stride, p, err)
				}
				i, want := findKey(n.keys, p)
				if ok != want {
					t.Fatalf("stride=%d: pageLeafGet(%q) ok=%v want %v", stride, p, ok, want)
				}
				if ok && !bytes.Equal(got, n.vals[i]) {
					t.Fatalf("stride=%d: pageLeafGet(%q) = %q want %q", stride, p, got, n.vals[i])
				}
			} else {
				got, _, err := pageSeekChild(buf, p, &scratch)
				if err != nil {
					t.Fatalf("stride=%d: pageSeekChild(%q): %v", stride, p, err)
				}
				want := n.children[findChild(n.keys, p)]
				if got != want {
					t.Fatalf("stride=%d: pageSeekChild(%q) = %d want %d", stride, p, got, want)
				}
			}
		}
	}
}

// TestOldFormatDiskRoundTrip proves disk files written in the pre-anchor
// format keep working: a tree written with AnchorStride -1 (v1 pages only)
// reopens under the current default tuning, answers every query, and then
// accepts new writes — whose pages carry anchors — alongside the old ones.
func TestOldFormatDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.db")
	f, err := pager.CreateDiskFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(f, Config{Tuning: Tuning{AnchorStride: -1}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := tr.MetaPage() // COW metadata: the id is valid only after Flush
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := pager.OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	re, err := Open(f2, meta) // default tuning: anchors + cache enabled
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := re.Get(key(i), nil)
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) on reopened v1 file = %q, %v, %v", i, v, ok, err)
		}
	}
	count := 0
	err = re.Scan(nil, nil, nil, nil, func(_, _ []byte) ([]byte, bool, error) {
		count++
		return nil, false, nil
	})
	if err != nil || count != n {
		t.Fatalf("scan of reopened v1 file: %d keys, %v", count, err)
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
	// New writes under the reopened tree produce anchored pages next to
	// the old v1 pages; everything must stay queryable together.
	for i := n; i < n+500; i++ {
		if err := re.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n+500; i++ {
		v, ok, err := re.Get(key(i), nil)
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) on mixed-format file = %q, %v, %v", i, v, ok, err)
		}
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
}
