package btree

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/pager"
)

// Interval is a half-open key range [Lo, Hi). A nil Lo means "from the
// beginning"; a nil Hi means "to the end".
type Interval struct {
	Lo, Hi []byte
}

// contains reports whether key lies in the interval.
func (iv Interval) contains(key []byte) bool {
	if iv.Lo != nil && bytes.Compare(key, iv.Lo) < 0 {
		return false
	}
	return iv.Hi == nil || bytes.Compare(key, iv.Hi) < 0
}

// empty reports whether the interval can contain no key.
func (iv Interval) empty() bool {
	return iv.Lo != nil && iv.Hi != nil && bytes.Compare(iv.Lo, iv.Hi) >= 0
}

// NormalizeIntervals sorts intervals and merges the ones that overlap or
// touch, producing the canonical disjoint ascending form MultiScan expects.
func NormalizeIntervals(ivs []Interval) []Interval {
	out := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.empty() {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Lo, out[j].Lo
		switch {
		case a == nil && b == nil:
			return false
		case a == nil:
			return true
		case b == nil:
			return false
		}
		return bytes.Compare(a, b) < 0
	})
	merged := out[:0]
	for _, iv := range out {
		if len(merged) == 0 {
			merged = append(merged, iv)
			continue
		}
		last := &merged[len(merged)-1]
		// Overlap or touch: iv.Lo <= last.Hi (nil last.Hi = +inf).
		if last.Hi == nil || iv.Lo == nil || bytes.Compare(iv.Lo, last.Hi) <= 0 {
			if last.Hi != nil && (iv.Hi == nil || bytes.Compare(iv.Hi, last.Hi) > 0) {
				last.Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// ScanFunc receives each matching key/value pair in ascending key order.
// Returning stop ends the scan. Returning a non-nil skipTo (which must be
// greater than the current key) makes the scan resume at the first key >=
// skipTo: this implements the paper's parent-node skip ("whenever you need
// to skip some entries, lookup the uncompressed part of the key in the
// parent node, and search for the first entry with key equal or larger to
// it", Section 3.3), because already-fetched pages are free under the query
// tracker and only genuinely new pages are counted.
type ScanFunc func(key, val []byte) (skipTo []byte, stop bool, err error)

// MultiScan is the paper's "parallel" retrieval algorithm (Algorithm 1,
// Parscan): it walks the B-tree once for an entire set of key intervals,
// descending into each relevant subtree exactly once, so pages shared by
// several partial keys are read a single time. Intervals are normalized
// internally. The scan runs against the version current when it starts;
// concurrent commits are not observed. ctx (which may be nil) is checked
// once per node visited.
func (t *Tree) MultiScan(ctx context.Context, ivs []Interval, tr *pager.Tracker, fn ScanFunc) error {
	v, release := t.pin()
	defer release()
	return t.multiScanAt(ctx, v, ivs, tr, fn, false)
}

// MultiScanKeys is MultiScan for callers that ignore values: stored values
// are never materialized (overflow chains are not followed), and fn receives
// a nil value. The U-index carries its whole payload inside the composite
// key (the paper's clustering argument), so the engine's query executor is a
// keys-only consumer; skipping value materialization removes the last
// per-entry copy from its hot loop.
func (t *Tree) MultiScanKeys(ctx context.Context, ivs []Interval, tr *pager.Tracker, fn ScanFunc) error {
	v, release := t.pin()
	defer release()
	return t.multiScanAt(ctx, v, ivs, tr, fn, true)
}

func (t *Tree) multiScanAt(ctx context.Context, v *version, ivs []Interval, tr *pager.Tracker, fn ScanFunc, keysOnly bool) error {
	ivs = NormalizeIntervals(ivs)
	if len(ivs) == 0 {
		return nil
	}
	s := &multiScan{ctx: ctx, op: &readOp{t: t}, tr: tr, ivs: ivs, fn: fn, keysOnly: keysOnly}
	if t.pf != nil && v.hgt >= 2 {
		// The prefetcher goroutine must finish before the version pin is
		// released (the deferred stop runs before our caller's release),
		// so read-ahead never touches a page after reclamation frees it.
		s.startPrefetcher(t.pf)
		defer s.stopPrefetcher()
	}
	_, err := s.walk(v.root)
	return err
}

type multiScan struct {
	ctx      context.Context
	op       *readOp
	tr       *pager.Tracker
	ivs      []Interval
	iv       int    // current interval index (monotonically advances)
	skip     []byte // dynamic lower bound set by ScanFunc skip requests
	fn       ScanFunc
	keysOnly bool // do not materialize values; fn sees a nil value

	// Frontier prefetch (prefetch.go); nil pfCh = prefetch off.
	pfCh   chan pfBatch
	pfDone chan struct{}
}

// leafStart returns the index of the first leaf entry worth inspecting:
// the first key at or above both the dynamic skip bound and the current
// interval's lower end. Entries below that bound can match no interval —
// earlier intervals are done (s.iv only moves forward) and later ones lie
// higher still.
func (s *multiScan) leafStart(keys [][]byte) int {
	lb := s.ivs[s.iv].Lo
	if s.skip != nil && (lb == nil || bytes.Compare(s.skip, lb) > 0) {
		lb = s.skip
	}
	if lb == nil {
		return 0
	}
	return sort.Search(len(keys), func(j int) bool {
		return bytes.Compare(keys[j], lb) >= 0
	})
}

// advance moves the interval cursor past intervals wholly below key.
// It reports whether any interval remains.
func (s *multiScan) advance(key []byte) bool {
	for s.iv < len(s.ivs) {
		hi := s.ivs[s.iv].Hi
		if hi == nil || bytes.Compare(key, hi) < 0 {
			return true
		}
		s.iv++
	}
	return false
}

// walk processes a subtree; it returns stop=true when the scan is complete.
func (s *multiScan) walk(id pager.PageID) (bool, error) {
	if err := ctxErr(s.ctx); err != nil {
		return true, err
	}
	n, err := s.op.fetch(id, s.tr)
	if err != nil {
		return true, err
	}
	if n.leaf {
		// Binary-search the first entry that can match (everything below
		// the skip bound and the current interval's lower end is dead),
		// the same way the range scan's leaf path already seeks — a
		// multi-interval descent lands on leaves where the relevant
		// cluster starts deep inside the page, and the old linear walk
		// over the keys below it was pure overhead.
		for i := s.leafStart(n.keys); i < len(n.keys); i++ {
			key := n.keys[i]
			if s.skip != nil && bytes.Compare(key, s.skip) < 0 {
				continue
			}
			if !s.advance(key) {
				return true, nil
			}
			if lo := s.ivs[s.iv].Lo; lo != nil && bytes.Compare(key, lo) < 0 {
				// The key sits in the gap below the current interval;
				// jump straight to the interval's start (the i++ lands
				// on the first entry at or above lo).
				i = sort.Search(len(n.keys), func(j int) bool {
					return bytes.Compare(n.keys[j], lo) >= 0
				}) - 1
				continue
			}
			// advance guaranteed key < Hi and the jump above guaranteed
			// key >= Lo: the key is inside the current interval.
			var val []byte
			if !s.keysOnly {
				if val, err = s.op.t.loadValue(n.vals[i], s.tr); err != nil {
					return true, err
				}
			}
			skipTo, stop, err := s.fn(key, val)
			if err != nil || stop {
				return true, err
			}
			if skipTo != nil {
				if bytes.Compare(skipTo, key) <= 0 {
					return true, fmt.Errorf("btree: skipTo %q not above current key", skipTo)
				}
				s.skip = append(s.skip[:0], skipTo...)
			}
		}
		return false, nil
	}
	// Child ci covers keys in [keys[ci-1], keys[ci]) (open at the ends).
	// A child is relevant when some interval intersects that range above
	// the dynamic skip bound. Intervals are disjoint and ascending, so a
	// single forward cursor (s.iv) suffices. The same relevance conditions,
	// simulated against a local cursor, give the next-level frontier, which
	// is handed to the prefetcher before the descent starts (prefetch.go).
	s.maybePrefetch(n)
	for ci := 0; ci <= len(n.keys); ci++ {
		if ci > 0 && !s.advance(n.keys[ci-1]) {
			return true, nil // every interval lies below this child
		}
		if ci < len(n.keys) {
			ub := n.keys[ci]
			// s.ivs[s.iv] is the first interval ending above this
			// child's start; if it begins at or after the child's
			// end, no interval intersects the child.
			if lo := s.ivs[s.iv].Lo; lo != nil && bytes.Compare(lo, ub) >= 0 {
				continue
			}
			// Nothing below the skip bound is of interest.
			if s.skip != nil && bytes.Compare(s.skip, ub) >= 0 {
				continue
			}
		}
		stop, err := s.walk(n.children[ci])
		if err != nil || stop {
			return stop, err
		}
	}
	return false, nil
}

// Scan is the forward-scanning baseline (Section 3.3 "finding the first
// relevant index entry using the standard B-tree search, and then scanning
// the index forwards from that point on"): it visits every entry in [lo, hi)
// in order, fetching every leaf in the range plus the internal pages that
// cover it (copy-on-write leaves carry no sibling links, so the walk comes
// down from the root). The scan runs against the version current when it
// starts. ctx (which may be nil) is checked once per node visited.
func (t *Tree) Scan(ctx context.Context, lo, hi []byte, tr *pager.Tracker, fn ScanFunc) error {
	v, release := t.pin()
	defer release()
	return t.scanAt(ctx, v, lo, hi, tr, fn, false)
}

// ScanKeys is Scan for callers that ignore values; see MultiScanKeys.
func (t *Tree) ScanKeys(ctx context.Context, lo, hi []byte, tr *pager.Tracker, fn ScanFunc) error {
	v, release := t.pin()
	defer release()
	return t.scanAt(ctx, v, lo, hi, tr, fn, true)
}

func (t *Tree) scanAt(ctx context.Context, v *version, lo, hi []byte, tr *pager.Tracker, fn ScanFunc, keysOnly bool) error {
	s := &rangeScan{ctx: ctx, op: &readOp{t: t}, tr: tr, lo: lo, hi: hi, fn: fn, keysOnly: keysOnly}
	_, err := s.walk(v.root)
	return err
}

type rangeScan struct {
	ctx      context.Context
	op       *readOp
	tr       *pager.Tracker
	lo, hi   []byte
	fn       ScanFunc
	keysOnly bool // do not materialize values; fn sees a nil value
}

// walk visits the subtree in order; it returns stop=true when the range end
// was reached or the callback stopped the scan.
func (s *rangeScan) walk(id pager.PageID) (bool, error) {
	if err := ctxErr(s.ctx); err != nil {
		return true, err
	}
	n, err := s.op.fetch(id, s.tr)
	if err != nil {
		return true, err
	}
	if n.leaf {
		i := 0
		if s.lo != nil {
			i = sort.Search(len(n.keys), func(j int) bool {
				return bytes.Compare(n.keys[j], s.lo) >= 0
			})
		}
		for ; i < len(n.keys); i++ {
			key := n.keys[i]
			if s.hi != nil && bytes.Compare(key, s.hi) >= 0 {
				return true, nil
			}
			var val []byte
			if !s.keysOnly {
				if val, err = s.op.t.loadValue(n.vals[i], s.tr); err != nil {
					return true, err
				}
			}
			// The forward scan honors stop but not skip: skipping is
			// what distinguishes the parallel algorithm.
			_, stop, err := s.fn(key, val)
			if err != nil || stop {
				return true, err
			}
		}
		return false, nil
	}
	ci := 0
	if s.lo != nil {
		ci = findChild(n.keys, s.lo)
	}
	for ; ci <= len(n.keys); ci++ {
		// Child ci starts at keys[ci-1]; past hi, nothing qualifies.
		if ci > 0 && s.hi != nil && bytes.Compare(n.keys[ci-1], s.hi) >= 0 {
			return true, nil
		}
		stop, err := s.walk(n.children[ci])
		if err != nil || stop {
			return stop, err
		}
	}
	return false, nil
}

// Cursor iterates the tree in ascending key order. A cursor captures the
// tree version current at Seek time and is only valid while the tree is not
// mutated; interleaving writes with cursor use is a programming error.
// Concurrent cursors (each its own Cursor value) are safe: every cursor
// carries a private readOp and root-to-leaf path.
type Cursor struct {
	t     *Tree
	op    *readOp
	tr    *pager.Tracker
	path  []cursorFrame // root first; last frame is the current leaf
	valid bool
	err   error
}

// cursorFrame is one level of the cursor's descent: for the leaf (last
// frame) idx indexes keys; for internal frames it is the child taken.
type cursorFrame struct {
	n   *node
	idx int
}

// NewCursor returns an unpositioned cursor; call Seek or First.
func (t *Tree) NewCursor(tr *pager.Tracker) *Cursor {
	return &Cursor{t: t, op: &readOp{t: t}, tr: tr}
}

// Seek positions the cursor at the first key >= key (nil = first key).
func (c *Cursor) Seek(key []byte) {
	c.valid, c.err = false, nil
	c.path = c.path[:0]
	id := c.t.cur.Load().root
	for {
		n, err := c.op.fetch(id, c.tr)
		if err != nil {
			c.err = err
			return
		}
		if n.leaf {
			i := 0
			if key != nil {
				i = sort.Search(len(n.keys), func(j int) bool {
					return bytes.Compare(n.keys[j], key) >= 0
				})
			}
			c.path = append(c.path, cursorFrame{n, i})
			c.settle()
			return
		}
		ci := 0
		if key != nil {
			ci = findChild(n.keys, key)
		}
		c.path = append(c.path, cursorFrame{n, ci})
		id = n.children[ci]
	}
}

// First positions the cursor at the smallest key.
func (c *Cursor) First() { c.Seek(nil) }

// settle walks forward to the next real entry: it pops exhausted frames,
// advances the parent to its next child, and descends to that subtree's
// leftmost leaf.
func (c *Cursor) settle() {
	for len(c.path) > 0 {
		top := &c.path[len(c.path)-1]
		if top.n.leaf {
			if top.idx < len(top.n.keys) {
				c.valid = true
				return
			}
			c.path = c.path[:len(c.path)-1]
			continue
		}
		top.idx++
		if top.idx >= len(top.n.children) {
			c.path = c.path[:len(c.path)-1]
			continue
		}
		// Descend to the leftmost leaf of the next child.
		id := top.n.children[top.idx]
		for {
			n, err := c.op.fetch(id, c.tr)
			if err != nil {
				c.err = err
				return
			}
			c.path = append(c.path, cursorFrame{n, 0})
			if n.leaf {
				break
			}
			id = n.children[0]
		}
	}
}

// Next advances to the next key.
func (c *Cursor) Next() {
	if !c.valid {
		return
	}
	c.valid = false
	c.path[len(c.path)-1].idx++
	c.settle()
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Err returns the first error encountered by the cursor.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key. The slice is owned by the tree; callers must
// copy it to retain it.
func (c *Cursor) Key() []byte {
	if !c.valid {
		return nil
	}
	leaf := c.path[len(c.path)-1]
	return leaf.n.keys[leaf.idx]
}

// Value materializes the current value (following overflow chains).
func (c *Cursor) Value() ([]byte, error) {
	if !c.valid {
		return nil, fmt.Errorf("btree: Value on invalid cursor")
	}
	leaf := c.path[len(c.path)-1]
	return c.t.loadValue(leaf.n.vals[leaf.idx], c.tr)
}
