package btree

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/pager"
)

// Interval is a half-open key range [Lo, Hi). A nil Lo means "from the
// beginning"; a nil Hi means "to the end".
type Interval struct {
	Lo, Hi []byte
}

// contains reports whether key lies in the interval.
func (iv Interval) contains(key []byte) bool {
	if iv.Lo != nil && bytes.Compare(key, iv.Lo) < 0 {
		return false
	}
	return iv.Hi == nil || bytes.Compare(key, iv.Hi) < 0
}

// empty reports whether the interval can contain no key.
func (iv Interval) empty() bool {
	return iv.Lo != nil && iv.Hi != nil && bytes.Compare(iv.Lo, iv.Hi) >= 0
}

// NormalizeIntervals sorts intervals and merges the ones that overlap or
// touch, producing the canonical disjoint ascending form MultiScan expects.
func NormalizeIntervals(ivs []Interval) []Interval {
	out := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.empty() {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Lo, out[j].Lo
		switch {
		case a == nil && b == nil:
			return false
		case a == nil:
			return true
		case b == nil:
			return false
		}
		return bytes.Compare(a, b) < 0
	})
	merged := out[:0]
	for _, iv := range out {
		if len(merged) == 0 {
			merged = append(merged, iv)
			continue
		}
		last := &merged[len(merged)-1]
		// Overlap or touch: iv.Lo <= last.Hi (nil last.Hi = +inf).
		if last.Hi == nil || iv.Lo == nil || bytes.Compare(iv.Lo, last.Hi) <= 0 {
			if last.Hi != nil && (iv.Hi == nil || bytes.Compare(iv.Hi, last.Hi) > 0) {
				last.Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// ScanFunc receives each matching key/value pair in ascending key order.
// Returning stop ends the scan. Returning a non-nil skipTo (which must be
// greater than the current key) makes the scan resume at the first key >=
// skipTo: this implements the paper's parent-node skip ("whenever you need
// to skip some entries, lookup the uncompressed part of the key in the
// parent node, and search for the first entry with key equal or larger to
// it", Section 3.3), because already-fetched pages are free under the query
// tracker and only genuinely new pages are counted.
type ScanFunc func(key, val []byte) (skipTo []byte, stop bool, err error)

// MultiScan is the paper's "parallel" retrieval algorithm (Algorithm 1,
// Parscan): it walks the B-tree once for an entire set of key intervals,
// descending into each relevant subtree exactly once, so pages shared by
// several partial keys are read a single time. Intervals are normalized
// internally.
func (t *Tree) MultiScan(ivs []Interval, tr *pager.Tracker, fn ScanFunc) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ivs = NormalizeIntervals(ivs)
	if len(ivs) == 0 {
		return nil
	}
	s := &multiScan{op: t.newReadOp(), tr: tr, ivs: ivs, fn: fn}
	_, err := s.walk(t.root)
	return err
}

type multiScan struct {
	op   *readOp
	tr   *pager.Tracker
	ivs  []Interval
	iv   int    // current interval index (monotonically advances)
	skip []byte // dynamic lower bound set by ScanFunc skip requests
	fn   ScanFunc
}

// advance moves the interval cursor past intervals wholly below key.
// It reports whether any interval remains.
func (s *multiScan) advance(key []byte) bool {
	for s.iv < len(s.ivs) {
		hi := s.ivs[s.iv].Hi
		if hi == nil || bytes.Compare(key, hi) < 0 {
			return true
		}
		s.iv++
	}
	return false
}

// walk processes a subtree; it returns stop=true when the scan is complete.
func (s *multiScan) walk(id pager.PageID) (bool, error) {
	n, err := s.op.fetch(id, s.tr)
	if err != nil {
		return true, err
	}
	if n.leaf {
		for i, key := range n.keys {
			if s.skip != nil && bytes.Compare(key, s.skip) < 0 {
				continue
			}
			if !s.advance(key) {
				return true, nil
			}
			if !s.ivs[s.iv].contains(key) {
				continue
			}
			val, err := s.op.t.loadValue(n.vals[i], s.tr)
			if err != nil {
				return true, err
			}
			skipTo, stop, err := s.fn(key, val)
			if err != nil || stop {
				return true, err
			}
			if skipTo != nil {
				if bytes.Compare(skipTo, key) <= 0 {
					return true, fmt.Errorf("btree: skipTo %q not above current key", skipTo)
				}
				s.skip = append(s.skip[:0], skipTo...)
			}
		}
		return false, nil
	}
	// Child ci covers keys in [keys[ci-1], keys[ci]) (open at the ends).
	// A child is relevant when some interval intersects that range above
	// the dynamic skip bound. Intervals are disjoint and ascending, so a
	// single forward cursor (s.iv) suffices.
	for ci := 0; ci <= len(n.keys); ci++ {
		if ci > 0 && !s.advance(n.keys[ci-1]) {
			return true, nil // every interval lies below this child
		}
		if ci < len(n.keys) {
			ub := n.keys[ci]
			// s.ivs[s.iv] is the first interval ending above this
			// child's start; if it begins at or after the child's
			// end, no interval intersects the child.
			if lo := s.ivs[s.iv].Lo; lo != nil && bytes.Compare(lo, ub) >= 0 {
				continue
			}
			// Nothing below the skip bound is of interest.
			if s.skip != nil && bytes.Compare(s.skip, ub) >= 0 {
				continue
			}
		}
		stop, err := s.walk(n.children[ci])
		if err != nil || stop {
			return stop, err
		}
	}
	return false, nil
}

// Scan is the forward-scanning baseline (Section 3.3 "finding the first
// relevant index entry using the standard B-tree search, and then scanning
// the index forwards from that point on"): one descent, then a walk of the
// leaf chain over the whole [lo, hi) range, fetching every leaf touched.
func (t *Tree) Scan(lo, hi []byte, tr *pager.Tracker, fn ScanFunc) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	op := t.newReadOp()
	n, err := op.descendToLeaf(lo, tr)
	if err != nil {
		return err
	}
	i := 0
	if lo != nil {
		i = sort.Search(len(n.keys), func(j int) bool {
			return bytes.Compare(n.keys[j], lo) >= 0
		})
	}
	for {
		for ; i < len(n.keys); i++ {
			key := n.keys[i]
			if hi != nil && bytes.Compare(key, hi) >= 0 {
				return nil
			}
			val, err := t.loadValue(n.vals[i], tr)
			if err != nil {
				return err
			}
			// The forward scan honors stop but not skip: skipping is
			// what distinguishes the parallel algorithm.
			_, stop, err := fn(key, val)
			if err != nil || stop {
				return err
			}
		}
		if n.next == pager.NilPage {
			return nil
		}
		if n, err = op.fetch(n.next, tr); err != nil {
			return err
		}
		i = 0
	}
}

// descendToLeaf returns the leaf that would contain key (or the leftmost
// leaf when key is nil).
func (o *readOp) descendToLeaf(key []byte, tr *pager.Tracker) (*node, error) {
	id := o.t.root
	for {
		n, err := o.fetch(id, tr)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			return n, nil
		}
		if key == nil {
			id = n.children[0]
		} else {
			id = n.children[findChild(n.keys, key)]
		}
	}
}

// Cursor iterates the tree in ascending key order. A cursor is only valid
// while the tree is not mutated; interleaving writes with cursor use is a
// programming error. Concurrent cursors (each its own Cursor value) are
// safe: every cursor carries a private readOp.
type Cursor struct {
	t     *Tree
	op    *readOp
	tr    *pager.Tracker
	leaf  *node
	idx   int
	valid bool
	err   error
}

// NewCursor returns an unpositioned cursor; call Seek or First.
func (t *Tree) NewCursor(tr *pager.Tracker) *Cursor {
	return &Cursor{t: t, op: t.newReadOp(), tr: tr}
}

// Seek positions the cursor at the first key >= key (nil = first key).
func (c *Cursor) Seek(key []byte) {
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	c.valid, c.err = false, nil
	n, err := c.op.descendToLeaf(key, c.tr)
	if err != nil {
		c.err = err
		return
	}
	i := 0
	if key != nil {
		i = sort.Search(len(n.keys), func(j int) bool {
			return bytes.Compare(n.keys[j], key) >= 0
		})
	}
	c.leaf, c.idx = n, i
	c.settle()
}

// First positions the cursor at the smallest key.
func (c *Cursor) First() { c.Seek(nil) }

// settle advances past empty leaves to the next real entry.
func (c *Cursor) settle() {
	for c.idx >= len(c.leaf.keys) {
		if c.leaf.next == pager.NilPage {
			return
		}
		n, err := c.op.fetch(c.leaf.next, c.tr)
		if err != nil {
			c.err = err
			return
		}
		c.leaf, c.idx = n, 0
	}
	c.valid = true
}

// Next advances to the next key.
func (c *Cursor) Next() {
	if !c.valid {
		return
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	c.valid = false
	c.idx++
	c.settle()
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Err returns the first error encountered by the cursor.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key. The slice is owned by the tree; callers must
// copy it to retain it.
func (c *Cursor) Key() []byte {
	if !c.valid {
		return nil
	}
	return c.leaf.keys[c.idx]
}

// Value materializes the current value (following overflow chains).
func (c *Cursor) Value() ([]byte, error) {
	if !c.valid {
		return nil, fmt.Errorf("btree: Value on invalid cursor")
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	return c.t.loadValue(c.leaf.vals[c.idx], c.tr)
}
