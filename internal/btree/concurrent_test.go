package btree

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/pager"
)

// buildConcurrentTree populates a tree with enough keys to span many pages.
func buildConcurrentTree(t *testing.T, f pager.File) *Tree {
	t.Helper()
	tree, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i*7%3000))
		if err := tree.Insert(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

// TestConcurrentReaders runs mixed Get/Scan/MultiScan/Cursor traffic from
// many goroutines, each with a private tracker, and checks every result
// against a sequential baseline. Run under -race this is the regression
// test for the goroutine-safe read path.
func TestConcurrentReaders(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		name := "direct"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			var f pager.File = pager.NewMemFile(0)
			if pooled {
				pool, err := bufferpool.New(f, bufferpool.Config{Pages: 32})
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()
				f = pool
			}
			tree := buildConcurrentTree(t, f)
			// Reads must hit the page file under the read lock, not the
			// write path's shared cache, for this test to mean anything.
			if err := tree.DropCache(); err != nil {
				t.Fatal(err)
			}

			// Sequential baselines.
			exactKey := []byte("key-001234")
			wantV, ok, err := tree.Get(exactKey, nil)
			if err != nil || !ok {
				t.Fatalf("baseline Get: %v ok=%v", err, ok)
			}
			var wantScan [][]byte
			err = tree.Scan(nil, []byte("key-001000"), []byte("key-001100"), nil,
				func(k, _ []byte) ([]byte, bool, error) {
					wantScan = append(wantScan, append([]byte(nil), k...))
					return nil, false, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			ivs := []Interval{
				{Lo: []byte("key-000100"), Hi: []byte("key-000200")},
				{Lo: []byte("key-002000"), Hi: []byte("key-002050")},
			}
			var wantMulti [][]byte
			err = tree.MultiScan(nil, ivs, nil, func(k, _ []byte) ([]byte, bool, error) {
				wantMulti = append(wantMulti, append([]byte(nil), k...))
				return nil, false, nil
			})
			if err != nil {
				t.Fatal(err)
			}

			const goroutines = 10
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tr := pager.NewTracker()
					for rep := 0; rep < 20; rep++ {
						switch (g + rep) % 4 {
						case 0:
							v, ok, err := tree.Get(exactKey, tr)
							if err != nil || !ok || !bytes.Equal(v, wantV) {
								t.Errorf("g%d Get: err=%v ok=%v val=%q want %q", g, err, ok, v, wantV)
								return
							}
						case 1:
							var got [][]byte
							err := tree.Scan(nil, []byte("key-001000"), []byte("key-001100"), tr,
								func(k, _ []byte) ([]byte, bool, error) {
									got = append(got, append([]byte(nil), k...))
									return nil, false, nil
								})
							if err != nil || len(got) != len(wantScan) {
								t.Errorf("g%d Scan: err=%v got %d keys want %d", g, err, len(got), len(wantScan))
								return
							}
						case 2:
							var got [][]byte
							err := tree.MultiScan(nil, ivs, tr, func(k, _ []byte) ([]byte, bool, error) {
								got = append(got, append([]byte(nil), k...))
								return nil, false, nil
							})
							if err != nil || len(got) != len(wantMulti) {
								t.Errorf("g%d MultiScan: err=%v got %d keys want %d", g, err, len(got), len(wantMulti))
								return
							}
						case 3:
							c := tree.NewCursor(tr)
							c.Seek([]byte("key-000500"))
							n := 0
							for c.Valid() && n < 25 {
								if _, err := c.Value(); err != nil {
									t.Errorf("g%d cursor value: %v", g, err)
									return
								}
								c.Next()
								n++
							}
							if err := c.Err(); err != nil {
								t.Errorf("g%d cursor: %v", g, err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentTrackerCountsMatchSequential checks the accounting
// invariance end-to-end on a real tree: running a fixed query set
// concurrently with per-goroutine trackers and merging them reports exactly
// the distinct-page total of the same query set run sequentially under one
// shared tracker.
func TestConcurrentTrackerCountsMatchSequential(t *testing.T) {
	tree := buildConcurrentTree(t, pager.NewMemFile(0))
	if err := tree.DropCache(); err != nil {
		t.Fatal(err)
	}
	queries := make([]Interval, 0, 16)
	for i := 0; i < 16; i++ {
		lo := []byte(fmt.Sprintf("key-%06d", i*180))
		hi := []byte(fmt.Sprintf("key-%06d", i*180+40))
		queries = append(queries, Interval{Lo: lo, Hi: hi})
	}
	scan := func(iv Interval, tr *pager.Tracker) error {
		return tree.Scan(nil, iv.Lo, iv.Hi, tr, func(_, _ []byte) ([]byte, bool, error) {
			return nil, false, nil
		})
	}

	shared := pager.NewTracker()
	for _, iv := range queries {
		if err := scan(iv, shared); err != nil {
			t.Fatal(err)
		}
	}

	per := make([]*pager.Tracker, len(queries))
	var wg sync.WaitGroup
	for i, iv := range queries {
		per[i] = pager.NewTracker()
		wg.Add(1)
		go func(i int, iv Interval) {
			defer wg.Done()
			if err := scan(iv, per[i]); err != nil {
				t.Error(err)
			}
		}(i, iv)
	}
	wg.Wait()

	merged := pager.NewTracker()
	for _, tr := range per {
		merged.Merge(tr)
	}
	if merged.Reads() != shared.Reads() {
		t.Fatalf("merged concurrent count %d != sequential shared count %d",
			merged.Reads(), shared.Reads())
	}
}

// TestSharedCachePopulation pins the new shared decoded-node cache's
// population contract: DropCache empties it, point lookups stay lazy (they
// never pay a full decode, so they install nothing), and scans — which do
// decode whole nodes — install what they decoded for every later reader.
func TestSharedCachePopulation(t *testing.T) {
	tree := buildConcurrentTree(t, pager.NewMemFile(0))
	if err := tree.DropCache(); err != nil {
		t.Fatal(err)
	}
	if got := tree.NodeCacheStats().Entries; got != 0 {
		t.Fatalf("cache not empty after DropCache: %d nodes", got)
	}
	if _, _, err := tree.Get([]byte("key-001234"), nil); err != nil {
		t.Fatal(err)
	}
	if got := tree.NodeCacheStats().Entries; got != 0 {
		t.Fatalf("lazy point lookup installed %d nodes into the shared cache", got)
	}
	err := tree.Scan(nil, nil, nil, nil, func(_, _ []byte) ([]byte, bool, error) {
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tree.NodeCacheStats()
	if st.Entries == 0 {
		t.Fatal("full scan installed nothing into the shared cache")
	}
	// A repeat of the same scan must now be all hits, no decodes.
	tr := pager.NewTracker()
	err = tree.Scan(nil, nil, nil, tr, func(_, _ []byte) ([]byte, bool, error) {
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheMisses() != 0 || tr.CacheHits() == 0 {
		t.Fatalf("warm rescan: %d hits, %d misses; want all hits",
			tr.CacheHits(), tr.CacheMisses())
	}
}
