package btree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Stored-value encoding. Leaf entries store values in a tagged form:
//
//	0x00 ‖ bytes             inline value
//	0x01 ‖ head(4) ‖ len(4)  value continues in an overflow chain
//
// Overflow chains hold values too large to inline (longer than a quarter
// page): each overflow page is [next(4) ‖ data]. Reading an overflow chain
// touches its pages through the query Tracker, so index structures that keep
// long object-id lists as values (CH-tree, NIX directories) pay an honest
// page-read cost for them — which is precisely the cost the U-index design
// avoids by keeping entries small and clustered.

const (
	valInline   = 0x00
	valOverflow = 0x01
)

// overflowThreshold returns the largest value stored inline.
func (t *Tree) overflowThreshold() int {
	return t.f.PageSize() / 4
}

// storeValue converts a logical value into its stored form, spilling to an
// overflow chain when large. Chain pages are allocated through the writeOp,
// so an aborted mutation frees them and nothing leaks; they are written
// immediately but stay unreachable until the op commits.
func (w *writeOp) storeValue(val []byte) ([]byte, error) {
	t := w.t
	if len(val) <= t.overflowThreshold() {
		return append([]byte{valInline}, val...), nil
	}
	chunk := t.f.PageSize() - 4
	var head pager.PageID
	var prevBuf []byte
	var prevID pager.PageID
	buf := make([]byte, t.f.PageSize())
	for off := 0; off < len(val); off += chunk {
		id, err := w.alloc()
		if err != nil {
			return nil, err
		}
		if head == pager.NilPage {
			head = id
		}
		if prevBuf != nil {
			binary.BigEndian.PutUint32(prevBuf[:4], uint32(id))
			if err := t.f.Write(prevID, prevBuf); err != nil {
				return nil, err
			}
		}
		for i := range buf {
			buf[i] = 0
		}
		copy(buf[4:], val[off:min(off+chunk, len(val))])
		prevBuf, prevID = buf, id
		buf = make([]byte, t.f.PageSize())
	}
	if err := t.f.Write(prevID, prevBuf); err != nil {
		return nil, err
	}
	stored := make([]byte, 9)
	stored[0] = valOverflow
	binary.BigEndian.PutUint32(stored[1:], uint32(head))
	binary.BigEndian.PutUint32(stored[5:], uint32(len(val)))
	return stored, nil
}

// loadValue materializes a stored value, following (and accounting for) the
// overflow chain when present.
func (t *Tree) loadValue(stored []byte, tr *pager.Tracker) ([]byte, error) {
	if len(stored) == 0 {
		return nil, fmt.Errorf("btree: empty stored value")
	}
	switch stored[0] {
	case valInline:
		return stored[1:], nil
	case valOverflow:
		if len(stored) != 9 {
			return nil, fmt.Errorf("btree: corrupt overflow reference")
		}
		id := pager.PageID(binary.BigEndian.Uint32(stored[1:]))
		total := int(binary.BigEndian.Uint32(stored[5:]))
		out := make([]byte, 0, total)
		buf := make([]byte, t.f.PageSize())
		chunk := t.f.PageSize() - 4
		for id != pager.NilPage && len(out) < total {
			tr.Touch(id)
			if err := t.f.Read(id, buf); err != nil {
				return nil, err
			}
			take := min(chunk, total-len(out))
			out = append(out, buf[4:4+take]...)
			id = pager.PageID(binary.BigEndian.Uint32(buf[:4]))
		}
		if len(out) != total {
			return nil, fmt.Errorf("btree: overflow chain truncated: have %d of %d bytes", len(out), total)
		}
		return out, nil
	}
	return nil, fmt.Errorf("btree: unknown value tag 0x%02x", stored[0])
}

// retireValue hands the overflow chain of a stored value (if any) to the
// op's retired set: the pages stay readable for pinned snapshots and are
// freed by the reclaimer once unreachable.
func (w *writeOp) retireValue(stored []byte) error {
	if len(stored) == 0 || stored[0] != valOverflow {
		return nil
	}
	if len(stored) != 9 {
		return fmt.Errorf("btree: corrupt overflow reference")
	}
	id := pager.PageID(binary.BigEndian.Uint32(stored[1:]))
	buf := make([]byte, w.t.f.PageSize())
	for id != pager.NilPage {
		if err := w.t.f.Read(id, buf); err != nil {
			return err
		}
		w.retired = append(w.retired, id)
		id = pager.PageID(binary.BigEndian.Uint32(buf[:4]))
	}
	return nil
}

// overflowPages returns how many pages the stored value occupies beyond the
// leaf entry itself.
func (t *Tree) overflowPages(stored []byte) int {
	if len(stored) != 9 || stored[0] != valOverflow {
		return 0
	}
	total := int(binary.BigEndian.Uint32(stored[5:]))
	chunk := t.f.PageSize() - 4
	return (total + chunk - 1) / chunk
}
