package btree

import (
	"fmt"
	"testing"

	"repro/internal/pager"
)

// TestBulkLoadLargeEntriesFlush reproduces a packing bug: entries just under
// the inline-value threshold could seal a bulk-loaded leaf above the page
// size, which only surfaced on the first Flush. Every sealed node must
// serialize into its page.
func TestBulkLoadLargeEntriesFlush(t *testing.T) {
	f := pager.NewMemFile(1024)
	tr, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Values one byte under the overflow threshold stay inline and make
	// each entry ~page/4 large, so the soft fill limit overshoots.
	val := make([]byte, 1024/4-1)
	var keys, vals [][]byte
	for i := 0; i < 64; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%04d", i)))
		vals = append(vals, val)
	}
	if err := tr.BulkLoad(SliceSource(keys, vals)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush after bulk load: %v", err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	for _, k := range keys {
		v, ok, err := tr.Get(k, nil)
		if err != nil || !ok || len(v) != len(val) {
			t.Fatalf("get %q: ok=%v err=%v len=%d", k, ok, err, len(v))
		}
	}
}
