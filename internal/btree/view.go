package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/pager"
)

// This file is the lazy half of the v2 page format (see node.go for the
// layout): point lookups operate directly on the encoded page image,
// binary-searching the anchor trailer and decoding only the run of entries
// between two anchors — no node materialization, no per-key allocation. The
// current key under reconstruction lives in a caller-owned scratch buffer
// that a readOp reuses across every page of a descent.

// pageAnchors is a zero-allocation view of a page's anchor trailer. The
// zero value means "no anchors" (a v1 page, or a trailer that failed
// validation); lookups then fall back to a sequential walk from entry 0.
type pageAnchors struct {
	buf []byte
	r   int
}

// anchorsOf validates and returns the anchor trailer of an encoded page.
// Validation is total — a reader never trusts tail bytes it did not verify,
// so a corrupt or foreign trailer degrades to the sequential path instead
// of an out-of-bounds panic.
func anchorsOf(buf []byte) pageAnchors {
	if len(buf) < headerSize+2 || buf[0]&flagAnchors == 0 {
		return pageAnchors{}
	}
	r := int(binary.BigEndian.Uint16(buf[len(buf)-2:]))
	if r < 2 || len(buf)-2-anchorRecSize*r < headerSize {
		return pageAnchors{}
	}
	count := int(binary.BigEndian.Uint16(buf[1:]))
	a := pageAnchors{buf: buf, r: r}
	prevIdx := -1
	for j := 0; j < r; j++ {
		idx, entryOff, keyOff, keyLen := a.rec(j)
		if idx <= prevIdx || idx >= count ||
			entryOff < headerSize || entryOff >= len(buf)-2-anchorRecSize*r ||
			keyOff < headerSize || keyOff+keyLen > len(buf)-2 {
			return pageAnchors{}
		}
		prevIdx = idx
	}
	if i, _, _, _ := a.rec(0); i != 0 {
		return pageAnchors{} // anchor 0 must cover the page head
	}
	return a
}

// rec returns the j-th anchor record's fields.
func (a pageAnchors) rec(j int) (idx, entryOff, keyOff, keyLen int) {
	rec := a.buf[len(a.buf)-2-anchorRecSize*(a.r-j):]
	return int(binary.BigEndian.Uint16(rec[0:])),
		int(binary.BigEndian.Uint16(rec[2:])),
		int(binary.BigEndian.Uint16(rec[4:])),
		int(binary.BigEndian.Uint16(rec[6:]))
}

// key returns the j-th anchor's full (uncompressed) key, aliasing the page.
func (a pageAnchors) key(j int) []byte {
	_, _, keyOff, keyLen := a.rec(j)
	return a.buf[keyOff : keyOff+keyLen]
}

// seek returns the last anchor whose key is <= target, or -1 when target
// precedes every anchored key (i.e. precedes the whole page, since anchor 0
// is entry 0).
func (a pageAnchors) seek(target []byte) int {
	return sort.Search(a.r, func(j int) bool {
		return bytes.Compare(a.key(j), target) > 0
	}) - 1
}

// entryWalk decodes entries of an encoded page one at a time. The current
// key is reconstructed in the caller's scratch buffer; the value (leaf) and
// child pointer (internal) alias the page image. A walk that starts at an
// anchor is seeded with the anchor's full key, because the entry's stored
// prefix refers to a predecessor the walk never saw.
type entryWalk struct {
	buf     []byte
	off     int
	idx     int // index of the entry next() will decode
	count   int
	leaf    bool
	scratch *[]byte
	seed    []byte // full key of the first entry, when starting mid-page

	key   []byte       // current key (aliases *scratch)
	val   []byte       // leaf: current stored value (aliases buf)
	child pager.PageID // internal: the entry's right child, children[idx]
	read  int          // entry bytes consumed so far
}

// walkFrom positions a walk at an anchor (j >= 0) or at entry 0 (j == -1).
func walkFrom(buf []byte, a pageAnchors, j int, scratch *[]byte) entryWalk {
	w := entryWalk{
		buf:     buf,
		off:     headerSize,
		count:   int(binary.BigEndian.Uint16(buf[1:])),
		leaf:    buf[0]&flagLeaf != 0,
		scratch: scratch,
	}
	if j >= 0 {
		idx, entryOff, _, _ := a.rec(j)
		w.idx, w.off, w.seed = idx, entryOff, a.key(j)
	}
	return w
}

// next decodes the entry at w.idx; callers must check w.idx < w.count first.
func (w *entryWalk) next() error {
	start := w.off
	p, sz := binary.Uvarint(w.buf[w.off:])
	if sz <= 0 {
		return fmt.Errorf("btree: page corrupt at offset %d", w.off)
	}
	w.off += sz
	s, sz := binary.Uvarint(w.buf[w.off:])
	if sz <= 0 {
		return fmt.Errorf("btree: page corrupt at offset %d", w.off)
	}
	w.off += sz
	if w.off+int(s) > len(w.buf) {
		return fmt.Errorf("btree: page corrupt entry %d", w.idx)
	}
	if w.seed != nil {
		// First entry of a mid-page walk: its full key is the anchor key.
		if int(p)+int(s) != len(w.seed) {
			return fmt.Errorf("btree: anchor key length mismatch at entry %d", w.idx)
		}
		*w.scratch = append((*w.scratch)[:0], w.seed...)
		w.seed = nil
	} else {
		if int(p) > len(w.key) {
			return fmt.Errorf("btree: page corrupt prefix at entry %d", w.idx)
		}
		*w.scratch = append((*w.scratch)[:p], w.buf[w.off:w.off+int(s)]...)
	}
	w.key = *w.scratch
	w.off += int(s)
	if w.leaf {
		vl, sz := binary.Uvarint(w.buf[w.off:])
		if sz <= 0 || w.off+sz+int(vl) > len(w.buf) {
			return fmt.Errorf("btree: page corrupt value %d", w.idx)
		}
		w.off += sz
		w.val = w.buf[w.off : w.off+int(vl)]
		w.off += int(vl)
	} else {
		if w.off+4 > len(w.buf) {
			return fmt.Errorf("btree: page corrupt child %d", w.idx)
		}
		w.child = pager.PageID(binary.BigEndian.Uint32(w.buf[w.off:]))
		w.off += 4
	}
	w.idx++
	w.read += w.off - start
	return nil
}

// pageLeafGet is an exact-match lookup straight off an encoded leaf page.
// The returned stored value aliases buf. read is the number of entry bytes
// the lookup had to decode (the lazy win over a full decodeNode).
func pageLeafGet(buf, target []byte, scratch *[]byte) (val []byte, ok bool, read int, err error) {
	a := anchorsOf(buf)
	j := -1
	if a.r > 0 {
		if j = a.seek(target); j < 0 {
			return nil, false, 0, nil // target precedes the whole page
		}
	}
	w := walkFrom(buf, a, j, scratch)
	for w.idx < w.count {
		if err := w.next(); err != nil {
			return nil, false, w.read, err
		}
		switch bytes.Compare(w.key, target) {
		case 0:
			return w.val, true, w.read, nil
		case 1:
			return nil, false, w.read, nil // keys ascend: target is absent
		}
	}
	return nil, false, w.read, nil
}

// pageSeekChild descends one internal level straight off the encoded page:
// it returns children[i] for the first i with target < keys[i] (or the last
// child), exactly like findChild on a decoded node.
func pageSeekChild(buf, target []byte, scratch *[]byte) (child pager.PageID, read int, err error) {
	child = pager.PageID(binary.BigEndian.Uint32(buf[3:])) // children[0]
	a := anchorsOf(buf)
	j := -1
	if a.r > 0 {
		if j = a.seek(target); j < 0 {
			return child, 0, nil // target precedes keys[0]
		}
	}
	w := walkFrom(buf, a, j, scratch)
	for w.idx < w.count {
		if err := w.next(); err != nil {
			return pager.NilPage, w.read, err
		}
		if bytes.Compare(w.key, target) > 0 {
			break
		}
		// keys[idx] <= target, so the descent goes at or right of
		// children[idx+1] — the child stored in this entry.
		child = w.child
	}
	return child, w.read, nil
}
