package btree

import (
	"fmt"
	"testing"

	"repro/internal/pager"
)

// benchLeafPage encodes one leaf page at a realistic ~75% fill (split
// pages settle near that, and the tail slack is where the anchor trailer
// lives) with the given anchor stride (0 = v1 format, no anchors). It
// returns the page bytes plus a key in the back half of the page — the
// expensive case for a sequential walk.
func benchLeafPage(b *testing.B, stride int) (buf []byte, target []byte) {
	b.Helper()
	n := &node{leaf: true}
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("bench/cluster-%02d/key-%06d", i/16, i))
		n.keys = append(n.keys, k)
		n.vals = append(n.vals, []byte{valInline})
		if n.encodedSize(false) > 3*pager.DefaultPageSize/4 {
			n.keys = n.keys[:len(n.keys)-1]
			n.vals = n.vals[:len(n.vals)-1]
			break
		}
	}
	buf = make([]byte, pager.DefaultPageSize)
	if err := encodePage(n, buf, false, stride); err != nil {
		b.Fatal(err)
	}
	return buf, append([]byte(nil), n.keys[3*len(n.keys)/4]...)
}

// BenchmarkDecodeNode contrasts the two ways the read path materializes a
// page: the full arena decode every fetch paid before the node cache, and
// the lazy anchor-seeded point lookup that decodes a single run.
func BenchmarkDecodeNode(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		buf, _ := benchLeafPage(b, DefaultAnchorStride)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := decodeNode(1, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, tc := range []struct {
		name   string
		stride int
	}{
		{"lazy-get/anchors", DefaultAnchorStride},
		{"lazy-get/v1-sequential", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			buf, target := benchLeafPage(b, tc.stride)
			var scratch []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ok, _, err := pageLeafGet(buf, target, &scratch)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("target key not found")
				}
			}
		})
	}
}

// BenchmarkTreeGet measures a whole point lookup through the tree: the
// lazy descent never installs cache entries, so this is the steady-state
// cost either way; the cached variant additionally hits nodes a prior
// scan installed.
func BenchmarkTreeGet(b *testing.B) {
	for _, tc := range []struct {
		name string
		tun  Tuning
	}{
		{"cache=on", Tuning{}},
		{"cache=off", Tuning{NodeCacheSize: -1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f := pager.NewMemFile(0)
			tree, err := Create(f, Config{Tuning: tc.tun})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3000; i++ {
				k := []byte(fmt.Sprintf("key-%06d", i))
				if err := tree.Insert(k, []byte("v")); err != nil {
					b.Fatal(err)
				}
			}
			if err := tree.DropCache(); err != nil {
				b.Fatal(err)
			}
			// Warm the shared cache the way a real workload would: one scan.
			err = tree.Scan(nil, nil, nil, nil, func(_, _ []byte) ([]byte, bool, error) {
				return nil, false, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			key := []byte("key-002345")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ok, err := tree.Get(key, nil)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("key not found")
				}
			}
		})
	}
}
