package btree

import (
	"bytes"
	"runtime"

	"repro/internal/pager"
)

// Frontier prefetch for the multi-interval scan (Parscan, Algorithm 1).
//
// When a Parscan descent reaches an internal node it already knows, from the
// node's separator keys and its own interval set, exactly which children the
// recursion is about to visit — the next-level frontier. When the tree's
// page file offers batched read-ahead (the buffer pool's Prefetch), the scan
// hands that frontier to a per-scan prefetcher goroutine and keeps walking:
// the children are fetched as one coalesced batch instead of one synchronous
// read per child at the moment each is visited.
//
// The prefetcher then goes one level further: it decodes the internal nodes
// it just fetched and pushes the union of their own frontiers as a second
// batch. The per-node frontiers of a Parscan descent are small (a dispersed
// interval set selects only a few children per node), but their union across
// the level is large, and batched-read throughput improves steeply with
// batch size — the union reaches queue depths no single node's frontier
// could. Each level of look-ahead is issued before the walk needs it, so a
// descent's I/O collapses to roughly one coalesced batch per level.
//
// Prefetch is a hint, never a dependency: the walk's own fetch path is
// unchanged, the pool's admission detects pages that raced in and never
// reads them twice, and prefetch failures are swallowed (the synchronous
// read will surface them). Logical page accounting is untouched by
// construction — the tracker counts a page in readOp.fetch before any cache
// or pool is consulted, and the prefetcher never calls Touch — so the
// paper's page-read counts are identical with prefetch on or off.

// prefetchPool is the optional read-ahead capability of the tree's page
// file; *bufferpool.Pool implements it.
type prefetchPool interface {
	// Prefetch loads the given pages into frames without pinning them,
	// returning how many were actually read. Errors are swallowed.
	Prefetch(ids []pager.PageID) int
}

// prefetchQueueDepth bounds the frontier batches queued to one scan's
// prefetcher goroutine. Sends are non-blocking: when the prefetcher is
// this far behind, further hints are dropped rather than stalling the scan.
const prefetchQueueDepth = 8

// pfBatch is one frontier hint: the pages of a node's relevant children,
// plus the snapshot of scan state the prefetcher needs to extend the
// frontier one level deeper on its own — the interval-cursor position at
// each child and the dynamic skip bound at issue time (walk mutates its
// copy in place, so the batch carries its own).
type pfBatch struct {
	ids  []pager.PageID
	ivs  []int
	skip []byte
}

// startPrefetcher spins up the scan's prefetcher goroutine. The caller must
// pair it with stopPrefetcher before the scan's version pin is released:
// prefetch I/O must complete while the pages it touches are still pinned
// against reclamation.
func (s *multiScan) startPrefetcher(pool prefetchPool) {
	s.pfCh = make(chan pfBatch, prefetchQueueDepth)
	s.pfDone = make(chan struct{})
	go func() {
		defer close(s.pfDone)
		buf := make([]byte, s.op.t.f.PageSize())
		for b := range s.pfCh {
			pool.Prefetch(b.ids)
			s.deepPrefetch(pool, b, buf)
		}
	}()
}

// stopPrefetcher drains the queue and waits for in-flight prefetch I/O.
func (s *multiScan) stopPrefetcher() {
	close(s.pfCh)
	<-s.pfDone
}

// deepPrefetch extends a just-fetched frontier one level down: it decodes
// each internal node of the batch (now pool-resident, so the reads are
// copies, not I/O) and issues the union of their relevant children as one
// batch. Every error aborts silently — read-ahead is best-effort.
func (s *multiScan) deepPrefetch(pool prefetchPool, b pfBatch, buf []byte) {
	var union []pager.PageID
	for i, id := range b.ids {
		if err := s.op.t.f.Read(id, buf); err != nil {
			return
		}
		if buf[0]&flagLeaf != 0 {
			continue // the frontier is the leaf level; nothing below it
		}
		n, err := decodeNode(id, buf)
		if err != nil {
			return
		}
		ids, _ := s.frontierAt(n, b.ivs[i], b.skip)
		union = append(union, ids...)
	}
	if len(union) > 0 {
		pool.Prefetch(union)
	}
}

// maybePrefetch enqueues the relevant, not-yet-decoded children of an
// internal node for read-ahead. It must be called with the scan state
// (s.iv, s.skip) positioned as it is when walk starts iterating n's
// children; the frontier simulation advances a local copy of the cursor.
func (s *multiScan) maybePrefetch(n *node) {
	if s.pfCh == nil || len(n.children) < 2 {
		return
	}
	ids, ivs := s.frontierAt(n, s.iv, s.skip)
	if len(ids) == 0 {
		return
	}
	var skip []byte
	if s.skip != nil {
		skip = append([]byte(nil), s.skip...)
	}
	select {
	case s.pfCh <- pfBatch{ids: ids, ivs: ivs, skip: skip}:
		s.tr.NotePrefetch(len(ids))
		// Hand the processor to the prefetcher so it starts the batched
		// read before the walk issues a synchronous read for the first
		// child — which is always part of the batch. Without the yield a
		// single-P runtime keeps the walk running until it blocks inside
		// that first single-page read, by which point the coalescing
		// opportunity for it is gone and the prefetcher races the walk
		// page-by-page for the rest; with it the whole frontier lands as
		// one batched submission and the walk's pins hit warm frames.
		runtime.Gosched()
	default: // prefetcher saturated; drop the hint
	}
}

// frontierAt computes the children of n the recursion is about to descend
// into, replicating walk's relevance conditions with a local interval
// cursor starting at iv (s.advance mutates s.iv, so the real cursor cannot
// be used for look-ahead; the prefetcher goroutine passes a snapshot).
// Children whose decoded form is already in the node cache are dropped —
// their visit costs no I/O. Alongside each selected child it reports the
// cursor position on entry to that child, which is what deepPrefetch needs
// to continue the simulation a level down. The dynamic skip bound can only
// grow during the descent, so the simulated frontier over-approximates the
// pages actually visited; the surplus is wasted read-ahead, never a wrong
// result. Safe for concurrent use: it reads only the immutable interval
// set and the lock-protected node cache.
func (s *multiScan) frontierAt(n *node, iv int, skip []byte) (ids []pager.PageID, ivAt []int) {
	for ci := 0; ci <= len(n.keys); ci++ {
		if ci > 0 {
			key := n.keys[ci-1]
			for iv < len(s.ivs) && s.ivs[iv].Hi != nil && bytes.Compare(key, s.ivs[iv].Hi) >= 0 {
				iv++
			}
			if iv >= len(s.ivs) {
				break // every remaining interval lies below this child
			}
		}
		if ci < len(n.keys) {
			ub := n.keys[ci]
			if lo := s.ivs[iv].Lo; lo != nil && bytes.Compare(lo, ub) >= 0 {
				continue
			}
			if skip != nil && bytes.Compare(skip, ub) >= 0 {
				continue
			}
		}
		if s.op.t.ncache.contains(n.children[ci]) {
			continue
		}
		ids = append(ids, n.children[ci])
		ivAt = append(ivAt, iv)
	}
	return ids, ivAt
}
