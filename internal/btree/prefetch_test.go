package btree

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/pager"
)

// newPooledTree builds a tree whose page file is a buffer pool (the engine's
// deployment shape, and the one that enables frontier prefetch), loaded with
// n sequential keys.
func newPooledTree(t testing.TB, n int, tun Tuning) (*Tree, *bufferpool.Pool) {
	t.Helper()
	p, err := bufferpool.New(pager.NewMemFile(256), bufferpool.Config{Pages: 512})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	tr, err := Create(p, Config{Tuning: tun})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return tr, p
}

// scanIvs is a spread of intervals exercising descent into many disjoint
// subtrees — the Parscan shape frontier prefetch targets.
func scanIvs(n int) []Interval {
	var ivs []Interval
	for lo := 0; lo < n; lo += n / 10 {
		ivs = append(ivs, Interval{key(lo), key(lo + n/20)})
	}
	return ivs
}

// TestPrefetchInvariance runs the same multi-interval scan on two
// identically built trees — prefetch on and off — and requires identical
// results AND identical logical page counts (the paper's metric): prefetch
// must be invisible to everything but physical I/O timing.
func TestPrefetchInvariance(t *testing.T) {
	const n = 3000
	run := func(tun Tuning) ([]string, int, int, bufferpool.Stats) {
		tr, p := newPooledTree(t, n, tun)
		tr.DropCache() // cold node cache: the scan really fetches pages
		if err := p.Reset(); err != nil {
			t.Fatalf("pool reset: %v", err) // cold pool: prefetch does real reads
		}
		trk := pager.NewTracker()
		var got []string
		err := tr.MultiScanKeys(nil, scanIvs(n), trk, func(k, _ []byte) ([]byte, bool, error) {
			got = append(got, string(k))
			// Yield so the prefetcher goroutine interleaves with the walk
			// even on a single P over a MemFile (a real disk blocks here
			// on its own).
			runtime.Gosched()
			return nil, false, nil
		})
		if err != nil {
			t.Fatalf("MultiScanKeys: %v", err)
		}
		return got, trk.Reads(), trk.PrefetchIssued(), p.PoolStats()
	}

	onKeys, onReads, onIssued, onStats := run(Tuning{})
	offKeys, offReads, offIssued, _ := run(Tuning{NoPrefetch: true})

	if len(onKeys) == 0 {
		t.Fatalf("scan returned nothing")
	}
	if len(onKeys) != len(offKeys) {
		t.Fatalf("result size differs: prefetch on %d, off %d", len(onKeys), len(offKeys))
	}
	for i := range onKeys {
		if onKeys[i] != offKeys[i] {
			t.Fatalf("result[%d] differs: %q vs %q", i, onKeys[i], offKeys[i])
		}
	}
	if onReads != offReads {
		t.Fatalf("logical page reads differ: prefetch on %d, off %d", onReads, offReads)
	}
	if onIssued == 0 {
		t.Fatalf("prefetch enabled but no pages were handed to the prefetcher")
	}
	if offIssued != 0 {
		t.Fatalf("NoPrefetch still issued %d pages", offIssued)
	}
	if onStats.PrefetchPages == 0 {
		t.Fatalf("pool saw no prefetched pages (PrefetchPages = 0)")
	}
}

// TestPrefetchFrontierMatchesWalk checks the frontier simulation against
// the walk itself: with a cold node cache, every page the prefetcher was
// handed at one level must be visited by the descent — the static frontier
// (no skip requests) over-approximates nothing.
func TestPrefetchFrontierMatchesWalk(t *testing.T) {
	const n = 2000
	tr, _ := newPooledTree(t, n, Tuning{NodeCacheSize: -1}) // cache off: frontier is unfiltered
	issued := make(map[pager.PageID]bool)
	visited := make(map[pager.PageID]bool)

	v, release := tr.pin()
	defer func() {
		if release != nil {
			release()
		}
	}()
	s := &multiScan{op: &readOp{t: tr}, ivs: NormalizeIntervals(scanIvs(n)), keysOnly: true,
		fn: func(k, _ []byte) ([]byte, bool, error) { return nil, false, nil }}
	// A synchronous stand-in for the prefetcher goroutine records each batch
	// (first-level frontiers only — the deep extension is exercised by the
	// real goroutine in TestPrefetchInvariance).
	s.pfCh = make(chan pfBatch, 1)
	s.pfDone = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(s.pfDone)
		for batch := range s.pfCh {
			for _, id := range batch.ids {
				issued[id] = true
			}
		}
	}()
	// Track visits through the tracker's Touch.
	trk := pager.NewTracker()
	s.tr = trk
	if _, err := s.walk(v.root); err != nil {
		t.Fatalf("walk: %v", err)
	}
	s.stopPrefetcher()
	wg.Wait()
	for id := pager.PageID(0); int(id) < 100000; id++ {
		if trk.Touched(id) {
			visited[id] = true
		}
	}
	if len(issued) == 0 {
		t.Fatalf("no frontier batches issued")
	}
	for id := range issued {
		if !visited[id] {
			t.Fatalf("prefetched page %d was never visited by the walk", id)
		}
	}
}

// TestPrefetchConcurrentWithWrites races prefetching scans against a writer
// committing inserts (which retires and frees pages through the Reclaimer).
// Run with -race; the scans verify their own results.
func TestPrefetchConcurrentWithWrites(t *testing.T) {
	const n = 1500
	tr, _ := newPooledTree(t, n, Tuning{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				prev := ""
				err := tr.MultiScanKeys(nil, scanIvs(n), nil, func(k, _ []byte) ([]byte, bool, error) {
					if s := string(k); s <= prev {
						return nil, true, fmt.Errorf("out-of-order key %q after %q", s, prev)
					} else {
						prev = s
					}
					return nil, false, nil
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		if err := tr.Insert(key(n+i), val(n+i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("scan error under concurrent writes: %v", err)
	default:
	}
}
