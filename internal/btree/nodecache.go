package btree

import (
	"sync"
	"sync/atomic"

	"repro/internal/pager"
)

// DefaultNodeCacheSize is the per-tree capacity (in nodes) of the shared
// decoded-node cache when Tuning.NodeCacheSize is zero. At the default
// 1 KiB page size a decoded node is a few KiB, so the default bounds the
// cache to roughly 10 MiB per tree — enough to hold the entire internal
// level plus the hot leaves of the paper's 150,000-object experiments.
const DefaultNodeCacheSize = 4096

// nodeCacheShards fixes the shard count; sharding keeps concurrent readers
// from serializing on one mutex (reads take an RLock on 1/16th of the map).
const nodeCacheShards = 16

// CacheStats is a point-in-time summary of a decoded-node cache.
type CacheStats struct {
	Hits    int64 // fetches served from the cache
	Misses  int64 // fetches that had to decode the page
	Entries int   // nodes currently cached
}

// nodeCache is the shared decoded-node cache of one tree: a sharded map
// from page id to the immutable decoded form of that page. It exploits the
// central MVCC invariant — a committed page is never modified in place, only
// superseded and eventually freed — so a decoded node can be shared by every
// reader, snapshot, and the writer without any copying or synchronization
// beyond the map itself. Coherence is maintained by invalidation at the two
// points where a page id's content can change hands:
//
//   - writeOp.commit installs the freshly committed nodes and drops the ids
//     it retired (their content is still valid for pinned snapshots, but the
//     entry will be refreshed at latest when the page id is reused);
//   - the bufferpool.Reclaimer's release hook drops a page id the moment the
//     page is freed, closing the reuse window: an id is always invalidated
//     before the allocator can hand it to a later mutation.
//
// A nil *nodeCache is valid and caches nothing (cache-disabled mode); all
// methods are nil-safe so callers never branch.
type nodeCache struct {
	shards   [nodeCacheShards]nodeCacheShard
	shardCap int // max entries per shard
	hits     atomic.Int64
	misses   atomic.Int64
}

type nodeCacheShard struct {
	mu sync.RWMutex
	m  map[pager.PageID]*node
}

// newNodeCache sizes a cache: size 0 means DefaultNodeCacheSize, a negative
// size disables caching entirely (returns nil).
func newNodeCache(size int) *nodeCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultNodeCacheSize
	}
	c := &nodeCache{shardCap: max(1, size/nodeCacheShards)}
	for i := range c.shards {
		c.shards[i].m = make(map[pager.PageID]*node)
	}
	return c
}

func (c *nodeCache) shard(id pager.PageID) *nodeCacheShard {
	return &c.shards[uint64(id)%nodeCacheShards]
}

// get returns the cached node for id, counting the hit or miss.
func (c *nodeCache) get(id pager.PageID) (*node, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(id)
	s.mu.RLock()
	n, ok := s.m[id]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return n, ok
}

// contains reports residency without touching the hit/miss counters. The
// scan prefetcher uses it to drop already-decoded children from a frontier
// batch; those probes are not fetches and must not distort cache stats.
func (c *nodeCache) contains(id pager.PageID) bool {
	if c == nil {
		return false
	}
	s := c.shard(id)
	s.mu.RLock()
	_, ok := s.m[id]
	s.mu.RUnlock()
	return ok
}

// put caches a decoded node. The node must be immutable from this point on
// (decoded from a committed page, or a fresh node being committed). When a
// shard is full an arbitrary resident entry is evicted first — random
// replacement is good enough here because the cache sits behind the buffer
// pool and a miss costs one decode, not an I/O.
func (c *nodeCache) put(n *node) {
	if c == nil {
		return
	}
	s := c.shard(n.id)
	s.mu.Lock()
	if _, ok := s.m[n.id]; !ok && len(s.m) >= c.shardCap {
		for id := range s.m {
			delete(s.m, id)
			break
		}
	}
	s.m[n.id] = n
	s.mu.Unlock()
}

// invalidate drops the entry for a page id, if any. Called when a commit
// retires the id and again when the reclaimer frees it.
func (c *nodeCache) invalidate(id pager.PageID) {
	if c == nil {
		return
	}
	s := c.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// clear empties the cache (DropCache).
func (c *nodeCache) clear() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.mu.Unlock()
	}
}

// stats reports cumulative hit/miss counters and the current entry count.
func (c *nodeCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
