package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pager"
)

// TestQuickRandomOps drives random operation sequences (seeded via
// testing/quick) against a reference map and validates tree invariants and
// contents afterwards.
func TestQuickRandomOps(t *testing.T) {
	check := func(seed int64, countMode bool) bool {
		return checkQuickRandomOps(t, seed, countMode)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func checkQuickRandomOps(t *testing.T, seed int64, countMode bool) bool {
	{
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{}
		if countMode {
			cfg.MaxEntries = 3 + rng.Intn(8)
		}
		f := pager.NewMemFile(128)
		tr, err := Create(f, cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		model := map[string]string{}
		for op := 0; op < 600; op++ {
			k := fmt.Sprintf("%0*d", 1+rng.Intn(10), rng.Intn(150))
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := fmt.Sprintf("v%d", rng.Intn(50))
				if err := tr.Insert([]byte(k), []byte(v)); err != nil {
					t.Errorf("Insert: %v", err)
					return false
				}
				model[k] = v
			case 3:
				ok, err := tr.Delete([]byte(k))
				if err != nil {
					t.Errorf("Delete: %v", err)
					return false
				}
				if _, in := model[k]; ok != in {
					t.Errorf("Delete(%q) = %v, model %v", k, ok, in)
					return false
				}
				delete(model, k)
			case 4:
				v, ok, err := tr.Get([]byte(k), nil)
				if err != nil {
					t.Errorf("Get: %v", err)
					return false
				}
				want, in := model[k]
				if ok != in || (ok && string(v) != want) {
					t.Errorf("Get(%q) = %q,%v; model %q,%v", k, v, ok, want, in)
					return false
				}
			}
		}
		if err := tr.Check(); err != nil {
			t.Errorf("Check: %v", err)
			return false
		}
		if tr.Len() != len(model) {
			t.Errorf("Len = %d, model %d", tr.Len(), len(model))
			return false
		}
		// Serialization round trip preserves everything.
		if err := tr.DropCache(); err != nil {
			t.Error(err)
			return false
		}
		n := 0
		err = tr.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
			n++
			if model[string(k)] != string(v) {
				return nil, true, fmt.Errorf("content mismatch at %q", k)
			}
			return nil, false, nil
		})
		if err != nil || n != len(model) {
			t.Errorf("post-reload scan: n=%d err=%v", n, err)
			return false
		}
		return true
	}
}

// TestQuickMultiScan verifies MultiScan against a model for random interval
// families, including degenerate and unbounded intervals.
func TestQuickMultiScan(t *testing.T) {
	tr := newTree(t, 128, Config{})
	var keys []string
	for i := 0; i < 800; i++ {
		k := fmt.Sprintf("k%04d", i*3) // gaps between keys
		keys = append(keys, k)
		if err := tr.Insert([]byte(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(keys)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ivs []Interval
		for j := 0; j < rng.Intn(6); j++ {
			var lo, hi []byte
			if rng.Intn(8) > 0 {
				lo = []byte(fmt.Sprintf("k%04d", rng.Intn(2600)))
			}
			if rng.Intn(8) > 0 {
				hi = []byte(fmt.Sprintf("k%04d", rng.Intn(2600)))
			}
			ivs = append(ivs, Interval{lo, hi})
		}
		var got []string
		if err := tr.MultiScan(nil, ivs, nil, func(k, v []byte) ([]byte, bool, error) {
			got = append(got, string(k))
			return nil, false, nil
		}); err != nil {
			t.Error(err)
			return false
		}
		norm := NormalizeIntervals(ivs)
		var want []string
		for _, k := range keys {
			for _, iv := range norm {
				if iv.contains([]byte(k)) {
					want = append(want, k)
					break
				}
			}
		}
		if len(got) != len(want) {
			t.Errorf("seed %d: got %d keys, want %d", seed, len(got), len(want))
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("seed %d: [%d] %q != %q", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBinaryKeys stresses arbitrary byte-string keys (NULs, 0xFF,
// shared prefixes) through insert/lookup/serialize.
func TestQuickBinaryKeys(t *testing.T) {
	check := func(raw [][]byte) bool {
		tr := newTree(t, 256, Config{})
		model := map[string]bool{}
		for _, k := range raw {
			if len(k) == 0 || len(k) > tr.maxKeySize() {
				continue
			}
			if err := tr.Insert(k, nil); err != nil {
				t.Errorf("Insert(%x): %v", k, err)
				return false
			}
			model[string(k)] = true
		}
		if err := tr.DropCache(); err != nil {
			t.Error(err)
			return false
		}
		if err := tr.Check(); err != nil {
			t.Errorf("Check: %v", err)
			return false
		}
		for k := range model {
			if _, ok, err := tr.Get([]byte(k), nil); err != nil || !ok {
				t.Errorf("Get(%x) = %v, %v", k, ok, err)
				return false
			}
		}
		return tr.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDiskBackedTree runs a full life cycle against a DiskFile, closing and
// reopening the file between phases.
func TestDiskBackedTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	f, err := pager.CreateDiskFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := tr.MetaPage() // COW metadata: the id is valid only after Flush
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := pager.OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	re, err := Open(f2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != n {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
	// Mutate after reopen, flush, reopen again.
	for i := 0; i < n; i += 2 {
		if ok, err := re.Delete(key(i)); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(f2, re.MetaPage())
	if err != nil {
		t.Fatal(err)
	}
	if re2.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", re2.Len())
	}
	for i := 0; i < n; i++ {
		_, ok, err := re2.Get(key(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v after deletes", i, ok)
		}
	}
	if err := re2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReads exercises the tree's concurrency claim: many
// goroutines reading (Get/Scan/MultiScan) simultaneously.
func TestConcurrentReads(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				switch rng.Intn(3) {
				case 0:
					j := rng.Intn(n)
					v, ok, err := tr.Get(key(j), nil)
					if err != nil || !ok || !bytes.Equal(v, val(j)) {
						errs <- fmt.Errorf("Get(%d) = %q,%v,%v", j, v, ok, err)
						return
					}
				case 1:
					lo := rng.Intn(n - 10)
					cnt := 0
					if err := tr.Scan(nil, key(lo), key(lo+10), nil, func(k, v []byte) ([]byte, bool, error) {
						cnt++
						return nil, false, nil
					}); err != nil || cnt != 10 {
						errs <- fmt.Errorf("Scan: cnt=%d err=%v", cnt, err)
						return
					}
				case 2:
					a, b := rng.Intn(n/2), n/2+rng.Intn(n/2-5)
					if err := tr.MultiScan(nil, []Interval{{key(a), key(a + 3)}, {key(b), key(b + 3)}}, nil,
						func(k, v []byte) ([]byte, bool, error) { return nil, false, nil }); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRegressionOversizedNodes pins the testing/quick seed that exposed two
// real bugs: (1) replacing a value with a larger one grew a leaf past the
// page size without splitting; (2) a borrow rotation replaced a parent's
// boundary separator with a longer key, overflowing the parent.
func TestRegressionOversizedNodes(t *testing.T) {
	if !checkQuickRandomOps(t, -1936495020866070823, false) {
		t.Fatal("regression seed failed")
	}
}
