package btree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Node page layout
//
//	byte  0      flags (bit 0: leaf)
//	bytes 1..2   number of keys n (big-endian uint16)
//	bytes 3..6   leaf: reserved (zero); internal: children[0]
//	bytes 7..    n entries
//
// Leaves carry no sibling link: pages are copy-on-write, and a next pointer
// would force every leaf update to shadow its left neighbor too. Range scans
// walk down from the root instead (scan.go).
//
// Leaf entry (front-compressed):
//
//	uvarint prefixLen   bytes shared with the previous key in this node
//	uvarint suffixLen
//	suffix bytes
//	uvarint valueLen
//	value bytes         stored value (see value tags in overflow.go)
//
// Internal entry:
//
//	uvarint prefixLen
//	uvarint suffixLen
//	suffix bytes
//	uint32 child        children[i+1]
//
// Format v2 (flag bit 1, this PR) additionally packs a seek-anchor trailer
// into the page's tail slack — the zeroed space between the last entry and
// the end of the page. Reading from the page end backwards:
//
//	last 2 bytes        anchor count r (big-endian uint16)
//	8*r bytes           anchor records, ascending entry order
//	...                 key blob (uncompressed anchor keys), grown downward
//
// Anchor record (8 bytes): entry index, entry offset, key offset, key length
// (all big-endian uint16; the key offset points either into the blob or, for
// entries whose stored prefixLen is zero, straight at the entry's suffix
// bytes, which then are the full key). Every anchorStride-th key gets an
// anchor, LevelDB restart-point style: a point lookup binary-searches the
// anchors and decodes only the one run of entries between two anchors
// instead of materializing the whole page (view.go).
//
// The trailer lives entirely in slack: the entry area is byte-identical to
// v1, encodedSize/fits/splitPoint ignore the trailer, so node fanout, split
// decisions, and the page counts of the paper's experiments are unchanged.
// v1 pages (flag bit clear) remain readable, and v2 pages degrade gracefully
// for v1 readers, which ignore unknown flag bits and decode by entry count.
// A node whose slack cannot hold at least two anchors is written as v1.
// Front compression is the paper's load-bearing optimization (Section 3.2:
// "because of the key-compression, the existence of the class-code in the
// key takes very little space"): clustered keys share long prefixes, so a
// page holds many more entries, which is exactly why the U-index competes
// with directory-based schemes.

const (
	flagLeaf    = 0x01
	flagAnchors = 0x02
	headerSize  = 1 + 2 + 4

	anchorRecSize = 8
)

// DefaultAnchorStride is the anchor spacing used when Tuning.AnchorStride
// is zero: one uncompressed seek anchor per 16 entries bounds a lazy point
// lookup to decoding at most 16 entries per page.
const DefaultAnchorStride = 16

// node is the in-memory form of a page. Keys are held fully decompressed;
// compression is applied on encode and undone on decode. A decoded node is
// immutable once committed — mutations operate on private shadow copies
// (writeOp.shadow) and commit them as new pages.
type node struct {
	id       pager.PageID
	leaf     bool
	keys     [][]byte
	vals     [][]byte       // leaf only: stored values (tagged, see overflow.go)
	children []pager.PageID // internal only: len(keys)+1
	// decodedBytes is the size of the entry area this node was decoded
	// from (stats only: the bytes-decoded counter a full rematerialization
	// charges, against which the lazy view's per-run cost is compared).
	decodedBytes int
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// encodedSize returns the number of bytes the node occupies when
// serialized; noCompress computes the size without front compression.
func (n *node) encodedSize(noCompress bool) int {
	size := headerSize
	var prev []byte
	for i, k := range n.keys {
		p := 0
		if !noCompress {
			p = commonPrefix(prev, k)
		}
		s := len(k) - p
		size += uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s
		if n.leaf {
			size += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		} else {
			size += 4
		}
		prev = k
	}
	return size
}

// encode serializes the node into buf (one full page). It fails if the node
// does not fit, which callers prevent by splitting first.
func (n *node) encode(buf []byte, noCompress bool) error {
	need := n.encodedSize(noCompress)
	if need > len(buf) {
		return fmt.Errorf("btree: node %d overflows page: %d > %d bytes", n.id, need, len(buf))
	}
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = flagLeaf
	}
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	if !n.leaf && len(n.children) > 0 {
		binary.BigEndian.PutUint32(buf[3:], uint32(n.children[0]))
	}
	off := headerSize
	var prev []byte
	for i, k := range n.keys {
		p := 0
		if !noCompress {
			p = commonPrefix(prev, k)
		}
		off += binary.PutUvarint(buf[off:], uint64(p))
		off += binary.PutUvarint(buf[off:], uint64(len(k)-p))
		off += copy(buf[off:], k[p:])
		if n.leaf {
			off += binary.PutUvarint(buf[off:], uint64(len(n.vals[i])))
			off += copy(buf[off:], n.vals[i])
		} else {
			binary.BigEndian.PutUint32(buf[off:], uint32(n.children[i+1]))
			off += 4
		}
		prev = k
	}
	return nil
}

// decode deserializes a page into a node. Key and value bytes are packed
// into two shared arenas (one allocation each instead of one per entry);
// the arenas may grow while decoding, which is safe because slices handed
// out before a growth keep their old backing array and the arena is only
// ever appended to.
func decodeNode(id pager.PageID, buf []byte) (*node, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("btree: page %d too short", id)
	}
	n := &node{id: id, leaf: buf[0]&flagLeaf != 0}
	count := int(binary.BigEndian.Uint16(buf[1:]))
	n.keys = make([][]byte, 0, count)
	// Uncompressed keys can exceed the page size (prefix re-expansion), so
	// the key arena starts at twice the page and grows when needed; values
	// are stored verbatim and always fit one page.
	karena := make([]byte, 0, 2*len(buf))
	var varena []byte
	if n.leaf {
		n.vals = make([][]byte, 0, count)
		varena = make([]byte, 0, len(buf))
	} else {
		n.children = make([]pager.PageID, 0, count+1)
		n.children = append(n.children, pager.PageID(binary.BigEndian.Uint32(buf[3:])))
	}
	off := headerSize
	var prev []byte
	readUvarint := func() (uint64, error) {
		v, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("btree: page %d corrupt at offset %d", id, off)
		}
		off += sz
		return v, nil
	}
	for i := 0; i < count; i++ {
		p, err := readUvarint()
		if err != nil {
			return nil, err
		}
		s, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if int(p) > len(prev) || off+int(s) > len(buf) {
			return nil, fmt.Errorf("btree: page %d corrupt entry %d", id, i)
		}
		start := len(karena)
		karena = append(karena, prev[:p]...)
		karena = append(karena, buf[off:off+int(s)]...)
		key := karena[start:len(karena):len(karena)]
		off += int(s)
		n.keys = append(n.keys, key)
		if n.leaf {
			vl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if off+int(vl) > len(buf) {
				return nil, fmt.Errorf("btree: page %d corrupt value %d", id, i)
			}
			vstart := len(varena)
			varena = append(varena, buf[off:off+int(vl)]...)
			n.vals = append(n.vals, varena[vstart:len(varena):len(varena)])
			off += int(vl)
		} else {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("btree: page %d corrupt child %d", id, i)
			}
			n.children = append(n.children, pager.PageID(binary.BigEndian.Uint32(buf[off:])))
			off += 4
		}
		prev = key
	}
	n.decodedBytes = off - headerSize
	return n, nil
}

// encodePage is the full serialization of a node: the v1 entry area, then —
// when stride enables anchors and the tail slack has room — the v2 anchor
// trailer.
func encodePage(n *node, buf []byte, noCompress bool, stride int) error {
	if err := n.encode(buf, noCompress); err != nil {
		return err
	}
	if stride > 0 {
		writeAnchors(n, buf, noCompress, stride)
	}
	return nil
}

// writeAnchors packs the seek-anchor trailer into the tail slack of an
// already-encoded page and sets flagAnchors. Every stride-th entry becomes
// an anchor; if the trailer does not fit the slack the stride doubles until
// it does or fewer than two anchors remain (then the page stays v1 — a lazy
// reader falls back to an allocation-free sequential walk).
func writeAnchors(n *node, buf []byte, noCompress bool, stride int) {
	if len(buf) > 0xFFFF || len(n.keys) == 0 {
		return // u16 offsets cannot address the page; keep v1
	}
	// One pass over the entries mirrors encode's layout arithmetic to
	// learn each candidate's entry offset and, when its stored prefixLen
	// is zero, where its full key already sits inside the entry.
	type candidate struct {
		idx      int
		entryOff int
		keyOff   int // absolute offset of the full key in the entry, or -1
	}
	var cands []candidate
	off := headerSize
	var prev []byte
	for i, k := range n.keys {
		p := 0
		if !noCompress {
			p = commonPrefix(prev, k)
		}
		s := len(k) - p
		if i%stride == 0 {
			koff := -1
			if p == 0 {
				koff = off + uvarintLen(uint64(p)) + uvarintLen(uint64(s))
			}
			cands = append(cands, candidate{idx: i, entryOff: off, keyOff: koff})
		}
		off += uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s
		if n.leaf {
			off += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		} else {
			off += 4
		}
		prev = k
	}
	slack := len(buf) - off
	// Thin the candidate set (every m-th, always keeping entry 0) until
	// the trailer fits the slack.
	for m := 1; ; m *= 2 {
		var picked []candidate
		blob := 0
		for j := 0; j < len(cands); j += m {
			picked = append(picked, cands[j])
			if cands[j].keyOff < 0 {
				blob += len(n.keys[cands[j].idx])
			}
		}
		if len(picked) < 2 {
			return
		}
		if 2+anchorRecSize*len(picked)+blob > slack {
			continue
		}
		r := len(picked)
		recStart := len(buf) - 2 - anchorRecSize*r
		blobOff := recStart - blob
		for j, c := range picked {
			key := n.keys[c.idx]
			koff := c.keyOff
			if koff < 0 {
				koff = blobOff
				copy(buf[blobOff:], key)
				blobOff += len(key)
			}
			rec := buf[recStart+anchorRecSize*j:]
			binary.BigEndian.PutUint16(rec[0:], uint16(c.idx))
			binary.BigEndian.PutUint16(rec[2:], uint16(c.entryOff))
			binary.BigEndian.PutUint16(rec[4:], uint16(koff))
			binary.BigEndian.PutUint16(rec[6:], uint16(len(key)))
		}
		binary.BigEndian.PutUint16(buf[len(buf)-2:], uint16(r))
		buf[0] |= flagAnchors
		return
	}
}

// insertAt inserts key (and, for leaves, val) at index i.
func (n *node) insertAt(i int, key, val []byte) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	if n.leaf {
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
	}
}

// removeAt removes the key (and value) at index i.
func (n *node) removeAt(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	if n.leaf {
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
	}
}

// insertChildAt inserts a child page id at index i of an internal node.
func (n *node) insertChildAt(i int, id pager.PageID) {
	n.children = append(n.children, 0)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = id
}

// removeChildAt removes the child at index i of an internal node.
func (n *node) removeChildAt(i int) {
	n.children = append(n.children[:i], n.children[i+1:]...)
}
