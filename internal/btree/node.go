package btree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Node page layout
//
//	byte  0      flags (bit 0: leaf)
//	bytes 1..2   number of keys n (big-endian uint16)
//	bytes 3..6   leaf: reserved (zero); internal: children[0]
//	bytes 7..    n entries
//
// Leaves carry no sibling link: pages are copy-on-write, and a next pointer
// would force every leaf update to shadow its left neighbor too. Range scans
// walk down from the root instead (scan.go).
//
// Leaf entry (front-compressed):
//
//	uvarint prefixLen   bytes shared with the previous key in this node
//	uvarint suffixLen
//	suffix bytes
//	uvarint valueLen
//	value bytes         stored value (see value tags in overflow.go)
//
// Internal entry:
//
//	uvarint prefixLen
//	uvarint suffixLen
//	suffix bytes
//	uint32 child        children[i+1]
//
// Front compression is the paper's load-bearing optimization (Section 3.2:
// "because of the key-compression, the existence of the class-code in the
// key takes very little space"): clustered keys share long prefixes, so a
// page holds many more entries, which is exactly why the U-index competes
// with directory-based schemes.

const (
	flagLeaf   = 0x01
	headerSize = 1 + 2 + 4
)

// node is the in-memory form of a page. Keys are held fully decompressed;
// compression is applied on encode and undone on decode. A decoded node is
// immutable once committed — mutations operate on private shadow copies
// (writeOp.shadow) and commit them as new pages.
type node struct {
	id       pager.PageID
	leaf     bool
	keys     [][]byte
	vals     [][]byte       // leaf only: stored values (tagged, see overflow.go)
	children []pager.PageID // internal only: len(keys)+1
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// encodedSize returns the number of bytes the node occupies when
// serialized; noCompress computes the size without front compression.
func (n *node) encodedSize(noCompress bool) int {
	size := headerSize
	var prev []byte
	for i, k := range n.keys {
		p := 0
		if !noCompress {
			p = commonPrefix(prev, k)
		}
		s := len(k) - p
		size += uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s
		if n.leaf {
			size += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		} else {
			size += 4
		}
		prev = k
	}
	return size
}

// encode serializes the node into buf (one full page). It fails if the node
// does not fit, which callers prevent by splitting first.
func (n *node) encode(buf []byte, noCompress bool) error {
	need := n.encodedSize(noCompress)
	if need > len(buf) {
		return fmt.Errorf("btree: node %d overflows page: %d > %d bytes", n.id, need, len(buf))
	}
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = flagLeaf
	}
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	if !n.leaf && len(n.children) > 0 {
		binary.BigEndian.PutUint32(buf[3:], uint32(n.children[0]))
	}
	off := headerSize
	var prev []byte
	for i, k := range n.keys {
		p := 0
		if !noCompress {
			p = commonPrefix(prev, k)
		}
		off += binary.PutUvarint(buf[off:], uint64(p))
		off += binary.PutUvarint(buf[off:], uint64(len(k)-p))
		off += copy(buf[off:], k[p:])
		if n.leaf {
			off += binary.PutUvarint(buf[off:], uint64(len(n.vals[i])))
			off += copy(buf[off:], n.vals[i])
		} else {
			binary.BigEndian.PutUint32(buf[off:], uint32(n.children[i+1]))
			off += 4
		}
		prev = k
	}
	return nil
}

// decode deserializes a page into a node.
func decodeNode(id pager.PageID, buf []byte) (*node, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("btree: page %d too short", id)
	}
	n := &node{id: id, leaf: buf[0]&flagLeaf != 0}
	count := int(binary.BigEndian.Uint16(buf[1:]))
	if !n.leaf {
		n.children = append(n.children, pager.PageID(binary.BigEndian.Uint32(buf[3:])))
	}
	off := headerSize
	var prev []byte
	readUvarint := func() (uint64, error) {
		v, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("btree: page %d corrupt at offset %d", id, off)
		}
		off += sz
		return v, nil
	}
	for i := 0; i < count; i++ {
		p, err := readUvarint()
		if err != nil {
			return nil, err
		}
		s, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if int(p) > len(prev) || off+int(s) > len(buf) {
			return nil, fmt.Errorf("btree: page %d corrupt entry %d", id, i)
		}
		key := make([]byte, int(p)+int(s))
		copy(key, prev[:p])
		copy(key[p:], buf[off:off+int(s)])
		off += int(s)
		n.keys = append(n.keys, key)
		if n.leaf {
			vl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if off+int(vl) > len(buf) {
				return nil, fmt.Errorf("btree: page %d corrupt value %d", id, i)
			}
			val := make([]byte, vl)
			copy(val, buf[off:off+int(vl)])
			off += int(vl)
			n.vals = append(n.vals, val)
		} else {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("btree: page %d corrupt child %d", id, i)
			}
			n.children = append(n.children, pager.PageID(binary.BigEndian.Uint32(buf[off:])))
			off += 4
		}
		prev = key
	}
	return n, nil
}

// insertAt inserts key (and, for leaves, val) at index i.
func (n *node) insertAt(i int, key, val []byte) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	if n.leaf {
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
	}
}

// removeAt removes the key (and value) at index i.
func (n *node) removeAt(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	if n.leaf {
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
	}
}

// insertChildAt inserts a child page id at index i of an internal node.
func (n *node) insertChildAt(i int, id pager.PageID) {
	n.children = append(n.children, 0)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = id
}

// removeChildAt removes the child at index i of an internal node.
func (n *node) removeChildAt(i int) {
	n.children = append(n.children[:i], n.children[i+1:]...)
}
