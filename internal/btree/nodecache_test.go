package btree

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pager"
)

// TestNodeCacheCoherenceRace is the cache-coherence stress test: one tree
// with the shared decoded-node cache enabled takes concurrent writer
// traffic while snapshot readers scan and re-probe their pinned versions —
// snapshots held across commits force the epoch reclaimer to free retired
// pages (firing the cache's release hook) mid-run. A second tree with the
// cache disabled receives the identical mutation schedule; the two must
// end byte-identical. Run under -race via `make stress`.
func TestNodeCacheCoherenceRace(t *testing.T) {
	cached, err := Create(pager.NewMemFile(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Create(pager.NewMemFile(0), Config{Tuning: Tuning{NodeCacheSize: -1}})
	if err != nil {
		t.Fatal(err)
	}
	genVal := func(gen, i int) []byte {
		return []byte(fmt.Sprintf("g%04d:%s", gen, key(i)))
	}
	const keys = 800
	for i := 0; i < keys; i++ {
		for _, tr := range []*Tree{cached, plain} {
			if err := tr.Insert(key(i), genVal(0, i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var done atomic.Bool
	var wg sync.WaitGroup

	// Writer: rewrite rotating slices of the key space in generations, and
	// delete/reinsert a band so pages actually retire and get freed. The
	// identical schedule goes to both trees.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for gen := 1; gen <= 12; gen++ {
			lo := (gen * 97) % keys
			for i := lo; i < lo+200; i++ {
				k := i % keys
				for _, tr := range []*Tree{cached, plain} {
					if err := tr.Insert(key(k), genVal(gen, k)); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for i := lo; i < lo+40; i++ {
				k := i % keys
				for _, tr := range []*Tree{cached, plain} {
					if _, err := tr.Delete(key(k)); err != nil {
						t.Error(err)
						return
					}
					if err := tr.Insert(key(k), genVal(gen, k)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}
	}()

	// Snapshot readers on the cached tree: each pins a version, scans it,
	// and asserts (a) every value belongs to its key, and (b) point
	// lookups inside the same snapshot reproduce the scanned values — a
	// stale cache node served after its page was freed and reused breaks
	// one of these.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; !done.Load(); round++ {
				snap := cached.Snapshot()
				type kv struct{ k, v []byte }
				var got []kv
				err := snap.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
					got = append(got, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
					return nil, false, nil
				})
				if err != nil {
					t.Error(err)
					snap.Release()
					return
				}
				for i, e := range got {
					if i > 0 && bytes.Compare(got[i-1].k, e.k) >= 0 {
						t.Errorf("g%d: scan out of order at %d", g, i)
						snap.Release()
						return
					}
					if !bytes.HasSuffix(e.v, e.k) {
						t.Errorf("g%d: value %q does not belong to key %q", g, e.v, e.k)
						snap.Release()
						return
					}
				}
				for i := g; i < len(got); i += 37 {
					v, ok, err := snap.Get(got[i].k, nil)
					if err != nil || !ok || !bytes.Equal(v, got[i].v) {
						t.Errorf("g%d: snapshot Get(%q) = %q, %v, %v; scan saw %q",
							g, got[i].k, v, ok, err, got[i].v)
						snap.Release()
						return
					}
				}
				if err := snap.Release(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The cached tree and the cache-disabled tree saw the same schedule:
	// they must agree exactly, and both must pass structural checks.
	collect := func(tr *Tree) map[string]string {
		m := map[string]string{}
		err := tr.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
			m[string(k)] = string(v)
			return nil, false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := collect(cached), collect(plain)
	if len(a) != len(b) {
		t.Fatalf("cached tree has %d keys, cache-disabled %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("divergence at %q: cached %q vs cache-disabled %q", k, v, b[k])
		}
	}
	if err := cached.Check(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCacheExactMatchAllocs pins the PR's acceptance criterion: with
// the node cache warm, a repeated exact-match lookup must allocate at most
// half of what the cache-disabled path allocates — both for the lazy point
// lookup and for the exact-match interval scan the query executor issues.
func TestNodeCacheExactMatchAllocs(t *testing.T) {
	build := func(tun Tuning) *Tree {
		tree, err := Create(pager.NewMemFile(0), Config{Tuning: tun})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			if err := tree.Insert(key(i), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.DropCache(); err != nil {
			t.Fatal(err)
		}
		// Warm the shared cache (a no-op on the disabled tree).
		err = tree.Scan(nil, nil, nil, nil, func(_, _ []byte) ([]byte, bool, error) {
			return nil, false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	cached := build(Tuning{})
	plain := build(Tuning{NodeCacheSize: -1})
	probe := key(2345)

	measureGet := func(tree *Tree) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, ok, err := tree.Get(probe, nil); err != nil || !ok {
				t.Fatalf("Get: %v ok=%v", err, ok)
			}
		})
	}
	measureExactScan := func(tree *Tree) float64 {
		ivs := []Interval{{Lo: probe, Hi: append(append([]byte(nil), probe...), 0)}} // Hi exclusive
		return testing.AllocsPerRun(200, func() {
			n := 0
			err := tree.MultiScan(nil, ivs, nil, func(_, _ []byte) ([]byte, bool, error) {
				n++
				return nil, false, nil
			})
			if err != nil || n != 1 {
				t.Fatalf("MultiScan: %v matches=%d", err, n)
			}
		})
	}
	for _, tc := range []struct {
		name       string
		warm, cold float64
	}{
		{"Get", measureGet(cached), measureGet(plain)},
		{"ExactMultiScan", measureExactScan(cached), measureExactScan(plain)},
	} {
		t.Logf("%s: warm cache %.1f allocs/op, cache disabled %.1f allocs/op", tc.name, tc.warm, tc.cold)
		if tc.warm*2 > tc.cold {
			t.Errorf("%s: warm-cache allocs %.1f not at least 2x below cache-disabled %.1f",
				tc.name, tc.warm, tc.cold)
		}
	}
}
