package btree

import (
	"testing"

	"repro/internal/pager"
)

// TestFlushMetaCOW: Flush must never overwrite the previous meta page (a
// durable checkpoint may still reference it) — it writes a fresh page and
// retires the old one, and the persisted epoch survives reopen.
func TestFlushMetaCOW(t *testing.T) {
	f := pager.NewMemFile(512)
	defer f.Close()
	tr, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	meta1 := tr.MetaPage()
	epoch1 := tr.Epoch()
	for i := 100; i < 150; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	meta2 := tr.MetaPage()
	if meta2 == meta1 {
		t.Fatalf("Flush reused meta page %d in place; must copy-on-write", meta1)
	}
	re, err := Open(f, meta2)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 150 {
		t.Fatalf("reopened Len = %d, want 150", re.Len())
	}
	if re.Epoch() <= epoch1 {
		t.Fatalf("reopened epoch = %d, want > flushed epoch %d (epochs must persist)", re.Epoch(), epoch1)
	}
	if re.Epoch() != tr.Epoch() {
		t.Fatalf("reopened epoch = %d, want %d", re.Epoch(), tr.Epoch())
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushReleasesOldMeta: repeated flushes must not leak pages — each
// retires the meta page it replaces.
func TestFlushReleasesOldMeta(t *testing.T) {
	f := pager.NewMemFile(512)
	defer f.Close()
	tr, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	before := f.NumPages()
	for i := 0; i < 10; i++ {
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if after := f.NumPages(); after != before {
		t.Fatalf("NumPages grew from %d to %d across flushes; old meta pages leak", before, after)
	}
}
