package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pager"
)

func newTree(t *testing.T, pageSize int, cfg Config) *Tree {
	t.Helper()
	f := pager.NewMemFile(pageSize)
	tr, err := Create(f, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tr
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func TestInsertGet(t *testing.T) {
	for _, cfg := range []Config{{}, {MaxEntries: 4}, {MaxEntries: 10}} {
		t.Run(fmt.Sprintf("cfg%+v", cfg), func(t *testing.T) {
			tr := newTree(t, 256, cfg)
			const n = 500
			perm := rand.New(rand.NewSource(1)).Perm(n)
			for _, i := range perm {
				if err := tr.Insert(key(i), val(i)); err != nil {
					t.Fatalf("Insert(%d): %v", i, err)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			for i := 0; i < n; i++ {
				v, ok, err := tr.Get(key(i), nil)
				if err != nil || !ok {
					t.Fatalf("Get(%d) = %v, %v", i, ok, err)
				}
				if !bytes.Equal(v, val(i)) {
					t.Fatalf("Get(%d) = %q, want %q", i, v, val(i))
				}
			}
			if _, ok, _ := tr.Get([]byte("nope"), nil); ok {
				t.Fatal("Get of absent key returned ok")
			}
		})
	}
}

func TestInsertReplace(t *testing.T) {
	tr := newTree(t, 256, Config{})
	if err := tr.Insert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", tr.Len())
	}
	v, ok, _ := tr.Get([]byte("k"), nil)
	if !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestInsertValidation(t *testing.T) {
	tr := newTree(t, 256, Config{})
	if err := tr.Insert(nil, []byte("v")); err == nil {
		t.Error("Insert(empty key) succeeded")
	}
	if err := tr.Insert(bytes.Repeat([]byte("x"), 1000), nil); err == nil {
		t.Error("Insert(huge key) succeeded")
	}
	if _, err := Create(pager.NewMemFile(256), Config{MaxEntries: 1}); err == nil {
		t.Error("Create with MaxEntries=1 succeeded")
	}
}

func TestDelete(t *testing.T) {
	for _, cfg := range []Config{{}, {MaxEntries: 4}, {MaxEntries: 10}} {
		t.Run(fmt.Sprintf("cfg%+v", cfg), func(t *testing.T) {
			tr := newTree(t, 256, cfg)
			const n = 400
			for i := 0; i < n; i++ {
				if err := tr.Insert(key(i), val(i)); err != nil {
					t.Fatal(err)
				}
			}
			perm := rand.New(rand.NewSource(2)).Perm(n)
			for step, i := range perm {
				ok, err := tr.Delete(key(i))
				if err != nil || !ok {
					t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
				}
				if step%37 == 0 {
					if err := tr.Check(); err != nil {
						t.Fatalf("Check after %d deletes: %v", step+1, err)
					}
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting everything", tr.Len())
			}
			if tr.Height() != 1 {
				t.Fatalf("Height = %d after deleting everything, want 1", tr.Height())
			}
			if ok, _ := tr.Delete(key(0)); ok {
				t.Fatal("Delete of absent key returned true")
			}
		})
	}
}

// TestRandomizedModel runs a long random op sequence against a reference
// map, checking Check() and full contents periodically.
func TestRandomizedModel(t *testing.T) {
	for _, cfg := range []Config{{}, {MaxEntries: 5}} {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%+v", cfg), func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			tr := newTree(t, 128, cfg)
			model := map[string]string{}
			keyOf := func() []byte {
				// Small key space to force collisions and deletes of
				// present keys; variable length to stress compression.
				return []byte(fmt.Sprintf("k%0*d", 1+rng.Intn(12), rng.Intn(300)))
			}
			for op := 0; op < 4000; op++ {
				k := keyOf()
				switch rng.Intn(3) {
				case 0, 1:
					v := []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
					if err := tr.Insert(k, v); err != nil {
						t.Fatalf("op %d Insert: %v", op, err)
					}
					model[string(k)] = string(v)
				case 2:
					ok, err := tr.Delete(k)
					if err != nil {
						t.Fatalf("op %d Delete: %v", op, err)
					}
					_, inModel := model[string(k)]
					if ok != inModel {
						t.Fatalf("op %d Delete(%q) = %v, model has %v", op, k, ok, inModel)
					}
					delete(model, string(k))
				}
				if op%500 == 499 {
					if err := tr.Check(); err != nil {
						t.Fatalf("op %d Check: %v", op, err)
					}
					compareToModel(t, tr, model)
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			compareToModel(t, tr, model)
		})
	}
}

func compareToModel(t *testing.T, tr *Tree, model map[string]string) {
	t.Helper()
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", tr.Len(), len(model))
	}
	got := map[string]string{}
	err := tr.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
		got[string(k)] = string(v)
		return nil, false, nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(model) {
		t.Fatalf("Scan yielded %d entries, model has %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("model[%q] = %q, tree has %q", k, v, got[k])
		}
	}
}

// TestSerializationRoundTrip flushes, drops the cache and re-reads
// everything, exercising encode/decode of every node.
func TestSerializationRoundTrip(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.DropCache(); err != nil {
		t.Fatalf("DropCache: %v", err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after reload: %v", err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(key(i), nil)
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after reload = %q, %v, %v", i, v, ok, err)
		}
	}
}

func TestOpenPersistedTree(t *testing.T) {
	f := pager.NewMemFile(256)
	tr, err := Create(f, Config{MaxEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := tr.MetaPage()

	re, err := Open(f, meta)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if re.Len() != 300 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	if re.cfg.MaxEntries != 6 {
		t.Fatalf("reopened MaxEntries = %d", re.cfg.MaxEntries)
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := re.Get(key(123), nil)
	if !ok || !bytes.Equal(v, val(123)) {
		t.Fatalf("reopened Get = %q, %v", v, ok)
	}
	if _, err := Open(f, tr.cur.Load().root); err == nil {
		t.Error("Open on a non-meta page succeeded")
	}
}

func TestScanRange(t *testing.T) {
	tr := newTree(t, 256, Config{})
	for i := 0; i < 500; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan(nil, key(100), key(110), nil, func(k, v []byte) ([]byte, bool, error) {
		got = append(got, string(k))
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("Scan returned %d keys, want 10: %v", len(got), got)
	}
	for i, k := range got {
		if k != string(key(100+i)) {
			t.Fatalf("Scan[%d] = %q", i, k)
		}
	}
	// Early stop.
	count := 0
	err = tr.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
		count++
		return nil, count == 7, nil
	})
	if err != nil || count != 7 {
		t.Fatalf("early stop scan: count=%d err=%v", count, err)
	}
}

func TestScanCountsPages(t *testing.T) {
	tr := newTree(t, 256, Config{})
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A full scan must touch at least every leaf.
	trk := pager.NewTracker()
	n := 0
	if err := tr.Scan(nil, nil, nil, trk, func(k, v []byte) ([]byte, bool, error) {
		n++
		return nil, false, nil
	}); err != nil {
		t.Fatal(err)
	}
	pages, err := tr.PageCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("scanned %d entries", n)
	}
	if trk.Reads() < pages/2 {
		t.Fatalf("full scan read %d pages of %d", trk.Reads(), pages)
	}
	// A point lookup touches exactly height pages.
	trk2 := pager.NewTracker()
	if _, ok, _ := tr.Get(key(1234), trk2); !ok {
		t.Fatal("Get failed")
	}
	if trk2.Reads() != tr.Height() {
		t.Fatalf("point lookup read %d pages, height is %d", trk2.Reads(), tr.Height())
	}
}

func TestCursor(t *testing.T) {
	tr := newTree(t, 256, Config{})
	for i := 0; i < 100; i += 2 { // even keys only
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(nil)
	c.Seek(key(31)) // absent; lands on 32
	if !c.Valid() || !bytes.Equal(c.Key(), key(32)) {
		t.Fatalf("Seek(31) landed on %q valid=%v", c.Key(), c.Valid())
	}
	v, err := c.Value()
	if err != nil || !bytes.Equal(v, val(32)) {
		t.Fatalf("Value = %q, %v", v, err)
	}
	c.Next()
	if !bytes.Equal(c.Key(), key(34)) {
		t.Fatalf("Next landed on %q", c.Key())
	}
	c.Seek(key(99))
	if c.Valid() {
		t.Fatal("Seek past the end is valid")
	}
	c.First()
	if !c.Valid() || !bytes.Equal(c.Key(), key(0)) {
		t.Fatal("First broken")
	}
	n := 0
	for c.First(); c.Valid(); c.Next() {
		n++
	}
	if n != 50 || c.Err() != nil {
		t.Fatalf("full cursor walk saw %d entries, err=%v", n, c.Err())
	}
	if _, err := c.Value(); err == nil {
		t.Error("Value on invalid cursor succeeded")
	}
}

func TestNormalizeIntervals(t *testing.T) {
	b := func(s string) []byte { return []byte(s) }
	ivs := NormalizeIntervals([]Interval{
		{b("m"), b("p")},
		{b("a"), b("c")},
		{b("b"), b("d")}, // overlaps previous
		{b("d"), b("e")}, // touches
		{b("x"), b("x")}, // empty
	})
	want := []Interval{{b("a"), b("e")}, {b("m"), b("p")}}
	if len(ivs) != len(want) {
		t.Fatalf("got %d intervals: %+v", len(ivs), ivs)
	}
	for i := range want {
		if !bytes.Equal(ivs[i].Lo, want[i].Lo) || !bytes.Equal(ivs[i].Hi, want[i].Hi) {
			t.Fatalf("interval %d = %q..%q", i, ivs[i].Lo, ivs[i].Hi)
		}
	}
	// nil bounds merge to widest.
	ivs = NormalizeIntervals([]Interval{{b("k"), nil}, {nil, b("c")}, {b("a"), b("b")}})
	if len(ivs) != 2 || ivs[0].Lo != nil || ivs[1].Hi != nil {
		t.Fatalf("nil-bound normalize: %+v", ivs)
	}
}

func TestMultiScan(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	ivs := []Interval{
		{key(10), key(20)},
		{key(500), key(505)},
		{key(990), nil},
	}
	var got []string
	err := tr.MultiScan(nil, ivs, nil, func(k, v []byte) ([]byte, bool, error) {
		got = append(got, string(k))
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 10; i < 20; i++ {
		want = append(want, string(key(i)))
	}
	for i := 500; i < 505; i++ {
		want = append(want, string(key(i)))
	}
	for i := 990; i < n; i++ {
		want = append(want, string(key(i)))
	}
	if len(got) != len(want) {
		t.Fatalf("MultiScan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MultiScan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMultiScanPageEfficiency is the paper's Table-1 point (queries 3 vs 3b,
// 4 vs 4b): for dispersed intervals, the parallel algorithm must touch far
// fewer pages than a forward scan across the whole span.
func TestMultiScanPageEfficiency(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	ivs := []Interval{{key(0), key(5)}, {key(2500), key(2505)}, {key(4990), key(4995)}}

	trkPar := pager.NewTracker()
	parCount := 0
	if err := tr.MultiScan(nil, ivs, trkPar, func(k, v []byte) ([]byte, bool, error) {
		parCount++
		return nil, false, nil
	}); err != nil {
		t.Fatal(err)
	}

	trkFwd := pager.NewTracker()
	fwdCount := 0
	if err := tr.Scan(nil, key(0), key(4995), trkFwd, func(k, v []byte) ([]byte, bool, error) {
		for _, iv := range ivs {
			if iv.contains(k) {
				fwdCount++
				break
			}
		}
		return nil, false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if parCount != 15 || fwdCount != 15 {
		t.Fatalf("match counts: parallel %d, forward %d, want 15", parCount, fwdCount)
	}
	if trkPar.Reads()*10 > trkFwd.Reads() {
		t.Fatalf("parallel scan read %d pages, forward %d; expected >10x advantage",
			trkPar.Reads(), trkFwd.Reads())
	}
}

func TestMultiScanSkip(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Visit one key then skip ahead by 100 each time.
	var got []string
	next := 0
	err := tr.MultiScan(nil, []Interval{{key(0), nil}}, nil, func(k, v []byte) ([]byte, bool, error) {
		got = append(got, string(k))
		next += 100
		if next >= n {
			return nil, true, nil
		}
		return key(next), false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("skip scan saw %d keys: %v", len(got), got)
	}
	for i, k := range got {
		if k != string(key(i*100)) {
			t.Fatalf("skip scan [%d] = %q", i, k)
		}
	}
	// A skip that does not advance must error.
	err = tr.MultiScan(nil, []Interval{{key(0), nil}}, nil, func(k, v []byte) ([]byte, bool, error) {
		return key(0), false, nil
	})
	if err == nil {
		t.Fatal("non-advancing skip succeeded")
	}
}

// TestMultiScanSkipSavesPages checks the skip mechanism prunes whole
// subtrees (the paper's parent-node skip for queries with mid-path
// predicates).
func TestMultiScanSkipSavesPages(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	trk := pager.NewTracker()
	seen := 0
	err := tr.MultiScan(nil, []Interval{{nil, nil}}, trk, func(k, v []byte) ([]byte, bool, error) {
		seen++
		if seen == 1 {
			return key(n - 2), false, nil // jump over almost everything
		}
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 { // key 0, key n-2, key n-1
		t.Fatalf("saw %d keys, want 3", seen)
	}
	pages, _ := tr.PageCount()
	if trk.Reads() > pages/10 {
		t.Fatalf("skip scan read %d of %d pages", trk.Reads(), pages)
	}
}

func TestMultiScanMatchesScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := newTree(t, 128, Config{})
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		var ivs []Interval
		for j := 0; j < 1+rng.Intn(5); j++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a > b {
				a, b = b, a
			}
			ivs = append(ivs, Interval{key(a), key(b)})
		}
		var multi []string
		if err := tr.MultiScan(nil, ivs, nil, func(k, v []byte) ([]byte, bool, error) {
			multi = append(multi, string(k))
			return nil, false, nil
		}); err != nil {
			t.Fatal(err)
		}
		var fwd []string
		norm := NormalizeIntervals(ivs)
		if err := tr.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
			for _, iv := range norm {
				if iv.contains(k) {
					fwd = append(fwd, string(k))
					break
				}
			}
			return nil, false, nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(multi) != len(fwd) {
			t.Fatalf("trial %d: multi %d keys, forward %d", trial, len(multi), len(fwd))
		}
		for i := range multi {
			if multi[i] != fwd[i] {
				t.Fatalf("trial %d: divergence at %d: %q vs %q", trial, i, multi[i], fwd[i])
			}
		}
	}
}

func TestBulkLoad(t *testing.T) {
	for _, cfg := range []Config{{}, {MaxEntries: 10}} {
		t.Run(fmt.Sprintf("cfg%+v", cfg), func(t *testing.T) {
			tr := newTree(t, 256, cfg)
			const n = 3000
			keys := make([][]byte, n)
			vals := make([][]byte, n)
			for i := range keys {
				keys[i], vals[i] = key(i), val(i)
			}
			if err := tr.BulkLoad(SliceSource(keys, vals)); err != nil {
				t.Fatalf("BulkLoad: %v", err)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			for i := 0; i < n; i += 97 {
				v, ok, err := tr.Get(keys[i], nil)
				if err != nil || !ok || !bytes.Equal(v, vals[i]) {
					t.Fatalf("Get(%d) = %q, %v, %v", i, v, ok, err)
				}
			}
			// The tree must remain fully mutable after a bulk load.
			if err := tr.Insert([]byte("key-0000005a"), []byte("new")); err != nil {
				t.Fatal(err)
			}
			if ok, err := tr.Delete(key(1000)); !ok || err != nil {
				t.Fatal("Delete after BulkLoad failed")
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("Check after post-load mutations: %v", err)
			}
		})
	}
}

func TestBulkLoadValidation(t *testing.T) {
	tr := newTree(t, 256, Config{})
	err := tr.BulkLoad(SliceSource([][]byte{key(2), key(1)}, nil))
	if err == nil {
		t.Error("BulkLoad with descending keys succeeded")
	}
	tr2 := newTree(t, 256, Config{})
	if err := tr2.Insert(key(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tr2.BulkLoad(SliceSource([][]byte{key(2)}, nil)); err == nil {
		t.Error("BulkLoad into non-empty tree succeeded")
	}
	tr3 := newTree(t, 256, Config{})
	if err := tr3.BulkLoad(SliceSource(nil, nil)); err != nil {
		t.Errorf("BulkLoad of nothing: %v", err)
	}
	if err := tr3.Check(); err != nil {
		t.Error(err)
	}
	if err := tr3.Insert(key(1), val(1)); err != nil {
		t.Errorf("Insert after empty BulkLoad: %v", err)
	}
}

func TestBulkLoadEqualsInsertLoad(t *testing.T) {
	const n = 2000
	bulk := newTree(t, 256, Config{})
	inc := newTree(t, 256, Config{})
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i], vals[i] = key(i), val(i)
		if err := inc.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulk.BulkLoad(SliceSource(keys, vals)); err != nil {
		t.Fatal(err)
	}
	var a, b []string
	collect := func(tr *Tree, out *[]string) {
		if err := tr.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
			*out = append(*out, string(k)+"="+string(v))
			return nil, false, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	collect(bulk, &a)
	collect(inc, &b)
	if len(a) != len(b) {
		t.Fatalf("bulk has %d entries, incremental %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Bulk load should not need more pages than incremental build.
	pa, _ := bulk.PageCount()
	pb, _ := inc.PageCount()
	if pa > pb*3/2 {
		t.Fatalf("bulk load used %d pages, incremental %d", pa, pb)
	}
}

func TestOverflowValues(t *testing.T) {
	f := pager.NewMemFile(256)
	tr, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 5000)
	if err := tr.Insert([]byte("big"), big); err != nil {
		t.Fatalf("Insert big value: %v", err)
	}
	trk := pager.NewTracker()
	v, ok, err := tr.Get([]byte("big"), trk)
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("Get big = %d bytes, %v, %v", len(v), ok, err)
	}
	// Reading the value must account for the overflow chain pages.
	wantChain := (len(big) + 251) / 252
	if trk.Reads() < wantChain {
		t.Fatalf("big read touched %d pages, chain alone is %d", trk.Reads(), wantChain)
	}
	// Replacing the value must free the old chain.
	before := f.NumPages()
	if err := tr.Insert([]byte("big"), []byte("small now")); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() >= before {
		t.Fatalf("pages did not shrink after replacing overflow value: %d -> %d", before, f.NumPages())
	}
	// And delete must free chains too.
	if err := tr.Insert([]byte("big2"), big); err != nil {
		t.Fatal(err)
	}
	mid := f.NumPages()
	if _, err := tr.Delete([]byte("big2")); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() >= mid {
		t.Fatal("pages did not shrink after deleting overflow value")
	}
	// Overflow values survive serialization.
	if err := tr.Insert([]byte("big3"), big); err != nil {
		t.Fatal(err)
	}
	if err := tr.DropCache(); err != nil {
		t.Fatal(err)
	}
	v, ok, err = tr.Get([]byte("big3"), nil)
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("Get big3 after reload failed: %v %v", ok, err)
	}
}

func TestFrontCompressionRaisesFanout(t *testing.T) {
	// Keys sharing a long prefix must pack far more densely than random
	// keys of the same length — the paper's core storage argument.
	shared := newTree(t, 256, Config{})
	random := newTree(t, 256, Config{})
	rng := rand.New(rand.NewSource(5))
	const n = 2000
	prefix := "customer/order/2026/region-north/"
	randKeys := make([]string, n)
	for i := range randKeys {
		b := make([]byte, len(prefix)+6)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		randKeys[i] = string(b)
	}
	sort.Strings(randKeys)
	for i := 0; i < n; i++ {
		if err := shared.Insert([]byte(fmt.Sprintf("%s%06d", prefix, i)), nil); err != nil {
			t.Fatal(err)
		}
		if err := random.Insert([]byte(randKeys[i]), nil); err != nil {
			t.Fatal(err)
		}
	}
	ps, _ := shared.PageCount()
	pr, _ := random.PageCount()
	if ps*2 > pr {
		t.Fatalf("compression ineffective: shared-prefix tree %d pages, random tree %d", ps, pr)
	}
}

func TestShortestSep(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"abc", "abd", "abd"},
		{"abc", "abdzzz", "abd"},
		{"a", "ab", "ab"},
		{"car", "cat", "cat"},
		{"app", "apple", "appl"},
		{"x", "y", "y"},
	}
	for _, tc := range cases {
		got := shortestSep([]byte(tc.a), []byte(tc.b))
		if string(got) != tc.want {
			t.Errorf("shortestSep(%q, %q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
		if !(tc.a < string(got) && string(got) <= tc.b) {
			t.Errorf("shortestSep(%q, %q) = %q violates a < s <= b", tc.a, tc.b, got)
		}
	}
}

func TestCountModeMatchesPaper(t *testing.T) {
	// Experiment 1 geometry: max 10 entries per node. With n records the
	// paper expects roughly n/ (m/2 avg fill) leaves; just validate the
	// cap is respected everywhere via Check and that the node count is in
	// a plausible band.
	tr := newTree(t, 1024, Config{MaxEntries: 10})
	const n = 2000
	perm := rand.New(rand.NewSource(10)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	pages, _ := tr.PageCount()
	if pages < n/10 || pages > n/2 {
		t.Fatalf("count-mode tree has %d pages for %d entries", pages, n)
	}
}

func TestTreeStats(t *testing.T) {
	tr := newTree(t, 256, Config{})
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != n || st.Height != tr.Height() {
		t.Fatalf("stats = %+v", st)
	}
	if st.LeafNodes == 0 || st.InternalNodes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LeafFill < 0.3 || st.LeafFill > 1.0 {
		t.Fatalf("implausible leaf fill %f", st.LeafFill)
	}
	// Sequential keys share long prefixes: compression keeps the mean
	// entry under the raw key size.
	if st.BytesPerEntry >= float64(len(key(0))) {
		t.Fatalf("BytesPerEntry = %f, raw key is %d bytes", st.BytesPerEntry, len(key(0)))
	}
	// Count-mode fill is measured in entries.
	tc := newTree(t, 1024, Config{MaxEntries: 10})
	for i := 0; i < 500; i++ {
		if err := tc.Insert(key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	stc, err := tc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stc.LeafFill < 0.4 || stc.LeafFill > 1.0 {
		t.Fatalf("count-mode fill %f", stc.LeafFill)
	}
}
