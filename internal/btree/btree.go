// Package btree implements the single uniform structure underlying the
// U-index (Gudes, Section 3.2): a B+-tree over variable-length byte-string
// keys with front compression inside every node, stored in fixed-size pages.
//
// The tree supports two capacity modes. In byte mode (the default) a node
// holds as many entries as fit its serialized, front-compressed page image —
// so compression genuinely raises fanout, which is the effect the paper's
// large experiment depends on. In count mode (Config.MaxEntries > 0) a node
// holds at most MaxEntries keys, reproducing the paper's first experiment
// ("we used a small node size m = 10", Section 5).
//
// All reads are accounted through a pager.Tracker so the benchmark harness
// can report the paper's "number of pages read / nodes visited" metric.
package btree

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bufferpool"
	"repro/internal/pager"
)

// ErrSnapshotReleased is returned by operations on a released Snap.
var ErrSnapshotReleased = errors.New("btree: snapshot released")

// Config controls tree geometry.
type Config struct {
	// MaxEntries, when positive, caps every node at MaxEntries keys
	// (count mode). When zero, nodes are limited by page size only
	// (byte mode).
	MaxEntries int
	// NoCompression disables front compression of keys (ablation: the
	// paper's storage argument in Section 4.2 is that compression makes
	// the long composite keys nearly free; turning it off quantifies
	// that claim).
	NoCompression bool
	// Tuning holds the read-path knobs; the zero value selects defaults.
	Tuning Tuning
}

// Tuning holds read-path performance knobs. They never change what a query
// returns or how many logical pages it touches (the tracker counts a page
// before any cache is consulted) — only how much CPU and allocation the
// read path spends. Tuning is runtime-only state: it is not persisted in
// the tree's meta page, so the same file may be opened with different
// tuning on different runs.
type Tuning struct {
	// NodeCacheSize caps the tree's shared decoded-node cache, in nodes.
	// 0 selects DefaultNodeCacheSize; a negative value disables the
	// cache (every fetch decodes, as before this cache existed).
	NodeCacheSize int
	// AnchorStride K writes a seek anchor (an uncompressed copy of every
	// K-th key, plus its entry offset) into the tail slack of each page
	// written, enabling lazy point lookups that decode one run of K
	// entries instead of the whole page. 0 selects DefaultAnchorStride;
	// a negative value writes legacy v1 pages with no anchor trailer.
	AnchorStride int
	// NoPrefetch disables the multi-interval scan's frontier prefetcher
	// even when the tree's page file supports batched read-ahead
	// (prefetch.go). Prefetch is pure read-ahead: it never changes what a
	// scan returns or the logical pages it touches, only when the
	// physical I/O happens.
	NoPrefetch bool
}

// version is one immutable published state of the tree. Mutations never
// modify a version's pages: every commit builds fresh pages along the
// changed root-to-leaf path (copy-on-write), writes them to the page file,
// and atomically publishes a new version. Readers load the pointer once and
// traverse a frozen tree.
type version struct {
	root  pager.PageID
	hgt   int // 1 = root is a leaf
	count int
	epoch uint64
}

// Tree is a multi-version B+-tree. Writers never block readers: mutations
// (Insert, Delete, BulkLoad) are serialized by a per-tree writer mutex and
// commit by publishing a new immutable version via an atomic pointer, while
// read operations pin the current version (a cheap epoch registration in the
// bufferpool.Reclaimer), traverse it without any tree-level lock, and unpin.
// Superseded pages are retired to the Reclaimer and freed once no snapshot
// pins an epoch that can reach them — with no snapshots open, space is
// reclaimed at commit, so the page footprint matches an update-in-place
// tree.
//
// Snapshot returns a long-lived pinned version with the read surface; the
// per-operation reads below are one-shot snapshots. The decoded-node cache
// (ncache) is shared by every reader, snapshot, and the writer: committed
// pages are immutable, so their decoded form can be handed out without
// copying. Coherence is by invalidation — commit drops retired ids and the
// Reclaimer's release hook drops an id the moment its page is freed, before
// the allocator can reuse it (nodecache.go).
type Tree struct {
	wmu        sync.Mutex // serializes mutations; commit publishes cur
	f          pager.File
	cfg        Config
	meta       pager.PageID
	cur        atomic.Pointer[version]
	rec        *bufferpool.Reclaimer
	ncache     *nodeCache   // shared decoded-node cache; nil = disabled
	pf         prefetchPool // batched read-ahead surface of f; nil = no prefetch
	anchorK    int          // anchor stride for pages written; 0 = v1 pages
	noCompress bool
}

const (
	treeMagic = 0x55425452 // "UBTR"
)

// Create initializes a new tree in the (fresh region of the) given page
// file and returns it.
func Create(f pager.File, cfg Config) (*Tree, error) {
	if cfg.MaxEntries == 1 {
		return nil, fmt.Errorf("btree: MaxEntries must be 0 or >= 2")
	}
	t := &Tree{f: f, cfg: cfg, rec: bufferpool.NewReclaimer(f)}
	if cfg.NoCompression {
		t.noCompress = true
	}
	t.applyTuning(cfg.Tuning)
	metaID, err := f.Alloc()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	rootID, err := f.Alloc()
	if err != nil {
		return nil, err
	}
	// The empty root leaf is written out immediately: readers traverse
	// published versions straight from the page file.
	root := &node{id: rootID, leaf: true}
	buf := make([]byte, f.PageSize())
	if err := encodePage(root, buf, t.noCompress, t.anchorK); err != nil {
		return nil, err
	}
	if err := f.Write(rootID, buf); err != nil {
		return nil, err
	}
	t.cur.Store(&version{root: rootID, hgt: 1})
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads a tree previously persisted (via Flush or Close) at the given
// meta page of the page file, with default tuning.
func Open(f pager.File, meta pager.PageID) (*Tree, error) {
	return OpenTuned(f, meta, Tuning{})
}

// OpenTuned is Open with explicit read-path tuning. Geometry (MaxEntries,
// compression) always comes from the meta page; tuning is runtime-only and
// may differ from the run that wrote the file — pages written before this
// format carried anchors remain fully readable, and pages written with
// anchors degrade gracefully for readers that ignore them.
func OpenTuned(f pager.File, meta pager.PageID, tun Tuning) (*Tree, error) {
	buf := make([]byte, f.PageSize())
	if err := f.Read(meta, buf); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(buf[0:]) != treeMagic {
		return nil, fmt.Errorf("btree: page %d is not a tree meta page", meta)
	}
	t := &Tree{
		f:    f,
		meta: meta,
		cfg:  Config{MaxEntries: int(binary.BigEndian.Uint32(buf[20:])), NoCompression: buf[24] == 1, Tuning: tun},
		rec:  bufferpool.NewReclaimer(f),
	}
	t.noCompress = t.cfg.NoCompression
	t.applyTuning(tun)
	t.cur.Store(&version{
		root:  pager.PageID(binary.BigEndian.Uint32(buf[4:])),
		hgt:   int(binary.BigEndian.Uint32(buf[8:])),
		count: int(binary.BigEndian.Uint64(buf[12:])),
		// The epoch persists across reopen so that epochs keep increasing
		// monotonically over the file's whole lifetime (meta pages written
		// before the epoch field carry zero, which reads back as the old
		// behaviour of restarting at 0).
		epoch: binary.BigEndian.Uint64(buf[28:]),
	})
	return t, nil
}

// applyTuning resolves the tuning knobs and registers the cache's release
// hook with the reclaimer (before the tree is shared, so no locking races).
func (t *Tree) applyTuning(tun Tuning) {
	t.ncache = newNodeCache(tun.NodeCacheSize)
	if t.ncache != nil {
		t.rec.SetReleaseHook(t.ncache.invalidate)
	}
	switch {
	case tun.AnchorStride < 0:
		t.anchorK = 0
	case tun.AnchorStride == 0:
		t.anchorK = DefaultAnchorStride
	default:
		t.anchorK = tun.AnchorStride
	}
	t.pf = nil
	if !tun.NoPrefetch {
		if pf, ok := t.f.(prefetchPool); ok {
			t.pf = pf
		}
	}
}

// NodeCacheStats reports the shared decoded-node cache's cumulative hit and
// miss counters and its current size. All zeros when the cache is disabled.
func (t *Tree) NodeCacheStats() CacheStats { return t.ncache.stats() }

// MetaPage returns the page id holding the tree's metadata; pass it to Open.
func (t *Tree) MetaPage() pager.PageID { return t.meta }

// writeMeta persists the published version to the tree's current meta page
// in place. Only Create may use it, when the meta page is freshly allocated
// and cannot be part of any durable checkpoint yet; all later metadata
// writes go through writeMetaCOW.
func (t *Tree) writeMeta() error {
	v := t.cur.Load()
	buf := make([]byte, t.f.PageSize())
	binary.BigEndian.PutUint32(buf[0:], treeMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(v.root))
	binary.BigEndian.PutUint32(buf[8:], uint32(v.hgt))
	binary.BigEndian.PutUint64(buf[12:], uint64(v.count))
	binary.BigEndian.PutUint32(buf[20:], uint32(t.cfg.MaxEntries))
	if t.noCompress {
		buf[24] = 1
	}
	binary.BigEndian.PutUint64(buf[28:], v.epoch)
	return t.f.Write(t.meta, buf)
}

// writeMetaCOW persists the metadata shadow-style: it writes a freshly
// allocated meta page and frees the previous one, so a page that a durable
// checkpoint can reach is never overwritten. MetaPage therefore changes on
// every Flush; callers persisting the tree must record the new id (the
// uindex facade publishes it through the page file's checkpoint payload).
// Requires t.wmu.
func (t *Tree) writeMetaCOW() error {
	id, err := t.f.Alloc()
	if err != nil {
		return err
	}
	old := t.meta
	t.meta = id
	if err := t.writeMeta(); err != nil {
		t.meta = old
		_ = t.f.Free(id)
		return err
	}
	return t.f.Free(old)
}

// pin registers a one-operation snapshot: it atomically loads the current
// version and pins its epoch, so a concurrent commit cannot free the pages
// the operation is about to traverse. The returned release func must be
// called when the operation finishes.
func (t *Tree) pin() (*version, func() error) {
	var v *version
	epoch := t.rec.Pin(func() uint64 {
		v = t.cur.Load()
		return v.epoch
	})
	return v, func() error { return t.rec.Unpin(epoch) }
}

// readOp is the per-operation state of one read-only traversal: a private
// decoded-node map (a page decoded once is free for the rest of the
// operation, whatever happens to the shared cache meanwhile) plus two
// scratch buffers — one page image and one key-reconstruction buffer —
// reused across every node the operation visits, so a traversal's steady
// state allocates nothing.
type readOp struct {
	t     *Tree
	local map[pager.PageID]*node
	pbuf  []byte // page image scratch; decodeNode copies out of it
	kbuf  []byte // key scratch for lazy page views (view.go)
}

// page reads a page image into the op's reusable scratch buffer. The
// returned slice is only valid until the next page call.
func (o *readOp) page(id pager.PageID) ([]byte, error) {
	if o.pbuf == nil {
		o.pbuf = make([]byte, o.t.f.PageSize())
	}
	if err := o.t.f.Read(id, o.pbuf); err != nil {
		return nil, err
	}
	return o.pbuf, nil
}

// fetch returns the decoded node for a page, recording the access in the
// tracker first — the logical page counts of the paper's experiments are
// computed before any cache gets a say, which is what keeps them identical
// with the cache on, off, or cold. Lookup order: the op's private map, the
// tree's shared cache (hit: free), then a full decode, which is installed
// in the shared cache for every later reader.
func (o *readOp) fetch(id pager.PageID, tr *pager.Tracker) (*node, error) {
	tr.Touch(id)
	if n, ok := o.local[id]; ok {
		return n, nil
	}
	if n, ok := o.t.ncache.get(id); ok {
		tr.NoteNodeCache(true, 0)
		o.localPut(id, n)
		return n, nil
	}
	buf, err := o.page(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(id, buf)
	if err != nil {
		return nil, err
	}
	tr.NoteNodeCache(false, n.decodedBytes)
	o.t.ncache.put(n)
	o.localPut(id, n)
	return n, nil
}

func (o *readOp) localPut(id pager.PageID, n *node) {
	if o.local == nil {
		o.local = make(map[pager.PageID]*node)
	}
	o.local[id] = n
}

// fits reports whether the node respects the capacity limit.
func (t *Tree) fits(n *node) bool {
	if t.cfg.MaxEntries > 0 {
		return len(n.keys) <= t.cfg.MaxEntries && n.encodedSize(t.noCompress) <= t.f.PageSize()
	}
	return n.encodedSize(t.noCompress) <= t.f.PageSize()
}

// underfull reports whether a non-root node is below the minimum fill.
func (t *Tree) underfull(n *node) bool {
	if t.cfg.MaxEntries > 0 {
		return len(n.keys) < t.cfg.MaxEntries/2
	}
	return n.encodedSize(t.noCompress) < t.f.PageSize()/3
}

// maxKeySize is the largest key the tree accepts; a page must be able to
// hold at least two uncompressed entries.
func (t *Tree) maxKeySize() int {
	return (t.f.PageSize() - headerSize) / 3
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.cur.Load().count }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.cur.Load().hgt }

// Epoch returns the epoch of the current published version; it advances by
// one per committed mutation.
func (t *Tree) Epoch() uint64 { return t.cur.Load().epoch }

// Flush persists the tree metadata to the page file. Node pages are written
// at commit time (copy-on-write), so the metadata is all Flush has left to
// do; Open at MetaPage restores the flushed version. The metadata is
// written copy-on-write — MetaPage returns a new id after every Flush — so
// that a crash-consistent checkpoint of the page file never has a reachable
// page overwritten underneath it.
func (t *Tree) Flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.writeMetaCOW()
}

// DropCache drops the tree's shared decoded-node cache and persists the
// tree metadata (copy-on-write, like Flush). Benchmarks call this between
// build and measurement to model a cold cache; page-level caching across
// reads remains the buffer pool's job.
func (t *Tree) DropCache() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.ncache.clear()
	return t.writeMetaCOW()
}

// Get returns the value stored under key. The returned slice is owned by
// the caller.
func (t *Tree) Get(key []byte, tr *pager.Tracker) ([]byte, bool, error) {
	v, release := t.pin()
	defer release()
	return t.getAt(v, key, tr)
}

// getAt is the point-lookup descent. Nodes found in the shared cache are
// searched in decoded form; on a cache miss the lookup goes lazy — it works
// straight off the page image in the op's scratch buffer, binary-searching
// the page's anchor trailer and decoding only one run of entries (view.go).
// Point lookups deliberately do not install nodes in the cache: they never
// pay for a full decode, so there is nothing worth keeping.
func (t *Tree) getAt(v *version, key []byte, tr *pager.Tracker) ([]byte, bool, error) {
	op := &readOp{t: t}
	id := v.root
	for {
		tr.Touch(id)
		if n, ok := t.ncache.get(id); ok {
			tr.NoteNodeCache(true, 0)
			if n.leaf {
				i, ok := findKey(n.keys, key)
				if !ok {
					return nil, false, nil
				}
				return t.loadValueCopy(n.vals[i], tr)
			}
			id = n.children[findChild(n.keys, key)]
			continue
		}
		buf, err := op.page(id)
		if err != nil {
			return nil, false, err
		}
		if buf[0]&flagLeaf != 0 {
			stored, ok, read, err := pageLeafGet(buf, key, &op.kbuf)
			tr.NoteNodeCache(false, read)
			if err != nil || !ok {
				return nil, false, err
			}
			return t.loadValueCopy(stored, tr)
		}
		next, read, err := pageSeekChild(buf, key, &op.kbuf)
		tr.NoteNodeCache(false, read)
		if err != nil {
			return nil, false, err
		}
		id = next
	}
}

// loadValueCopy materializes a stored value into caller-owned memory: the
// cached-node path must not leak slices aliasing the shared cache, and the
// lazy path must not leak slices aliasing a scratch buffer.
func (t *Tree) loadValueCopy(stored []byte, tr *pager.Tracker) ([]byte, bool, error) {
	val, err := t.loadValue(stored, tr)
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), val...), true, nil
}

// findChild returns the index of the child subtree that may contain key:
// the first i with key < keys[i], or len(keys).
func findChild(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool {
		return bytes.Compare(key, keys[i]) < 0
	})
}

// findKey returns the position of key in keys (or where it would be
// inserted) and whether it is present.
func findKey(keys [][]byte, key []byte) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool {
		return bytes.Compare(keys[i], key) >= 0
	})
	return i, i < len(keys) && bytes.Equal(keys[i], key)
}

// shortestSep returns the shortest byte string s with a < s <= b. It is
// used as the separator pushed up on a leaf split (the paper's CG-tree
// implementation calls the analogous feature "best splitting key search";
// suffix truncation keeps internal nodes dense for both structures).
func shortestSep(a, b []byte) []byte {
	i := commonPrefix(a, b)
	if i == len(b) {
		// b <= a contradicts a < b; only possible when b is a prefix
		// of a, which also contradicts a < b. Defensive copy of b.
		return append([]byte(nil), b...)
	}
	return append([]byte(nil), b[:i+1]...)
}

// ctxErr reports a context's cancellation; a nil context never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// OverflowPageCount returns the number of pages held by value overflow
// chains, by walking the leaf level.
func (t *Tree) OverflowPageCount() (int, error) {
	v, release := t.pin()
	defer release()
	op := &readOp{t: t}
	total := 0
	var walk func(id pager.PageID) error
	walk = func(id pager.PageID) error {
		n, err := op.fetch(id, nil)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, val := range n.vals {
				total += t.overflowPages(val)
			}
			return nil
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(v.root); err != nil {
		return 0, err
	}
	return total, nil
}

// PageCount returns the number of tree pages (internal + leaf), excluding
// the meta page and overflow chains. It walks the tree.
func (t *Tree) PageCount() (int, error) {
	v, release := t.pin()
	defer release()
	return (&readOp{t: t}).countPages(v.root)
}

func (o *readOp) countPages(id pager.PageID) (int, error) {
	n, err := o.fetch(id, nil)
	if err != nil {
		return 0, err
	}
	total := 1
	if !n.leaf {
		for _, c := range n.children {
			sub, err := o.countPages(c)
			if err != nil {
				return 0, err
			}
			total += sub
		}
	}
	return total, nil
}

// TreeStats summarizes the physical shape of the tree.
type TreeStats struct {
	Height        int
	InternalNodes int
	LeafNodes     int
	Entries       int
	// LeafFill is the mean serialized fill fraction of leaf pages (count
	// mode reports entries/MaxEntries instead).
	LeafFill float64
	// BytesPerEntry is the mean serialized leaf bytes per entry — the
	// number front compression drives down.
	BytesPerEntry float64
}

// Stats walks the tree and reports its physical shape.
func (t *Tree) Stats() (TreeStats, error) {
	v, release := t.pin()
	defer release()
	op := &readOp{t: t}
	st := TreeStats{Height: v.hgt, Entries: v.count}
	var fill, size float64
	var walk func(id pager.PageID) error
	walk = func(id pager.PageID) error {
		n, err := op.fetch(id, nil)
		if err != nil {
			return err
		}
		if n.leaf {
			st.LeafNodes++
			sz := n.encodedSize(t.noCompress)
			size += float64(sz - headerSize)
			if t.cfg.MaxEntries > 0 {
				fill += float64(len(n.keys)) / float64(t.cfg.MaxEntries)
			} else {
				fill += float64(sz) / float64(t.f.PageSize())
			}
			return nil
		}
		st.InternalNodes++
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(v.root); err != nil {
		return st, err
	}
	if st.LeafNodes > 0 {
		st.LeafFill = fill / float64(st.LeafNodes)
	}
	if st.Entries > 0 {
		st.BytesPerEntry = size / float64(st.Entries)
	}
	return st, nil
}
