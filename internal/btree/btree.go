// Package btree implements the single uniform structure underlying the
// U-index (Gudes, Section 3.2): a B+-tree over variable-length byte-string
// keys with front compression inside every node, stored in fixed-size pages.
//
// The tree supports two capacity modes. In byte mode (the default) a node
// holds as many entries as fit its serialized, front-compressed page image —
// so compression genuinely raises fanout, which is the effect the paper's
// large experiment depends on. In count mode (Config.MaxEntries > 0) a node
// holds at most MaxEntries keys, reproducing the paper's first experiment
// ("we used a small node size m = 10", Section 5).
//
// All reads are accounted through a pager.Tracker so the benchmark harness
// can report the paper's "number of pages read / nodes visited" metric.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/pager"
)

// Config controls tree geometry.
type Config struct {
	// MaxEntries, when positive, caps every node at MaxEntries keys
	// (count mode). When zero, nodes are limited by page size only
	// (byte mode).
	MaxEntries int
	// NoCompression disables front compression of keys (ablation: the
	// paper's storage argument in Section 4.2 is that compression makes
	// the long composite keys nearly free; turning it off quantifies
	// that claim).
	NoCompression bool
}

// Tree is a B+-tree. The concurrency contract is any number of concurrent
// readers OR a single writer: read operations (Get, Scan, MultiScan,
// cursors, Stats, PageCount) share an RLock and run in parallel, while
// mutations (Insert, Delete, BulkLoad, Flush, DropCache) take the write
// lock. The shared node cache holds nodes the *write* path has touched
// (including dirty, not-yet-flushed ones); the read path consults it
// read-only and keeps any nodes it decodes itself in per-operation local
// caches (readOp), so concurrent descents never write shared state. Page
// caching across read operations is the buffer pool's job (pager.File
// implementations are goroutine-safe).
type Tree struct {
	mu         sync.RWMutex
	f          pager.File
	cfg        Config
	meta       pager.PageID
	root       pager.PageID
	hgt        int // 1 = root is a leaf
	count      int
	cache      map[pager.PageID]*node
	noCompress bool
}

const (
	treeMagic = 0x55425452 // "UBTR"
)

// Create initializes a new tree in the (fresh region of the) given page
// file and returns it.
func Create(f pager.File, cfg Config) (*Tree, error) {
	if cfg.MaxEntries == 1 {
		return nil, fmt.Errorf("btree: MaxEntries must be 0 or >= 2")
	}
	t := &Tree{f: f, cfg: cfg, cache: make(map[pager.PageID]*node)}
	if cfg.NoCompression {
		t.noCompress = true
	}
	metaID, err := f.Alloc()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	rootID, err := f.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	t.hgt = 1
	t.cache[rootID] = &node{id: rootID, leaf: true, dirty: true}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads a tree previously persisted (via Flush or Close) at the given
// meta page of the page file.
func Open(f pager.File, meta pager.PageID) (*Tree, error) {
	buf := make([]byte, f.PageSize())
	if err := f.Read(meta, buf); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(buf[0:]) != treeMagic {
		return nil, fmt.Errorf("btree: page %d is not a tree meta page", meta)
	}
	t := &Tree{
		f:     f,
		meta:  meta,
		root:  pager.PageID(binary.BigEndian.Uint32(buf[4:])),
		hgt:   int(binary.BigEndian.Uint32(buf[8:])),
		count: int(binary.BigEndian.Uint64(buf[12:])),
		cfg:   Config{MaxEntries: int(binary.BigEndian.Uint32(buf[20:])), NoCompression: buf[24] == 1},
		cache: make(map[pager.PageID]*node),
	}
	t.noCompress = t.cfg.NoCompression
	return t, nil
}

// MetaPage returns the page id holding the tree's metadata; pass it to Open.
func (t *Tree) MetaPage() pager.PageID { return t.meta }

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.f.PageSize())
	binary.BigEndian.PutUint32(buf[0:], treeMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(t.root))
	binary.BigEndian.PutUint32(buf[8:], uint32(t.hgt))
	binary.BigEndian.PutUint64(buf[12:], uint64(t.count))
	binary.BigEndian.PutUint32(buf[20:], uint32(t.cfg.MaxEntries))
	if t.noCompress {
		buf[24] = 1
	}
	return t.f.Write(t.meta, buf)
}

// fetch returns the node for a page, reading and decoding it on a cache
// miss, and records the access in the tracker. It inserts decoded nodes
// into the shared cache and therefore must only be called from mutation
// paths holding the write lock; read paths go through a readOp.
func (t *Tree) fetch(id pager.PageID, tr *pager.Tracker) (*node, error) {
	tr.Touch(id)
	if n, ok := t.cache[id]; ok {
		return n, nil
	}
	buf := make([]byte, t.f.PageSize())
	if err := t.f.Read(id, buf); err != nil {
		return nil, err
	}
	n, err := decodeNode(id, buf)
	if err != nil {
		return nil, err
	}
	t.cache[id] = n
	return n, nil
}

// readOp is the per-operation state of one read-only traversal. It layers a
// private node cache over the tree's shared one: nodes already resident in
// the shared cache (write-path state, possibly dirty) are used directly —
// safe under the read lock, since only write-locked mutators modify them —
// and nodes the operation decodes itself stay local, so concurrent readers
// never publish into shared maps. The local cache gives a traversal the
// same "a page decoded once is free for the rest of the query" behaviour
// the shared cache used to provide, without the shared mutation.
type readOp struct {
	t     *Tree
	local map[pager.PageID]*node
}

func (t *Tree) newReadOp() *readOp { return &readOp{t: t} }

// fetch mirrors Tree.fetch for read-only traversals.
func (o *readOp) fetch(id pager.PageID, tr *pager.Tracker) (*node, error) {
	tr.Touch(id)
	if n, ok := o.t.cache[id]; ok {
		return n, nil
	}
	if n, ok := o.local[id]; ok {
		return n, nil
	}
	buf := make([]byte, o.t.f.PageSize())
	if err := o.t.f.Read(id, buf); err != nil {
		return nil, err
	}
	n, err := decodeNode(id, buf)
	if err != nil {
		return nil, err
	}
	if o.local == nil {
		o.local = make(map[pager.PageID]*node)
	}
	o.local[id] = n
	return n, nil
}

// allocNode allocates a fresh page and registers an empty dirty node for it.
func (t *Tree) allocNode(leaf bool) (*node, error) {
	id, err := t.f.Alloc()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf, dirty: true}
	t.cache[id] = n
	return n, nil
}

func (t *Tree) freeNode(n *node) error {
	delete(t.cache, n.id)
	return t.f.Free(n.id)
}

// fits reports whether the node respects the capacity limit.
func (t *Tree) fits(n *node) bool {
	if t.cfg.MaxEntries > 0 {
		return len(n.keys) <= t.cfg.MaxEntries && n.encodedSize(t.noCompress) <= t.f.PageSize()
	}
	return n.encodedSize(t.noCompress) <= t.f.PageSize()
}

// underfull reports whether a non-root node is below the minimum fill.
func (t *Tree) underfull(n *node) bool {
	if t.cfg.MaxEntries > 0 {
		return len(n.keys) < t.cfg.MaxEntries/2
	}
	return n.encodedSize(t.noCompress) < t.f.PageSize()/3
}

// maxKeySize is the largest key the tree accepts; a page must be able to
// hold at least two uncompressed entries.
func (t *Tree) maxKeySize() int {
	return (t.f.PageSize() - headerSize) / 3
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.hgt
}

// Flush serializes every dirty node and the metadata to the page file.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tree) flushLocked() error {
	buf := make([]byte, t.f.PageSize())
	for _, n := range t.cache {
		if !n.dirty {
			continue
		}
		if err := n.encode(buf, t.noCompress); err != nil {
			return err
		}
		if err := t.f.Write(n.id, buf); err != nil {
			return err
		}
		n.dirty = false
	}
	return t.writeMeta()
}

// DropCache flushes and evicts every cached node, forcing subsequent
// operations to re-read (and re-count) pages. Benchmarks call it between
// queries to model a cold buffer pool.
func (t *Tree) DropCache() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		return err
	}
	clear(t.cache)
	return nil
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte, tr *pager.Tracker) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	op := t.newReadOp()
	id := t.root
	for {
		n, err := op.fetch(id, tr)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i, ok := findKey(n.keys, key)
			if !ok {
				return nil, false, nil
			}
			v, err := t.loadValue(n.vals[i], tr)
			return v, true, err
		}
		id = n.children[findChild(n.keys, key)]
	}
}

// findChild returns the index of the child subtree that may contain key:
// the first i with key < keys[i], or len(keys).
func findChild(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool {
		return bytes.Compare(key, keys[i]) < 0
	})
}

// findKey returns the position of key in keys (or where it would be
// inserted) and whether it is present.
func findKey(keys [][]byte, key []byte) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool {
		return bytes.Compare(keys[i], key) >= 0
	})
	return i, i < len(keys) && bytes.Equal(keys[i], key)
}

// shortestSep returns the shortest byte string s with a < s <= b. It is
// used as the separator pushed up on a leaf split (the paper's CG-tree
// implementation calls the analogous feature "best splitting key search";
// suffix truncation keeps internal nodes dense for both structures).
func shortestSep(a, b []byte) []byte {
	i := commonPrefix(a, b)
	if i == len(b) {
		// b <= a contradicts a < b; only possible when b is a prefix
		// of a, which also contradicts a < b. Defensive copy of b.
		return append([]byte(nil), b...)
	}
	return append([]byte(nil), b[:i+1]...)
}

type splitResult struct {
	sep   []byte
	right pager.PageID
}

// Insert stores val under key, replacing any existing value. Keys and
// values are copied; the caller keeps ownership of its slices.
func (t *Tree) Insert(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeySize() {
		return fmt.Errorf("btree: key of %d bytes exceeds maximum %d", len(key), t.maxKeySize())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	stored, err := t.storeValue(val)
	if err != nil {
		return err
	}
	split, added, err := t.insertRec(t.root, key, stored)
	if err != nil {
		return err
	}
	if split != nil {
		// Grow a new root.
		oldRoot := t.root
		nr, err := t.allocNode(false)
		if err != nil {
			return err
		}
		nr.keys = [][]byte{split.sep}
		nr.children = []pager.PageID{oldRoot, split.right}
		t.root = nr.id
		t.hgt++
	}
	if added {
		t.count++
	}
	return nil
}

func (t *Tree) insertRec(id pager.PageID, key, stored []byte) (*splitResult, bool, error) {
	n, err := t.fetch(id, nil)
	if err != nil {
		return nil, false, err
	}
	if n.leaf {
		i, ok := findKey(n.keys, key)
		if ok {
			// Replacing a value can grow the node past the page
			// (a larger stored value); split like an insert would.
			if err := t.freeValue(n.vals[i]); err != nil {
				return nil, false, err
			}
			n.vals[i] = stored
			n.dirty = true
			if t.fits(n) {
				return nil, false, nil
			}
			split, err := t.splitLeaf(n)
			return split, false, err
		}
		kcopy := append([]byte(nil), key...)
		n.insertAt(i, kcopy, stored)
		if t.fits(n) {
			return nil, true, nil
		}
		split, err := t.splitLeaf(n)
		return split, true, err
	}
	ci := findChild(n.keys, key)
	split, added, err := t.insertRec(n.children[ci], key, stored)
	if err != nil || split == nil {
		return nil, added, err
	}
	n.insertAt(ci, split.sep, nil)
	n.insertChildAt(ci+1, split.right)
	if t.fits(n) {
		return nil, added, nil
	}
	s, err := t.splitInternal(n)
	return s, added, err
}

// splitLeaf moves the upper half of a leaf into a new right sibling and
// returns the separator to push up.
func (t *Tree) splitLeaf(n *node) (*splitResult, error) {
	at := t.splitPoint(n)
	right, err := t.allocNode(true)
	if err != nil {
		return nil, err
	}
	right.keys = append(right.keys, n.keys[at:]...)
	right.vals = append(right.vals, n.vals[at:]...)
	right.next = n.next
	n.keys = n.keys[:at:at]
	n.vals = n.vals[:at:at]
	n.next = right.id
	n.dirty = true
	sep := shortestSep(n.keys[len(n.keys)-1], right.keys[0])
	return &splitResult{sep: sep, right: right.id}, nil
}

// splitInternal promotes the middle key of an internal node and moves the
// upper half into a new right sibling.
func (t *Tree) splitInternal(n *node) (*splitResult, error) {
	at := t.splitPoint(n)
	if at == len(n.keys) {
		at--
	}
	right, err := t.allocNode(false)
	if err != nil {
		return nil, err
	}
	sep := n.keys[at]
	right.keys = append(right.keys, n.keys[at+1:]...)
	right.children = append(right.children, n.children[at+1:]...)
	n.keys = n.keys[:at:at]
	n.children = n.children[: at+1 : at+1]
	n.dirty = true
	return &splitResult{sep: sep, right: right.id}, nil
}

// splitPoint picks the index at which to split an over-full node: the
// median entry in count mode; in byte mode, the index that minimizes the
// larger serialized half, accounting for front compression (the first entry
// of the right half re-expands to its full key). The returned index is
// always in [1, len(keys)-1], so both halves are non-empty.
func (t *Tree) splitPoint(n *node) int {
	if t.cfg.MaxEntries > 0 {
		return max(1, min(len(n.keys)-1, len(n.keys)/2))
	}
	m := len(n.keys)
	sizes := make([]int, m)  // serialized size of entry i in situ
	expand := make([]int, m) // extra bytes when entry i starts a node
	var prev []byte
	total := 0
	for i, k := range n.keys {
		p := 0
		if !t.noCompress {
			p = commonPrefix(prev, k)
		}
		s := len(k) - p
		sz := uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s
		full := uvarintLen(0) + uvarintLen(uint64(len(k))) + len(k)
		if n.leaf {
			sz += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		} else {
			sz += 4
		}
		sizes[i] = sz
		expand[i] = full - (uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s)
		total += sz
		prev = k
	}
	best, bestCost := 1, int(^uint(0)>>1)
	left := sizes[0]
	for at := 1; at < m; at++ {
		var right int
		if n.leaf {
			right = total - left + expand[at]
		} else {
			// The separator keys[at] is promoted, not stored, and
			// the right half starts with keys[at+1].
			right = total - left - sizes[at]
			if at+1 < m {
				right += expand[at+1]
			}
		}
		if cost := max(left, right); cost < bestCost {
			best, bestCost = at, cost
		}
		left += sizes[at]
	}
	return best
}

// Delete removes key from the tree. It reports whether the key was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	type frame struct {
		n  *node
		ci int // child index taken from this node
	}
	var path []frame
	n, err := t.fetch(t.root, nil)
	if err != nil {
		return false, err
	}
	for !n.leaf {
		ci := findChild(n.keys, key)
		path = append(path, frame{n, ci})
		n, err = t.fetch(n.children[ci], nil)
		if err != nil {
			return false, err
		}
	}
	i, ok := findKey(n.keys, key)
	if !ok {
		return false, nil
	}
	if err := t.freeValue(n.vals[i]); err != nil {
		return false, err
	}
	n.removeAt(i)
	t.count--

	// Rebalance bottom-up.
	child := n
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		parent, ci := path[lvl].n, path[lvl].ci
		if !t.underfull(child) {
			break
		}
		if err := t.rebalance(parent, ci); err != nil {
			return false, err
		}
		child = parent
	}
	// Collapse the root when it is an internal node with a single child.
	for {
		r, err := t.fetch(t.root, nil)
		if err != nil {
			return false, err
		}
		if r.leaf || len(r.keys) > 0 {
			break
		}
		t.root = r.children[0]
		t.hgt--
		if err := t.freeNode(r); err != nil {
			return false, err
		}
	}
	return true, nil
}

// rebalance restores the fill of parent.children[ci] by borrowing from or
// merging with an adjacent sibling. If neither is possible (byte mode with
// incompatible sizes) the node is left underfull, which affects space
// utilization but never correctness.
func (t *Tree) rebalance(parent *node, ci int) error {
	child, err := t.fetch(parent.children[ci], nil)
	if err != nil {
		return err
	}
	var left, right *node
	if ci > 0 {
		if left, err = t.fetch(parent.children[ci-1], nil); err != nil {
			return err
		}
	}
	if ci < len(parent.children)-1 {
		if right, err = t.fetch(parent.children[ci+1], nil); err != nil {
			return err
		}
	}

	// Borrow from the richer sibling while it stays above minimum. A
	// rotation can overflow the receiver (a long key moves in) or the
	// parent (the boundary separator is replaced by a longer one); both
	// cases are undone exactly.
	if left != nil && t.canDonate(left) {
		for t.underfull(child) && t.canDonate(left) {
			savedSep := parent.keys[ci-1]
			t.rotateRight(parent, ci-1, left, child)
			if !t.fits(child) || !t.fits(parent) {
				t.rotateLeft(parent, ci-1, left, child)
				parent.keys[ci-1] = savedSep
				break
			}
		}
		if !t.underfull(child) {
			return nil
		}
	}
	if right != nil && t.canDonate(right) {
		for t.underfull(child) && t.canDonate(right) {
			savedSep := parent.keys[ci]
			t.rotateLeft(parent, ci, child, right)
			if !t.fits(child) || !t.fits(parent) {
				t.rotateRight(parent, ci, child, right)
				parent.keys[ci] = savedSep
				break
			}
		}
		if !t.underfull(child) {
			return nil
		}
	}
	// Merge with a sibling when the result fits one node.
	if left != nil && t.canMerge(left, child, parent.keys[ci-1]) {
		return t.merge(parent, ci-1, left, child)
	}
	if right != nil && t.canMerge(child, right, parent.keys[ci]) {
		return t.merge(parent, ci, child, right)
	}
	return nil
}

// canDonate reports whether a node can give up one entry and stay at or
// above the minimum fill.
func (t *Tree) canDonate(n *node) bool {
	if len(n.keys) <= 1 {
		return false
	}
	if t.cfg.MaxEntries > 0 {
		return len(n.keys)-1 >= t.cfg.MaxEntries/2
	}
	// Approximate: dropping the largest entry must keep it above min.
	return n.encodedSize(t.noCompress)*(len(n.keys)-1)/len(n.keys) >= t.f.PageSize()/3
}

func (t *Tree) canMerge(l, r *node, sep []byte) bool {
	merged := l.encodedSize(t.noCompress) + r.encodedSize(t.noCompress) - headerSize
	if !l.leaf {
		merged += len(sep) + 6
	}
	if merged > t.f.PageSize() {
		return false
	}
	if t.cfg.MaxEntries > 0 {
		n := len(l.keys) + len(r.keys)
		if !l.leaf {
			n++
		}
		return n <= t.cfg.MaxEntries
	}
	return true
}

// rotateLeft moves the smallest entry of right into left (the child being
// refilled is left). si is the separator index in parent between the two.
func (t *Tree) rotateLeft(parent *node, si int, left, right *node) {
	if left.leaf {
		left.keys = append(left.keys, right.keys[0])
		left.vals = append(left.vals, right.vals[0])
		right.removeAt(0)
		parent.keys[si] = shortestSep(left.keys[len(left.keys)-1], right.keys[0])
	} else {
		left.keys = append(left.keys, parent.keys[si])
		left.children = append(left.children, right.children[0])
		parent.keys[si] = right.keys[0]
		right.removeAt(0)
		right.removeChildAt(0)
	}
	left.dirty, right.dirty, parent.dirty = true, true, true
}

// rotateRight moves the largest entry of left into right.
func (t *Tree) rotateRight(parent *node, si int, left, right *node) {
	last := len(left.keys) - 1
	if left.leaf {
		right.insertAt(0, left.keys[last], left.vals[last])
		left.removeAt(last)
		parent.keys[si] = shortestSep(left.keys[len(left.keys)-1], right.keys[0])
	} else {
		right.insertAt(0, parent.keys[si], nil)
		right.insertChildAt(0, left.children[len(left.children)-1])
		parent.keys[si] = left.keys[last]
		left.removeAt(last)
		left.removeChildAt(len(left.children) - 1)
	}
	left.dirty, right.dirty, parent.dirty = true, true, true
}

// merge folds right into left and removes the separator at parent.keys[si].
func (t *Tree) merge(parent *node, si int, left, right *node) error {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, parent.keys[si])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	left.dirty = true
	parent.removeAt(si)
	parent.removeChildAt(si + 1)
	return t.freeNode(right)
}

// OverflowPageCount returns the number of pages held by value overflow
// chains, by walking the leaf level.
func (t *Tree) OverflowPageCount() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	op := t.newReadOp()
	n, err := op.descendToLeaf(nil, nil)
	if err != nil {
		return 0, err
	}
	total := 0
	for {
		for _, v := range n.vals {
			total += t.overflowPages(v)
		}
		if n.next == pager.NilPage {
			return total, nil
		}
		if n, err = op.fetch(n.next, nil); err != nil {
			return 0, err
		}
	}
}

// PageCount returns the number of tree pages (internal + leaf), excluding
// the meta page and overflow chains. It walks the tree.
func (t *Tree) PageCount() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.newReadOp().countPages(t.root)
}

func (o *readOp) countPages(id pager.PageID) (int, error) {
	n, err := o.fetch(id, nil)
	if err != nil {
		return 0, err
	}
	total := 1
	if !n.leaf {
		for _, c := range n.children {
			sub, err := o.countPages(c)
			if err != nil {
				return 0, err
			}
			total += sub
		}
	}
	return total, nil
}

// TreeStats summarizes the physical shape of the tree.
type TreeStats struct {
	Height        int
	InternalNodes int
	LeafNodes     int
	Entries       int
	// LeafFill is the mean serialized fill fraction of leaf pages (count
	// mode reports entries/MaxEntries instead).
	LeafFill float64
	// BytesPerEntry is the mean serialized leaf bytes per entry — the
	// number front compression drives down.
	BytesPerEntry float64
}

// Stats walks the tree and reports its physical shape.
func (t *Tree) Stats() (TreeStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	op := t.newReadOp()
	st := TreeStats{Height: t.hgt, Entries: t.count}
	var fill, bytes float64
	var walk func(id pager.PageID) error
	walk = func(id pager.PageID) error {
		n, err := op.fetch(id, nil)
		if err != nil {
			return err
		}
		if n.leaf {
			st.LeafNodes++
			sz := n.encodedSize(t.noCompress)
			bytes += float64(sz - headerSize)
			if t.cfg.MaxEntries > 0 {
				fill += float64(len(n.keys)) / float64(t.cfg.MaxEntries)
			} else {
				fill += float64(sz) / float64(t.f.PageSize())
			}
			return nil
		}
		st.InternalNodes++
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return st, err
	}
	if st.LeafNodes > 0 {
		st.LeafFill = fill / float64(st.LeafNodes)
	}
	if st.Entries > 0 {
		st.BytesPerEntry = bytes / float64(st.Entries)
	}
	return st, nil
}
