package btree

import (
	"context"
	"sync/atomic"

	"repro/internal/pager"
)

// Snap is a long-lived pinned snapshot of the tree: an immutable read view
// of the version current when Snapshot was called. Reads through a Snap
// never observe later commits, and the pages the snapshot can reach are not
// reclaimed until Release. A Snap is safe for concurrent use; Release may be
// called once (further calls are no-ops) and must be called, or superseded
// pages accumulate for as long as the snapshot is live.
type Snap struct {
	t        *Tree
	v        *version
	released atomic.Bool
}

// Snapshot pins the current version and returns it as a read view.
func (t *Tree) Snapshot() *Snap {
	v, _ := t.pinKeep()
	return &Snap{t: t, v: v}
}

// pinKeep is pin without the release closure; the caller keeps the version
// and unpins via rec.Unpin(v.epoch) later.
func (t *Tree) pinKeep() (*version, uint64) {
	var v *version
	epoch := t.rec.Pin(func() uint64 {
		v = t.cur.Load()
		return v.epoch
	})
	return v, epoch
}

// Release unpins the snapshot. Pages superseded since the snapshot was taken
// become reclaimable once no older pin remains. Release is idempotent.
func (s *Snap) Release() error {
	if s.released.Swap(true) {
		return nil
	}
	return s.t.rec.Unpin(s.v.epoch)
}

// Epoch returns the epoch of the pinned version.
func (s *Snap) Epoch() uint64 { return s.v.epoch }

// Len returns the number of keys in the snapshot.
func (s *Snap) Len() int { return s.v.count }

// Height returns the number of levels of the snapshot (1 = root is a leaf).
func (s *Snap) Height() int { return s.v.hgt }

// Get returns the value stored under key in the snapshot.
func (s *Snap) Get(key []byte, tr *pager.Tracker) ([]byte, bool, error) {
	if s.released.Load() {
		return nil, false, ErrSnapshotReleased
	}
	return s.t.getAt(s.v, key, tr)
}

// MultiScan runs the parallel retrieval algorithm against the snapshot.
func (s *Snap) MultiScan(ctx context.Context, ivs []Interval, tr *pager.Tracker, fn ScanFunc) error {
	if s.released.Load() {
		return ErrSnapshotReleased
	}
	return s.t.multiScanAt(ctx, s.v, ivs, tr, fn, false)
}

// MultiScanKeys is MultiScan without value materialization; fn receives a
// nil value (see Tree.MultiScanKeys).
func (s *Snap) MultiScanKeys(ctx context.Context, ivs []Interval, tr *pager.Tracker, fn ScanFunc) error {
	if s.released.Load() {
		return ErrSnapshotReleased
	}
	return s.t.multiScanAt(ctx, s.v, ivs, tr, fn, true)
}

// Scan runs the forward-scanning baseline against the snapshot.
func (s *Snap) Scan(ctx context.Context, lo, hi []byte, tr *pager.Tracker, fn ScanFunc) error {
	if s.released.Load() {
		return ErrSnapshotReleased
	}
	return s.t.scanAt(ctx, s.v, lo, hi, tr, fn, false)
}

// ScanKeys is Scan without value materialization; fn receives a nil value.
func (s *Snap) ScanKeys(ctx context.Context, lo, hi []byte, tr *pager.Tracker, fn ScanFunc) error {
	if s.released.Load() {
		return ErrSnapshotReleased
	}
	return s.t.scanAt(ctx, s.v, lo, hi, tr, fn, true)
}
