package btree

import (
	"fmt"

	"repro/internal/pager"
)

// writeOp is one copy-on-write mutation in flight, always under the tree's
// writer mutex. Committed nodes are immutable: the op shadows every node on
// the changed path into a fresh page, mutates the private copies, and at
// commit writes them out, publishes the new version, and hands the
// superseded pages to the epoch reclaimer. Until commit nothing the op did
// is visible, so an error aborts by freeing the op's own pages and leaving
// the published version untouched.
type writeOp struct {
	t         *Tree
	fresh     map[pager.PageID]*node // pages this op created, by id
	allocated []pager.PageID         // every page this op allocated (nodes + overflow)
	retired   []pager.PageID         // committed pages this op superseded
	discarded []pager.PageID         // fresh pages the op created then dropped
}

func (t *Tree) newWriteOp() *writeOp {
	return &writeOp{t: t, fresh: make(map[pager.PageID]*node)}
}

// alloc allocates a page and records it for the abort path.
func (w *writeOp) alloc() (pager.PageID, error) {
	id, err := w.t.f.Alloc()
	if err != nil {
		return pager.NilPage, err
	}
	w.allocated = append(w.allocated, id)
	return id, nil
}

// allocNode creates a fresh private node on a newly allocated page.
func (w *writeOp) allocNode(leaf bool) (*node, error) {
	id, err := w.alloc()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf}
	w.fresh[id] = n
	return n, nil
}

// fetch returns the node for a page: the op's own fresh copy, the shared
// decoded-node cache's committed node, or a fresh decode (installed in the
// shared cache — the decoded form of a committed page serves readers just
// as well as the writer).
func (w *writeOp) fetch(id pager.PageID) (*node, error) {
	if n, ok := w.fresh[id]; ok {
		return n, nil
	}
	if n, ok := w.t.ncache.get(id); ok {
		return n, nil
	}
	buf := make([]byte, w.t.f.PageSize())
	if err := w.t.f.Read(id, buf); err != nil {
		return nil, err
	}
	n, err := decodeNode(id, buf)
	if err != nil {
		return nil, err
	}
	w.t.ncache.put(n)
	return n, nil
}

// shadow returns a mutable private copy of n on a fresh page, retiring the
// committed page. Slice headers are copied into fresh backing arrays so
// in-place edits of the shadow never reach the committed node; the key and
// value byte slices themselves are shared — they are never mutated, only
// replaced. Shadowing a node the op already owns returns it unchanged.
func (w *writeOp) shadow(n *node) (*node, error) {
	if _, ok := w.fresh[n.id]; ok {
		return n, nil
	}
	id, err := w.alloc()
	if err != nil {
		return nil, err
	}
	s := &node{id: id, leaf: n.leaf}
	s.keys = append(make([][]byte, 0, len(n.keys)+1), n.keys...)
	if n.leaf {
		s.vals = append(make([][]byte, 0, len(n.vals)+1), n.vals...)
	} else {
		s.children = append(make([]pager.PageID, 0, len(n.children)+1), n.children...)
	}
	w.fresh[id] = s
	w.retired = append(w.retired, n.id)
	return s, nil
}

// freeNode releases a node the mutation no longer needs: a committed node is
// retired (older snapshots may still read it), a fresh one is discarded (it
// was never visible and its page is freed at commit).
func (w *writeOp) freeNode(n *node) {
	if _, ok := w.fresh[n.id]; ok {
		delete(w.fresh, n.id)
		w.discarded = append(w.discarded, n.id)
		return
	}
	w.retired = append(w.retired, n.id)
}

// commit makes the mutation visible: every fresh node is encoded and written
// to the page file first, then the new version is published atomically and
// the superseded pages are retired under the reclaimer's lock — a reader
// that loads the new version finds all its pages on disk, and a reader
// pinned to an older epoch keeps the pages it can reach until it releases.
func (w *writeOp) commit(root pager.PageID, hgt, count int) error {
	t := w.t
	buf := make([]byte, t.f.PageSize())
	for _, n := range w.fresh {
		if err := encodePage(n, buf, t.noCompress, t.anchorK); err != nil {
			return w.abort(err)
		}
		if err := t.f.Write(n.id, buf); err != nil {
			return w.abort(err)
		}
	}
	old := t.cur.Load()
	nv := &version{root: root, hgt: hgt, count: count, epoch: old.epoch + 1}
	// Install the committed nodes in the shared cache (their pages are on
	// disk already, and their ids are unreachable until publish) and drop
	// the retired ids. A pinned reader may legitimately re-decode and
	// re-install a retired id after this — its content is still correct
	// for that reader — and the reclaimer's release hook drops the id
	// again, for good, the moment the page is freed for reuse.
	for _, n := range w.fresh {
		n.decodedBytes = n.encodedSize(t.noCompress) - headerSize
		t.ncache.put(n)
	}
	for _, id := range w.retired {
		t.ncache.invalidate(id)
	}
	err := t.rec.Commit(nv.epoch, w.retired, func() { t.cur.Store(nv) })
	for _, id := range w.discarded {
		if ferr := t.f.Free(id); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// abort undoes the op: every page it allocated is freed and the published
// version is left exactly as it was. The op's ids are dropped from the
// shared cache defensively — commit only installs nodes after every page
// write succeeded, so nothing should be there, but a freed id must never
// linger in the cache once the allocator can reuse it. It returns cause for
// convenience.
func (w *writeOp) abort(cause error) error {
	for _, id := range w.allocated {
		w.t.ncache.invalidate(id)
		_ = w.t.f.Free(id)
	}
	w.allocated = nil
	return cause
}

type splitResult struct {
	sep   []byte
	right pager.PageID
}

// Insert stores val under key, replacing any existing value. Keys and
// values are copied; the caller keeps ownership of its slices. The mutation
// commits a new tree version; concurrent readers keep seeing the version
// they pinned.
func (t *Tree) Insert(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeySize() {
		return fmt.Errorf("btree: key of %d bytes exceeds maximum %d", len(key), t.maxKeySize())
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	v := t.cur.Load()
	w := t.newWriteOp()
	stored, err := w.storeValue(val)
	if err != nil {
		return w.abort(err)
	}
	newRoot, split, added, err := w.insertRec(v.root, key, stored)
	if err != nil {
		return w.abort(err)
	}
	hgt := v.hgt
	if split != nil {
		// Grow a new root.
		nr, err := w.allocNode(false)
		if err != nil {
			return w.abort(err)
		}
		nr.keys = [][]byte{split.sep}
		nr.children = []pager.PageID{newRoot, split.right}
		newRoot = nr.id
		hgt++
	}
	count := v.count
	if added {
		count++
	}
	return w.commit(newRoot, hgt, count)
}

// insertRec inserts into the subtree rooted at id and returns the id of the
// (always shadowed) replacement subtree root, plus a pending split if the
// replacement overflowed.
func (w *writeOp) insertRec(id pager.PageID, key, stored []byte) (pager.PageID, *splitResult, bool, error) {
	n, err := w.fetch(id)
	if err != nil {
		return pager.NilPage, nil, false, err
	}
	if n.leaf {
		i, ok := findKey(n.keys, key)
		s, err := w.shadow(n)
		if err != nil {
			return pager.NilPage, nil, false, err
		}
		if ok {
			// Replacing a value can grow the node past the page
			// (a larger stored value); split like an insert would.
			if err := w.retireValue(s.vals[i]); err != nil {
				return pager.NilPage, nil, false, err
			}
			s.vals[i] = stored
			if w.t.fits(s) {
				return s.id, nil, false, nil
			}
			split, err := w.splitLeaf(s)
			return s.id, split, false, err
		}
		kcopy := append([]byte(nil), key...)
		s.insertAt(i, kcopy, stored)
		if w.t.fits(s) {
			return s.id, nil, true, nil
		}
		split, err := w.splitLeaf(s)
		return s.id, split, true, err
	}
	ci := findChild(n.keys, key)
	childID, split, added, err := w.insertRec(n.children[ci], key, stored)
	if err != nil {
		return pager.NilPage, nil, false, err
	}
	s, err := w.shadow(n)
	if err != nil {
		return pager.NilPage, nil, false, err
	}
	s.children[ci] = childID
	if split == nil {
		return s.id, nil, added, nil
	}
	s.insertAt(ci, split.sep, nil)
	s.insertChildAt(ci+1, split.right)
	if w.t.fits(s) {
		return s.id, nil, added, nil
	}
	sp, err := w.splitInternal(s)
	return s.id, sp, added, err
}

// splitLeaf moves the upper half of a (fresh) leaf into a new right sibling
// and returns the separator to push up.
func (w *writeOp) splitLeaf(n *node) (*splitResult, error) {
	at := w.t.splitPoint(n)
	right, err := w.allocNode(true)
	if err != nil {
		return nil, err
	}
	right.keys = append(right.keys, n.keys[at:]...)
	right.vals = append(right.vals, n.vals[at:]...)
	n.keys = n.keys[:at:at]
	n.vals = n.vals[:at:at]
	sep := shortestSep(n.keys[len(n.keys)-1], right.keys[0])
	return &splitResult{sep: sep, right: right.id}, nil
}

// splitInternal promotes the middle key of a (fresh) internal node and moves
// the upper half into a new right sibling.
func (w *writeOp) splitInternal(n *node) (*splitResult, error) {
	at := w.t.splitPoint(n)
	if at == len(n.keys) {
		at--
	}
	right, err := w.allocNode(false)
	if err != nil {
		return nil, err
	}
	sep := n.keys[at]
	right.keys = append(right.keys, n.keys[at+1:]...)
	right.children = append(right.children, n.children[at+1:]...)
	n.keys = n.keys[:at:at]
	n.children = n.children[: at+1 : at+1]
	return &splitResult{sep: sep, right: right.id}, nil
}

// splitPoint picks the index at which to split an over-full node: the
// median entry in count mode; in byte mode, the index that minimizes the
// larger serialized half, accounting for front compression (the first entry
// of the right half re-expands to its full key). The returned index is
// always in [1, len(keys)-1], so both halves are non-empty.
func (t *Tree) splitPoint(n *node) int {
	if t.cfg.MaxEntries > 0 {
		return max(1, min(len(n.keys)-1, len(n.keys)/2))
	}
	m := len(n.keys)
	sizes := make([]int, m)  // serialized size of entry i in situ
	expand := make([]int, m) // extra bytes when entry i starts a node
	var prev []byte
	total := 0
	for i, k := range n.keys {
		p := 0
		if !t.noCompress {
			p = commonPrefix(prev, k)
		}
		s := len(k) - p
		sz := uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s
		full := uvarintLen(0) + uvarintLen(uint64(len(k))) + len(k)
		if n.leaf {
			sz += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		} else {
			sz += 4
		}
		sizes[i] = sz
		expand[i] = full - (uvarintLen(uint64(p)) + uvarintLen(uint64(s)) + s)
		total += sz
		prev = k
	}
	best, bestCost := 1, int(^uint(0)>>1)
	left := sizes[0]
	for at := 1; at < m; at++ {
		var right int
		if n.leaf {
			right = total - left + expand[at]
		} else {
			// The separator keys[at] is promoted, not stored, and
			// the right half starts with keys[at+1].
			right = total - left - sizes[at]
			if at+1 < m {
				right += expand[at+1]
			}
		}
		if cost := max(left, right); cost < bestCost {
			best, bestCost = at, cost
		}
		left += sizes[at]
	}
	return best
}

// Delete removes key from the tree. It reports whether the key was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	v := t.cur.Load()
	w := t.newWriteOp()

	// Probe the committed tree first: a miss must not churn any pages.
	id := v.root
	for {
		n, err := w.fetch(id)
		if err != nil {
			return false, err
		}
		if n.leaf {
			if _, ok := findKey(n.keys, key); !ok {
				return false, nil
			}
			break
		}
		id = n.children[findChild(n.keys, key)]
	}

	// Shadow the root-to-leaf path and delete from the private copies.
	type frame struct {
		n  *node
		ci int // child index taken from this node
	}
	var path []frame
	root, err := w.fetch(v.root)
	if err != nil {
		return false, err
	}
	cur, err := w.shadow(root)
	if err != nil {
		return false, w.abort(err)
	}
	newRoot := cur.id
	for !cur.leaf {
		ci := findChild(cur.keys, key)
		child, err := w.fetch(cur.children[ci])
		if err != nil {
			return false, w.abort(err)
		}
		sc, err := w.shadow(child)
		if err != nil {
			return false, w.abort(err)
		}
		cur.children[ci] = sc.id
		path = append(path, frame{cur, ci})
		cur = sc
	}
	i, ok := findKey(cur.keys, key)
	if !ok {
		// Unreachable after the probe; abort defensively.
		return false, w.abort(nil)
	}
	if err := w.retireValue(cur.vals[i]); err != nil {
		return false, w.abort(err)
	}
	cur.removeAt(i)

	// Rebalance bottom-up.
	child := cur
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		parent, ci := path[lvl].n, path[lvl].ci
		if !w.t.underfull(child) {
			break
		}
		if err := w.rebalance(parent, ci); err != nil {
			return false, w.abort(err)
		}
		child = parent
	}
	// Collapse the root while it is an internal node with a single child.
	hgt := v.hgt
	for {
		r, err := w.fetch(newRoot)
		if err != nil {
			return false, w.abort(err)
		}
		if r.leaf || len(r.keys) > 0 {
			break
		}
		newRoot = r.children[0]
		hgt--
		w.freeNode(r)
	}
	if err := w.commit(newRoot, hgt, v.count-1); err != nil {
		return false, err
	}
	return true, nil
}

// rebalance restores the fill of parent.children[ci] by borrowing from or
// merging with an adjacent sibling. If neither is possible (byte mode with
// incompatible sizes) the node is left underfull, which affects space
// utilization but never correctness. parent and its ci-th child are already
// fresh; siblings are shadowed lazily, only when actually modified.
func (w *writeOp) rebalance(parent *node, ci int) error {
	child, err := w.fetch(parent.children[ci])
	if err != nil {
		return err
	}
	// shadowAt gives a mutable sibling wired into the fresh parent.
	shadowAt := func(i int) (*node, error) {
		n, err := w.fetch(parent.children[i])
		if err != nil {
			return nil, err
		}
		s, err := w.shadow(n)
		if err != nil {
			return nil, err
		}
		parent.children[i] = s.id
		return s, nil
	}
	var rawLeft, rawRight *node
	if ci > 0 {
		if rawLeft, err = w.fetch(parent.children[ci-1]); err != nil {
			return err
		}
	}
	if ci < len(parent.children)-1 {
		if rawRight, err = w.fetch(parent.children[ci+1]); err != nil {
			return err
		}
	}

	// Borrow from the richer sibling while it stays above minimum. A
	// rotation can overflow the receiver (a long key moves in) or the
	// parent (the boundary separator is replaced by a longer one); both
	// cases are undone exactly.
	if rawLeft != nil && w.t.canDonate(rawLeft) {
		left, err := shadowAt(ci - 1)
		if err != nil {
			return err
		}
		rawLeft = left
		for w.t.underfull(child) && w.t.canDonate(left) {
			savedSep := parent.keys[ci-1]
			rotateRight(parent, ci-1, left, child)
			if !w.t.fits(child) || !w.t.fits(parent) {
				rotateLeft(parent, ci-1, left, child)
				parent.keys[ci-1] = savedSep
				break
			}
		}
		if !w.t.underfull(child) {
			return nil
		}
	}
	if rawRight != nil && w.t.canDonate(rawRight) {
		right, err := shadowAt(ci + 1)
		if err != nil {
			return err
		}
		rawRight = right
		for w.t.underfull(child) && w.t.canDonate(right) {
			savedSep := parent.keys[ci]
			rotateLeft(parent, ci, child, right)
			if !w.t.fits(child) || !w.t.fits(parent) {
				rotateRight(parent, ci, child, right)
				parent.keys[ci] = savedSep
				break
			}
		}
		if !w.t.underfull(child) {
			return nil
		}
	}
	// Merge with a sibling when the result fits one node. The absorbing
	// node must be fresh; the absorbed one is only read, then freed.
	if rawLeft != nil && w.t.canMerge(rawLeft, child, parent.keys[ci-1]) {
		left, err := shadowAt(ci - 1)
		if err != nil {
			return err
		}
		w.merge(parent, ci-1, left, child)
		return nil
	}
	if rawRight != nil && w.t.canMerge(child, rawRight, parent.keys[ci]) {
		w.merge(parent, ci, child, rawRight)
		return nil
	}
	return nil
}

// canDonate reports whether a node can give up one entry and stay at or
// above the minimum fill.
func (t *Tree) canDonate(n *node) bool {
	if len(n.keys) <= 1 {
		return false
	}
	if t.cfg.MaxEntries > 0 {
		return len(n.keys)-1 >= t.cfg.MaxEntries/2
	}
	// Approximate: dropping the largest entry must keep it above min.
	return n.encodedSize(t.noCompress)*(len(n.keys)-1)/len(n.keys) >= t.f.PageSize()/3
}

func (t *Tree) canMerge(l, r *node, sep []byte) bool {
	merged := l.encodedSize(t.noCompress) + r.encodedSize(t.noCompress) - headerSize
	if !l.leaf {
		merged += len(sep) + 6
	}
	if merged > t.f.PageSize() {
		return false
	}
	if t.cfg.MaxEntries > 0 {
		n := len(l.keys) + len(r.keys)
		if !l.leaf {
			n++
		}
		return n <= t.cfg.MaxEntries
	}
	return true
}

// rotateLeft moves the smallest entry of right into left (the child being
// refilled is left). si is the separator index in parent between the two.
// All three nodes must be fresh.
func rotateLeft(parent *node, si int, left, right *node) {
	if left.leaf {
		left.keys = append(left.keys, right.keys[0])
		left.vals = append(left.vals, right.vals[0])
		right.removeAt(0)
		parent.keys[si] = shortestSep(left.keys[len(left.keys)-1], right.keys[0])
	} else {
		left.keys = append(left.keys, parent.keys[si])
		left.children = append(left.children, right.children[0])
		parent.keys[si] = right.keys[0]
		right.removeAt(0)
		right.removeChildAt(0)
	}
}

// rotateRight moves the largest entry of left into right.
func rotateRight(parent *node, si int, left, right *node) {
	last := len(left.keys) - 1
	if left.leaf {
		right.insertAt(0, left.keys[last], left.vals[last])
		left.removeAt(last)
		parent.keys[si] = shortestSep(left.keys[len(left.keys)-1], right.keys[0])
	} else {
		right.insertAt(0, parent.keys[si], nil)
		right.insertChildAt(0, left.children[len(left.children)-1])
		parent.keys[si] = left.keys[last]
		left.removeAt(last)
		left.removeChildAt(len(left.children) - 1)
	}
}

// merge folds right into left (left must be fresh) and removes the separator
// at parent.keys[si]. right is released: retired when committed, discarded
// when it was created by this op.
func (w *writeOp) merge(parent *node, si int, left, right *node) {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, parent.keys[si])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	parent.removeAt(si)
	parent.removeChildAt(si + 1)
	w.freeNode(right)
}
