package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pager"
)

// Check validates the structural invariants of the current version:
//
//   - keys inside every node are strictly ascending;
//   - every key in child i of an internal node lies in [keys[i-1], keys[i]);
//   - all leaves are at the same depth, equal to Height();
//   - every node fits its page;
//   - the tree's Len matches the number of leaf entries.
//
// It is exported for tests and the fuzzing harness; production code never
// needs it.
func (t *Tree) Check() error {
	v, release := t.pin()
	defer release()
	op := &readOp{t: t}
	n, err := op.checkRec(v, v.root, 1, nil, nil)
	if err != nil {
		return err
	}
	if n != v.count {
		return fmt.Errorf("btree: count mismatch: tree says %d, leaves hold %d", v.count, n)
	}
	return nil
}

// checkRec validates the subtree at id, whose keys must lie in [lo, hi).
// It returns the number of leaf entries underneath.
func (o *readOp) checkRec(v *version, id pager.PageID, depth int, lo, hi []byte) (int, error) {
	t := o.t
	n, err := o.fetch(id, nil)
	if err != nil {
		return 0, err
	}
	if sz := n.encodedSize(t.noCompress); sz > t.f.PageSize() {
		return 0, fmt.Errorf("btree: node %d oversized: %d > %d", id, sz, t.f.PageSize())
	}
	if t.cfg.MaxEntries > 0 && len(n.keys) > t.cfg.MaxEntries {
		return 0, fmt.Errorf("btree: node %d has %d keys, above MaxEntries %d", id, len(n.keys), t.cfg.MaxEntries)
	}
	var prev []byte
	for i, k := range n.keys {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			return 0, fmt.Errorf("btree: node %d keys out of order at %d", id, i)
		}
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return 0, fmt.Errorf("btree: node %d key %d below lower bound", id, i)
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return 0, fmt.Errorf("btree: node %d key %d at or above upper bound", id, i)
		}
		prev = k
	}
	if n.leaf {
		if depth != v.hgt {
			return 0, fmt.Errorf("btree: leaf %d at depth %d, height is %d", id, depth, v.hgt)
		}
		if len(n.vals) != len(n.keys) {
			return 0, fmt.Errorf("btree: leaf %d has %d keys but %d values", id, len(n.keys), len(n.vals))
		}
		return len(n.keys), nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, fmt.Errorf("btree: internal %d has %d keys but %d children", id, len(n.keys), len(n.children))
	}
	if len(n.keys) == 0 && id != v.root {
		return 0, fmt.Errorf("btree: non-root internal %d has no keys", id)
	}
	total := 0
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		sub, err := o.checkRec(v, c, depth+1, clo, chi)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
