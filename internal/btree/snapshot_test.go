package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pager"
)

// TestSnapshotIsolation: a snapshot taken before a batch of mutations keeps
// answering from the pinned version while the live tree moves on.
func TestSnapshotIsolation(t *testing.T) {
	tree := newTree(t, 256, Config{})
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := tree.Insert(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := tree.Snapshot()
	defer snap.Release()
	wantLen := snap.Len()
	wantEpoch := snap.Epoch()

	// Mutate heavily after the snapshot: overwrites, inserts, deletes.
	for i := 0; i < 500; i += 2 {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := tree.Insert(key, []byte("overwritten")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 500; i < 700; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key-%05d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 500; i += 10 {
		if _, err := tree.Delete([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}

	if snap.Len() != wantLen || snap.Epoch() != wantEpoch {
		t.Fatalf("snapshot drifted: len %d→%d epoch %d→%d", wantLen, snap.Len(), wantEpoch, snap.Epoch())
	}
	// Every original key reads its original value through the snapshot.
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, ok, err := snap.Get(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("snapshot Get(%s) = %q ok=%v", key, v, ok)
		}
	}
	// Keys inserted after the snapshot are invisible to it.
	if _, ok, _ := snap.Get([]byte("key-00600"), nil); ok {
		t.Fatal("snapshot sees a post-snapshot insert")
	}
	// A snapshot range scan sees exactly the original keys.
	n := 0
	err := snap.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) {
		n++
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != wantLen {
		t.Fatalf("snapshot scan saw %d keys, want %d", n, wantLen)
	}
	// The live tree sees the new state.
	if v, ok, _ := tree.Get([]byte("key-00000"), nil); !ok || string(v) != "overwritten" {
		t.Fatalf("live Get = %q ok=%v", v, ok)
	}
}

// TestSnapshotReleased: queries after Release fail with the sentinel;
// Release is idempotent.
func TestSnapshotReleased(t *testing.T) {
	tree := newTree(t, 256, Config{})
	if err := tree.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	snap := tree.Snapshot()
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snap.Get([]byte("a"), nil); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("Get after release = %v, want ErrSnapshotReleased", err)
	}
	if err := snap.Scan(nil, nil, nil, nil, func(k, v []byte) ([]byte, bool, error) { return nil, false, nil }); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("Scan after release = %v, want ErrSnapshotReleased", err)
	}
	if err := snap.MultiScan(nil, nil, nil, func(k, v []byte) ([]byte, bool, error) { return nil, false, nil }); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("MultiScan after release = %v, want ErrSnapshotReleased", err)
	}
}

// TestEpochReclamation: without open snapshots, superseded pages are freed
// at commit, so a sustained overwrite workload reaches a steady-state page
// footprint instead of growing without bound.
func TestEpochReclamation(t *testing.T) {
	f := pager.NewMemFile(256)
	tree, err := Create(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key-%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	base := f.NumPages()
	// Overwrite every key many times: each commit retires its COW path.
	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			if err := tree.Insert([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rec := tree.rec; rec.FreedPages() == 0 {
		t.Fatal("no pages reclaimed across 4000 overwrites")
	}
	grown := f.NumPages() - base
	// The file may grow a little (free-list churn), but nowhere near the
	// thousands of pages the COW commits wrote.
	if grown > base {
		t.Fatalf("file grew from %d to %d pages under steady-state overwrites", base, f.NumPages())
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}

	// With a snapshot open, superseded pages accumulate instead ...
	snap := tree.Snapshot()
	for i := 0; i < 200; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key-%04d", i)), []byte("held")); err != nil {
			t.Fatal(err)
		}
	}
	if tree.rec.PendingPages() == 0 {
		t.Fatal("open snapshot did not hold superseded pages")
	}
	// ... and drain on Release.
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if got := tree.rec.PendingPages(); got != 0 {
		t.Fatalf("PendingPages after release = %d, want 0", got)
	}
}

// TestSnapshotConcurrentWithWriter runs a committing writer against readers
// holding snapshots; under -race this is the regression test for the
// pin/publish handshake. Each reader verifies its snapshot is internally
// consistent: the scan count matches the pinned Len.
func TestSnapshotConcurrentWithWriter(t *testing.T) {
	tree := newTree(t, 512, Config{})
	for i := 0; i < 1000; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key-%05d", i)), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	var wg sync.WaitGroup
	writerDone.Add(1)
	go func() { // writer: inserts, overwrites, deletes
		defer writerDone.Done()
		i := 1000
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tree.Insert([]byte(fmt.Sprintf("key-%05d", i)), []byte("w")); err != nil {
				t.Error(err)
				return
			}
			if _, err := tree.Delete([]byte(fmt.Sprintf("key-%05d", i-500))); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				snap := tree.Snapshot()
				want := snap.Len()
				got := 0
				var prev []byte
				err := snap.Scan(nil, nil, nil, nil, func(key, v []byte) ([]byte, bool, error) {
					if prev != nil && bytes.Compare(prev, key) >= 0 {
						t.Errorf("out-of-order keys %q >= %q", prev, key)
						return nil, true, nil
					}
					prev = append(prev[:0], key...)
					got++
					return nil, false, nil
				})
				if err != nil {
					t.Error(err)
				} else if got != want {
					t.Errorf("snapshot scan saw %d keys, pinned Len is %d", got, want)
				}
				if err := snap.Release(); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait() // readers finish first; then stop the writer
	close(stop)
	writerDone.Wait()
}
