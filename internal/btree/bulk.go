package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pager"
)

// EntrySource yields key/value pairs in strictly ascending key order for
// BulkLoad. It returns ok=false when exhausted.
type EntrySource func() (key, val []byte, ok bool, err error)

// SliceSource adapts in-memory sorted entries to an EntrySource.
func SliceSource(keys, vals [][]byte) EntrySource {
	i := 0
	return func() ([]byte, []byte, bool, error) {
		if i >= len(keys) {
			return nil, nil, false, nil
		}
		var v []byte
		if vals != nil {
			v = vals[i]
		}
		k := keys[i]
		i++
		return k, v, true, nil
	}
}

// bulkFillFraction leaves headroom in bulk-loaded nodes so that subsequent
// inserts do not immediately split every page.
const bulkFillFraction = 0.90

// BulkLoad builds the tree bottom-up from a sorted entry stream. It is far
// faster than repeated Insert for large builds (the 150,000-object databases
// of the paper's Section 5 experiments) and produces near-optimally packed
// pages. The tree must be empty.
func (t *Tree) BulkLoad(src EntrySource) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count != 0 {
		return fmt.Errorf("btree: BulkLoad requires an empty tree")
	}

	limit := int(float64(t.f.PageSize()) * bulkFillFraction)
	maxEntries := t.cfg.MaxEntries
	if maxEntries > 0 {
		maxEntries = max(2, maxEntries*9/10)
	}

	// Level 0: pack leaves.
	type built struct {
		id       pager.PageID
		firstKey []byte
		lastKey  []byte
	}
	var level []built
	var prevKey []byte
	var prevLeaf *node
	cur, err := t.allocNode(true)
	if err != nil {
		return err
	}
	count := 0
	seal := func() error {
		if prevLeaf != nil {
			prevLeaf.next = cur.id
		}
		level = append(level, built{cur.id, cur.keys[0], cur.keys[len(cur.keys)-1]})
		prevLeaf = cur
		var err error
		cur, err = t.allocNode(true)
		return err
	}
	for {
		key, val, ok, err := src()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if len(key) == 0 || len(key) > t.maxKeySize() {
			return fmt.Errorf("btree: BulkLoad key of %d bytes invalid", len(key))
		}
		if prevKey != nil && bytes.Compare(prevKey, key) >= 0 {
			return fmt.Errorf("btree: BulkLoad keys not strictly ascending at %q", key)
		}
		stored, err := t.storeValue(val)
		if err != nil {
			return err
		}
		kcopy := append([]byte(nil), key...)
		cur.keys = append(cur.keys, kcopy)
		cur.vals = append(cur.vals, stored)
		cur.dirty = true
		count++
		prevKey = kcopy
		sz := cur.encodedSize(t.noCompress)
		if sz > t.f.PageSize() && len(cur.keys) > 1 {
			// The soft fill limit leaves headroom, but one large entry
			// (a near-threshold inline value) can still push the leaf
			// past the page itself; move it into the next leaf so a
			// sealed node always fits its page.
			last := len(cur.keys) - 1
			k, v := cur.keys[last], cur.vals[last]
			cur.keys = cur.keys[:last:last]
			cur.vals = cur.vals[:last:last]
			if err := seal(); err != nil {
				return err
			}
			cur.keys = append(cur.keys, k)
			cur.vals = append(cur.vals, v)
			cur.dirty = true
			sz = cur.encodedSize(t.noCompress)
		}
		full := sz > limit
		if maxEntries > 0 {
			full = full || len(cur.keys) >= maxEntries
		}
		if full {
			if err := seal(); err != nil {
				return err
			}
		}
	}
	if len(cur.keys) > 0 {
		if prevLeaf != nil {
			prevLeaf.next = cur.id
		}
		level = append(level, built{cur.id, cur.keys[0], cur.keys[len(cur.keys)-1]})
	} else {
		if err := t.freeNode(cur); err != nil {
			return err
		}
	}
	if len(level) == 0 {
		// Empty input: keep the pre-allocated empty root leaf intact.
		t.count = 0
		return nil
	}

	// Separator between adjacent leaves i-1 and i: the shortest key above
	// everything in leaf i-1 and at most the first key of leaf i. We use
	// the first key of leaf i directly when computing from built info is
	// unavailable; prevKey tracking gives us the tighter separator.
	seps := make([][]byte, len(level)) // seps[i] separates level[i-1] | level[i]
	for i := 1; i < len(level); i++ {
		seps[i] = shortestSep(level[i-1].lastKey, level[i].firstKey)
	}

	// Replace the original empty root.
	if err := t.freeNode(t.cache[t.root]); err != nil {
		return err
	}

	// Upper levels: pack (separator, child) pairs into internal nodes;
	// when a node fills, the separator at the boundary is promoted to the
	// level above instead of stored.
	height := 1
	for len(level) > 1 {
		var nextLevel []built
		var promoted [][]byte
		node, err := t.allocNode(false)
		if err != nil {
			return err
		}
		node.children = append(node.children, level[0].id)
		node.dirty = true
		for i := 1; i < len(level); i++ {
			sep, child := seps[i], level[i].id
			node.keys = append(node.keys, sep)
			node.children = append(node.children, child)
			full := node.encodedSize(t.noCompress) > limit
			if maxEntries > 0 {
				full = full || len(node.keys) > maxEntries
			}
			if full && len(node.keys) > 1 {
				// Undo, seal the node, promote the separator.
				node.keys = node.keys[:len(node.keys)-1]
				node.children = node.children[:len(node.children)-1]
				nextLevel = append(nextLevel, built{node.id, nil, nil})
				promoted = append(promoted, sep)
				if node, err = t.allocNode(false); err != nil {
					return err
				}
				node.children = append(node.children, child)
				node.dirty = true
			}
		}
		nextLevel = append(nextLevel, built{node.id, nil, nil})
		// promoted[j] separates nextLevel[j] | nextLevel[j+1]; realign
		// to the seps convention (seps[i] separates level[i-1]|level[i]).
		ns := make([][]byte, len(nextLevel))
		copy(ns[1:], promoted)
		level, seps = nextLevel, ns
		height++
	}
	t.root = level[0].id
	t.hgt = height
	t.count = count
	return nil
}
