package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pager"
)

// EntrySource yields key/value pairs in strictly ascending key order for
// BulkLoad. It returns ok=false when exhausted.
type EntrySource func() (key, val []byte, ok bool, err error)

// SliceSource adapts in-memory sorted entries to an EntrySource.
func SliceSource(keys, vals [][]byte) EntrySource {
	i := 0
	return func() ([]byte, []byte, bool, error) {
		if i >= len(keys) {
			return nil, nil, false, nil
		}
		var v []byte
		if vals != nil {
			v = vals[i]
		}
		k := keys[i]
		i++
		return k, v, true, nil
	}
}

// bulkFillFraction leaves headroom in bulk-loaded nodes so that subsequent
// inserts do not immediately split every page.
const bulkFillFraction = 0.90

// BulkLoad builds the tree bottom-up from a sorted entry stream. It is far
// faster than repeated Insert for large builds (the 150,000-object databases
// of the paper's Section 5 experiments) and produces near-optimally packed
// pages. The tree must be empty. The build is one mutation: nodes are
// allocated, encoded, and written as they seal (never held in memory beyond
// the level being packed), and the finished tree is published as one new
// version at the end — a concurrent reader sees the empty tree until then.
func (t *Tree) BulkLoad(src EntrySource) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	v := t.cur.Load()
	if v.count != 0 {
		return fmt.Errorf("btree: BulkLoad requires an empty tree")
	}
	w := t.newWriteOp()

	limit := int(float64(t.f.PageSize()) * bulkFillFraction)
	maxEntries := t.cfg.MaxEntries
	if maxEntries > 0 {
		maxEntries = max(2, maxEntries*9/10)
	}

	// seal allocates a page for the packed node and writes it out.
	buf := make([]byte, t.f.PageSize())
	seal := func(n *node) (pager.PageID, error) {
		id, err := w.alloc()
		if err != nil {
			return pager.NilPage, err
		}
		n.id = id
		if err := encodePage(n, buf, t.noCompress, t.anchorK); err != nil {
			return pager.NilPage, err
		}
		return id, t.f.Write(id, buf)
	}

	// Level 0: pack leaves.
	type built struct {
		id       pager.PageID
		firstKey []byte
		lastKey  []byte
	}
	var level []built
	var prevKey []byte
	cur := &node{leaf: true}
	count := 0
	sealLeaf := func() error {
		id, err := seal(cur)
		if err != nil {
			return err
		}
		level = append(level, built{id, cur.keys[0], cur.keys[len(cur.keys)-1]})
		cur = &node{leaf: true}
		return nil
	}
	for {
		key, val, ok, err := src()
		if err != nil {
			return w.abort(err)
		}
		if !ok {
			break
		}
		if len(key) == 0 || len(key) > t.maxKeySize() {
			return w.abort(fmt.Errorf("btree: BulkLoad key of %d bytes invalid", len(key)))
		}
		if prevKey != nil && bytes.Compare(prevKey, key) >= 0 {
			return w.abort(fmt.Errorf("btree: BulkLoad keys not strictly ascending at %q", key))
		}
		stored, err := w.storeValue(val)
		if err != nil {
			return w.abort(err)
		}
		kcopy := append([]byte(nil), key...)
		cur.keys = append(cur.keys, kcopy)
		cur.vals = append(cur.vals, stored)
		count++
		prevKey = kcopy
		sz := cur.encodedSize(t.noCompress)
		if sz > t.f.PageSize() && len(cur.keys) > 1 {
			// The soft fill limit leaves headroom, but one large entry
			// (a near-threshold inline value) can still push the leaf
			// past the page itself; move it into the next leaf so a
			// sealed node always fits its page.
			last := len(cur.keys) - 1
			k, vv := cur.keys[last], cur.vals[last]
			cur.keys = cur.keys[:last:last]
			cur.vals = cur.vals[:last:last]
			if err := sealLeaf(); err != nil {
				return w.abort(err)
			}
			cur.keys = append(cur.keys, k)
			cur.vals = append(cur.vals, vv)
			sz = cur.encodedSize(t.noCompress)
		}
		full := sz > limit
		if maxEntries > 0 {
			full = full || len(cur.keys) >= maxEntries
		}
		if full {
			if err := sealLeaf(); err != nil {
				return w.abort(err)
			}
		}
	}
	if len(cur.keys) > 0 {
		if err := sealLeaf(); err != nil {
			return w.abort(err)
		}
	}
	if len(level) == 0 {
		// Empty input: keep the published empty tree as is.
		return nil
	}

	// Separator between adjacent leaves i-1 and i: the shortest key above
	// everything in leaf i-1 and at most the first key of leaf i.
	seps := make([][]byte, len(level)) // seps[i] separates level[i-1] | level[i]
	for i := 1; i < len(level); i++ {
		seps[i] = shortestSep(level[i-1].lastKey, level[i].firstKey)
	}

	// Upper levels: pack (separator, child) pairs into internal nodes;
	// when a node fills, the separator at the boundary is promoted to the
	// level above instead of stored.
	height := 1
	for len(level) > 1 {
		var nextLevel []built
		var promoted [][]byte
		nd := &node{leaf: false}
		nd.children = append(nd.children, level[0].id)
		for i := 1; i < len(level); i++ {
			sep, child := seps[i], level[i].id
			nd.keys = append(nd.keys, sep)
			nd.children = append(nd.children, child)
			full := nd.encodedSize(t.noCompress) > limit
			if maxEntries > 0 {
				full = full || len(nd.keys) > maxEntries
			}
			if full && len(nd.keys) > 1 {
				// Undo, seal the node, promote the separator.
				nd.keys = nd.keys[:len(nd.keys)-1]
				nd.children = nd.children[:len(nd.children)-1]
				id, err := seal(nd)
				if err != nil {
					return w.abort(err)
				}
				nextLevel = append(nextLevel, built{id, nil, nil})
				promoted = append(promoted, sep)
				nd = &node{leaf: false}
				nd.children = append(nd.children, child)
			}
		}
		id, err := seal(nd)
		if err != nil {
			return w.abort(err)
		}
		nextLevel = append(nextLevel, built{id, nil, nil})
		// promoted[j] separates nextLevel[j] | nextLevel[j+1]; realign
		// to the seps convention (seps[i] separates level[i-1]|level[i]).
		ns := make([][]byte, len(nextLevel))
		copy(ns[1:], promoted)
		level, seps = nextLevel, ns
		height++
	}
	// The pre-allocated empty root is superseded by the built tree.
	w.retired = append(w.retired, v.root)
	return w.commit(level[0].id, height, count)
}
