package server

import (
	"fmt"

	uindex "repro"
	"repro/internal/obs"
)

// shapes classifies requests for the per-shape request counters and
// latency histograms. Query shapes follow the paper's taxonomy — exact,
// range, subtree, parscan — and the remaining ops get their own label so
// every request lands in exactly one series.
var shapes = []string{
	"exact", "range", "subtree", "parscan",
	"write", "batch", "checkpoint", "refresh", "ping",
}

// queryShape classifies one compiled query:
//
//	range    — continuous value range (Lo/Hi form)
//	parscan  — multi-value or multi-alternative descent (the paper's
//	           Algorithm-1 showcase: several disjoint key intervals)
//	subtree  — single value, but at least one position spans a class
//	           subtree ("C5A*")
//	exact    — single value, exact class positions only
func queryShape(q uindex.Query) string {
	if q.Value.Values == nil {
		return "range"
	}
	alts := 0
	subtree := false
	for _, pos := range q.Positions {
		alts += len(pos.Alts)
		for _, alt := range pos.Alts {
			subtree = subtree || alt.Subtree
		}
	}
	switch {
	case len(q.Value.Values) > 1 || alts > len(q.Positions):
		return "parscan"
	case subtree:
		return "subtree"
	default:
		return "exact"
	}
}

// metrics is the server's pre-registered series set. Every per-shape
// series exists from startup, so the request hot path only does atomic
// adds — no map lookups, no allocation.
type metrics struct {
	requests  map[string]*obs.Counter   // uindexd_requests_total{shape}
	latency   map[string]*obs.Histogram // uindexd_request_seconds{shape}
	errors    map[Code]*obs.Counter     // uindexd_request_errors_total{code}
	inflight  *obs.Gauge
	rejected  *obs.Counter
	sessions  *obs.Gauge
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	oversized *obs.Counter
}

// errCodes are the codes pre-registered for uindexd_request_errors_total.
var errCodes = map[Code]string{
	CodeBadRequest:       "bad_request",
	CodeIndexNotFound:    "index_not_found",
	CodeUnknownClass:     "unknown_class",
	CodeClosed:           "closed",
	CodeSnapshotReleased: "snapshot_released",
	CodeRetryLater:       "retry_later",
	CodeDeadline:         "deadline",
	CodeCanceled:         "canceled",
	CodeInternal:         "internal",
}

// newMetrics registers the server series on reg.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		requests: make(map[string]*obs.Counter, len(shapes)),
		latency:  make(map[string]*obs.Histogram, len(shapes)),
		errors:   make(map[Code]*obs.Counter, len(errCodes)),
	}
	for _, s := range shapes {
		m.requests[s] = reg.Counter("uindexd_requests_total",
			"Requests served, by query shape or op.", obs.Label{Name: "shape", Value: s})
	}
	for _, s := range shapes {
		m.latency[s] = reg.Histogram("uindexd_request_seconds",
			"Request latency, by query shape or op.", nil, obs.Label{Name: "shape", Value: s})
	}
	for code, name := range errCodes {
		m.errors[code] = reg.Counter("uindexd_request_errors_total",
			"Error responses, by code.", obs.Label{Name: "code", Value: name})
	}
	m.inflight = reg.Gauge("uindexd_inflight_requests",
		"Requests currently admitted and executing.")
	m.rejected = reg.Counter("uindexd_admission_rejected_total",
		"Requests rejected with RETRY_LATER by admission control.")
	m.sessions = reg.Gauge("uindexd_sessions_active",
		"Open data-path connections (each holds one MVCC snapshot).")
	m.bytesIn = reg.Counter("uindexd_bytes_in_total", "Bytes read from clients.")
	m.bytesOut = reg.Counter("uindexd_bytes_out_total", "Bytes written to clients.")
	m.oversized = reg.Counter("uindexd_oversized_frames_total",
		"Connections dropped for exceeding the frame size limit.")
	return m
}

// registerEngine bridges the engine's merged Metrics() snapshot into the
// registry as collect-on-scrape series, so /metrics surfaces pool hit/miss,
// node-cache hits/misses, and the facade's cumulative query/write counters
// without a second aggregation layer.
func registerEngine(reg *obs.Registry, db *uindex.Database) {
	counter := func(name, help string, get func(uindex.Metrics) uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(get(db.Metrics())) })
	}
	counter("uindex_pool_hits_total", "Buffer-pool page hits.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.Hits) })
	counter("uindex_pool_misses_total", "Buffer-pool page misses.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.Misses) })
	counter("uindex_pool_evictions_total", "Buffer-pool frame evictions.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.Evictions) })
	counter("uindex_pool_physical_reads_total", "Pages read from the page files.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.PhysicalReads) })
	counter("uindex_pool_physical_writes_total", "Pages written to the page files.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.PhysicalWrites) })
	counter("uindex_pool_batch_reads_total", "Batched backing reads issued by the pools.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.BatchReads) })
	counter("uindex_pool_prefetch_pages_total", "Pages loaded by prefetch batches.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.PrefetchPages) })
	counter("uindex_pool_prefetch_hits_total", "Reads served from a prefetched frame.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.PrefetchHits) })
	counter("uindex_pool_prefetch_wasted_total", "Prefetched frames dropped before any use.",
		func(m uindex.Metrics) uint64 { return uint64(m.Pool.PrefetchWasted) })
	counter("uindex_nodecache_hits_total", "Decoded-node cache hits.",
		func(m uindex.Metrics) uint64 { return uint64(m.NodeCache.Hits) })
	counter("uindex_nodecache_misses_total", "Decoded-node cache misses.",
		func(m uindex.Metrics) uint64 { return uint64(m.NodeCache.Misses) })
	counter("uindex_queries_total", "Completed engine queries.",
		func(m uindex.Metrics) uint64 { return m.Queries })
	counter("uindex_query_errors_total", "Engine queries that returned an error.",
		func(m uindex.Metrics) uint64 { return m.QueryErrors })
	counter("uindex_query_pages_read_total", "Per-query distinct page reads, summed.",
		func(m uindex.Metrics) uint64 { return m.PagesRead })
	counter("uindex_query_entries_scanned_total", "Index entries inspected by queries.",
		func(m uindex.Metrics) uint64 { return m.EntriesScanned })
	counter("uindex_query_prefetch_issued_total", "Pages handed to the frontier prefetcher by queries.",
		func(m uindex.Metrics) uint64 { return m.PrefetchIssued })
	counter("uindex_inserts_total", "Completed Insert mutations.",
		func(m uindex.Metrics) uint64 { return m.Inserts })
	counter("uindex_deletes_total", "Completed Delete mutations.",
		func(m uindex.Metrics) uint64 { return m.Deletes })
	counter("uindex_sets_total", "Completed Set mutations.",
		func(m uindex.Metrics) uint64 { return m.Sets })
	counter("uindex_write_errors_total", "Mutations that returned an error.",
		func(m uindex.Metrics) uint64 { return m.WriteErrors })
	counter("uindex_batches_total", "Completed Apply (batch) calls.",
		func(m uindex.Metrics) uint64 { return m.Batches })
	counter("uindex_batch_ops_total", "Operations applied by batches.",
		func(m uindex.Metrics) uint64 { return m.BatchOps })
	counter("uindex_checkpoints_total", "Completed Checkpoint calls.",
		func(m uindex.Metrics) uint64 { return m.Checkpoints })
	counter("uindex_snapshots_taken_total", "Snapshots ever pinned.",
		func(m uindex.Metrics) uint64 { return m.SnapshotsTaken })
	if db.Metrics().WALEnabled { // fixed at open, like the shard topology
		counter("uindex_wal_appends_total", "Records appended to the write-ahead log.",
			func(m uindex.Metrics) uint64 { return m.WALAppends })
		counter("uindex_wal_fsyncs_total", "Group-commit fsyncs (below appends when commits coalesce).",
			func(m uindex.Metrics) uint64 { return m.WALFsyncs })
		counter("uindex_wal_group_commit_batches_total", "Group-commit flush batches.",
			func(m uindex.Metrics) uint64 { return m.WALBatches })
		counter("uindex_wal_group_commit_records_total", "Records carried by group-commit batches.",
			func(m uindex.Metrics) uint64 { return m.WALBatchRecords })
		counter("uindex_wal_checkpoints_total", "Completed incremental WAL checkpoints.",
			func(m uindex.Metrics) uint64 { return m.WALCheckpoints })
		reg.GaugeFunc("uindex_wal_recovery_replayed_records",
			"Log records replayed by the recovery that opened this database.",
			func() float64 { return float64(db.Metrics().WALRecoveryReplayed) })
		reg.GaugeFunc("uindex_wal_checkpoint_lag_bytes",
			"Live log bytes not yet folded into a checkpoint.",
			func() float64 { return float64(db.Metrics().WALLagBytes) })
	}
	reg.GaugeFunc("uindex_snapshots_active", "Snapshots currently pinned.",
		func() float64 { return float64(db.Metrics().SnapshotsActive) })
	reg.GaugeFunc("uindex_nodecache_entries", "Decoded nodes resident in the caches.",
		func() float64 { return float64(db.Metrics().NodeCache.Entries) })
	reg.GaugeFunc("uindex_indexes", "Declared indexes.",
		func() float64 { return float64(db.Metrics().Indexes) })

	// Per-shard series, one (index, shard) label pair each. The shard
	// topology is fixed once the database opens, so the labels are fixed at
	// registration; the values read the live ShardStats at scrape.
	for _, name := range db.Indexes() {
		stats, ok := db.ShardStats(name)
		if !ok {
			continue
		}
		for i := range stats {
			name, shard := name, i
			labels := []obs.Label{
				{Name: "index", Value: name},
				{Name: "shard", Value: fmt.Sprint(shard)},
			}
			reg.GaugeFunc("uindex_shard_entries",
				"Index entries resident per shard.", func() float64 {
					if ss, ok := db.ShardStats(name); ok && shard < len(ss) {
						return float64(ss[shard].Entries)
					}
					return 0
				}, labels...)
			reg.CounterFunc("uindex_shard_writes_total",
				"Mutations that acquired the shard's writer lock.", func() float64 {
					if ss, ok := db.ShardStats(name); ok && shard < len(ss) {
						return float64(ss[shard].Writes)
					}
					return 0
				}, labels...)
		}
	}
}
