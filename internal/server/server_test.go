package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	uindex "repro"
	"repro/internal/demo"
)

// The four query shapes of the paper's taxonomy, phrased over the demo
// database. All of them avoid the "Z…" colors the write phases insert, so
// their match counts stay deterministic under concurrent writes.
var shapeQueries = []struct {
	shape, index, query string
	matches             int
}{
	{"exact", "color", "(Color=Red, Automobile)", 1},        // v3 only: exact class
	{"range", "color", "(Color=[Blue-Red], Vehicle*)", 3},   // v3, v4, v5
	{"subtree", "color", "(Color=Red, Vehicle*)", 2},        // v3, v4
	{"parscan", "color", "(Color={Red,Blue}, Vehicle*)", 3}, // v3, v4, v5
}

func discard() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// newTestServer builds the Example-1 demo database and serves it on
// ephemeral ports.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *uindex.Database) {
	t.Helper()
	db, _, err := demo.Build(uindex.Options{PoolPages: 16})
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	cfg := Config{DB: db, Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", Logger: discard()}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		db.Close()
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		db.Close()
		t.Fatalf("Start: %v", err)
	}
	return srv, db
}

func dialT(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial(%s): %v", srv.Addr(), err)
	}
	return c
}

// waitGoroutines waits for the goroutine count to come back near base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance path: ephemeral port, concurrent clients
// issuing all four query shapes plus writes and a checkpoint, graceful
// shutdown, no goroutine leaks, then a clean reopen of the persisted state.
func TestEndToEnd(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	srv, db := newTestServer(t, nil)
	defer db.Close()

	ctx := context.Background()
	const clients = 4
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errc <- runClientWorkload(ctx, srv.Addr(), i)
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Graceful drain; afterwards new dials must be refused.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if c, err := Dial(srv.Addr()); err == nil {
		c.Close()
		t.Fatal("Dial succeeded after Shutdown")
	}
	waitGoroutines(t, baseGoroutines)

	// Clean reopen: snapshot the drained state, load it into a fresh
	// disk-backed database, and check the shape queries still answer.
	path := t.TempDir() + "/store.usnap"
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := uindex.LoadFileWith(path, uindex.Options{Dir: t.TempDir(), PoolPages: 16})
	if err != nil {
		t.Fatalf("LoadFileWith: %v", err)
	}
	defer db2.Close()
	srv2, err := New(Config{DB: db2, Addr: "127.0.0.1:0", Logger: discard()})
	if err != nil {
		t.Fatalf("New (reopen): %v", err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatalf("Start (reopen): %v", err)
	}
	c := dialT(t, srv2)
	for _, sq := range shapeQueries {
		ms, _, err := c.Query(ctx, sq.index, sq.query)
		if err != nil {
			t.Fatalf("reopen query %s: %v", sq.query, err)
		}
		if len(ms) != sq.matches {
			t.Fatalf("reopen query %s: %d matches, want %d", sq.query, len(ms), sq.matches)
		}
	}
	c.Close()
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown (reopen): %v", err)
	}
}

// runClientWorkload is one concurrent client: the four shapes with exact
// expected counts, then an insert/read-your-write/set/delete cycle on a
// private color, then a checkpoint.
func runClientWorkload(ctx context.Context, addr string, i int) error {
	c, err := Dial(addr)
	if err != nil {
		return fmt.Errorf("client %d: %w", i, err)
	}
	defer c.Close()
	for round := 0; round < 5; round++ {
		for _, sq := range shapeQueries {
			ms, stats, err := c.Query(ctx, sq.index, sq.query)
			if err != nil {
				return fmt.Errorf("client %d %s: %w", i, sq.query, err)
			}
			if len(ms) != sq.matches {
				return fmt.Errorf("client %d %s: %d matches, want %d", i, sq.query, len(ms), sq.matches)
			}
			if stats.Matches != len(ms) {
				return fmt.Errorf("client %d %s: stats.Matches=%d, len=%d", i, sq.query, stats.Matches, len(ms))
			}
		}
		// Forward algorithm answers the same question.
		ms, stats, err := c.QueryAlgorithm(ctx, "color", "(Color=Red, Vehicle*)", uindex.Forward)
		if err != nil || len(ms) != 2 {
			return fmt.Errorf("client %d forward: %d matches, err %v", i, len(ms), err)
		}
		if stats.Algorithm != uindex.Forward {
			return fmt.Errorf("client %d forward: stats algorithm %v", i, stats.Algorithm)
		}

		color := fmt.Sprintf("Z%dr%d", i, round)
		oid, err := c.Insert(ctx, "Automobile", uindex.Attrs{"Name": "tmp", "Color": color})
		if err != nil {
			return fmt.Errorf("client %d insert: %w", i, err)
		}
		// Read-your-write: the session snapshot refreshed on insert.
		q := fmt.Sprintf("(Color=%s, Vehicle*)", color)
		if ms, _, err := c.Query(ctx, "color", q); err != nil || len(ms) != 1 {
			return fmt.Errorf("client %d read-your-write: %d matches, err %v", i, len(ms), err)
		}
		color2 := color + "x"
		if err := c.Set(ctx, oid, "Color", color2); err != nil {
			return fmt.Errorf("client %d set: %w", i, err)
		}
		q2 := fmt.Sprintf("(Color=%s, Vehicle*)", color2)
		if ms, _, err := c.Query(ctx, "color", q2); err != nil || len(ms) != 1 {
			return fmt.Errorf("client %d post-set: %d matches, err %v", i, len(ms), err)
		}
		if err := c.Delete(ctx, oid); err != nil {
			return fmt.Errorf("client %d delete: %w", i, err)
		}
		if ms, _, err := c.Query(ctx, "color", q2); err != nil || len(ms) != 0 {
			return fmt.Errorf("client %d post-delete: %d matches, err %v", i, len(ms), err)
		}
	}
	if err := c.Checkpoint(ctx); err != nil {
		return fmt.Errorf("client %d checkpoint: %w", i, err)
	}
	return c.Ping(ctx)
}

// TestApplyBatch exercises the batched write surface over the wire: one
// round trip applies several inserts, read-your-write sees all of them, a
// second batch mutates and deletes them, and planning errors come back as
// typed errors without applying anything.
func TestApplyBatch(t *testing.T) {
	srv, db := newTestServer(t, nil)
	defer db.Close()
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	c := dialT(t, srv)
	defer c.Close()

	// Empty batches are free.
	if res, err := c.ApplyBatch(ctx, &uindex.Batch{}); err != nil || res.Applied != 0 {
		t.Fatalf("empty batch: %+v, %v", res, err)
	}

	var b uindex.Batch
	const n = 5
	for i := 0; i < n; i++ {
		b.Insert("Automobile", uindex.Attrs{"Name": fmt.Sprintf("B%d", i), "Color": "Zbatch"})
	}
	res, err := c.ApplyBatch(ctx, &b)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if res.Applied != n || len(res.OIDs) != n {
		t.Fatalf("ApplyBatch result = %+v", res)
	}
	// Read-your-write: the session snapshot refreshed with the batch.
	if ms, _, err := c.Query(ctx, "color", "(Color=Zbatch, Vehicle*)"); err != nil || len(ms) != n {
		t.Fatalf("post-batch query: %d matches, err %v", len(ms), err)
	}

	// Second batch: recolor one, delete the rest.
	b.Reset()
	b.Set(res.OIDs[0], "Color", "Zkept")
	for _, oid := range res.OIDs[1:] {
		b.Delete(oid)
	}
	res2, err := c.ApplyBatch(ctx, &b)
	if err != nil || res2.Applied != n {
		t.Fatalf("second batch: %+v, %v", res2, err)
	}
	if ms, _, err := c.Query(ctx, "color", "(Color=Zbatch, Vehicle*)"); err != nil || len(ms) != 0 {
		t.Fatalf("post-delete query: %d matches, err %v", len(ms), err)
	}
	if ms, _, err := c.Query(ctx, "color", "(Color=Zkept, Vehicle*)"); err != nil || len(ms) != 1 {
		t.Fatalf("post-set query: %d matches, err %v", len(ms), err)
	}

	// Planning failure: unknown class rejects the whole batch before any op.
	b.Reset()
	b.Insert("Ghost", uindex.Attrs{"Color": "Znever"})
	if _, err := c.ApplyBatch(ctx, &b); !errors.Is(err, uindex.ErrUnknownClass) {
		t.Fatalf("unknown-class batch error = %v", err)
	}
	if ms, _, err := c.Query(ctx, "color", "(Color=Znever, Vehicle*)"); err != nil || len(ms) != 0 {
		t.Fatalf("rejected batch leaked a write: %d matches, err %v", len(ms), err)
	}
}

// TestSnapshotIsolation pins the session-snapshot semantics: a session does
// not observe another session's committed write until it refreshes.
func TestSnapshotIsolation(t *testing.T) {
	srv, db := newTestServer(t, nil)
	defer db.Close()
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	a, b := dialT(t, srv), dialT(t, srv)
	defer a.Close()
	defer b.Close()
	if err := a.Ping(ctx); err != nil { // session pinned at current state
		t.Fatal(err)
	}
	oid, err := b.Insert(ctx, "Automobile", uindex.Attrs{"Name": "iso", "Color": "Ziso"})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	const q = "(Color=Ziso, Vehicle*)"
	if ms, _, err := b.Query(ctx, "color", q); err != nil || len(ms) != 1 {
		t.Fatalf("writer session: %d matches, err %v (want its own write)", len(ms), err)
	}
	if ms, _, err := a.Query(ctx, "color", q); err != nil || len(ms) != 0 {
		t.Fatalf("reader session: %d matches, err %v (want isolation)", len(ms), err)
	}
	if err := a.Refresh(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if ms, _, err := a.Query(ctx, "color", q); err != nil || len(ms) != 1 {
		t.Fatalf("reader session after refresh: %d matches, err %v", len(ms), err)
	}
	if err := b.Delete(ctx, oid); err != nil {
		t.Fatal(err)
	}
}

// TestTypedErrors checks the sentinel mapping across the wire.
func TestTypedErrors(t *testing.T) {
	srv, db := newTestServer(t, nil)
	defer db.Close()
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	c := dialT(t, srv)
	defer c.Close()

	if _, _, err := c.Query(ctx, "nope", "(Color=Red, Vehicle*)"); !errors.Is(err, uindex.ErrIndexNotFound) {
		t.Fatalf("want ErrIndexNotFound, got %v", err)
	}
	if _, err := c.Insert(ctx, "NoSuchClass", uindex.Attrs{"A": "b"}); !errors.Is(err, uindex.ErrUnknownClass) {
		t.Fatalf("want ErrUnknownClass, got %v", err)
	}
	if _, _, err := c.Query(ctx, "color", "((((("); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

// TestGracefulDrainCompletesInflight holds a request in-flight while
// Shutdown runs and asserts the request still gets its response.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, db := newTestServer(t, nil)
	defer db.Close()
	srv.testHookServe = func(op Op) {
		if op == OpCheckpoint {
			entered <- struct{}{}
			<-release
		}
	}
	c := dialT(t, srv)
	defer c.Close()

	reqErr := make(chan error, 1)
	go func() { reqErr <- c.Checkpoint(context.Background()) }()
	<-entered // the request is admitted and executing

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-drainErr:
		t.Fatalf("Shutdown returned %v while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestOverloadRetryLater saturates a 2-slot admission budget and asserts
// the third request is shed with ErrRetryLater, the rejection counter
// moves, and the in-flight gauge never exceeds the bound.
func TestOverloadRetryLater(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	srv, db := newTestServer(t, func(cfg *Config) { cfg.MaxInFlight = 2 })
	defer db.Close()
	defer func() { srv.Shutdown(context.Background()) }()
	srv.testHookServe = func(op Op) {
		if op == OpPing {
			entered <- struct{}{}
			<-release
		}
	}
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	blocked := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { blocked <- c.Ping(ctx) }()
	}
	<-entered
	<-entered // both admission slots held

	if err := c.Checkpoint(ctx); !errors.Is(err, ErrRetryLater) {
		t.Fatalf("want ErrRetryLater at full admission, got %v", err)
	}

	body := scrapeMetrics(t, srv)
	if !strings.Contains(body, "uindexd_admission_rejected_total 1") {
		t.Fatalf("/metrics missing rejection count:\n%s", grepMetrics(body, "uindexd_admission"))
	}
	if !strings.Contains(body, "uindexd_inflight_requests 2") {
		t.Fatalf("/metrics in-flight gauge should sit at the bound:\n%s", grepMetrics(body, "inflight"))
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-blocked; err != nil {
			t.Fatalf("blocked request %d: %v", i, err)
		}
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatalf("post-release request: %v", err)
	}
}

// TestDBCloseWhileSessionsActive closes the database out from under live
// sessions: requests must come back as typed errors — never a panic, never
// a hang — and the drained server must report zero active snapshots.
func TestDBCloseWhileSessionsActive(t *testing.T) {
	srv, db := newTestServer(t, func(cfg *Config) { cfg.NoCheckpointOnDrain = true })
	ctx := context.Background()
	const clients = 3
	var cs []*Client
	for i := 0; i < clients; i++ {
		c := dialT(t, srv)
		defer c.Close()
		if err := c.Ping(ctx); err != nil { // session snapshot pinned
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := c.Query(ctx, "color", "(Color=Red, Vehicle*)")
				if err == nil {
					continue
				}
				if errors.Is(err, uindex.ErrClosed) || errors.Is(err, uindex.ErrSnapshotReleased) {
					return // the typed error a remote caller can branch on
				}
				t.Errorf("unexpected error class: %v", err)
				return
			}
		}(c)
	}
	time.Sleep(10 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after Close: %v", err)
	}
	if n := db.Metrics().SnapshotsActive; n != 0 {
		t.Fatalf("%d snapshots still pinned after Close+Shutdown", n)
	}
}

// TestOversizedFrameClosesConnection sends a frame above the limit and
// expects the connection dropped and the counter bumped.
func TestOversizedFrameClosesConnection(t *testing.T) {
	srv, db := newTestServer(t, func(cfg *Config) { cfg.MaxFrame = 1 << 10 })
	defer db.Close()
	defer srv.Shutdown(context.Background())
	c := dialT(t, srv)
	defer c.Close()

	// Bypass the client API: write a 2 KiB frame raw.
	c.wmu.Lock()
	err := writeFrame(c.nc, make([]byte, 2<<10))
	c.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
	if !strings.Contains(scrapeMetrics(t, srv), "uindexd_oversized_frames_total 1") {
		t.Fatal("oversized-frame counter did not move")
	}
}

// TestMetricsEndpoint checks the ops listener surface: engine and server
// series on /metrics, and the health endpoints.
func TestMetricsEndpoint(t *testing.T) {
	srv, db := newTestServer(t, nil)
	defer db.Close()
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	c := dialT(t, srv)
	defer c.Close()
	for _, sq := range shapeQueries {
		if _, _, err := c.Query(ctx, sq.index, sq.query); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Insert(ctx, "Automobile", uindex.Attrs{"Name": "m", "Color": "Zm"}); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, srv)
	for _, want := range []string{
		`uindexd_requests_total{shape="exact"} 1`,
		`uindexd_requests_total{shape="range"} 1`,
		`uindexd_requests_total{shape="subtree"} 1`,
		`uindexd_requests_total{shape="parscan"} 1`,
		`uindexd_requests_total{shape="write"} 1`,
		`uindexd_request_seconds_bucket{shape="exact",le="+Inf"} 1`,
		`uindexd_request_seconds_count{shape="exact"} 1`,
		"uindexd_inflight_requests",
		"uindexd_admission_rejected_total 0",
		"uindexd_sessions_active 1",
		"uindex_pool_hits_total",
		"uindex_pool_misses_total",
		"uindex_nodecache_hits_total",
		"uindex_nodecache_misses_total",
		"uindex_queries_total",
		"uindex_inserts_total",
		"uindex_snapshots_active 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Log(body)
	}

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get("http://" + srv.HTTPAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func scrapeMetrics(t *testing.T, srv *Server) string {
	t.Helper()
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
