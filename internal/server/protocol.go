// Package server is the network subsystem over the engine facade: uindexd
// speaks a small length-prefixed binary protocol on the data path (one
// MVCC snapshot per connection, request pipelining, typed error codes,
// admission control) and serves an HTTP ops listener (/metrics, /healthz,
// /readyz, /debug/pprof). Client (client.go) is the matching minimal Go
// client.
//
// Wire format. After a 5-byte handshake in each direction ("uix1" + version
// byte), every message is a frame:
//
//	uint32 big-endian payload length | payload
//
// A request payload is op(1) ‖ id(4, big-endian) ‖ body; a response payload
// is status(1) ‖ id(4) ‖ body, where status 0 is success and anything else
// is a Code with a UTF-8 error message as the body. Request ids are chosen
// by the client and echoed verbatim, so a client may pipeline any number of
// requests per connection and match responses out of order. Strings and
// counts are uvarint-length-prefixed; attribute values are tagged (tag byte
// then value). Frames larger than the server's configured maximum are
// rejected and the connection closed — length prefixes from untrusted input
// never drive allocation beyond that bound.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	uindex "repro"
	"repro/internal/encoding"
)

// protocolVersion is negotiated by the handshake; mismatches are rejected.
const protocolVersion = 1

// handshakeMagic opens every connection, in both directions.
var handshakeMagic = [4]byte{'u', 'i', 'x', '1'}

// DefaultMaxFrame bounds a frame payload unless Config overrides it.
const DefaultMaxFrame = 1 << 20

// Op is a request opcode.
type Op byte

// Request opcodes.
const (
	OpPing       Op = 1 // body: empty → empty
	OpQuery      Op = 2 // body: flags(1) ‖ index ‖ query-text → stats ‖ matches
	OpInsert     Op = 3 // body: class ‖ nattrs ‖ (name ‖ value)* → oid(4)
	OpSet        Op = 4 // body: oid(4) ‖ name ‖ value → empty
	OpDelete     Op = 5 // body: oid(4) → empty
	OpCheckpoint Op = 6 // body: empty → empty
	OpRefresh    Op = 7 // body: empty → empty; re-pins the session snapshot
	OpBatch      Op = 8 // body: nops ‖ op* → applied ‖ noids ‖ oid(4)*
)

// queryFlagForward selects the forward-scanning baseline algorithm.
const queryFlagForward = 0x01

// Code is a typed response status. Codes mirror the facade's sentinel
// errors so a remote caller can branch with errors.Is exactly like a local
// one.
type Code byte

// Response status codes.
const (
	CodeOK               Code = 0
	CodeBadRequest       Code = 1 // malformed frame body or query text
	CodeIndexNotFound    Code = 2 // uindex.ErrIndexNotFound
	CodeUnknownClass     Code = 3 // uindex.ErrUnknownClass
	CodeClosed           Code = 4 // uindex.ErrClosed
	CodeSnapshotReleased Code = 5 // uindex.ErrSnapshotReleased
	CodeRetryLater       Code = 6 // admission control rejected the request
	CodeDeadline         Code = 7 // per-request deadline exceeded
	CodeCanceled         Code = 8 // request context canceled (server drain)
	CodeInternal         Code = 9 // unexpected engine failure
)

// Typed errors of the protocol layer.
var (
	// ErrRetryLater is returned to clients when the server sheds load:
	// the in-flight request budget is full. The request was not executed;
	// back off and retry.
	ErrRetryLater = errors.New("server: overloaded, retry later")
	// ErrBadRequest is returned for malformed requests (client side it
	// wraps the server's message).
	ErrBadRequest = errors.New("server: bad request")
	// ErrFrameTooLarge is returned when a frame exceeds the negotiated
	// maximum; the connection is closed, since the stream can no longer
	// be framed safely.
	ErrFrameTooLarge = errors.New("server: frame exceeds maximum size")
	// errShortFrame reports a truncated frame body during decoding.
	errShortFrame = errors.New("server: truncated frame body")
)

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, allocating at most maxFrame bytes off the
// untrusted length prefix.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// --- primitive codecs -------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShortFrame
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, errShortFrame
	}
	return string(rest[:n]), rest[n:], nil
}

func readUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errShortFrame
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

// Value tags for attribute values and match values on the wire.
const (
	tagString  = 0
	tagUint64  = 1
	tagInt64   = 2
	tagFloat64 = 3
	tagOID     = 4 // object reference (uint32)
)

// appendValue encodes an attribute value. The accepted dynamic types are
// the ones the store accepts plus OID references.
func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case string:
		b = append(b, tagString)
		return appendString(b, x), nil
	case uint64:
		b = append(b, tagUint64)
		return binary.BigEndian.AppendUint64(b, x), nil
	case int64:
		b = append(b, tagInt64)
		return binary.BigEndian.AppendUint64(b, uint64(x)), nil
	case int:
		b = append(b, tagInt64)
		return binary.BigEndian.AppendUint64(b, uint64(int64(x))), nil
	case float64:
		b = append(b, tagFloat64)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case uindex.OID:
		b = append(b, tagOID)
		return binary.BigEndian.AppendUint32(b, uint32(x)), nil
	default:
		return nil, fmt.Errorf("%w: unsupported value type %T", ErrBadRequest, v)
	}
}

func readValue(b []byte) (any, []byte, error) {
	if len(b) < 1 {
		return nil, nil, errShortFrame
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagString:
		return toAnyString(readString(b))
	case tagUint64:
		if len(b) < 8 {
			return nil, nil, errShortFrame
		}
		return binary.BigEndian.Uint64(b), b[8:], nil
	case tagInt64:
		if len(b) < 8 {
			return nil, nil, errShortFrame
		}
		return int64(binary.BigEndian.Uint64(b)), b[8:], nil
	case tagFloat64:
		if len(b) < 8 {
			return nil, nil, errShortFrame
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
	case tagOID:
		if len(b) < 4 {
			return nil, nil, errShortFrame
		}
		return uindex.OID(binary.BigEndian.Uint32(b)), b[4:], nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown value tag %d", errShortFrame, tag)
	}
}

func toAnyString(s string, rest []byte, err error) (any, []byte, error) {
	if err != nil {
		return nil, nil, err
	}
	return s, rest, nil
}

// --- requests ---------------------------------------------------------

// request is one decoded data-path request.
type request struct {
	op    Op
	id    uint32
	index string // OpQuery
	query string // OpQuery
	alg   uindex.Algorithm
	class string // OpInsert
	attrs uindex.Attrs
	oid   uindex.OID       // OpSet, OpDelete
	attr  string           // OpSet
	value any              // OpSet
	ops   []uindex.BatchOp // OpBatch
}

// maxAttrsPerInsert bounds the attribute count of one insert so a hostile
// count prefix cannot drive allocation.
const maxAttrsPerInsert = 1024

// maxOpsPerBatch bounds one OpBatch frame so a hostile count prefix cannot
// drive allocation; clients chunk larger batches across frames.
const maxOpsPerBatch = 4096

// decodeRequest parses a request payload. The header (op, id) parses
// first, so even a malformed body yields an id the error response can be
// correlated with.
func decodeRequest(payload []byte) (request, error) {
	var req request
	if len(payload) < 5 {
		return req, errShortFrame
	}
	req.op = Op(payload[0])
	req.id = binary.BigEndian.Uint32(payload[1:5])
	body := payload[5:]
	var err error
	switch req.op {
	case OpPing, OpCheckpoint, OpRefresh:
		if len(body) != 0 {
			return req, errShortFrame
		}
	case OpQuery:
		if len(body) < 1 {
			return req, errShortFrame
		}
		flags := body[0]
		if flags&queryFlagForward != 0 {
			req.alg = uindex.Forward
		}
		if req.index, body, err = readString(body[1:]); err != nil {
			return req, err
		}
		if req.query, body, err = readString(body); err != nil {
			return req, err
		}
		if len(body) != 0 {
			return req, errShortFrame
		}
	case OpInsert:
		if req.class, body, err = readString(body); err != nil {
			return req, err
		}
		var n uint64
		if n, body, err = readUvarint(body); err != nil {
			return req, err
		}
		if n > maxAttrsPerInsert {
			return req, fmt.Errorf("%w: %d attributes", errShortFrame, n)
		}
		req.attrs = make(uindex.Attrs, n)
		for i := uint64(0); i < n; i++ {
			var name string
			if name, body, err = readString(body); err != nil {
				return req, err
			}
			if req.attrs[name], body, err = readValue(body); err != nil {
				return req, err
			}
		}
		if len(body) != 0 {
			return req, errShortFrame
		}
	case OpSet:
		var oid uint32
		if oid, body, err = readUint32(body); err != nil {
			return req, err
		}
		req.oid = uindex.OID(oid)
		if req.attr, body, err = readString(body); err != nil {
			return req, err
		}
		if req.value, body, err = readValue(body); err != nil {
			return req, err
		}
		if len(body) != 0 {
			return req, errShortFrame
		}
	case OpDelete:
		var oid uint32
		if oid, body, err = readUint32(body); err != nil {
			return req, err
		}
		req.oid = uindex.OID(oid)
		if len(body) != 0 {
			return req, errShortFrame
		}
	case OpBatch:
		var n uint64
		if n, body, err = readUvarint(body); err != nil {
			return req, err
		}
		if n > maxOpsPerBatch {
			return req, fmt.Errorf("%w: %d batch operations", errShortFrame, n)
		}
		req.ops = make([]uindex.BatchOp, 0, n)
		for i := uint64(0); i < n; i++ {
			var op uindex.BatchOp
			if op, body, err = readBatchOp(body); err != nil {
				return req, err
			}
			req.ops = append(req.ops, op)
		}
		if len(body) != 0 {
			return req, errShortFrame
		}
	default:
		return req, fmt.Errorf("%w: unknown opcode %d", errShortFrame, req.op)
	}
	return req, nil
}

// readBatchOp decodes one batch operation: a kind byte, then the fields of
// that kind — insert carries class and attributes like OpInsert, set and
// delete carry the oid (and for set the attribute and tagged value) like
// OpSet/OpDelete.
func readBatchOp(b []byte) (uindex.BatchOp, []byte, error) {
	var op uindex.BatchOp
	if len(b) < 1 {
		return op, nil, errShortFrame
	}
	kind, b := uindex.BatchOpKind(b[0]), b[1:]
	op.Kind = kind
	var err error
	switch kind {
	case uindex.BatchInsert:
		if op.Class, b, err = readString(b); err != nil {
			return op, nil, err
		}
		var n uint64
		if n, b, err = readUvarint(b); err != nil {
			return op, nil, err
		}
		if n > maxAttrsPerInsert {
			return op, nil, fmt.Errorf("%w: %d attributes", errShortFrame, n)
		}
		op.Attrs = make(uindex.Attrs, n)
		for i := uint64(0); i < n; i++ {
			var name string
			if name, b, err = readString(b); err != nil {
				return op, nil, err
			}
			if op.Attrs[name], b, err = readValue(b); err != nil {
				return op, nil, err
			}
		}
	case uindex.BatchSet:
		var oid uint32
		if oid, b, err = readUint32(b); err != nil {
			return op, nil, err
		}
		op.OID = uindex.OID(oid)
		if op.Attr, b, err = readString(b); err != nil {
			return op, nil, err
		}
		if op.Value, b, err = readValue(b); err != nil {
			return op, nil, err
		}
	case uindex.BatchDelete:
		var oid uint32
		if oid, b, err = readUint32(b); err != nil {
			return op, nil, err
		}
		op.OID = uindex.OID(oid)
	default:
		return op, nil, fmt.Errorf("%w: unknown batch op kind %d", errShortFrame, uint8(kind))
	}
	return op, b, nil
}

// appendBatchOp encodes one batch operation (the client side of
// readBatchOp).
func appendBatchOp(b []byte, op uindex.BatchOp) ([]byte, error) {
	b = append(b, byte(op.Kind))
	var err error
	switch op.Kind {
	case uindex.BatchInsert:
		b = appendString(b, op.Class)
		b = binary.AppendUvarint(b, uint64(len(op.Attrs)))
		for name, v := range op.Attrs {
			b = appendString(b, name)
			if b, err = appendValue(b, v); err != nil {
				return nil, err
			}
		}
	case uindex.BatchSet:
		b = binary.BigEndian.AppendUint32(b, uint32(op.OID))
		b = appendString(b, op.Attr)
		if b, err = appendValue(b, op.Value); err != nil {
			return nil, err
		}
	case uindex.BatchDelete:
		b = binary.BigEndian.AppendUint32(b, uint32(op.OID))
	default:
		return nil, fmt.Errorf("server: cannot encode batch op kind %d", uint8(op.Kind))
	}
	return b, nil
}

// encodeRequest builds a request payload (the client side of
// decodeRequest).
func encodeRequest(req request) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = append(b, byte(req.op))
	b = binary.BigEndian.AppendUint32(b, req.id)
	switch req.op {
	case OpPing, OpCheckpoint, OpRefresh:
	case OpQuery:
		var flags byte
		if req.alg == uindex.Forward {
			flags |= queryFlagForward
		}
		b = append(b, flags)
		b = appendString(b, req.index)
		b = appendString(b, req.query)
	case OpInsert:
		b = appendString(b, req.class)
		b = binary.AppendUvarint(b, uint64(len(req.attrs)))
		for name, v := range req.attrs {
			b = appendString(b, name)
			var err error
			if b, err = appendValue(b, v); err != nil {
				return nil, err
			}
		}
	case OpSet:
		b = binary.BigEndian.AppendUint32(b, uint32(req.oid))
		b = appendString(b, req.attr)
		var err error
		if b, err = appendValue(b, req.value); err != nil {
			return nil, err
		}
	case OpDelete:
		b = binary.BigEndian.AppendUint32(b, uint32(req.oid))
	case OpBatch:
		b = binary.AppendUvarint(b, uint64(len(req.ops)))
		for _, op := range req.ops {
			var err error
			if b, err = appendBatchOp(b, op); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("server: cannot encode opcode %d", req.op)
	}
	return b, nil
}

// --- responses --------------------------------------------------------

// encodeResponseHeader starts a response payload.
func encodeResponseHeader(code Code, id uint32) []byte {
	b := make([]byte, 0, 64)
	b = append(b, byte(code))
	return binary.BigEndian.AppendUint32(b, id)
}

// decodeResponseHeader splits a response payload.
func decodeResponseHeader(payload []byte) (Code, uint32, []byte, error) {
	if len(payload) < 5 {
		return 0, 0, nil, errShortFrame
	}
	return Code(payload[0]), binary.BigEndian.Uint32(payload[1:5]), payload[5:], nil
}

// appendStats encodes query Stats.
func appendStats(b []byte, s uindex.Stats) []byte {
	b = append(b, byte(s.Algorithm))
	b = binary.AppendUvarint(b, uint64(s.PagesRead))
	b = binary.AppendUvarint(b, uint64(s.EntriesScanned))
	b = binary.AppendUvarint(b, uint64(s.Matches))
	b = binary.AppendUvarint(b, uint64(s.Intervals))
	b = binary.AppendUvarint(b, uint64(s.NodeCacheHits))
	b = binary.AppendUvarint(b, uint64(s.NodeCacheMisses))
	b = binary.AppendUvarint(b, uint64(s.BytesDecoded))
	return b
}

func readStats(b []byte) (uindex.Stats, []byte, error) {
	var s uindex.Stats
	if len(b) < 1 {
		return s, nil, errShortFrame
	}
	s.Algorithm = uindex.Algorithm(b[0])
	b = b[1:]
	var err error
	for _, dst := range []*int{
		&s.PagesRead, &s.EntriesScanned, &s.Matches, &s.Intervals,
		&s.NodeCacheHits, &s.NodeCacheMisses,
	} {
		var v uint64
		if v, b, err = readUvarint(b); err != nil {
			return s, nil, err
		}
		*dst = int(v)
	}
	var bd uint64
	if bd, b, err = readUvarint(b); err != nil {
		return s, nil, err
	}
	s.BytesDecoded = int64(bd)
	return s, b, nil
}

// appendMatches encodes a query result set: count, then per match the
// typed value and the (code, oid) path, terminal-first like the engine.
func appendMatches(b []byte, ms []uindex.Match) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(ms)))
	for _, m := range ms {
		var err error
		if b, err = appendValue(b, m.Value); err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(m.Path)))
		for _, pe := range m.Path {
			b = appendString(b, string(pe.Code))
			b = binary.BigEndian.AppendUint32(b, uint32(pe.OID))
		}
	}
	return b, nil
}

func readMatches(b []byte) ([]uindex.Match, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	var ms []uindex.Match // grown per element: n is untrusted
	for i := uint64(0); i < n; i++ {
		var m uindex.Match
		if m.Value, b, err = readValue(b); err != nil {
			return nil, nil, err
		}
		var plen uint64
		if plen, b, err = readUvarint(b); err != nil {
			return nil, nil, err
		}
		for j := uint64(0); j < plen; j++ {
			var code string
			if code, b, err = readString(b); err != nil {
				return nil, nil, err
			}
			var oid uint32
			if oid, b, err = readUint32(b); err != nil {
				return nil, nil, err
			}
			m.Path = append(m.Path, uindex.PathEntry{Code: encoding.Code(code), OID: uindex.OID(oid)})
		}
		ms = append(ms, m)
	}
	return ms, b, nil
}

// appendBatchResult encodes an Apply result: the applied-operation count,
// then the OIDs assigned to the batch's inserts in operation order.
func appendBatchResult(b []byte, res uindex.BatchResult) []byte {
	b = binary.AppendUvarint(b, uint64(res.Applied))
	b = binary.AppendUvarint(b, uint64(len(res.OIDs)))
	for _, oid := range res.OIDs {
		b = binary.BigEndian.AppendUint32(b, uint32(oid))
	}
	return b
}

func readBatchResult(b []byte) (uindex.BatchResult, []byte, error) {
	var res uindex.BatchResult
	applied, b, err := readUvarint(b)
	if err != nil {
		return res, nil, err
	}
	res.Applied = int(applied)
	n, b, err := readUvarint(b)
	if err != nil {
		return res, nil, err
	}
	for i := uint64(0); i < n; i++ { // grown per element: n is untrusted
		var oid uint32
		if oid, b, err = readUint32(b); err != nil {
			return res, nil, err
		}
		res.OIDs = append(res.OIDs, uindex.OID(oid))
	}
	return res, b, nil
}

// codeOf maps an engine error to its wire code.
func codeOf(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, uindex.ErrIndexNotFound):
		return CodeIndexNotFound
	case errors.Is(err, uindex.ErrUnknownClass):
		return CodeUnknownClass
	case errors.Is(err, uindex.ErrSnapshotReleased):
		return CodeSnapshotReleased
	case errors.Is(err, uindex.ErrClosed):
		return CodeClosed
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	default:
		return CodeInternal
	}
}

// errOf maps a wire code back to a typed error the client surfaces;
// errors.Is against the facade sentinels works across the network.
func errOf(code Code, msg string) error {
	var base error
	switch code {
	case CodeOK:
		return nil
	case CodeBadRequest:
		base = ErrBadRequest
	case CodeIndexNotFound:
		base = uindex.ErrIndexNotFound
	case CodeUnknownClass:
		base = uindex.ErrUnknownClass
	case CodeClosed:
		base = uindex.ErrClosed
	case CodeSnapshotReleased:
		base = uindex.ErrSnapshotReleased
	case CodeRetryLater:
		base = ErrRetryLater
	case CodeDeadline:
		base = context.DeadlineExceeded
	case CodeCanceled:
		base = context.Canceled
	default:
		base = fmt.Errorf("server: internal error")
	}
	if msg == "" || msg == base.Error() {
		return base
	}
	return fmt.Errorf("%w: %s", base, msg)
}
