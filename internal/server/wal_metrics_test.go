package server

import (
	"context"
	"strings"
	"testing"

	uindex "repro"
	"repro/internal/demo"
)

// TestWALMetricsEndpoint: a database running with DurabilityWAL exports the
// uindex_wal_* series on /metrics, and the append counter moves with
// mutations served over the data path.
func TestWALMetricsEndpoint(t *testing.T) {
	db, _, err := demo.Build(uindex.Options{
		PoolPages: 16, Dir: t.TempDir(),
		Durability: uindex.DurabilityWAL, WALCheckpointBytes: -1,
	})
	if err != nil {
		t.Fatalf("demo.Build: %v", err)
	}
	defer db.Close()
	srv, err := New(Config{DB: db, Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", Logger: discard()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Shutdown(context.Background())
	c := dialT(t, srv)
	defer c.Close()
	if _, err := c.Insert(context.Background(), "Automobile", uindex.Attrs{"Name": "w", "Color": "Zw"}); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, srv)
	for _, want := range []string{
		"uindex_wal_appends_total",
		"uindex_wal_fsyncs_total",
		"uindex_wal_group_commit_batches_total",
		"uindex_wal_group_commit_records_total",
		"uindex_wal_checkpoints_total",
		"uindex_wal_recovery_replayed_records",
		"uindex_wal_checkpoint_lag_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "uindex_wal_appends_total 0") {
		t.Error("uindex_wal_appends_total did not move with the insert")
	}
	if t.Failed() {
		t.Log(grepMetrics(body, "uindex_wal"))
	}
}
