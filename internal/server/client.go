package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	uindex "repro"
)

// Client is a minimal data-path client: one connection, one server-side
// session (snapshot), safe for concurrent use. Concurrent calls pipeline
// on the single connection and responses are matched by request id, so N
// goroutines sharing a Client issue N requests in flight at once.
//
// Errors returned by calls match the facade's sentinels with errors.Is
// (uindex.ErrIndexNotFound, uindex.ErrClosed, ...), plus ErrRetryLater
// when the server sheds load and ErrBadRequest for malformed queries.
type Client struct {
	nc     net.Conn
	wmu    sync.Mutex
	nextID atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan clientResp
	err     error // terminal transport error, set once
}

type clientResp struct {
	code Code
	body []byte
}

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect+handshake deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := nc.Write(append(handshakeMagic[:], protocolVersion)); err != nil {
		nc.Close()
		return nil, err
	}
	var hello [5]byte
	if _, err := readFull(nc, hello[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("server handshake: %w", err)
	}
	if [4]byte(hello[:4]) != handshakeMagic || hello[4] != protocolVersion {
		nc.Close()
		return nil, fmt.Errorf("server handshake: bad hello %q version %d", hello[:4], hello[4])
	}
	nc.SetDeadline(time.Time{})
	c := &Client{nc: nc, pending: make(map[uint32]chan clientResp)}
	go c.readLoop()
	return c, nil
}

func readFull(nc net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := nc.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// readLoop dispatches responses to waiting calls by request id. A
// transport error fails every pending and future call.
func (c *Client) readLoop() {
	for {
		payload, err := readFrame(c.nc, DefaultMaxFrame)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		code, id, body, err := decodeResponseHeader(payload)
		if err != nil {
			c.fail(fmt.Errorf("server: malformed response: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok { // unknown ids are abandoned calls (context canceled)
			ch <- clientResp{code: code, body: body}
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]chan clientResp)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(fmt.Errorf("server: client closed"))
	return err
}

// roundTrip sends one request and waits for its response or ctx.
func (c *Client) roundTrip(ctx context.Context, req request) (clientResp, error) {
	req.id = c.nextID.Add(1)
	payload, err := encodeRequest(req)
	if err != nil {
		return clientResp{}, err
	}
	ch := make(chan clientResp, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return clientResp{}, err
	}
	c.pending[req.id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeFrame(c.nc, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.id)
		c.mu.Unlock()
		return clientResp{}, fmt.Errorf("server: send: %w", err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return clientResp{}, err
		}
		return resp, nil
	case <-ctx.Done():
		// Abandon the call; the read loop discards the late response.
		c.mu.Lock()
		delete(c.pending, req.id)
		c.mu.Unlock()
		return clientResp{}, ctx.Err()
	}
}

// call runs a round trip and maps error codes.
func (c *Client) call(ctx context.Context, req request) ([]byte, error) {
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.code != CodeOK {
		return nil, errOf(resp.code, string(resp.body))
	}
	return resp.body, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.call(ctx, request{op: OpPing})
	return err
}

// Query runs a textual query (querylang grammar) on the named index
// against the session's snapshot, with the parallel (Algorithm 1)
// strategy.
func (c *Client) Query(ctx context.Context, index, query string) ([]uindex.Match, uindex.Stats, error) {
	return c.QueryAlgorithm(ctx, index, query, uindex.Parallel)
}

// QueryAlgorithm is Query with an explicit retrieval strategy.
func (c *Client) QueryAlgorithm(ctx context.Context, index, query string, alg uindex.Algorithm) ([]uindex.Match, uindex.Stats, error) {
	body, err := c.call(ctx, request{op: OpQuery, index: index, query: query, alg: alg})
	if err != nil {
		return nil, uindex.Stats{}, err
	}
	stats, rest, err := readStats(body)
	if err != nil {
		return nil, uindex.Stats{}, fmt.Errorf("server: malformed query response: %w", err)
	}
	ms, _, err := readMatches(rest)
	if err != nil {
		return nil, uindex.Stats{}, fmt.Errorf("server: malformed query response: %w", err)
	}
	return ms, stats, nil
}

// Insert stores a new object; the session snapshot is refreshed so the
// session's subsequent reads observe the write.
func (c *Client) Insert(ctx context.Context, class string, attrs uindex.Attrs) (uindex.OID, error) {
	body, err := c.call(ctx, request{op: OpInsert, class: class, attrs: attrs})
	if err != nil {
		return 0, err
	}
	if len(body) < 4 {
		return 0, fmt.Errorf("server: malformed insert response")
	}
	return uindex.OID(binary.BigEndian.Uint32(body)), nil
}

// Set updates one attribute; the session snapshot is refreshed.
func (c *Client) Set(ctx context.Context, oid uindex.OID, attr string, value any) error {
	_, err := c.call(ctx, request{op: OpSet, oid: oid, attr: attr, value: value})
	return err
}

// Delete removes an object; the session snapshot is refreshed.
func (c *Client) Delete(ctx context.Context, oid uindex.OID) error {
	_, err := c.call(ctx, request{op: OpDelete, oid: oid})
	return err
}

// ApplyBatch executes a batch of mutations in one round trip with the
// semantics of Database.Apply: one writer-lock acquisition per index shard,
// operations applied in order, first failure stops the batch (earlier
// operations stay applied — the error response carries no per-op result, so
// re-derive state with a query if that matters). The session snapshot is
// refreshed afterwards. Batches larger than the frame limit must be chunked
// by the caller.
func (c *Client) ApplyBatch(ctx context.Context, b *uindex.Batch) (uindex.BatchResult, error) {
	if b == nil || b.Len() == 0 {
		return uindex.BatchResult{}, nil
	}
	if b.Len() > maxOpsPerBatch {
		return uindex.BatchResult{}, fmt.Errorf("%w: batch of %d operations exceeds %d", ErrBadRequest, b.Len(), maxOpsPerBatch)
	}
	body, err := c.call(ctx, request{op: OpBatch, ops: b.Ops()})
	if err != nil {
		return uindex.BatchResult{}, err
	}
	res, _, err := readBatchResult(body)
	if err != nil {
		return uindex.BatchResult{}, fmt.Errorf("server: malformed batch response: %w", err)
	}
	return res, nil
}

// Checkpoint makes every disk-backed index durable.
func (c *Client) Checkpoint(ctx context.Context) error {
	_, err := c.call(ctx, request{op: OpCheckpoint})
	return err
}

// Refresh re-pins the session snapshot at the current database state,
// making writes committed by other sessions visible to this one.
func (c *Client) Refresh(ctx context.Context) error {
	_, err := c.call(ctx, request{op: OpRefresh})
	return err
}
