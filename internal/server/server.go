package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	uindex "repro"
	"repro/internal/obs"
)

// Config configures a Server. DB and Addr are required; everything else
// has a production-shaped default.
type Config struct {
	// DB is the engine the server fronts. The server does not close it;
	// the caller owns its lifecycle (close after Shutdown returns).
	DB *uindex.Database
	// Addr is the data-path listen address (e.g. "127.0.0.1:9040";
	// ":0" picks an ephemeral port, readable from Addr() after Start).
	Addr string
	// HTTPAddr is the ops listener (/metrics, /healthz, /readyz,
	// /debug/pprof). Empty disables it.
	HTTPAddr string

	// MaxInFlight bounds requests executing concurrently across all
	// connections — the admission semaphore. At the bound, further
	// requests are answered RETRY_LATER immediately instead of queuing.
	// Default 128.
	MaxInFlight int
	// PipelineDepth bounds requests in flight per connection. A client
	// pipelining deeper than this is backpressured at the socket (the
	// read loop stops pulling frames), so server-side memory per
	// connection stays bounded. Default 32.
	PipelineDepth int
	// MaxFrame bounds one frame payload; oversized frames close the
	// connection. Default DefaultMaxFrame (1 MiB).
	MaxFrame int

	// RequestTimeout is the per-request deadline, plumbed into the
	// engine's ctx cancellation (scans abort at the next page visit).
	// Default 30s; negative disables.
	RequestTimeout time.Duration
	// IdleTimeout closes a connection that sends no frame for this long.
	// 0 disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write. Default 30s; negative
	// disables.
	WriteTimeout time.Duration

	// NoCheckpointOnDrain skips the Checkpoint normally taken at the end
	// of a graceful Shutdown.
	NoCheckpointOnDrain bool

	// Logger receives structured logs (connection lifecycle at Debug,
	// serve/drain events at Info, faults at Warn/Error). Default
	// slog.Default().
	Logger *slog.Logger
	// Registry receives the server's metric series; one is created when
	// nil. The engine's counters are bridged into it either way.
	Registry *obs.Registry
}

// Server serves a Database over the data-path protocol plus an HTTP ops
// listener. Create with New, run with Start, stop with Shutdown.
type Server struct {
	cfg Config
	db  *uindex.Database
	log *slog.Logger
	reg *obs.Registry
	m   *metrics

	ln        net.Listener
	admission chan struct{}

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	draining atomic.Bool
	ready    atomic.Bool
	wg       sync.WaitGroup // accept loop + connection handlers

	http *opsServer

	// testHookServe, when set, runs inside every request handler after
	// admission, before execution — tests use it to hold requests
	// in-flight deterministically.
	testHookServe func(Op)
}

// New validates cfg and builds a Server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("server: Config.Addr is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 128
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 32
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		db:        cfg.DB,
		log:       cfg.Logger,
		reg:       reg,
		m:         newMetrics(reg),
		admission: make(chan struct{}, cfg.MaxInFlight),
		conns:     make(map[*conn]struct{}),
	}
	registerEngine(reg, cfg.DB)
	return s, nil
}

// Registry returns the metrics registry (the /metrics source).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start opens the listeners and begins serving. It returns once both
// listeners are bound; serving continues on background goroutines until
// Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		s.http, err = newOpsServer(s)
		if err != nil {
			ln.Close()
			return err
		}
	}
	s.ready.Store(true)
	s.wg.Add(1)
	go s.acceptLoop()
	s.log.Info("uindexd serving", "addr", s.Addr(), "http", s.HTTPAddr(),
		"max_inflight", s.cfg.MaxInFlight, "pipeline_depth", s.cfg.PipelineDepth)
	return nil
}

// Addr returns the bound data-path address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// HTTPAddr returns the bound ops address ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.http == nil {
		return ""
	}
	return s.http.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.run()
	}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown drains the server gracefully: stop accepting, stop reading new
// requests, let in-flight requests finish and their responses flush,
// release every session snapshot, checkpoint the database (unless
// configured off), and close the ops listener. ctx bounds the wait;
// when it expires, remaining connections are closed forcibly. Shutdown is
// idempotent; only the first call does the work.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	s.ready.Store(false)
	s.log.Info("uindexd draining")
	if s.ln != nil {
		s.ln.Close()
	}
	// Kick every blocked read; in-flight handlers keep running and their
	// responses are flushed before each connection closes.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Unix(1, 0))
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	if !s.cfg.NoCheckpointOnDrain {
		if cerr := s.db.Checkpoint(); cerr != nil && !errors.Is(cerr, uindex.ErrClosed) {
			s.log.Error("drain checkpoint failed", "err", cerr)
			if err == nil {
				err = cerr
			}
		}
	}
	if s.http != nil {
		hctx, cancel := context.WithTimeout(context.Background(), time.Second)
		s.http.close(hctx)
		cancel()
	}
	s.log.Info("uindexd drained")
	return err
}

// conn is one data-path connection: a session holding one MVCC snapshot,
// a bounded pipeline of in-flight requests, and a serialized writer.
type conn struct {
	srv *Server
	nc  net.Conn
	br  io.Reader

	wmu sync.Mutex // serializes response frames

	// sessMu guards the session snapshot: queries hold it in read mode
	// for their duration, refreshes (explicit or post-write) swap it
	// under the write lock, so a session's reads always see one
	// consistent epoch and never a half-swapped view.
	sessMu sync.RWMutex
	snap   *uindex.Snapshot

	pipeline chan struct{} // per-connection in-flight bound
	inflight sync.WaitGroup
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		br:       nc,
		pipeline: make(chan struct{}, s.cfg.PipelineDepth),
	}
}

// run is the connection goroutine: handshake, session snapshot, then the
// frame read loop. On exit — client hang-up, protocol error, or drain — it
// waits for in-flight requests, flushes, releases the session, and closes.
func (c *conn) run() {
	s := c.srv
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.nc.Close()
	log := s.log.With("remote", c.nc.RemoteAddr().String())
	if err := c.handshake(); err != nil {
		log.Debug("handshake failed", "err", err)
		return
	}
	snap, err := s.db.Snapshot()
	if err != nil {
		log.Warn("session snapshot failed", "err", err)
		return
	}
	c.snap = snap
	s.m.sessions.Inc()
	log.Debug("session open")
	defer func() {
		c.inflight.Wait() // responses written before the socket closes
		c.releaseSession()
		s.m.sessions.Dec()
		log.Debug("session closed")
	}()
	for {
		if s.draining.Load() {
			return
		}
		if t := s.cfg.IdleTimeout; t > 0 {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		payload, err := readFrame(c.br, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				s.m.oversized.Inc()
				log.Warn("oversized frame, closing connection", "err", err)
			} else if !errors.Is(err, io.EOF) && !s.draining.Load() {
				log.Debug("read failed", "err", err)
			}
			return
		}
		s.m.bytesIn.Add(uint64(4 + len(payload)))
		req, err := decodeRequest(payload)
		if err != nil {
			// The header parses even for bad bodies, so the error can be
			// correlated; an unreadable header poisons the stream → close.
			if len(payload) < 5 {
				return
			}
			c.sendError(req.id, CodeBadRequest, err.Error())
			continue
		}
		// Admission control: a full in-flight budget answers RETRY_LATER
		// immediately — bounded work, bounded memory, no hidden queue.
		select {
		case s.admission <- struct{}{}:
		default:
			s.m.rejected.Inc()
			c.sendError(req.id, CodeRetryLater, "server overloaded")
			continue
		}
		// The per-connection pipeline bound backpressures the read loop
		// itself: block here rather than buffer unboundedly.
		c.pipeline <- struct{}{}
		s.m.inflight.Inc()
		c.inflight.Add(1)
		go c.serve(req)
	}
}

// handshake validates the client hello and echoes the server hello.
func (c *conn) handshake() error {
	var hello [5]byte
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c.br, hello[:]); err != nil {
		return err
	}
	c.nc.SetReadDeadline(time.Time{})
	if [4]byte(hello[:4]) != handshakeMagic || hello[4] != protocolVersion {
		return fmt.Errorf("server: bad handshake %q version %d", hello[:4], hello[4])
	}
	_, err := c.nc.Write(append(handshakeMagic[:], protocolVersion))
	return err
}

// releaseSession releases the session snapshot (idempotent).
func (c *conn) releaseSession() {
	c.sessMu.Lock()
	snap := c.snap
	c.snap = nil
	c.sessMu.Unlock()
	if snap != nil {
		snap.Release()
	}
}

// refreshSession re-pins the session snapshot at the current database
// state, so the session observes its own (and every earlier committed)
// write.
func (c *conn) refreshSession() error {
	next, err := c.srv.db.Snapshot()
	if err != nil {
		return err
	}
	c.sessMu.Lock()
	prev := c.snap
	c.snap = next
	c.sessMu.Unlock()
	if prev != nil {
		prev.Release()
	}
	return nil
}

// serve executes one admitted request and writes its response.
func (c *conn) serve(req request) {
	s := c.srv
	defer c.inflight.Done()
	defer func() { <-c.pipeline }()
	defer func() { <-s.admission; s.m.inflight.Dec() }()
	if s.testHookServe != nil {
		s.testHookServe(req.op)
	}
	ctx := context.Background()
	if t := s.cfg.RequestTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	start := time.Now()
	shape, payload, err := c.execute(ctx, req)
	if m, ok := s.m.latency[shape]; ok {
		m.Observe(time.Since(start).Seconds())
		s.m.requests[shape].Inc()
	}
	if err != nil {
		code := codeOf(err)
		if code == CodeInternal && errors.Is(err, ErrBadRequest) {
			code = CodeBadRequest
		}
		c.sendError(req.id, code, err.Error())
		return
	}
	c.send(payload)
}

// execute dispatches one request to the engine. It returns the metric
// shape label, the encoded success response, or an error to map to a code.
func (c *conn) execute(ctx context.Context, req request) (shape string, payload []byte, err error) {
	db := c.srv.db
	switch req.op {
	case OpPing:
		return "ping", encodeResponseHeader(CodeOK, req.id), nil
	case OpQuery:
		ix, ok := db.Index(req.index)
		if !ok {
			return "exact", nil, fmt.Errorf("no index %q: %w", req.index, uindex.ErrIndexNotFound)
		}
		q, err := uindex.ParseQuery(ix, req.query)
		if err != nil {
			return "exact", nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		shape = queryShape(q)
		// The session snapshot is held in read mode for the whole query:
		// one consistent epoch, never blocking other readers.
		c.sessMu.RLock()
		snap := c.snap
		if snap == nil {
			c.sessMu.RUnlock()
			return shape, nil, uindex.ErrSnapshotReleased
		}
		ms, stats, err := snap.Query(ctx, req.index, q, uindex.WithAlgorithm(req.alg))
		c.sessMu.RUnlock()
		if err != nil {
			return shape, nil, err
		}
		b := encodeResponseHeader(CodeOK, req.id)
		b = appendStats(b, stats)
		if b, err = appendMatches(b, ms); err != nil {
			return shape, nil, err
		}
		return shape, b, nil
	case OpInsert:
		oid, err := db.Insert(req.class, req.attrs)
		if err != nil {
			return "write", nil, err
		}
		if err := c.refreshSession(); err != nil {
			return "write", nil, err
		}
		b := encodeResponseHeader(CodeOK, req.id)
		return "write", appendOID(b, oid), nil
	case OpSet:
		if err := db.Set(req.oid, req.attr, req.value); err != nil {
			return "write", nil, err
		}
		if err := c.refreshSession(); err != nil {
			return "write", nil, err
		}
		return "write", encodeResponseHeader(CodeOK, req.id), nil
	case OpDelete:
		if err := db.Delete(req.oid); err != nil {
			return "write", nil, err
		}
		if err := c.refreshSession(); err != nil {
			return "write", nil, err
		}
		return "write", encodeResponseHeader(CodeOK, req.id), nil
	case OpBatch:
		var b uindex.Batch
		for _, op := range req.ops {
			switch op.Kind {
			case uindex.BatchInsert:
				b.Insert(op.Class, op.Attrs)
			case uindex.BatchSet:
				b.Set(op.OID, op.Attr, op.Value)
			case uindex.BatchDelete:
				b.Delete(op.OID)
			}
		}
		res, err := db.Apply(ctx, &b)
		if err != nil {
			// Applied operations stay applied (Apply is not a transaction),
			// but the error response carries no result body; refresh anyway
			// so the session observes the partial batch.
			if res.Applied > 0 {
				c.refreshSession()
			}
			return "batch", nil, err
		}
		if err := c.refreshSession(); err != nil {
			return "batch", nil, err
		}
		out := encodeResponseHeader(CodeOK, req.id)
		return "batch", appendBatchResult(out, res), nil
	case OpCheckpoint:
		if err := db.Checkpoint(); err != nil {
			return "checkpoint", nil, err
		}
		return "checkpoint", encodeResponseHeader(CodeOK, req.id), nil
	case OpRefresh:
		if err := c.refreshSession(); err != nil {
			return "refresh", nil, err
		}
		return "refresh", encodeResponseHeader(CodeOK, req.id), nil
	}
	return "ping", nil, fmt.Errorf("%w: opcode %d", ErrBadRequest, req.op)
}

func appendOID(b []byte, oid uindex.OID) []byte {
	return append(b, byte(oid>>24), byte(oid>>16), byte(oid>>8), byte(oid))
}

// send writes one response frame (serialized per connection).
func (c *conn) send(payload []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t))
	}
	if err := writeFrame(c.nc, payload); err != nil {
		c.srv.log.Debug("response write failed", "err", err)
		return
	}
	c.srv.m.bytesOut.Add(uint64(4 + len(payload)))
}

// sendError writes an error response. Every non-OK code increments its
// errors-by-code counter.
func (c *conn) sendError(id uint32, code Code, msg string) {
	if m, ok := c.srv.m.errors[code]; ok {
		m.Inc()
	}
	b := encodeResponseHeader(code, id)
	c.send(append(b, msg...))
}
