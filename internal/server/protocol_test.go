package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	uindex "repro"
	"repro/internal/encoding"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := readFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(want))
		}
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(1<<30))
	_, err := readFrame(&buf, 1<<16)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []request{
		{op: OpPing, id: 1},
		{op: OpCheckpoint, id: 2},
		{op: OpRefresh, id: 3},
		{op: OpQuery, id: 4, index: "color", query: "(Color=Red, C5A*)"},
		{op: OpQuery, id: 5, index: "age", query: "(Age=[46-], ?, C2A*)", alg: uindex.Forward},
		{op: OpInsert, id: 6, class: "Automobile", attrs: uindex.Attrs{
			"Name": "Uno", "Color": "White", "ManufacturedBy": uindex.OID(5),
			"Age": uint64(7), "Neg": int64(-3), "Score": 1.5,
		}},
		{op: OpSet, id: 7, oid: 9, attr: "Color", value: "Red"},
		{op: OpDelete, id: 8, oid: 12},
		{op: OpBatch, id: 9, ops: []uindex.BatchOp{
			{Kind: uindex.BatchInsert, Class: "Automobile", Attrs: uindex.Attrs{"Color": "Red"}},
			{Kind: uindex.BatchSet, OID: 4, Attr: "Color", Value: "Blue"},
			{Kind: uindex.BatchDelete, OID: 7},
		}},
	}
	for _, want := range reqs {
		payload, err := encodeRequest(want)
		if err != nil {
			t.Fatalf("encodeRequest(%v): %v", want.op, err)
		}
		got, err := decodeRequest(payload)
		if err != nil {
			t.Fatalf("decodeRequest(%v): %v", want.op, err)
		}
		if got.attrs == nil && want.attrs != nil && len(want.attrs) == 0 {
			got.attrs = uindex.Attrs{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestEncodeRequestIntNormalizesToInt64(t *testing.T) {
	payload, err := encodeRequest(request{op: OpSet, id: 1, oid: 2, attr: "Age", value: 46})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.value != int64(46) {
		t.Fatalf("want int64(46), got %T %v", got.value, got.value)
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	mk := func(op Op, body ...byte) []byte {
		return append([]byte{byte(op), 0, 0, 0, 1}, body...)
	}
	cases := [][]byte{
		nil,                  // empty
		{byte(OpPing)},       // short header
		mk(Op(0)),            // unknown opcode
		mk(Op(99)),           // unknown opcode
		mk(OpPing, 0x00),     // trailing bytes
		mk(OpQuery),          // missing flags
		mk(OpQuery, 0, 0xFF), // string length overruns body
		mk(OpInsert, 1, 'C'), // missing attr count
		mk(OpInsert, 1, 'C', 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), // hostile attr count
		mk(OpSet, 0, 0, 0, 1),                              // missing attr name
		mk(OpDelete, 0, 0, 0),                              // short oid
		mk(OpSet, 0, 0, 0, 1, 1, 'A', 200),                 // unknown value tag
		mk(OpBatch),                                        // missing op count
		mk(OpBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),          // hostile op count
		mk(OpBatch, 1, 99),                                 // unknown batch op kind
		mk(OpBatch, 1, 3, 0, 0, 0),                         // delete with short oid
		mk(OpBatch, 1, 3, 0, 0, 0, 1, 0xAA),                // trailing bytes
	}
	for i, payload := range cases {
		if _, err := decodeRequest(payload); err == nil {
			t.Errorf("case %d: decodeRequest accepted malformed payload % x", i, payload)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := uindex.Stats{
		Algorithm: uindex.Forward, PagesRead: 17, EntriesScanned: 301, Matches: 4,
		Intervals: 2, NodeCacheHits: 9, NodeCacheMisses: 1, BytesDecoded: 8192,
	}
	got, rest, err := readStats(appendStats(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("stats mismatch: got %+v want %+v (rest %d)", got, want, len(rest))
	}
}

func TestMatchesRoundTrip(t *testing.T) {
	want := []uindex.Match{
		{Value: "Red", Path: []uindex.PathEntry{
			{Code: encoding.Code("5A"), OID: 9}, {Code: encoding.Code("2A1"), OID: 4},
		}},
		{Value: uint64(46), Path: []uindex.PathEntry{{Code: encoding.Code("1"), OID: 3}}},
		{Value: math.Pi},
	}
	b, err := appendMatches(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := readMatches(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("matches mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCodeErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		code Code
	}{
		{uindex.ErrIndexNotFound, CodeIndexNotFound},
		{uindex.ErrUnknownClass, CodeUnknownClass},
		{uindex.ErrClosed, CodeClosed},
		{uindex.ErrSnapshotReleased, CodeSnapshotReleased},
		{context.DeadlineExceeded, CodeDeadline},
		{context.Canceled, CodeCanceled},
		{errors.New("boom"), CodeInternal},
	}
	for _, c := range cases {
		if got := codeOf(c.err); got != c.code {
			t.Errorf("codeOf(%v) = %d, want %d", c.err, got, c.code)
		}
		if c.code == CodeInternal {
			continue
		}
		back := errOf(c.code, "detail")
		if !errors.Is(back, c.err) {
			t.Errorf("errOf(%d) = %v, not errors.Is %v", c.code, back, c.err)
		}
	}
	if errOf(CodeOK, "") != nil {
		t.Error("errOf(CodeOK) should be nil")
	}
	if !errors.Is(errOf(CodeRetryLater, ""), ErrRetryLater) {
		t.Error("errOf(CodeRetryLater) should match ErrRetryLater")
	}
	if !errors.Is(errOf(CodeBadRequest, "parse"), ErrBadRequest) {
		t.Error("errOf(CodeBadRequest) should match ErrBadRequest")
	}
}

// FuzzFrame feeds the frame reader and request decoder arbitrary bytes:
// truncated frames, oversized length prefixes, bad opcodes, hostile counts.
// Neither may panic, and the frame reader must never allocate beyond the
// configured bound no matter what the length prefix claims.
func FuzzFrame(f *testing.F) {
	seed := func(req request) {
		if p, err := encodeRequest(req); err == nil {
			var buf bytes.Buffer
			writeFrame(&buf, p)
			f.Add(buf.Bytes())
		}
	}
	seed(request{op: OpPing, id: 1})
	seed(request{op: OpQuery, id: 2, index: "color", query: "(Color=Red, C5A*)"})
	seed(request{op: OpInsert, id: 3, class: "Automobile", attrs: uindex.Attrs{"Color": "Red"}})
	seed(request{op: OpSet, id: 4, oid: 7, attr: "Age", value: uint64(46)})
	seed(request{op: OpDelete, id: 5, oid: 7})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // 4 GiB length prefix
	f.Add([]byte{0x00, 0x00, 0x00, 0x01})       // truncated body
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0x63}) // short body
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x09, byte(OpInsert), 0, 0, 0, 1},
		0x01, 0x43, 0xFF, 0xFF)) // insert with hostile attr count

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := readFrame(r, maxFrame)
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, io.EOF) ||
					errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("readFrame: unexpected error class %v", err)
			}
			if len(payload) > maxFrame {
				t.Fatalf("readFrame returned %d bytes, above the %d bound", len(payload), maxFrame)
			}
			req, err := decodeRequest(payload)
			if err != nil {
				continue
			}
			// Decoded requests must re-encode without error (tags and
			// opcodes are all known at this point).
			if _, err := encodeRequest(req); err != nil {
				t.Fatalf("re-encode of decoded request failed: %v", err)
			}
		}
	})
}
