package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// opsServer is the HTTP observability listener: Prometheus metrics,
// liveness/readiness, and the pprof handlers, on an explicit mux (nothing
// leaks onto http.DefaultServeMux). It tracks its serve goroutine on its
// own WaitGroup — the data-path drain must complete (and take its final
// metrics) before this listener goes away, so it is not part of Server.wg.
type opsServer struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

func newOpsServer(s *Server) (*opsServer, error) {
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", s.cfg.HTTPAddr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			s.log.Warn("metrics scrape failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Ready means accepting data-path traffic: false before Start
		// and from the first instant of a drain, so load balancers stop
		// routing before in-flight requests finish.
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	o := &opsServer{ln: ln, srv: hs}
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		hs.Serve(ln) // returns on close
	}()
	return o, nil
}

func (o *opsServer) close(ctx context.Context) {
	o.srv.Shutdown(ctx)
	o.wg.Wait()
}
