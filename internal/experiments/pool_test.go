package experiments

import (
	"testing"
)

// TestTable1PoolInvariance is the acceptance check for the buffer pool: the
// Table-1 logical node counts must be byte-for-byte identical with and
// without a pool between the indexes and their page files, while the pooled
// run shows real cache traffic with a non-trivial hit rate.
func TestTable1PoolInvariance(t *testing.T) {
	plain, err := RunTable1(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"clock", "lru"} {
		pooled, err := RunTable1With(42, Table1Options{PoolPages: 128, PoolPolicy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if len(pooled.Rows) != len(plain.Rows) {
			t.Fatalf("%s: %d rows pooled vs %d plain", policy, len(pooled.Rows), len(plain.Rows))
		}
		for i, p := range plain.Rows {
			q := pooled.Rows[i]
			if q.ID != p.ID || q.Parallel != p.Parallel || q.Forward != p.Forward || q.Matches != p.Matches {
				t.Errorf("%s: row %s diverged with pool: parallel %d/%d forward %d/%d matches %d/%d",
					policy, p.ID, q.Parallel, p.Parallel, q.Forward, p.Forward, q.Matches, p.Matches)
			}
		}
		if pooled.TotalNodes != plain.TotalNodes {
			t.Errorf("%s: total nodes %d pooled vs %d plain", policy, pooled.TotalNodes, plain.TotalNodes)
		}
		if pooled.Pool == nil {
			t.Fatalf("%s: pooled run reported no pool stats", policy)
		}
		if pooled.Pool.Hits == 0 || pooled.Pool.HitRate() <= 0 {
			t.Errorf("%s: pool saw no hits: %+v", policy, *pooled.Pool)
		}
		if pooled.Pool.PhysicalReads == 0 {
			t.Errorf("%s: pool reported no physical reads: %+v", policy, *pooled.Pool)
		}
		// The per-row physical column must have content: a 128-frame pool
		// cannot hold the whole 1562-node color index, so at least the
		// large scans fault pages in.
		var phys int
		for _, r := range pooled.Rows {
			phys += r.Physical
		}
		if phys == 0 {
			t.Errorf("%s: no row recorded physical reads", policy)
		}
	}
	if plain.Pool != nil {
		t.Error("plain run unexpectedly reported pool stats")
	}
	for _, r := range plain.Rows {
		if r.Physical != 0 {
			t.Errorf("plain run row %s has physical reads %d", r.ID, r.Physical)
		}
	}
}

// TestFigurePoolInvariance checks the same property on the figure grid: the
// logical page-read curves of Figure 5 (and by construction 6-8, which share
// runGroup) are identical with the pool enabled.
func TestFigurePoolInvariance(t *testing.T) {
	defer ResetDBCache()
	cfg := GridConfig{Objects: 4000, Reps: 3, Seed: 1996}
	plain, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pooledCfg := cfg
	pooledCfg.PoolPages = 64
	pooled, err := RunFigure5(pooledCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled.Groups) != len(plain.Groups) {
		t.Fatalf("%d groups pooled vs %d plain", len(pooled.Groups), len(plain.Groups))
	}
	sawTraffic := false
	for i, pg := range plain.Groups {
		qg := pooled.Groups[i]
		if qg.Sets != pg.Sets || qg.Keys != pg.Keys {
			t.Fatalf("group %d mismatch: (%d,%d) vs (%d,%d)", i, qg.Sets, qg.Keys, pg.Sets, pg.Keys)
		}
		for j, pc := range pg.Curves {
			if qc := qg.Curves[j]; qc != pc {
				t.Errorf("group (%d sets, %d keys) x=%d: curves diverged with pool: %+v vs %+v",
					pg.Sets, pg.Keys, pg.XSets[j], qc, pc)
			}
		}
		if pg.Pool != nil {
			t.Errorf("plain group (%d,%d) has pool stats", pg.Sets, pg.Keys)
		}
		if qg.Pool == nil {
			t.Errorf("pooled group (%d,%d) missing pool stats", qg.Sets, qg.Keys)
		} else if qg.Pool.Hits+qg.Pool.Misses > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Error("no pooled group recorded any cache traffic")
	}
}
