// Package experiments regenerates every table and figure of the paper's
// Section 5: the Table-1 node-count experiment on the enhanced Figure-1
// database, and the Figure 5–8 page-read comparisons of the U-index against
// the CG-tree on the 150,000-object class-hierarchy database (with CH-tree
// and H-tree curves available as extensions).
package experiments

import (
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/pager"
	"repro/internal/workload"
)

// Table1Row is one query of the paper's Table 1.
type Table1Row struct {
	ID          string
	Description string
	Parallel    int // nodes visited by the parallel retrieval algorithm
	Forward     int // nodes visited by forward scanning
	Matches     int
	// Physical counts the buffer pool's page fetches from the backing
	// file for this row (both algorithms); 0 when no pool is configured.
	// Unlike Parallel/Forward it depends on cache state, so it is
	// reported alongside, never instead of, the paper's logical counts.
	Physical int
}

// Table1Result is the full experiment.
type Table1Result struct {
	Rows       []Table1Row
	TotalNodes int // nodes of the color index (the paper reports 1562)
	Records    int
	// Pool holds the aggregate buffer-pool counters when the experiment
	// ran with Table1Options.PoolPages > 0, nil otherwise.
	Pool *bufferpool.Stats
}

// Table1Options configures optional machinery for the Table-1 experiment.
// The zero value reproduces the paper's setup exactly.
type Table1Options struct {
	// PoolPages, when positive, routes both indexes through buffer pools
	// of that many frames and reports physical-read counts per row. The
	// logical node counts (the paper's numbers) are unaffected.
	PoolPages  int
	PoolPolicy string
	// NodeCacheSize sizes the decoded-node cache of both indexes
	// (0 = engine default, negative = disabled). A pure CPU knob: the
	// logical node counts are identical either way, which
	// TestTable1NodeCacheInvariance pins.
	NodeCacheSize int
}

// PaperTable1 maps query id to the node count the paper reports, for the
// EXPERIMENTS.md comparison (queries 3*, 4* report parallel | forward).
var PaperTable1 = map[string][2]int{
	"1": {35, 0}, "1a": {19, 0}, "1b": {24, 0}, "1c": {28, 0},
	"2": {28, 0}, "2a": {15, 0}, "2b": {20, 0}, "2c": {24, 0},
	"3": {33, 51}, "3a": {22, 41}, "3b": {25, 44}, "3c": {30, 47},
	"4": {29, 41}, "4a": {16, 32}, "4b": {19, 34}, "4c": {24, 37},
	"5a": {10, 0}, "5b": {20, 0}, "6a": {22, 0}, "6b": {21, 0},
}

// RunTable1 builds the 12,000-record database with the paper's B-tree
// geometry (at most 10 entries per node) and runs the twenty queries of
// Table 1, measuring visited nodes under both retrieval algorithms.
func RunTable1(seed int64) (*Table1Result, error) {
	return RunTable1With(seed, Table1Options{})
}

// RunTable1With is RunTable1 with explicit options.
func RunTable1With(seed int64, opts Table1Options) (*Table1Result, error) {
	db, err := workload.NewFigure1DB(seed)
	if err != nil {
		return nil, err
	}
	var pools []*bufferpool.Pool
	newFile := func() (pager.File, error) {
		var f pager.File = pager.NewMemFile(1024)
		if opts.PoolPages <= 0 {
			return f, nil
		}
		p, err := bufferpool.New(f, bufferpool.Config{
			Pages:  opts.PoolPages,
			Policy: opts.PoolPolicy,
		})
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
		return p, nil
	}
	physicalReads := func() int64 {
		var n int64
		for _, p := range pools {
			n += p.PoolStats().PhysicalReads
		}
		return n
	}
	colorFile, err := newFile()
	if err != nil {
		return nil, err
	}
	colorIx, err := core.New(colorFile, db.Store, core.Spec{
		Name: "color", Root: "Vehicle", Attr: "Color", MaxEntries: 10,
		NodeCacheSize: opts.NodeCacheSize})
	if err != nil {
		return nil, err
	}
	if err := colorIx.Build(); err != nil {
		return nil, err
	}
	ageFile, err := newFile()
	if err != nil {
		return nil, err
	}
	ageIx, err := core.New(ageFile, db.Store, core.Spec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"},
		Attr: "Age", MaxEntries: 10, NodeCacheSize: opts.NodeCacheSize})
	if err != nil {
		return nil, err
	}
	if err := ageIx.Build(); err != nil {
		return nil, err
	}

	// "All X" queries enumerate the color domain, the Section-3.4 query
	// translation for a value wildcard over a known finite domain.
	allColors := make([]any, len(workload.Colors))
	for i, c := range workload.Colors {
		allColors[i] = c
	}
	all := core.ValuePred{Values: allColors}
	colors := func(n int) core.ValuePred {
		return core.ValuePred{Values: []any{"Red", "Blue", "Green"}[:n:n]}
	}
	type q struct {
		id, desc string
		ix       *core.Index
		query    core.Query
	}
	queries := []q{
		{"1", "all Buses (C5C*)", colorIx, core.Query{Value: all, Positions: []core.Position{core.On("Bus")}}},
		{"1a", "red Buses", colorIx, core.Query{Value: colors(1), Positions: []core.Position{core.On("Bus")}}},
		{"1b", "red+blue Buses", colorIx, core.Query{Value: colors(2), Positions: []core.Position{core.On("Bus")}}},
		{"1c", "red+blue+green Buses", colorIx, core.Query{Value: colors(3), Positions: []core.Position{core.On("Bus")}}},
		{"2", "all PassengerBuses (C5CC)", colorIx, core.Query{Value: all, Positions: []core.Position{core.On("PassengerBus")}}},
		{"2a", "red PassengerBuses", colorIx, core.Query{Value: colors(1), Positions: []core.Position{core.On("PassengerBus")}}},
		{"2b", "red+blue PassengerBuses", colorIx, core.Query{Value: colors(2), Positions: []core.Position{core.On("PassengerBus")}}},
		{"2c", "red+blue+green PassengerBuses", colorIx, core.Query{Value: colors(3), Positions: []core.Position{core.On("PassengerBus")}}},
		{"3", "all Automobiles (C5A*)", colorIx, core.Query{Value: all, Positions: []core.Position{core.On("Automobile")}}},
		{"3a", "red Automobiles", colorIx, core.Query{Value: colors(1), Positions: []core.Position{core.On("Automobile")}}},
		{"3b", "red+blue Automobiles", colorIx, core.Query{Value: colors(2), Positions: []core.Position{core.On("Automobile")}}},
		{"3c", "red+blue+green Automobiles", colorIx, core.Query{Value: colors(3), Positions: []core.Position{core.On("Automobile")}}},
		{"4", "Compact or Service autos (C5AA|C5AC)", colorIx, core.Query{Value: all, Positions: []core.Position{core.OneOfClasses("CompactAutomobile", "ServiceAuto")}}},
		{"4a", "red Compact|Service", colorIx, core.Query{Value: colors(1), Positions: []core.Position{core.OneOfClasses("CompactAutomobile", "ServiceAuto")}}},
		{"4b", "red+blue Compact|Service", colorIx, core.Query{Value: colors(2), Positions: []core.Position{core.OneOfClasses("CompactAutomobile", "ServiceAuto")}}},
		{"4c", "red+blue+green Compact|Service", colorIx, core.Query{Value: colors(3), Positions: []core.Position{core.OneOfClasses("CompactAutomobile", "ServiceAuto")}}},
		{"5a", "companies, president age = 50", ageIx, core.Query{Value: core.Exact(50), Distinct: 2}},
		{"5b", "companies, president age > 50", ageIx, core.Query{Value: core.Range(51, nil), Distinct: 2}},
		{"6a", "Automobiles by AutoCompanies, age > 50", ageIx, core.Query{
			Value:     core.Range(51, nil),
			Positions: []core.Position{core.Any, core.On("AutoCompany"), core.On("Automobile")}}},
		{"6b", "Trucks by AutoCompanies, age > 50", ageIx, core.Query{
			Value:     core.Range(51, nil),
			Positions: []core.Position{core.Any, core.On("AutoCompany"), core.On("Truck")}}},
	}

	res := &Table1Result{Records: db.Store.Len()}
	for _, tc := range queries {
		// With a pool the tree's own node cache is dropped per query so
		// page traffic reaches the pool; this consumes no randomness and
		// cannot change the logical node counts (each query accounts
		// distinct node visits before any cache is consulted).
		if opts.PoolPages > 0 {
			if err := tc.ix.DropCache(); err != nil {
				return nil, fmt.Errorf("query %s: drop cache: %w", tc.id, err)
			}
		}
		physBefore := physicalReads()
		mp, sp, err := tc.ix.Execute(tc.query, core.Parallel, nil)
		if err != nil {
			return nil, fmt.Errorf("query %s parallel: %w", tc.id, err)
		}
		mf, sf, err := tc.ix.Execute(tc.query, core.Forward, nil)
		if err != nil {
			return nil, fmt.Errorf("query %s forward: %w", tc.id, err)
		}
		if len(mp) != len(mf) {
			return nil, fmt.Errorf("query %s: algorithms disagree (%d vs %d matches)", tc.id, len(mp), len(mf))
		}
		res.Rows = append(res.Rows, Table1Row{
			ID: tc.id, Description: tc.desc,
			Parallel: sp.PagesRead, Forward: sf.PagesRead, Matches: len(mp),
			Physical: int(physicalReads() - physBefore),
		})
	}
	total, err := colorIx.PageCount()
	if err != nil {
		return nil, err
	}
	res.TotalNodes = total
	if opts.PoolPages > 0 {
		var agg bufferpool.Stats
		for _, p := range pools {
			agg.Add(p.PoolStats())
		}
		res.Pool = &agg
	}
	return res, nil
}
