package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestStorageShapes verifies the Section-4.2 storage claims: front
// compression makes the class-encoded keys cheap, so the compressed
// U-index is competitive with the directory-based structures, while the
// uncompressed variant is far larger.
func TestStorageShapes(t *testing.T) {
	defer ResetDBCache()
	r, err := RunStorage(8000, 40, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	pages := map[string]int{}
	for _, row := range r.Rows {
		pages[row.Structure] = row.Pages
	}
	comp := pages["U-index (compressed)"]
	raw := pages["U-index (no compression)"]
	cg := pages["CG-tree"]
	if comp == 0 || raw == 0 || cg == 0 {
		t.Fatalf("missing rows: %+v", pages)
	}
	// "Because of the key-compression this is not so": the compressed
	// index must be far below the raw one...
	if comp*2 > raw {
		t.Errorf("compression saved too little: %d vs %d pages", comp, raw)
	}
	// ... and in the same ballpark as the set-grouped comparator.
	if comp > cg*2 {
		t.Errorf("compressed U-index (%d pages) not competitive with CG (%d)", comp, cg)
	}
	var buf bytes.Buffer
	RenderStorage(&buf, r)
	if !strings.Contains(buf.String(), "no compression") {
		t.Error("RenderStorage output incomplete")
	}
}
