package experiments

import (
	"testing"
)

// TestTable1NodeCacheInvariance is the acceptance check for the decoded-node
// cache: the cache is a CPU optimization only, so running Table 1 with it
// disabled must reproduce exactly the logical node counts of the default
// (cache-enabled) run — which the table1 tests in turn pin against the
// paper's published numbers. Pages are counted before the cache is
// consulted, so hit or miss, the paper's I/O model is untouched.
func TestTable1NodeCacheInvariance(t *testing.T) {
	def, err := RunTable1(42)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunTable1With(42, Table1Options{NodeCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Rows) != len(def.Rows) {
		t.Fatalf("%d rows with cache disabled vs %d default", len(off.Rows), len(def.Rows))
	}
	for i, p := range def.Rows {
		q := off.Rows[i]
		if q.ID != p.ID || q.Parallel != p.Parallel || q.Forward != p.Forward || q.Matches != p.Matches {
			t.Errorf("row %s diverged without node cache: parallel %d/%d forward %d/%d matches %d/%d",
				p.ID, q.Parallel, p.Parallel, q.Forward, p.Forward, q.Matches, p.Matches)
		}
	}
	if off.TotalNodes != def.TotalNodes {
		t.Errorf("TotalNodes %d without node cache vs %d default", off.TotalNodes, def.TotalNodes)
	}
	if off.Records != def.Records {
		t.Errorf("Records %d without node cache vs %d default", off.Records, def.Records)
	}
}
