package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestUpdateCostShapes checks the Section-4.4 update prediction: the
// U-index's end-of-path updates are plain B-tree insert/deletes, while NIX
// maintains a key-grouped record plus an auxiliary structure — more page
// writes per operation.
func TestUpdateCostShapes(t *testing.T) {
	r, err := RunUpdateCost(11, 5)
	if err != nil {
		t.Fatal(err)
	}
	writes := map[string]float64{}
	for _, row := range r.Rows {
		writes[row.Operation+"/"+row.Structure] = row.PagesWrite
	}
	if len(writes) != 4 {
		t.Fatalf("rows = %+v", r.Rows)
	}
	if writes["vehicle insert+delete/U-index"] > writes["vehicle insert+delete/NIX"] {
		t.Errorf("U-index end-of-path update (%.1f writes) not cheaper than NIX (%.1f)",
			writes["vehicle insert+delete/U-index"], writes["vehicle insert+delete/NIX"])
	}
	var buf bytes.Buffer
	RenderUpdateCost(&buf, r)
	if !strings.Contains(buf.String(), "president switch") {
		t.Error("render incomplete")
	}
}
